/**
 * @file
 * Deterministic chaos soak for the distributed campaign backend.
 *
 * Runs the paper's Plackett-Burman screen over a real localhost TCP
 * fleet, round after round, while a seeded drill schedule composes
 * the network fault injectors: partitions healed inside the session
 * grace window, reconnect storms, slow-loris result frames, stalled
 * heartbeats, torn frames, dropped connections, duplicate-session
 * probes, and wrong-token handshakes. Every round must end with
 *
 *  - a rank table bit-identical to the single-process reference,
 *  - a journal holding every cell exactly once (no duplicates, no
 *    losses, no torn records), and
 *  - the round's drills actually observed in the controller's
 *    counters (a soak whose faults never fired proves nothing).
 *
 * One round additionally drains the controller mid-campaign — the
 * SIGTERM path — and resumes from the journal with a fresh fleet,
 * proving the drain/resume cycle preserves bit-identical results.
 *
 * The schedule is a pure function of --seed: the same seed always
 * drills the same cells with the same faults in the same rounds,
 * so a CI failure replays exactly.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <stdlib.h>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine.hh"
#include "exec/fault_injection.hh"
#include "exec/journal.hh"
#include "exec/net/controller.hh"
#include "exec/net/remote_worker.hh"
#include "methodology/pb_experiment.hh"
#include "methodology/rank_table.hh"
#include "obs/manifest.hh"
#include "trace/workloads.hh"

namespace exec = rigor::exec;
namespace net = rigor::exec::net;
namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

namespace
{

constexpr const char *kFleetToken = "chaos-soak-fleet-token";

struct CliOptions
{
    std::uint64_t seed = 7;
    unsigned rounds = 5;
    unsigned workers = 3;
    std::string workdir;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--seed N] [--rounds N] [--workers N]\n"
        "          [--workdir DIR]\n"
        "\n"
        "Seeded chaos soak of the distributed campaign backend.\n"
        "Each round runs the gzip+mcf Plackett-Burman screen over a\n"
        "real localhost TCP fleet under a composed fault schedule\n"
        "and asserts the rank table stays bit-identical to a\n"
        "single-process run with a loss-free, duplicate-free\n"
        "journal. Round types cycle: partition-grace, storm-loris,\n"
        "impostors, stall-tear, drain-resume.\n",
        argv0);
}

bool
parseArgs(int argc, char **argv, CliOptions &cli)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--seed") {
            const char *v = value("--seed");
            if (v == nullptr)
                return false;
            cli.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--rounds") {
            const char *v = value("--rounds");
            if (v == nullptr)
                return false;
            cli.rounds = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (arg == "--workers") {
            const char *v = value("--workers");
            if (v == nullptr)
                return false;
            cli.workers = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (arg == "--workdir") {
            const char *v = value("--workdir");
            if (v == nullptr)
                return false;
            cli.workdir = v;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return false;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage(argv[0]);
            return false;
        }
    }
    if (cli.rounds == 0 || cli.workers == 0) {
        std::fprintf(stderr,
                     "--rounds and --workers must be nonzero\n");
        return false;
    }
    return true;
}

/** The soak aborts on its first broken invariant, loudly. */
struct SoakFailure : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

void
require(bool ok, const std::string &what)
{
    if (!ok)
        throw SoakFailure(what);
}

/** SplitMix64: the seed is the whole schedule. */
struct Rng
{
    std::uint64_t state;

    std::uint64_t next()
    {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t below(std::uint64_t n) { return next() % n; }
};

/** One planned drill: fault @p kind on the cell whose label contains
 *  @p label, first attempt, at most once per worker. */
struct DrillPlan
{
    std::string label;
    exec::FaultKind kind;
};

/**
 * A per-worker drill executor. Unlike FaultInjector's label faults
 * (where the classic Drop/Stall/Corrupt kinds refire on requeue),
 * every planned entry here is strictly one-shot per worker: a
 * requeued cell landing back on a worker that already fired its
 * drill simulates normally, so the soak always converges instead of
 * climbing the migration-cap escalation.
 */
class DrillBoard
{
  public:
    explicit DrillBoard(std::vector<DrillPlan> plans)
        : _plans(std::move(plans)), _fired(_plans.size())
    {
        for (std::unique_ptr<std::atomic<bool>> &flag : _fired)
            flag = std::make_unique<std::atomic<bool>>(false);
    }

    exec::SimulateFn simulate()
    {
        return [this](const exec::SimJob &job,
                      const exec::AttemptContext &ctx) {
            for (std::size_t i = 0; i < _plans.size(); ++i) {
                if (ctx.attempt != 1)
                    continue;
                if (job.label.find(_plans[i].label) ==
                    std::string::npos)
                    continue;
                if (_fired[i]->exchange(true))
                    continue;
                throw exec::NetDrillFault(
                    _plans[i].kind,
                    "chaos drill: " + toString(_plans[i].kind) +
                        " on '" + job.label + "'");
            }
            return exec::SimulationEngine::simulateJob(job, ctx);
        };
    }

  private:
    std::vector<DrillPlan> _plans;
    std::vector<std::unique_ptr<std::atomic<bool>>> _fired;
};

/** Local worker threads standing in for remote machines. */
struct Fleet
{
    std::vector<std::thread> threads;
    std::vector<std::unique_ptr<DrillBoard>> boards;

    void start(std::uint16_t port, unsigned count, unsigned round,
               const std::vector<DrillPlan> &plans)
    {
        for (unsigned w = 0; w < count; ++w) {
            boards.push_back(std::make_unique<DrillBoard>(plans));
            DrillBoard *board = boards.back().get();
            const std::string name =
                "cw" + std::to_string(w + 1);
            const std::string session =
                name + "/round" + std::to_string(round);
            threads.emplace_back([port, name, session, board] {
                net::RemoteWorkerOptions opts;
                opts.port = port;
                opts.name = name;
                opts.sessionId = session;
                opts.simulate = board->simulate();
                opts.authToken = kFleetToken;
                opts.reconnectAttempts = 20;
                opts.reconnectDelay =
                    std::chrono::milliseconds(100);
                (void)net::runRemoteWorker(opts);
            });
        }
    }

    void join()
    {
        for (std::thread &t : threads)
            t.join();
        threads.clear();
        boards.clear();
    }
};

net::ControllerOptions
controllerOptions()
{
    net::ControllerOptions options;
    options.lease = std::chrono::milliseconds(1500);
    options.heartbeat = std::chrono::milliseconds(300);
    options.sessionGrace = std::chrono::milliseconds(3000);
    options.authToken = kFleetToken;
    // Every worker may legitimately fire the same drop/stall drill
    // on one requeued cell before the board runs dry; the migration
    // cap must sit safely above that.
    options.maxMigrations = 8;
    return options;
}

methodology::PbExperimentOptions
soakOptions(net::CampaignController &controller, unsigned workers,
            exec::ResultJournal &journal)
{
    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 2000;
    opts.campaign.threads = workers;
    opts.campaign.isolation = exec::IsolationMode::Remote;
    opts.campaign.netController = &controller;
    opts.campaign.remoteWorkers = workers;
    opts.campaign.leaseDuration = std::chrono::milliseconds(1500);
    opts.campaign.heartbeatInterval = std::chrono::milliseconds(300);
    opts.campaign.sessionGrace = std::chrono::milliseconds(3000);
    opts.campaign.remoteAuthToken = kFleetToken;
    opts.campaign.journal = &journal;
    opts.campaign.faultPolicy.maxAttempts = 3;
    return opts;
}

/** Labels of distinct design cells, drawn without replacement. */
std::vector<std::string>
drawCells(Rng &rng, std::size_t count)
{
    static const char *kBenchmarks[] = {"gzip", "mcf"};
    std::set<std::pair<unsigned, unsigned>> used;
    std::vector<std::string> labels;
    while (labels.size() < count) {
        const auto bench =
            static_cast<unsigned>(rng.below(2));
        const auto row = static_cast<unsigned>(rng.below(88));
        if (!used.insert({bench, row}).second)
            continue;
        labels.push_back(std::string(kBenchmarks[bench]) +
                         ", design row " + std::to_string(row));
    }
    return labels;
}

/**
 * The round's journal must hold every cell exactly once: parse the
 * raw record lines (format "r <key> <response>") so a duplicate
 * append is caught even though the in-memory map would mask it.
 */
void
checkJournalIntegrity(const std::string &path,
                      std::size_t expectedCells)
{
    std::ifstream in(path);
    require(in.good(), "journal '" + path + "' unreadable");
    std::set<std::string> keys;
    std::string line;
    std::size_t records = 0;
    bool first = true;
    while (std::getline(in, line)) {
        if (first) {
            first = false; // version header
            continue;
        }
        if (line.empty())
            continue;
        std::istringstream fields(line);
        std::string tag, key, response;
        require(static_cast<bool>(fields >> tag >> key >> response) &&
                    tag == "r",
                "torn journal record: '" + line + "'");
        require(keys.insert(key).second,
                "duplicate journal record for '" + key + "'");
        ++records;
    }
    require(records == expectedCells,
            "journal holds " + std::to_string(records) + " of " +
                std::to_string(expectedCells) + " cells");
}

/** What one soak round is made of and must prove. */
enum class RoundType
{
    /** Partitions healed inside the grace window: parked sessions
     *  resume with their lease and result, zero requeues. */
    PartitionGrace,
    /** Reconnect storms plus slow-loris result frames. */
    StormLoris,
    /** Duplicate-session and wrong-token probes plus a dropped
     *  connection: the gatekeepers fire, the campaign shrugs. */
    Impostors,
    /** Stalled heartbeats (lapse + late result) and torn frames. */
    StallTear,
    /** Controller drains mid-campaign, a fresh fleet resumes the
     *  journal to a bit-identical finish. */
    DrainResume,
};

const char *
toString(RoundType type)
{
    switch (type) {
      case RoundType::PartitionGrace:
        return "partition-grace";
      case RoundType::StormLoris:
        return "storm-loris";
      case RoundType::Impostors:
        return "impostors";
      case RoundType::StallTear:
        return "stall-tear";
      case RoundType::DrainResume:
        return "drain-resume";
    }
    return "unknown";
}

std::vector<DrillPlan>
planRound(RoundType type, Rng &rng, unsigned workers)
{
    std::vector<DrillPlan> plans;
    switch (type) {
      case RoundType::PartitionGrace: {
        const auto cells = drawCells(rng, workers);
        for (const std::string &label : cells)
            plans.push_back({label, exec::FaultKind::Partition});
        break;
      }
      case RoundType::StormLoris: {
        const auto cells = drawCells(rng, 2);
        plans.push_back(
            {cells[0], exec::FaultKind::ReconnectStorm});
        plans.push_back({cells[1], exec::FaultKind::SlowLoris});
        break;
      }
      case RoundType::Impostors: {
        const auto cells = drawCells(rng, 3);
        plans.push_back(
            {cells[0], exec::FaultKind::DuplicateSession});
        plans.push_back({cells[1], exec::FaultKind::TokenMismatch});
        plans.push_back(
            {cells[2], exec::FaultKind::DropConnection});
        break;
      }
      case RoundType::StallTear: {
        const auto cells = drawCells(rng, 2);
        plans.push_back(
            {cells[0], exec::FaultKind::StallHeartbeat});
        plans.push_back({cells[1], exec::FaultKind::CorruptFrame});
        break;
      }
      case RoundType::DrainResume:
        break; // the drain itself is the fault
    }
    return plans;
}

struct Reference
{
    std::vector<std::vector<double>> responses;
    std::string rankTable;
};

void
checkAgainstReference(const methodology::PbExperimentResult &result,
                      const Reference &reference)
{
    require(result.responses == reference.responses,
            "fleet responses diverge from the single-process "
            "reference");
    require(methodology::formatRankTable(
                result.summaries, result.benchmarks) ==
                reference.rankTable,
            "rank table diverges from the single-process reference");
}

void
runRound(unsigned round, RoundType type, Rng &rng,
         const CliOptions &cli, const Reference &reference,
         const std::vector<trace::WorkloadProfile> &workloads)
{
    const std::vector<DrillPlan> plans =
        planRound(type, rng, cli.workers);
    for (const DrillPlan &plan : plans)
        std::printf("  drill: %s on '%s'\n",
                    toString(plan.kind).c_str(),
                    plan.label.c_str());

    const std::string journal_path = cli.workdir + "/round" +
                                     std::to_string(round) +
                                     ".journal";
    std::remove(journal_path.c_str());

    auto controller = std::make_unique<net::CampaignController>(
        controllerOptions());
    Fleet fleet;
    fleet.start(controller->port(), cli.workers, round, plans);
    require(controller->waitForWorkers(
                cli.workers, std::chrono::milliseconds(10000)),
            "fleet never assembled");

    if (type == RoundType::DrainResume) {
        // Phase 1: drain mid-campaign. The trigger watches the
        // fsync'd journal — the same progress probe the SIGTERM
        // handler path uses — and drains once a third of the cells
        // have landed.
        exec::ResultJournal journal(journal_path);
        std::atomic<bool> cancel{false};
        std::thread trigger([&controller, &journal, &cancel] {
            while (!cancel.load() && journal.size() < 60)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            if (!cancel.load())
                controller->beginDrain(
                    std::chrono::milliseconds(2500));
        });
        struct TriggerJoin
        {
            std::atomic<bool> &cancel;
            std::thread &thread;
            ~TriggerJoin()
            {
                cancel.store(true);
                if (thread.joinable())
                    thread.join();
            }
        } trigger_join{cancel, trigger};
        bool drained = false;
        try {
            methodology::runPbExperiment(
                workloads,
                soakOptions(*controller, cli.workers, journal));
        } catch (const std::exception &e) {
            drained = controller->draining();
            if (!drained)
                throw;
            std::printf("  drained mid-campaign: %s\n", e.what());
        }
        cancel.store(true);
        trigger.join();
        require(drained, "the drain never interrupted the campaign");
        controller.reset();
        fleet.join();

        // Phase 2: a fresh controller and fleet resume the journal.
        exec::ResultJournal resumed_journal(journal_path);
        require(resumed_journal.loadedRecords() >= 60,
                "drained journal lost its records");
        require(resumed_journal.tornRecords() == 0,
                "drained journal has torn records");
        std::printf("  resuming %zu journaled cells\n",
                    resumed_journal.loadedRecords());
        controller = std::make_unique<net::CampaignController>(
            controllerOptions());
        fleet.start(controller->port(), cli.workers, round + 1000,
                    {});
        require(controller->waitForWorkers(
                    cli.workers, std::chrono::milliseconds(10000)),
                "resume fleet never assembled");
        const methodology::PbExperimentResult result =
            methodology::runPbExperiment(
                workloads, soakOptions(*controller, cli.workers,
                                       resumed_journal));
        checkAgainstReference(result, reference);
        controller.reset();
        fleet.join();
    } else {
        exec::ResultJournal journal(journal_path);
        const methodology::PbExperimentResult result =
            methodology::runPbExperiment(
                workloads,
                soakOptions(*controller, cli.workers, journal));
        checkAgainstReference(result, reference);

        switch (type) {
          case RoundType::PartitionGrace:
            // The acceptance bar: every partition healed inside the
            // grace window, in-flight cells completed under their
            // original lease, zero requeues.
            require(controller->sessionsResumed() >= 1,
                    "no partition drill led to a session resume");
            require(controller->leasesReclaimed() == 0,
                    "a partitioned cell was requeued despite the "
                    "grace window");
            require(controller->sessionsParked() >= 1,
                    "no session was ever parked");
            break;
          case RoundType::StormLoris:
            require(controller->sessionsResumed() >= 1,
                    "the reconnect storm never resumed a session");
            break;
          case RoundType::Impostors:
            require(controller->sessionsRejected() >= 1,
                    "the duplicate-session probe was not rejected");
            require(controller->authRejected() >= 1,
                    "the wrong-token probe was not rejected");
            require(controller->leasesReclaimed() >= 1,
                    "the dropped connection reclaimed no lease");
            break;
          case RoundType::StallTear:
            require(controller->leasesReclaimed() >= 1,
                    "the stalled heartbeat reclaimed no lease");
            require(controller->lateResults() >= 1,
                    "the stale post-lapse result was not rejected "
                    "as late");
            break;
          case RoundType::DrainResume:
            break; // handled above
        }
        controller.reset();
        fleet.join();
    }

    checkJournalIntegrity(journal_path, 176);
    std::remove(journal_path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    if (!parseArgs(argc, argv, cli))
        return 2;
    if (cli.workdir.empty()) {
        char templ[] = "/tmp/chaos_soak.XXXXXX";
        const char *dir = ::mkdtemp(templ);
        if (dir == nullptr) {
            std::perror("mkdtemp");
            return 1;
        }
        cli.workdir = dir;
    }

    try {
        const std::vector<trace::WorkloadProfile> workloads = {
            trace::workloadByName("gzip"),
            trace::workloadByName("mcf")};

        // The single-process reference every round must reproduce
        // bit for bit.
        methodology::PbExperimentOptions ref_opts;
        ref_opts.instructionsPerRun = 2000;
        ref_opts.campaign.threads = cli.workers;
        const methodology::PbExperimentResult ref_result =
            methodology::runPbExperiment(workloads, ref_opts);
        Reference reference;
        reference.responses = ref_result.responses;
        reference.rankTable = methodology::formatRankTable(
            ref_result.summaries, ref_result.benchmarks);

        Rng rng{cli.seed};
        for (unsigned round = 0; round < cli.rounds; ++round) {
            const auto type = static_cast<RoundType>(round % 5);
            std::printf("round %u/%u: %s\n", round + 1, cli.rounds,
                        toString(type));
            runRound(round, type, rng, cli, reference, workloads);
            std::printf("  rank table bit-identical, journal "
                        "loss-free and duplicate-free\n");
        }
    } catch (const SoakFailure &failure) {
        std::fprintf(stderr, "chaos soak FAILED: %s\n",
                     failure.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "chaos soak errored: %s\n", e.what());
        return 1;
    }

    std::printf("chaos soak passed: %u round(s), seed %llu, "
                "%u workers\n",
                cli.rounds,
                static_cast<unsigned long long>(cli.seed),
                cli.workers);
    return 0;
}
