/**
 * @file
 * rigor_lint — standalone static analysis of experiment inputs.
 *
 * Lints exported CSV design matrices and "key = value" experiment
 * spec files with the same analyzers the in-process pre-flight runs,
 * printing clang-style diagnostics and exiting non-zero when any
 * error (or, under --Werror, warning) is found:
 *
 *     rigor_lint design.csv                 # ±1 / balance / orthogonality
 *     rigor_lint --foldover design.csv      # + exact foldover complement
 *     rigor_lint --factors 43 design.csv    # + column-count check
 *     rigor_lint experiment.spec            # config / workload / run lint
 *     rigor_lint --audit-parameter-space    # Tables 6-8 self-check
 *     rigor_lint stability.json             # rank-stability report audit
 *     rigor_lint --list-rules               # every rule id + severity
 *
 * Files ending in .csv are linted as designs, files ending in .json
 * as rank-stability reports (--stability-out output), and anything
 * else as a spec. Use --design / --spec / --stability before a file
 * to force its kind.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/config_check.hh"
#include "check/csv_lint.hh"
#include "check/diagnostic.hh"
#include "check/rule_ids.hh"
#include "check/rule_table.hh"
#include "check/spec_lint.hh"
#include "check/stability_check.hh"
#include "cli_options.hh"

namespace
{

using rigor::check::DesignCheckOptions;
using rigor::check::Diagnostic;
using rigor::check::DiagnosticSink;
using rigor::check::Severity;
using rigor::tools::ArgCursor;

enum class FileKind
{
    Auto,
    Design,
    Spec,
    Stability,
};

struct CliOptions
{
    DesignCheckOptions design;
    rigor::check::StabilityCheckOptions stability;
    /** campaign.under-replicated floor for stability reports. */
    unsigned minReplicates = 3;
    bool auditParameterSpace = false;
    bool listRules = false;
    bool warningsAsErrors = false;
    bool quiet = false;
    /** (kind, path) pairs in command-line order. */
    std::vector<std::pair<FileKind, std::string>> files;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options] <file>...\n"
        "\n"
        "Lint exported CSV design matrices (*.csv) and experiment\n"
        "spec files before any simulation spends cycles on them.\n"
        "\n"
        "options:\n"
        "  --design               treat the next file as a CSV design\n"
        "  --spec                 treat the next file as an experiment spec\n"
        "  --stability            treat the next file as a stability report\n"
        "  --foldover             require the exact foldover complement\n"
        "  --no-pb                drop the Plackett-Burman shape checks\n"
        "  --factors N            require exactly N factor columns\n"
        "  --top-factors N        stability rules cover the top N factors\n"
        "  --flip-threshold X     rank-flip probability that is an error\n"
        "  --min-replicates N     replicate floor for stability reports\n"
        "  --audit-parameter-space  lint the built-in Tables 6-8 space\n"
        "  --list-rules           print every rule id with its default\n"
        "                         severity and description, then exit\n"
        "  --Werror               treat warnings as errors\n"
        "  --quiet                print only errors\n"
        "  --help                 show this help\n",
        argv0);
    return 2;
}

bool
parseArgs(int argc, char **argv, CliOptions &options)
{
    ArgCursor args(argc, argv, "rigor_lint");
    FileKind next_kind = FileKind::Auto;
    while (!args.done()) {
        const std::string arg = args.take();
        if (arg == "--design") {
            next_kind = FileKind::Design;
        } else if (arg == "--spec") {
            next_kind = FileKind::Spec;
        } else if (arg == "--stability") {
            next_kind = FileKind::Stability;
        } else if (arg == "--foldover") {
            options.design.requireFoldover = true;
        } else if (arg == "--no-pb") {
            options.design.requirePlackettBurman = false;
        } else if (arg == "--factors") {
            const char *v = args.valueFor("--factors");
            if (v == nullptr ||
                !rigor::tools::parseSize(
                    v, options.design.expectedFactors))
                return false;
        } else if (arg == "--top-factors") {
            const char *v = args.valueFor("--top-factors");
            if (v == nullptr ||
                !rigor::tools::parseUnsigned(
                    v, options.stability.topFactors))
                return false;
        } else if (arg == "--flip-threshold") {
            const char *v = args.valueFor("--flip-threshold");
            if (v == nullptr ||
                !rigor::tools::parseDouble(
                    v, options.stability.flipThreshold))
                return false;
        } else if (arg == "--min-replicates") {
            const char *v = args.valueFor("--min-replicates");
            if (v == nullptr ||
                !rigor::tools::parseUnsigned(
                    v, options.minReplicates))
                return false;
        } else if (arg == "--audit-parameter-space") {
            options.auditParameterSpace = true;
        } else if (arg == "--list-rules") {
            options.listRules = true;
        } else if (arg == "--Werror") {
            options.warningsAsErrors = true;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else if (!arg.empty() && arg.front() == '-') {
            std::fprintf(stderr, "rigor_lint: unknown option %s\n",
                         arg.c_str());
            return false;
        } else {
            options.files.emplace_back(next_kind, arg);
            next_kind = FileKind::Auto;
        }
    }
    return options.auditParameterSpace || options.listRules ||
           !options.files.empty();
}

const char *
severityName(Severity severity)
{
    switch (severity) {
    case Severity::Error:
        return "error";
    case Severity::Warning:
        return "warning";
    case Severity::Note:
        return "note";
    }
    return "unknown";
}

/** --list-rules: the registry, one aligned row per rule. */
int
listRules()
{
    std::size_t width = 0;
    for (const rigor::check::RuleInfo &rule :
         rigor::check::ruleTable())
        width = std::max(width, std::string(rule.id).size());
    for (const rigor::check::RuleInfo &rule :
         rigor::check::ruleTable())
        std::fprintf(stdout, "%-*s  %-7s  %s\n",
                     static_cast<int>(width), rule.id,
                     severityName(rule.defaultSeverity),
                     rule.summary);
    return 0;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions options;
    if (!parseArgs(argc, argv, options))
        return usage(argv[0]);

    if (options.listRules)
        return listRules();

    DiagnosticSink sink;

    if (options.auditParameterSpace)
        rigor::check::checkParameterSpace(sink);

    for (const auto &[kind, path] : options.files) {
        std::string text;
        if (!readFile(path, text)) {
            sink.error(rigor::check::rules::kLintUnreadableFile,
                       "cannot read file", {path, 0, {}});
            continue;
        }
        FileKind resolved = kind;
        if (resolved == FileKind::Auto) {
            if (path.ends_with(".csv"))
                resolved = FileKind::Design;
            else if (path.ends_with(".json"))
                resolved = FileKind::Stability;
            else
                resolved = FileKind::Spec;
        }
        switch (resolved) {
        case FileKind::Design:
            rigor::check::lintDesignCsv(text, path, options.design,
                                        sink);
            break;
        case FileKind::Stability:
            rigor::check::lintStabilityReport(text, path,
                                              options.stability,
                                              options.minReplicates,
                                              sink);
            break;
        default:
            rigor::check::lintExperimentSpec(text, path, sink);
            break;
        }
    }

    for (const Diagnostic &d : sink.diagnostics()) {
        if (options.quiet && d.severity != Severity::Error)
            continue;
        std::fprintf(stderr, "%s\n", d.toString().c_str());
    }
    if (!options.quiet || sink.errorCount() > 0)
        std::fprintf(stderr, "rigor_lint: %s\n",
                     sink.summary().c_str());

    const bool failed =
        sink.errorCount() > 0 ||
        (options.warningsAsErrors && sink.warningCount() > 0);
    return failed ? 1 : 0;
}
