/**
 * @file
 * campaign — fault-tolerant Plackett-Burman experiment campaigns.
 *
 * Runs the paper's Table 9 screening experiment under an explicit
 * FaultPolicy (bounded retries, exponential backoff, per-attempt
 * deadlines), with optional crash-safe journaling so an interrupted
 * campaign resumes from disk, a deterministic fault-injection harness
 * for drills, and first-class observability sinks:
 *
 *     campaign --workloads gzip,mcf --instructions 20000
 *     campaign --journal run.journal --retries 2 --backoff-ms 10
 *     campaign --journal run.journal            # resume: replays
 *     campaign --collect --degrade drop-benchmark
 *     campaign --inject 5:1:transient --retries 1
 *     campaign --inject-label "mcf:":1:hang --deadline-ms 50
 *     campaign --journal run.journal --crash-after 40   # crash drill
 *     campaign --metrics-out m.json --trace-out t.json \
 *              --manifest-out run.jsonl --bench-out BENCH_4.json
 *
 * The trace JSON loads directly in chrome://tracing / Perfetto; the
 * manifest is one JSON object per line (campaign / cell / phase /
 * summary records); the metrics JSON snapshots every engine counter,
 * gauge, and histogram.
 *
 * Exit codes: 0 success (possibly degraded, with warnings printed),
 * 1 campaign failure, 2 usage error, 3 simulated crash (resume with
 * the same --journal).
 */

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/campaign_check.hh"
#include "cli_options.hh"
#include "exec/fault_injection.hh"
#include "exec/journal.hh"
#include "methodology/adaptive_sampling.hh"
#include "methodology/pb_experiment.hh"
#include "methodology/rank_stability.hh"
#include "methodology/rank_table.hh"
#include "obs/bench_report.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"
#include "trace/workloads.hh"

namespace
{

using rigor::exec::FaultKind;
using rigor::tools::ArgCursor;
using rigor::tools::CampaignCliOptions;

struct CliOptions
{
    std::vector<std::string> workloads;
    std::uint64_t instructions = 20000;
    std::uint64_t warmup = 0;
    /** With --sample: refine statistically ambiguous cells for up
     *  to N total rounds (0 = single-pass screen). */
    unsigned adaptiveRounds = 0;
    CampaignCliOptions campaign;
    std::size_t crashAfter = 0; // 0 = no crash drill
    bool haveCrashAfter = false;
    struct IndexFault
    {
        std::size_t job;
        unsigned attempt;
        FaultKind kind;
    };
    struct LabelFault
    {
        std::string substring;
        unsigned attempt;
        FaultKind kind;
    };
    std::vector<IndexFault> inject;
    std::vector<LabelFault> injectLabel;
    double randomRate = 0.0;
    std::uint64_t randomSeed = 0;
    bool haveRandom = false;
    bool quiet = false;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "\n"
        "Run the 43-factor Plackett-Burman screening campaign with\n"
        "fault tolerance, crash-safe journaling, fault drills, and\n"
        "observability sinks (metrics, Perfetto trace, manifest).\n"
        "\n"
        "options:\n"
        "  --workloads a,b,c      benchmarks to run (default: all 13)\n"
        "  --instructions N       measured instructions per run\n"
        "  --warmup N             warm-up instructions per run\n"
        "%s"
        "  --adaptive-rounds N    with --sample: re-run benchmarks\n"
        "                         whose top-factor effects are inside\n"
        "                         their CI with a denser schedule, up\n"
        "                         to N total rounds\n"
        "  --crash-after N        crash drill: die after N appends\n"
        "  --inject J:A:KIND      fault job J, attempt A\n"
        "                         (KIND: transient|permanent|hang|\n"
        "                          segfault|abort|busy-loop|\n"
        "                          alloc-bomb|kill; the last five\n"
        "                          need --isolation process)\n"
        "  --inject-label S:A:KIND  fault jobs whose label contains S\n"
        "  --inject-random R:SEED   seeded transient storm at rate R\n"
        "  --quiet                suppress the rank table\n"
        "  --help                 show this help\n",
        argv0, CampaignCliOptions::usageText());
    return 2;
}

bool
parseKind(const std::string &text, FaultKind &kind)
{
    if (text == "transient")
        kind = FaultKind::Transient;
    else if (text == "permanent")
        kind = FaultKind::Permanent;
    else if (text == "hang")
        kind = FaultKind::Hang;
    else if (text == "segfault")
        kind = FaultKind::Segfault;
    else if (text == "abort")
        kind = FaultKind::Abort;
    else if (text == "busy-loop")
        kind = FaultKind::BusyLoop;
    else if (text == "alloc-bomb")
        kind = FaultKind::AllocBomb;
    else if (text == "kill")
        kind = FaultKind::KillWorker;
    else
        return false;
    return true;
}

/** Parse "head:attempt:kind", splitting on the LAST two colons so
 *  the head (a label substring) may itself contain colons. */
bool
parseFaultSpec(const std::string &spec, std::string &head,
               unsigned &attempt, FaultKind &kind)
{
    const std::size_t last = spec.rfind(':');
    if (last == std::string::npos || last == 0)
        return false;
    const std::size_t mid = spec.rfind(':', last - 1);
    if (mid == std::string::npos)
        return false;
    head = spec.substr(0, mid);
    const std::string attempt_text =
        spec.substr(mid + 1, last - mid - 1);
    if (head.empty() || attempt_text.empty())
        return false;
    if (!rigor::tools::parseUnsigned(attempt_text.c_str(), attempt) ||
        attempt == 0)
        return false;
    return parseKind(spec.substr(last + 1), kind);
}

bool
parseArgs(int argc, char **argv, CliOptions &options)
{
    ArgCursor args(argc, argv, "campaign");
    while (!args.done()) {
        const std::string arg = args.take();
        switch (options.campaign.tryParse(args, arg)) {
        case CampaignCliOptions::Match::Consumed:
            continue;
        case CampaignCliOptions::Match::Error:
            return false;
        case CampaignCliOptions::Match::NotMine:
            break;
        }
        if (arg == "--workloads") {
            const char *v = args.valueFor("--workloads");
            if (v == nullptr ||
                !rigor::tools::splitList(v, options.workloads))
                return false;
        } else if (arg == "--instructions") {
            const char *v = args.valueFor("--instructions");
            if (v == nullptr ||
                !rigor::tools::parseUint64(v, options.instructions))
                return false;
        } else if (arg == "--warmup") {
            const char *v = args.valueFor("--warmup");
            if (v == nullptr ||
                !rigor::tools::parseUint64(v, options.warmup))
                return false;
        } else if (arg == "--adaptive-rounds") {
            const char *v = args.valueFor("--adaptive-rounds");
            if (v == nullptr ||
                !rigor::tools::parseUnsigned(
                    v, options.adaptiveRounds) ||
                options.adaptiveRounds == 0) {
                if (v != nullptr)
                    std::fprintf(stderr,
                                 "campaign: --adaptive-rounds must "
                                 "be a positive round count\n");
                return false;
            }
        } else if (arg == "--crash-after") {
            const char *v = args.valueFor("--crash-after");
            if (v == nullptr ||
                !rigor::tools::parseSize(v, options.crashAfter))
                return false;
            options.haveCrashAfter = true;
        } else if (arg == "--inject") {
            const char *v = args.valueFor("--inject");
            if (v == nullptr)
                return false;
            std::string head;
            CliOptions::IndexFault fault{};
            if (!parseFaultSpec(v, head, fault.attempt, fault.kind))
                return false;
            if (!rigor::tools::parseSize(head.c_str(), fault.job))
                return false;
            options.inject.push_back(fault);
        } else if (arg == "--inject-label") {
            const char *v = args.valueFor("--inject-label");
            if (v == nullptr)
                return false;
            CliOptions::LabelFault fault{};
            if (!parseFaultSpec(v, fault.substring, fault.attempt,
                                fault.kind))
                return false;
            options.injectLabel.push_back(std::move(fault));
        } else if (arg == "--inject-random") {
            const char *v = args.valueFor("--inject-random");
            if (v == nullptr)
                return false;
            const std::string spec = v;
            const std::size_t colon = spec.find(':');
            if (colon == std::string::npos)
                return false;
            if (!rigor::tools::parseDouble(
                    spec.substr(0, colon).c_str(),
                    options.randomRate) ||
                !rigor::tools::parseUint64(
                    spec.substr(colon + 1).c_str(),
                    options.randomSeed))
                return false;
            options.haveRandom = true;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else {
            std::fprintf(stderr, "campaign: unknown option %s\n",
                         arg.c_str());
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    if (!parseArgs(argc, argv, cli))
        return usage(argv[0]);

    try {
        // Resolve the benchmark suite.
        std::vector<rigor::trace::WorkloadProfile> workloads;
        if (cli.workloads.empty()) {
            const auto all = rigor::trace::spec2000Workloads();
            workloads.assign(all.begin(), all.end());
        } else {
            for (const std::string &name : cli.workloads)
                workloads.push_back(
                    rigor::trace::workloadByName(name));
        }

        const rigor::exec::FaultPolicy policy =
            cli.campaign.faultPolicy();

        // The fault-injection plan (empty = the real simulator).
        rigor::exec::FaultInjector injector;
        for (const CliOptions::IndexFault &f : cli.inject)
            injector.addFault(f.job, f.attempt, f.kind);
        for (const CliOptions::LabelFault &f : cli.injectLabel)
            injector.addLabelFault(f.substring, f.attempt, f.kind);
        if (cli.haveRandom) {
            const std::size_t rows = cli.campaign.foldover ? 88 : 44;
            injector.planRandomTransients(workloads.size() * rows,
                                          policy.attempts(),
                                          cli.randomRate,
                                          cli.randomSeed);
        }

        rigor::exec::EngineOptions engine_opts;
        engine_opts.threads = cli.campaign.threads;
        if (injector.plannedFaults() != 0)
            engine_opts.simulate = injector.wrap();
        rigor::exec::SimulationEngine engine(engine_opts);

        std::unique_ptr<rigor::exec::ResultJournal> journal;
        if (!cli.campaign.journalPath.empty()) {
            journal = std::make_unique<rigor::exec::ResultJournal>(
                cli.campaign.journalPath);
            if (journal->loadedRecords() != 0)
                std::fprintf(
                    stderr,
                    "campaign: resuming against %s (%zu completed "
                    "runs on disk%s)\n",
                    cli.campaign.journalPath.c_str(),
                    journal->loadedRecords(),
                    journal->tornRecords() != 0
                        ? ", torn final record discarded"
                        : "");
            if (cli.haveCrashAfter)
                journal->simulateCrashAfter(cli.crashAfter);
        } else if (cli.haveCrashAfter) {
            std::fprintf(stderr,
                         "campaign: --crash-after needs --journal\n");
            return 2;
        }

        // Observability sinks, created only when requested so the
        // default campaign stays sink-free.
        rigor::obs::MetricsRegistry metrics;
        rigor::obs::TraceWriter trace;
        rigor::obs::CampaignManifest manifest;

        // Journal replays get a visible progress line naming the
        // run-cache key, so a resumed campaign shows exactly which
        // configurations were served from disk.
        if (journal && !cli.quiet)
            engine.setJobObserver(
                [](const rigor::exec::JobEvent &event) {
                    if (event.source !=
                        rigor::exec::RunSource::JournalReplay)
                        return;
                    std::fprintf(stderr,
                                 "campaign: replayed %s [key %s]\n",
                                 event.job->label.c_str(),
                                 event.runKey.c_str());
                });

        rigor::methodology::PbExperimentOptions opts;
        opts.instructionsPerRun = cli.instructions;
        opts.warmupInstructions = cli.warmup;
        cli.campaign.apply(opts.campaign);
        opts.campaign.engine = &engine;
        opts.campaign.journal = journal.get();
        if (!cli.campaign.metricsOut.empty())
            opts.campaign.metrics = &metrics;
        if (!cli.campaign.traceOut.empty())
            opts.campaign.trace = &trace;
        if (!cli.campaign.manifestOut.empty())
            opts.campaign.manifest = &manifest;

        if (cli.adaptiveRounds != 0 &&
            !opts.campaign.sampling.enabled) {
            std::fprintf(stderr,
                         "campaign: --adaptive-rounds needs "
                         "--sample\n");
            return 2;
        }
        if (cli.campaign.replicates != 0 &&
            cli.adaptiveRounds != 0) {
            std::fprintf(stderr,
                         "campaign: --replicates and "
                         "--adaptive-rounds are mutually "
                         "exclusive\n");
            return 2;
        }
        if (!cli.campaign.stabilityOut.empty() &&
            cli.campaign.replicates == 0) {
            std::fprintf(stderr,
                         "campaign: --stability-out needs "
                         "--replicates\n");
            return 2;
        }

        rigor::methodology::PbExperimentResult result;
        if (cli.campaign.replicates != 0) {
            rigor::methodology::RankStabilityOptions stability;
            stability.base = opts;
            rigor::methodology::ReplicatedPbResult outcome =
                rigor::methodology::runReplicatedPbExperiment(
                    workloads, stability);
            if (!cli.quiet)
                std::fprintf(
                    stdout, "%s",
                    outcome.stability.toString().c_str());
            if (!cli.campaign.stabilityOut.empty()) {
                std::ofstream out(cli.campaign.stabilityOut,
                                  std::ios::binary |
                                      std::ios::trunc);
                if (!out)
                    throw std::runtime_error(
                        "cannot open '" +
                        cli.campaign.stabilityOut +
                        "' for writing");
                out << outcome.stability.toJson() << '\n';
                if (!out)
                    throw std::runtime_error(
                        "write to '" + cli.campaign.stabilityOut +
                        "' failed");
            }
            result = std::move(outcome.pooled);
        } else if (cli.adaptiveRounds != 0) {
            rigor::methodology::AdaptiveSamplingOptions adaptive;
            adaptive.base = opts;
            adaptive.maxRounds = cli.adaptiveRounds;
            rigor::methodology::AdaptiveSamplingResult outcome =
                rigor::methodology::runAdaptivePbExperiment(
                    workloads, adaptive);
            for (std::size_t r = 0; r < outcome.rounds.size(); ++r) {
                const rigor::methodology::AdaptiveRound &round =
                    outcome.rounds[r];
                std::fprintf(
                    stderr,
                    "campaign: sampling round %zu: interval %llu, "
                    "%zu benchmark(s), %zu ambiguous pair(s) "
                    "remain\n",
                    r,
                    static_cast<unsigned long long>(
                        round.sampling.intervalInstructions),
                    round.simulatedBenchmarks.size(),
                    round.ambiguousPairs);
            }
            std::fprintf(stderr,
                         "campaign: adaptive sampling %s after %zu "
                         "round(s)\n",
                         outcome.converged ? "converged" : "stopped",
                         outcome.rounds.size());
            result = std::move(outcome.result);
        } else {
            result = rigor::methodology::runPbExperiment(workloads,
                                                         opts);
        }

        // Degradation trail first, table second: a reduced Table 9
        // is always preceded and suffixed by what it is missing.
        if (!result.validity.diagnostics().empty())
            std::fprintf(stderr, "%s",
                         result.validity.toString().c_str());
        if (!cli.quiet)
            std::fprintf(
                stdout, "%s",
                rigor::methodology::formatRankTable(
                    result.summaries, result.benchmarks,
                    result.droppedBenchmarks)
                    .c_str());
        const rigor::exec::ProgressSnapshot progress =
            engine.progress().snapshot();
        std::fprintf(stderr, "campaign: %s\n",
                     progress.toString().c_str());

        if (!cli.campaign.metricsOut.empty())
            metrics.writeTo(cli.campaign.metricsOut);
        if (!cli.campaign.traceOut.empty())
            trace.writeTo(cli.campaign.traceOut);
        if (!cli.campaign.manifestOut.empty())
            manifest.writeTo(cli.campaign.manifestOut);
        if (!cli.campaign.benchOut.empty()) {
            rigor::obs::BenchReport report;
            report.name = "campaign_pb_screen";
            report.wallSeconds = progress.wallSeconds;
            report.runsTotal = progress.runsTotal;
            report.runsCompleted = progress.runsCompleted;
            report.runsPerSecond =
                progress.wallSeconds > 0.0
                    ? static_cast<double>(progress.runsCompleted) /
                          progress.wallSeconds
                    : 0.0;
            report.simulatedInstructions =
                progress.simulatedInstructions;
            report.mips =
                progress.wallSeconds > 0.0
                    ? static_cast<double>(
                          progress.simulatedInstructions) /
                          progress.wallSeconds / 1e6
                    : 0.0;
            report.threads = engine.threads();
            report.cacheHits = progress.cacheHits;
            report.journalHits = progress.journalHits;
            report.sampled = cli.campaign.sample;
            if (report.sampled)
                report.sampledMips = report.mips;
            rigor::obs::writeBenchReport(cli.campaign.benchOut,
                                         report);
        }
        return 0;
    } catch (const rigor::exec::SimulatedCrash &e) {
        std::fprintf(stderr,
                     "campaign: simulated crash: %s\n"
                     "campaign: rerun with the same --journal to "
                     "resume\n",
                     e.what());
        return 3;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "campaign: %s\n", e.what());
        return 1;
    }
}
