/**
 * @file
 * campaign — fault-tolerant Plackett-Burman experiment campaigns.
 *
 * Runs the paper's Table 9 screening experiment under an explicit
 * FaultPolicy (bounded retries, exponential backoff, per-attempt
 * deadlines), with optional crash-safe journaling so an interrupted
 * campaign resumes from disk, a deterministic fault-injection harness
 * for drills, and first-class observability sinks:
 *
 *     campaign --workloads gzip,mcf --instructions 20000
 *     campaign --journal run.journal --retries 2 --backoff-ms 10
 *     campaign --journal run.journal            # resume: replays
 *     campaign --collect --degrade drop-benchmark
 *     campaign --inject 5:1:transient --retries 1
 *     campaign --inject-label "mcf:":1:hang --deadline-ms 50
 *     campaign --journal run.journal --crash-after 40   # crash drill
 *     campaign --metrics-out m.json --trace-out t.json \
 *              --manifest-out run.jsonl --bench-out BENCH_4.json
 *     campaign --listen 127.0.0.1:0 --workers 3 --port-file port \
 *              --lease-ms 4000 --heartbeat-ms 500   # distributed
 *
 * The trace JSON loads directly in chrome://tracing / Perfetto; the
 * manifest is one JSON object per line (campaign / cell / phase /
 * summary records); the metrics JSON snapshots every engine counter,
 * gauge, and histogram.
 *
 * Distributed hardening: --auth-token-file demands an HMAC
 * challenge-response from every worker before a lease is granted;
 * --session-grace-ms parks a disconnected worker's leases awaiting a
 * session resume instead of requeueing; SIGTERM drains gracefully —
 * no new leases, in-flight cells finish, sinks flush, and the journal
 * resumes the remainder.
 *
 * Exit codes: 0 success (possibly degraded, with warnings printed),
 * 1 campaign failure, 2 usage error, 3 simulated crash (resume with
 * the same --journal), 4 drained on SIGTERM (resume with the same
 * --journal).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "check/campaign_check.hh"
#include "cli_options.hh"
#include "exec/fault_injection.hh"
#include "exec/journal.hh"
#include "exec/net/auth.hh"
#include "exec/net/controller.hh"
#include "methodology/adaptive_sampling.hh"
#include "methodology/pb_experiment.hh"
#include "methodology/rank_stability.hh"
#include "methodology/rank_table.hh"
#include "obs/bench_report.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"
#include "trace/workloads.hh"

namespace
{

using rigor::exec::FaultKind;
using rigor::tools::ArgCursor;
using rigor::tools::CampaignCliOptions;

/** Set by the SIGTERM handler; watched by the drain thread. */
std::atomic<bool> g_drainRequested{false};

void
requestDrain(int)
{
    g_drainRequested.store(true);
}

struct CliOptions
{
    std::vector<std::string> workloads;
    std::uint64_t instructions = 20000;
    std::uint64_t warmup = 0;
    /** With --sample: refine statistically ambiguous cells for up
     *  to N total rounds (0 = single-pass screen). */
    unsigned adaptiveRounds = 0;
    CampaignCliOptions campaign;
    std::size_t crashAfter = 0; // 0 = no crash drill
    bool haveCrashAfter = false;
    struct IndexFault
    {
        std::size_t job;
        unsigned attempt;
        FaultKind kind;
    };
    struct LabelFault
    {
        std::string substring;
        unsigned attempt;
        FaultKind kind;
    };
    std::vector<IndexFault> inject;
    std::vector<LabelFault> injectLabel;
    double randomRate = 0.0;
    std::uint64_t randomSeed = 0;
    bool haveRandom = false;
    bool quiet = false;
    /** Remote: write the bound controller port here (CI rendezvous
     *  with kernel-assigned ports). */
    std::string portFile;
    /** Remote: how long to wait for --workers to connect. */
    unsigned workerWaitMs = 30000;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "\n"
        "Run the 43-factor Plackett-Burman screening campaign with\n"
        "fault tolerance, crash-safe journaling, fault drills, and\n"
        "observability sinks (metrics, Perfetto trace, manifest).\n"
        "\n"
        "options:\n"
        "  --workloads a,b,c      benchmarks to run (default: all 13)\n"
        "  --instructions N       measured instructions per run\n"
        "  --warmup N             warm-up instructions per run\n"
        "%s"
        "  --adaptive-rounds N    with --sample: re-run benchmarks\n"
        "                         whose top-factor effects are inside\n"
        "                         their CI with a denser schedule, up\n"
        "                         to N total rounds\n"
        "  --crash-after N        crash drill: die after N appends\n"
        "  --inject J:A:KIND      fault job J, attempt A\n"
        "                         (KIND: transient|permanent|hang|\n"
        "                          segfault|abort|busy-loop|\n"
        "                          alloc-bomb|kill; the last five\n"
        "                          need --isolation process)\n"
        "  --inject-label S:A:KIND  fault jobs whose label contains S\n"
        "                         (also: drop-connection|\n"
        "                          stall-heartbeat|corrupt-frame on a\n"
        "                          remote worker's --inject-label)\n"
        "  --inject-random R:SEED   seeded transient storm at rate R\n"
        "  --port-file PATH       remote: write the bound controller\n"
        "                         port (rendezvous for port 0)\n"
        "  --worker-wait-ms N     remote: wait this long for --workers\n"
        "                         to connect (default 30000)\n"
        "  --quiet                suppress the rank table\n"
        "  --help                 show this help\n",
        argv0, CampaignCliOptions::usageText());
    return 2;
}

using rigor::tools::parseFaultSpec;

bool
parseArgs(int argc, char **argv, CliOptions &options)
{
    ArgCursor args(argc, argv, "campaign");
    while (!args.done()) {
        const std::string arg = args.take();
        switch (options.campaign.tryParse(args, arg)) {
        case CampaignCliOptions::Match::Consumed:
            continue;
        case CampaignCliOptions::Match::Error:
            return false;
        case CampaignCliOptions::Match::NotMine:
            break;
        }
        if (arg == "--workloads") {
            const char *v = args.valueFor("--workloads");
            if (v == nullptr ||
                !rigor::tools::splitList(v, options.workloads))
                return false;
        } else if (arg == "--instructions") {
            const char *v = args.valueFor("--instructions");
            if (v == nullptr ||
                !rigor::tools::parseUint64(v, options.instructions))
                return false;
        } else if (arg == "--warmup") {
            const char *v = args.valueFor("--warmup");
            if (v == nullptr ||
                !rigor::tools::parseUint64(v, options.warmup))
                return false;
        } else if (arg == "--adaptive-rounds") {
            const char *v = args.valueFor("--adaptive-rounds");
            if (v == nullptr ||
                !rigor::tools::parseUnsigned(
                    v, options.adaptiveRounds) ||
                options.adaptiveRounds == 0) {
                if (v != nullptr)
                    std::fprintf(stderr,
                                 "campaign: --adaptive-rounds must "
                                 "be a positive round count\n");
                return false;
            }
        } else if (arg == "--crash-after") {
            const char *v = args.valueFor("--crash-after");
            if (v == nullptr ||
                !rigor::tools::parseSize(v, options.crashAfter))
                return false;
            options.haveCrashAfter = true;
        } else if (arg == "--inject") {
            const char *v = args.valueFor("--inject");
            if (v == nullptr)
                return false;
            std::string head;
            CliOptions::IndexFault fault{};
            if (!parseFaultSpec(v, head, fault.attempt, fault.kind))
                return false;
            if (!rigor::tools::parseSize(head.c_str(), fault.job))
                return false;
            options.inject.push_back(fault);
        } else if (arg == "--inject-label") {
            const char *v = args.valueFor("--inject-label");
            if (v == nullptr)
                return false;
            CliOptions::LabelFault fault{};
            if (!parseFaultSpec(v, fault.substring, fault.attempt,
                                fault.kind))
                return false;
            options.injectLabel.push_back(std::move(fault));
        } else if (arg == "--inject-random") {
            const char *v = args.valueFor("--inject-random");
            if (v == nullptr)
                return false;
            const std::string spec = v;
            const std::size_t colon = spec.find(':');
            if (colon == std::string::npos)
                return false;
            if (!rigor::tools::parseDouble(
                    spec.substr(0, colon).c_str(),
                    options.randomRate) ||
                !rigor::tools::parseUint64(
                    spec.substr(colon + 1).c_str(),
                    options.randomSeed))
                return false;
            options.haveRandom = true;
        } else if (arg == "--port-file") {
            const char *v = args.valueFor("--port-file");
            if (v == nullptr)
                return false;
            options.portFile = v;
        } else if (arg == "--worker-wait-ms") {
            const char *v = args.valueFor("--worker-wait-ms");
            if (v == nullptr ||
                !rigor::tools::parseUnsigned(v,
                                             options.workerWaitMs))
                return false;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else {
            std::fprintf(stderr, "campaign: unknown option %s\n",
                         arg.c_str());
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    if (!parseArgs(argc, argv, cli))
        return usage(argv[0]);
    if (cli.campaign.isolation == rigor::exec::IsolationMode::Remote &&
        cli.campaign.heartbeatMs * 2 >= cli.campaign.leaseMs) {
        // Mirrors the pre-flight rule campaign.heartbeat-too-coarse:
        // a heartbeat at (or past) half the lease leaves at most one
        // beacon of margin, so one delayed packet reclaims a healthy
        // worker's leases.
        std::fprintf(stderr,
                     "campaign: --heartbeat-ms %u is too coarse for "
                     "--lease-ms %u (the heartbeat must be under "
                     "half the lease)\n",
                     cli.campaign.heartbeatMs, cli.campaign.leaseMs);
        return 2;
    }

    try {
        // Resolve the benchmark suite.
        std::vector<rigor::trace::WorkloadProfile> workloads;
        if (cli.workloads.empty()) {
            const auto all = rigor::trace::spec2000Workloads();
            workloads.assign(all.begin(), all.end());
        } else {
            for (const std::string &name : cli.workloads)
                workloads.push_back(
                    rigor::trace::workloadByName(name));
        }

        const rigor::exec::FaultPolicy policy =
            cli.campaign.faultPolicy();

        // The fault-injection plan (empty = the real simulator).
        rigor::exec::FaultInjector injector;
        for (const CliOptions::IndexFault &f : cli.inject)
            injector.addFault(f.job, f.attempt, f.kind);
        for (const CliOptions::LabelFault &f : cli.injectLabel)
            injector.addLabelFault(f.substring, f.attempt, f.kind);
        if (cli.haveRandom) {
            const std::size_t rows = cli.campaign.foldover ? 88 : 44;
            injector.planRandomTransients(workloads.size() * rows,
                                          policy.attempts(),
                                          cli.randomRate,
                                          cli.randomSeed);
        }

        rigor::exec::EngineOptions engine_opts;
        engine_opts.threads = cli.campaign.threads;
        if (injector.plannedFaults() != 0)
            engine_opts.simulate = injector.wrap();
        rigor::exec::SimulationEngine engine(engine_opts);

        std::unique_ptr<rigor::exec::ResultJournal> journal;
        if (!cli.campaign.journalPath.empty()) {
            journal = std::make_unique<rigor::exec::ResultJournal>(
                cli.campaign.journalPath);
            if (journal->loadedRecords() != 0)
                std::fprintf(
                    stderr,
                    "campaign: resuming against %s (%zu completed "
                    "runs on disk%s)\n",
                    cli.campaign.journalPath.c_str(),
                    journal->loadedRecords(),
                    journal->tornRecords() != 0
                        ? ", torn final record discarded"
                        : "");
            if (cli.haveCrashAfter)
                journal->simulateCrashAfter(cli.crashAfter);
        } else if (cli.haveCrashAfter) {
            std::fprintf(stderr,
                         "campaign: --crash-after needs --journal\n");
            return 2;
        }

        // Observability sinks, created only when requested so the
        // default campaign stays sink-free.
        rigor::obs::MetricsRegistry metrics;
        rigor::obs::TraceWriter trace;
        rigor::obs::CampaignManifest manifest;

        // Remote isolation: bring up the lease-granting controller
        // and wait for the fleet before any cell is queued. Declared
        // after the manifest so its lease observer (which feeds the
        // manifest) outlives every controller thread.
        std::unique_ptr<rigor::exec::net::CampaignController>
            controller;
        if (cli.campaign.isolation ==
            rigor::exec::IsolationMode::Remote) {
            rigor::exec::net::ControllerOptions net_opts;
            net_opts.bindAddress = cli.campaign.listenAddress;
            net_opts.port = static_cast<std::uint16_t>(
                cli.campaign.listenPort);
            net_opts.lease =
                std::chrono::milliseconds(cli.campaign.leaseMs);
            net_opts.heartbeat =
                std::chrono::milliseconds(cli.campaign.heartbeatMs);
            net_opts.sessionGrace = std::chrono::milliseconds(
                cli.campaign.sessionGraceMs);
            if (!cli.campaign.authTokenFile.empty())
                net_opts.authToken = rigor::exec::net::loadAuthToken(
                    cli.campaign.authTokenFile);
            controller = std::make_unique<
                rigor::exec::net::CampaignController>(net_opts);
            if (!cli.campaign.metricsOut.empty())
                controller->setMetrics(&metrics);
            const bool want_manifest =
                !cli.campaign.manifestOut.empty();
            controller->setLeaseObserver(
                [&manifest, want_manifest](
                    const rigor::exec::net::LeaseEvent &event) {
                    const std::string kind =
                        rigor::exec::net::toString(event.kind);
                    std::fprintf(
                        stderr,
                        "campaign: %s worker=%s%s%s%s%s%s%s\n",
                        kind.c_str(), event.worker.c_str(),
                        event.session.empty() ? "" : " session=",
                        event.session.c_str(),
                        event.label.empty() ? "" : " cell=",
                        event.label.c_str(),
                        event.detail.empty() ? "" : ": ",
                        event.detail.c_str());
                    if (!want_manifest)
                        return;
                    rigor::obs::LeaseEventRecord record;
                    record.kind = kind;
                    record.worker = event.worker;
                    record.session = event.session;
                    record.leaseId = event.leaseId;
                    record.label = event.label;
                    record.detail = event.detail;
                    record.requeues = event.requeues;
                    manifest.addLeaseEvent(record);
                });
            std::fprintf(stderr,
                         "campaign: controller listening on %s:%u\n",
                         cli.campaign.listenAddress.c_str(),
                         static_cast<unsigned>(controller->port()));
            if (!cli.portFile.empty()) {
                std::ofstream out(cli.portFile,
                                  std::ios::binary | std::ios::trunc);
                if (!out)
                    throw std::runtime_error(
                        "cannot open '" + cli.portFile +
                        "' for writing");
                out << controller->port() << '\n';
                if (!out)
                    throw std::runtime_error("write to '" +
                                             cli.portFile +
                                             "' failed");
            }
            if (cli.campaign.remoteWorkers != 0 &&
                !controller->waitForWorkers(
                    cli.campaign.remoteWorkers,
                    std::chrono::milliseconds(cli.workerWaitMs))) {
                std::fprintf(
                    stderr,
                    "campaign: only %u of %u workers connected "
                    "within %u ms\n",
                    controller->connectedWorkers(),
                    cli.campaign.remoteWorkers, cli.workerWaitMs);
                return 1;
            }
        }

        // Graceful drain: SIGTERM stops lease granting, lets
        // in-flight cells finish (bounded by one lease plus slack),
        // fails the remainder so the journal can resume them, and
        // exits 4. The watcher thread exists because beginDrain
        // blocks and a signal handler must not; the join guard is
        // declared after the controller so the watcher is stopped
        // before the controller is torn down.
        std::atomic<bool> watcher_stop{false};
        std::thread drain_watcher;
        struct WatcherJoin
        {
            std::atomic<bool> &stop;
            std::thread &thread;
            ~WatcherJoin()
            {
                stop.store(true);
                if (thread.joinable())
                    thread.join();
            }
        } watcher_join{watcher_stop, drain_watcher};
        if (controller != nullptr) {
            std::signal(SIGTERM, requestDrain);
            drain_watcher = std::thread(
                [&watcher_stop, &cli,
                 ctrl = controller.get()]() {
                    while (!watcher_stop.load()) {
                        if (g_drainRequested.load()) {
                            std::fprintf(
                                stderr,
                                "campaign: SIGTERM: draining (no new "
                                "leases; waiting for in-flight "
                                "cells)\n");
                            ctrl->beginDrain(
                                std::chrono::milliseconds(
                                    cli.campaign.leaseMs + 1000));
                            return;
                        }
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(50));
                    }
                });
        }

        // Journal replays get a visible progress line naming the
        // run-cache key, so a resumed campaign shows exactly which
        // configurations were served from disk.
        if (journal && !cli.quiet)
            engine.setJobObserver(
                [](const rigor::exec::JobEvent &event) {
                    if (event.source !=
                        rigor::exec::RunSource::JournalReplay)
                        return;
                    std::fprintf(stderr,
                                 "campaign: replayed %s [key %s]\n",
                                 event.job->label.c_str(),
                                 event.runKey.c_str());
                });

        rigor::methodology::PbExperimentOptions opts;
        opts.instructionsPerRun = cli.instructions;
        opts.warmupInstructions = cli.warmup;
        cli.campaign.apply(opts.campaign);
        opts.campaign.engine = &engine;
        opts.campaign.journal = journal.get();
        opts.campaign.netController = controller.get();
        if (!cli.campaign.metricsOut.empty())
            opts.campaign.metrics = &metrics;
        if (!cli.campaign.traceOut.empty())
            opts.campaign.trace = &trace;
        if (!cli.campaign.manifestOut.empty())
            opts.campaign.manifest = &manifest;

        if (cli.adaptiveRounds != 0 &&
            !opts.campaign.sampling.enabled) {
            std::fprintf(stderr,
                         "campaign: --adaptive-rounds needs "
                         "--sample\n");
            return 2;
        }
        if (cli.campaign.replicates != 0 &&
            cli.adaptiveRounds != 0) {
            std::fprintf(stderr,
                         "campaign: --replicates and "
                         "--adaptive-rounds are mutually "
                         "exclusive\n");
            return 2;
        }
        if (!cli.campaign.stabilityOut.empty() &&
            cli.campaign.replicates == 0) {
            std::fprintf(stderr,
                         "campaign: --stability-out needs "
                         "--replicates\n");
            return 2;
        }

        rigor::methodology::PbExperimentResult result;
        try {
        if (cli.campaign.replicates != 0) {
            rigor::methodology::RankStabilityOptions stability;
            stability.base = opts;
            rigor::methodology::ReplicatedPbResult outcome =
                rigor::methodology::runReplicatedPbExperiment(
                    workloads, stability);
            if (!cli.quiet)
                std::fprintf(
                    stdout, "%s",
                    outcome.stability.toString().c_str());
            if (!cli.campaign.stabilityOut.empty()) {
                std::ofstream out(cli.campaign.stabilityOut,
                                  std::ios::binary |
                                      std::ios::trunc);
                if (!out)
                    throw std::runtime_error(
                        "cannot open '" +
                        cli.campaign.stabilityOut +
                        "' for writing");
                out << outcome.stability.toJson() << '\n';
                if (!out)
                    throw std::runtime_error(
                        "write to '" + cli.campaign.stabilityOut +
                        "' failed");
            }
            result = std::move(outcome.pooled);
        } else if (cli.adaptiveRounds != 0) {
            rigor::methodology::AdaptiveSamplingOptions adaptive;
            adaptive.base = opts;
            adaptive.maxRounds = cli.adaptiveRounds;
            rigor::methodology::AdaptiveSamplingResult outcome =
                rigor::methodology::runAdaptivePbExperiment(
                    workloads, adaptive);
            for (std::size_t r = 0; r < outcome.rounds.size(); ++r) {
                const rigor::methodology::AdaptiveRound &round =
                    outcome.rounds[r];
                std::fprintf(
                    stderr,
                    "campaign: sampling round %zu: interval %llu, "
                    "%zu benchmark(s), %zu ambiguous pair(s) "
                    "remain\n",
                    r,
                    static_cast<unsigned long long>(
                        round.sampling.intervalInstructions),
                    round.simulatedBenchmarks.size(),
                    round.ambiguousPairs);
            }
            std::fprintf(stderr,
                         "campaign: adaptive sampling %s after %zu "
                         "round(s)\n",
                         outcome.converged ? "converged" : "stopped",
                         outcome.rounds.size());
            result = std::move(outcome.result);
        } else {
            result = rigor::methodology::runPbExperiment(workloads,
                                                         opts);
        }
        } catch (const std::exception &e) {
            if (controller == nullptr || !controller->draining())
                throw;
            // A SIGTERM drain deliberately fails the cells it could
            // not finish; everything that did complete is already in
            // the journal, so the same command resumes the remainder.
            if (!cli.campaign.metricsOut.empty())
                metrics.writeTo(cli.campaign.metricsOut);
            if (!cli.campaign.traceOut.empty())
                trace.writeTo(cli.campaign.traceOut);
            if (!cli.campaign.manifestOut.empty())
                manifest.writeTo(cli.campaign.manifestOut);
            std::fprintf(stderr,
                         "campaign: drained: %s\n"
                         "campaign: rerun with the same --journal to "
                         "resume\n",
                         e.what());
            return 4;
        }

        // Degradation trail first, table second: a reduced Table 9
        // is always preceded and suffixed by what it is missing.
        if (!result.validity.diagnostics().empty())
            std::fprintf(stderr, "%s",
                         result.validity.toString().c_str());
        if (!cli.quiet)
            std::fprintf(
                stdout, "%s",
                rigor::methodology::formatRankTable(
                    result.summaries, result.benchmarks,
                    result.droppedBenchmarks)
                    .c_str());
        const rigor::exec::ProgressSnapshot progress =
            engine.progress().snapshot();
        std::fprintf(stderr, "campaign: %s\n",
                     progress.toString().c_str());

        if (!cli.campaign.metricsOut.empty())
            metrics.writeTo(cli.campaign.metricsOut);
        if (!cli.campaign.traceOut.empty())
            trace.writeTo(cli.campaign.traceOut);
        if (!cli.campaign.manifestOut.empty())
            manifest.writeTo(cli.campaign.manifestOut);
        if (!cli.campaign.benchOut.empty()) {
            rigor::obs::BenchReport report;
            report.name = "campaign_pb_screen";
            report.wallSeconds = progress.wallSeconds;
            report.runsTotal = progress.runsTotal;
            report.runsCompleted = progress.runsCompleted;
            report.runsPerSecond =
                progress.wallSeconds > 0.0
                    ? static_cast<double>(progress.runsCompleted) /
                          progress.wallSeconds
                    : 0.0;
            report.simulatedInstructions =
                progress.simulatedInstructions;
            report.mips =
                progress.wallSeconds > 0.0
                    ? static_cast<double>(
                          progress.simulatedInstructions) /
                          progress.wallSeconds / 1e6
                    : 0.0;
            report.threads = engine.threads();
            report.cacheHits = progress.cacheHits;
            report.journalHits = progress.journalHits;
            report.sampled = cli.campaign.sample;
            if (report.sampled)
                report.sampledMips = report.mips;
            rigor::obs::writeBenchReport(cli.campaign.benchOut,
                                         report);
        }
        return 0;
    } catch (const rigor::exec::SimulatedCrash &e) {
        std::fprintf(stderr,
                     "campaign: simulated crash: %s\n"
                     "campaign: rerun with the same --journal to "
                     "resume\n",
                     e.what());
        return 3;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "campaign: %s\n", e.what());
        return 1;
    }
}
