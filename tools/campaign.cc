/**
 * @file
 * campaign — fault-tolerant Plackett-Burman experiment campaigns.
 *
 * Runs the paper's Table 9 screening experiment under an explicit
 * FaultPolicy (bounded retries, exponential backoff, per-attempt
 * deadlines), with optional crash-safe journaling so an interrupted
 * campaign resumes from disk, plus a deterministic fault-injection
 * harness for drills:
 *
 *     campaign --workloads gzip,mcf --instructions 20000
 *     campaign --journal run.journal --retries 2 --backoff-ms 10
 *     campaign --journal run.journal            # resume: replays
 *     campaign --collect --degrade drop-benchmark
 *     campaign --inject 5:1:transient --retries 1
 *     campaign --inject-label "mcf:":1:hang --deadline-ms 50
 *     campaign --journal run.journal --crash-after 40   # crash drill
 *
 * Exit codes: 0 success (possibly degraded, with warnings printed),
 * 1 campaign failure, 2 usage error, 3 simulated crash (resume with
 * the same --journal).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "check/campaign_check.hh"
#include "exec/fault_injection.hh"
#include "exec/journal.hh"
#include "methodology/pb_experiment.hh"
#include "methodology/rank_table.hh"
#include "trace/workloads.hh"

namespace
{

using rigor::check::DegradationMode;
using rigor::exec::FaultKind;

struct CliOptions
{
    std::vector<std::string> workloads;
    std::uint64_t instructions = 20000;
    std::uint64_t warmup = 0;
    unsigned threads = 0;
    bool foldover = true;
    unsigned retries = 0;
    unsigned backoffMs = 0;
    unsigned deadlineMs = 0;
    bool collect = false;
    DegradationMode degrade = DegradationMode::Abort;
    std::string journalPath;
    std::size_t crashAfter = 0; // 0 = no crash drill
    bool haveCrashAfter = false;
    struct IndexFault
    {
        std::size_t job;
        unsigned attempt;
        FaultKind kind;
    };
    struct LabelFault
    {
        std::string substring;
        unsigned attempt;
        FaultKind kind;
    };
    std::vector<IndexFault> inject;
    std::vector<LabelFault> injectLabel;
    double randomRate = 0.0;
    std::uint64_t randomSeed = 0;
    bool haveRandom = false;
    bool quiet = false;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "\n"
        "Run the 43-factor Plackett-Burman screening campaign with\n"
        "fault tolerance, crash-safe journaling, and fault drills.\n"
        "\n"
        "options:\n"
        "  --workloads a,b,c      benchmarks to run (default: all 13)\n"
        "  --instructions N       measured instructions per run\n"
        "  --warmup N             warm-up instructions per run\n"
        "  --threads N            worker threads (0 = hardware)\n"
        "  --no-foldover          44-run base design instead of 88\n"
        "  --retries N            extra attempts per job (default 0)\n"
        "  --backoff-ms N         base backoff, doubled per retry\n"
        "  --deadline-ms N        per-attempt deadline (0 = none)\n"
        "  --collect              quarantine failures, don't fail fast\n"
        "  --degrade MODE         abort | drop-benchmark (with --collect)\n"
        "  --journal PATH         crash-safe journal; rerun to resume\n"
        "  --crash-after N        crash drill: die after N appends\n"
        "  --inject J:A:KIND      fault job J, attempt A\n"
        "                         (KIND: transient|permanent|hang)\n"
        "  --inject-label S:A:KIND  fault jobs whose label contains S\n"
        "  --inject-random R:SEED   seeded transient storm at rate R\n"
        "  --quiet                suppress the rank table\n"
        "  --help                 show this help\n",
        argv0);
    return 2;
}

bool
splitList(const std::string &csv, std::vector<std::string> &out)
{
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::string item =
            csv.substr(start, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - start);
        if (item.empty())
            return false;
        out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return !out.empty();
}

bool
parseKind(const std::string &text, FaultKind &kind)
{
    if (text == "transient")
        kind = FaultKind::Transient;
    else if (text == "permanent")
        kind = FaultKind::Permanent;
    else if (text == "hang")
        kind = FaultKind::Hang;
    else
        return false;
    return true;
}

/** Parse "head:attempt:kind", splitting on the LAST two colons so
 *  the head (a label substring) may itself contain colons. */
bool
parseFaultSpec(const std::string &spec, std::string &head,
               unsigned &attempt, FaultKind &kind)
{
    const std::size_t last = spec.rfind(':');
    if (last == std::string::npos || last == 0)
        return false;
    const std::size_t mid = spec.rfind(':', last - 1);
    if (mid == std::string::npos)
        return false;
    head = spec.substr(0, mid);
    const std::string attempt_text =
        spec.substr(mid + 1, last - mid - 1);
    if (head.empty() || attempt_text.empty())
        return false;
    char *end = nullptr;
    attempt =
        static_cast<unsigned>(std::strtoul(attempt_text.c_str(), &end, 10));
    if (end == nullptr || *end != '\0' || attempt == 0)
        return false;
    return parseKind(spec.substr(last + 1), kind);
}

bool
parseArgs(int argc, char **argv, CliOptions &options)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "campaign: %s needs an argument\n", what);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--workloads") {
            const char *v = next("--workloads");
            if (v == nullptr || !splitList(v, options.workloads))
                return false;
        } else if (arg == "--instructions") {
            const char *v = next("--instructions");
            if (v == nullptr)
                return false;
            options.instructions = std::strtoull(v, nullptr, 10);
        } else if (arg == "--warmup") {
            const char *v = next("--warmup");
            if (v == nullptr)
                return false;
            options.warmup = std::strtoull(v, nullptr, 10);
        } else if (arg == "--threads") {
            const char *v = next("--threads");
            if (v == nullptr)
                return false;
            options.threads =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--no-foldover") {
            options.foldover = false;
        } else if (arg == "--retries") {
            const char *v = next("--retries");
            if (v == nullptr)
                return false;
            options.retries =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--backoff-ms") {
            const char *v = next("--backoff-ms");
            if (v == nullptr)
                return false;
            options.backoffMs =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--deadline-ms") {
            const char *v = next("--deadline-ms");
            if (v == nullptr)
                return false;
            options.deadlineMs =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--collect") {
            options.collect = true;
        } else if (arg == "--degrade") {
            const char *v = next("--degrade");
            if (v == nullptr)
                return false;
            const std::string mode = v;
            if (mode == "abort") {
                options.degrade = DegradationMode::Abort;
            } else if (mode == "drop-benchmark") {
                options.degrade = DegradationMode::DropBenchmark;
            } else {
                std::fprintf(stderr,
                             "campaign: unknown --degrade mode %s\n",
                             mode.c_str());
                return false;
            }
        } else if (arg == "--journal") {
            const char *v = next("--journal");
            if (v == nullptr)
                return false;
            options.journalPath = v;
        } else if (arg == "--crash-after") {
            const char *v = next("--crash-after");
            if (v == nullptr)
                return false;
            options.crashAfter = std::strtoull(v, nullptr, 10);
            options.haveCrashAfter = true;
        } else if (arg == "--inject") {
            const char *v = next("--inject");
            if (v == nullptr)
                return false;
            std::string head;
            CliOptions::IndexFault fault{};
            if (!parseFaultSpec(v, head, fault.attempt, fault.kind))
                return false;
            char *end = nullptr;
            fault.job = std::strtoull(head.c_str(), &end, 10);
            if (end == nullptr || *end != '\0')
                return false;
            options.inject.push_back(fault);
        } else if (arg == "--inject-label") {
            const char *v = next("--inject-label");
            if (v == nullptr)
                return false;
            CliOptions::LabelFault fault{};
            if (!parseFaultSpec(v, fault.substring, fault.attempt,
                                fault.kind))
                return false;
            options.injectLabel.push_back(std::move(fault));
        } else if (arg == "--inject-random") {
            const char *v = next("--inject-random");
            if (v == nullptr)
                return false;
            const std::string spec = v;
            const std::size_t colon = spec.find(':');
            if (colon == std::string::npos)
                return false;
            options.randomRate =
                std::strtod(spec.substr(0, colon).c_str(), nullptr);
            options.randomSeed = std::strtoull(
                spec.substr(colon + 1).c_str(), nullptr, 10);
            options.haveRandom = true;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else {
            std::fprintf(stderr, "campaign: unknown option %s\n",
                         arg.c_str());
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    if (!parseArgs(argc, argv, cli))
        return usage(argv[0]);

    try {
        // Resolve the benchmark suite.
        std::vector<rigor::trace::WorkloadProfile> workloads;
        if (cli.workloads.empty()) {
            const auto all = rigor::trace::spec2000Workloads();
            workloads.assign(all.begin(), all.end());
        } else {
            for (const std::string &name : cli.workloads)
                workloads.push_back(
                    rigor::trace::workloadByName(name));
        }

        rigor::exec::FaultPolicy policy;
        policy.maxAttempts = cli.retries + 1;
        policy.backoffBase = std::chrono::milliseconds(cli.backoffMs);
        policy.attemptDeadline =
            std::chrono::milliseconds(cli.deadlineMs);
        policy.collectFailures = cli.collect;

        // The fault-injection plan (empty = the real simulator).
        rigor::exec::FaultInjector injector;
        for (const CliOptions::IndexFault &f : cli.inject)
            injector.addFault(f.job, f.attempt, f.kind);
        for (const CliOptions::LabelFault &f : cli.injectLabel)
            injector.addLabelFault(f.substring, f.attempt, f.kind);
        if (cli.haveRandom) {
            const std::size_t rows = cli.foldover ? 88 : 44;
            injector.planRandomTransients(workloads.size() * rows,
                                          policy.attempts(),
                                          cli.randomRate,
                                          cli.randomSeed);
        }

        rigor::exec::EngineOptions engine_opts;
        engine_opts.threads = cli.threads;
        if (injector.plannedFaults() != 0)
            engine_opts.simulate = injector.wrap();
        rigor::exec::SimulationEngine engine(engine_opts);

        std::unique_ptr<rigor::exec::ResultJournal> journal;
        if (!cli.journalPath.empty()) {
            journal = std::make_unique<rigor::exec::ResultJournal>(
                cli.journalPath);
            if (journal->loadedRecords() != 0)
                std::fprintf(
                    stderr,
                    "campaign: resuming against %s (%zu completed "
                    "runs on disk%s)\n",
                    cli.journalPath.c_str(),
                    journal->loadedRecords(),
                    journal->tornRecords() != 0
                        ? ", torn final record discarded"
                        : "");
            if (cli.haveCrashAfter)
                journal->simulateCrashAfter(cli.crashAfter);
        } else if (cli.haveCrashAfter) {
            std::fprintf(stderr,
                         "campaign: --crash-after needs --journal\n");
            return 2;
        }

        rigor::methodology::PbExperimentOptions opts;
        opts.instructionsPerRun = cli.instructions;
        opts.warmupInstructions = cli.warmup;
        opts.foldover = cli.foldover;
        opts.engine = &engine;
        opts.faultPolicy = policy;
        opts.journal = journal.get();
        opts.degradation = cli.degrade;

        const rigor::methodology::PbExperimentResult result =
            rigor::methodology::runPbExperiment(workloads, opts);

        // Degradation trail first, table second: a reduced Table 9
        // is always preceded and suffixed by what it is missing.
        if (!result.validity.diagnostics().empty())
            std::fprintf(stderr, "%s",
                         result.validity.toString().c_str());
        if (!cli.quiet)
            std::fprintf(
                stdout, "%s",
                rigor::methodology::formatRankTable(
                    result.summaries, result.benchmarks,
                    result.droppedBenchmarks)
                    .c_str());
        std::fprintf(
            stderr, "campaign: %s\n",
            engine.progress().snapshot().toString().c_str());
        return 0;
    } catch (const rigor::exec::SimulatedCrash &e) {
        std::fprintf(stderr,
                     "campaign: simulated crash: %s\n"
                     "campaign: rerun with the same --journal to "
                     "resume\n",
                     e.what());
        return 3;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "campaign: %s\n", e.what());
        return 1;
    }
}
