#include "cli_options.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace rigor::tools
{

const char *
ArgCursor::valueFor(const char *flag)
{
    if (done()) {
        std::fprintf(stderr, "%s: %s needs an argument\n",
                     _program.c_str(), flag);
        return nullptr;
    }
    return _argv[_index++];
}

namespace
{

/** strtoull with whole-string and range enforcement. Rejects a
 *  leading sign: strtoull would silently wrap "-1" to 2^64-1, turning
 *  a typo'd negative into an absurdly large limit. */
bool
parseRaw(const char *text, unsigned long long &out)
{
    if (text == nullptr || *text < '0' || *text > '9')
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtoull(text, &end, 10);
    return errno == 0 && end != nullptr && *end == '\0';
}

} // namespace

bool
parseUnsigned(const char *text, unsigned &out)
{
    unsigned long long raw = 0;
    if (!parseRaw(text, raw) ||
        raw > static_cast<unsigned long long>(~0u))
        return false;
    out = static_cast<unsigned>(raw);
    return true;
}

bool
parseUint64(const char *text, std::uint64_t &out)
{
    unsigned long long raw = 0;
    if (!parseRaw(text, raw))
        return false;
    out = raw;
    return true;
}

bool
parseSize(const char *text, std::size_t &out)
{
    unsigned long long raw = 0;
    if (!parseRaw(text, raw) || raw > SIZE_MAX)
        return false;
    out = static_cast<std::size_t>(raw);
    return true;
}

bool
parseDouble(const char *text, double &out)
{
    if (text == nullptr || *text == '\0')
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtod(text, &end);
    return errno == 0 && end != nullptr && *end == '\0';
}

bool
parseFaultKind(const std::string &text, exec::FaultKind &kind)
{
    using exec::FaultKind;
    if (text == "transient")
        kind = FaultKind::Transient;
    else if (text == "permanent")
        kind = FaultKind::Permanent;
    else if (text == "hang")
        kind = FaultKind::Hang;
    else if (text == "segfault")
        kind = FaultKind::Segfault;
    else if (text == "abort")
        kind = FaultKind::Abort;
    else if (text == "busy-loop")
        kind = FaultKind::BusyLoop;
    else if (text == "alloc-bomb")
        kind = FaultKind::AllocBomb;
    else if (text == "kill")
        kind = FaultKind::KillWorker;
    else if (text == "drop-connection")
        kind = FaultKind::DropConnection;
    else if (text == "stall-heartbeat")
        kind = FaultKind::StallHeartbeat;
    else if (text == "corrupt-frame")
        kind = FaultKind::CorruptFrame;
    else if (text == "partition")
        kind = FaultKind::Partition;
    else if (text == "reconnect-storm")
        kind = FaultKind::ReconnectStorm;
    else if (text == "slow-loris")
        kind = FaultKind::SlowLoris;
    else if (text == "duplicate-session")
        kind = FaultKind::DuplicateSession;
    else if (text == "token-mismatch")
        kind = FaultKind::TokenMismatch;
    else
        return false;
    return true;
}

bool
parseFaultSpec(const std::string &spec, std::string &head,
               unsigned &attempt, exec::FaultKind &kind)
{
    const std::size_t last = spec.rfind(':');
    if (last == std::string::npos || last == 0)
        return false;
    const std::size_t mid = spec.rfind(':', last - 1);
    if (mid == std::string::npos)
        return false;
    head = spec.substr(0, mid);
    const std::string attempt_text =
        spec.substr(mid + 1, last - mid - 1);
    if (head.empty() || attempt_text.empty())
        return false;
    if (!parseUnsigned(attempt_text.c_str(), attempt) || attempt == 0)
        return false;
    return parseFaultKind(spec.substr(last + 1), kind);
}

bool
parseEndpoint(const std::string &text, std::string &host,
              std::uint16_t &port)
{
    if (text.empty())
        return false;
    const std::size_t colon = text.rfind(':');
    std::string host_part;
    std::string port_part;
    if (colon != std::string::npos) {
        host_part = text.substr(0, colon);
        port_part = text.substr(colon + 1);
        if (host_part.empty() || port_part.empty())
            return false;
    } else if (text.find_first_not_of("0123456789") ==
               std::string::npos) {
        port_part = text; // bare number: a port on the current host
    } else {
        host_part = text; // bare name: a host on the current port
    }
    if (!host_part.empty())
        host = host_part;
    if (!port_part.empty()) {
        unsigned raw = 0;
        if (!parseUnsigned(port_part.c_str(), raw) || raw > 65535)
            return false;
        port = static_cast<std::uint16_t>(raw);
    }
    return true;
}

bool
splitList(const std::string &csv, std::vector<std::string> &out)
{
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::string item =
            csv.substr(start, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - start);
        if (item.empty())
            return false;
        out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return !out.empty();
}

CampaignCliOptions::Match
CampaignCliOptions::tryParse(ArgCursor &args, const std::string &arg)
{
    // Accept both "--flag value" and "--flag=value": split an inline
    // value off first, then match on the bare flag name.
    std::string name = arg;
    std::string inline_value;
    bool has_inline = false;
    if (arg.starts_with("--")) {
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            inline_value = arg.substr(eq + 1);
            has_inline = true;
        }
    }

    /** The flag's value: the inline "=value" part, or the next argv
     *  entry. Returns nullptr (reported) when neither exists. */
    const auto value = [&](const char *flag) -> const char * {
        if (has_inline)
            return inline_value.c_str();
        return args.valueFor(flag);
    };
    const auto unsigned_flag = [&](const char *flag,
                                   unsigned &out) -> Match {
        const char *v = value(flag);
        if (v == nullptr || !parseUnsigned(v, out)) {
            if (v != nullptr)
                std::fprintf(stderr, "%s: bad %s value %s\n",
                             args.program().c_str(), flag, v);
            return Match::Error;
        }
        return Match::Consumed;
    };
    const auto uint64_flag = [&](const char *flag,
                                 std::uint64_t &out) -> Match {
        const char *v = value(flag);
        if (v == nullptr || !parseUint64(v, out)) {
            if (v != nullptr)
                std::fprintf(stderr, "%s: bad %s value %s\n",
                             args.program().c_str(), flag, v);
            return Match::Error;
        }
        return Match::Consumed;
    };
    const auto path_flag = [&](const char *flag,
                               std::string &out) -> Match {
        const char *v = value(flag);
        if (v == nullptr)
            return Match::Error;
        out = v;
        return Match::Consumed;
    };
    /** A flag that takes no value rejects an inline "=value". */
    const auto bare = [&](bool &out) -> Match {
        if (has_inline) {
            std::fprintf(stderr, "%s: %s takes no value\n",
                         args.program().c_str(), name.c_str());
            return Match::Error;
        }
        out = true;
        return Match::Consumed;
    };

    if (name == "--threads")
        return unsigned_flag("--threads", threads);
    if (name == "--no-foldover") {
        bool off = false;
        const Match m = bare(off);
        if (m == Match::Consumed)
            foldover = false;
        return m;
    }
    if (name == "--skip-preflight") {
        bool on = false;
        const Match m = bare(on);
        if (m == Match::Consumed)
            skipPreflight = true;
        return m;
    }
    if (name == "--retries")
        return unsigned_flag("--retries", retries);
    if (name == "--backoff-ms")
        return unsigned_flag("--backoff-ms", backoffMs);
    if (name == "--backoff-jitter") {
        const char *v = value("--backoff-jitter");
        if (v == nullptr || !parseDouble(v, backoffJitter) ||
            backoffJitter < 0.0 || backoffJitter > 1.0) {
            if (v != nullptr)
                std::fprintf(stderr,
                             "%s: bad --backoff-jitter value %s "
                             "(want [0, 1])\n",
                             args.program().c_str(), v);
            return Match::Error;
        }
        return Match::Consumed;
    }
    if (name == "--backoff-seed")
        return uint64_flag("--backoff-seed", backoffSeed);
    if (name == "--deadline-ms")
        return unsigned_flag("--deadline-ms", deadlineMs);
    if (name == "--isolation") {
        const char *v = value("--isolation");
        if (v == nullptr)
            return Match::Error;
        if (!exec::parseIsolationMode(v, isolation)) {
            std::fprintf(stderr,
                         "%s: unknown --isolation mode %s "
                         "(want thread | process | remote)\n",
                         args.program().c_str(), v);
            return Match::Error;
        }
        return Match::Consumed;
    }
    if (name == "--listen") {
        const char *v = value("--listen");
        if (v == nullptr)
            return Match::Error;
        std::uint16_t port = static_cast<std::uint16_t>(listenPort);
        if (!parseEndpoint(v, listenAddress, port)) {
            std::fprintf(stderr,
                         "%s: bad --listen endpoint %s "
                         "(want HOST:PORT, HOST, or PORT)\n",
                         args.program().c_str(), v);
            return Match::Error;
        }
        listenPort = port;
        haveListen = true;
        isolation = exec::IsolationMode::Remote;
        return Match::Consumed;
    }
    if (name == "--workers")
        return unsigned_flag("--workers", remoteWorkers);
    if (name == "--lease-ms") {
        const Match m = unsigned_flag("--lease-ms", leaseMs);
        if (m == Match::Consumed && leaseMs == 0) {
            std::fprintf(stderr,
                         "%s: --lease-ms must be positive\n",
                         args.program().c_str());
            return Match::Error;
        }
        return m;
    }
    if (name == "--heartbeat-ms") {
        const Match m = unsigned_flag("--heartbeat-ms", heartbeatMs);
        if (m == Match::Consumed && heartbeatMs == 0) {
            std::fprintf(stderr,
                         "%s: --heartbeat-ms must be positive\n",
                         args.program().c_str());
            return Match::Error;
        }
        return m;
    }
    if (name == "--session-grace-ms")
        return unsigned_flag("--session-grace-ms", sessionGraceMs);
    if (name == "--auth-token-file")
        return path_flag("--auth-token-file", authTokenFile);
    if (name == "--mem-limit-mb") {
        const Match m = uint64_flag("--mem-limit-mb", memLimitMb);
        if (m == Match::Consumed && memLimitMb == 0) {
            std::fprintf(stderr,
                         "%s: --mem-limit-mb must be positive (omit "
                         "the flag to disable the cap)\n",
                         args.program().c_str());
            return Match::Error;
        }
        return m;
    }
    if (name == "--hard-deadline-ms") {
        const Match m =
            unsigned_flag("--hard-deadline-ms", hardDeadlineMs);
        if (m == Match::Consumed && hardDeadlineMs == 0) {
            std::fprintf(stderr,
                         "%s: --hard-deadline-ms must be positive "
                         "(omit the flag to disable the watchdog)\n",
                         args.program().c_str());
            return Match::Error;
        }
        return m;
    }
    if (name == "--sample") {
        bool on = false;
        const Match m = bare(on);
        if (m == Match::Consumed)
            sample = true;
        return m;
    }
    if (name == "--sample-unit") {
        const Match m = uint64_flag("--sample-unit", sampleUnit);
        if (m == Match::Consumed && sampleUnit == 0) {
            std::fprintf(stderr,
                         "%s: --sample-unit must be positive\n",
                         args.program().c_str());
            return Match::Error;
        }
        return m;
    }
    if (name == "--sample-warmup")
        return uint64_flag("--sample-warmup", sampleWarmup);
    if (name == "--sample-interval") {
        const Match m =
            uint64_flag("--sample-interval", sampleInterval);
        if (m == Match::Consumed && sampleInterval == 0) {
            std::fprintf(stderr,
                         "%s: --sample-interval must be positive\n",
                         args.program().c_str());
            return Match::Error;
        }
        return m;
    }
    if (name == "--sample-rel-error") {
        const char *v = value("--sample-rel-error");
        if (v == nullptr || !parseDouble(v, sampleRelError) ||
            sampleRelError <= 0.0 || sampleRelError >= 1.0) {
            if (v != nullptr)
                std::fprintf(stderr,
                             "%s: bad --sample-rel-error value %s "
                             "(want (0, 1))\n",
                             args.program().c_str(), v);
            return Match::Error;
        }
        return Match::Consumed;
    }
    if (name == "--sample-confidence") {
        const char *v = value("--sample-confidence");
        if (v == nullptr || !parseDouble(v, sampleConfidence) ||
            sampleConfidence <= 0.0 || sampleConfidence >= 1.0) {
            if (v != nullptr)
                std::fprintf(stderr,
                             "%s: bad --sample-confidence value %s "
                             "(want (0, 1))\n",
                             args.program().c_str(), v);
            return Match::Error;
        }
        return Match::Consumed;
    }
    if (name == "--collect") {
        bool on = false;
        const Match m = bare(on);
        if (m == Match::Consumed)
            collect = true;
        return m;
    }
    if (name == "--degrade") {
        const char *v = value("--degrade");
        if (v == nullptr)
            return Match::Error;
        const std::string mode = v;
        if (mode == "abort") {
            degrade = check::DegradationMode::Abort;
        } else if (mode == "drop-benchmark") {
            degrade = check::DegradationMode::DropBenchmark;
        } else {
            std::fprintf(stderr, "%s: unknown --degrade mode %s\n",
                         args.program().c_str(), mode.c_str());
            return Match::Error;
        }
        return Match::Consumed;
    }
    if (name == "--replicates")
        return unsigned_flag("--replicates", replicates);
    if (name == "--bootstrap-iters") {
        const Match m =
            uint64_flag("--bootstrap-iters", bootstrapIters);
        if (m == Match::Consumed && bootstrapIters == 0) {
            std::fprintf(stderr,
                         "%s: --bootstrap-iters must be positive\n",
                         args.program().c_str());
            return Match::Error;
        }
        return m;
    }
    if (name == "--bootstrap-seed")
        return uint64_flag("--bootstrap-seed", bootstrapSeed);
    if (name == "--stability-out")
        return path_flag("--stability-out", stabilityOut);
    if (name == "--journal")
        return path_flag("--journal", journalPath);
    if (name == "--metrics-out")
        return path_flag("--metrics-out", metricsOut);
    if (name == "--trace-out")
        return path_flag("--trace-out", traceOut);
    if (name == "--manifest-out")
        return path_flag("--manifest-out", manifestOut);
    if (name == "--bench-out")
        return path_flag("--bench-out", benchOut);
    return Match::NotMine;
}

exec::FaultPolicy
CampaignCliOptions::faultPolicy() const
{
    exec::FaultPolicy policy;
    policy.maxAttempts = retries + 1;
    policy.backoffBase = std::chrono::milliseconds(backoffMs);
    policy.backoffJitter = backoffJitter;
    policy.backoffSeed = backoffSeed;
    policy.attemptDeadline = std::chrono::milliseconds(deadlineMs);
    policy.collectFailures = collect;
    return policy;
}

void
CampaignCliOptions::apply(exec::CampaignOptions &campaign) const
{
    campaign.threads = threads;
    campaign.foldover = foldover;
    campaign.skipPreflight = skipPreflight;
    campaign.faultPolicy = faultPolicy();
    campaign.degradation = degrade;
    campaign.isolation = isolation;
    campaign.memLimitMb = memLimitMb;
    campaign.hardDeadline = std::chrono::milliseconds(hardDeadlineMs);
    campaign.leaseDuration = std::chrono::milliseconds(leaseMs);
    campaign.heartbeatInterval =
        std::chrono::milliseconds(heartbeatMs);
    campaign.sessionGrace =
        std::chrono::milliseconds(sessionGraceMs);
    campaign.remoteWorkers = remoteWorkers;
    campaign.sampling.enabled = sample;
    campaign.sampling.unitInstructions = sampleUnit;
    campaign.sampling.warmupInstructions = sampleWarmup;
    campaign.sampling.intervalInstructions = sampleInterval;
    campaign.sampling.targetRelativeError = sampleRelError;
    campaign.sampling.confidence = sampleConfidence;
    campaign.replication.replicates = replicates;
    campaign.replication.bootstrap.iterations = bootstrapIters;
    campaign.replication.bootstrap.seed = bootstrapSeed;
}

const char *
CampaignCliOptions::usageText()
{
    return
        "  --threads N            worker threads (0 = hardware)\n"
        "  --no-foldover          44-run base design instead of 88\n"
        "  --skip-preflight       skip the pre-flight static analysis\n"
        "  --retries N            extra attempts per job (default 0)\n"
        "  --backoff-ms N         base backoff, doubled per retry\n"
        "  --backoff-jitter F     randomize away up to F of each\n"
        "                         backoff (seeded, replayable; [0,1])\n"
        "  --backoff-seed N       seed of the jitter stream\n"
        "  --deadline-ms N        per-attempt deadline (0 = none)\n"
        "  --isolation MODE       thread | process | remote; process\n"
        "                         forks sandbox workers that survive\n"
        "                         crash, OOM, and hangs; remote shards\n"
        "                         cells across a TCP worker fleet\n"
        "  --mem-limit-mb N       per-sandbox memory cap in MiB\n"
        "  --hard-deadline-ms N   SIGKILL a sandbox attempt past this\n"
        "  --listen HOST:PORT     remote: controller listen endpoint\n"
        "                         (implies --isolation remote; port 0\n"
        "                         = kernel-assigned)\n"
        "  --workers N            remote: wait for N workers before\n"
        "                         the campaign starts\n"
        "  --lease-ms N           remote: worker-silence budget before\n"
        "                         its cells are reclaimed and requeued\n"
        "                         (default 10000)\n"
        "  --heartbeat-ms N       remote: worker heartbeat cadence\n"
        "                         (default 1000; must stay under half\n"
        "                         the lease)\n"
        "  --session-grace-ms N   remote: hold a disconnected worker's\n"
        "                         leases this long awaiting a session\n"
        "                         resume with the same id (default\n"
        "                         5000; 0 = reclaim immediately)\n"
        "  --auth-token-file PATH remote: shared fleet token; workers\n"
        "                         must answer an HMAC challenge before\n"
        "                         any lease is granted\n"
        "  --collect              quarantine failures, don't fail fast\n"
        "  --degrade MODE         abort | drop-benchmark (with --collect)\n"
        "  --sample               SMARTS-style sampled simulation:\n"
        "                         periodic detailed units with CPI CIs\n"
        "                         instead of full detailed runs\n"
        "  --sample-unit N        measured instructions per unit\n"
        "                         (default 1000)\n"
        "  --sample-warmup N      detailed warm-up before each unit\n"
        "                         (default 2000)\n"
        "  --sample-interval N    one unit every N instructions\n"
        "                         (default 10000)\n"
        "  --sample-rel-error F   target relative CI half-width on\n"
        "                         CPI (default 0.05)\n"
        "  --sample-confidence F  CI confidence level (default 0.95)\n"
        "  --replicates R         run R independently seeded workload\n"
        "                         realizations and bootstrap rank CIs\n"
        "                         (0 = single realization; the\n"
        "                         pre-flight floor is 3)\n"
        "  --bootstrap-iters N    bootstrap resamples (default 2000)\n"
        "  --bootstrap-seed N     seed of the deterministic bootstrap\n"
        "  --stability-out PATH   write the stability report JSON\n"
        "  --journal PATH         crash-safe journal; rerun to resume\n"
        "  --metrics-out PATH     write the metrics registry as JSON\n"
        "  --trace-out PATH       write a Chrome/Perfetto trace JSON\n"
        "  --manifest-out PATH    write the campaign manifest (JSONL)\n"
        "  --bench-out PATH       write a wall-time/throughput report\n";
}

} // namespace rigor::tools
