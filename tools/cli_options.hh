/**
 * @file
 * Shared command-line plumbing for the rigor tools.
 *
 * campaign and rigor_lint used to each hand-roll the same argv
 * walking, "flag needs an argument" reporting, and numeric parsing —
 * and campaign additionally mapped a dozen flags onto what is now
 * exec::CampaignOptions. This helper owns all of it: ArgCursor is the
 * argv walker, the strict parse* functions reject trailing garbage
 * instead of silently truncating, and CampaignCliOptions is the
 * declarative home of every flag that configures a campaign
 * (execution knobs, fault policy, journal, and the observability
 * sink paths), rendered onto exec::CampaignOptions with apply().
 */

#ifndef RIGOR_TOOLS_CLI_OPTIONS_HH
#define RIGOR_TOOLS_CLI_OPTIONS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exec/campaign_options.hh"
#include "exec/fault_injection.hh"

namespace rigor::tools
{

/** Forward walker over argv with uniform error reporting. */
class ArgCursor
{
  public:
    ArgCursor(int argc, char **argv, std::string program)
        : _argc(argc), _argv(argv), _program(std::move(program))
    {
    }

    bool done() const { return _index >= _argc; }

    /** Current argument; advances. Only valid when !done(). */
    std::string take() { return _argv[_index++]; }

    /**
     * The value following @p flag, advancing past it; nullptr (with a
     * "<flag> needs an argument" line on stderr) when argv ends.
     */
    const char *valueFor(const char *flag);

    const std::string &program() const { return _program; }

  private:
    int _argc;
    char **_argv;
    int _index = 1;
    std::string _program;
};

/** Strict numeric parsers: entire string or failure. */
bool parseUnsigned(const char *text, unsigned &out);
bool parseUint64(const char *text, std::uint64_t &out);
bool parseSize(const char *text, std::size_t &out);
bool parseDouble(const char *text, double &out);

/** Split "a,b,c" into non-empty items; false on empty items/input. */
bool splitList(const std::string &csv,
               std::vector<std::string> &out);

/**
 * Parse a fault-drill kind name ("transient", "permanent", "hang",
 * "segfault", "abort", "busy-loop", "alloc-bomb", "kill",
 * "drop-connection", "stall-heartbeat", "corrupt-frame",
 * "partition", "reconnect-storm", "slow-loris", "duplicate-session",
 * "token-mismatch"). Shared by campaign's --inject* flags and
 * worker's --inject-label.
 */
bool parseFaultKind(const std::string &text, exec::FaultKind &kind);

/** Parse "head:attempt:kind", splitting on the LAST two colons so
 *  the head (a label substring) may itself contain colons. */
bool parseFaultSpec(const std::string &spec, std::string &head,
                    unsigned &attempt, exec::FaultKind &kind);

/**
 * Parse "HOST:PORT" / "PORT" / "HOST" into its parts (a bare number
 * is a port on the existing @p host; a bare name replaces the host
 * and keeps the existing port). False on a malformed port.
 */
bool parseEndpoint(const std::string &text, std::string &host,
                   std::uint16_t &port);

/**
 * Every command-line flag that configures campaign execution and
 * observability, parsed flag-by-flag with tryParse() and rendered
 * onto exec::CampaignOptions with apply(). The sink *paths* live
 * here; the sink *objects* (registries, writers, manifests) are
 * constructed and attached by the tool, which owns their lifetime.
 */
struct CampaignCliOptions
{
    unsigned threads = 0;
    bool foldover = true;
    bool skipPreflight = false;
    unsigned retries = 0;
    unsigned backoffMs = 0;
    /** Fraction of each backoff randomized away (seeded, in [0,1]). */
    double backoffJitter = 0.0;
    /** Seed of the deterministic backoff jitter stream. */
    std::uint64_t backoffSeed = 0;
    unsigned deadlineMs = 0;
    /** Attempt isolation: in-process threads, or forked sandboxes. */
    exec::IsolationMode isolation = exec::IsolationMode::Thread;
    /** Process isolation: per-worker memory cap in MiB (0 = off). */
    std::uint64_t memLimitMb = 0;
    /** Process isolation: hard watchdog deadline in ms (0 = off). */
    unsigned hardDeadlineMs = 0;
    /** Remote isolation: controller listen address (--listen). */
    std::string listenAddress = "127.0.0.1";
    /** Remote isolation: listen port (0 = kernel-assigned). */
    unsigned listenPort = 0;
    /** --listen was given (implies --isolation remote). */
    bool haveListen = false;
    /** Remote isolation: expected worker-fleet size (--workers). */
    unsigned remoteWorkers = 0;
    /** Remote isolation: lease duration (worker-silence budget). */
    unsigned leaseMs = 10000;
    /** Remote isolation: advertised heartbeat cadence. */
    unsigned heartbeatMs = 1000;
    /** Remote isolation: how long a disconnected worker's session is
     *  parked awaiting resume (0 = reclaim immediately). */
    unsigned sessionGraceMs = 5000;
    /** Remote isolation: file holding the shared fleet auth token;
     *  empty = authentication off. */
    std::string authTokenFile;
    bool collect = false;
    check::DegradationMode degrade = check::DegradationMode::Abort;
    /** SMARTS-style sampled simulation (off = full detailed runs). */
    bool sample = false;
    /** Measured detailed instructions per sampling unit. */
    std::uint64_t sampleUnit = 1000;
    /** Detailed warm-up instructions before each measured unit. */
    std::uint64_t sampleWarmup = 2000;
    /** Sampling period: one unit every this many instructions. */
    std::uint64_t sampleInterval = 10000;
    /** Target relative CI half-width on CPI (in (0, 1)). */
    double sampleRelError = 0.05;
    /** CI confidence level (in (0, 1)). */
    double sampleConfidence = 0.95;
    /** Workload-generation replicates (0 = single realization). */
    unsigned replicates = 0;
    /** Bootstrap iterations over the replicate responses. */
    std::uint64_t bootstrapIters = 2000;
    /** Seed of the deterministic bootstrap stream. */
    std::uint64_t bootstrapSeed = 0x5eedb007u;
    /** Where to write the stability report JSON; empty = stdout only. */
    std::string stabilityOut;
    std::string journalPath;
    /** Observability output paths; empty = sink disabled. */
    std::string metricsOut;
    std::string traceOut;
    std::string manifestOut;
    std::string benchOut;

    /** Outcome of offering one argument to tryParse(). */
    enum class Match
    {
        /** The flag (and its value, if any) was consumed. */
        Consumed,
        /** Not a shared campaign flag; caller should try its own. */
        NotMine,
        /** A shared flag with a missing/invalid value (reported). */
        Error,
    };

    /**
     * Offer @p arg (already taken from @p args) to the shared flag
     * table. Consumes the flag's value from @p args when it has one;
     * both "--flag value" and "--flag=value" spellings are accepted.
     */
    Match tryParse(ArgCursor &args, const std::string &arg);

    /** The fault policy the flags describe. */
    exec::FaultPolicy faultPolicy() const;

    /**
     * Render the execution knobs (threads, foldover, skipPreflight,
     * fault policy, degradation) onto @p campaign. Sinks and the
     * journal are attached by the caller.
     */
    void apply(exec::CampaignOptions &campaign) const;

    /** Help text for the shared flags (aligned to the tools' style). */
    static const char *usageText();
};

} // namespace rigor::tools

#endif // RIGOR_TOOLS_CLI_OPTIONS_HH
