/**
 * @file
 * worker — TCP worker daemon of the distributed campaign backend.
 *
 * Connects to a `campaign --listen` controller, handshakes, and
 * serves leased simulation jobs until the controller shuts the
 * campaign down:
 *
 *     worker --connect 127.0.0.1:7000
 *     worker --connect host:7000 --slots 4 --name rack2-a
 *     worker --connect host:7000 --isolation process \
 *            --mem-limit-mb 512 --hard-deadline-ms 2000
 *     worker --connect host:7000 --inject-label \
 *            "mcf:":1:drop-connection          # reclaim drill
 *
 * Under --isolation process the attempts run in this daemon's own
 * forked sandbox pool, so a SIGSEGV or OOM costs one attempt, not
 * the daemon; under thread (the default) they run in-process.
 * --inject-label drills raise deterministic faults — including the
 * network kinds (drop-connection, stall-heartbeat, corrupt-frame,
 * partition, reconnect-storm, slow-loris, duplicate-session,
 * token-mismatch) that exercise the controller's lease reclaim,
 * session resume, auth, and late-result paths.
 *
 * Hardening: --auth-token-file answers the controller's HMAC
 * challenge; --reconnect N rides out broken connections by resuming
 * the same session (held leases hand back, no requeue) when the
 * controller's grace window allows; SIGTERM drains gracefully — the
 * worker announces Drain, finishes held cells, and exits 0.
 *
 * Exit codes: 0 controller shutdown or drain (clean end), 1 session
 * failure (connection lost past --reconnect, handshake rejected),
 * 2 usage error.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cli_options.hh"
#include "exec/fault_injection.hh"
#include "exec/net/auth.hh"
#include "exec/net/remote_worker.hh"
#include "exec/proc/worker_pool.hh"

namespace
{

using rigor::exec::FaultKind;
using rigor::tools::ArgCursor;

/** Set by the SIGTERM handler; watched by the worker's heartbeat
 *  thread, which announces the drain to the controller. */
std::atomic<bool> g_drainRequested{false};

void
requestDrain(int)
{
    g_drainRequested.store(true);
}

struct CliOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    bool haveConnect = false;
    unsigned slots = 1;
    std::string name;
    rigor::exec::IsolationMode isolation =
        rigor::exec::IsolationMode::Thread;
    std::uint64_t memLimitMb = 0;
    unsigned hardDeadlineMs = 0;
    /** Reconnect-and-resume tries after a lost connection. */
    unsigned reconnect = 0;
    /** File holding the shared fleet auth token; empty = none. */
    std::string authTokenFile;
    struct LabelFault
    {
        std::string substring;
        unsigned attempt;
        FaultKind kind;
    };
    std::vector<LabelFault> injectLabel;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --connect HOST:PORT [options]\n"
        "\n"
        "Serve leased simulation jobs for a distributed campaign\n"
        "controller (campaign --listen) until it shuts down.\n"
        "\n"
        "options:\n"
        "  --connect HOST:PORT    controller endpoint (required)\n"
        "  --slots N              concurrent jobs to hold (default 1)\n"
        "  --name S               worker identity recorded as cell\n"
        "                         provenance (default hostname:pid)\n"
        "  --isolation MODE       thread | process; process forks a\n"
        "                         local sandbox pool for the attempts\n"
        "  --mem-limit-mb N       per-sandbox memory cap in MiB\n"
        "  --hard-deadline-ms N   SIGKILL a sandbox attempt past this\n"
        "  --reconnect N          after a lost connection, reconnect\n"
        "                         and resume the session up to N\n"
        "                         times (held leases hand back when\n"
        "                         the controller's grace allows)\n"
        "  --auth-token-file PATH shared fleet token answering the\n"
        "                         controller's HMAC challenge\n"
        "  --inject-label S:A:KIND  fault attempt A of jobs whose\n"
        "                         label contains S (KIND: transient|\n"
        "                         permanent|hang|segfault|abort|\n"
        "                         busy-loop|alloc-bomb|kill|\n"
        "                         drop-connection|stall-heartbeat|\n"
        "                         corrupt-frame|partition|\n"
        "                         reconnect-storm|slow-loris|\n"
        "                         duplicate-session|token-mismatch)\n"
        "  --help                 show this help\n",
        argv0);
    return 2;
}

bool
parseArgs(int argc, char **argv, CliOptions &options)
{
    ArgCursor args(argc, argv, "worker");
    while (!args.done()) {
        const std::string arg = args.take();
        if (arg == "--connect") {
            const char *v = args.valueFor("--connect");
            if (v == nullptr ||
                !rigor::tools::parseEndpoint(v, options.host,
                                             options.port)) {
                if (v != nullptr)
                    std::fprintf(stderr,
                                 "worker: bad --connect endpoint "
                                 "%s (want HOST:PORT)\n",
                                 v);
                return false;
            }
            options.haveConnect = true;
        } else if (arg == "--slots") {
            const char *v = args.valueFor("--slots");
            if (v == nullptr ||
                !rigor::tools::parseUnsigned(v, options.slots) ||
                options.slots == 0) {
                if (v != nullptr)
                    std::fprintf(stderr,
                                 "worker: --slots must be a "
                                 "positive count\n");
                return false;
            }
        } else if (arg == "--name") {
            const char *v = args.valueFor("--name");
            if (v == nullptr)
                return false;
            options.name = v;
        } else if (arg == "--isolation") {
            const char *v = args.valueFor("--isolation");
            if (v == nullptr)
                return false;
            if (!rigor::exec::parseIsolationMode(v,
                                                 options.isolation) ||
                options.isolation ==
                    rigor::exec::IsolationMode::Remote) {
                std::fprintf(stderr,
                             "worker: unknown --isolation mode %s "
                             "(want thread | process)\n",
                             v);
                return false;
            }
        } else if (arg == "--mem-limit-mb") {
            const char *v = args.valueFor("--mem-limit-mb");
            if (v == nullptr ||
                !rigor::tools::parseUint64(v, options.memLimitMb))
                return false;
        } else if (arg == "--hard-deadline-ms") {
            const char *v = args.valueFor("--hard-deadline-ms");
            if (v == nullptr ||
                !rigor::tools::parseUnsigned(
                    v, options.hardDeadlineMs))
                return false;
        } else if (arg == "--reconnect") {
            const char *v = args.valueFor("--reconnect");
            if (v == nullptr ||
                !rigor::tools::parseUnsigned(v, options.reconnect))
                return false;
        } else if (arg == "--auth-token-file") {
            const char *v = args.valueFor("--auth-token-file");
            if (v == nullptr)
                return false;
            options.authTokenFile = v;
        } else if (arg == "--inject-label") {
            const char *v = args.valueFor("--inject-label");
            if (v == nullptr)
                return false;
            CliOptions::LabelFault fault{};
            if (!rigor::tools::parseFaultSpec(v, fault.substring,
                                              fault.attempt,
                                              fault.kind)) {
                std::fprintf(stderr,
                             "worker: bad --inject-label spec %s\n",
                             v);
                return false;
            }
            options.injectLabel.push_back(std::move(fault));
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else {
            std::fprintf(stderr, "worker: unknown option %s\n",
                         arg.c_str());
            return false;
        }
    }
    if (!options.haveConnect || options.port == 0) {
        std::fprintf(stderr,
                     "worker: --connect HOST:PORT is required\n");
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    if (!parseArgs(argc, argv, cli))
        return usage(argv[0]);

    try {
        // The attempt executor served to the controller: the
        // in-process simulator, optionally behind a local sandbox
        // pool (process isolation), optionally behind the drill
        // injector — drills raised here run on the worker, so the
        // network kinds misbehave on the live connection.
        rigor::exec::SimulateFn simulate;
        std::unique_ptr<rigor::exec::proc::ProcWorkerPool> pool;
        if (cli.isolation ==
            rigor::exec::IsolationMode::Process) {
            rigor::exec::proc::ProcWorkerPool::Options pool_opts;
            pool_opts.workers = cli.slots;
            pool_opts.memLimitMb = cli.memLimitMb;
            pool_opts.hardDeadline =
                std::chrono::milliseconds(cli.hardDeadlineMs);
            pool = std::make_unique<
                rigor::exec::proc::ProcWorkerPool>(
                std::move(pool_opts));
            simulate = pool->simulateFn();
        }

        rigor::exec::FaultInjector injector;
        for (const CliOptions::LabelFault &f : cli.injectLabel)
            injector.addLabelFault(f.substring, f.attempt, f.kind);
        if (injector.plannedFaults() != 0)
            simulate = injector.wrap(std::move(simulate));

        rigor::exec::net::RemoteWorkerOptions opts;
        opts.host = cli.host;
        opts.port = cli.port;
        opts.slots = cli.slots;
        opts.name = cli.name;
        opts.simulate = std::move(simulate);
        opts.reconnectAttempts = cli.reconnect;
        opts.drainFlag = &g_drainRequested;
        if (!cli.authTokenFile.empty())
            opts.authToken =
                rigor::exec::net::loadAuthToken(cli.authTokenFile);
        std::signal(SIGTERM, requestDrain);

        // Mid-session reconnects (with lease handback) happen inside
        // runRemoteWorker; this loop only retries the initial connect,
        // drawing on the same --reconnect budget.
        unsigned connect_tries = cli.reconnect + 1;
        rigor::exec::net::RemoteWorkerSession session;
        while (true) {
            try {
                session = rigor::exec::net::runRemoteWorker(opts);
                break;
            } catch (const std::exception &e) {
                std::fprintf(stderr, "worker: %s\n", e.what());
                if (--connect_tries == 0)
                    return 1;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(200));
            }
        }
        std::fprintf(
            stderr,
            "worker: session ended (%s), %llu job(s) served, "
            "%u resume(s)%s%s\n",
            rigor::exec::net::toString(session.end).c_str(),
            static_cast<unsigned long long>(session.jobsServed),
            session.resumes,
            session.error.empty() ? "" : ": ",
            session.error.c_str());
        switch (session.end) {
          case rigor::exec::net::SessionEnd::Shutdown:
          case rigor::exec::net::SessionEnd::Drained:
            return 0;
          case rigor::exec::net::SessionEnd::ConnectionLost:
          case rigor::exec::net::SessionEnd::Rejected:
            return 1;
        }
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "worker: %s\n", e.what());
        return 1;
    }
}
