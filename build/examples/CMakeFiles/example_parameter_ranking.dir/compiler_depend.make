# Empty compiler generated dependencies file for example_parameter_ranking.
# This may be replaced when dependencies are built.
