file(REMOVE_RECURSE
  "CMakeFiles/example_parameter_ranking.dir/parameter_ranking.cpp.o"
  "CMakeFiles/example_parameter_ranking.dir/parameter_ranking.cpp.o.d"
  "example_parameter_ranking"
  "example_parameter_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_parameter_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
