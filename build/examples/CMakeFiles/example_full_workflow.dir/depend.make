# Empty dependencies file for example_full_workflow.
# This may be replaced when dependencies are built.
