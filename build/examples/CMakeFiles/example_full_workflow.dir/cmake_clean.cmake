file(REMOVE_RECURSE
  "CMakeFiles/example_full_workflow.dir/full_workflow.cpp.o"
  "CMakeFiles/example_full_workflow.dir/full_workflow.cpp.o.d"
  "example_full_workflow"
  "example_full_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_full_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
