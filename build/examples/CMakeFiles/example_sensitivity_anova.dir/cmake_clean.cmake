file(REMOVE_RECURSE
  "CMakeFiles/example_sensitivity_anova.dir/sensitivity_anova.cpp.o"
  "CMakeFiles/example_sensitivity_anova.dir/sensitivity_anova.cpp.o.d"
  "example_sensitivity_anova"
  "example_sensitivity_anova.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sensitivity_anova.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
