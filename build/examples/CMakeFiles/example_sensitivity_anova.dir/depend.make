# Empty dependencies file for example_sensitivity_anova.
# This may be replaced when dependencies are built.
