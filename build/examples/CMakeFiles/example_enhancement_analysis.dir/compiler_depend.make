# Empty compiler generated dependencies file for example_enhancement_analysis.
# This may be replaced when dependencies are built.
