file(REMOVE_RECURSE
  "CMakeFiles/example_enhancement_analysis.dir/enhancement_analysis.cpp.o"
  "CMakeFiles/example_enhancement_analysis.dir/enhancement_analysis.cpp.o.d"
  "example_enhancement_analysis"
  "example_enhancement_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_enhancement_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
