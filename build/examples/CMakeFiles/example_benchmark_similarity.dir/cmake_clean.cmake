file(REMOVE_RECURSE
  "CMakeFiles/example_benchmark_similarity.dir/benchmark_similarity.cpp.o"
  "CMakeFiles/example_benchmark_similarity.dir/benchmark_similarity.cpp.o.d"
  "example_benchmark_similarity"
  "example_benchmark_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_benchmark_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
