# Empty compiler generated dependencies file for example_benchmark_similarity.
# This may be replaced when dependencies are built.
