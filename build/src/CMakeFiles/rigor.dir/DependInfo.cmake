
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/distance.cc" "src/CMakeFiles/rigor.dir/cluster/distance.cc.o" "gcc" "src/CMakeFiles/rigor.dir/cluster/distance.cc.o.d"
  "/root/repo/src/cluster/distance_matrix.cc" "src/CMakeFiles/rigor.dir/cluster/distance_matrix.cc.o" "gcc" "src/CMakeFiles/rigor.dir/cluster/distance_matrix.cc.o.d"
  "/root/repo/src/cluster/hierarchical.cc" "src/CMakeFiles/rigor.dir/cluster/hierarchical.cc.o" "gcc" "src/CMakeFiles/rigor.dir/cluster/hierarchical.cc.o.d"
  "/root/repo/src/cluster/threshold_grouping.cc" "src/CMakeFiles/rigor.dir/cluster/threshold_grouping.cc.o" "gcc" "src/CMakeFiles/rigor.dir/cluster/threshold_grouping.cc.o.d"
  "/root/repo/src/cluster/union_find.cc" "src/CMakeFiles/rigor.dir/cluster/union_find.cc.o" "gcc" "src/CMakeFiles/rigor.dir/cluster/union_find.cc.o.d"
  "/root/repo/src/doe/design_cost.cc" "src/CMakeFiles/rigor.dir/doe/design_cost.cc.o" "gcc" "src/CMakeFiles/rigor.dir/doe/design_cost.cc.o.d"
  "/root/repo/src/doe/design_matrix.cc" "src/CMakeFiles/rigor.dir/doe/design_matrix.cc.o" "gcc" "src/CMakeFiles/rigor.dir/doe/design_matrix.cc.o.d"
  "/root/repo/src/doe/effects.cc" "src/CMakeFiles/rigor.dir/doe/effects.cc.o" "gcc" "src/CMakeFiles/rigor.dir/doe/effects.cc.o.d"
  "/root/repo/src/doe/foldover.cc" "src/CMakeFiles/rigor.dir/doe/foldover.cc.o" "gcc" "src/CMakeFiles/rigor.dir/doe/foldover.cc.o.d"
  "/root/repo/src/doe/galois.cc" "src/CMakeFiles/rigor.dir/doe/galois.cc.o" "gcc" "src/CMakeFiles/rigor.dir/doe/galois.cc.o.d"
  "/root/repo/src/doe/hadamard.cc" "src/CMakeFiles/rigor.dir/doe/hadamard.cc.o" "gcc" "src/CMakeFiles/rigor.dir/doe/hadamard.cc.o.d"
  "/root/repo/src/doe/one_at_a_time.cc" "src/CMakeFiles/rigor.dir/doe/one_at_a_time.cc.o" "gcc" "src/CMakeFiles/rigor.dir/doe/one_at_a_time.cc.o.d"
  "/root/repo/src/doe/pb_design.cc" "src/CMakeFiles/rigor.dir/doe/pb_design.cc.o" "gcc" "src/CMakeFiles/rigor.dir/doe/pb_design.cc.o.d"
  "/root/repo/src/doe/ranking.cc" "src/CMakeFiles/rigor.dir/doe/ranking.cc.o" "gcc" "src/CMakeFiles/rigor.dir/doe/ranking.cc.o.d"
  "/root/repo/src/enhance/precompute.cc" "src/CMakeFiles/rigor.dir/enhance/precompute.cc.o" "gcc" "src/CMakeFiles/rigor.dir/enhance/precompute.cc.o.d"
  "/root/repo/src/enhance/value_reuse.cc" "src/CMakeFiles/rigor.dir/enhance/value_reuse.cc.o" "gcc" "src/CMakeFiles/rigor.dir/enhance/value_reuse.cc.o.d"
  "/root/repo/src/methodology/classification.cc" "src/CMakeFiles/rigor.dir/methodology/classification.cc.o" "gcc" "src/CMakeFiles/rigor.dir/methodology/classification.cc.o.d"
  "/root/repo/src/methodology/csv_export.cc" "src/CMakeFiles/rigor.dir/methodology/csv_export.cc.o" "gcc" "src/CMakeFiles/rigor.dir/methodology/csv_export.cc.o.d"
  "/root/repo/src/methodology/enhancement_analysis.cc" "src/CMakeFiles/rigor.dir/methodology/enhancement_analysis.cc.o" "gcc" "src/CMakeFiles/rigor.dir/methodology/enhancement_analysis.cc.o.d"
  "/root/repo/src/methodology/parameter_space.cc" "src/CMakeFiles/rigor.dir/methodology/parameter_space.cc.o" "gcc" "src/CMakeFiles/rigor.dir/methodology/parameter_space.cc.o.d"
  "/root/repo/src/methodology/pb_experiment.cc" "src/CMakeFiles/rigor.dir/methodology/pb_experiment.cc.o" "gcc" "src/CMakeFiles/rigor.dir/methodology/pb_experiment.cc.o.d"
  "/root/repo/src/methodology/published_data.cc" "src/CMakeFiles/rigor.dir/methodology/published_data.cc.o" "gcc" "src/CMakeFiles/rigor.dir/methodology/published_data.cc.o.d"
  "/root/repo/src/methodology/rank_table.cc" "src/CMakeFiles/rigor.dir/methodology/rank_table.cc.o" "gcc" "src/CMakeFiles/rigor.dir/methodology/rank_table.cc.o.d"
  "/root/repo/src/methodology/report.cc" "src/CMakeFiles/rigor.dir/methodology/report.cc.o" "gcc" "src/CMakeFiles/rigor.dir/methodology/report.cc.o.d"
  "/root/repo/src/methodology/workflow.cc" "src/CMakeFiles/rigor.dir/methodology/workflow.cc.o" "gcc" "src/CMakeFiles/rigor.dir/methodology/workflow.cc.o.d"
  "/root/repo/src/sim/branch_predictor.cc" "src/CMakeFiles/rigor.dir/sim/branch_predictor.cc.o" "gcc" "src/CMakeFiles/rigor.dir/sim/branch_predictor.cc.o.d"
  "/root/repo/src/sim/btb.cc" "src/CMakeFiles/rigor.dir/sim/btb.cc.o" "gcc" "src/CMakeFiles/rigor.dir/sim/btb.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/CMakeFiles/rigor.dir/sim/cache.cc.o" "gcc" "src/CMakeFiles/rigor.dir/sim/cache.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/rigor.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/rigor.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/core.cc" "src/CMakeFiles/rigor.dir/sim/core.cc.o" "gcc" "src/CMakeFiles/rigor.dir/sim/core.cc.o.d"
  "/root/repo/src/sim/func_unit.cc" "src/CMakeFiles/rigor.dir/sim/func_unit.cc.o" "gcc" "src/CMakeFiles/rigor.dir/sim/func_unit.cc.o.d"
  "/root/repo/src/sim/memory_system.cc" "src/CMakeFiles/rigor.dir/sim/memory_system.cc.o" "gcc" "src/CMakeFiles/rigor.dir/sim/memory_system.cc.o.d"
  "/root/repo/src/sim/ras.cc" "src/CMakeFiles/rigor.dir/sim/ras.cc.o" "gcc" "src/CMakeFiles/rigor.dir/sim/ras.cc.o.d"
  "/root/repo/src/sim/replacement.cc" "src/CMakeFiles/rigor.dir/sim/replacement.cc.o" "gcc" "src/CMakeFiles/rigor.dir/sim/replacement.cc.o.d"
  "/root/repo/src/sim/stats_report.cc" "src/CMakeFiles/rigor.dir/sim/stats_report.cc.o" "gcc" "src/CMakeFiles/rigor.dir/sim/stats_report.cc.o.d"
  "/root/repo/src/sim/tlb.cc" "src/CMakeFiles/rigor.dir/sim/tlb.cc.o" "gcc" "src/CMakeFiles/rigor.dir/sim/tlb.cc.o.d"
  "/root/repo/src/stats/anova.cc" "src/CMakeFiles/rigor.dir/stats/anova.cc.o" "gcc" "src/CMakeFiles/rigor.dir/stats/anova.cc.o.d"
  "/root/repo/src/stats/correlation.cc" "src/CMakeFiles/rigor.dir/stats/correlation.cc.o" "gcc" "src/CMakeFiles/rigor.dir/stats/correlation.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/CMakeFiles/rigor.dir/stats/descriptive.cc.o" "gcc" "src/CMakeFiles/rigor.dir/stats/descriptive.cc.o.d"
  "/root/repo/src/stats/distributions.cc" "src/CMakeFiles/rigor.dir/stats/distributions.cc.o" "gcc" "src/CMakeFiles/rigor.dir/stats/distributions.cc.o.d"
  "/root/repo/src/stats/linear_model.cc" "src/CMakeFiles/rigor.dir/stats/linear_model.cc.o" "gcc" "src/CMakeFiles/rigor.dir/stats/linear_model.cc.o.d"
  "/root/repo/src/stats/special_functions.cc" "src/CMakeFiles/rigor.dir/stats/special_functions.cc.o" "gcc" "src/CMakeFiles/rigor.dir/stats/special_functions.cc.o.d"
  "/root/repo/src/stats/yates.cc" "src/CMakeFiles/rigor.dir/stats/yates.cc.o" "gcc" "src/CMakeFiles/rigor.dir/stats/yates.cc.o.d"
  "/root/repo/src/trace/generator.cc" "src/CMakeFiles/rigor.dir/trace/generator.cc.o" "gcc" "src/CMakeFiles/rigor.dir/trace/generator.cc.o.d"
  "/root/repo/src/trace/instruction.cc" "src/CMakeFiles/rigor.dir/trace/instruction.cc.o" "gcc" "src/CMakeFiles/rigor.dir/trace/instruction.cc.o.d"
  "/root/repo/src/trace/rng.cc" "src/CMakeFiles/rigor.dir/trace/rng.cc.o" "gcc" "src/CMakeFiles/rigor.dir/trace/rng.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/rigor.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/rigor.dir/trace/trace_io.cc.o.d"
  "/root/repo/src/trace/workload_profile.cc" "src/CMakeFiles/rigor.dir/trace/workload_profile.cc.o" "gcc" "src/CMakeFiles/rigor.dir/trace/workload_profile.cc.o.d"
  "/root/repo/src/trace/workloads.cc" "src/CMakeFiles/rigor.dir/trace/workloads.cc.o" "gcc" "src/CMakeFiles/rigor.dir/trace/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
