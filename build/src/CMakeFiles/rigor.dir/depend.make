# Empty dependencies file for rigor.
# This may be replaced when dependencies are built.
