file(REMOVE_RECURSE
  "librigor.a"
)
