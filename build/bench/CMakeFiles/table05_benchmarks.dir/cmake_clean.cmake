file(REMOVE_RECURSE
  "CMakeFiles/table05_benchmarks.dir/table05_benchmarks.cc.o"
  "CMakeFiles/table05_benchmarks.dir/table05_benchmarks.cc.o.d"
  "table05_benchmarks"
  "table05_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
