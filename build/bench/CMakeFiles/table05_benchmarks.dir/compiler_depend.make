# Empty compiler generated dependencies file for table05_benchmarks.
# This may be replaced when dependencies are built.
