# Empty compiler generated dependencies file for table12_enhancement_analysis.
# This may be replaced when dependencies are built.
