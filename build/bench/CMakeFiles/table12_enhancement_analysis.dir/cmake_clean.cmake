file(REMOVE_RECURSE
  "CMakeFiles/table12_enhancement_analysis.dir/table12_enhancement_analysis.cc.o"
  "CMakeFiles/table12_enhancement_analysis.dir/table12_enhancement_analysis.cc.o.d"
  "table12_enhancement_analysis"
  "table12_enhancement_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_enhancement_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
