file(REMOVE_RECURSE
  "CMakeFiles/table09_parameter_ranking.dir/table09_parameter_ranking.cc.o"
  "CMakeFiles/table09_parameter_ranking.dir/table09_parameter_ranking.cc.o.d"
  "table09_parameter_ranking"
  "table09_parameter_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_parameter_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
