# Empty dependencies file for table09_parameter_ranking.
# This may be replaced when dependencies are built.
