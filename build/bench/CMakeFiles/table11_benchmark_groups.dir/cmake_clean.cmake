file(REMOVE_RECURSE
  "CMakeFiles/table11_benchmark_groups.dir/table11_benchmark_groups.cc.o"
  "CMakeFiles/table11_benchmark_groups.dir/table11_benchmark_groups.cc.o.d"
  "table11_benchmark_groups"
  "table11_benchmark_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_benchmark_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
