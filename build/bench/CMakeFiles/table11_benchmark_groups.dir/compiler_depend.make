# Empty compiler generated dependencies file for table11_benchmark_groups.
# This may be replaced when dependencies are built.
