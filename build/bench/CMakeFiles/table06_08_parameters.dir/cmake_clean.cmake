file(REMOVE_RECURSE
  "CMakeFiles/table06_08_parameters.dir/table06_08_parameters.cc.o"
  "CMakeFiles/table06_08_parameters.dir/table06_08_parameters.cc.o.d"
  "table06_08_parameters"
  "table06_08_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_08_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
