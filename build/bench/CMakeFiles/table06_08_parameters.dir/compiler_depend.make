# Empty compiler generated dependencies file for table06_08_parameters.
# This may be replaced when dependencies are built.
