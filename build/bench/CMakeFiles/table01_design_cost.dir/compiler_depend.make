# Empty compiler generated dependencies file for table01_design_cost.
# This may be replaced when dependencies are built.
