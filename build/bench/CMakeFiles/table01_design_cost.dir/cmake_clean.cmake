file(REMOVE_RECURSE
  "CMakeFiles/table01_design_cost.dir/table01_design_cost.cc.o"
  "CMakeFiles/table01_design_cost.dir/table01_design_cost.cc.o.d"
  "table01_design_cost"
  "table01_design_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_design_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
