# Empty compiler generated dependencies file for table02_pb_matrix.
# This may be replaced when dependencies are built.
