file(REMOVE_RECURSE
  "CMakeFiles/ablation_rob_value_reuse.dir/ablation_rob_value_reuse.cc.o"
  "CMakeFiles/ablation_rob_value_reuse.dir/ablation_rob_value_reuse.cc.o.d"
  "ablation_rob_value_reuse"
  "ablation_rob_value_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rob_value_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
