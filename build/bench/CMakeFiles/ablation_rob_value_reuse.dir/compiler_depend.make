# Empty compiler generated dependencies file for ablation_rob_value_reuse.
# This may be replaced when dependencies are built.
