file(REMOVE_RECURSE
  "CMakeFiles/table04_example_analysis.dir/table04_example_analysis.cc.o"
  "CMakeFiles/table04_example_analysis.dir/table04_example_analysis.cc.o.d"
  "table04_example_analysis"
  "table04_example_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_example_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
