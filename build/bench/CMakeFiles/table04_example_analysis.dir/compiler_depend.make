# Empty compiler generated dependencies file for table04_example_analysis.
# This may be replaced when dependencies are built.
