file(REMOVE_RECURSE
  "CMakeFiles/ablation_design_choice.dir/ablation_design_choice.cc.o"
  "CMakeFiles/ablation_design_choice.dir/ablation_design_choice.cc.o.d"
  "ablation_design_choice"
  "ablation_design_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_design_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
