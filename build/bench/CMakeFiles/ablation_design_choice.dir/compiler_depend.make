# Empty compiler generated dependencies file for ablation_design_choice.
# This may be replaced when dependencies are built.
