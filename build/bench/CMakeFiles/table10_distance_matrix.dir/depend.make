# Empty dependencies file for table10_distance_matrix.
# This may be replaced when dependencies are built.
