file(REMOVE_RECURSE
  "CMakeFiles/table10_distance_matrix.dir/table10_distance_matrix.cc.o"
  "CMakeFiles/table10_distance_matrix.dir/table10_distance_matrix.cc.o.d"
  "table10_distance_matrix"
  "table10_distance_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_distance_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
