# Empty compiler generated dependencies file for table03_foldover_matrix.
# This may be replaced when dependencies are built.
