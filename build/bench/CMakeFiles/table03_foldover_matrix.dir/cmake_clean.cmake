file(REMOVE_RECURSE
  "CMakeFiles/table03_foldover_matrix.dir/table03_foldover_matrix.cc.o"
  "CMakeFiles/table03_foldover_matrix.dir/table03_foldover_matrix.cc.o.d"
  "table03_foldover_matrix"
  "table03_foldover_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_foldover_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
