
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/distance_matrix_test.cc" "tests/CMakeFiles/rigor_tests.dir/cluster/distance_matrix_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/cluster/distance_matrix_test.cc.o.d"
  "/root/repo/tests/cluster/distance_test.cc" "tests/CMakeFiles/rigor_tests.dir/cluster/distance_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/cluster/distance_test.cc.o.d"
  "/root/repo/tests/cluster/hierarchical_test.cc" "tests/CMakeFiles/rigor_tests.dir/cluster/hierarchical_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/cluster/hierarchical_test.cc.o.d"
  "/root/repo/tests/cluster/threshold_grouping_test.cc" "tests/CMakeFiles/rigor_tests.dir/cluster/threshold_grouping_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/cluster/threshold_grouping_test.cc.o.d"
  "/root/repo/tests/cluster/union_find_test.cc" "tests/CMakeFiles/rigor_tests.dir/cluster/union_find_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/cluster/union_find_test.cc.o.d"
  "/root/repo/tests/doe/design_cost_test.cc" "tests/CMakeFiles/rigor_tests.dir/doe/design_cost_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/doe/design_cost_test.cc.o.d"
  "/root/repo/tests/doe/design_matrix_test.cc" "tests/CMakeFiles/rigor_tests.dir/doe/design_matrix_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/doe/design_matrix_test.cc.o.d"
  "/root/repo/tests/doe/design_property_test.cc" "tests/CMakeFiles/rigor_tests.dir/doe/design_property_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/doe/design_property_test.cc.o.d"
  "/root/repo/tests/doe/effects_test.cc" "tests/CMakeFiles/rigor_tests.dir/doe/effects_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/doe/effects_test.cc.o.d"
  "/root/repo/tests/doe/foldover_test.cc" "tests/CMakeFiles/rigor_tests.dir/doe/foldover_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/doe/foldover_test.cc.o.d"
  "/root/repo/tests/doe/galois_test.cc" "tests/CMakeFiles/rigor_tests.dir/doe/galois_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/doe/galois_test.cc.o.d"
  "/root/repo/tests/doe/hadamard_test.cc" "tests/CMakeFiles/rigor_tests.dir/doe/hadamard_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/doe/hadamard_test.cc.o.d"
  "/root/repo/tests/doe/one_at_a_time_test.cc" "tests/CMakeFiles/rigor_tests.dir/doe/one_at_a_time_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/doe/one_at_a_time_test.cc.o.d"
  "/root/repo/tests/doe/pb_design_test.cc" "tests/CMakeFiles/rigor_tests.dir/doe/pb_design_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/doe/pb_design_test.cc.o.d"
  "/root/repo/tests/doe/ranking_test.cc" "tests/CMakeFiles/rigor_tests.dir/doe/ranking_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/doe/ranking_test.cc.o.d"
  "/root/repo/tests/enhance/precompute_test.cc" "tests/CMakeFiles/rigor_tests.dir/enhance/precompute_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/enhance/precompute_test.cc.o.d"
  "/root/repo/tests/enhance/value_reuse_test.cc" "tests/CMakeFiles/rigor_tests.dir/enhance/value_reuse_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/enhance/value_reuse_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/rigor_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/integration/property_test.cc" "tests/CMakeFiles/rigor_tests.dir/integration/property_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/integration/property_test.cc.o.d"
  "/root/repo/tests/methodology/classification_test.cc" "tests/CMakeFiles/rigor_tests.dir/methodology/classification_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/methodology/classification_test.cc.o.d"
  "/root/repo/tests/methodology/csv_export_test.cc" "tests/CMakeFiles/rigor_tests.dir/methodology/csv_export_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/methodology/csv_export_test.cc.o.d"
  "/root/repo/tests/methodology/enhancement_analysis_test.cc" "tests/CMakeFiles/rigor_tests.dir/methodology/enhancement_analysis_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/methodology/enhancement_analysis_test.cc.o.d"
  "/root/repo/tests/methodology/parameter_space_test.cc" "tests/CMakeFiles/rigor_tests.dir/methodology/parameter_space_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/methodology/parameter_space_test.cc.o.d"
  "/root/repo/tests/methodology/pb_experiment_test.cc" "tests/CMakeFiles/rigor_tests.dir/methodology/pb_experiment_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/methodology/pb_experiment_test.cc.o.d"
  "/root/repo/tests/methodology/published_data_test.cc" "tests/CMakeFiles/rigor_tests.dir/methodology/published_data_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/methodology/published_data_test.cc.o.d"
  "/root/repo/tests/methodology/rank_table_test.cc" "tests/CMakeFiles/rigor_tests.dir/methodology/rank_table_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/methodology/rank_table_test.cc.o.d"
  "/root/repo/tests/methodology/workflow_test.cc" "tests/CMakeFiles/rigor_tests.dir/methodology/workflow_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/methodology/workflow_test.cc.o.d"
  "/root/repo/tests/sim/branch_predictor_test.cc" "tests/CMakeFiles/rigor_tests.dir/sim/branch_predictor_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/sim/branch_predictor_test.cc.o.d"
  "/root/repo/tests/sim/btb_test.cc" "tests/CMakeFiles/rigor_tests.dir/sim/btb_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/sim/btb_test.cc.o.d"
  "/root/repo/tests/sim/cache_property_test.cc" "tests/CMakeFiles/rigor_tests.dir/sim/cache_property_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/sim/cache_property_test.cc.o.d"
  "/root/repo/tests/sim/cache_test.cc" "tests/CMakeFiles/rigor_tests.dir/sim/cache_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/sim/cache_test.cc.o.d"
  "/root/repo/tests/sim/config_test.cc" "tests/CMakeFiles/rigor_tests.dir/sim/config_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/sim/config_test.cc.o.d"
  "/root/repo/tests/sim/core_test.cc" "tests/CMakeFiles/rigor_tests.dir/sim/core_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/sim/core_test.cc.o.d"
  "/root/repo/tests/sim/func_unit_test.cc" "tests/CMakeFiles/rigor_tests.dir/sim/func_unit_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/sim/func_unit_test.cc.o.d"
  "/root/repo/tests/sim/memory_system_test.cc" "tests/CMakeFiles/rigor_tests.dir/sim/memory_system_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/sim/memory_system_test.cc.o.d"
  "/root/repo/tests/sim/ras_test.cc" "tests/CMakeFiles/rigor_tests.dir/sim/ras_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/sim/ras_test.cc.o.d"
  "/root/repo/tests/sim/replacement_test.cc" "tests/CMakeFiles/rigor_tests.dir/sim/replacement_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/sim/replacement_test.cc.o.d"
  "/root/repo/tests/sim/slot_allocator_test.cc" "tests/CMakeFiles/rigor_tests.dir/sim/slot_allocator_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/sim/slot_allocator_test.cc.o.d"
  "/root/repo/tests/sim/tlb_test.cc" "tests/CMakeFiles/rigor_tests.dir/sim/tlb_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/sim/tlb_test.cc.o.d"
  "/root/repo/tests/stats/anova_test.cc" "tests/CMakeFiles/rigor_tests.dir/stats/anova_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/stats/anova_test.cc.o.d"
  "/root/repo/tests/stats/correlation_test.cc" "tests/CMakeFiles/rigor_tests.dir/stats/correlation_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/stats/correlation_test.cc.o.d"
  "/root/repo/tests/stats/descriptive_test.cc" "tests/CMakeFiles/rigor_tests.dir/stats/descriptive_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/stats/descriptive_test.cc.o.d"
  "/root/repo/tests/stats/distribution_property_test.cc" "tests/CMakeFiles/rigor_tests.dir/stats/distribution_property_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/stats/distribution_property_test.cc.o.d"
  "/root/repo/tests/stats/distributions_test.cc" "tests/CMakeFiles/rigor_tests.dir/stats/distributions_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/stats/distributions_test.cc.o.d"
  "/root/repo/tests/stats/linear_model_test.cc" "tests/CMakeFiles/rigor_tests.dir/stats/linear_model_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/stats/linear_model_test.cc.o.d"
  "/root/repo/tests/stats/special_functions_test.cc" "tests/CMakeFiles/rigor_tests.dir/stats/special_functions_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/stats/special_functions_test.cc.o.d"
  "/root/repo/tests/stats/yates_test.cc" "tests/CMakeFiles/rigor_tests.dir/stats/yates_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/stats/yates_test.cc.o.d"
  "/root/repo/tests/trace/generator_test.cc" "tests/CMakeFiles/rigor_tests.dir/trace/generator_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/trace/generator_test.cc.o.d"
  "/root/repo/tests/trace/rng_test.cc" "tests/CMakeFiles/rigor_tests.dir/trace/rng_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/trace/rng_test.cc.o.d"
  "/root/repo/tests/trace/trace_io_test.cc" "tests/CMakeFiles/rigor_tests.dir/trace/trace_io_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/trace/trace_io_test.cc.o.d"
  "/root/repo/tests/trace/workload_test.cc" "tests/CMakeFiles/rigor_tests.dir/trace/workload_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/trace/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rigor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
