/**
 * @file
 * google-benchmark microbenchmarks: throughput of the simulator core,
 * the synthetic trace generator, PB design construction, and the
 * effect/ranking analysis — the pieces whose speed determines whether
 * the 1144-simulation experiment is laptop-scale.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "doe/effects.hh"
#include "doe/foldover.hh"
#include "doe/pb_design.hh"
#include "exec/engine.hh"
#include "methodology/parameter_space.hh"
#include "methodology/pb_experiment.hh"
#include "methodology/workflow.hh"
#include "sim/core.hh"
#include "trace/generator.hh"
#include "trace/workloads.hh"

namespace doe = rigor::doe;
namespace exec = rigor::exec;
namespace methodology = rigor::methodology;
namespace sim = rigor::sim;
namespace trace = rigor::trace;

namespace
{

void
BM_TraceGeneration(benchmark::State &state)
{
    const trace::WorkloadProfile &p = trace::workloadByName("gcc");
    const auto n = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        trace::SyntheticTraceGenerator gen(p, n);
        trace::Instruction inst;
        std::uint64_t count = 0;
        while (gen.next(inst))
            ++count;
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
}
BENCHMARK(BM_TraceGeneration)->Arg(100000);

void
BM_CoreSimulation(benchmark::State &state)
{
    const trace::WorkloadProfile &p = trace::workloadByName("gzip");
    const auto n = static_cast<std::uint64_t>(state.range(0));
    const sim::ProcessorConfig config =
        methodology::uniformConfig(doe::Level::High);
    for (auto _ : state) {
        trace::SyntheticTraceGenerator gen(p, n);
        sim::SuperscalarCore core(config);
        benchmark::DoNotOptimize(core.run(gen).cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
}
BENCHMARK(BM_CoreSimulation)->Arg(100000);

void
BM_CoreSimulationMemoryBound(benchmark::State &state)
{
    const trace::WorkloadProfile &p = trace::workloadByName("mcf");
    const auto n = static_cast<std::uint64_t>(state.range(0));
    const sim::ProcessorConfig config =
        methodology::uniformConfig(doe::Level::Low);
    for (auto _ : state) {
        trace::SyntheticTraceGenerator gen(p, n);
        sim::SuperscalarCore core(config);
        benchmark::DoNotOptimize(core.run(gen).cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
}
BENCHMARK(BM_CoreSimulationMemoryBound)->Arg(100000);

void
BM_PbDesignConstruction(benchmark::State &state)
{
    const auto x = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const doe::DesignMatrix m = doe::foldover(doe::pbDesign(x));
        benchmark::DoNotOptimize(m.numRows());
    }
}
BENCHMARK(BM_PbDesignConstruction)->Arg(8)->Arg(44)->Arg(84);

void
BM_EffectComputation(benchmark::State &state)
{
    const doe::DesignMatrix design =
        doe::foldover(doe::pbDesign(44));
    std::vector<double> responses(design.numRows());
    for (std::size_t i = 0; i < responses.size(); ++i)
        responses[i] = static_cast<double>(i * 37 % 101);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            doe::computeEffects(design, responses));
    }
}
BENCHMARK(BM_EffectComputation);

void
BM_ConfigFromLevels(benchmark::State &state)
{
    const doe::DesignMatrix design = doe::pbDesign(44);
    const std::vector<doe::Level> levels = design.row(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            methodology::configForLevels(levels).robEntries);
    }
}
BENCHMARK(BM_ConfigFromLevels);

/** A small batch of distinct engine jobs: 2 workloads x 16 screen
 *  rows, enough work per job for the pool to matter. */
std::vector<exec::SimJob>
engineBatch(std::uint64_t instructions)
{
    const doe::DesignMatrix design = doe::pbDesign(44);
    std::vector<exec::SimJob> jobs;
    for (const char *name : {"gzip", "mcf"}) {
        const trace::WorkloadProfile &w = trace::workloadByName(name);
        for (std::size_t row = 0; row < 16; ++row) {
            exec::SimJob job;
            job.workload = &w;
            job.config = methodology::configForLevels(design.row(row));
            job.instructions = instructions;
            job.label = name;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

/**
 * Thread scaling of the raw engine over a fixed batch. The cache is
 * disabled and the engine rebuilt per iteration so every run is
 * simulated — the items/s ratio between thread counts is the honest
 * pool speedup.
 */
void
BM_EngineBatchThreadScaling(benchmark::State &state)
{
    const auto threads = static_cast<unsigned>(state.range(0));
    const std::vector<exec::SimJob> jobs = engineBatch(20000);
    for (auto _ : state) {
        exec::SimulationEngine engine(
            exec::EngineOptions{threads, false});
        benchmark::DoNotOptimize(engine.run(jobs));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(jobs.size()) * state.iterations());
}
BENCHMARK(BM_EngineBatchThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency())))
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/** Rerunning an identical batch through one engine: every run should
 *  be a cache hit, so this measures pure memoization overhead. */
void
BM_EngineCachedRerun(benchmark::State &state)
{
    const std::vector<exec::SimJob> jobs = engineBatch(20000);
    exec::SimulationEngine engine(exec::EngineOptions{1, true});
    engine.run(jobs); // warm the cache
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.run(jobs));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(jobs.size()) * state.iterations());
}
BENCHMARK(BM_EngineCachedRerun);

/**
 * The acceptance-criterion benchmark: end-to-end recommended workflow
 * (PB screen + 2^k factorial) at 1..N threads. On a 4+ core machine
 * the N-thread row should be >= 2x the 1-thread row.
 */
void
BM_RecommendedWorkflowThreadScaling(benchmark::State &state)
{
    methodology::WorkflowOptions opts;
    opts.instructionsPerRun = 2000;
    opts.warmupInstructions = 0;
    opts.maxCriticalParameters = 3;
    opts.campaign.threads = static_cast<unsigned>(state.range(0));
    const std::vector<trace::WorkloadProfile> workloads = {
        trace::workloadByName("gzip"),
        trace::workloadByName("mcf"),
    };
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            methodology::runRecommendedWorkflow(workloads, opts)
                .execution.runsCompleted);
    }
}
BENCHMARK(BM_RecommendedWorkflowThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency())))
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace
