/**
 * @file
 * google-benchmark microbenchmarks: throughput of the simulator core,
 * the synthetic trace generator, PB design construction, and the
 * effect/ranking analysis — the pieces whose speed determines whether
 * the 1144-simulation experiment is laptop-scale.
 */

#include <benchmark/benchmark.h>

#include "doe/effects.hh"
#include "doe/foldover.hh"
#include "doe/pb_design.hh"
#include "methodology/parameter_space.hh"
#include "methodology/pb_experiment.hh"
#include "sim/core.hh"
#include "trace/generator.hh"
#include "trace/workloads.hh"

namespace doe = rigor::doe;
namespace methodology = rigor::methodology;
namespace sim = rigor::sim;
namespace trace = rigor::trace;

namespace
{

void
BM_TraceGeneration(benchmark::State &state)
{
    const trace::WorkloadProfile &p = trace::workloadByName("gcc");
    const auto n = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        trace::SyntheticTraceGenerator gen(p, n);
        trace::Instruction inst;
        std::uint64_t count = 0;
        while (gen.next(inst))
            ++count;
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
}
BENCHMARK(BM_TraceGeneration)->Arg(100000);

void
BM_CoreSimulation(benchmark::State &state)
{
    const trace::WorkloadProfile &p = trace::workloadByName("gzip");
    const auto n = static_cast<std::uint64_t>(state.range(0));
    const sim::ProcessorConfig config =
        methodology::uniformConfig(doe::Level::High);
    for (auto _ : state) {
        trace::SyntheticTraceGenerator gen(p, n);
        sim::SuperscalarCore core(config);
        benchmark::DoNotOptimize(core.run(gen).cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
}
BENCHMARK(BM_CoreSimulation)->Arg(100000);

void
BM_CoreSimulationMemoryBound(benchmark::State &state)
{
    const trace::WorkloadProfile &p = trace::workloadByName("mcf");
    const auto n = static_cast<std::uint64_t>(state.range(0));
    const sim::ProcessorConfig config =
        methodology::uniformConfig(doe::Level::Low);
    for (auto _ : state) {
        trace::SyntheticTraceGenerator gen(p, n);
        sim::SuperscalarCore core(config);
        benchmark::DoNotOptimize(core.run(gen).cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
}
BENCHMARK(BM_CoreSimulationMemoryBound)->Arg(100000);

void
BM_PbDesignConstruction(benchmark::State &state)
{
    const auto x = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const doe::DesignMatrix m = doe::foldover(doe::pbDesign(x));
        benchmark::DoNotOptimize(m.numRows());
    }
}
BENCHMARK(BM_PbDesignConstruction)->Arg(8)->Arg(44)->Arg(84);

void
BM_EffectComputation(benchmark::State &state)
{
    const doe::DesignMatrix design =
        doe::foldover(doe::pbDesign(44));
    std::vector<double> responses(design.numRows());
    for (std::size_t i = 0; i < responses.size(); ++i)
        responses[i] = static_cast<double>(i * 37 % 101);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            doe::computeEffects(design, responses));
    }
}
BENCHMARK(BM_EffectComputation);

void
BM_ConfigFromLevels(benchmark::State &state)
{
    const doe::DesignMatrix design = doe::pbDesign(44);
    const std::vector<doe::Level> levels = design.row(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            methodology::configForLevels(levels).robEntries);
    }
}
BENCHMARK(BM_ConfigFromLevels);

} // namespace
