/**
 * @file
 * Shared helpers for the table-regeneration harnesses.
 */

#ifndef RIGOR_BENCH_COMMON_HH
#define RIGOR_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "methodology/pb_experiment.hh"
#include "trace/workloads.hh"

namespace rigor::bench
{

/**
 * Dynamic instructions per simulation run. The paper ran the full
 * MinneSPEC workloads (0.6-4.0 G instructions); the default here
 * keeps the 1144-simulation experiment to laptop scale. Override
 * with RIGOR_INSTRUCTIONS.
 */
inline std::uint64_t
instructionsPerRun()
{
    if (const char *env = std::getenv("RIGOR_INSTRUCTIONS")) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<std::uint64_t>(v);
    }
    return 100000;
}

/** Run the full 88-configuration experiment over all 13 workloads. */
inline methodology::PbExperimentResult
runFullExperiment(const methodology::HookFactory &hook_factory = {})
{
    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = instructionsPerRun();
    // A full-length warm-up lets the sequential/strided sweeps cover
    // cache-resident working sets before measurement begins.
    opts.warmupInstructions = opts.instructionsPerRun;
    opts.hookFactory = hook_factory;
    std::fprintf(stderr,
                 "[bench] running 88 configs x 13 workloads at %llu "
                 "instructions per run...\n",
                 static_cast<unsigned long long>(
                     opts.instructionsPerRun));
    return methodology::runPbExperiment(trace::spec2000Workloads(),
                                        opts);
}

} // namespace rigor::bench

#endif // RIGOR_BENCH_COMMON_HH
