/**
 * @file
 * Shared helpers for the table-regeneration harnesses.
 */

#ifndef RIGOR_BENCH_COMMON_HH
#define RIGOR_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exec/engine.hh"
#include "methodology/pb_experiment.hh"
#include "obs/bench_report.hh"
#include "trace/workloads.hh"

namespace rigor::bench
{

/**
 * One execution engine shared by every experiment a harness runs, so
 * the run cache carries across base/enhanced experiment pairs and the
 * progress counters aggregate the whole program.
 */
inline exec::SimulationEngine &
sharedEngine()
{
    static exec::SimulationEngine engine;
    return engine;
}

/** Print the engine's counters to stderr (harness status output). */
inline void
reportProgress(const char *stage)
{
    std::fprintf(stderr, "[bench] %s: %s\n", stage,
                 sharedEngine().progress().snapshot().toString().c_str());
}

/**
 * Dynamic instructions per simulation run. The paper ran the full
 * MinneSPEC workloads (0.6-4.0 G instructions); the default here
 * keeps the 1144-simulation experiment to laptop scale. Override
 * with RIGOR_INSTRUCTIONS.
 */
inline std::uint64_t
instructionsPerRun()
{
    if (const char *env = std::getenv("RIGOR_INSTRUCTIONS")) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<std::uint64_t>(v);
    }
    return 100000;
}

/** Experiment options every harness shares (the shared engine, the
 *  RIGOR_INSTRUCTIONS-scaled run length, full-length warm-up). */
inline methodology::PbExperimentOptions
fullExperimentOptions()
{
    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = instructionsPerRun();
    // A full-length warm-up lets the sequential/strided sweeps cover
    // cache-resident working sets before measurement begins.
    opts.warmupInstructions = opts.instructionsPerRun;
    opts.campaign.engine = &sharedEngine();
    return opts;
}

/**
 * Write a machine-readable BENCH_<pr>.json throughput report from the
 * shared engine's counters (used by the CI perf-smoke job).
 */
inline void
writeBenchReportFromEngine(const std::string &path,
                           const std::string &name,
                           const exec::ProgressSnapshot &progress)
{
    obs::BenchReport report;
    report.name = name;
    report.wallSeconds = progress.wallSeconds;
    report.runsTotal = progress.runsTotal;
    report.runsCompleted = progress.runsCompleted;
    report.runsPerSecond =
        progress.wallSeconds > 0.0
            ? static_cast<double>(progress.runsCompleted) /
                  progress.wallSeconds
            : 0.0;
    report.simulatedInstructions = progress.simulatedInstructions;
    report.mips = progress.wallSeconds > 0.0
                      ? static_cast<double>(
                            progress.simulatedInstructions) /
                            progress.wallSeconds / 1e6
                      : 0.0;
    report.threads = sharedEngine().threads();
    report.cacheHits = progress.cacheHits;
    report.journalHits = progress.journalHits;
    obs::writeBenchReport(path, report);
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

/**
 * Run the full 88-configuration experiment over all 13 workloads.
 *
 * @param hook_factory optional enhancement hook
 * @param hook_id stable cache identity of the hook (empty = hooked
 *        runs bypass the shared engine's cache)
 */
inline methodology::PbExperimentResult
runFullExperiment(const methodology::HookFactory &hook_factory = {},
                  const std::string &hook_id = {})
{
    methodology::PbExperimentOptions opts = fullExperimentOptions();
    opts.hookFactory = hook_factory;
    opts.hookId = hook_id;
    std::fprintf(stderr,
                 "[bench] running 88 configs x 13 workloads at %llu "
                 "instructions per run on %u threads...\n",
                 static_cast<unsigned long long>(
                     opts.instructionsPerRun),
                 sharedEngine().threads());
    const methodology::PbExperimentResult result =
        methodology::runPbExperiment(trace::spec2000Workloads(),
                                     opts);
    reportProgress("experiment done");
    return result;
}

} // namespace rigor::bench

#endif // RIGOR_BENCH_COMMON_HH
