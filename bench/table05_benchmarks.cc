/**
 * @file
 * Regenerates Table 5: the thirteen SPEC 2000 benchmarks used in the
 * study, with the synthetic-profile substitution parameters recorded
 * alongside (see DESIGN.md).
 */

#include <cstdio>

#include "methodology/report.hh"
#include "trace/workloads.hh"

int
main()
{
    namespace trace = rigor::trace;
    namespace methodology = rigor::methodology;

    std::printf("Table 5: Selected Benchmarks from the SPEC 2000 "
                "Benchmark Suite\n");
    std::printf("(workloads are synthetic statistical stand-ins; see "
                "DESIGN.md section 2)\n\n");

    methodology::TextTable table(
        {"Benchmark", "Type", "Paper Minsts", "Code KB", "Data KB",
         "Pred.", "ValLoc"});
    for (const trace::WorkloadProfile &p : trace::spec2000Workloads()) {
        table.addRow({
            p.name,
            p.isFloatingPoint ? "Floating-Point" : "Integer",
            methodology::formatDouble(p.paperInstructionsMillions, 1),
            std::to_string(p.codeFootprintBytes / 1024),
            std::to_string(p.dataFootprintBytes / 1024),
            methodology::formatDouble(p.branchPredictability, 2),
            methodology::formatDouble(p.valueLocality, 2),
        });
    }
    std::printf("%s", table.toString().c_str());
    return 0;
}
