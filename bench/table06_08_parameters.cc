/**
 * @file
 * Regenerates Tables 6-8: every varied processor parameter with its
 * low and high Plackett-Burman values, and demonstrates the linked
 * ("shaded") parameter rules on concrete configurations.
 */

#include <cstdio>

#include "doe/design_matrix.hh"
#include "methodology/parameter_space.hh"
#include "methodology/report.hh"

int
main()
{
    namespace doe = rigor::doe;
    namespace methodology = rigor::methodology;

    std::printf("Tables 6-8: Processor Parameters and Their "
                "Plackett and Burman Values\n");
    std::printf("(%u parameters + 2 dummy factors = %u design "
                "factors -> X = 44, 88 runs with foldover)\n\n",
                methodology::numRealParameters,
                methodology::numFactors);

    methodology::TextTable table({"#", "Parameter", "Low/Off Value",
                                  "High/On Value"});
    unsigned idx = 1;
    for (const methodology::ParameterDef &def :
         methodology::parameterDefinitions()) {
        table.addRow({std::to_string(idx++), def.name, def.lowValue,
                      def.highValue});
    }
    std::printf("%s\n", table.toString().c_str());

    std::printf("Fixed: decode/issue/commit width = 4; replacement "
                "policy = LRU.\n");
    std::printf("Linked (shaded) parameters: LSQ = ratio x ROB; "
                "divide/FP mult/div/sqrt throughput = latency; "
                "following-block latency = 0.02 x first; D-TLB page "
                "size and latency = I-TLB's.\n\n");

    std::printf("All-low configuration:\n%s\n",
                methodology::uniformConfig(doe::Level::Low)
                    .toString()
                    .c_str());
    std::printf("All-high configuration:\n%s",
                methodology::uniformConfig(doe::Level::High)
                    .toString()
                    .c_str());
    return 0;
}
