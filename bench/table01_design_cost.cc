/**
 * @file
 * Regenerates Table 1: simulation counts and level of detail for the
 * one-at-a-time, fractional (PB), and full multifactorial designs,
 * plus the section 2.1 cost examples.
 */

#include <cstdio>
#include <inttypes.h>

#include "doe/design_cost.hh"
#include "methodology/report.hh"

int
main()
{
    using rigor::doe::DesignKind;
    using rigor::doe::designKindDetail;
    using rigor::doe::designKindName;
    using rigor::doe::simulationsRequired;

    std::printf("Table 1: Key Aspects of Three Simulation Designs "
                "(N parameters, two values each)\n\n");

    rigor::methodology::TextTable table(
        {"Design", "Example", "Simulations", "N=40", "N=43",
         "Level of Detail"});
    const DesignKind kinds[] = {DesignKind::OneAtATime,
                                DesignKind::PlackettBurman,
                                DesignKind::PlackettBurmanFoldover,
                                DesignKind::FullFactorial};
    const char *formulas[] = {"N+1", "~N (next mult. of 4)", "~2N",
                              "2^N"};
    const char *examples[] = {"Simple Sensitivity Analysis",
                              "Plackett and Burman",
                              "PB with foldover", "ANOVA"};
    for (std::size_t i = 0; i < 4; ++i) {
        table.addRow({designKindName(kinds[i]), examples[i],
                      formulas[i],
                      std::to_string(simulationsRequired(kinds[i], 40)),
                      std::to_string(simulationsRequired(kinds[i], 43)),
                      designKindDetail(kinds[i])});
    }
    std::printf("%s\n", table.toString().c_str());

    std::printf("Section 2.1 example: 40 parameters, all "
                "combinations = %" PRIu64 " simulations "
                "(more than 1 trillion: %s)\n",
                simulationsRequired(DesignKind::FullFactorial, 40),
                simulationsRequired(DesignKind::FullFactorial, 40) >
                        1000000000000ULL
                    ? "yes"
                    : "no");
    std::printf("The paper's experiment: 43 factors -> X = 44, "
                "foldover -> %" PRIu64 " simulations per benchmark\n",
                simulationsRequired(
                    DesignKind::PlackettBurmanFoldover, 43));
    return 0;
}
