/**
 * @file
 * Regenerates Table 10: the Euclidean distances between benchmark
 * rank vectors.
 *
 * Two modes, both reported:
 *  1. From the published Table 9 rank vectors — must reproduce the
 *     published Table 10 within print precision (exact-pipeline
 *     validation).
 *  2. From this repo's measured ranks (set RIGOR_MEASURED=0 to skip).
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hh"
#include "cluster/distance_matrix.hh"
#include "methodology/classification.hh"
#include "methodology/published_data.hh"

int
main()
{
    namespace cluster = rigor::cluster;
    namespace methodology = rigor::methodology;

    // ---- Mode 1: published ranks -> published distances ----
    const methodology::PublishedRankTable &t9 =
        methodology::publishedTable9();
    const cluster::DistanceMatrix computed =
        cluster::DistanceMatrix::fromPoints(
            t9.rankVectorsByBenchmark());

    std::printf("Table 10: Distance Between Benchmark Vectors, Based "
                "on Parameter Ranks\n(recomputed from the published "
                "Table 9 rank vectors)\n\n");
    std::printf("%s\n",
                computed.toString(t9.benchmarks).c_str());

    const cluster::DistanceMatrix &published =
        methodology::publishedTable10();
    double worst = 0.0;
    for (std::size_t i = 0; i < computed.size(); ++i)
        for (std::size_t j = i + 1; j < computed.size(); ++j)
            worst = std::max(worst, std::abs(computed.at(i, j) -
                                             published.at(i, j)));
    std::printf("[check] max |recomputed - published| = %.2f "
                "(print precision is 0.1)\n",
                worst);
    std::printf("[check] gzip vs vpr-Place: %.1f (paper: 89.8, "
                "sqrt(8058))\n\n",
                computed.at(0, 1));

    // ---- Mode 2: measured ranks ----
    const char *measured_env = std::getenv("RIGOR_MEASURED");
    if (measured_env && std::string(measured_env) == "0") {
        std::printf("(measured-mode skipped: RIGOR_MEASURED=0)\n");
        return 0;
    }
    const methodology::PbExperimentResult result =
        rigor::bench::runFullExperiment();
    const cluster::DistanceMatrix measured =
        cluster::DistanceMatrix::fromPoints(result.rankVectors());
    std::printf("Measured distance matrix (this repo's simulator and "
                "synthetic workloads):\n\n%s",
                measured.toString(result.benchmarks).c_str());
    return 0;
}
