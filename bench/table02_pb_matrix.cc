/**
 * @file
 * Regenerates Table 2: the Plackett-Burman design matrix for X = 8,
 * and verifies the construction properties for the X = 44 design the
 * paper's evaluation uses.
 */

#include <cstdio>

#include "doe/pb_design.hh"

int
main()
{
    namespace doe = rigor::doe;

    std::printf("Table 2: Plackett and Burman Design Matrix for "
                "X = 8 (up to 7 parameters)\n\n");
    const doe::DesignMatrix m8 = doe::pbDesign(8);
    std::printf("%s\n", m8.toString().c_str());
    std::printf("balanced: %s   orthogonal: %s\n\n",
                m8.isBalanced() ? "yes" : "no",
                m8.isOrthogonal() ? "yes" : "no");

    std::printf("Generator rows (derived from quadratic-residue "
                "sequences; match [Plackett46]):\n");
    for (unsigned x : {8u, 12u, 20u, 24u, 44u}) {
        std::printf("  X=%-3u: ", x);
        for (int v : doe::pbGeneratorRow(x))
            std::printf("%c", v > 0 ? '+' : '-');
        std::printf("\n");
    }

    const doe::DesignMatrix m44 = doe::pbDesign(44);
    std::printf("\nX = 44 design (the paper's evaluation): %zu rows x "
                "%zu columns, balanced: %s, orthogonal: %s\n",
                m44.numRows(), m44.numColumns(),
                m44.isBalanced() ? "yes" : "no",
                m44.isOrthogonal() ? "yes" : "no");
    return 0;
}
