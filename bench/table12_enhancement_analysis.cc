/**
 * @file
 * Regenerates Table 12: the PB ranking with the instruction
 * precomputation enhancement (128-entry static table, profiled per
 * workload), and the section 4.3 before/after analysis.
 *
 * Shape checks against the paper: the same parameters stay
 * significant, and among the significant parameters the Int ALUs lose
 * the most significance (their sum of ranks rises the most).
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.hh"
#include "enhance/precompute.hh"
#include "methodology/enhancement_analysis.hh"
#include "methodology/published_data.hh"
#include "methodology/rank_table.hh"
#include "trace/generator.hh"

int
main()
{
    namespace enhance = rigor::enhance;
    namespace methodology = rigor::methodology;
    namespace trace = rigor::trace;

    const std::uint64_t n = rigor::bench::instructionsPerRun();

    // Profile one 128-entry precomputation table per workload — the
    // "compiler pass" — then copy it into every run's hook.
    std::fprintf(stderr, "[bench] profiling precomputation tables...\n");
    std::map<std::string,
             std::shared_ptr<const enhance::PrecomputationTable>>
        tables;
    for (const trace::WorkloadProfile &p : trace::spec2000Workloads()) {
        auto table = std::make_shared<enhance::PrecomputationTable>(128);
        trace::SyntheticTraceGenerator gen(p, n);
        table->profileTrace(gen);
        std::fprintf(stderr, "  %-10s %zu tuples\n", p.name.c_str(),
                     table->size());
        tables.emplace(p.name, std::move(table));
    }

    // Both legs run through the shared engine as one paired
    // experiment: one pool, one run cache, aggregated counters.
    const methodology::EnhancementExperimentResult paired =
        methodology::runEnhancementExperiment(
            trace::spec2000Workloads(),
            rigor::bench::fullExperimentOptions(),
            [&](const trace::WorkloadProfile &p)
                -> std::unique_ptr<rigor::sim::ExecutionHook> {
                return std::make_unique<enhance::PrecomputationTable>(
                    *tables.at(p.name));
            },
            "precompute-128");
    const methodology::PbExperimentResult &base = paired.base;
    const methodology::PbExperimentResult &enhanced = paired.enhanced;
    rigor::bench::reportProgress("base + enhanced experiments done");

    std::printf("Table 12: PB Design Results with Instruction "
                "Precomputation (measured)\n\n%s\n",
                methodology::formatRankTable(enhanced.summaries,
                                             enhanced.benchmarks)
                    .c_str());

    const methodology::EnhancementComparison &cmp = paired.comparison;
    std::printf("Before/after sum-of-ranks shifts (sorted by "
                "|delta|):\n%s\n",
                cmp.toString(15).c_str());

    const methodology::RankShift relief =
        cmp.biggestReliefAmongTop(base.summaries, 10);
    std::printf("[check] biggest relief among the 10 most significant "
                "base parameters: %s (delta %+ld)\n",
                relief.name.c_str(), relief.delta());
    std::printf("        paper's result: Int ALUs (118 -> 137, "
                "delta +19)\n");

    // Top-10 set stability, the paper's other conclusion.
    const auto top_set = [](const auto &summaries) {
        std::vector<std::string> names;
        for (std::size_t i = 0; i < 10 && i < summaries.size(); ++i)
            names.push_back(summaries[i].name);
        std::sort(names.begin(), names.end());
        return names;
    };
    std::printf("[check] top-10 significant-parameter set unchanged "
                "by the enhancement: %s\n",
                top_set(base.summaries) == top_set(enhanced.summaries)
                    ? "yes"
                    : "no");
    return 0;
}
