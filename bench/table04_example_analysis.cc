/**
 * @file
 * Regenerates Table 4: the paper's worked example of computing PB
 * effects for parameters A-G from eight responses, including the
 * Effect_A = -23 expansion printed in the text.
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "doe/effects.hh"
#include "doe/pb_design.hh"
#include "doe/ranking.hh"

int
main()
{
    namespace doe = rigor::doe;

    const std::vector<double> responses = {1.0, 9.0, 74.0, 28.0,
                                           3.0, 6.0, 112.0, 84.0};
    const doe::DesignMatrix design = doe::pbDesign(8);
    const std::vector<double> effects =
        doe::computeEffects(design, responses);

    std::printf("Table 4: Example Analysis Using a Plackett and "
                "Burman Design Without Foldover (X = 8)\n\n");
    std::printf("       A   B   C   D   E   F   G   Result\n");
    for (std::size_t r = 0; r < design.numRows(); ++r) {
        std::printf("    ");
        for (std::size_t c = 0; c < design.numColumns(); ++c)
            std::printf("%+4d", design.sign(r, c));
        std::printf("   %6.0f\n", responses[r]);
    }
    std::printf("Effect ");
    for (double e : effects)
        std::printf("%5.0f ", e);
    std::printf("\n\n");

    std::printf("Effect_A = ");
    for (std::size_t r = 0; r < design.numRows(); ++r)
        std::printf("%s(%+d * %.0f)", r == 0 ? "" : " + ",
                    design.sign(r, 0), responses[r]);
    std::printf(" = %.0f\n\n", effects[0]);

    const std::vector<unsigned> ranks = doe::rankByMagnitude(effects);
    std::printf("Significance ranks (1 = most important): ");
    for (std::size_t c = 0; c < ranks.size(); ++c)
        std::printf("%c=%u ", static_cast<char>('A' + c), ranks[c]);
    std::printf("\n=> the parameters with the most effect are F, C, "
                "and D (paper's conclusion)\n");

    // Self-check against the published numbers.
    const std::vector<double> expected = {-23.0, -67.0, -137.0, 129.0,
                                          -105.0, -225.0, 73.0};
    if (effects != expected) {
        std::fprintf(stderr, "MISMATCH vs published Table 4!\n");
        return EXIT_FAILURE;
    }
    std::printf("\n[check] effects match the published Table 4 "
                "exactly.\n");
    return 0;
}
