/**
 * @file
 * Design-choice ablations for section 2 of the paper:
 *
 *  1. One-at-a-time vs PB on the real simulator: how differently the
 *     two designs rank the parameters, and how the one-at-a-time
 *     answer depends on where its base point sits.
 *  2. Foldover vs plain PB: rank stability of the top parameters.
 *  3. Range-width sensitivity: the paper's warning that too-wide
 *     low/high values inflate a parameter's apparent effect.
 */

#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "doe/effects.hh"
#include "doe/foldover.hh"
#include "doe/one_at_a_time.hh"
#include "doe/pb_design.hh"
#include "doe/ranking.hh"
#include "methodology/parameter_space.hh"
#include "methodology/pb_experiment.hh"
#include "methodology/report.hh"
#include "stats/correlation.hh"
#include "trace/workloads.hh"

namespace doe = rigor::doe;
namespace methodology = rigor::methodology;
namespace stats = rigor::stats;
namespace trace = rigor::trace;

namespace
{

std::vector<double>
runDesign(const doe::DesignMatrix &design,
          const trace::WorkloadProfile &p, std::uint64_t n)
{
    std::vector<double> responses;
    responses.reserve(design.numRows());
    for (std::size_t r = 0; r < design.numRows(); ++r) {
        const rigor::sim::ProcessorConfig config =
            methodology::configForLevels(design.row(r));
        responses.push_back(
            methodology::simulateOnce(p, config, n));
    }
    return responses;
}

void
printTopFive(const char *label, const std::vector<double> &effects)
{
    const std::vector<unsigned> ranks = doe::rankByMagnitude(effects);
    std::printf("%s top-5:", label);
    for (unsigned want = 1; want <= 5; ++want)
        for (std::size_t f = 0; f < ranks.size(); ++f)
            if (ranks[f] == want)
                std::printf("  %u=%s", want,
                            methodology::factorNames()[f].c_str());
    std::printf("\n");
}

} // namespace

int
main()
{
    const std::uint64_t n =
        rigor::bench::instructionsPerRun() / 2;
    const trace::WorkloadProfile &workload =
        trace::workloadByName("gzip");

    // ---------------------------------------------------------------
    // 1. One-at-a-time vs PB.
    // ---------------------------------------------------------------
    std::printf("=== Ablation 1: one-at-a-time vs Plackett-Burman "
                "(workload: %s) ===\n\n",
                workload.name.c_str());

    const doe::DesignMatrix pb =
        doe::foldover(doe::pbDesign(44));
    const std::vector<double> pb_responses =
        runDesign(pb, workload, n);
    std::vector<double> pb_effects =
        doe::computeEffects(pb, pb_responses);
    pb_effects.resize(methodology::numFactors);

    for (const doe::Level base :
         {doe::Level::Low, doe::Level::High}) {
        const doe::DesignMatrix oaat =
            doe::oneAtATimeDesign(methodology::numFactors, base);
        const std::vector<double> responses =
            runDesign(oaat, workload, n);
        const std::vector<double> effects =
            doe::oneAtATimeEffects(base, responses);

        std::vector<double> abs_pb;
        std::vector<double> abs_oaat;
        for (std::size_t f = 0; f < effects.size(); ++f) {
            abs_pb.push_back(std::abs(pb_effects[f]));
            abs_oaat.push_back(std::abs(effects[f]));
        }
        const double rho =
            stats::spearmanCorrelation(abs_pb, abs_oaat);
        std::printf("one-at-a-time (base = all-%s): %u runs, rank "
                    "agreement with PB (Spearman): %.3f\n",
                    base == doe::Level::Low ? "low" : "high",
                    methodology::numFactors + 1, rho);
        printTopFive("  ", effects);
    }
    std::printf("PB foldover: %zu runs\n", pb.numRows());
    printTopFive("  ", pb_effects);
    std::printf("\nReading: the one-at-a-time answer changes with its "
                "base point and disagrees with the interaction-aware "
                "design, at only ~half the cost of the PB foldover.\n\n");

    // ---------------------------------------------------------------
    // 2. Foldover vs plain PB.
    // ---------------------------------------------------------------
    std::printf("=== Ablation 2: plain PB (44 runs) vs foldover PB "
                "(88 runs) ===\n\n");
    const doe::DesignMatrix plain = doe::pbDesign(44);
    const std::vector<double> plain_responses =
        runDesign(plain, workload, n);
    std::vector<double> plain_effects =
        doe::computeEffects(plain, plain_responses);
    plain_effects.resize(methodology::numFactors);

    std::vector<double> abs_plain;
    std::vector<double> abs_fold;
    for (std::size_t f = 0; f < methodology::numFactors; ++f) {
        abs_plain.push_back(std::abs(plain_effects[f]));
        abs_fold.push_back(std::abs(pb_effects[f]));
    }
    std::printf("rank agreement plain vs foldover (Spearman): %.3f\n",
                stats::spearmanCorrelation(abs_plain, abs_fold));
    printTopFive("  plain   ", plain_effects);
    printTopFive("  foldover", pb_effects);
    std::printf("\nReading: the orderings broadly agree; foldover "
                "buys protection of the main effects from two-factor "
                "interactions for 2x the runs.\n\n");

    // ---------------------------------------------------------------
    // 3. Range-width inflation.
    // ---------------------------------------------------------------
    std::printf("=== Ablation 3: range width inflates apparent "
                "effects (section 2.2 warning) ===\n\n");
    // Vary only the L2 latency range on a 2-factor full factorial
    // with ROB, everything else typical.
    const trace::WorkloadProfile &mem_workload =
        trace::workloadByName("mcf");
    methodology::TextTable table(
        {"L2 latency range", "|effect| (cycles)"});
    for (const auto &[lo, hi] :
         std::vector<std::pair<unsigned, unsigned>>{
             {12, 8}, {20, 5}, {40, 2}}) {
        rigor::sim::ProcessorConfig low_cfg;  // typical machine
        rigor::sim::ProcessorConfig high_cfg;
        low_cfg.l2.latency = lo;
        high_cfg.l2.latency = hi;
        const double y_low =
            methodology::simulateOnce(mem_workload, low_cfg, n);
        const double y_high =
            methodology::simulateOnce(mem_workload, high_cfg, n);
        table.addRow({std::to_string(lo) + " -> " + std::to_string(hi),
                      methodology::formatDouble(y_low - y_high, 0)});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("Reading: widening the low/high values grows the "
                "apparent effect roughly in proportion — values "
                "should sit just outside the normal range.\n");
    return 0;
}
