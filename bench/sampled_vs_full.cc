/**
 * @file
 * Sampled-vs-full campaign comparison for the CI perf-smoke job.
 *
 * Runs the same reduced PB screen twice — once with full detailed
 * simulation, once under the SMARTS-style systematic sampling
 * schedule — and reports the detailed-instruction speed-up, the
 * wall-clock MIPS of both, and the sampling-error envelope as
 * BENCH_6.json (RIGOR_BENCH_OUT).
 *
 * The workload list and stream length are deliberately small so the
 * job stays CI-scale; override with RIGOR_INSTRUCTIONS to rerun at
 * laptop scale.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "bench_common.hh"
#include "methodology/rank_table.hh"

namespace
{

namespace exec = rigor::exec;
namespace methodology = rigor::methodology;
namespace obs = rigor::obs;
namespace trace = rigor::trace;

struct ScreenStats
{
    methodology::PbExperimentResult result;
    exec::ProgressSnapshot progress;
    double wallSeconds = 0.0;
    std::uint64_t detailedInstructions = 0;
    double relErrorSum = 0.0;
    std::uint64_t unitSum = 0;
    std::uint64_t sampledRuns = 0;
    unsigned threads = 0;
};

ScreenStats
runScreen(const std::vector<trace::WorkloadProfile> &workloads,
          bool sampled)
{
    methodology::PbExperimentOptions options;
    options.instructionsPerRun = rigor::bench::instructionsPerRun();
    if (sampled) {
        // The acceptance schedule: dense small units at an exact 1/5
        // detail fraction (see tests/sample/sampled_screen_test.cc).
        options.campaign.sampling.enabled = true;
        options.campaign.sampling.unitInstructions = 250;
        options.campaign.sampling.warmupInstructions = 250;
        options.campaign.sampling.intervalInstructions = 2500;
        options.campaign.sampling.targetRelativeError = 0.3;
    }

    // A private engine per screen: the run cache must not leak
    // detailed-instruction counts between the two variants.
    exec::SimulationEngine engine(exec::EngineOptions{0, false});
    options.campaign.engine = &engine;

    ScreenStats stats;
    std::mutex mutex;
    engine.setJobObserver([&stats, &mutex](const exec::JobEvent &e) {
        if (!e.sampled)
            return;
        const std::lock_guard<std::mutex> lock(mutex);
        ++stats.sampledRuns;
        stats.relErrorSum += e.sample.relativeError;
        stats.unitSum += e.sample.units;
    });

    stats.result = methodology::runPbExperiment(workloads, options);
    stats.threads = engine.threads();
    stats.progress = engine.progress().snapshot();
    stats.wallSeconds = stats.progress.wallSeconds;
    stats.detailedInstructions = stats.progress.simulatedInstructions;
    return stats;
}

double
mips(const ScreenStats &stats)
{
    return stats.wallSeconds > 0.0
               ? static_cast<double>(stats.detailedInstructions) /
                     stats.wallSeconds / 1e6
               : 0.0;
}

} // namespace

int
main()
{
    // The acceptance test's quartet: compute-bound, I-bound, FP, and
    // memory-heavy profiles.
    std::vector<trace::WorkloadProfile> workloads;
    for (const char *name : {"gzip", "gcc", "mesa", "art"})
        workloads.push_back(trace::workloadByName(name));

    std::fprintf(stderr, "[bench] full screen...\n");
    const ScreenStats full = runScreen(workloads, false);
    std::fprintf(stderr, "[bench] sampled screen...\n");
    const ScreenStats sampled = runScreen(workloads, true);

    const double ratio =
        sampled.detailedInstructions > 0
            ? static_cast<double>(full.detailedInstructions) /
                  static_cast<double>(sampled.detailedInstructions)
            : 0.0;
    const double mean_rel_error =
        sampled.sampledRuns > 0
            ? sampled.relErrorSum /
                  static_cast<double>(sampled.sampledRuns)
            : 0.0;
    const double mean_units =
        sampled.sampledRuns > 0
            ? static_cast<double>(sampled.unitSum) /
                  static_cast<double>(sampled.sampledRuns)
            : 0.0;

    const std::vector<std::string> full_top =
        methodology::topFactorNames(full.result.summaries, 10);
    const std::vector<std::string> sampled_top =
        methodology::topFactorNames(sampled.result.summaries, 10);
    std::size_t overlap = 0;
    for (const std::string &name : sampled_top)
        if (std::find(full_top.begin(), full_top.end(), name) !=
            full_top.end())
            ++overlap;

    std::printf("Sampled vs full PB screen (%zu workloads, %llu "
                "instructions per run)\n",
                workloads.size(),
                static_cast<unsigned long long>(
                    rigor::bench::instructionsPerRun()));
    std::printf("  full:    %10llu detailed instructions, %6.2f s, "
                "%7.2f MIPS\n",
                static_cast<unsigned long long>(
                    full.detailedInstructions),
                full.wallSeconds, mips(full));
    std::printf("  sampled: %10llu detailed instructions, %6.2f s, "
                "%7.2f MIPS\n",
                static_cast<unsigned long long>(
                    sampled.detailedInstructions),
                sampled.wallSeconds, mips(sampled));
    std::printf("  detailed-instruction ratio: %.2fx\n", ratio);
    std::printf("  mean CPI relative error:    %.4f over %.1f "
                "units/run\n",
                mean_rel_error, mean_units);
    std::printf("  top-10 factor overlap:      %zu/10\n", overlap);

    if (const char *out = std::getenv("RIGOR_BENCH_OUT")) {
        obs::BenchReport report;
        report.pr = 6;
        report.name = "sampled_vs_full";
        report.wallSeconds = full.wallSeconds + sampled.wallSeconds;
        report.runsTotal =
            full.progress.runsTotal + sampled.progress.runsTotal;
        report.runsCompleted = full.progress.runsCompleted +
                               sampled.progress.runsCompleted;
        report.runsPerSecond =
            report.wallSeconds > 0.0
                ? static_cast<double>(report.runsCompleted) /
                      report.wallSeconds
                : 0.0;
        report.simulatedInstructions =
            full.detailedInstructions + sampled.detailedInstructions;
        report.mips =
            report.wallSeconds > 0.0
                ? static_cast<double>(report.simulatedInstructions) /
                      report.wallSeconds / 1e6
                : 0.0;
        report.threads = full.threads;
        report.sampled = true;
        report.fullMips = mips(full);
        report.sampledMips = mips(sampled);
        report.detailedInstructionRatio = ratio;
        report.sampleRelError = mean_rel_error;
        report.sampleUnits = mean_units;
        obs::writeBenchReport(out, report);
        std::fprintf(stderr, "[bench] wrote %s\n", out);
    }
    return 0;
}
