/**
 * @file
 * Regenerates Table 3: the X = 8 Plackett-Burman design with
 * foldover, and reports the de-aliasing property foldover provides.
 */

#include <cstdio>

#include "doe/foldover.hh"
#include "doe/pb_design.hh"

int
main()
{
    namespace doe = rigor::doe;

    std::printf("Table 3: Plackett and Burman Design Matrix for "
                "X = 8 with Foldover\n");
    std::printf("(rows 1-8 are the original Table 2 design; rows "
                "9-16 are the sign-flipped mirror)\n\n");

    const doe::DesignMatrix base = doe::pbDesign(8);
    const doe::DesignMatrix folded = doe::foldover(base);
    std::printf("%s\n", folded.toString().c_str());

    std::printf("foldover run count: %zu (= 2X)\n", folded.numRows());
    std::printf("main effects clear of two-factor interactions: "
                "base %s -> foldover %s\n",
                doe::mainEffectsClearOfTwoFactorInteractions(base)
                    ? "yes"
                    : "no",
                doe::mainEffectsClearOfTwoFactorInteractions(folded)
                    ? "yes"
                    : "no");
    return 0;
}
