/**
 * @file
 * Regenerates Table 9: Plackett-Burman ranks for all 43 factors
 * across the 13 workloads on the base processor, sorted by sum of
 * ranks — the paper's headline experiment (88 simulations per
 * benchmark).
 *
 * Absolute agreement with the published table is not expected (the
 * substrate is a synthetic-workload simulator, not SimpleScalar on
 * MinneSPEC); the report therefore ends with shape checks: the
 * Spearman rank correlation of the factor ordering against the
 * published Table 9, the position of the dummy factors, and the
 * significance cutoff.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hh"
#include "doe/ranking.hh"
#include "methodology/published_data.hh"
#include "methodology/rank_table.hh"
#include "stats/correlation.hh"

int
main()
{
    namespace doe = rigor::doe;
    namespace methodology = rigor::methodology;
    namespace stats = rigor::stats;

    const methodology::PbExperimentResult result =
        rigor::bench::runFullExperiment();

    std::printf("Table 9: Plackett and Burman Design Results for All "
                "Processor Parameters;\nRanked by Significance and "
                "Sorted by the Sum of Ranks (measured)\n\n");
    std::printf("%s\n",
                methodology::formatRankTable(result.summaries,
                                             result.benchmarks)
                    .c_str());

    const std::size_t cut =
        doe::significanceCutoff(result.summaries, 15);
    std::printf("Significance cutoff (largest sum-of-ranks gap in the "
                "first 15): after %zu parameters\n",
                cut);

    // Shape comparison vs the published table.
    const methodology::PublishedRankTable &published =
        methodology::publishedTable9();
    const std::vector<double> ours = methodology::sumOfRanksInOrder(
        result.summaries, published.factors);
    std::vector<double> theirs;
    for (unsigned long s : published.sums)
        theirs.push_back(static_cast<double>(s));
    const double rho = stats::spearmanCorrelation(ours, theirs);
    std::printf("\nSpearman rank correlation of factor ordering vs "
                "published Table 9: %.3f\n",
                rho);

    const auto pos_of = [&](const char *name) {
        for (std::size_t i = 0; i < result.summaries.size(); ++i)
            if (result.summaries[i].name == name)
                return i + 1;
        return std::size_t{0};
    };
    std::printf("Positions (published Table 9 rank in parentheses):\n");
    std::printf("  Reorder Buffer Entries: %zu (1)\n",
                pos_of("Reorder Buffer Entries"));
    std::printf("  L2 Cache Latency:       %zu (2)\n",
                pos_of("L2 Cache Latency"));
    std::printf("  Dummy Factor #1:        %zu (43)\n",
                pos_of("Dummy Factor #1"));
    std::printf("  Dummy Factor #2:        %zu (37)\n",
                pos_of("Dummy Factor #2"));

    // Machine-readable throughput record for the CI perf-smoke job
    // (RIGOR_BENCH_OUT=BENCH_4.json).
    if (const char *out = std::getenv("RIGOR_BENCH_OUT"))
        rigor::bench::writeBenchReportFromEngine(
            out, "table09_parameter_ranking",
            rigor::bench::sharedEngine().progress().snapshot());
    return 0;
}
