/**
 * @file
 * Ablation reproducing the [Yi02-2] observation the paper quotes in
 * section 4.1: "simply increasing the reorder buffer size can change
 * the speedup of a value reuse mechanism from approximately 20% to
 * approximately 30%" — i.e. a single poorly chosen constant parameter
 * substantially distorts the measured benefit of an enhancement.
 *
 * We measure the speedup of a dynamic value-reuse table on the
 * value-local workloads at ROB = 8 vs ROB = 64, everything else at
 * the typical configuration, and additionally sweep the ROB.
 */

#include <cstdio>

#include "bench_common.hh"
#include "enhance/value_reuse.hh"
#include "methodology/pb_experiment.hh"
#include "methodology/report.hh"
#include "sim/config.hh"

int
main()
{
    namespace enhance = rigor::enhance;
    namespace methodology = rigor::methodology;
    namespace trace = rigor::trace;

    const std::uint64_t n = rigor::bench::instructionsPerRun();

    const auto speedup_at = [&](const trace::WorkloadProfile &p,
                                std::uint32_t rob) {
        // Value reuse relieves integer-execution pressure, so its
        // benefit shows on a machine where that is the bottleneck —
        // one integer ALU, fast caches (as in the [Yi02-2] setup the
        // paper quotes).
        rigor::sim::ProcessorConfig config;
        config.intAlus = 1;
        config.l1d.latency = 1;
        config.robEntries = rob;
        const double base = methodology::simulateOnce(
            p, config, n, nullptr, n / 2);
        enhance::ValueReuseTable table(1024, 4);
        const double enhanced = methodology::simulateOnce(
            p, config, n, &table, n / 2);
        return base / enhanced;
    };

    std::printf("Ablation: value-reuse speedup sensitivity to the "
                "reorder buffer size\n(the [Yi02-2] pitfall quoted in "
                "section 4.1)\n\n");

    methodology::TextTable table(
        {"Benchmark", "ROB=8", "ROB=16", "ROB=32", "ROB=64",
         "64/8 ratio"});
    for (const char *name : {"gzip", "bzip2", "parser", "gcc"}) {
        const trace::WorkloadProfile &p = trace::workloadByName(name);
        const double s8 = speedup_at(p, 8);
        const double s16 = speedup_at(p, 16);
        const double s32 = speedup_at(p, 32);
        const double s64 = speedup_at(p, 64);
        table.addRow({name, methodology::formatDouble(s8, 3),
                      methodology::formatDouble(s16, 3),
                      methodology::formatDouble(s32, 3),
                      methodology::formatDouble(s64, 3),
                      methodology::formatDouble(s64 / s8, 3)});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("Reading: the measured benefit of the *same* "
                "enhancement depends on the constant ROB parameter — "
                "choose constants with a screening design first.\n");
    return 0;
}
