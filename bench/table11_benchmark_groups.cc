/**
 * @file
 * Regenerates Table 11: benchmarks grouped by their effect on the
 * processor at the similarity threshold sqrt(4000) ~ 63.2.
 *
 * From the published Table 9 rank vectors the grouping must equal the
 * paper's eight groups exactly; the measured grouping from this
 * repo's simulator follows (set RIGOR_MEASURED=0 to skip).
 */

#include <cstdio>
#include <string>

#include "bench_common.hh"
#include "cluster/hierarchical.hh"
#include "methodology/classification.hh"
#include "methodology/published_data.hh"

int
main()
{
    namespace cluster = rigor::cluster;
    namespace methodology = rigor::methodology;

    const double threshold = methodology::defaultSimilarityThreshold();
    std::printf("Table 11: Benchmarks Grouped by Their Effect on the "
                "Processor (threshold %.1f = sqrt(%.0f))\n\n",
                threshold, methodology::kSimilarityThresholdSquared);

    // ---- Published-rank reproduction ----
    const methodology::PublishedRankTable &t9 =
        methodology::publishedTable9();
    const methodology::ClassificationResult published_groups =
        methodology::classifyBenchmarks(t9.benchmarks,
                                        t9.rankVectorsByBenchmark(),
                                        threshold);
    std::printf("From the published Table 9 ranks:\n%s\n",
                published_groups.groupsToString().c_str());
    const bool exact =
        published_groups.groups == methodology::publishedTable11Groups();
    std::printf("[check] matches the paper's Table 11 exactly: %s\n\n",
                exact ? "yes" : "NO");

    // Extension: the full dendrogram, showing how the groups evolve
    // as the threshold varies instead of committing to one cutoff.
    const cluster::Dendrogram dendro = cluster::agglomerate(
        published_groups.distances, cluster::Linkage::Single);
    std::printf("Single-linkage merge sequence (distance, cluster):\n%s"
                "\n",
                dendro.toString(t9.benchmarks).c_str());

    // ---- Measured grouping ----
    const char *measured_env = std::getenv("RIGOR_MEASURED");
    if (measured_env && std::string(measured_env) == "0") {
        std::printf("(measured-mode skipped: RIGOR_MEASURED=0)\n");
        return 0;
    }
    const methodology::PbExperimentResult result =
        rigor::bench::runFullExperiment();
    const methodology::ClassificationResult measured =
        methodology::classifyBenchmarks(result.benchmarks,
                                        result.rankVectors(),
                                        threshold);
    std::printf("Measured grouping (this repo's simulator):\n%s",
                measured.groupsToString().c_str());
    return 0;
}
