/**
 * @file
 * Section 4.2 workflow: classify benchmarks by their effect on the
 * processor. Uses the paper's published Table 9 rank vectors, so it
 * runs instantly and reproduces Tables 10 and 11 exactly; swap in a
 * PbExperimentResult::rankVectors() to classify your own workloads.
 */

#include <cstdio>

#include "cluster/hierarchical.hh"
#include "methodology/classification.hh"
#include "methodology/published_data.hh"

namespace cluster = rigor::cluster;
namespace methodology = rigor::methodology;

int
main()
{
    const methodology::PublishedRankTable &t9 =
        methodology::publishedTable9();

    // Distances between the 43-dimensional rank vectors (Table 10).
    const methodology::ClassificationResult result =
        methodology::classifyBenchmarks(
            t9.benchmarks, t9.rankVectorsByBenchmark(),
            methodology::defaultSimilarityThreshold());

    std::printf("Pairwise distances (Table 10):\n%s\n",
                result.distances.toString(t9.benchmarks).c_str());

    std::printf("Groups at threshold %.1f (Table 11):\n%s\n",
                result.threshold,
                result.groupsToString().c_str());

    // Beyond the paper: how the grouping depends on the threshold.
    const cluster::Dendrogram dendro = cluster::agglomerate(
        result.distances, cluster::Linkage::Single);
    std::printf("Merge tree (single linkage) — pick any cutoff:\n%s\n",
                dendro.toString(t9.benchmarks).c_str());

    std::printf("A representative subset: keep one benchmark per "
                "group -> %zu simulations instead of 13.\n",
                result.groups.size());
    for (const auto &group : result.groups)
        std::printf("  use %-10s (covers: %zu)\n",
                    group.front().c_str(), group.size());
    return 0;
}
