/**
 * @file
 * Section 4.3 workflow: quantify how an enhancement shifts the
 * processor's bottlenecks, not just its speedup.
 *
 * Runs the PB ranking on one value-local workload before and after
 * enabling instruction precomputation (128-entry static table built
 * by a profiling pass), then prints the sum-of-ranks shifts. Also
 * contrasts the plain speedup number — the metric the paper argues
 * is insufficient on its own.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "enhance/precompute.hh"
#include "methodology/enhancement_analysis.hh"
#include "methodology/pb_experiment.hh"
#include "trace/generator.hh"
#include "trace/workloads.hh"

namespace enhance = rigor::enhance;
namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

int
main()
{
    const trace::WorkloadProfile &workload =
        trace::workloadByName("gzip");
    constexpr std::uint64_t instructions = 30000;

    // "Compiler pass": profile the workload once, build the table.
    auto table = std::make_shared<enhance::PrecomputationTable>(128);
    {
        trace::SyntheticTraceGenerator gen(workload, instructions);
        const std::size_t loaded = table->profileTrace(gen);
        std::printf("precomputation table: %zu tuples loaded\n",
                    loaded);
    }

    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = instructions;
    const std::vector<trace::WorkloadProfile> workloads = {workload};

    std::printf("running base + enhanced PB experiments "
                "(2 x 88 configs, shared engine)...\n\n");
    const methodology::EnhancementExperimentResult paired =
        methodology::runEnhancementExperiment(
            workloads, opts,
            [&](const trace::WorkloadProfile &)
                -> std::unique_ptr<rigor::sim::ExecutionHook> {
                return std::make_unique<enhance::PrecomputationTable>(
                    *table);
            },
            "precompute-128");
    const methodology::PbExperimentResult &base = paired.base;
    const methodology::PbExperimentResult &enhanced = paired.enhanced;

    // The one-number view...
    double base_cycles = 0.0;
    double enh_cycles = 0.0;
    for (std::size_t i = 0; i < base.responses[0].size(); ++i) {
        base_cycles += base.responses[0][i];
        enh_cycles += enhanced.responses[0][i];
    }
    std::printf("speedup (mean over all 88 configurations): %.3f\n\n",
                base_cycles / enh_cycles);

    // ...vs the whole-picture view.
    const methodology::EnhancementComparison &cmp = paired.comparison;
    std::printf("What the enhancement did to the bottlenecks "
                "(top shifts):\n%s\n",
                cmp.toString(12).c_str());
    const methodology::RankShift relief =
        cmp.biggestReliefAmongTop(base.summaries, 10);
    std::printf("Biggest relief among significant parameters: %s "
                "(sum of ranks %lu -> %lu)\n",
                relief.name.c_str(), relief.sumBefore,
                relief.sumAfter);
    std::printf("Execution engine: %s\n",
                paired.execution.toString().c_str());
    return 0;
}
