/**
 * @file
 * Section 4.1 workflow on the real simulator: run the foldover PB
 * design over the full 43-factor parameter space for a couple of
 * workloads and print the Table-9-style ranking, the significance
 * cutoff, and the recommended next step.
 *
 * Scaled down (2 workloads, short runs) so it finishes in seconds;
 * bench/table09_parameter_ranking runs the full 13-workload version.
 */

#include <cstdio>
#include <vector>

#include "doe/ranking.hh"
#include "methodology/pb_experiment.hh"
#include "methodology/rank_table.hh"
#include "trace/workloads.hh"

namespace doe = rigor::doe;
namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

int
main()
{
    const std::vector<trace::WorkloadProfile> workloads = {
        trace::workloadByName("gzip"),
        trace::workloadByName("mcf"),
    };

    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 30000;

    std::printf("Running the 88-configuration PB experiment on %zu "
                "workloads (%llu instructions each)...\n\n",
                workloads.size(),
                static_cast<unsigned long long>(
                    opts.instructionsPerRun));
    const methodology::PbExperimentResult result =
        methodology::runPbExperiment(workloads, opts);

    std::printf("%s\n",
                methodology::formatRankTable(result.summaries,
                                             result.benchmarks)
                    .c_str());

    const std::size_t cut =
        doe::significanceCutoff(result.summaries, 15);
    std::printf("Significant parameters (before the largest "
                "sum-of-ranks gap): %zu\n", cut);
    for (std::size_t i = 0; i < cut; ++i)
        std::printf("  %2zu. %s\n", i + 1,
                    result.summaries[i].name.c_str());

    std::printf("\nRecommended next step (paper section 4.1): choose "
                "values for these with care — e.g. run a full\n"
                "factorial ANOVA over them (see "
                "examples/sensitivity_anova) — and set the rest to "
                "reasonable commercial values.\n");
    return 0;
}
