/**
 * @file
 * The paper's complete four-step recommendation (section 4.1) in one
 * call: PB screen -> critical set -> full factorial ANOVA over the
 * critical parameters -> per-parameter directions.
 *
 * Scaled down to two workloads and short runs so it finishes in
 * seconds; pass more workloads (trace::spec2000Workloads()) for the
 * full study.
 */

#include <cstdio>
#include <vector>

#include "methodology/workflow.hh"
#include "trace/workloads.hh"

namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

int
main()
{
    methodology::WorkflowOptions opts;
    opts.instructionsPerRun = 25000;
    opts.warmupInstructions = 25000;
    opts.maxCriticalParameters = 3;

    const std::vector<trace::WorkloadProfile> workloads = {
        trace::workloadByName("gzip"),
        trace::workloadByName("mcf"),
    };

    std::printf("Running the recommended workflow on %zu workloads "
                "(PB screen: 88 configs each; then a 2^k factorial "
                "over the critical set)...\n\n",
                workloads.size());

    const methodology::WorkflowResult result =
        methodology::runRecommendedWorkflow(workloads, opts);
    std::printf("%s", result.toString().c_str());

    std::printf("\nThe screen cost %zu simulations per workload; a "
                "full factorial over all 43 factors would have cost "
                "2^43 ~ 8.8e12.\n",
                result.screening.design.numRows());
    std::printf("Execution engine: %s\n",
                result.execution.toString().c_str());
    return 0;
}
