/**
 * @file
 * Quickstart: screen the important factors of ANY response function
 * with a Plackett-Burman design in ~20 lines.
 *
 * The "system under test" here is a toy analytic model with seven
 * knobs, three of which matter (and one only through an interaction).
 * The same five calls — pbDesign, foldover, row -> response,
 * computeEffects, rankByMagnitude — drive the full processor
 * experiment in the other examples.
 */

#include <cstdio>
#include <vector>

#include "doe/effects.hh"
#include "doe/foldover.hh"
#include "doe/pb_design.hh"
#include "doe/ranking.hh"

namespace doe = rigor::doe;

namespace
{

/** A pretend simulator: execution time as a function of 7 knobs. */
double
executionTime(const std::vector<doe::Level> &k)
{
    const auto v = [&](std::size_t i) {
        return static_cast<double>(doe::levelValue(k[i]));
    };
    return 1000.0          //
           - 120.0 * v(0)  // knob 0: big win when high
           + 45.0 * v(3)   // knob 3: hurts when high
           - 15.0 * v(5)   // knob 5: small effect
           - 30.0 * v(1) * v(2); // knobs 1 x 2: pure interaction
}

} // namespace

int
main()
{
    // 7 factors fit in the smallest PB design: X = 8, with foldover
    // 16 runs (vs 2^7 = 128 for the full factorial).
    const doe::DesignMatrix design = doe::foldover(doe::pbDesign(8));

    std::vector<double> responses;
    for (std::size_t r = 0; r < design.numRows(); ++r)
        responses.push_back(executionTime(design.row(r)));

    const std::vector<double> effects =
        doe::computeNormalizedEffects(design, responses);
    const std::vector<unsigned> ranks = doe::rankByMagnitude(effects);

    std::printf("knob  effect(low->high)  rank\n");
    for (std::size_t f = 0; f < effects.size(); ++f)
        std::printf("%4zu  %17.1f  %4u\n", f, effects[f], ranks[f]);

    std::printf("\nKnob 0 dominates, knob 3 is next, knob 5 is minor; "
                "knobs 1, 2, 4, 6 show ~zero main effect.\n");
    std::printf("(The 1x2 interaction is invisible to main effects "
                "by design — foldover guarantees it cannot "
                "contaminate them. Estimate it explicitly:)\n");
    std::printf("interaction(1,2) contrast = %.1f\n",
                doe::computeInteractionEffect(design, responses, 1, 2) /
                    (static_cast<double>(design.numRows()) / 2.0));
    return 0;
}
