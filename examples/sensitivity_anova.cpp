/**
 * @file
 * Step 3 of the paper's recommended workflow (section 4.1): after the
 * PB screen identifies the critical parameters, run a full factorial
 * ANOVA over just those parameters to quantify their effects AND
 * their interactions before committing to final values.
 *
 * Here: a 2^3 factorial over ROB entries, L2 latency, and L1 D-cache
 * latency (three of the paper's top-ten) on the mcf workload.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "methodology/pb_experiment.hh"
#include "sim/config.hh"
#include "stats/anova.hh"
#include "trace/workloads.hh"

namespace methodology = rigor::methodology;
namespace stats = rigor::stats;
namespace trace = rigor::trace;

int
main()
{
    const trace::WorkloadProfile &workload =
        trace::workloadByName("mcf");
    constexpr std::uint64_t instructions = 30000;

    const std::vector<std::string> factors = {"ROB", "L2Lat",
                                              "L1DLat"};

    // 2^3 = 8 treatments in standard order: bit 0 = ROB high,
    // bit 1 = L2 latency high(=better, 5 cycles), bit 2 = L1D high.
    std::vector<double> responses;
    for (unsigned t = 0; t < 8; ++t) {
        rigor::sim::ProcessorConfig config; // typical machine
        config.robEntries = (t & 1) ? 64 : 8;
        config.l2.latency = (t & 2) ? 5 : 20;
        config.l1d.latency = (t & 4) ? 1 : 4;
        responses.push_back(methodology::simulateOnce(
            workload, config, instructions));
        std::printf("treatment %u: ROB=%-2u L2=%2u L1D=%u -> %10.0f "
                    "cycles\n",
                    t, config.robEntries, config.l2.latency,
                    config.l1d.latency, responses.back());
    }

    const stats::AnovaResult result =
        stats::analyzeFactorial(factors, responses);
    std::printf("\nFull factorial ANOVA (allocation of variation):\n%s",
                stats::formatAnovaTable(result).c_str());

    std::printf("\nReading: the main effects dominate; the largest "
                "interaction term shows how much the 'best' value of "
                "one parameter depends on another — information a "
                "one-at-a-time sweep cannot produce.\n");
    return 0;
}
