#include <gtest/gtest.h>

#include "trace/workloads.hh"

namespace trace = rigor::trace;

TEST(Workloads, ThirteenProfilesInTable5Order)
{
    const auto all = trace::spec2000Workloads();
    ASSERT_EQ(all.size(), 13u);
    const std::vector<std::string> expected = {
        "gzip", "vpr-Place", "vpr-Route", "gcc",    "mesa",
        "art",  "mcf",       "equake",    "ammp",   "parser",
        "vortex", "bzip2",   "twolf"};
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(all[i].name, expected[i]);
    EXPECT_EQ(trace::workloadNames(), expected);
}

TEST(Workloads, AllProfilesValidate)
{
    for (const trace::WorkloadProfile &p : trace::spec2000Workloads())
        EXPECT_NO_THROW(p.validate()) << p.name;
}

TEST(Workloads, PaperInstructionCountsMatchTable5)
{
    EXPECT_DOUBLE_EQ(
        trace::workloadByName("gzip").paperInstructionsMillions,
        1364.2);
    EXPECT_DOUBLE_EQ(
        trace::workloadByName("gcc").paperInstructionsMillions, 4040.7);
    EXPECT_DOUBLE_EQ(
        trace::workloadByName("mcf").paperInstructionsMillions, 601.2);
    EXPECT_DOUBLE_EQ(
        trace::workloadByName("twolf").paperInstructionsMillions,
        764.6);
}

TEST(Workloads, FloatingPointFlagMatchesTable5)
{
    for (const char *fp : {"mesa", "art", "equake", "ammp"})
        EXPECT_TRUE(trace::workloadByName(fp).isFloatingPoint) << fp;
    for (const char *intb :
         {"gzip", "vpr-Place", "vpr-Route", "gcc", "mcf", "parser",
          "vortex", "bzip2", "twolf"})
        EXPECT_FALSE(trace::workloadByName(intb).isFloatingPoint)
            << intb;
}

TEST(Workloads, FingerprintsAreDistinct)
{
    // The qualitative contrasts the classification step relies on.
    const auto &mesa = trace::workloadByName("mesa");
    const auto &mcf = trace::workloadByName("mcf");
    const auto &gzip = trace::workloadByName("gzip");
    const auto &art = trace::workloadByName("art");

    // mesa is I-cache heavy, mcf is not.
    EXPECT_GT(mesa.codeFootprintBytes, 8 * mcf.codeFootprintBytes);
    // mcf and art are memory bound; gzip is not.
    EXPECT_GE(mcf.dataFootprintBytes, 8 * gzip.dataFootprintBytes);
    EXPECT_GE(art.dataFootprintBytes, 8 * gzip.dataFootprintBytes);
    // gzip has the value locality precomputation exploits.
    EXPECT_GT(gzip.valueLocality, 2.0 * mcf.valueLocality);
    // FP benchmarks carry FP work.
    EXPECT_GT(art.fracFpAlu, 0.1);
    EXPECT_DOUBLE_EQ(trace::workloadByName("parser").fracFpAlu, 0.0);
}

TEST(Workloads, MixesAreFeasible)
{
    for (const trace::WorkloadProfile &p : trace::spec2000Workloads()) {
        EXPECT_GT(p.fracIntAlu(), 0.1) << p.name;
        EXPECT_GT(p.fracLoad, 0.1) << p.name;
        EXPECT_LT(p.fracLoad + p.fracStore, 0.6) << p.name;
    }
}

TEST(Workloads, UnknownNameThrows)
{
    EXPECT_THROW(trace::workloadByName("quake3"),
                 std::invalid_argument);
}
