#include <gtest/gtest.h>

#include <map>

#include "trace/rng.hh"

namespace trace = rigor::trace;

TEST(Rng, DeterministicForSameSeed)
{
    trace::Rng a(12345);
    trace::Rng b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    trace::Rng a(1);
    trace::Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsUsable)
{
    trace::Rng r(0);
    EXPECT_NE(r.next(), r.next());
}

TEST(Rng, NextBelowStaysInRange)
{
    trace::Rng r(99);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
    EXPECT_THROW(r.nextBelow(0), std::invalid_argument);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    trace::Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.nextDouble();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextBoolMatchesProbability)
{
    trace::Rng r(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        if (r.nextBool(0.3))
            ++hits;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ZipfConcentratesLowIndices)
{
    trace::Rng r(13);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 20000; ++i)
        ++counts[r.nextZipf(100)];
    // Index 0 must dominate the tail.
    EXPECT_GT(counts[0], counts[50] * 3);
    // All draws in range.
    for (const auto &[idx, n] : counts)
        EXPECT_LT(idx, 100u);
    EXPECT_THROW(r.nextZipf(0), std::invalid_argument);
}

TEST(Rng, GeometricMeanApproximatelyCorrect)
{
    trace::Rng r(17);
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(r.nextGeometric(6.0));
    EXPECT_NEAR(total / n, 6.0, 0.3);
}

TEST(Rng, GeometricAlwaysAtLeastOne)
{
    trace::Rng r(19);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(r.nextGeometric(1.5), 1u);
    EXPECT_EQ(r.nextGeometric(1.0), 1u);
    EXPECT_THROW(r.nextGeometric(0.5), std::invalid_argument);
}

TEST(HashName, StableAndDistinct)
{
    EXPECT_EQ(trace::hashName("gzip"), trace::hashName("gzip"));
    EXPECT_NE(trace::hashName("gzip"), trace::hashName("gcc"));
    EXPECT_NE(trace::hashName("vpr-Place"),
              trace::hashName("vpr-Route"));
}
