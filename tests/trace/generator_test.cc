#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/generator.hh"
#include "trace/workloads.hh"

namespace trace = rigor::trace;

namespace
{

std::vector<trace::Instruction>
generate(const std::string &workload, std::uint64_t n)
{
    trace::SyntheticTraceGenerator gen(
        trace::workloadByName(workload), n);
    std::vector<trace::Instruction> out;
    out.reserve(n);
    trace::Instruction inst;
    while (gen.next(inst))
        out.push_back(inst);
    return out;
}

} // namespace

TEST(Generator, ProducesExactLength)
{
    const auto v = generate("gzip", 12345);
    EXPECT_EQ(v.size(), 12345u);
}

TEST(Generator, ResetReproducesIdenticalStream)
{
    trace::SyntheticTraceGenerator gen(trace::workloadByName("gcc"),
                                       5000);
    std::vector<std::uint64_t> first;
    trace::Instruction inst;
    while (gen.next(inst))
        first.push_back(inst.pc ^ inst.memAddr ^
                        static_cast<std::uint64_t>(inst.op));
    gen.reset();
    std::size_t i = 0;
    while (gen.next(inst)) {
        ASSERT_LT(i, first.size());
        EXPECT_EQ(first[i],
                  inst.pc ^ inst.memAddr ^
                      static_cast<std::uint64_t>(inst.op));
        ++i;
    }
    EXPECT_EQ(i, first.size());
}

TEST(Generator, TwoInstancesAgree)
{
    // The PB experiment builds a fresh generator per run; all runs
    // must observe the same workload.
    trace::SyntheticTraceGenerator a(trace::workloadByName("art"),
                                     3000);
    trace::SyntheticTraceGenerator b(trace::workloadByName("art"),
                                     3000);
    trace::Instruction ia;
    trace::Instruction ib;
    while (a.next(ia)) {
        ASSERT_TRUE(b.next(ib));
        EXPECT_EQ(ia.pc, ib.pc);
        EXPECT_EQ(ia.op, ib.op);
        EXPECT_EQ(ia.memAddr, ib.memAddr);
        EXPECT_EQ(ia.taken, ib.taken);
        EXPECT_EQ(ia.valA, ib.valA);
    }
}

TEST(Generator, InstructionMixTracksProfile)
{
    const trace::WorkloadProfile &p = trace::workloadByName("gzip");
    const auto v = generate("gzip", 200000);
    std::map<trace::OpClass, double> frac;
    std::size_t non_control = 0;
    for (const trace::Instruction &inst : v) {
        if (!trace::isControlOp(inst.op)) {
            ++non_control;
            frac[inst.op] += 1.0;
        }
    }
    for (auto &[op, count] : frac)
        count /= static_cast<double>(non_control);
    EXPECT_NEAR(frac[trace::OpClass::Load], p.fracLoad, 0.04);
    EXPECT_NEAR(frac[trace::OpClass::Store], p.fracStore, 0.03);
    EXPECT_GT(frac[trace::OpClass::IntAlu], 0.4);
}

TEST(Generator, BasicBlockGeometryReasonable)
{
    const trace::WorkloadProfile &p = trace::workloadByName("gcc");
    const auto v = generate("gcc", 100000);
    std::size_t control = 0;
    for (const trace::Instruction &inst : v)
        if (trace::isControlOp(inst.op))
            ++control;
    const double avg_block =
        static_cast<double>(v.size()) / static_cast<double>(control);
    // Mean block = body + terminator; body mean ~ avgBlockInstrs.
    EXPECT_NEAR(avg_block, p.avgBlockInstrs + 1.0, 1.5);
}

TEST(Generator, CodeFootprintRespectsProfile)
{
    // Execution stays inside the hot instruction working set: that
    // set, not the total static size, is what the I-cache contends
    // with (WorkloadProfile::hotCodeBytes).
    const trace::WorkloadProfile &p = trace::workloadByName("mesa");
    const auto v = generate("mesa", 200000);
    std::uint64_t min_pc = ~0ULL;
    std::uint64_t max_pc = 0;
    for (const trace::Instruction &inst : v) {
        min_pc = std::min(min_pc, inst.pc);
        max_pc = std::max(max_pc, inst.pc);
    }
    EXPECT_LE(max_pc - min_pc, p.hotCodeBytes + 4096);
    // And a big-code benchmark touches most of that working set.
    EXPECT_GT(max_pc - min_pc, p.hotCodeBytes / 2);
}

TEST(Generator, HotCodeOrderingAcrossWorkloads)
{
    // mesa's touched code must far exceed mcf's — the contrast the
    // paper's Table 9 commentary highlights.
    const auto touched = [](const char *name) {
        trace::SyntheticTraceGenerator gen(
            trace::workloadByName(name), 150000);
        std::set<std::uint64_t> blocks;
        trace::Instruction inst;
        while (gen.next(inst))
            blocks.insert(inst.pc / 64);
        return blocks.size() * 64;
    };
    EXPECT_GT(touched("mesa"), 8 * touched("mcf"));
}

TEST(Generator, SmallCodeBenchmarkStaysSmall)
{
    const trace::WorkloadProfile &p = trace::workloadByName("mcf");
    const auto v = generate("mcf", 50000);
    std::set<std::uint64_t> blocks;
    for (const trace::Instruction &inst : v)
        blocks.insert(inst.pc / 64);
    EXPECT_LT(blocks.size() * 64, p.codeFootprintBytes + 4096);
}

TEST(Generator, DataAddressesWithinFootprint)
{
    const trace::WorkloadProfile &p = trace::workloadByName("mcf");
    const auto v = generate("mcf", 100000);
    bool any_mem = false;
    for (const trace::Instruction &inst : v) {
        if (trace::isMemOp(inst.op)) {
            any_mem = true;
            EXPECT_GE(inst.memAddr, 0x10000000u);
            EXPECT_LT(inst.memAddr,
                      0x10000000u + p.dataFootprintBytes + 64);
        }
    }
    EXPECT_TRUE(any_mem);
}

TEST(Generator, MemoryBoundWorkloadTouchesLargeSet)
{
    const auto mcf = generate("mcf", 200000);
    const auto gzip = generate("gzip", 200000);
    const auto touched = [](const std::vector<trace::Instruction> &v) {
        std::set<std::uint64_t> lines;
        for (const trace::Instruction &inst : v)
            if (trace::isMemOp(inst.op))
                lines.insert(inst.memAddr / 64);
        return lines.size();
    };
    EXPECT_GT(touched(mcf), 3 * touched(gzip));
}

TEST(Generator, CallsAndReturnsBalanceApproximately)
{
    const auto v = generate("parser", 300000);
    long depth = 0;
    long max_depth = 0;
    std::size_t calls = 0;
    for (const trace::Instruction &inst : v) {
        if (inst.op == trace::OpClass::Call) {
            ++depth;
            ++calls;
            EXPECT_NE(inst.retAddr, 0u);
        } else if (inst.op == trace::OpClass::Return) {
            --depth;
        }
        max_depth = std::max(max_depth, depth);
    }
    EXPECT_GT(calls, 100u);
    EXPECT_GE(depth, 0); // never more returns than calls
    EXPECT_GT(max_depth, 4); // parser recurses deeply
}

TEST(Generator, BranchTakenRateNearProfileBias)
{
    const auto v = generate("art", 200000);
    std::size_t branches = 0;
    std::size_t taken = 0;
    for (const trace::Instruction &inst : v) {
        if (inst.op == trace::OpClass::Branch) {
            ++branches;
            if (inst.taken)
                ++taken;
        }
    }
    ASSERT_GT(branches, 1000u);
    const double rate =
        static_cast<double>(taken) / static_cast<double>(branches);
    // Loop back-edges push the overall taken rate well above half.
    EXPECT_GT(rate, 0.5);
    EXPECT_LT(rate, 0.99);
}

TEST(Generator, ValueLocalityCreatesRedundantTuples)
{
    // gzip (high value locality) must repeat (op, valA, valB) tuples
    // far more often than mcf (low locality).
    const auto redundancy = [](const std::string &name) {
        const auto v = generate(name, 100000);
        std::map<std::pair<std::uint32_t, std::uint32_t>, int> counts;
        std::size_t alus = 0;
        for (const trace::Instruction &inst : v)
            if (inst.op == trace::OpClass::IntAlu) {
                ++alus;
                ++counts[{inst.valA, inst.valB}];
            }
        std::size_t repeated = 0;
        for (const auto &[k, n] : counts)
            if (n > 1)
                repeated += n;
        return static_cast<double>(repeated) /
               static_cast<double>(alus);
    };
    EXPECT_GT(redundancy("gzip"), 2.0 * redundancy("mcf"));
}

TEST(Generator, TakenBranchTargetsAreBlockStarts)
{
    const auto v = generate("twolf", 50000);
    for (std::size_t i = 0; i + 1 < v.size(); ++i) {
        if (trace::isControlOp(v[i].op) && v[i].taken)
            EXPECT_EQ(v[i + 1].pc, v[i].target)
                << "taken transfer must continue at its target";
        else if (!trace::isControlOp(v[i].op))
            EXPECT_EQ(v[i + 1].pc, v[i].pc + 4)
                << "sequential flow must be contiguous";
    }
}
