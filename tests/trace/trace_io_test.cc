#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unistd.h>

#include "sim/core.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace sim = rigor::sim;
namespace trace = rigor::trace;

namespace
{

/** Temp file path that cleans up after the test. */
class TempFile
{
  public:
    explicit TempFile(const char *name)
        : _path(std::string(::testing::TempDir()) + name)
    {
    }
    ~TempFile() { std::remove(_path.c_str()); }
    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

} // namespace

TEST(TraceIo, RoundTripPreservesEveryField)
{
    trace::Instruction a;
    a.pc = 0x1234;
    a.op = trace::OpClass::Load;
    a.srcA = 3;
    a.srcB = trace::noReg;
    a.dst = 7;
    a.memAddr = 0xdeadbeef;
    a.valA = 11;
    a.valB = 22;
    trace::Instruction b;
    b.pc = 0x1238;
    b.op = trace::OpClass::Call;
    b.taken = true;
    b.target = 0x4000;
    b.retAddr = 0x123c;

    TempFile file("roundtrip.rgtr");
    trace::VectorTraceSource out({a, b});
    EXPECT_EQ(trace::writeTrace(out, file.path()), 2u);

    trace::VectorTraceSource in = trace::readTrace(file.path());
    EXPECT_EQ(in.length(), 2u);
    trace::Instruction got;
    ASSERT_TRUE(in.next(got));
    EXPECT_EQ(got.pc, a.pc);
    EXPECT_EQ(got.op, a.op);
    EXPECT_EQ(got.srcA, a.srcA);
    EXPECT_EQ(got.srcB, a.srcB);
    EXPECT_EQ(got.dst, a.dst);
    EXPECT_EQ(got.memAddr, a.memAddr);
    EXPECT_EQ(got.valA, a.valA);
    EXPECT_EQ(got.valB, a.valB);
    ASSERT_TRUE(in.next(got));
    EXPECT_EQ(got.op, b.op);
    EXPECT_TRUE(got.taken);
    EXPECT_EQ(got.target, b.target);
    EXPECT_EQ(got.retAddr, b.retAddr);
    EXPECT_FALSE(in.next(got));
}

TEST(TraceIo, ReplayedSyntheticTraceTimesIdentically)
{
    // Saving a synthetic trace and replaying it through the core must
    // give the exact same cycle count as the live generator.
    const trace::WorkloadProfile &p = trace::workloadByName("gzip");
    TempFile file("gzip.rgtr");
    {
        trace::SyntheticTraceGenerator gen(p, 20000);
        EXPECT_EQ(trace::writeTrace(gen, file.path()), 20000u);
    }

    trace::SyntheticTraceGenerator live(p, 20000);
    sim::SuperscalarCore core_live{sim::ProcessorConfig{}};
    const std::uint64_t live_cycles = core_live.run(live).cycles;

    trace::VectorTraceSource replay = trace::readTrace(file.path());
    sim::SuperscalarCore core_replay{sim::ProcessorConfig{}};
    const std::uint64_t replay_cycles = core_replay.run(replay).cycles;

    EXPECT_EQ(live_cycles, replay_cycles);
}

TEST(TraceIo, EmptyTrace)
{
    TempFile file("empty.rgtr");
    trace::VectorTraceSource out({});
    EXPECT_EQ(trace::writeTrace(out, file.path()), 0u);
    trace::VectorTraceSource in = trace::readTrace(file.path());
    EXPECT_EQ(in.length(), 0u);
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(trace::readTrace("/nonexistent/path/x.rgtr"),
                 std::runtime_error);
}

TEST(TraceIo, BadMagicRejected)
{
    TempFile file("badmagic.rgtr");
    std::FILE *f = std::fopen(file.path().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOPE0000000000000000", f);
    std::fclose(f);
    EXPECT_THROW(trace::readTrace(file.path()), std::runtime_error);
}

TEST(TraceIo, TruncatedFileRejected)
{
    const trace::WorkloadProfile &p = trace::workloadByName("mcf");
    TempFile file("trunc.rgtr");
    {
        trace::SyntheticTraceGenerator gen(p, 100);
        trace::writeTrace(gen, file.path());
    }
    // Chop the file short.
    std::FILE *f = std::fopen(file.path().c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(file.path().c_str(), size / 2), 0);
    EXPECT_THROW(trace::readTrace(file.path()), std::runtime_error);
}
