#include <gtest/gtest.h>

#include "sim/branch_predictor.hh"

namespace sim = rigor::sim;

TEST(BimodalPredictor, LearnsABiasedBranch)
{
    sim::BimodalPredictor p(1024);
    const std::uint64_t pc = 0x4000;
    // Train taken.
    for (int i = 0; i < 4; ++i)
        p.updateCounters(pc, true);
    EXPECT_TRUE(p.predict(pc));
    // Re-train not-taken.
    for (int i = 0; i < 4; ++i)
        p.updateCounters(pc, false);
    EXPECT_FALSE(p.predict(pc));
}

TEST(BimodalPredictor, HysteresisSurvivesOneAnomaly)
{
    sim::BimodalPredictor p(1024);
    const std::uint64_t pc = 0x4000;
    for (int i = 0; i < 4; ++i)
        p.updateCounters(pc, true);
    p.updateCounters(pc, false); // single anomaly
    EXPECT_TRUE(p.predict(pc)) << "2-bit counter must not flip on one";
}

TEST(BimodalPredictor, DistinctPcsIndependent)
{
    // PCs chosen to land in different table slots (0x1000 and 0x2000
    // alias in a 1024-entry table: (pc >> 2) & 1023 is 0 for both).
    sim::BimodalPredictor p(1024);
    for (int i = 0; i < 4; ++i) {
        p.updateCounters(0x1004, true);
        p.updateCounters(0x2008, false);
    }
    EXPECT_TRUE(p.predict(0x1004));
    EXPECT_FALSE(p.predict(0x2008));
}

TEST(BimodalPredictor, AliasedPcsShareACounter)
{
    // The flip side: a finite table aliases — train one PC, its alias
    // inherits the prediction.
    sim::BimodalPredictor p(1024);
    for (int i = 0; i < 4; ++i)
        p.updateCounters(0x1000, true);
    EXPECT_TRUE(p.predict(0x2000));
}

TEST(TwoLevelPredictor, LearnsAlternatingPatternViaHistory)
{
    // A strictly alternating branch defeats a bimodal predictor but
    // is perfectly predictable with global history.
    sim::TwoLevelPredictor p(4096, 8);
    const std::uint64_t pc = 0x4000;
    bool outcome = false;
    // Train.
    for (int i = 0; i < 200; ++i) {
        p.updateCounters(pc, outcome);
        p.updateHistory(outcome);
        outcome = !outcome;
    }
    // Measure.
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        if (p.predict(pc) == outcome)
            ++correct;
        p.updateCounters(pc, outcome);
        p.updateHistory(outcome);
        outcome = !outcome;
    }
    EXPECT_GE(correct, 95);
}

TEST(TwoLevelPredictor, ValidatesConstruction)
{
    EXPECT_THROW(sim::TwoLevelPredictor(1000, 8),
                 std::invalid_argument);
    EXPECT_THROW(sim::TwoLevelPredictor(1024, 0),
                 std::invalid_argument);
    EXPECT_THROW(sim::TwoLevelPredictor(1024, 31),
                 std::invalid_argument);
}

TEST(BimodalPredictor, ValidatesConstruction)
{
    EXPECT_THROW(sim::BimodalPredictor(100), std::invalid_argument);
}

TEST(PerfectPredictor, AlwaysMatchesOracle)
{
    sim::PerfectPredictor p;
    p.setOracleOutcome(true);
    EXPECT_TRUE(p.predict(0x1234));
    p.setOracleOutcome(false);
    EXPECT_FALSE(p.predict(0x1234));
}

TEST(BranchPredictorStats, AccuracyAccounting)
{
    sim::BimodalPredictor p(64);
    p.recordOutcome(true);
    p.recordOutcome(true);
    p.recordOutcome(false);
    p.recordOutcome(true);
    EXPECT_EQ(p.stats().predictions, 4u);
    EXPECT_EQ(p.stats().mispredictions, 1u);
    EXPECT_DOUBLE_EQ(p.stats().accuracy(), 0.75);
}

TEST(BranchPredictorFactory, ProducesRequestedKinds)
{
    auto two = sim::makeBranchPredictor(
        sim::BranchPredictorKind::TwoLevel);
    EXPECT_NE(dynamic_cast<sim::TwoLevelPredictor *>(two.get()),
              nullptr);
    auto bi = sim::makeBranchPredictor(
        sim::BranchPredictorKind::Bimodal);
    EXPECT_NE(dynamic_cast<sim::BimodalPredictor *>(bi.get()), nullptr);
    auto perfect = sim::makeBranchPredictor(
        sim::BranchPredictorKind::Perfect);
    EXPECT_NE(dynamic_cast<sim::PerfectPredictor *>(perfect.get()),
              nullptr);
}

TEST(LocalTwoLevelPredictor, LearnsPerBranchPattern)
{
    // Two branches with opposite fixed behavior must not interfere
    // through shared global history.
    sim::LocalTwoLevelPredictor p;
    for (int i = 0; i < 50; ++i) {
        p.updateCounters(0x1004, true);
        p.updateCounters(0x2008, false);
    }
    EXPECT_TRUE(p.predict(0x1004));
    EXPECT_FALSE(p.predict(0x2008));
}

TEST(LocalTwoLevelPredictor, LearnsShortPeriodicPattern)
{
    // Period-3 pattern T T N is local-history predictable.
    sim::LocalTwoLevelPredictor p;
    const std::uint64_t pc = 0x4000;
    const bool pattern[3] = {true, true, false};
    for (int i = 0; i < 300; ++i)
        p.updateCounters(pc, pattern[i % 3]);
    int correct = 0;
    for (int i = 0; i < 99; ++i) {
        if (p.predict(pc) == pattern[i % 3])
            ++correct;
        p.updateCounters(pc, pattern[i % 3]);
    }
    EXPECT_GE(correct, 95);
}

TEST(LocalTwoLevelPredictor, ValidatesConstruction)
{
    EXPECT_THROW(sim::LocalTwoLevelPredictor(1000, 10, 1024),
                 std::invalid_argument);
    EXPECT_THROW(sim::LocalTwoLevelPredictor(1024, 0, 1024),
                 std::invalid_argument);
    EXPECT_THROW(sim::LocalTwoLevelPredictor(1024, 10, 1000),
                 std::invalid_argument);
}

TEST(TournamentPredictor, BeatsOrMatchesBothComponentsOnMixedWork)
{
    // A branch with a local-periodic pattern plus a branch correlated
    // with global history: the tournament should track both well.
    sim::TournamentPredictor tour;
    sim::TwoLevelPredictor global;
    sim::LocalTwoLevelPredictor local;

    const std::uint64_t pc_periodic = 0x1004;
    const bool pattern[4] = {true, true, true, false};
    int tour_ok = 0;
    int total = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool outcome = pattern[i % 4];
        if (i > 500) {
            ++total;
            if (tour.predict(pc_periodic) == outcome)
                ++tour_ok;
        }
        tour.updateCounters(pc_periodic, outcome);
        tour.updateHistory(outcome);
    }
    EXPECT_GT(static_cast<double>(tour_ok) / total, 0.9);
}

TEST(TournamentPredictor, FactoryKinds)
{
    auto local = sim::makeBranchPredictor(
        sim::BranchPredictorKind::LocalTwoLevel);
    EXPECT_NE(dynamic_cast<sim::LocalTwoLevelPredictor *>(local.get()),
              nullptr);
    auto tour = sim::makeBranchPredictor(
        sim::BranchPredictorKind::Tournament);
    EXPECT_NE(dynamic_cast<sim::TournamentPredictor *>(tour.get()),
              nullptr);
}
