#include <gtest/gtest.h>

#include <vector>

#include "sim/core.hh"
#include "trace/vector_source.hh"
#include "trace/workloads.hh"

namespace sim = rigor::sim;
namespace trace = rigor::trace;

namespace
{

/** A generous configuration so single mechanisms can be isolated. */
sim::ProcessorConfig
bigConfig()
{
    sim::ProcessorConfig c;
    c.ifqEntries = 32;
    c.robEntries = 64;
    c.lsqRatio = 1.0;
    c.memPorts = 4;
    c.intAlus = 4;
    c.intAluLatency = 1;
    c.bpred = sim::BranchPredictorKind::Perfect;
    c.l1i = {128 * 1024, 8, 64, sim::ReplacementKind::LRU, 1};
    c.l1d = {128 * 1024, 8, 64, sim::ReplacementKind::LRU, 1};
    c.l2 = {8192 * 1024, 8, 256, sim::ReplacementKind::LRU, 5};
    c.memLatencyFirst = 50;
    c.memBandwidthBytes = 32;
    c.itlb = {256, 4 * 1024 * 1024, 0, 30};
    c.dtlb = {256, 4 * 1024 * 1024, 0, 30};
    c.validate();
    return c;
}

/** n independent single-cycle ALU ops in one I-cache block. */
std::vector<trace::Instruction>
independentAlus(std::size_t n)
{
    std::vector<trace::Instruction> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        v[i].pc = 0x1000 + 4 * (i % 16);
        v[i].op = trace::OpClass::IntAlu;
        v[i].srcA = trace::noReg;
        v[i].srcB = trace::noReg;
        v[i].dst = static_cast<std::uint8_t>(1 + (i % 8));
    }
    return v;
}

/** A serial dependence chain: each op reads the previous result. */
std::vector<trace::Instruction>
dependentChain(std::size_t n)
{
    std::vector<trace::Instruction> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        v[i].pc = 0x1000 + 4 * (i % 16);
        v[i].op = trace::OpClass::IntAlu;
        v[i].srcA = 1;
        v[i].srcB = trace::noReg;
        v[i].dst = 1;
    }
    return v;
}

std::uint64_t
runCycles(const sim::ProcessorConfig &config,
          std::vector<trace::Instruction> instructions,
          sim::ExecutionHook *hook = nullptr)
{
    trace::VectorTraceSource src(std::move(instructions));
    sim::SuperscalarCore core(config, hook);
    return core.run(src).cycles;
}

} // namespace

TEST(Core, EmptyTraceRunsZeroInstructions)
{
    trace::VectorTraceSource src({});
    sim::SuperscalarCore core(bigConfig());
    const sim::CoreStats stats = core.run(src);
    EXPECT_EQ(stats.instructions, 0u);
}

TEST(Core, IndependentWorkReachesWideIpc)
{
    const sim::CoreStats stats = [] {
        trace::VectorTraceSource src(independentAlus(4000));
        sim::SuperscalarCore core(bigConfig());
        return core.run(src);
    }();
    EXPECT_EQ(stats.instructions, 4000u);
    // 4-wide machine with 4 ALUs and no hazards: IPC near 4.
    EXPECT_GT(stats.ipc(), 3.0);
}

TEST(Core, DependenceChainSerializes)
{
    const std::uint64_t dep = runCycles(bigConfig(), dependentChain(2000));
    const std::uint64_t indep =
        runCycles(bigConfig(), independentAlus(2000));
    // The chain needs >= 1 cycle per instruction; independent work
    // runs ~4 per cycle.
    EXPECT_GT(dep, 3 * indep);
    EXPECT_GE(dep, 2000u);
}

TEST(Core, HigherAluLatencySlowsChain)
{
    sim::ProcessorConfig slow = bigConfig();
    slow.intAluLatency = 2;
    const std::uint64_t fast_c = runCycles(bigConfig(),
                                           dependentChain(1000));
    const std::uint64_t slow_c = runCycles(slow, dependentChain(1000));
    // Latency 2 roughly doubles a pure chain.
    EXPECT_GT(slow_c, fast_c + 800);
}

TEST(Core, FewerAlusThrottleIndependentWork)
{
    sim::ProcessorConfig narrow = bigConfig();
    narrow.intAlus = 1;
    const std::uint64_t wide_c = runCycles(bigConfig(),
                                           independentAlus(2000));
    const std::uint64_t narrow_c =
        runCycles(narrow, independentAlus(2000));
    EXPECT_GT(narrow_c, 2 * wide_c);
}

TEST(Core, SmallRobLimitsMemoryParallelism)
{
    // Loads that miss to memory: a big ROB overlaps them, a tiny ROB
    // serializes (this is why ROB entries tops the paper's Table 9).
    std::vector<trace::Instruction> loads(600);
    for (std::size_t i = 0; i < loads.size(); ++i) {
        loads[i].pc = 0x1000 + 4 * (i % 8);
        loads[i].op = trace::OpClass::Load;
        loads[i].srcA = trace::noReg;
        loads[i].srcB = trace::noReg;
        loads[i].dst = static_cast<std::uint8_t>(1 + (i % 8));
        loads[i].memAddr = 0x10000000 + i * 4096; // all L2 misses
    }
    // Narrow the L2 blocks so the channel occupancy per transfer is
    // small: memory-level parallelism (not channel bandwidth) is then
    // the bottleneck, which is exactly what the ROB provides.
    sim::ProcessorConfig big_rob = bigConfig();
    big_rob.l2.blockBytes = 64;
    sim::ProcessorConfig small_rob = big_rob;
    small_rob.robEntries = 8;
    const std::uint64_t big_c = runCycles(big_rob, loads);
    const std::uint64_t small_c = runCycles(small_rob, loads);
    EXPECT_GT(small_c, big_c * 3 / 2);
}

TEST(Core, MispredictionPenaltyCostsCycles)
{
    // Unpredictable alternating-direction branches under a 2-level
    // predictor vs perfect prediction.
    std::vector<trace::Instruction> v;
    trace::Rng rng(42);
    for (int i = 0; i < 2000; ++i) {
        trace::Instruction alu;
        alu.pc = 0x1000 + 8 * (i % 4);
        alu.op = trace::OpClass::IntAlu;
        alu.dst = 1;
        v.push_back(alu);
        trace::Instruction br;
        br.pc = alu.pc + 4;
        br.op = trace::OpClass::Branch;
        br.taken = rng.nextBool(0.5);
        br.target = 0x1000 + 8 * ((i + 1) % 4);
        v.push_back(br);
    }
    sim::ProcessorConfig real = bigConfig();
    real.bpred = sim::BranchPredictorKind::TwoLevel;
    real.bpredPenalty = 10;
    const std::uint64_t perfect_c = runCycles(bigConfig(), v);
    const std::uint64_t real_c = runCycles(real, v);
    EXPECT_GT(real_c, perfect_c + 2000);

    // And a smaller penalty must cost less.
    sim::ProcessorConfig cheap = real;
    cheap.bpredPenalty = 2;
    const std::uint64_t cheap_c = runCycles(cheap, v);
    EXPECT_LT(cheap_c, real_c);
    EXPECT_GT(cheap_c, perfect_c);
}

TEST(Core, PerfectPredictorNeverMispredicts)
{
    std::vector<trace::Instruction> v;
    trace::Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        trace::Instruction br;
        br.pc = 0x1000;
        br.op = trace::OpClass::Branch;
        br.taken = rng.nextBool(0.5);
        br.target = 0x1000;
        v.push_back(br);
    }
    trace::VectorTraceSource src(v);
    sim::SuperscalarCore core(bigConfig()); // perfect predictor
    const sim::CoreStats stats = core.run(src);
    EXPECT_EQ(stats.branchMispredicts, 0u);
    EXPECT_EQ(stats.btbMisfetches, 0u);
}

TEST(Core, ColdICacheStallsFetch)
{
    // March through 1000 distinct I-cache blocks vs looping in one.
    std::vector<trace::Instruction> cold(1000);
    for (std::size_t i = 0; i < cold.size(); ++i) {
        cold[i].pc = 0x1000 + i * 64;
        cold[i].op = trace::OpClass::IntAlu;
        cold[i].dst = 1;
        cold[i].srcA = trace::noReg;
    }
    sim::ProcessorConfig tiny_l1i = bigConfig();
    tiny_l1i.l1i = {4096, 1, 64, sim::ReplacementKind::LRU, 1};
    const std::uint64_t hot_c =
        runCycles(tiny_l1i, independentAlus(1000));
    const std::uint64_t cold_c = runCycles(tiny_l1i, cold);
    EXPECT_GT(cold_c, hot_c * 5);
}

TEST(Core, StoresDoNotBlockCommitLikeLoads)
{
    std::vector<trace::Instruction> stores(400);
    std::vector<trace::Instruction> loads(400);
    for (std::size_t i = 0; i < 400; ++i) {
        stores[i].pc = loads[i].pc = 0x1000 + 4 * (i % 8);
        stores[i].op = trace::OpClass::Store;
        loads[i].op = trace::OpClass::Load;
        loads[i].dst = 1;
        stores[i].memAddr = loads[i].memAddr =
            0x10000000 + i * 4096; // every access misses
    }
    const std::uint64_t store_c = runCycles(bigConfig(), stores);
    const std::uint64_t load_c = runCycles(bigConfig(), loads);
    EXPECT_LT(store_c, load_c);
}

TEST(Core, HookInterceptionSkipsExecution)
{
    // A hook that intercepts everything: a long-latency divide chain
    // becomes single-cycle.
    struct AllHook : sim::ExecutionHook
    {
        bool
        intercept(const trace::Instruction &) override
        {
            return true;
        }
    };

    std::vector<trace::Instruction> divs(300);
    for (std::size_t i = 0; i < divs.size(); ++i) {
        divs[i].pc = 0x1000;
        divs[i].op = trace::OpClass::IntDiv;
        divs[i].srcA = 1;
        divs[i].dst = 1;
    }
    AllHook hook;
    const std::uint64_t plain_c = runCycles(bigConfig(), divs);
    const std::uint64_t hooked_c = runCycles(bigConfig(), divs, &hook);
    EXPECT_GT(plain_c, 10 * hooked_c);

    trace::VectorTraceSource src(divs);
    sim::SuperscalarCore core(bigConfig(), &hook);
    EXPECT_EQ(core.run(src).interceptedInstructions, 300u);
}

TEST(Core, RasMispredictsWhenCallDepthExceedsStack)
{
    // Build a trace of nested calls then returns, deeper than the RAS.
    std::vector<trace::Instruction> v;
    const int depth = 16;
    for (int i = 0; i < depth; ++i) {
        trace::Instruction call;
        call.pc = 0x1000 + i * 64;
        call.op = trace::OpClass::Call;
        call.taken = true;
        call.target = 0x1000 + (i + 1) * 64;
        call.retAddr = 0x8000 + i * 64;
        v.push_back(call);
    }
    for (int i = depth - 1; i >= 0; --i) {
        trace::Instruction ret;
        ret.pc = 0x1000 + (i + 1) * 64 + 32;
        ret.op = trace::OpClass::Return;
        ret.taken = true;
        ret.target = 0x8000 + i * 64;
        v.push_back(ret);
    }

    sim::ProcessorConfig small_ras = bigConfig();
    small_ras.bpred = sim::BranchPredictorKind::TwoLevel;
    small_ras.rasEntries = 4;
    trace::VectorTraceSource src1(v);
    sim::SuperscalarCore core1(small_ras);
    const sim::CoreStats small_stats = core1.run(src1);
    EXPECT_EQ(small_stats.rasMispredicts, depth - 4u);

    sim::ProcessorConfig big_ras = small_ras;
    big_ras.rasEntries = 64;
    trace::VectorTraceSource src2(v);
    sim::SuperscalarCore core2(big_ras);
    EXPECT_EQ(core2.run(src2).rasMispredicts, 0u);
}

TEST(Core, SyntheticWorkloadRunsToCompletion)
{
    const trace::WorkloadProfile &profile =
        trace::workloadByName("gzip");
    trace::SyntheticTraceGenerator gen(profile, 50000);
    sim::SuperscalarCore core(bigConfig());
    const sim::CoreStats stats = core.run(gen);
    EXPECT_EQ(stats.instructions, 50000u);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.ipc(), 0.1);
    EXPECT_LE(stats.ipc(), 4.0);
}

TEST(Core, DeterministicAcrossRuns)
{
    const trace::WorkloadProfile &profile =
        trace::workloadByName("mcf");
    const auto run_once = [&] {
        trace::SyntheticTraceGenerator gen(profile, 20000);
        sim::SuperscalarCore core(bigConfig());
        return core.run(gen).cycles;
    };
    EXPECT_EQ(run_once(), run_once());
}
