#include <gtest/gtest.h>

#include "sim/tlb.hh"

namespace sim = rigor::sim;

namespace
{

sim::TlbGeometry
geom(std::uint32_t entries, std::uint64_t page, std::uint32_t assoc,
     std::uint32_t miss_latency)
{
    return sim::TlbGeometry{entries, page, assoc, miss_latency};
}

} // namespace

TEST(Tlb, MissPaysPenaltyHitIsFree)
{
    sim::Tlb tlb("itlb", geom(16, 4096, 4, 30));
    EXPECT_EQ(tlb.access(0x1000), 30u);
    EXPECT_EQ(tlb.access(0x1ffc), 0u); // same page
    EXPECT_EQ(tlb.stats().accesses, 2u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, DistinctPagesMissSeparately)
{
    sim::Tlb tlb("t", geom(16, 4096, 4, 50));
    EXPECT_EQ(tlb.access(0x0000), 50u);
    EXPECT_EQ(tlb.access(0x1000), 50u);
    EXPECT_EQ(tlb.access(0x0000), 0u);
}

TEST(Tlb, LargerPagesCoverMoreAddresses)
{
    sim::Tlb small_pages("s", geom(4, 4096, 4, 10));
    sim::Tlb large_pages("l", geom(4, 4 * 1024 * 1024, 4, 10));
    // Touch 64KB of addresses at 4KB strides.
    for (std::uint64_t a = 0; a < 64 * 1024; a += 4096) {
        small_pages.access(a);
        large_pages.access(a);
    }
    // 16 distinct 4KB pages thrash a 4-entry TLB; one 4MB page holds
    // everything.
    EXPECT_EQ(large_pages.stats().misses, 1u);
    EXPECT_GT(small_pages.stats().misses, 4u);
}

TEST(Tlb, CapacityReplacementIsLru)
{
    // Fully associative 2-entry TLB.
    sim::Tlb tlb("fa", geom(2, 4096, 0, 10));
    tlb.access(0x0000);
    tlb.access(0x1000);
    tlb.access(0x0000); // refresh page 0
    tlb.access(0x2000); // evicts page 1
    EXPECT_EQ(tlb.access(0x0000), 0u);
    EXPECT_EQ(tlb.access(0x1000), 10u);
}

TEST(Tlb, MoreEntriesReduceMisses)
{
    sim::Tlb small_tlb("s", geom(32, 4096, 2, 10));
    sim::Tlb big_tlb("b", geom(256, 4096, 2, 10));
    // Cycle over 128 pages twice.
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t a = 0; a < 128 * 4096; a += 4096) {
            small_tlb.access(a);
            big_tlb.access(a);
        }
    EXPECT_EQ(big_tlb.stats().misses, 128u);
    EXPECT_GT(small_tlb.stats().misses, 200u);
}

TEST(Tlb, ResetClearsEverything)
{
    sim::Tlb tlb("r", geom(16, 4096, 4, 30));
    tlb.access(0x1000);
    tlb.reset();
    EXPECT_EQ(tlb.stats().accesses, 0u);
    EXPECT_EQ(tlb.access(0x1000), 30u);
}

TEST(Tlb, MissRate)
{
    sim::Tlb tlb("mr", geom(16, 4096, 4, 30));
    tlb.access(0x1000);
    tlb.access(0x1000);
    EXPECT_DOUBLE_EQ(tlb.stats().missRate(), 0.5);
}
