#include <gtest/gtest.h>

#include "sim/memory_system.hh"

namespace sim = rigor::sim;

namespace
{

/** A small, deterministic hierarchy for timing checks. */
sim::ProcessorConfig
testConfig()
{
    sim::ProcessorConfig c;
    c.l1i = {1024, 1, 32, sim::ReplacementKind::LRU, 1};
    c.l1d = {1024, 1, 32, sim::ReplacementKind::LRU, 2};
    c.l2 = {4096, 1, 64, sim::ReplacementKind::LRU, 10};
    c.memLatencyFirst = 100;
    c.memBandwidthBytes = 16;
    c.itlb = {16, 4096, 4, 30};
    c.dtlb = {16, 4096, 4, 30};
    c.validate();
    return c;
}

} // namespace

TEST(MemorySystem, TransferCyclesFormula)
{
    // 64B block / 16B bus = 4 chunks: first + 3 * following.
    const sim::MemorySystem m(testConfig());
    EXPECT_EQ(m.memoryTransferCycles(), 100u + 3u * 2u);
    // Channel occupancy covers only the data beats.
    EXPECT_EQ(m.memoryChannelOccupancy(), 1u + 3u * 2u);
}

TEST(MemorySystem, FirstBlockLatencyOverlapsAcrossMisses)
{
    // Two simultaneous misses: the second queues only behind the
    // first transfer's data beats, not its whole DRAM latency.
    sim::MemorySystem m(testConfig());
    const std::uint64_t lat1 = m.dataAccess(0, 0x0, false);
    const std::uint64_t lat2 = m.dataAccess(0, 0x100000, false);
    EXPECT_EQ(lat2 - lat1, m.memoryChannelOccupancy());
}

TEST(MemorySystem, FollowingLatencyIsTwoPercentOfFirst)
{
    sim::ProcessorConfig c = testConfig();
    EXPECT_EQ(c.memLatencyFollowing(), 2u); // 0.02 * 100
    c.memLatencyFirst = 50;
    EXPECT_EQ(c.memLatencyFollowing(), 1u);
    c.memLatencyFirst = 10;
    EXPECT_EQ(c.memLatencyFollowing(), 1u); // clamped to >= 1
}

TEST(MemorySystem, ColdDataAccessWalksWholeHierarchy)
{
    sim::MemorySystem m(testConfig());
    // TLB miss (30) + L1D (2) + L2 (10) + memory (106).
    EXPECT_EQ(m.dataAccess(0, 0x0, false), 30u + 2u + 10u + 106u);
}

TEST(MemorySystem, WarmAccessIsL1Latency)
{
    sim::MemorySystem m(testConfig());
    m.dataAccess(0, 0x0, false);
    EXPECT_EQ(m.dataAccess(200, 0x0, false), 2u);
}

TEST(MemorySystem, L2HitAvoidsMemory)
{
    sim::MemorySystem m(testConfig());
    m.dataAccess(0, 0x0, false);
    // 0x400 = 1024: different L1 set? L1 is 1KB direct-mapped so 0x400
    // wraps to set 0 and evicts 0x0; but 0x0 and 0x400 are different
    // 64B L2 blocks, so prime the L2 with 0x0, evict it from L1, and
    // re-access: TLB hit + L1 miss + L2 hit.
    m.dataAccess(400, 0x400, false);
    EXPECT_EQ(m.dataAccess(800, 0x0, false), 2u + 10u);
}

TEST(MemorySystem, InstructionPathUsesItlbAndL1i)
{
    sim::MemorySystem m(testConfig());
    // Cold: ITLB (30) + L1I (1) + L2 (10) + memory (106).
    EXPECT_EQ(m.instructionFetch(0, 0x0), 30u + 1u + 10u + 106u);
    EXPECT_EQ(m.instructionFetch(200, 0x0), 1u);
    EXPECT_EQ(m.stats().instructionFetches, 2u);
}

TEST(MemorySystem, BusContentionSerializesTransfers)
{
    sim::MemorySystem m(testConfig());
    // Two L2 misses issued at the same cycle: the second transfer
    // queues behind the first on the memory channel.
    const std::uint64_t lat1 = m.dataAccess(0, 0x0, false);
    const std::uint64_t lat2 = m.dataAccess(0, 0x10000, false);
    EXPECT_GT(lat2, lat1 - 30u); // second pays queueing on top
    EXPECT_GT(m.stats().busQueueCycles, 0u);
    EXPECT_EQ(m.stats().memoryTransfers, 2u);
}

TEST(MemorySystem, SharedL2SeesBothInstructionAndDataMisses)
{
    sim::MemorySystem m(testConfig());
    m.instructionFetch(0, 0x0);
    m.dataAccess(100, 0x40, false);
    EXPECT_EQ(m.stats().l2Accesses, 2u);
    EXPECT_EQ(m.l2().stats().accesses, 2u);
}

TEST(MemorySystem, WiderBusShortensTransfer)
{
    sim::ProcessorConfig wide = testConfig();
    wide.memBandwidthBytes = 64; // one chunk
    const sim::MemorySystem m(wide);
    EXPECT_EQ(m.memoryTransferCycles(), 100u);
}

TEST(MemorySystem, StoreTimingSameAsLoadPath)
{
    sim::MemorySystem m(testConfig());
    const std::uint64_t load_lat = m.dataAccess(0, 0x0, false);
    sim::MemorySystem m2(testConfig());
    const std::uint64_t store_lat = m2.dataAccess(0, 0x0, true);
    EXPECT_EQ(load_lat, store_lat);
}

TEST(MemorySystem, NextLinePrefetchDisabledByDefault)
{
    sim::MemorySystem m(testConfig());
    m.instructionFetch(0, 0x0);
    EXPECT_EQ(m.stats().instructionPrefetches, 0u);
}

TEST(MemorySystem, NextLinePrefetchWarmsTheFollowingBlock)
{
    sim::ProcessorConfig c = testConfig();
    c.l1iNextLinePrefetch = true;
    sim::MemorySystem m(c);
    // Fetch block 0: block 1 (0x20) is prefetched alongside.
    m.instructionFetch(0, 0x0);
    EXPECT_EQ(m.stats().instructionPrefetches, 1u);
    EXPECT_TRUE(m.l1i().contains(0x20));
    // The demand fetch of the prefetched block is now an L1 hit.
    EXPECT_EQ(m.instructionFetch(500, 0x20), 1u);
}

TEST(MemorySystem, NextLinePrefetchSkipsResidentBlocks)
{
    sim::ProcessorConfig c = testConfig();
    c.l1iNextLinePrefetch = true;
    sim::MemorySystem m(c);
    m.instructionFetch(0, 0x0);
    const std::uint64_t prefetches = m.stats().instructionPrefetches;
    // Re-fetching the same block must not re-prefetch a resident one.
    m.instructionFetch(600, 0x0);
    EXPECT_EQ(m.stats().instructionPrefetches, prefetches);
}

TEST(MemorySystem, PrefetchSpeedsUpSequentialCodeMarch)
{
    // A straight-line march through cold code: with next-line
    // prefetch, every block after the first is already in L1I.
    sim::ProcessorConfig base = testConfig();
    sim::ProcessorConfig pf = base;
    pf.l1iNextLinePrefetch = true;
    sim::MemorySystem m_base(base);
    sim::MemorySystem m_pf(pf);
    std::uint64_t base_lat = 0;
    std::uint64_t pf_lat = 0;
    for (std::uint64_t block = 0; block < 64; ++block) {
        base_lat += m_base.instructionFetch(block * 400, block * 32);
        pf_lat += m_pf.instructionFetch(block * 400, block * 32);
    }
    EXPECT_LT(pf_lat, base_lat / 4);
}

TEST(MemorySystem, PrefetchStillConsumesChannelBandwidth)
{
    sim::ProcessorConfig c = testConfig();
    c.l1iNextLinePrefetch = true;
    sim::MemorySystem m(c);
    m.instructionFetch(0, 0x0);
    // Block 0 (demand, L2 miss) + block 1 (prefetch, same 64B L2
    // block -> L2 hit, no extra transfer). Fetch far away: two more.
    m.instructionFetch(500, 0x1000);
    EXPECT_GE(m.stats().memoryTransfers, 2u);
}
