#include <gtest/gtest.h>

#include "sim/replacement.hh"

namespace sim = rigor::sim;

TEST(TagStore, MissThenHit)
{
    sim::TagStore t(4, 2, sim::ReplacementKind::LRU);
    EXPECT_FALSE(t.lookup(0, 100));
    t.insert(0, 100);
    EXPECT_TRUE(t.lookup(0, 100));
}

TEST(TagStore, SetsAreIndependent)
{
    sim::TagStore t(2, 1, sim::ReplacementKind::LRU);
    t.insert(0, 7);
    EXPECT_TRUE(t.probe(0, 7));
    EXPECT_FALSE(t.probe(1, 7));
}

TEST(TagStore, LruEvictsLeastRecentlyUsed)
{
    sim::TagStore t(1, 2, sim::ReplacementKind::LRU);
    t.insert(0, 1);
    t.insert(0, 2);
    // Touch 1 so 2 becomes the LRU victim.
    EXPECT_TRUE(t.lookup(0, 1));
    EXPECT_TRUE(t.insert(0, 3)); // evicts 2
    EXPECT_TRUE(t.probe(0, 1));
    EXPECT_FALSE(t.probe(0, 2));
    EXPECT_TRUE(t.probe(0, 3));
}

TEST(TagStore, FifoIgnoresHits)
{
    sim::TagStore t(1, 2, sim::ReplacementKind::FIFO);
    t.insert(0, 1);
    t.insert(0, 2);
    // Touching 1 must NOT save it under FIFO.
    EXPECT_TRUE(t.lookup(0, 1));
    t.insert(0, 3); // evicts 1 (oldest insert)
    EXPECT_FALSE(t.probe(0, 1));
    EXPECT_TRUE(t.probe(0, 2));
    EXPECT_TRUE(t.probe(0, 3));
}

TEST(TagStore, RandomEvictsSomeValidWay)
{
    sim::TagStore t(1, 4, sim::ReplacementKind::Random);
    for (std::uint64_t tag = 0; tag < 4; ++tag)
        t.insert(0, tag);
    EXPECT_TRUE(t.insert(0, 99));
    // Exactly one of the original four is gone.
    unsigned survivors = 0;
    for (std::uint64_t tag = 0; tag < 4; ++tag)
        if (t.probe(0, tag))
            ++survivors;
    EXPECT_EQ(survivors, 3u);
    EXPECT_TRUE(t.probe(0, 99));
}

TEST(TagStore, InvalidWaysFillBeforeEviction)
{
    sim::TagStore t(1, 3, sim::ReplacementKind::LRU);
    EXPECT_FALSE(t.insert(0, 1));
    EXPECT_FALSE(t.insert(0, 2));
    EXPECT_FALSE(t.insert(0, 3));
    EXPECT_TRUE(t.insert(0, 4));
}

TEST(TagStore, ReinsertRefreshesPayloadWithoutEviction)
{
    sim::TagStore t(1, 2, sim::ReplacementKind::LRU);
    t.insert(0, 1, 111);
    EXPECT_FALSE(t.insert(0, 1, 222));
    std::uint64_t payload = 0;
    EXPECT_TRUE(t.lookup(0, 1, &payload));
    EXPECT_EQ(payload, 222u);
}

TEST(TagStore, ProbeDoesNotPerturbLru)
{
    sim::TagStore t(1, 2, sim::ReplacementKind::LRU);
    t.insert(0, 1);
    t.insert(0, 2);
    // Probe (unlike lookup) must not refresh tag 1.
    EXPECT_TRUE(t.probe(0, 1));
    t.insert(0, 3); // victim should still be 1
    EXPECT_FALSE(t.probe(0, 1));
}

TEST(TagStore, FlushInvalidatesAll)
{
    sim::TagStore t(2, 2, sim::ReplacementKind::LRU);
    t.insert(0, 1);
    t.insert(1, 2);
    t.flush();
    EXPECT_FALSE(t.probe(0, 1));
    EXPECT_FALSE(t.probe(1, 2));
}

TEST(TagStore, Validation)
{
    EXPECT_THROW(sim::TagStore(0, 1, sim::ReplacementKind::LRU),
                 std::invalid_argument);
    EXPECT_THROW(sim::TagStore(1, 0, sim::ReplacementKind::LRU),
                 std::invalid_argument);
    sim::TagStore t(2, 1, sim::ReplacementKind::LRU);
    EXPECT_THROW(t.lookup(2, 0), std::out_of_range);
}
