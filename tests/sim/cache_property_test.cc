/**
 * @file
 * Parameterized cache property sweeps: inclusion-style monotonicity
 * of miss counts in size and associativity across geometries, on both
 * a looping and a scanning reference stream.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/cache.hh"
#include "trace/rng.hh"

namespace sim = rigor::sim;
namespace trace = rigor::trace;

namespace
{

std::vector<std::uint64_t>
zipfStream(std::size_t n, std::uint64_t span_bytes)
{
    trace::Rng rng(2024);
    std::vector<std::uint64_t> addrs;
    addrs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        addrs.push_back(rng.nextZipf(span_bytes / 8) * 8);
    return addrs;
}

std::uint64_t
missesFor(const sim::CacheGeometry &geom,
          const std::vector<std::uint64_t> &addrs)
{
    sim::Cache cache("sweep", geom);
    for (std::uint64_t a : addrs)
        cache.access(a);
    return cache.stats().misses;
}

class SizeSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

class AssocSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

} // namespace

TEST_P(SizeSweep, LruMissesNeverIncreaseWithAssocCapacityScaling)
{
    // Fully-associative LRU caches have the inclusion property:
    // doubling capacity can only remove misses. (Set-associative
    // caches can violate this via indexing, which is why the check
    // pins full associativity.)
    const std::uint32_t size = GetParam();
    const auto addrs = zipfStream(40000, 512 * 1024);
    const std::uint64_t small = missesFor(
        {size, 0, 32, sim::ReplacementKind::LRU, 1}, addrs);
    const std::uint64_t big = missesFor(
        {size * 2, 0, 32, sim::ReplacementKind::LRU, 1}, addrs);
    EXPECT_LE(big, small);
}

INSTANTIATE_TEST_SUITE_P(Capacities, SizeSweep,
                         ::testing::Values(4 * 1024u, 8 * 1024u,
                                           16 * 1024u, 32 * 1024u,
                                           64 * 1024u));

TEST_P(AssocSweep, HigherAssociativityHelpsConflictHeavyStream)
{
    // A stream hitting a few conflicting frames repeatedly: more ways
    // at fixed capacity must not add misses.
    const std::uint32_t assoc = GetParam();
    std::vector<std::uint64_t> addrs;
    for (int round = 0; round < 2000; ++round)
        for (std::uint64_t frame = 0; frame < 6; ++frame)
            addrs.push_back(frame * 8192); // same set, distinct tags
    const std::uint64_t fewer_ways = missesFor(
        {8192, assoc, 32, sim::ReplacementKind::LRU, 1}, addrs);
    const std::uint64_t more_ways = missesFor(
        {8192, assoc * 2, 32, sim::ReplacementKind::LRU, 1}, addrs);
    EXPECT_LE(more_ways, fewer_ways);
}

INSTANTIATE_TEST_SUITE_P(Ways, AssocSweep,
                         ::testing::Values(1u, 2u, 4u));

TEST(CacheProperty, MissCountsBoundedByAccesses)
{
    const auto addrs = zipfStream(10000, 256 * 1024);
    for (std::uint32_t size : {4096u, 65536u}) {
        sim::Cache cache("bound",
                         {size, 2, 32, sim::ReplacementKind::LRU, 1});
        for (std::uint64_t a : addrs)
            cache.access(a);
        EXPECT_LE(cache.stats().misses, cache.stats().accesses);
        EXPECT_LE(cache.stats().evictions, cache.stats().misses);
    }
}

TEST(CacheProperty, ReplacementPoliciesAgreeOnCompulsoryMisses)
{
    // On a no-reuse scan, policy cannot matter: every access misses
    // regardless of LRU/FIFO/Random.
    std::vector<std::uint64_t> scan;
    for (std::uint64_t i = 0; i < 4096; ++i)
        scan.push_back(i * 64);
    for (sim::ReplacementKind repl :
         {sim::ReplacementKind::LRU, sim::ReplacementKind::FIFO,
          sim::ReplacementKind::Random}) {
        EXPECT_EQ(missesFor({8192, 2, 64, repl, 1}, scan), 4096u);
    }
}

TEST(CacheProperty, LruNeverWorseThanFifoOnLoopingStream)
{
    // A loop slightly larger than one way-group: LRU keeps the reuse
    // set at least as well as FIFO here.
    std::vector<std::uint64_t> loop;
    for (int round = 0; round < 500; ++round)
        for (std::uint64_t i = 0; i < 96; ++i)
            loop.push_back(i * 32);
    const std::uint64_t lru = missesFor(
        {4096, 0, 32, sim::ReplacementKind::LRU, 1}, loop);
    const std::uint64_t fifo = missesFor(
        {4096, 0, 32, sim::ReplacementKind::FIFO, 1}, loop);
    // For a cyclic scan exceeding capacity both thrash equally; LRU
    // must not be worse.
    EXPECT_LE(lru, fifo + 1);
}
