#include <gtest/gtest.h>

#include "sim/btb.hh"

namespace sim = rigor::sim;

TEST(Btb, MissThenHitWithTarget)
{
    sim::Btb btb(16, 2);
    std::uint64_t target = 0;
    EXPECT_FALSE(btb.lookup(0x1000, &target));
    btb.update(0x1000, 0x2000);
    EXPECT_TRUE(btb.lookup(0x1000, &target));
    EXPECT_EQ(target, 0x2000u);
}

TEST(Btb, UpdateOverwritesTarget)
{
    sim::Btb btb(16, 2);
    btb.update(0x1000, 0x2000);
    btb.update(0x1000, 0x3000);
    std::uint64_t target = 0;
    EXPECT_TRUE(btb.lookup(0x1000, &target));
    EXPECT_EQ(target, 0x3000u);
}

TEST(Btb, ConflictEvictionInSmallBtb)
{
    // Direct-mapped 4-entry BTB: PCs 4 words apart collide.
    sim::Btb btb(4, 1);
    btb.update(0x0, 0xa);
    btb.update(4 * 4, 0xb); // same set as 0x0
    std::uint64_t target = 0;
    EXPECT_FALSE(btb.lookup(0x0, &target));
}

TEST(Btb, AssociativityResolvesConflict)
{
    sim::Btb btb(4, 2);
    btb.update(0x0, 0xa);
    btb.update(2 * 4, 0xb); // 2 sets: word 2 -> set 0
    std::uint64_t target = 0;
    EXPECT_TRUE(btb.lookup(0x0, &target));
    EXPECT_EQ(target, 0xau);
    EXPECT_TRUE(btb.lookup(2 * 4, &target));
    EXPECT_EQ(target, 0xbu);
}

TEST(Btb, FullyAssociativeHoldsEverything)
{
    sim::Btb btb(8, 0);
    for (std::uint64_t i = 0; i < 8; ++i)
        btb.update(i * 4, i);
    std::uint64_t target = 0;
    for (std::uint64_t i = 0; i < 8; ++i) {
        EXPECT_TRUE(btb.lookup(i * 4, &target));
        EXPECT_EQ(target, i);
    }
}

TEST(Btb, MoreEntriesFewerMisses)
{
    sim::Btb small_btb(16, 2);
    sim::Btb big_btb(512, 2);
    // 64 branch sites round-robin.
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t i = 0; i < 64; ++i) {
            std::uint64_t t;
            small_btb.lookup(i * 4, &t);
            small_btb.update(i * 4, i);
            big_btb.lookup(i * 4, &t);
            big_btb.update(i * 4, i);
        }
    EXPECT_EQ(big_btb.stats().misses, 64u); // cold only
    EXPECT_GT(small_btb.stats().misses, 100u);
}

TEST(Btb, StatsAndHitRate)
{
    sim::Btb btb(16, 2);
    std::uint64_t t;
    btb.lookup(0x10, &t);
    btb.update(0x10, 0x20);
    btb.lookup(0x10, &t);
    EXPECT_EQ(btb.stats().lookups, 2u);
    EXPECT_EQ(btb.stats().misses, 1u);
    EXPECT_DOUBLE_EQ(btb.stats().hitRate(), 0.5);
}

TEST(Btb, Validation)
{
    EXPECT_THROW(sim::Btb(0, 1), std::invalid_argument);
    EXPECT_THROW(sim::Btb(12, 1), std::invalid_argument);
    EXPECT_THROW(sim::Btb(16, 3), std::invalid_argument);
}
