#include <gtest/gtest.h>

#include "sim/func_unit.hh"

namespace sim = rigor::sim;

TEST(FuPool, SingleUnitSerializesAtInterval)
{
    sim::FuPool pool("div", 1, 20, 20); // unpipelined divide
    EXPECT_EQ(pool.reserve(0), 0u);
    EXPECT_EQ(pool.reserve(0), 20u);
    EXPECT_EQ(pool.reserve(0), 40u);
}

TEST(FuPool, PipelinedUnitAcceptsEveryCycle)
{
    sim::FuPool pool("alu", 1, 3, 1);
    EXPECT_EQ(pool.reserve(0), 0u);
    EXPECT_EQ(pool.reserve(0), 1u);
    EXPECT_EQ(pool.reserve(0), 2u);
}

TEST(FuPool, MultipleUnitsRunInParallel)
{
    sim::FuPool pool("alus", 4, 1, 1);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(pool.reserve(0), 0u);
    EXPECT_EQ(pool.reserve(0), 1u);
}

TEST(FuPool, ReadyCycleRespected)
{
    sim::FuPool pool("alu", 1, 1, 1);
    EXPECT_EQ(pool.reserve(100), 100u);
    EXPECT_EQ(pool.reserve(50), 101u); // unit busy until 101
}

TEST(FuPool, EarliestStartPredictsReserve)
{
    sim::FuPool pool("mul", 2, 7, 7);
    pool.reserve(0);
    pool.reserve(0);
    EXPECT_EQ(pool.earliestStart(0), 7u);
    EXPECT_EQ(pool.reserve(0), 7u);
}

TEST(FuPool, ReserveForUsesPerOpInterval)
{
    // Shared int mult/div pool: mult interval 1, div interval 30.
    sim::FuPool pool("imd", 1, 7, 1);
    EXPECT_EQ(pool.reserveFor(0, 30), 0u); // divide blocks the unit
    EXPECT_EQ(pool.reserveFor(0, 1), 30u); // multiply must wait
    EXPECT_EQ(pool.reserveFor(0, 1), 31u);
}

TEST(FuPool, StallAccounting)
{
    sim::FuPool pool("alu", 1, 1, 10);
    pool.reserve(0);
    pool.reserve(0); // stalled 10 cycles
    EXPECT_EQ(pool.stats().operations, 2u);
    EXPECT_EQ(pool.stats().busyStallCycles, 10u);
}

TEST(FuPool, ResetClearsBookings)
{
    sim::FuPool pool("alu", 1, 1, 5);
    pool.reserve(0);
    pool.reset();
    EXPECT_EQ(pool.reserve(0), 0u);
    EXPECT_EQ(pool.stats().operations, 1u);
}

TEST(FuPool, Validation)
{
    EXPECT_THROW(sim::FuPool("x", 0, 1, 1), std::invalid_argument);
    EXPECT_THROW(sim::FuPool("x", 1, 0, 1), std::invalid_argument);
    EXPECT_THROW(sim::FuPool("x", 1, 1, 0), std::invalid_argument);
    sim::FuPool pool("x", 1, 1, 1);
    EXPECT_THROW(pool.reserveFor(0, 0), std::invalid_argument);
}

TEST(FuPool, MorePipelinedUnitsClearBacklogFaster)
{
    sim::FuPool one("one", 1, 5, 5);
    sim::FuPool four("four", 4, 5, 5);
    std::uint64_t last_one = 0;
    std::uint64_t last_four = 0;
    for (int i = 0; i < 8; ++i) {
        last_one = one.reserve(0);
        last_four = four.reserve(0);
    }
    EXPECT_EQ(last_one, 35u);
    EXPECT_EQ(last_four, 5u);
}
