#include <gtest/gtest.h>

#include "sim/config.hh"

namespace sim = rigor::sim;

TEST(ProcessorConfig, DefaultsValidate)
{
    const sim::ProcessorConfig c;
    EXPECT_NO_THROW(c.validate());
}

TEST(ProcessorConfig, LsqIsRatioOfRob)
{
    sim::ProcessorConfig c;
    c.robEntries = 64;
    c.lsqRatio = 0.25;
    EXPECT_EQ(c.lsqEntries(), 16u);
    c.lsqRatio = 1.0;
    EXPECT_EQ(c.lsqEntries(), 64u);
    // Never zero, even for a tiny ROB.
    c.robEntries = 2;
    c.lsqRatio = 0.25;
    EXPECT_EQ(c.lsqEntries(), 1u);
}

TEST(ProcessorConfig, LinkedThroughputsEqualLatencies)
{
    sim::ProcessorConfig c;
    c.intDivLatency = 80;
    c.fpMultLatency = 5;
    c.fpDivLatency = 35;
    c.fpSqrtLatency = 35;
    EXPECT_EQ(c.intDivThroughput(), 80u);
    EXPECT_EQ(c.fpMultThroughput(), 5u);
    EXPECT_EQ(c.fpDivThroughput(), 35u);
    EXPECT_EQ(c.fpSqrtThroughput(), 35u);
}

TEST(ProcessorConfig, MemFollowingLatencyLink)
{
    sim::ProcessorConfig c;
    c.memLatencyFirst = 200;
    EXPECT_EQ(c.memLatencyFollowing(), 4u);
    c.memLatencyFirst = 50;
    EXPECT_EQ(c.memLatencyFollowing(), 1u);
}

TEST(ProcessorConfig, ValidateRejectsBadCore)
{
    sim::ProcessorConfig c;
    c.robEntries = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);

    c = sim::ProcessorConfig{};
    c.lsqRatio = 0.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);

    c = sim::ProcessorConfig{};
    c.btbEntries = 12; // not a power of two
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ProcessorConfig, ValidateRejectsBadCache)
{
    sim::ProcessorConfig c;
    c.l1d.sizeBytes = 3000; // not a power of two
    EXPECT_THROW(c.validate(), std::invalid_argument);

    c = sim::ProcessorConfig{};
    c.l1d.blockBytes = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);

    c = sim::ProcessorConfig{};
    c.l2.blockBytes = 16; // smaller than L1 blocks
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ProcessorConfig, ValidateRejectsBadFunctionalUnits)
{
    sim::ProcessorConfig c;
    c.intAlus = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);

    c = sim::ProcessorConfig{};
    c.fpDivLatency = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ProcessorConfig, ValidateRejectsBadMemory)
{
    sim::ProcessorConfig c;
    c.memBandwidthBytes = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);

    c = sim::ProcessorConfig{};
    c.itlb.pageBytes = 3000;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ProcessorConfig, EnumNames)
{
    EXPECT_EQ(sim::toString(sim::BranchPredictorKind::TwoLevel),
              "2-Level");
    EXPECT_EQ(sim::toString(sim::BranchPredictorKind::Perfect),
              "Perfect");
    EXPECT_EQ(sim::toString(sim::BranchUpdateTiming::InCommit),
              "In Commit");
    EXPECT_EQ(sim::toString(sim::ReplacementKind::LRU), "LRU");
}

TEST(ProcessorConfig, ToStringMentionsKeyFields)
{
    sim::ProcessorConfig c;
    c.robEntries = 64;
    const std::string s = c.toString();
    EXPECT_NE(s.find("rob=64"), std::string::npos);
    EXPECT_NE(s.find("l2:"), std::string::npos);
}

TEST(CacheGeometry, FullyAssociativeZeroMeansAllWays)
{
    sim::CacheGeometry g{1024, 0, 32, sim::ReplacementKind::LRU, 1};
    EXPECT_EQ(g.effectiveAssoc(), 32u);
    EXPECT_EQ(g.numSets(), 1u);
}

TEST(TlbGeometry, FullyAssociative)
{
    sim::TlbGeometry g{64, 4096, 0, 30};
    EXPECT_EQ(g.effectiveAssoc(), 64u);
    EXPECT_EQ(g.numSets(), 1u);
}
