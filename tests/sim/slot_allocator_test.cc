#include <gtest/gtest.h>

#include "sim/core.hh"
#include "sim/stats_report.hh"
#include "trace/vector_source.hh"

namespace sim = rigor::sim;
namespace trace = rigor::trace;

TEST(SlotAllocator, HonorsPerCycleCapacity)
{
    sim::SlotAllocator alloc(2);
    EXPECT_EQ(alloc.allocate(10), 10u);
    EXPECT_EQ(alloc.allocate(10), 10u);
    EXPECT_EQ(alloc.allocate(10), 11u); // cycle 10 full
    EXPECT_EQ(alloc.allocate(10), 11u);
    EXPECT_EQ(alloc.allocate(10), 12u);
}

TEST(SlotAllocator, IndependentCycles)
{
    sim::SlotAllocator alloc(1);
    EXPECT_EQ(alloc.allocate(5), 5u);
    EXPECT_EQ(alloc.allocate(100), 100u);
    EXPECT_EQ(alloc.allocate(5), 6u);
}

TEST(SlotAllocator, OutOfOrderRequests)
{
    sim::SlotAllocator alloc(1);
    EXPECT_EQ(alloc.allocate(50), 50u);
    // An earlier-cycle request books the earlier cycle.
    EXPECT_EQ(alloc.allocate(49), 49u);
    // Both booked: next request at 49 spills to 51.
    EXPECT_EQ(alloc.allocate(49), 51u);
}

TEST(SlotAllocator, LongRuns)
{
    sim::SlotAllocator alloc(4);
    // Fill 1000 consecutive cycles at capacity.
    for (std::uint64_t c = 0; c < 1000; ++c)
        for (int k = 0; k < 4; ++k)
            EXPECT_EQ(alloc.allocate(c), c);
    // Everything full: the next request lands at 1000.
    EXPECT_EQ(alloc.allocate(0), 1000u);
}

TEST(StatsReport, MentionsAllSections)
{
    // Run a tiny trace so the report has real numbers.
    std::vector<trace::Instruction> v(50);
    for (std::size_t i = 0; i < v.size(); ++i) {
        v[i].pc = 0x1000 + 4 * i;
        v[i].op = i % 7 == 0 ? trace::OpClass::Load
                             : trace::OpClass::IntAlu;
        v[i].memAddr = 0x20000 + i * 64;
        v[i].dst = 1;
    }
    trace::VectorTraceSource src(v);
    sim::SuperscalarCore core{sim::ProcessorConfig{}};
    const sim::CoreStats stats = core.run(src);
    const std::string report = sim::formatRunReport(core, stats);
    EXPECT_NE(report.find("IPC"), std::string::npos);
    EXPECT_NE(report.find("l1d"), std::string::npos);
    EXPECT_NE(report.find("itlb"), std::string::npos);
    EXPECT_NE(report.find("int-alu"), std::string::npos);
    EXPECT_NE(report.find("instructions: 50"), std::string::npos);
}

TEST(StatsReport, JsonVariantCarriesTheSameRun)
{
    std::vector<trace::Instruction> v(50);
    for (std::size_t i = 0; i < v.size(); ++i) {
        v[i].pc = 0x1000 + 4 * i;
        v[i].op = i % 7 == 0 ? trace::OpClass::Load
                             : trace::OpClass::IntAlu;
        v[i].memAddr = 0x20000 + i * 64;
        v[i].dst = 1;
    }
    trace::VectorTraceSource src(v);
    sim::SuperscalarCore core{sim::ProcessorConfig{}};
    const sim::CoreStats stats = core.run(src);
    const std::string json = sim::formatRunReportJson(core, stats);
    // Single-line JSON object with stable snake_case keys.
    EXPECT_EQ(json.find('\n'), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"instructions\":50"), std::string::npos);
    EXPECT_NE(json.find("\"ipc\":"), std::string::npos);
    EXPECT_NE(json.find("\"caches\":{"), std::string::npos);
    EXPECT_NE(json.find("\"l1d\":{"), std::string::npos);
    EXPECT_NE(json.find("\"tlbs\":{"), std::string::npos);
    EXPECT_NE(json.find("\"functional_units\":{"),
              std::string::npos);
    EXPECT_NE(json.find("\"loads\":"), std::string::npos);
}

TEST(CoreStats, MeasuredWindowAccessors)
{
    sim::CoreStats stats;
    stats.instructions = 100;
    stats.cycles = 500;
    stats.warmupInstructions = 40;
    stats.warmupCycles = 260;
    EXPECT_EQ(stats.measuredInstructions(), 60u);
    EXPECT_EQ(stats.measuredCycles(), 240u);
    EXPECT_DOUBLE_EQ(stats.ipc(), 0.2);
}

TEST(CoreStats, WarmupSplitsRunDeterministically)
{
    // run(n_warmup) must produce the same totals as run(0), with the
    // warmup markers set at the boundary.
    std::vector<trace::Instruction> v(200);
    for (std::size_t i = 0; i < v.size(); ++i) {
        v[i].pc = 0x1000 + 4 * (i % 32);
        v[i].op = trace::OpClass::IntAlu;
        v[i].srcA = 1;
        v[i].dst = 1;
    }
    trace::VectorTraceSource src1(v);
    sim::SuperscalarCore core1{sim::ProcessorConfig{}};
    const sim::CoreStats plain = core1.run(src1);

    trace::VectorTraceSource src2(v);
    sim::SuperscalarCore core2{sim::ProcessorConfig{}};
    const sim::CoreStats warmed = core2.run(src2, 100);

    EXPECT_EQ(plain.cycles, warmed.cycles);
    EXPECT_EQ(warmed.warmupInstructions, 100u);
    EXPECT_GT(warmed.warmupCycles, 0u);
    EXPECT_LT(warmed.warmupCycles, warmed.cycles);
}
