#include <gtest/gtest.h>

#include "sim/ras.hh"

namespace sim = rigor::sim;

TEST(Ras, PushPopLifo)
{
    sim::ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), std::optional<std::uint64_t>(0x200));
    EXPECT_EQ(ras.pop(), std::optional<std::uint64_t>(0x100));
}

TEST(Ras, UnderflowReturnsNothing)
{
    sim::ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), std::nullopt);
    EXPECT_EQ(ras.stats().underflows, 1u);
}

TEST(Ras, OverflowDropsOldest)
{
    sim::ReturnAddressStack ras(2);
    ras.push(0x1);
    ras.push(0x2);
    ras.push(0x3); // overwrites 0x1
    EXPECT_EQ(ras.stats().overflows, 1u);
    EXPECT_EQ(ras.pop(), std::optional<std::uint64_t>(0x3));
    EXPECT_EQ(ras.pop(), std::optional<std::uint64_t>(0x2));
    // The oldest entry is gone: deep call chains mispredict on the
    // way out, which is exactly why RAS size matters (Table 6).
    EXPECT_EQ(ras.pop(), std::nullopt);
}

TEST(Ras, DepthTracksLiveEntries)
{
    sim::ReturnAddressStack ras(4);
    EXPECT_EQ(ras.depth(), 0u);
    ras.push(1);
    ras.push(2);
    EXPECT_EQ(ras.depth(), 2u);
    ras.pop();
    EXPECT_EQ(ras.depth(), 1u);
}

TEST(Ras, DepthSaturatesAtCapacity)
{
    sim::ReturnAddressStack ras(3);
    for (int i = 0; i < 10; ++i)
        ras.push(static_cast<std::uint64_t>(i));
    EXPECT_EQ(ras.depth(), 3u);
    EXPECT_EQ(ras.stats().overflows, 7u);
}

TEST(Ras, WrapAroundKeepsLifoOrder)
{
    sim::ReturnAddressStack ras(2);
    for (std::uint64_t i = 0; i < 5; ++i)
        ras.push(i);
    // Survivors: 3, 4 (LIFO).
    EXPECT_EQ(ras.pop(), std::optional<std::uint64_t>(4));
    EXPECT_EQ(ras.pop(), std::optional<std::uint64_t>(3));
}

TEST(Ras, StatsCountPushesAndPops)
{
    sim::ReturnAddressStack ras(4);
    ras.push(1);
    ras.pop();
    ras.pop();
    EXPECT_EQ(ras.stats().pushes, 1u);
    EXPECT_EQ(ras.stats().pops, 2u);
}

TEST(Ras, RejectsZeroCapacity)
{
    EXPECT_THROW(sim::ReturnAddressStack(0), std::invalid_argument);
}
