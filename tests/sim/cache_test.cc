#include <gtest/gtest.h>

#include "sim/cache.hh"

namespace sim = rigor::sim;

namespace
{

sim::CacheGeometry
geom(std::uint32_t size, std::uint32_t assoc, std::uint32_t block,
     std::uint32_t latency = 1,
     sim::ReplacementKind repl = sim::ReplacementKind::LRU)
{
    return sim::CacheGeometry{size, assoc, block, repl, latency};
}

} // namespace

TEST(Cache, GeometryDerivedQuantities)
{
    const sim::CacheGeometry g = geom(4096, 2, 32);
    EXPECT_EQ(g.numBlocks(), 128u);
    EXPECT_EQ(g.effectiveAssoc(), 2u);
    EXPECT_EQ(g.numSets(), 64u);
}

TEST(Cache, FullyAssociativeGeometry)
{
    const sim::CacheGeometry g = geom(1024, 0, 32);
    EXPECT_EQ(g.effectiveAssoc(), 32u);
    EXPECT_EQ(g.numSets(), 1u);
}

TEST(Cache, ColdMissThenHit)
{
    sim::Cache c("test", geom(1024, 2, 32));
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_EQ(c.stats().accesses, 2u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, SameBlockDifferentBytesHit)
{
    sim::Cache c("test", geom(1024, 2, 32));
    c.access(0x100);
    EXPECT_TRUE(c.access(0x11f)); // same 32B block
    EXPECT_FALSE(c.access(0x120)); // next block
}

TEST(Cache, CapacityEviction)
{
    // Direct-mapped 4-block cache: 5 distinct blocks mapping around.
    sim::Cache c("dm", geom(128, 1, 32));
    // Blocks 0 and 4 collide in set 0.
    EXPECT_FALSE(c.access(0 * 32));
    EXPECT_FALSE(c.access(4 * 32));
    EXPECT_FALSE(c.access(0 * 32)); // evicted by block 4
    EXPECT_EQ(c.stats().evictions, 2u);
}

TEST(Cache, AssociativityAvoidsConflict)
{
    // Same two blocks in a 2-way cache of the same size: no conflict.
    sim::Cache c("2way", geom(128, 2, 32));
    EXPECT_FALSE(c.access(0 * 32));
    EXPECT_FALSE(c.access(2 * 32)); // 2 sets: block 2 maps to set 0
    EXPECT_TRUE(c.access(0 * 32));
    EXPECT_TRUE(c.access(2 * 32));
}

TEST(Cache, LargerBlocksExploitSpatialLocality)
{
    sim::Cache small_blocks("s", geom(4096, 1, 16));
    sim::Cache large_blocks("l", geom(4096, 1, 64));
    // Sequential sweep: 64B blocks miss 4x less often.
    for (std::uint64_t a = 0; a < 2048; a += 8) {
        small_blocks.access(a);
        large_blocks.access(a);
    }
    EXPECT_EQ(small_blocks.stats().misses, 128u);
    EXPECT_EQ(large_blocks.stats().misses, 32u);
}

TEST(Cache, WorkingSetFitsBiggerCache)
{
    sim::Cache small("small", geom(1024, 2, 32));
    sim::Cache big("big", geom(16384, 2, 32));
    // 8KB working set cycled twice.
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t a = 0; a < 8192; a += 32) {
            small.access(a);
            big.access(a);
        }
    // The big cache holds the set after the first pass.
    EXPECT_EQ(big.stats().misses, 256u);
    EXPECT_GT(small.stats().misses, 400u);
}

TEST(Cache, FullyAssociativeLruIsPerfectForSmallSet)
{
    sim::Cache c("fa", geom(1024, 0, 32));
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t a = 0; a < 1024; a += 32)
            c.access(a);
    EXPECT_EQ(c.stats().misses, 32u); // cold misses only
}

TEST(Cache, ContainsDoesNotAllocateOrCount)
{
    sim::Cache c("probe", geom(1024, 2, 32));
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_EQ(c.stats().accesses, 0u);
    c.access(0x40);
    EXPECT_TRUE(c.contains(0x40));
}

TEST(Cache, ResetClearsStateAndStats)
{
    sim::Cache c("r", geom(1024, 2, 32));
    c.access(0x40);
    c.reset();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_FALSE(c.contains(0x40));
}

TEST(Cache, MissRateComputation)
{
    sim::Cache c("mr", geom(1024, 2, 32));
    c.access(0);
    c.access(0);
    c.access(0);
    c.access(32);
    EXPECT_DOUBLE_EQ(c.stats().missRate(), 0.5);
}

TEST(Cache, LatencyAccessor)
{
    sim::Cache c("lat", geom(1024, 2, 32, 4));
    EXPECT_EQ(c.latency(), 4u);
}
