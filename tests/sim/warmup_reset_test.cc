#include <gtest/gtest.h>

#include <stdexcept>

#include "methodology/parameter_space.hh"
#include "sim/core.hh"
#include "trace/generator.hh"
#include "trace/workloads.hh"

namespace doe = rigor::doe;
namespace methodology = rigor::methodology;
namespace sim = rigor::sim;
namespace trace = rigor::trace;

namespace
{

trace::WorkloadProfile
workload()
{
    return trace::workloadByName("gzip");
}

sim::ProcessorConfig
configWithPredictor(sim::BranchPredictorKind kind)
{
    sim::ProcessorConfig config =
        methodology::uniformConfig(doe::Level::High);
    config.bpred = kind;
    config.validate();
    return config;
}

void
expectSameStats(const sim::CoreStats &a, const sim::CoreStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.btbMisfetches, b.btbMisfetches);
    EXPECT_EQ(a.rasMispredicts, b.rasMispredicts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.interceptedInstructions, b.interceptedInstructions);
    EXPECT_EQ(a.warmupInstructions, b.warmupInstructions);
    EXPECT_EQ(a.warmupCycles, b.warmupCycles);
}

} // namespace

// ----- Warm-up vs stream-length boundaries -----

TEST(WarmupAccounting, WarmupEqualToStreamLengthIsRejected)
{
    const trace::WorkloadProfile profile = workload();
    trace::SyntheticTraceGenerator gen(profile, 5000);
    sim::SuperscalarCore core(
        configWithPredictor(sim::BranchPredictorKind::TwoLevel));
    EXPECT_THROW(core.run(gen, 5000), std::invalid_argument);
}

TEST(WarmupAccounting, WarmupLongerThanStreamIsRejected)
{
    const trace::WorkloadProfile profile = workload();
    trace::SyntheticTraceGenerator gen(profile, 5000);
    sim::SuperscalarCore core(
        configWithPredictor(sim::BranchPredictorKind::TwoLevel));
    EXPECT_THROW(core.run(gen, 5001), std::invalid_argument);
}

TEST(WarmupAccounting, ZeroWarmupMeasuresEverything)
{
    const trace::WorkloadProfile profile = workload();
    trace::SyntheticTraceGenerator gen(profile, 5000);
    sim::SuperscalarCore core(
        configWithPredictor(sim::BranchPredictorKind::TwoLevel));
    const sim::CoreStats stats = core.run(gen, 0);
    EXPECT_EQ(stats.warmupInstructions, 0u);
    EXPECT_EQ(stats.warmupCycles, 0u);
    EXPECT_EQ(stats.measuredInstructions(), stats.instructions);
    EXPECT_EQ(stats.measuredCycles(), stats.cycles);
}

TEST(WarmupAccounting, WarmupOneShortOfStreamLatches)
{
    // The historic latch compared against a cumulative counter and
    // could only fire mid-run; a warm-up one instruction short of
    // the stream is the tightest boundary that must still latch.
    const trace::WorkloadProfile profile = workload();
    trace::SyntheticTraceGenerator gen(profile, 5000);
    sim::SuperscalarCore core(
        configWithPredictor(sim::BranchPredictorKind::TwoLevel));
    const sim::CoreStats stats = core.run(gen, 4999);
    EXPECT_EQ(stats.warmupInstructions, 4999u);
    EXPECT_GT(stats.warmupCycles, 0u);
    EXPECT_EQ(stats.measuredInstructions(), 1u);
}

TEST(WarmupAccounting, LatchFiresOnSecondRunOfSameCore)
{
    // The cumulative-stats core runs batch after batch; the warm-up
    // target must be relative to the instructions already retired,
    // not an absolute count that only ever matches on the first run.
    const trace::WorkloadProfile profile = workload();
    sim::SuperscalarCore core(
        configWithPredictor(sim::BranchPredictorKind::TwoLevel));
    trace::SyntheticTraceGenerator first(profile, 4000);
    core.run(first, 1000);
    trace::SyntheticTraceGenerator second(profile, 4000);
    const sim::CoreStats stats = core.run(second, 1000);
    // The second run's warm-up latched at 4000 (first run) + 1000.
    EXPECT_EQ(stats.warmupInstructions, 5000u);
    EXPECT_EQ(stats.instructions, 8000u);
}

// ----- run -> reset -> run bit-identity -----

TEST(CoreReset, RunResetRunIsBitIdentical)
{
    const trace::WorkloadProfile profile = workload();
    for (const sim::BranchPredictorKind kind :
         {sim::BranchPredictorKind::TwoLevel,
          sim::BranchPredictorKind::Bimodal,
          sim::BranchPredictorKind::LocalTwoLevel,
          sim::BranchPredictorKind::Tournament,
          sim::BranchPredictorKind::Perfect}) {
        SCOPED_TRACE(static_cast<int>(kind));
        sim::SuperscalarCore core(configWithPredictor(kind));

        trace::SyntheticTraceGenerator first(profile, 8000);
        const sim::CoreStats cold = core.run(first, 500);

        core.reset();
        trace::SyntheticTraceGenerator second(profile, 8000);
        const sim::CoreStats again = core.run(second, 500);
        expectSameStats(cold, again);
    }
}

TEST(CoreReset, ResetMatchesFreshCore)
{
    const trace::WorkloadProfile profile = workload();
    const sim::ProcessorConfig config =
        configWithPredictor(sim::BranchPredictorKind::Tournament);

    sim::SuperscalarCore dirty(config);
    trace::SyntheticTraceGenerator polluter(profile, 6000);
    dirty.run(polluter);
    dirty.reset();
    trace::SyntheticTraceGenerator replay(profile, 6000);
    const sim::CoreStats after_reset = dirty.run(replay);

    sim::SuperscalarCore fresh(config);
    trace::SyntheticTraceGenerator baseline(profile, 6000);
    const sim::CoreStats from_fresh = fresh.run(baseline);

    expectSameStats(after_reset, from_fresh);
}

// ----- Functional warming -----

TEST(FunctionalWarm, LeavesTimingStatsUntouched)
{
    const trace::WorkloadProfile profile = workload();
    sim::SuperscalarCore core(
        configWithPredictor(sim::BranchPredictorKind::TwoLevel));
    trace::SyntheticTraceGenerator gen(profile, 10000);
    const std::uint64_t consumed = core.warm(gen, 4000);
    EXPECT_EQ(consumed, 4000u);
    EXPECT_EQ(core.stats().instructions, 0u);
    EXPECT_EQ(core.stats().cycles, 0u);
}

TEST(FunctionalWarm, StopsAtStreamEnd)
{
    const trace::WorkloadProfile profile = workload();
    sim::SuperscalarCore core(
        configWithPredictor(sim::BranchPredictorKind::TwoLevel));
    trace::SyntheticTraceGenerator gen(profile, 1000);
    EXPECT_EQ(core.warm(gen, 5000), 1000u);
}

TEST(FunctionalWarm, WarmedCoreResetsToFreshState)
{
    const trace::WorkloadProfile profile = workload();
    const sim::ProcessorConfig config =
        configWithPredictor(sim::BranchPredictorKind::LocalTwoLevel);

    sim::SuperscalarCore warmed(config);
    trace::SyntheticTraceGenerator warm_stream(profile, 5000);
    warmed.warm(warm_stream, 5000);
    warmed.reset();
    trace::SyntheticTraceGenerator replay(profile, 6000);
    const sim::CoreStats after_reset = warmed.run(replay);

    sim::SuperscalarCore fresh(config);
    trace::SyntheticTraceGenerator baseline(profile, 6000);
    expectSameStats(after_reset, fresh.run(baseline));
}
