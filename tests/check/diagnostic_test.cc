#include <gtest/gtest.h>

#include "check/diagnostic.hh"
#include "check/rule_ids.hh"

namespace check = rigor::check;

TEST(Diagnostic, RendersClangStyle)
{
    check::Diagnostic d;
    d.severity = check::Severity::Error;
    d.ruleId = "design.orthogonality";
    d.message = "columns 1 and 2 are correlated";
    d.context = {"design.csv", 14, {}};
    EXPECT_EQ(d.toString(),
              "design.csv:14: error: columns 1 and 2 are correlated "
              "[design.orthogonality]");
}

TEST(Diagnostic, RendersObjectContextWithoutFile)
{
    check::Diagnostic d;
    d.severity = check::Severity::Warning;
    d.ruleId = "workload.no-memory-ops";
    d.message = "no loads or stores";
    d.context = {{}, 0, "workload 'gzip'"};
    EXPECT_EQ(d.toString(),
              "workload 'gzip': warning: no loads or stores "
              "[workload.no-memory-ops]");
}

TEST(Diagnostic, RendersWithoutAnyContext)
{
    check::Diagnostic d;
    d.severity = check::Severity::Note;
    d.ruleId = "x.y";
    d.message = "m";
    EXPECT_EQ(d.toString(), "note: m [x.y]");
}

TEST(DiagnosticSink, CountsSeverities)
{
    check::DiagnosticSink sink;
    EXPECT_TRUE(sink.passed());
    sink.warning("a.b", "w");
    EXPECT_TRUE(sink.passed());
    sink.error("c.d", "e1");
    sink.error("c.d", "e2");
    sink.note("e.f", "n");
    EXPECT_FALSE(sink.passed());
    EXPECT_EQ(sink.errorCount(), 2u);
    EXPECT_EQ(sink.warningCount(), 1u);
    EXPECT_EQ(sink.diagnostics().size(), 4u);
}

TEST(DiagnosticSink, HasRuleFindsReportedIds)
{
    check::DiagnosticSink sink;
    sink.error(check::rules::kDesignColumnBalance, "unbalanced");
    EXPECT_TRUE(sink.hasRule(check::rules::kDesignColumnBalance));
    EXPECT_FALSE(sink.hasRule(check::rules::kDesignOrthogonality));
}

TEST(DiagnosticSink, SummaryPluralizes)
{
    check::DiagnosticSink sink;
    EXPECT_EQ(sink.summary(), "0 errors, 0 warnings");
    sink.error("a.b", "e");
    sink.warning("c.d", "w");
    EXPECT_EQ(sink.summary(), "1 error, 1 warning");
    sink.error("a.b", "e");
    sink.warning("c.d", "w");
    EXPECT_EQ(sink.summary(), "2 errors, 2 warnings");
}

TEST(PreflightError, CarriesDiagnostics)
{
    check::DiagnosticSink sink;
    sink.error(check::rules::kDesignEmpty, "no rows");
    const check::PreflightError err("unit test", std::move(sink));
    ASSERT_EQ(err.diagnostics().size(), 1u);
    EXPECT_EQ(err.diagnostics().front().ruleId,
              check::rules::kDesignEmpty);
    EXPECT_NE(std::string(err.what()).find("unit test"),
              std::string::npos);
}
