#include <gtest/gtest.h>

#include <vector>

#include "check/preflight.hh"
#include "check/rule_ids.hh"
#include "doe/foldover.hh"
#include "doe/pb_design.hh"
#include "methodology/pb_experiment.hh"
#include "trace/workloads.hh"

namespace check = rigor::check;
namespace doe = rigor::doe;
namespace methodology = rigor::methodology;
namespace rules = rigor::check::rules;
namespace trace = rigor::trace;

namespace
{

std::vector<trace::WorkloadProfile>
oneWorkload()
{
    return {trace::workloadByName("gzip")};
}

methodology::PbExperimentOptions
fastOptions()
{
    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 2000;
    return opts;
}

/** The shipped 43-factor base design with one entry flipped. */
doe::DesignMatrix
corruptBaseDesign()
{
    doe::DesignMatrix design = doe::pbDesignForFactors(43);
    design.set(3, 7, doe::flip(design.at(3, 7)));
    return design;
}

} // namespace

TEST(Preflight, CleanPlanPasses)
{
    const auto workloads = oneWorkload();
    const doe::DesignMatrix folded =
        doe::foldover(doe::pbDesignForFactors(43));
    check::ExperimentPlan plan;
    plan.design = &folded;
    plan.expectedFactors = 43;
    plan.designIsFolded = true;
    plan.workloads = workloads;
    plan.auditParameterSpace = true;
    plan.instructionsPerRun = 200000;
    const check::DiagnosticSink sink =
        check::analyzeExperimentPlan(plan);
    EXPECT_EQ(sink.errorCount(), 0u) << sink.toString();
    EXPECT_NO_THROW(check::preflightOrThrow(plan, "test"));
}

TEST(Preflight, BadDesignInPlanThrowsWithRuleId)
{
    const auto workloads = oneWorkload();
    const doe::DesignMatrix corrupt = corruptBaseDesign();
    check::ExperimentPlan plan;
    plan.design = &corrupt;
    plan.expectedFactors = 43;
    plan.workloads = workloads;
    plan.instructionsPerRun = 200000;
    try {
        check::preflightOrThrow(plan, "unit");
        FAIL() << "expected PreflightError";
    } catch (const check::PreflightError &e) {
        EXPECT_TRUE(e.sink().hasRule(rules::kDesignColumnBalance));
        EXPECT_NE(std::string(e.what()).find("unit"),
                  std::string::npos);
    }
}

TEST(Preflight, BadExplicitConfigCaughtWithIndexContext)
{
    const auto workloads = oneWorkload();
    rigor::sim::ProcessorConfig good;
    rigor::sim::ProcessorConfig bad;
    bad.lsqRatio = 2.0;
    check::ExperimentPlan plan;
    plan.workloads = workloads;
    plan.configs = {&good, &bad};
    plan.instructionsPerRun = 200000;
    const check::DiagnosticSink sink =
        check::analyzeExperimentPlan(plan);
    ASSERT_TRUE(sink.hasRule(rules::kConfigLsqRatio));
    bool found_context = false;
    for (const check::Diagnostic &d : sink.diagnostics())
        if (d.context.object.find("configuration 1") !=
            std::string::npos)
            found_context = true;
    EXPECT_TRUE(found_context) << sink.toString();
}

// ----- Driver integration: the pre-flight is mandatory -----

TEST(Preflight, RunPbExperimentRejectsCorruptUserDesign)
{
    const auto workloads = oneWorkload();
    const doe::DesignMatrix corrupt = corruptBaseDesign();
    methodology::PbExperimentOptions opts = fastOptions();
    opts.design = &corrupt;
    EXPECT_THROW(methodology::runPbExperiment(workloads, opts),
                 check::PreflightError);
}

TEST(Preflight, RunPbExperimentRejectsDuplicateWorkloads)
{
    const std::vector<trace::WorkloadProfile> duplicated = {
        trace::workloadByName("gzip"),
        trace::workloadByName("gzip"),
    };
    try {
        methodology::runPbExperiment(duplicated, fastOptions());
        FAIL() << "expected PreflightError";
    } catch (const check::PreflightError &e) {
        EXPECT_TRUE(
            e.sink().hasRule(rules::kWorkloadDuplicateName));
    }
}

TEST(Preflight, RunPbExperimentRejectsBrokenWorkloadProfile)
{
    std::vector<trace::WorkloadProfile> workloads = oneWorkload();
    workloads[0].fracLoad = 0.9;
    workloads[0].fracStore = 0.9;
    try {
        methodology::runPbExperiment(workloads, fastOptions());
        FAIL() << "expected PreflightError";
    } catch (const check::PreflightError &e) {
        EXPECT_TRUE(e.sink().hasRule(rules::kWorkloadMixMass));
    }
}

TEST(Preflight, SkipPreflightEscapeHatchRunsAnyway)
{
    // A deliberately out-of-spec study: the corrupted design is
    // simulated when the escape hatch is set, and the result keeps
    // the folded dimensions of the supplied base design.
    const auto workloads = oneWorkload();
    const doe::DesignMatrix corrupt = corruptBaseDesign();
    methodology::PbExperimentOptions opts = fastOptions();
    opts.design = &corrupt;
    opts.campaign.skipPreflight = true;
    const methodology::PbExperimentResult result =
        methodology::runPbExperiment(workloads, opts);
    EXPECT_EQ(result.design.numRows(), 88u);
    EXPECT_EQ(result.responses.size(), 1u);
}
