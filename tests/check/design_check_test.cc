#include <gtest/gtest.h>

#include "check/design_check.hh"
#include "check/rule_ids.hh"
#include "doe/foldover.hh"
#include "doe/pb_design.hh"

namespace check = rigor::check;
namespace doe = rigor::doe;
namespace rules = rigor::check::rules;

namespace
{

doe::DesignMatrix
flipped(doe::DesignMatrix m, std::size_t row, std::size_t col)
{
    m.set(row, col, doe::flip(m.at(row, col)));
    return m;
}

} // namespace

// ----- checkSignMatrix: structural properties -----

TEST(DesignCheck, EmptyMatrixRejected)
{
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkSignMatrix({}, sink));
    EXPECT_TRUE(sink.hasRule(rules::kDesignEmpty));
}

TEST(DesignCheck, RaggedRowsRejected)
{
    check::DiagnosticSink sink;
    EXPECT_FALSE(
        check::checkSignMatrix({{1, -1}, {1, -1, 1}}, sink));
    EXPECT_TRUE(sink.hasRule(rules::kDesignRagged));
}

TEST(DesignCheck, NonUnitEntryRejected)
{
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkSignMatrix({{1, -1}, {0, 2}}, sink));
    EXPECT_TRUE(sink.hasRule(rules::kDesignEntryNotUnit));
    // Both bad entries are reported, not just the first.
    EXPECT_EQ(sink.errorCount(), 2u);
}

TEST(DesignCheck, CleanSignMatrixPasses)
{
    check::DiagnosticSink sink;
    EXPECT_TRUE(check::checkSignMatrix({{1, -1}, {-1, 1}}, sink));
    EXPECT_TRUE(sink.passed());
}

// ----- checkDesignMatrix: statistical properties -----

TEST(DesignCheck, PbDesignPassesAllChecks)
{
    const doe::DesignMatrix design = doe::pbDesignForFactors(43);
    check::DiagnosticSink sink;
    check::DesignCheckOptions options;
    options.expectedFactors = 43;
    EXPECT_TRUE(check::checkDesignMatrix(design, options, sink));
    EXPECT_EQ(sink.errorCount(), 0u) << sink.toString();
}

TEST(DesignCheck, FoldedPbDesignPassesFoldoverCheck)
{
    const doe::DesignMatrix folded =
        doe::foldover(doe::pbDesignForFactors(43));
    check::DiagnosticSink sink;
    check::DesignCheckOptions options;
    options.expectedFactors = 43;
    options.requireFoldover = true;
    EXPECT_TRUE(check::checkDesignMatrix(folded, options, sink));
    EXPECT_EQ(sink.errorCount(), 0u) << sink.toString();
}

TEST(DesignCheck, NonOrthogonalMatrixRejected)
{
    // Balanced columns that are perfectly correlated (c0 == c1).
    const doe::DesignMatrix design = doe::DesignMatrix::fromSigns({
        {+1, +1, +1},
        {+1, +1, -1},
        {+1, +1, +1},
        {-1, -1, -1},
        {-1, -1, +1},
        {+1, +1, -1},
        {-1, -1, +1},
        {-1, -1, -1},
    });
    check::DiagnosticSink sink;
    check::DesignCheckOptions options;
    options.requirePlackettBurman = false;
    EXPECT_FALSE(check::checkDesignMatrix(design, options, sink));
    // Columns 0 and 1 are identical — the aliasing special case —
    // so the generic orthogonality rule is reserved for partially
    // correlated pairs.
    EXPECT_TRUE(sink.hasRule(rules::kDesignDuplicateColumn));
}

TEST(DesignCheck, PartiallyCorrelatedColumnsRejected)
{
    // dot(c0, c1) = 4 with the columns not identical: the effect
    // estimates of the two factors contaminate each other.
    const doe::DesignMatrix design = doe::DesignMatrix::fromSigns({
        {+1, +1},
        {+1, +1},
        {+1, +1},
        {+1, -1},
        {-1, +1},
        {-1, -1},
        {-1, -1},
        {-1, -1},
    });
    check::DiagnosticSink sink;
    check::DesignCheckOptions options;
    options.requirePlackettBurman = false;
    EXPECT_FALSE(check::checkDesignMatrix(design, options, sink));
    EXPECT_TRUE(sink.hasRule(rules::kDesignOrthogonality));
}

TEST(DesignCheck, NegatedColumnReportedAsAliased)
{
    const doe::DesignMatrix design = doe::DesignMatrix::fromSigns({
        {+1, -1},
        {+1, -1},
        {-1, +1},
        {-1, +1},
    });
    check::DiagnosticSink sink;
    check::DesignCheckOptions options;
    options.requirePlackettBurman = false;
    EXPECT_FALSE(check::checkDesignMatrix(design, options, sink));
    EXPECT_TRUE(sink.hasRule(rules::kDesignDuplicateColumn));
}

TEST(DesignCheck, UnbalancedColumnRejected)
{
    const doe::DesignMatrix design = flipped(doe::pbDesign(8), 0, 0);
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkDesignMatrix(design, {}, sink));
    EXPECT_TRUE(sink.hasRule(rules::kDesignColumnBalance));
}

TEST(DesignCheck, BrokenFoldoverHalfRejected)
{
    // Flip one entry in the mirror half: the row is no longer the
    // exact complement of its partner.
    const doe::DesignMatrix folded = doe::foldover(doe::pbDesign(8));
    const doe::DesignMatrix broken =
        flipped(folded, folded.numRows() - 1, 2);
    check::DiagnosticSink sink;
    check::DesignCheckOptions options;
    options.requireFoldover = true;
    EXPECT_FALSE(check::checkDesignMatrix(broken, options, sink));
    EXPECT_TRUE(sink.hasRule(rules::kDesignFoldoverComplement));
}

TEST(DesignCheck, FoldoverWithOddRunsRejected)
{
    const doe::DesignMatrix design = doe::DesignMatrix::fromSigns({
        {+1},
        {-1},
        {+1},
    });
    check::DiagnosticSink sink;
    check::DesignCheckOptions options;
    options.requireFoldover = true;
    options.requirePlackettBurman = false;
    EXPECT_FALSE(check::checkDesignMatrix(design, options, sink));
    EXPECT_TRUE(sink.hasRule(rules::kDesignFoldoverOddRuns));
}

TEST(DesignCheck, FactorCountMismatchRejected)
{
    const doe::DesignMatrix design = doe::pbDesign(8); // 7 columns
    check::DiagnosticSink sink;
    check::DesignCheckOptions options;
    options.expectedFactors = 43;
    EXPECT_FALSE(check::checkDesignMatrix(design, options, sink));
    EXPECT_TRUE(sink.hasRule(rules::kDesignFactorCount));
}

TEST(DesignCheck, NonMultipleOfFourRunsRejected)
{
    const doe::DesignMatrix design = doe::DesignMatrix::fromSigns({
        {+1, +1},
        {+1, -1},
        {-1, +1},
        {-1, -1},
        {+1, +1},
        {-1, -1},
    });
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkDesignMatrix(design, {}, sink));
    EXPECT_TRUE(sink.hasRule(rules::kDesignRunsNotMultipleOfFour));
}

TEST(DesignCheck, TooManyFactorsForRunCountRejected)
{
    // 4 runs can screen at most 3 factors; build 4 columns by
    // duplicating — capacity is reported alongside the aliasing.
    const doe::DesignMatrix design = doe::DesignMatrix::fromSigns({
        {+1, +1, +1, +1},
        {+1, -1, +1, -1},
        {-1, +1, -1, +1},
        {-1, -1, -1, -1},
    });
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkDesignMatrix(design, {}, sink));
    EXPECT_TRUE(sink.hasRule(rules::kDesignTooManyFactors));
}

TEST(DesignCheck, AllProblemsReportedNotJustFirst)
{
    // One flipped entry in a folded design breaks the complement,
    // the balance of its column, and orthogonality against others.
    const doe::DesignMatrix broken =
        flipped(doe::foldover(doe::pbDesign(8)), 9, 0);
    check::DiagnosticSink sink;
    check::DesignCheckOptions options;
    options.requireFoldover = true;
    EXPECT_FALSE(check::checkDesignMatrix(broken, options, sink));
    EXPECT_TRUE(sink.hasRule(rules::kDesignFoldoverComplement));
    EXPECT_TRUE(sink.hasRule(rules::kDesignColumnBalance));
    EXPECT_TRUE(sink.hasRule(rules::kDesignOrthogonality));
    EXPECT_GE(sink.errorCount(), 3u);
}
