#include <gtest/gtest.h>

#include "check/csv_lint.hh"
#include "check/rule_ids.hh"
#include "doe/foldover.hh"
#include "doe/pb_design.hh"
#include "methodology/csv_export.hh"
#include "methodology/parameter_space.hh"
#include "methodology/pb_experiment.hh"

namespace check = rigor::check;
namespace doe = rigor::doe;
namespace methodology = rigor::methodology;
namespace rules = rigor::check::rules;

TEST(CsvLint, SplitsQuotedRecords)
{
    const std::vector<std::string> fields =
        check::splitCsvRecord("a,\"b,c\",\"d\"\"e\",f");
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "b,c");
    EXPECT_EQ(fields[2], "d\"e");
    EXPECT_EQ(fields[3], "f");
}

TEST(CsvLint, HeaderlessGridParses)
{
    check::DiagnosticSink sink;
    const check::ParsedCsvDesign parsed = check::parseDesignCsv(
        "1,-1\n-1,1\n", "grid.csv", sink);
    EXPECT_TRUE(sink.passed());
    ASSERT_EQ(parsed.signs.size(), 2u);
    EXPECT_EQ(parsed.signs[0], (std::vector<int>{1, -1}));
    EXPECT_EQ(parsed.firstDataLine, 1u);
    EXPECT_TRUE(parsed.factorNames.empty());
}

TEST(CsvLint, HeaderRunAndCyclesColumnsSkipped)
{
    check::DiagnosticSink sink;
    const check::ParsedCsvDesign parsed = check::parseDesignCsv(
        "run,ROB entries,LSQ ratio,gzip cycles\n"
        "0,1,-1,12345\n"
        "1,-1,1,23456\n",
        "resp.csv", sink);
    EXPECT_TRUE(sink.passed()) << sink.toString();
    ASSERT_EQ(parsed.signs.size(), 2u);
    EXPECT_EQ(parsed.signs[0], (std::vector<int>{1, -1}));
    EXPECT_EQ(parsed.factorNames,
              (std::vector<std::string>{"ROB entries", "LSQ ratio"}));
    EXPECT_EQ(parsed.firstDataLine, 2u);
}

TEST(CsvLint, BadCellReportedWithLine)
{
    check::DiagnosticSink sink;
    check::parseDesignCsv("1,-1\n1,x\n", "bad.csv", sink);
    EXPECT_TRUE(sink.hasRule(rules::kCsvBadCell));
    ASSERT_FALSE(sink.diagnostics().empty());
    EXPECT_EQ(sink.diagnostics().front().context.line, 2u);
}

TEST(CsvLint, RaggedRowRejected)
{
    check::DiagnosticSink sink;
    check::parseDesignCsv("1,-1\n1,-1,1\n", "ragged.csv", sink);
    EXPECT_TRUE(sink.hasRule(rules::kCsvRaggedRow));
}

TEST(CsvLint, EmptyFileRejected)
{
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::lintDesignCsv("", "empty.csv", {}, sink));
    EXPECT_TRUE(sink.hasRule(rules::kCsvNoRows));
}

TEST(CsvLint, ExportedExperimentCsvLintsClean)
{
    // Round-trip: the responses CSV written by csv_export must pass
    // the full design lint, run/cycles columns and all.
    methodology::PbExperimentResult result;
    result.design = doe::foldover(doe::pbDesignForFactors(43));
    result.benchmarks = {"gzip"};
    result.responses = {std::vector<double>(result.design.numRows(),
                                            1000.0)};
    const std::string csv = methodology::responsesToCsv(result);

    check::DiagnosticSink sink;
    check::DesignCheckOptions options;
    options.expectedFactors = 43;
    options.requireFoldover = true;
    EXPECT_TRUE(check::lintDesignCsv(csv, "roundtrip.csv", options,
                                     sink))
        << sink.toString();
}

TEST(CsvLint, CorruptedExportRejected)
{
    const doe::DesignMatrix folded =
        doe::foldover(doe::pbDesignForFactors(43));
    std::string csv = "run";
    for (const std::string &name : methodology::factorNames())
        csv += "," + methodology::csvEscape(name);
    csv += "\n";
    for (std::size_t r = 0; r < folded.numRows(); ++r) {
        csv += std::to_string(r);
        for (std::size_t c = 0; c < folded.numColumns(); ++c) {
            // Corrupt one entry deep in the foldover half.
            const int sign =
                (r == 60 && c == 5) ? -folded.sign(r, c)
                                    : folded.sign(r, c);
            csv += "," + std::to_string(sign);
        }
        csv += "\n";
    }

    check::DiagnosticSink sink;
    check::DesignCheckOptions options;
    options.expectedFactors = 43;
    options.requireFoldover = true;
    EXPECT_FALSE(
        check::lintDesignCsv(csv, "corrupt.csv", options, sink));
    EXPECT_TRUE(sink.hasRule(rules::kDesignFoldoverComplement));
    EXPECT_TRUE(sink.hasRule(rules::kDesignColumnBalance));
}
