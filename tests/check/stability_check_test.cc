#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/diagnostic.hh"
#include "check/rule_ids.hh"
#include "check/stability_check.hh"
#include "stats/bootstrap.hh"

namespace check = rigor::check;
namespace rules = rigor::check::rules;

namespace
{

/** Three well-separated factors: no rule should fire. */
check::RankStabilityFindings
cleanFindings()
{
    check::RankStabilityFindings findings;
    findings.factorNames = {"A", "B", "C"};
    findings.rankLower = {1.0, 2.0, 3.0};
    findings.rankUpper = {1.0, 2.0, 3.0};
    findings.flipProbability = {
        {0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}};
    findings.replicates = 3;
    return findings;
}

} // namespace

TEST(StabilityCheck, DisabledReplicationPlanPasses)
{
    rigor::stats::ReplicationOptions replication;
    check::DiagnosticSink sink;
    check::checkReplicationPlan(replication, sink);
    EXPECT_TRUE(sink.passed());
    EXPECT_TRUE(sink.diagnostics().empty());
}

TEST(StabilityCheck, UnderReplicatedPlanFails)
{
    rigor::stats::ReplicationOptions replication;
    replication.replicates = 2;
    check::DiagnosticSink sink;
    check::checkReplicationPlan(replication, sink);
    EXPECT_FALSE(sink.passed());
    EXPECT_TRUE(sink.hasRule(rules::kCampaignUnderReplicated));
}

TEST(StabilityCheck, FloorReplicatesPass)
{
    rigor::stats::ReplicationOptions replication;
    replication.replicates = 3;
    check::DiagnosticSink sink;
    check::checkReplicationPlan(replication, sink);
    EXPECT_TRUE(sink.passed());
}

TEST(StabilityCheck, MalformedBootstrapFailsPlan)
{
    rigor::stats::ReplicationOptions replication;
    replication.replicates = 3;
    replication.bootstrap.iterations = 0;
    check::DiagnosticSink sink;
    check::checkReplicationPlan(replication, sink);
    EXPECT_FALSE(sink.passed());
    EXPECT_TRUE(sink.hasRule(rules::kCampaignUnderReplicated));
}

TEST(StabilityCheck, CleanFindingsPass)
{
    check::DiagnosticSink sink;
    check::checkRankStability(cleanFindings(), {}, sink);
    EXPECT_TRUE(sink.passed());
    EXPECT_TRUE(sink.diagnostics().empty());
}

TEST(StabilityCheck, AdjacentOverlapWarns)
{
    check::RankStabilityFindings findings = cleanFindings();
    // B's CI [1.5, 2.5] overlaps A's [1, 2].
    findings.rankUpper[0] = 2.0;
    findings.rankLower[1] = 1.5;
    findings.rankUpper[1] = 2.5;
    check::DiagnosticSink sink;
    check::checkRankStability(findings, {}, sink);
    EXPECT_TRUE(sink.hasRule(rules::kStatsRankCiOverlap));
    EXPECT_TRUE(sink.passed()) << "overlap is a warning, not an error";
}

TEST(StabilityCheck, OverlapOutsideTopKIgnored)
{
    check::RankStabilityFindings findings = cleanFindings();
    findings.rankUpper[1] = 3.5;
    findings.rankLower[2] = 2.5;
    check::StabilityCheckOptions options;
    options.topFactors = 2;
    check::DiagnosticSink sink;
    check::checkRankStability(findings, options, sink);
    EXPECT_FALSE(sink.hasRule(rules::kStatsRankCiOverlap));
}

TEST(StabilityCheck, FlipAboveThresholdIsError)
{
    check::RankStabilityFindings findings = cleanFindings();
    findings.flipProbability[0][1] = 0.45;
    findings.flipProbability[1][0] = 0.45;
    check::DiagnosticSink sink;
    check::checkRankStability(findings, {}, sink);
    EXPECT_FALSE(sink.passed());
    EXPECT_TRUE(sink.hasRule(rules::kStatsRankFlipInsideNoise));
}

TEST(StabilityCheck, FlipAtThresholdPasses)
{
    check::RankStabilityFindings findings = cleanFindings();
    findings.flipProbability[0][1] = 0.4;
    findings.flipProbability[1][0] = 0.4;
    check::DiagnosticSink sink;
    check::checkRankStability(findings, {}, sink);
    EXPECT_FALSE(sink.hasRule(rules::kStatsRankFlipInsideNoise));
}

TEST(StabilityCheck, MissingCompositionIsError)
{
    check::RankStabilityFindings findings = cleanFindings();
    findings.sampled = true;
    findings.samplingCiComposed = false;
    check::DiagnosticSink sink;
    check::checkRankStability(findings, {}, sink);
    EXPECT_FALSE(sink.passed());
    EXPECT_TRUE(sink.hasRule(rules::kStatsCiComposeMissing));
}

TEST(StabilityCheck, ComposedSampledCampaignPasses)
{
    check::RankStabilityFindings findings = cleanFindings();
    findings.sampled = true;
    findings.samplingCiComposed = true;
    check::DiagnosticSink sink;
    check::checkRankStability(findings, {}, sink);
    EXPECT_TRUE(sink.passed());
}

namespace
{

/** A minimal structurally valid stability report document. */
std::string
reportJson(const std::string &factors, const std::string &flips,
           unsigned replicates, bool sampled, bool composed)
{
    std::string json = "{\"replicates\": ";
    json += std::to_string(replicates);
    json += ", \"sampled\": ";
    json += sampled ? "true" : "false";
    json += ", \"samplingCiComposed\": ";
    json += composed ? "true" : "false";
    json += ", \"factors\": [";
    json += factors;
    json += "], \"flipProbability\": [";
    json += flips;
    json += "]}";
    return json;
}

const char *const kTwoFactors =
    "{\"name\": \"A\", \"rankLower\": 1, \"rankUpper\": 1},"
    "{\"name\": \"B\", \"rankLower\": 2, \"rankUpper\": 2}";

} // namespace

TEST(StabilityLint, CleanReportPasses)
{
    check::DiagnosticSink sink;
    check::lintStabilityReport(
        reportJson(kTwoFactors, "[0, 0], [0, 0]", 3, false, false),
        "report.json", {}, 3, sink);
    EXPECT_TRUE(sink.passed());
    EXPECT_TRUE(sink.diagnostics().empty());
}

TEST(StabilityLint, UnderReplicatedReportFails)
{
    check::DiagnosticSink sink;
    check::lintStabilityReport(
        reportJson(kTwoFactors, "[0, 0], [0, 0]", 2, false, false),
        "report.json", {}, 3, sink);
    EXPECT_TRUE(sink.hasRule(rules::kCampaignUnderReplicated));
}

TEST(StabilityLint, OverlapInReportWarns)
{
    const char *factors =
        "{\"name\": \"A\", \"rankLower\": 1, \"rankUpper\": 2},"
        "{\"name\": \"B\", \"rankLower\": 1.5, \"rankUpper\": 2.5}";
    check::DiagnosticSink sink;
    check::lintStabilityReport(
        reportJson(factors, "[0, 0.1], [0.1, 0]", 3, false, false),
        "report.json", {}, 3, sink);
    EXPECT_TRUE(sink.hasRule(rules::kStatsRankCiOverlap));
}

TEST(StabilityLint, FlipInReportIsError)
{
    check::DiagnosticSink sink;
    check::lintStabilityReport(
        reportJson(kTwoFactors, "[0, 0.6], [0.6, 0]", 3, false,
                   false),
        "report.json", {}, 3, sink);
    EXPECT_TRUE(sink.hasRule(rules::kStatsRankFlipInsideNoise));
    EXPECT_FALSE(sink.passed());
}

TEST(StabilityLint, UncomposedSampledReportIsError)
{
    check::DiagnosticSink sink;
    check::lintStabilityReport(
        reportJson(kTwoFactors, "[0, 0], [0, 0]", 3, true, false),
        "report.json", {}, 3, sink);
    EXPECT_TRUE(sink.hasRule(rules::kStatsCiComposeMissing));
}

TEST(StabilityLint, MalformedJsonIsSyntaxError)
{
    for (const char *broken :
         {"", "{", "not json", "[1, 2, 3]",
          "{\"replicates\": 3}",
          "{\"replicates\": \"three\", \"sampled\": false, "
          "\"samplingCiComposed\": true, \"factors\": [], "
          "\"flipProbability\": []}"}) {
        check::DiagnosticSink sink;
        check::lintStabilityReport(broken, "report.json", {}, 3,
                                   sink);
        EXPECT_TRUE(sink.hasRule(rules::kStatsReportSyntax))
            << "input: " << broken;
        EXPECT_FALSE(sink.passed());
    }
}

TEST(StabilityLint, RaggedFlipMatrixIsSyntaxError)
{
    check::DiagnosticSink sink;
    check::lintStabilityReport(
        reportJson(kTwoFactors, "[0, 0, 0], [0, 0]", 3, false,
                   false),
        "report.json", {}, 3, sink);
    EXPECT_TRUE(sink.hasRule(rules::kStatsReportSyntax));
}
