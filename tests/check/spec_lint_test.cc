#include <gtest/gtest.h>

#include "check/rule_ids.hh"
#include "check/spec_lint.hh"

namespace check = rigor::check;
namespace rules = rigor::check::rules;

TEST(SpecLint, ParsesKeysCommentsAndOverrides)
{
    check::DiagnosticSink sink;
    const check::ExperimentSpec spec = check::parseExperimentSpec(
        "# a comment\n"
        "workload = gzip\n"
        "workload.fracLoad = 0.3   # trailing comment\n"
        "config.robEntries = 64\n"
        "config.l1d.sizeBytes = 32768\n"
        "config.itlb.entries = 128\n"
        "run.instructions = 50000\n"
        "run.warmup = 1000\n",
        "good.spec", sink);
    EXPECT_TRUE(sink.passed()) << sink.toString();
    EXPECT_TRUE(spec.hasWorkload);
    EXPECT_EQ(spec.workload.name, "gzip");
    EXPECT_DOUBLE_EQ(spec.workload.fracLoad, 0.3);
    EXPECT_EQ(spec.config.robEntries, 64u);
    EXPECT_EQ(spec.config.l1d.sizeBytes, 32768u);
    EXPECT_EQ(spec.config.itlb.entries, 128u);
    EXPECT_EQ(spec.instructions, 50000u);
    EXPECT_EQ(spec.warmup, 1000u);
}

TEST(SpecLint, ValidSpecLintsClean)
{
    check::DiagnosticSink sink;
    EXPECT_TRUE(check::lintExperimentSpec(
        "workload = mcf\nrun.instructions = 200000\n", "ok.spec",
        sink))
        << sink.toString();
}

TEST(SpecLint, UnknownKeyRejectedWithLine)
{
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::lintExperimentSpec(
        "workload = gzip\nnoSuchKnob = 3\n", "bad.spec", sink));
    EXPECT_TRUE(sink.hasRule(rules::kSpecUnknownKey));
    ASSERT_FALSE(sink.diagnostics().empty());
    EXPECT_EQ(sink.diagnostics().front().context.line, 2u);
}

TEST(SpecLint, MalformedLineRejected)
{
    check::DiagnosticSink sink;
    check::parseExperimentSpec("just words\n", "syntax.spec", sink);
    EXPECT_TRUE(sink.hasRule(rules::kSpecSyntax));
}

TEST(SpecLint, BadValueRejected)
{
    check::DiagnosticSink sink;
    check::parseExperimentSpec("config.robEntries = many\n",
                               "value.spec", sink);
    EXPECT_TRUE(sink.hasRule(rules::kSpecBadValue));
}

TEST(SpecLint, UnknownWorkloadRejected)
{
    check::DiagnosticSink sink;
    check::parseExperimentSpec("workload = linpack\n", "wl.spec",
                               sink);
    EXPECT_TRUE(sink.hasRule(rules::kSpecUnknownWorkload));
}

TEST(SpecLint, SemanticViolationsReachConfigAndWorkloadRules)
{
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::lintExperimentSpec(
        "workload = gzip\n"
        "workload.fracLoad = 0.7\n"
        "workload.fracStore = 0.5\n"
        "config.lsqRatio = 1.5\n",
        "semantic.spec", sink));
    EXPECT_TRUE(sink.hasRule(rules::kConfigLsqRatio));
    EXPECT_TRUE(sink.hasRule(rules::kWorkloadMixMass));
}

TEST(SpecLint, ParseErrorsShortCircuitSemanticChecks)
{
    // A spec that fails to parse is reported for its syntax only —
    // semantic rules over half-applied values would be noise.
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::lintExperimentSpec(
        "config.lsqRatio = 1.5\nnot a key value line\n",
        "mixed.spec", sink));
    EXPECT_TRUE(sink.hasRule(rules::kSpecSyntax));
    EXPECT_FALSE(sink.hasRule(rules::kConfigLsqRatio));
}
