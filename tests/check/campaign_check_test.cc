#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/campaign_check.hh"
#include "check/rule_ids.hh"

namespace check = rigor::check;
using check::DegradationMode;
using check::QuarantinedCell;

namespace
{

const std::vector<std::string> kBenchmarks = {"gzip", "mcf", "art"};

QuarantinedCell
cell(const std::string &benchmark, std::size_t row,
     unsigned attempts = 2)
{
    QuarantinedCell c;
    c.benchmark = benchmark;
    c.row = row;
    c.attempts = attempts;
    c.kind = "permanent";
    c.message = "injected fault";
    return c;
}

} // namespace

TEST(CampaignCheck, CleanCampaignPassesSilently)
{
    const check::CampaignAssessment a = check::assessCampaignValidity(
        kBenchmarks, 88, true, {}, DegradationMode::Abort);
    EXPECT_TRUE(a.passed());
    EXPECT_TRUE(a.sink.diagnostics().empty());
    EXPECT_TRUE(a.dropBenchmarks.empty());
}

TEST(CampaignCheck, AbortModeRefusesIncompleteBenchmark)
{
    const check::CampaignAssessment a = check::assessCampaignValidity(
        kBenchmarks, 88, true, {cell("mcf", 17)},
        DegradationMode::Abort);
    EXPECT_FALSE(a.passed());
    EXPECT_TRUE(
        a.sink.hasRule(check::rules::kCampaignCellQuarantined));
    EXPECT_TRUE(
        a.sink.hasRule(check::rules::kCampaignBenchmarkIncomplete));
    EXPECT_TRUE(a.dropBenchmarks.empty());
}

TEST(CampaignCheck, DropModeDropsExactlyTheAffectedBenchmarks)
{
    const check::CampaignAssessment a = check::assessCampaignValidity(
        kBenchmarks, 88, true, {cell("mcf", 17), cell("mcf", 30)},
        DegradationMode::DropBenchmark);
    EXPECT_TRUE(a.passed()) << a.sink.toString();
    EXPECT_TRUE(
        a.sink.hasRule(check::rules::kCampaignBenchmarkDropped));
    ASSERT_EQ(a.dropBenchmarks.size(), 1u);
    EXPECT_EQ(a.dropBenchmarks[0], "mcf");
    // The drop is a warning, never an error: the campaign proceeds
    // loudly, not silently.
    EXPECT_GT(a.sink.warningCount(), 0u);
    EXPECT_EQ(a.sink.errorCount(), 0u);
}

TEST(CampaignCheck, BrokenFoldoverPairIsCalledOut)
{
    // Rows 1 and 45 mirror each other in an 88-row foldover; losing
    // only row 1 breaks the pair.
    const check::CampaignAssessment broken =
        check::assessCampaignValidity(kBenchmarks, 88, true,
                                      {cell("gzip", 1)},
                                      DegradationMode::DropBenchmark);
    EXPECT_TRUE(broken.sink.hasRule(
        check::rules::kCampaignFoldoverPairBroken));

    // Losing both halves of the pair is not *additionally* a broken
    // pair (the whole pair is simply gone).
    const check::CampaignAssessment whole_pair =
        check::assessCampaignValidity(
            kBenchmarks, 88, true,
            {cell("gzip", 1), cell("gzip", 45)},
            DegradationMode::DropBenchmark);
    EXPECT_FALSE(whole_pair.sink.hasRule(
        check::rules::kCampaignFoldoverPairBroken));

    // An unfolded design has no pairs to break.
    const check::CampaignAssessment unfolded =
        check::assessCampaignValidity(kBenchmarks, 44, false,
                                      {cell("gzip", 1)},
                                      DegradationMode::DropBenchmark);
    EXPECT_FALSE(unfolded.sink.hasRule(
        check::rules::kCampaignFoldoverPairBroken));
}

TEST(CampaignCheck, DroppingEveryBenchmarkIsAnError)
{
    const check::CampaignAssessment a = check::assessCampaignValidity(
        kBenchmarks, 88, true,
        {cell("gzip", 0), cell("mcf", 1), cell("art", 2)},
        DegradationMode::DropBenchmark);
    EXPECT_FALSE(a.passed());
    EXPECT_TRUE(
        a.sink.hasRule(check::rules::kCampaignNoCompleteBenchmarks));
}

TEST(CampaignCheck, FactorialDropsWorkloadsWhole)
{
    const check::CampaignAssessment a =
        check::assessFactorialValidity(kBenchmarks, 16,
                                       {cell("art", 5)},
                                       DegradationMode::DropBenchmark);
    EXPECT_TRUE(a.passed());
    ASSERT_EQ(a.dropBenchmarks.size(), 1u);
    EXPECT_EQ(a.dropBenchmarks[0], "art");
    EXPECT_TRUE(
        a.sink.hasRule(check::rules::kCampaignCellQuarantined));

    const check::CampaignAssessment abort_mode =
        check::assessFactorialValidity(kBenchmarks, 16,
                                       {cell("art", 5)},
                                       DegradationMode::Abort);
    EXPECT_FALSE(abort_mode.passed());
}

TEST(CampaignCheck, QuarantineDiagnosticCarriesFailureContext)
{
    const check::CampaignAssessment a = check::assessCampaignValidity(
        kBenchmarks, 88, true, {cell("mcf", 17, 3)},
        DegradationMode::Abort);
    const std::string text = a.sink.toString();
    EXPECT_NE(text.find("benchmark 'mcf', design row 17"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("3 attempts"), std::string::npos) << text;
    EXPECT_NE(text.find("injected fault"), std::string::npos) << text;
    EXPECT_NE(text.find("permanent"), std::string::npos) << text;
}

TEST(CampaignCheck, CampaignErrorRendersTheFullTrail)
{
    check::CampaignAssessment a = check::assessCampaignValidity(
        kBenchmarks, 88, true, {cell("mcf", 17)},
        DegradationMode::Abort);
    const check::CampaignError error("testCampaign",
                                     std::move(a.sink));
    const std::string what = error.what();
    EXPECT_NE(what.find("testCampaign"), std::string::npos);
    EXPECT_NE(what.find("campaign.benchmark-incomplete"),
              std::string::npos)
        << what;
    EXPECT_FALSE(error.diagnostics().empty());
}

TEST(CampaignCheck, DegradationModeNames)
{
    EXPECT_EQ(check::toString(DegradationMode::Abort), "abort");
    EXPECT_EQ(check::toString(DegradationMode::DropBenchmark),
              "drop-benchmark");
}

// ----- The distributed-campaign topology rules -----

TEST(CampaignCheck, RemotePlanDisabledSkipsAllTopologyRules)
{
    check::RemotePlan plan; // disabled: nothing to check
    check::DiagnosticSink sink;
    check::checkRemotePlan(plan, sink);
    EXPECT_TRUE(sink.passed());
    EXPECT_TRUE(sink.diagnostics().empty());
}

TEST(CampaignCheck, RemotePlanRejectsAnEmptyFleet)
{
    check::RemotePlan plan;
    plan.enabled = true;
    plan.workers = 0;
    plan.leaseMs = 10000;
    plan.heartbeatMs = 1000;
    check::DiagnosticSink sink;
    check::checkRemotePlan(plan, sink);
    EXPECT_FALSE(sink.passed());
    EXPECT_TRUE(sink.hasRule(check::rules::kCampaignNoWorkers));
}

TEST(CampaignCheck, RemotePlanRejectsLeaseNotExceedingHeartbeat)
{
    check::RemotePlan plan;
    plan.enabled = true;
    plan.workers = 3;
    plan.leaseMs = 500;
    plan.heartbeatMs = 500; // every worker would lapse between beats
    check::DiagnosticSink sink;
    check::checkRemotePlan(plan, sink);
    EXPECT_FALSE(sink.passed());
    EXPECT_TRUE(sink.hasRule(
        check::rules::kCampaignLeaseShorterThanDeadline));
}

TEST(CampaignCheck, RemotePlanRejectsACoarseHeartbeat)
{
    check::RemotePlan plan;
    plan.enabled = true;
    plan.workers = 3;
    plan.leaseMs = 1000;
    plan.heartbeatMs = 500; // exactly half: one beacon of margin
    check::DiagnosticSink sink;
    check::checkRemotePlan(plan, sink);
    EXPECT_FALSE(sink.passed());
    EXPECT_TRUE(
        sink.hasRule(check::rules::kCampaignHeartbeatTooCoarse));
}

TEST(CampaignCheck, RemotePlanAcceptsAHeartbeatJustUnderHalf)
{
    check::RemotePlan plan;
    plan.enabled = true;
    plan.workers = 3;
    plan.leaseMs = 1001;
    plan.heartbeatMs = 500;
    check::DiagnosticSink sink;
    check::checkRemotePlan(plan, sink);
    EXPECT_TRUE(sink.passed()) << sink.toString();
}

TEST(CampaignCheck, RemotePlanRejectsLeaseWithinTheAttemptDeadline)
{
    check::RemotePlan plan;
    plan.enabled = true;
    plan.workers = 3;
    plan.leaseMs = 2000;
    plan.heartbeatMs = 100;
    plan.hardDeadlineMs = 4000; // attempts may run past the lease
    check::DiagnosticSink sink;
    check::checkRemotePlan(plan, sink);
    EXPECT_FALSE(sink.passed());
    EXPECT_TRUE(sink.hasRule(
        check::rules::kCampaignLeaseShorterThanDeadline));
}

TEST(CampaignCheck, RemotePlanAcceptsASaneTopology)
{
    check::RemotePlan plan;
    plan.enabled = true;
    plan.workers = 3;
    plan.leaseMs = 10000;
    plan.heartbeatMs = 1000;
    plan.attemptDeadlineMs = 2000;
    plan.hardDeadlineMs = 4000;
    check::DiagnosticSink sink;
    check::checkRemotePlan(plan, sink);
    EXPECT_TRUE(sink.passed()) << sink.toString();
}
