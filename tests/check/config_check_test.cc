#include <gtest/gtest.h>

#include "check/config_check.hh"
#include "check/rule_ids.hh"
#include "methodology/parameter_space.hh"
#include "sim/config.hh"

namespace check = rigor::check;
namespace methodology = rigor::methodology;
namespace rules = rigor::check::rules;
namespace sim = rigor::sim;

// ----- checkProcessorConfig -----

TEST(ConfigCheck, DefaultConfigPasses)
{
    check::DiagnosticSink sink;
    EXPECT_TRUE(check::checkProcessorConfig({}, sink));
    EXPECT_EQ(sink.errorCount(), 0u) << sink.toString();
}

TEST(ConfigCheck, LsqRatioAboveOneRejected)
{
    sim::ProcessorConfig config;
    config.lsqRatio = 1.5;
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkProcessorConfig(config, sink));
    EXPECT_TRUE(sink.hasRule(rules::kConfigLsqRatio));
}

TEST(ConfigCheck, LsqRatioZeroRejected)
{
    sim::ProcessorConfig config;
    config.lsqRatio = 0.0;
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkProcessorConfig(config, sink));
    EXPECT_TRUE(sink.hasRule(rules::kConfigLsqRatio));
}

TEST(ConfigCheck, NonPaperMachineWidthRejected)
{
    sim::ProcessorConfig config;
    config.machineWidth = 8;
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkProcessorConfig(config, sink));
    EXPECT_TRUE(sink.hasRule(rules::kConfigMachineWidth));
}

TEST(ConfigCheck, NonPowerOfTwoCacheRejected)
{
    sim::ProcessorConfig config;
    config.l1d.sizeBytes = 3000;
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkProcessorConfig(config, sink));
    EXPECT_TRUE(sink.hasRule(rules::kConfigCacheGeometry));
}

TEST(ConfigCheck, DtlbPageSizeMustMirrorItlb)
{
    sim::ProcessorConfig config;
    config.dtlb.pageBytes = 8192; // I-TLB still at 4096
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkProcessorConfig(config, sink));
    EXPECT_TRUE(sink.hasRule(rules::kConfigDtlbMirror));
}

TEST(ConfigCheck, L2BlockSmallerThanL1Rejected)
{
    sim::ProcessorConfig config;
    config.l2.blockBytes = 16; // L1 blocks are 32 bytes
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkProcessorConfig(config, sink));
    EXPECT_TRUE(sink.hasRule(rules::kConfigL2BlockCoversL1));
}

TEST(ConfigCheck, PipelinedThroughputAboveLatencyRejected)
{
    sim::ProcessorConfig config;
    config.intAluLatency = 1;
    config.intAluThroughput = 3;
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkProcessorConfig(config, sink));
    EXPECT_TRUE(sink.hasRule(rules::kConfigThroughputExceedsLatency));
}

TEST(ConfigCheck, ContextLabelsAppearInDiagnostics)
{
    sim::ProcessorConfig config;
    config.lsqRatio = -1.0;
    check::DiagnosticSink sink;
    check::SourceContext base;
    base.object = "factorial cell 7";
    check::checkProcessorConfig(config, sink, base);
    ASSERT_FALSE(sink.diagnostics().empty());
    EXPECT_NE(sink.diagnostics().front().toString().find(
                  "factorial cell 7"),
              std::string::npos);
}

// ----- checkFactorLevelPair / checkParameterSpace -----

TEST(ConfigCheck, EveryShippedFactorLevelPairPasses)
{
    check::DiagnosticSink sink;
    EXPECT_TRUE(check::checkParameterSpace(sink));
    EXPECT_EQ(sink.errorCount(), 0u) << sink.toString();
}

TEST(ConfigCheck, DummyFactorsAreInert)
{
    check::DiagnosticSink sink;
    EXPECT_TRUE(check::checkFactorLevelPair(
        methodology::Factor::DummyFactor1, sink));
    EXPECT_TRUE(check::checkFactorLevelPair(
        methodology::Factor::DummyFactor2, sink));
    EXPECT_EQ(sink.errorCount(), 0u) << sink.toString();
}

TEST(ConfigCheck, RobFactorLevelsAreOrderedAndValid)
{
    check::DiagnosticSink sink;
    EXPECT_TRUE(check::checkFactorLevelPair(
        methodology::Factor::RobEntries, sink));
    EXPECT_TRUE(check::checkFactorLevelPair(
        methodology::Factor::LsqRatio, sink));
    EXPECT_EQ(sink.errorCount(), 0u) << sink.toString();
}
