/**
 * Three-way rule-registry consistency: the constants in
 * src/check/rule_ids.hh, the in-code registry in
 * src/check/rule_table.cc, and the rule table in EXPERIMENTS.md must
 * name exactly the same set of rule ids. This is the regression net
 * for the documented-rule drift class of bug (a rule id used in code
 * but never declared, or declared but never documented).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "check/rule_table.hh"

#ifndef RIGOR_SOURCE_DIR
#error "RIGOR_SOURCE_DIR must point at the repository root"
#endif

namespace check = rigor::check;

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

bool
looksLikeRuleId(const std::string &token)
{
    // Dotted lowercase id, e.g. "design.empty". Rejects prose and
    // spec keys by requiring exactly one dot and [a-z-] segments.
    const std::size_t dot = token.find('.');
    if (dot == std::string::npos || dot == 0 ||
        dot + 1 >= token.size())
        return false;
    if (token.find('.', dot + 1) != std::string::npos)
        return false;
    return std::all_of(token.begin(), token.end(), [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
               c == '-' || c == '.';
    });
}

/** Every double-quoted dotted id in rule_ids.hh. */
std::set<std::string>
idsFromHeader()
{
    const std::string text = readFile(
        std::string(RIGOR_SOURCE_DIR) + "/src/check/rule_ids.hh");
    std::set<std::string> ids;
    std::size_t pos = 0;
    while ((pos = text.find('"', pos)) != std::string::npos) {
        const std::size_t end = text.find('"', pos + 1);
        if (end == std::string::npos)
            break;
        const std::string token = text.substr(pos + 1, end - pos - 1);
        if (looksLikeRuleId(token))
            ids.insert(token);
        pos = end + 1;
    }
    return ids;
}

/** Every `rule.id` table row in the EXPERIMENTS.md rule table. */
std::set<std::string>
idsFromDocs()
{
    const std::string text =
        readFile(std::string(RIGOR_SOURCE_DIR) + "/EXPERIMENTS.md");
    std::set<std::string> ids;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        // Rule rows look like: | `design.empty` | ... |
        if (line.rfind("| `", 0) != 0)
            continue;
        const std::size_t end = line.find('`', 3);
        if (end == std::string::npos)
            continue;
        const std::string token = line.substr(3, end - 3);
        if (looksLikeRuleId(token))
            ids.insert(token);
    }
    return ids;
}

std::set<std::string>
idsFromTable()
{
    std::set<std::string> ids;
    for (const check::RuleInfo &rule : check::ruleTable())
        ids.insert(rule.id);
    return ids;
}

std::string
joinDifference(const std::set<std::string> &a,
               const std::set<std::string> &b)
{
    std::string out;
    for (const std::string &id : a)
        if (b.count(id) == 0)
            out += id + " ";
    return out;
}

} // namespace

TEST(RuleDocs, TableHasUniqueNonEmptyEntries)
{
    const auto table = check::ruleTable();
    EXPECT_FALSE(table.empty());
    std::set<std::string> seen;
    for (const check::RuleInfo &rule : table) {
        EXPECT_TRUE(looksLikeRuleId(rule.id))
            << "malformed id: " << rule.id;
        EXPECT_TRUE(seen.insert(rule.id).second)
            << "duplicate id: " << rule.id;
        EXPECT_NE(rule.summary, nullptr);
        EXPECT_NE(std::string(rule.summary), "");
    }
}

TEST(RuleDocs, FindRuleResolvesEveryIdAndRejectsUnknown)
{
    for (const check::RuleInfo &rule : check::ruleTable()) {
        const check::RuleInfo *found = check::findRule(rule.id);
        ASSERT_NE(found, nullptr) << rule.id;
        EXPECT_EQ(found->defaultSeverity, rule.defaultSeverity);
    }
    EXPECT_EQ(check::findRule("no.such-rule"), nullptr);
}

TEST(RuleDocs, HeaderAndTableAgree)
{
    const std::set<std::string> header = idsFromHeader();
    const std::set<std::string> table = idsFromTable();
    EXPECT_EQ(header, table)
        << "declared but not registered: "
        << joinDifference(header, table)
        << "| registered but not declared: "
        << joinDifference(table, header);
}

TEST(RuleDocs, DocsAndTableAgree)
{
    const std::set<std::string> docs = idsFromDocs();
    const std::set<std::string> table = idsFromTable();
    EXPECT_EQ(docs, table)
        << "documented but not registered: "
        << joinDifference(docs, table)
        << "| registered but not documented: "
        << joinDifference(table, docs);
}
