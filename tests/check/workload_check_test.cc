#include <gtest/gtest.h>

#include <vector>

#include "check/rule_ids.hh"
#include "check/workload_check.hh"
#include "trace/workloads.hh"

namespace check = rigor::check;
namespace rules = rigor::check::rules;
namespace trace = rigor::trace;

TEST(WorkloadCheck, AllShippedProfilesPass)
{
    check::DiagnosticSink sink;
    EXPECT_TRUE(
        check::checkWorkloads(trace::spec2000Workloads(), sink));
    EXPECT_EQ(sink.errorCount(), 0u) << sink.toString();
}

TEST(WorkloadCheck, MixMassAboveOneRejected)
{
    trace::WorkloadProfile profile = trace::workloadByName("gzip");
    profile.fracLoad = 0.7;
    profile.fracStore = 0.5;
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkWorkloadProfile(profile, sink));
    EXPECT_TRUE(sink.hasRule(rules::kWorkloadMixMass));
}

TEST(WorkloadCheck, FractionOutsideUnitIntervalRejected)
{
    trace::WorkloadProfile profile = trace::workloadByName("gzip");
    profile.fracIntDiv = -0.1;
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkWorkloadProfile(profile, sink));
    EXPECT_TRUE(sink.hasRule(rules::kWorkloadMixMass));
}

TEST(WorkloadCheck, PatternMassAboveOneRejected)
{
    trace::WorkloadProfile profile = trace::workloadByName("mcf");
    profile.fracPointerChase = 0.8;
    profile.fracStrided = 0.5;
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkWorkloadProfile(profile, sink));
    EXPECT_TRUE(sink.hasRule(rules::kWorkloadPatternMass));
}

TEST(WorkloadCheck, FpFlagWithoutFpMassRejected)
{
    trace::WorkloadProfile profile = trace::workloadByName("gzip");
    profile.isFloatingPoint = true;
    profile.fracFpAlu = 0.0;
    profile.fracFpMult = 0.0;
    profile.fracFpDiv = 0.0;
    profile.fracFpSqrt = 0.0;
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkWorkloadProfile(profile, sink));
    EXPECT_TRUE(sink.hasRule(rules::kWorkloadFpMix));
}

TEST(WorkloadCheck, IntegerProfileWithFpMassOnlyWarns)
{
    trace::WorkloadProfile profile = trace::workloadByName("gzip");
    profile.isFloatingPoint = false;
    profile.fracFpAlu = 0.05;
    check::DiagnosticSink sink;
    EXPECT_TRUE(check::checkWorkloadProfile(profile, sink));
    EXPECT_TRUE(sink.hasRule(rules::kWorkloadFpMix));
    EXPECT_EQ(sink.errorCount(), 0u);
    EXPECT_GE(sink.warningCount(), 1u);
}

TEST(WorkloadCheck, DuplicateNamesRejected)
{
    const std::vector<trace::WorkloadProfile> suite = {
        trace::workloadByName("gzip"),
        trace::workloadByName("mcf"),
        trace::workloadByName("gzip"),
    };
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkWorkloads(suite, sink));
    EXPECT_TRUE(sink.hasRule(rules::kWorkloadDuplicateName));
}

TEST(WorkloadCheck, ZeroInstructionWindowRejected)
{
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkRunLengths(
        0, 0, trace::workloadByName("gzip"), sink));
    EXPECT_TRUE(sink.hasRule(rules::kRunNoInstructions));
}

TEST(WorkloadCheck, DominatingWarmupWarns)
{
    check::DiagnosticSink sink;
    EXPECT_TRUE(check::checkRunLengths(
        1000, 100000, trace::workloadByName("gzip"), sink));
    EXPECT_TRUE(sink.hasRule(rules::kRunWarmupDominates));
    EXPECT_EQ(sink.errorCount(), 0u);
}

TEST(WorkloadCheck, WindowShorterThanHotCodeWarns)
{
    trace::WorkloadProfile profile = trace::workloadByName("gzip");
    profile.hotCodeBytes = 1 << 20; // ~262144 hot instructions
    check::DiagnosticSink sink;
    EXPECT_TRUE(check::checkRunLengths(1000, 0, profile, sink));
    EXPECT_TRUE(sink.hasRule(rules::kRunWindowBelowHotCode));
    EXPECT_EQ(sink.errorCount(), 0u);
}

namespace
{

rigor::sample::SamplingOptions
sampledSchedule()
{
    rigor::sample::SamplingOptions sampling;
    sampling.enabled = true;
    sampling.unitInstructions = 250;
    sampling.warmupInstructions = 250;
    sampling.intervalInstructions = 2500;
    return sampling;
}

} // namespace

TEST(SamplingPlanCheck, DisabledSamplingIsAlwaysClean)
{
    rigor::sample::SamplingOptions sampling; // disabled
    sampling.unitInstructions = 0;           // would be invalid
    check::DiagnosticSink sink;
    EXPECT_TRUE(check::checkSamplingPlan(sampling, 100, 0, sink));
    EXPECT_EQ(sink.diagnostics().size(), 0u);
}

TEST(SamplingPlanCheck, MalformedScheduleRejected)
{
    rigor::sample::SamplingOptions sampling = sampledSchedule();
    sampling.intervalInstructions = 400; // detailed phase > period
    check::DiagnosticSink sink;
    EXPECT_FALSE(
        check::checkSamplingPlan(sampling, 200000, 0, sink));
    EXPECT_TRUE(sink.hasRule(rules::kSampleScheduleInvalid));
}

TEST(SamplingPlanCheck, StreamShorterThanOneUnitRejected)
{
    check::DiagnosticSink sink;
    // stream = 300 + 100 < 500 detailed instructions per unit.
    EXPECT_FALSE(
        check::checkSamplingPlan(sampledSchedule(), 300, 100, sink));
    EXPECT_TRUE(sink.hasRule(rules::kSampleNoUnits));
}

TEST(SamplingPlanCheck, FewUnitsWarns)
{
    check::DiagnosticSink sink;
    // 10000 instructions / 2500 interval = 4 units, far below 30.
    EXPECT_TRUE(
        check::checkSamplingPlan(sampledSchedule(), 10000, 0, sink));
    EXPECT_TRUE(sink.hasRule(rules::kSampleFewUnits));
    EXPECT_EQ(sink.errorCount(), 0u);
}

TEST(SamplingPlanCheck, DenseScheduleIsClean)
{
    check::DiagnosticSink sink;
    // 200000 / 2500 = 80 units.
    EXPECT_TRUE(check::checkSamplingPlan(sampledSchedule(), 200000,
                                         0, sink));
    EXPECT_EQ(sink.diagnostics().size(), 0u) << sink.toString();
}
