#include <gtest/gtest.h>

#include <vector>

#include "check/rule_ids.hh"
#include "check/workload_check.hh"
#include "trace/workloads.hh"

namespace check = rigor::check;
namespace rules = rigor::check::rules;
namespace trace = rigor::trace;

TEST(WorkloadCheck, AllShippedProfilesPass)
{
    check::DiagnosticSink sink;
    EXPECT_TRUE(
        check::checkWorkloads(trace::spec2000Workloads(), sink));
    EXPECT_EQ(sink.errorCount(), 0u) << sink.toString();
}

TEST(WorkloadCheck, MixMassAboveOneRejected)
{
    trace::WorkloadProfile profile = trace::workloadByName("gzip");
    profile.fracLoad = 0.7;
    profile.fracStore = 0.5;
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkWorkloadProfile(profile, sink));
    EXPECT_TRUE(sink.hasRule(rules::kWorkloadMixMass));
}

TEST(WorkloadCheck, FractionOutsideUnitIntervalRejected)
{
    trace::WorkloadProfile profile = trace::workloadByName("gzip");
    profile.fracIntDiv = -0.1;
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkWorkloadProfile(profile, sink));
    EXPECT_TRUE(sink.hasRule(rules::kWorkloadMixMass));
}

TEST(WorkloadCheck, PatternMassAboveOneRejected)
{
    trace::WorkloadProfile profile = trace::workloadByName("mcf");
    profile.fracPointerChase = 0.8;
    profile.fracStrided = 0.5;
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkWorkloadProfile(profile, sink));
    EXPECT_TRUE(sink.hasRule(rules::kWorkloadPatternMass));
}

TEST(WorkloadCheck, FpFlagWithoutFpMassRejected)
{
    trace::WorkloadProfile profile = trace::workloadByName("gzip");
    profile.isFloatingPoint = true;
    profile.fracFpAlu = 0.0;
    profile.fracFpMult = 0.0;
    profile.fracFpDiv = 0.0;
    profile.fracFpSqrt = 0.0;
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkWorkloadProfile(profile, sink));
    EXPECT_TRUE(sink.hasRule(rules::kWorkloadFpMix));
}

TEST(WorkloadCheck, IntegerProfileWithFpMassOnlyWarns)
{
    trace::WorkloadProfile profile = trace::workloadByName("gzip");
    profile.isFloatingPoint = false;
    profile.fracFpAlu = 0.05;
    check::DiagnosticSink sink;
    EXPECT_TRUE(check::checkWorkloadProfile(profile, sink));
    EXPECT_TRUE(sink.hasRule(rules::kWorkloadFpMix));
    EXPECT_EQ(sink.errorCount(), 0u);
    EXPECT_GE(sink.warningCount(), 1u);
}

TEST(WorkloadCheck, DuplicateNamesRejected)
{
    const std::vector<trace::WorkloadProfile> suite = {
        trace::workloadByName("gzip"),
        trace::workloadByName("mcf"),
        trace::workloadByName("gzip"),
    };
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkWorkloads(suite, sink));
    EXPECT_TRUE(sink.hasRule(rules::kWorkloadDuplicateName));
}

TEST(WorkloadCheck, ZeroInstructionWindowRejected)
{
    check::DiagnosticSink sink;
    EXPECT_FALSE(check::checkRunLengths(
        0, 0, trace::workloadByName("gzip"), sink));
    EXPECT_TRUE(sink.hasRule(rules::kRunNoInstructions));
}

TEST(WorkloadCheck, DominatingWarmupWarns)
{
    check::DiagnosticSink sink;
    EXPECT_TRUE(check::checkRunLengths(
        1000, 100000, trace::workloadByName("gzip"), sink));
    EXPECT_TRUE(sink.hasRule(rules::kRunWarmupDominates));
    EXPECT_EQ(sink.errorCount(), 0u);
}

TEST(WorkloadCheck, WindowShorterThanHotCodeWarns)
{
    trace::WorkloadProfile profile = trace::workloadByName("gzip");
    profile.hotCodeBytes = 1 << 20; // ~262144 hot instructions
    check::DiagnosticSink sink;
    EXPECT_TRUE(check::checkRunLengths(1000, 0, profile, sink));
    EXPECT_TRUE(sink.hasRule(rules::kRunWindowBelowHotCode));
    EXPECT_EQ(sink.errorCount(), 0u);
}
