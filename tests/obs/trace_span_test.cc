/**
 * @file
 * TraceWriter / TraceSpan: golden-file Chrome trace-event JSON with a
 * pinned clock, RAII span semantics, and null-writer no-ops.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/trace_span.hh"

namespace
{

namespace obs = rigor::obs;

/** Deterministic clock: every call advances by a fixed step. */
obs::TraceWriter::ClockFn
steppingClock(std::uint64_t step)
{
    auto next = std::make_shared<std::uint64_t>(0);
    return [next, step]() -> std::uint64_t {
        const std::uint64_t now = *next;
        *next += step;
        return now;
    };
}

TEST(TraceWriter, RejectsNullClock)
{
    EXPECT_THROW(obs::TraceWriter(obs::TraceWriter::ClockFn{}),
                 std::invalid_argument);
}

TEST(TraceWriter, GoldenCompleteAndCounterEvents)
{
    obs::TraceWriter writer(steppingClock(10));
    writer.addCompleteEvent("screen", "phase", 0, 120, 0,
                            {{"jobs", "88"}});
    writer.addCompleteEvent("run \"gzip\"", "job", 5, 40, 3);
    writer.addCounterEvent("queue_depth", 60, 12.0);

    EXPECT_EQ(writer.eventCount(), 3u);
    const std::string golden =
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
        "{\"name\":\"screen\",\"cat\":\"phase\",\"ph\":\"X\","
        "\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":120,"
        "\"args\":{\"jobs\":\"88\"}},"
        "{\"name\":\"run \\\"gzip\\\"\",\"cat\":\"job\",\"ph\":\"X\","
        "\"pid\":1,\"tid\":3,\"ts\":5,\"dur\":40,\"args\":{}},"
        "{\"name\":\"queue_depth\",\"cat\":\"counter\",\"ph\":\"C\","
        "\"pid\":1,\"tid\":0,\"ts\":60,\"args\":{\"value\":12}}"
        "]}";
    EXPECT_EQ(writer.toJson(), golden);
}

TEST(TraceWriter, EmptyWriterIsStillValidDocument)
{
    obs::TraceWriter writer(steppingClock(1));
    EXPECT_EQ(writer.toJson(),
              "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

TEST(TraceWriter, CounterEventRendersNanAsNull)
{
    obs::TraceWriter writer(steppingClock(1));
    writer.addCounterEvent("busy", 7, std::nan(""));
    EXPECT_NE(writer.toJson().find("\"args\":{\"value\":null}"),
              std::string::npos);
}

TEST(TraceSpan, RecordsLifetimeWithInjectedClock)
{
    obs::TraceWriter writer(steppingClock(100));
    {
        obs::TraceSpan span(&writer, "preflight");
        span.arg("checks", "12");
    } // start=0, end=100 -> dur=100
    ASSERT_EQ(writer.eventCount(), 1u);
    const std::string json = writer.toJson();
    EXPECT_NE(json.find("\"name\":\"preflight\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"phase\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":0,\"dur\":100"), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"checks\":\"12\"}"),
              std::string::npos);
}

TEST(TraceSpan, CloseIsIdempotent)
{
    obs::TraceWriter writer(steppingClock(1));
    obs::TraceSpan span(&writer, "rank");
    span.close();
    span.close(); // second close records nothing
    EXPECT_EQ(writer.eventCount(), 1u);
}

TEST(TraceSpan, NullWriterIsNoOp)
{
    obs::TraceSpan span(nullptr, "ignored");
    span.arg("k", "v");
    span.close(); // must not crash or record anywhere
}

TEST(TraceWriter, WriteToProducesLoadableFile)
{
    obs::TraceWriter writer(steppingClock(10));
    writer.addCompleteEvent("aggregate", "phase", 0, 10, 0);

    const std::string path =
        testing::TempDir() + "trace_span_test_golden.json";
    writer.writeTo(path);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream contents;
    contents << in.rdbuf();
    EXPECT_EQ(contents.str(), writer.toJson() + "\n");
    std::remove(path.c_str());
}

TEST(TraceWriter, WriteToThrowsOnBadPath)
{
    obs::TraceWriter writer(steppingClock(1));
    EXPECT_THROW(writer.writeTo("/nonexistent-dir/trace.json"),
                 std::runtime_error);
}

} // namespace
