/**
 * @file
 * CampaignManifest: golden JSONL record schemas — campaign, cell,
 * phase, and summary lines exactly as downstream tooling parses them.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/manifest.hh"

namespace
{

namespace obs = rigor::obs;

obs::CampaignInfo
sampleCampaign()
{
    obs::CampaignInfo info;
    info.experiment = "pb_screen";
    info.factors = 43;
    info.rows = 88;
    info.foldover = true;
    info.designDigest = "0011223344556677";
    info.workloads = {"gzip", "mcf"};
    info.instructionsPerRun = 200000;
    info.warmupInstructions = 1000;
    return info;
}

TEST(CampaignManifest, GoldenCampaignRecord)
{
    obs::CampaignManifest manifest;
    manifest.beginCampaign(sampleCampaign());
    EXPECT_EQ(manifest.toJsonl(),
              "{\"type\":\"campaign\",\"experiment\":\"pb_screen\","
              "\"factors\":43,\"rows\":88,\"foldover\":true,"
              "\"design_digest\":\"0011223344556677\","
              "\"workloads\":[\"gzip\",\"mcf\"],"
              "\"instructions_per_run\":200000,"
              "\"warmup_instructions\":1000,"
              "\"sampling\":false}\n");
}

TEST(CampaignManifest, GoldenSampledCampaignRecord)
{
    obs::CampaignInfo info = sampleCampaign();
    info.sampling.enabled = true;
    info.sampling.unitInstructions = 250;
    info.sampling.warmupInstructions = 250;
    info.sampling.intervalInstructions = 2500;
    info.sampling.targetRelativeError = 0.05;
    info.sampling.confidence = 0.95;
    obs::CampaignManifest manifest;
    manifest.beginCampaign(info);
    EXPECT_EQ(manifest.toJsonl(),
              "{\"type\":\"campaign\",\"experiment\":\"pb_screen\","
              "\"factors\":43,\"rows\":88,\"foldover\":true,"
              "\"design_digest\":\"0011223344556677\","
              "\"workloads\":[\"gzip\",\"mcf\"],"
              "\"instructions_per_run\":200000,"
              "\"warmup_instructions\":1000,"
              "\"sampling\":true,\"sample_unit\":250,"
              "\"sample_warmup\":250,\"sample_interval\":2500,"
              "\"sample_target_rel_error\":0.05,"
              "\"sample_confidence\":0.95}\n");
}

TEST(CampaignManifest, GoldenSampledCellRecord)
{
    obs::CampaignManifest manifest;
    obs::CellRecord cell;
    cell.benchmark = "gzip";
    cell.row = 7;
    cell.runKey = "deadbeef|200000|0|gzip|s:u250:w250:i2500";
    cell.source = "simulated";
    cell.attempts = 1;
    cell.wallSeconds = 0.25;
    cell.response = 123456;
    cell.sampled = true;
    cell.sampleUnits = 80;
    cell.sampleRelativeError = 0.125;
    cell.sampleCiHalfWidth = 0.25;
    manifest.addCell(cell);
    EXPECT_EQ(manifest.toJsonl(),
              "{\"type\":\"cell\",\"benchmark\":\"gzip\",\"row\":7,"
              "\"key\":\"deadbeef|200000|0|gzip|s:u250:w250:i2500\","
              "\"source\":\"simulated\",\"attempts\":1,"
              "\"wall_seconds\":0.25,\"response\":123456,"
              "\"sampled\":true,\"sample_units\":80,"
              "\"sample_rel_error\":0.125,"
              "\"sample_half_width\":0.25}\n");
}

TEST(CampaignManifest, GoldenCellRecord)
{
    obs::CampaignManifest manifest;
    obs::CellRecord cell;
    cell.benchmark = "gzip";
    cell.row = 7;
    cell.runKey = "deadbeef|200000|0|gzip|";
    cell.source = "simulated";
    cell.attempts = 2;
    cell.wallSeconds = 0.25;
    cell.response = 123456;
    manifest.addCell(cell);
    EXPECT_EQ(manifest.toJsonl(),
              "{\"type\":\"cell\",\"benchmark\":\"gzip\",\"row\":7,"
              "\"key\":\"deadbeef|200000|0|gzip|\","
              "\"source\":\"simulated\",\"attempts\":2,"
              "\"wall_seconds\":0.25,\"response\":123456}\n");
}

TEST(CampaignManifest, FailedCellRendersNanResponseAsNull)
{
    obs::CampaignManifest manifest;
    obs::CellRecord cell;
    cell.benchmark = "mcf";
    cell.source = "failed";
    cell.response = std::nan("");
    manifest.addCell(cell);
    EXPECT_NE(manifest.toJsonl().find("\"response\":null"),
              std::string::npos);
}

TEST(CampaignManifest, GoldenPhaseRecord)
{
    obs::CampaignManifest manifest;
    manifest.addPhase("screen", 1.5);
    EXPECT_EQ(manifest.toJsonl(),
              "{\"type\":\"phase\",\"name\":\"screen\","
              "\"wall_seconds\":1.5}\n");
}

TEST(CampaignManifest, GoldenSummaryRecord)
{
    obs::CampaignManifest manifest;
    obs::SummaryRecord summary;
    summary.runsTotal = 176;
    summary.runsCompleted = 175;
    summary.cacheHits = 88;
    summary.journalHits = 3;
    summary.retries = 2;
    summary.failedJobs = 1;
    summary.simulatedInstructions = 17600000;
    summary.wallSeconds = 12.5;
    summary.droppedBenchmarks = {"mcf"};
    summary.rankTableDigest = "8899aabbccddeeff";
    manifest.addSummary(summary);
    EXPECT_EQ(manifest.toJsonl(),
              "{\"type\":\"summary\",\"runs_total\":176,"
              "\"runs_completed\":175,\"cache_hits\":88,"
              "\"journal_hits\":3,\"retries\":2,\"failed_jobs\":1,"
              "\"simulated_instructions\":17600000,"
              "\"wall_seconds\":12.5,"
              "\"dropped_benchmarks\":[\"mcf\"],"
              "\"rank_table_digest\":\"8899aabbccddeeff\"}\n");
}

TEST(CampaignManifest, RecordsKeepInsertionOrder)
{
    obs::CampaignManifest manifest;
    manifest.beginCampaign(sampleCampaign());
    manifest.addPhase("preflight", 0.1);
    obs::CellRecord cell;
    cell.benchmark = "gzip";
    manifest.addCell(cell);
    manifest.addSummary({});
    EXPECT_EQ(manifest.recordCount(), 4u);

    std::istringstream lines(manifest.toJsonl());
    std::string line;
    std::vector<std::string> types;
    while (std::getline(lines, line))
        types.push_back(line.substr(0, line.find(',')));
    ASSERT_EQ(types.size(), 4u);
    EXPECT_EQ(types[0], "{\"type\":\"campaign\"");
    EXPECT_EQ(types[1], "{\"type\":\"phase\"");
    EXPECT_EQ(types[2], "{\"type\":\"cell\"");
    EXPECT_EQ(types[3], "{\"type\":\"summary\"");
}

TEST(CampaignManifest, ConcurrentCellAppendsAllLand)
{
    obs::CampaignManifest manifest;
    constexpr unsigned kThreads = 8;
    constexpr std::size_t kPerThread = 500;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&manifest, t] {
            for (std::size_t i = 0; i < kPerThread; ++i) {
                obs::CellRecord cell;
                cell.benchmark = "w" + std::to_string(t);
                cell.row = i;
                cell.source = "simulated";
                manifest.addCell(cell);
            }
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(manifest.recordCount(), kThreads * kPerThread);
}

TEST(CampaignManifest, WriteToRoundTrips)
{
    obs::CampaignManifest manifest;
    manifest.beginCampaign(sampleCampaign());
    manifest.addPhase("screen", 2.0);

    const std::string path =
        testing::TempDir() + "manifest_test_golden.jsonl";
    manifest.writeTo(path);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream contents;
    contents << in.rdbuf();
    EXPECT_EQ(contents.str(), manifest.toJsonl());
    std::remove(path.c_str());
}

} // namespace
