/**
 * @file
 * MetricsRegistry: instrument semantics, JSON export, and exactness of
 * the lock-free counters under real engine worker-pool concurrency.
 */

#include <gtest/gtest.h>

#include <array>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/engine.hh"
#include "obs/metrics.hh"
#include "trace/workloads.hh"

namespace
{

namespace exec = rigor::exec;
namespace obs = rigor::obs;
namespace trace = rigor::trace;

TEST(Metrics, CounterAddsAndReads)
{
    obs::MetricsRegistry registry;
    obs::Counter &c = registry.counter("engine.runs.completed");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, InstrumentLookupIsIdempotent)
{
    obs::MetricsRegistry registry;
    obs::Counter &a = registry.counter("x");
    obs::Counter &b = registry.counter("x");
    EXPECT_EQ(&a, &b) << "same name must be the same instrument";

    const std::array<double, 2> bounds = {1.0, 2.0};
    obs::Histogram &h1 = registry.histogram("h", bounds);
    const std::array<double, 3> other = {5.0, 6.0, 7.0};
    obs::Histogram &h2 = registry.histogram("h", other);
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h2.bounds().size(), 2u)
        << "bounds of a re-looked-up histogram are ignored";
}

TEST(Metrics, GaugeHoldsLastValue)
{
    obs::MetricsRegistry registry;
    obs::Gauge &g = registry.gauge("busy");
    g.set(0.25);
    g.set(0.75);
    EXPECT_DOUBLE_EQ(g.value(), 0.75);
}

TEST(Metrics, HistogramBucketsAndMoments)
{
    obs::MetricsRegistry registry;
    const std::array<double, 3> bounds = {1.0, 10.0, 100.0};
    obs::Histogram &h = registry.histogram("wall", bounds);

    h.observe(0.5);   // bucket 0 (<= 1)
    h.observe(1.0);   // bucket 0 (inclusive upper bound)
    h.observe(5.0);   // bucket 1
    h.observe(500.0); // overflow

    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 506.5);
    EXPECT_DOUBLE_EQ(h.mean(), 506.5 / 4.0);
    const std::vector<std::uint64_t> buckets = h.bucketCounts();
    ASSERT_EQ(buckets.size(), 4u); // 3 bounded + overflow
    EXPECT_EQ(buckets[0], 2u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 0u);
    EXPECT_EQ(buckets[3], 1u);
}

TEST(Metrics, HistogramRejectsUnsortedBounds)
{
    obs::MetricsRegistry registry;
    const std::array<double, 2> bad = {10.0, 1.0};
    EXPECT_THROW(registry.histogram("bad", bad),
                 std::invalid_argument);
}

TEST(Metrics, JsonExportContainsEveryInstrument)
{
    obs::MetricsRegistry registry;
    registry.counter("runs").add(3);
    registry.gauge("busy").set(0.5);
    const std::array<double, 1> bounds = {1.0};
    registry.histogram("wall", bounds).observe(0.25);

    const std::string json = registry.toJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"runs\":3"), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"busy\":0.5"), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"count\":1"), std::string::npos);
    EXPECT_NE(json.find("\"buckets\":[1,0]"), std::string::npos);
}

TEST(Metrics, CountersExactUnderManualContention)
{
    obs::MetricsRegistry registry;
    obs::Counter &c = registry.counter("contended");
    obs::Histogram &h = registry.histogram(
        "contended.hist", std::array<double, 2>{10.0, 100.0});

    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&c, &h] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                c.add();
                h.observe(1.0);
            }
        });
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(c.value(), kThreads * kPerThread);
    EXPECT_EQ(h.count(), kThreads * kPerThread);
    EXPECT_DOUBLE_EQ(h.sum(),
                     static_cast<double>(kThreads * kPerThread));
}

/**
 * The acceptance-criterion concurrency test: with a metrics registry
 * attached, the engine's completed-run counter must be EXACTLY the
 * batch size under the full worker pool — no lost increments, and the
 * number must agree with the engine's own progress accounting.
 */
TEST(Metrics, EngineCountersExactUnderFullWorkerPool)
{
    const trace::WorkloadProfile &w =
        trace::workloadByName("gzip");
    constexpr std::size_t kJobs = 256;

    std::vector<exec::SimJob> jobs;
    jobs.reserve(kJobs);
    for (std::size_t i = 0; i < kJobs; ++i) {
        exec::SimJob job;
        job.workload = &w;
        job.instructions = 100 + i; // distinct keys: no cache hits
        job.label = "metrics job " + std::to_string(i);
        jobs.push_back(std::move(job));
    }

    exec::EngineOptions engine_opts;
    engine_opts.threads = 0; // full hardware pool
    engine_opts.simulate = [](const exec::SimJob &job,
                              const exec::AttemptContext &) {
        return static_cast<double>(job.instructions);
    };
    exec::SimulationEngine engine(engine_opts);

    obs::MetricsRegistry registry;
    engine.setMetrics(&registry);
    const std::vector<double> responses = engine.run(jobs);
    ASSERT_EQ(responses.size(), kJobs);

    const exec::ProgressSnapshot progress =
        engine.progress().snapshot();
    EXPECT_EQ(registry.counter("engine.runs.completed").value(),
              kJobs);
    EXPECT_EQ(registry.counter("engine.runs.completed").value(),
              progress.runsCompleted);
    EXPECT_EQ(registry.counter("engine.runs.simulated").value(),
              kJobs);
    EXPECT_EQ(registry.counter("engine.runs.cache_hits").value(), 0u);
    EXPECT_EQ(registry.counter("engine.batches").value(), 1u);
    EXPECT_EQ(
        registry.histogram("engine.run.wall_seconds", {}).count(),
        kJobs);
}

TEST(Metrics, EngineCacheHitsCounted)
{
    const trace::WorkloadProfile &w =
        trace::workloadByName("gzip");
    std::vector<exec::SimJob> jobs;
    for (std::size_t i = 0; i < 4; ++i) {
        exec::SimJob job;
        job.workload = &w;
        job.instructions = 1000;
        job.label = "cached job";
        jobs.push_back(std::move(job));
    }

    exec::EngineOptions engine_opts;
    engine_opts.threads = 2;
    engine_opts.simulate = [](const exec::SimJob &,
                              const exec::AttemptContext &) {
        return 42.0;
    };
    exec::SimulationEngine engine(engine_opts);
    obs::MetricsRegistry registry;
    engine.setMetrics(&registry);

    // Warm the cache with a single job first (identical jobs racing
    // within one batch may each simulate before the first store).
    engine.run(std::span<const exec::SimJob>(jobs.data(), 1));
    engine.run(jobs); // all four served from the cache

    EXPECT_EQ(registry.counter("engine.runs.completed").value(), 5u);
    EXPECT_EQ(registry.counter("engine.runs.simulated").value(), 1u);
    EXPECT_EQ(registry.counter("engine.runs.cache_hits").value(), 4u);
    EXPECT_EQ(registry.counter("engine.batches").value(), 2u);
}

} // namespace
