#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cli_options.hh"

namespace exec = rigor::exec;
namespace tools = rigor::tools;

namespace
{

/** Feed one "--flag value..." spelling through tryParse. */
tools::CampaignCliOptions::Match
parse(tools::CampaignCliOptions &options,
      std::vector<std::string> argv_tail)
{
    std::vector<std::string> storage;
    storage.push_back("test");
    for (std::string &arg : argv_tail)
        storage.push_back(std::move(arg));
    std::vector<char *> argv;
    for (std::string &arg : storage)
        argv.push_back(arg.data());
    tools::ArgCursor args(static_cast<int>(argv.size()), argv.data(),
                          "test");
    const std::string flag = args.take();
    return options.tryParse(args, flag);
}

using Match = tools::CampaignCliOptions::Match;

} // namespace

// ----- Strict numeric parsing -----

TEST(CliParsers, RejectsNegativeNumbers)
{
    // strtoull would silently wrap "-1" to 2^64-1; the strict parsers
    // must refuse a leading sign instead.
    std::uint64_t u64 = 0;
    EXPECT_FALSE(tools::parseUint64("-1", u64));
    unsigned u = 0;
    EXPECT_FALSE(tools::parseUnsigned("-5", u));
    std::size_t size = 0;
    EXPECT_FALSE(tools::parseSize("-1", size));
    EXPECT_TRUE(tools::parseUint64("42", u64));
    EXPECT_EQ(u64, 42u);
}

TEST(CliParsers, RejectsTrailingGarbageAndEmpty)
{
    std::uint64_t u64 = 0;
    EXPECT_FALSE(tools::parseUint64("12x", u64));
    EXPECT_FALSE(tools::parseUint64("", u64));
    EXPECT_FALSE(tools::parseUint64("+3", u64));
}

// ----- Resource-cap flags -----

TEST(CampaignCliOptions, RejectsZeroMemLimit)
{
    tools::CampaignCliOptions options;
    EXPECT_EQ(parse(options, {"--mem-limit-mb", "0"}), Match::Error);
    EXPECT_EQ(parse(options, {"--mem-limit-mb=0"}), Match::Error);
}

TEST(CampaignCliOptions, RejectsNegativeMemLimit)
{
    tools::CampaignCliOptions options;
    EXPECT_EQ(parse(options, {"--mem-limit-mb", "-1"}), Match::Error);
}

TEST(CampaignCliOptions, RejectsZeroOrNegativeHardDeadline)
{
    tools::CampaignCliOptions options;
    EXPECT_EQ(parse(options, {"--hard-deadline-ms", "0"}),
              Match::Error);
    EXPECT_EQ(parse(options, {"--hard-deadline-ms", "-100"}),
              Match::Error);
}

TEST(CampaignCliOptions, AcceptsPositiveCaps)
{
    tools::CampaignCliOptions options;
    EXPECT_EQ(parse(options, {"--mem-limit-mb", "128"}),
              Match::Consumed);
    EXPECT_EQ(options.memLimitMb, 128u);
    EXPECT_EQ(parse(options, {"--hard-deadline-ms=1000"}),
              Match::Consumed);
    EXPECT_EQ(options.hardDeadlineMs, 1000u);
}

// ----- Sampling flags -----

TEST(CampaignCliOptions, ParsesSamplingFlags)
{
    tools::CampaignCliOptions options;
    EXPECT_EQ(parse(options, {"--sample"}), Match::Consumed);
    EXPECT_EQ(parse(options, {"--sample-unit", "500"}),
              Match::Consumed);
    EXPECT_EQ(parse(options, {"--sample-warmup=1500"}),
              Match::Consumed);
    EXPECT_EQ(parse(options, {"--sample-interval", "8000"}),
              Match::Consumed);
    EXPECT_EQ(parse(options, {"--sample-rel-error", "0.1"}),
              Match::Consumed);
    EXPECT_EQ(parse(options, {"--sample-confidence", "0.99"}),
              Match::Consumed);

    exec::CampaignOptions campaign;
    options.apply(campaign);
    EXPECT_TRUE(campaign.sampling.enabled);
    EXPECT_EQ(campaign.sampling.unitInstructions, 500u);
    EXPECT_EQ(campaign.sampling.warmupInstructions, 1500u);
    EXPECT_EQ(campaign.sampling.intervalInstructions, 8000u);
    EXPECT_DOUBLE_EQ(campaign.sampling.targetRelativeError, 0.1);
    EXPECT_DOUBLE_EQ(campaign.sampling.confidence, 0.99);
}

TEST(CampaignCliOptions, SamplingDisabledByDefault)
{
    const tools::CampaignCliOptions options;
    exec::CampaignOptions campaign;
    options.apply(campaign);
    EXPECT_FALSE(campaign.sampling.enabled);
}

TEST(CampaignCliOptions, RejectsDegenerateSamplingValues)
{
    tools::CampaignCliOptions options;
    EXPECT_EQ(parse(options, {"--sample-unit", "0"}), Match::Error);
    EXPECT_EQ(parse(options, {"--sample-interval=0"}), Match::Error);
    EXPECT_EQ(parse(options, {"--sample-rel-error", "0"}),
              Match::Error);
    EXPECT_EQ(parse(options, {"--sample-rel-error", "1.5"}),
              Match::Error);
    EXPECT_EQ(parse(options, {"--sample-confidence", "0"}),
              Match::Error);
    EXPECT_EQ(parse(options, {"--sample=on"}), Match::Error);
}

TEST(CampaignCliOptions, UnknownFlagIsNotMine)
{
    tools::CampaignCliOptions options;
    EXPECT_EQ(parse(options, {"--frobnicate"}), Match::NotMine);
}

// ----- Replication / bootstrap flags -----

TEST(CampaignCliOptions, ParsesReplicationFlags)
{
    tools::CampaignCliOptions options;
    EXPECT_EQ(parse(options, {"--replicates", "5"}),
              Match::Consumed);
    EXPECT_EQ(parse(options, {"--bootstrap-iters=800"}),
              Match::Consumed);
    EXPECT_EQ(parse(options, {"--bootstrap-seed", "12345"}),
              Match::Consumed);
    EXPECT_EQ(parse(options, {"--stability-out", "report.json"}),
              Match::Consumed);
    EXPECT_EQ(options.stabilityOut, "report.json");

    exec::CampaignOptions campaign;
    options.apply(campaign);
    EXPECT_EQ(campaign.replication.replicates, 5u);
    EXPECT_EQ(campaign.replication.bootstrap.iterations, 800u);
    EXPECT_EQ(campaign.replication.bootstrap.seed, 12345u);
}

TEST(CampaignCliOptions, ReplicationDisabledByDefault)
{
    const tools::CampaignCliOptions options;
    exec::CampaignOptions campaign;
    options.apply(campaign);
    EXPECT_FALSE(campaign.replication.enabled());
}

TEST(CampaignCliOptions, RejectsDegenerateReplicationValues)
{
    tools::CampaignCliOptions options;
    EXPECT_EQ(parse(options, {"--replicates", "-2"}), Match::Error);
    EXPECT_EQ(parse(options, {"--bootstrap-iters", "0"}),
              Match::Error);
    EXPECT_EQ(parse(options, {"--bootstrap-seed", "nope"}),
              Match::Error);
}
