#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/fault_injection.hh"
#include "exec/fault_policy.hh"
#include "exec/net/auth.hh"
#include "exec/net/controller.hh"
#include "exec/net/remote_worker.hh"
#include "exec/net/socket.hh"
#include "exec/net/wire.hh"
#include "exec/proc/protocol.hh"
#include "trace/workloads.hh"

namespace net = rigor::exec::net;
namespace proc = rigor::exec::proc;
using rigor::exec::AttemptContext;
using rigor::exec::SimJob;
using rigor::exec::TransientFault;

namespace
{

/** Deterministic stand-in for the simulator. */
double
stubResponse(const SimJob &, const AttemptContext &ctx)
{
    return 1000.0 + static_cast<double>(ctx.jobIndex);
}

bool
waitUntil(const std::function<bool()> &pred,
          std::chrono::milliseconds timeout =
              std::chrono::milliseconds(10000))
{
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

/** Thread-safe lease event log. */
class EventLog
{
  public:
    net::LeaseObserver observer()
    {
        return [this](const net::LeaseEvent &event) {
            const std::lock_guard<std::mutex> lock(_mutex);
            _events.push_back(event);
        };
    }

    std::vector<net::LeaseEvent> snapshot() const
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        return _events;
    }

    bool sawKind(net::LeaseEvent::Kind kind) const
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        for (const net::LeaseEvent &event : _events)
            if (event.kind == kind)
                return true;
        return false;
    }

  private:
    mutable std::mutex _mutex;
    std::vector<net::LeaseEvent> _events;
};

/**
 * A scripted worker speaking the raw wire protocol, for driving the
 * controller into exact fault scenarios (silence, abrupt close, late
 * results) that a well-behaved runRemoteWorker never produces.
 */
class FakeWorker
{
  public:
    explicit FakeWorker(std::uint16_t port)
        : _fd(net::connectTcp("127.0.0.1", port))
    {
    }

    /** Answers the controller's HMAC challenge when non-empty. */
    std::string token;
    /** Lease ids declared in the next Hello (session resume). */
    std::vector<std::uint64_t> heldLeases;
    /** Verdict of the last handshake that got past HelloAck. */
    net::SessionAck session;

    /**
     * Full v2 handshake: Hello -> HelloAck -> [AuthProof] ->
     * SessionAck. The returned HelloAck's accepted/reason reflect
     * the final verdict so callers can assert on one object.
     */
    net::HelloAck handshake(const std::string &name,
                            std::uint16_t slots = 1,
                            std::uint32_t magic = net::kWireMagic,
                            std::uint16_t version = net::kWireVersion,
                            std::string sessionId = "")
    {
        if (sessionId.empty())
            sessionId = name + "/session";
        net::Hello hello;
        hello.magic = magic;
        hello.version = version;
        hello.slots = slots;
        hello.name = name;
        hello.sessionId = sessionId;
        hello.heldLeases = heldLeases;
        proc::Writer body;
        hello.serialize(body);
        net::sendMessage(_fd.get(), net::MsgType::Hello,
                         body.bytes());
        std::vector<std::byte> payload;
        EXPECT_TRUE(net::recvMessage(_fd.get(), payload));
        proc::Reader in(payload);
        EXPECT_EQ(net::readType(in), net::MsgType::HelloAck);
        net::HelloAck ack = net::HelloAck::deserialize(in);
        if (!ack.accepted)
            return ack;
        if (ack.authRequired) {
            net::AuthProofMsg proof;
            proof.proof = net::authProof(token, ack.challenge,
                                         sessionId, name);
            proc::Writer proof_body;
            proof.serialize(proof_body);
            net::sendMessage(_fd.get(), net::MsgType::AuthProof,
                             proof_body.bytes());
        }
        std::vector<std::byte> verdict_payload;
        if (!net::recvMessage(_fd.get(), verdict_payload)) {
            ack.accepted = false;
            ack.reason = "connection closed before session ack";
            return ack;
        }
        proc::Reader verdict_in(verdict_payload);
        EXPECT_EQ(net::readType(verdict_in),
                  net::MsgType::SessionAck);
        session = net::SessionAck::deserialize(verdict_in);
        ack.accepted = session.accepted;
        if (!session.accepted)
            ack.reason = session.reason;
        return ack;
    }

    /** Block until the controller assigns a job. */
    bool readAssign(std::uint64_t &leaseId, proc::JobRequest &request)
    {
        std::vector<std::byte> payload;
        if (!net::recvMessage(_fd.get(), payload))
            return false;
        proc::Reader in(payload);
        if (net::readType(in) != net::MsgType::JobAssign)
            return false;
        leaseId = in.pod<std::uint64_t>();
        request = proc::JobRequest::deserialize(in);
        return true;
    }

    void sendDone(std::uint64_t leaseId, double cycles)
    {
        proc::JobResult result;
        result.status = proc::ResultStatus::Ok;
        result.cycles = cycles;
        proc::Writer body;
        body.pod(leaseId);
        result.serialize(body);
        net::sendMessage(_fd.get(), net::MsgType::JobDone,
                         body.bytes());
    }

    void heartbeat()
    {
        net::sendMessage(_fd.get(), net::MsgType::Heartbeat);
    }

    void disconnect() { _fd.reset(); }

  private:
    net::OwnedFd _fd;
};

SimJob
makeJob(const rigor::trace::WorkloadProfile &profile,
        const std::string &label)
{
    SimJob job;
    job.workload = &profile;
    job.instructions = 1000;
    job.label = label;
    return job;
}

/** Launch execute() off-thread (it blocks until a worker answers). */
std::future<double>
executeAsync(net::CampaignController &controller, const SimJob &job,
             std::size_t jobIndex)
{
    return std::async(std::launch::async, [&controller, &job,
                                           jobIndex] {
        AttemptContext ctx;
        ctx.jobIndex = jobIndex;
        return controller.execute(job, ctx);
    });
}

} // namespace

TEST(NetController, HandshakeRejectsBadMagicAndEmptyName)
{
    net::CampaignController controller;
    ASSERT_NE(controller.port(), 0u);

    FakeWorker wrong_magic(controller.port());
    const net::HelloAck magic_ack =
        wrong_magic.handshake("w", 1, 0xdeadbeef);
    EXPECT_FALSE(magic_ack.accepted);
    EXPECT_NE(magic_ack.reason.find("magic"), std::string::npos);

    FakeWorker nameless(controller.port());
    const net::HelloAck name_ack = nameless.handshake("");
    EXPECT_FALSE(name_ack.accepted);
    EXPECT_NE(name_ack.reason.find("name"), std::string::npos);

    FakeWorker future_version(controller.port());
    const net::HelloAck version_ack = future_version.handshake(
        "w", 1, net::kWireMagic, net::kWireVersion + 1);
    EXPECT_FALSE(version_ack.accepted);
    EXPECT_NE(version_ack.reason.find("version"), std::string::npos);

    EXPECT_EQ(controller.connectedWorkers(), 0u);
}

TEST(NetController, WaitForWorkersTimesOutWithoutAFleet)
{
    net::CampaignController controller;
    EXPECT_FALSE(controller.waitForWorkers(
        1, std::chrono::milliseconds(50)));
}

TEST(NetController, ExecutesJobsAcrossARealWorkerFleet)
{
    auto controller = std::make_unique<net::CampaignController>();
    const std::uint16_t port = controller->port();

    auto serve = [port](const std::string &name) {
        net::RemoteWorkerOptions opts;
        opts.port = port;
        opts.name = name;
        opts.simulate = stubResponse;
        const net::RemoteWorkerSession session =
            net::runRemoteWorker(opts);
        EXPECT_EQ(session.end, net::SessionEnd::Shutdown);
    };
    std::thread w1(serve, "w1");
    std::thread w2(serve, "w2");
    ASSERT_TRUE(controller->waitForWorkers(
        2, std::chrono::milliseconds(10000)));

    const rigor::trace::WorkloadProfile profile;
    const SimJob job = makeJob(profile, "fleet cell");
    std::vector<std::future<double>> results;
    for (std::size_t i = 0; i < 8; ++i)
        results.push_back(executeAsync(*controller, job, i));
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].get(), 1000.0 + static_cast<double>(i));

    // Provenance side channel: the serving worker's name comes back.
    AttemptContext ctx;
    ctx.jobIndex = 99;
    std::string host;
    ctx.hostOut = &host;
    EXPECT_EQ(controller->execute(job, ctx), 1099.0);
    EXPECT_TRUE(host == "w1" || host == "w2") << host;

    EXPECT_EQ(controller->leasesGranted(), 9u);
    EXPECT_EQ(controller->leasesReclaimed(), 0u);

    controller.reset(); // sends Shutdown to the fleet
    w1.join();
    w2.join();
}

TEST(NetController, SilentWorkerLapsesAndCellMigratesThenLateResultIsDropped)
{
    net::ControllerOptions options;
    options.lease = std::chrono::milliseconds(300);
    options.heartbeat = std::chrono::milliseconds(50);
    EventLog events;
    auto controller =
        std::make_unique<net::CampaignController>(options);
    controller->setLeaseObserver(events.observer());

    // The silent worker handshakes and takes the cell, then never
    // heartbeats: its lease must lapse and the cell must requeue.
    FakeWorker silent(controller->port());
    ASSERT_TRUE(silent.handshake("silent").accepted);

    const rigor::trace::WorkloadProfile profile;
    const SimJob job = makeJob(profile, "migrating cell");
    std::future<double> result = executeAsync(*controller, job, 3);

    std::uint64_t stale_lease = 0;
    proc::JobRequest assigned;
    ASSERT_TRUE(silent.readAssign(stale_lease, assigned));
    EXPECT_EQ(assigned.label, "migrating cell");

    // A healthy worker joins; once the lease lapses, the cell lands
    // on it — the engine's attempt never notices the migration.
    std::thread healthy([port = controller->port()] {
        net::RemoteWorkerOptions opts;
        opts.port = port;
        opts.name = "healthy";
        opts.simulate = stubResponse;
        (void)net::runRemoteWorker(opts);
    });

    EXPECT_EQ(result.get(), 1003.0);
    EXPECT_GE(controller->leasesReclaimed(), 1u);
    EXPECT_TRUE(events.sawKind(net::LeaseEvent::Kind::WorkerLapsed));
    EXPECT_TRUE(
        events.sawKind(net::LeaseEvent::Kind::LeaseReclaimed));
    bool reclaim_names_cell = false;
    for (const net::LeaseEvent &event : events.snapshot())
        if (event.kind == net::LeaseEvent::Kind::LeaseReclaimed &&
            event.label == "migrating cell" && event.requeues == 1)
            reclaim_names_cell = true;
    EXPECT_TRUE(reclaim_names_cell);

    // The stalled worker wakes up and answers on its reclaimed
    // lease: the result must be rejected, not double-recorded.
    silent.sendDone(stale_lease, 7777.0);
    EXPECT_TRUE(waitUntil(
        [&] { return controller->lateResults() == 1; }));
    EXPECT_TRUE(events.sawKind(net::LeaseEvent::Kind::LateResult));

    controller.reset();
    healthy.join();
}

TEST(NetController, BrokenConnectionReclaimsLeaseAndMigrates)
{
    EventLog events;
    auto controller = std::make_unique<net::CampaignController>();
    controller->setLeaseObserver(events.observer());

    FakeWorker flaky(controller->port());
    ASSERT_TRUE(flaky.handshake("flaky").accepted);

    const rigor::trace::WorkloadProfile profile;
    const SimJob job = makeJob(profile, "orphaned cell");
    std::future<double> result = executeAsync(*controller, job, 5);

    std::uint64_t lease = 0;
    proc::JobRequest assigned;
    ASSERT_TRUE(flaky.readAssign(lease, assigned));
    flaky.disconnect(); // mid-lease: controller must requeue

    std::thread rescuer([port = controller->port()] {
        net::RemoteWorkerOptions opts;
        opts.port = port;
        opts.name = "rescuer";
        opts.simulate = stubResponse;
        (void)net::runRemoteWorker(opts);
    });

    EXPECT_EQ(result.get(), 1005.0);
    EXPECT_EQ(controller->leasesReclaimed(), 1u);
    EXPECT_TRUE(events.sawKind(net::LeaseEvent::Kind::WorkerLost));
    EXPECT_TRUE(
        events.sawKind(net::LeaseEvent::Kind::LeaseReclaimed));

    controller.reset();
    rescuer.join();
}

TEST(NetController, MigrationCapEscalatesThroughTheFaultTaxonomy)
{
    net::ControllerOptions options;
    options.maxMigrations = 0; // first lost lease escalates
    net::CampaignController controller(options);

    FakeWorker doomed(controller.port());
    ASSERT_TRUE(doomed.handshake("doomed").accepted);

    const rigor::trace::WorkloadProfile profile;
    const SimJob job = makeJob(profile, "hot-potato cell");
    std::future<double> result = executeAsync(controller, job, 0);

    std::uint64_t lease = 0;
    proc::JobRequest assigned;
    ASSERT_TRUE(doomed.readAssign(lease, assigned));
    doomed.disconnect();

    // The reclaim exhausts the migration budget, so the attempt
    // fails with the retryable taxonomy fault — FaultPolicy retry,
    // backoff, and quarantine upstream see a normal transient.
    try {
        result.get();
        FAIL() << "exhausted migrations must throw TransientFault";
    } catch (const TransientFault &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("hot-potato cell"), std::string::npos)
            << what;
        EXPECT_NE(what.find("lost its lease"), std::string::npos)
            << what;
    }
    EXPECT_EQ(controller.leasesReclaimed(), 1u);
}

TEST(NetController, HeartbeatsKeepASlowWorkerLeased)
{
    // The lease clock measures silence, not runtime: a worker that
    // holds one cell longer than the lease duration but keeps
    // heartbeating is never reclaimed.
    net::ControllerOptions options;
    options.lease = std::chrono::milliseconds(200);
    options.heartbeat = std::chrono::milliseconds(40);
    net::CampaignController controller(options);

    FakeWorker slow(controller.port());
    ASSERT_TRUE(slow.handshake("slow").accepted);

    const rigor::trace::WorkloadProfile profile;
    const SimJob job = makeJob(profile, "slow cell");
    std::future<double> result = executeAsync(controller, job, 2);

    std::uint64_t lease = 0;
    proc::JobRequest assigned;
    ASSERT_TRUE(slow.readAssign(lease, assigned));
    const auto hold_until = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(600);
    while (std::chrono::steady_clock::now() < hold_until) {
        slow.heartbeat();
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
    slow.sendDone(lease, 4242.0);

    EXPECT_EQ(result.get(), 4242.0);
    EXPECT_EQ(controller.leasesReclaimed(), 0u);
    EXPECT_EQ(controller.lateResults(), 0u);
}

// ----- Injected network drills through a real worker -----

namespace
{

/** A worker whose executor raises the given net drill on attempt 1
 *  of every job whose label contains @p substring. */
struct DrilledWorker
{
    rigor::exec::FaultInjector injector;
    std::thread thread;
    net::RemoteWorkerSession session;

    void start(std::uint16_t port, const std::string &name,
               const std::string &substring,
               rigor::exec::FaultKind kind)
    {
        injector.addLabelFault(substring, 1, kind);
        thread = std::thread([this, port, name] {
            net::RemoteWorkerOptions opts;
            opts.port = port;
            opts.name = name;
            opts.simulate = injector.wrap(stubResponse);
            session = net::runRemoteWorker(opts);
        });
    }
};

} // namespace

TEST(NetControllerDrill, DropConnectionDrillMigratesTheCell)
{
    EventLog events;
    auto controller = std::make_unique<net::CampaignController>();
    controller->setLeaseObserver(events.observer());

    DrilledWorker dropper;
    dropper.start(controller->port(), "dropper", "drilled",
                  rigor::exec::FaultKind::DropConnection);
    ASSERT_TRUE(controller->waitForWorkers(
        1, std::chrono::milliseconds(10000)));

    const rigor::trace::WorkloadProfile profile;
    const SimJob job = makeJob(profile, "drilled cell");
    std::future<double> result = executeAsync(*controller, job, 4);
    ASSERT_TRUE(
        waitUntil([&] { return controller->leasesGranted() >= 1; }));

    std::thread survivor([port = controller->port()] {
        net::RemoteWorkerOptions opts;
        opts.port = port;
        opts.name = "survivor";
        opts.simulate = stubResponse;
        (void)net::runRemoteWorker(opts);
    });

    EXPECT_EQ(result.get(), 1004.0);
    EXPECT_EQ(dropper.injector.netDrillsRaised(), 1u);
    EXPECT_GE(controller->leasesReclaimed(), 1u);
    EXPECT_TRUE(events.sawKind(net::LeaseEvent::Kind::WorkerLost));
    EXPECT_TRUE(
        events.sawKind(net::LeaseEvent::Kind::LeaseReclaimed));
    dropper.thread.join();
    EXPECT_EQ(dropper.session.end, net::SessionEnd::ConnectionLost);

    controller.reset();
    survivor.join();
}

TEST(NetControllerDrill, StallHeartbeatDrillDrawsALateResultRejection)
{
    net::ControllerOptions options;
    options.lease = std::chrono::milliseconds(300);
    options.heartbeat = std::chrono::milliseconds(50);
    EventLog events;
    auto controller =
        std::make_unique<net::CampaignController>(options);
    controller->setLeaseObserver(events.observer());

    DrilledWorker staller;
    staller.start(controller->port(), "staller", "stalled",
                  rigor::exec::FaultKind::StallHeartbeat);
    ASSERT_TRUE(controller->waitForWorkers(
        1, std::chrono::milliseconds(10000)));

    const rigor::trace::WorkloadProfile profile;
    const SimJob job = makeJob(profile, "stalled cell");
    std::future<double> result = executeAsync(*controller, job, 6);
    ASSERT_TRUE(
        waitUntil([&] { return controller->leasesGranted() >= 1; }));

    std::thread healthy([port = controller->port()] {
        net::RemoteWorkerOptions opts;
        opts.port = port;
        opts.name = "healthy";
        opts.simulate = stubResponse;
        (void)net::runRemoteWorker(opts);
    });

    // The healthy worker serves the reclaimed cell; the staller's
    // answer on the stale lease is rejected when it finally arrives.
    EXPECT_EQ(result.get(), 1006.0);
    EXPECT_TRUE(waitUntil(
        [&] { return controller->lateResults() == 1; }));
    EXPECT_EQ(staller.injector.netDrillsRaised(), 1u);
    EXPECT_TRUE(events.sawKind(net::LeaseEvent::Kind::WorkerLapsed));
    EXPECT_TRUE(events.sawKind(net::LeaseEvent::Kind::LateResult));

    controller.reset();
    healthy.join();
    staller.thread.join();
    EXPECT_EQ(staller.session.end, net::SessionEnd::Shutdown);
}

TEST(NetControllerDrill, CorruptFrameDrillIsClassifiedAsTruncated)
{
    EventLog events;
    auto controller = std::make_unique<net::CampaignController>();
    controller->setLeaseObserver(events.observer());

    DrilledWorker corrupter;
    corrupter.start(controller->port(), "corrupter", "torn",
                    rigor::exec::FaultKind::CorruptFrame);
    ASSERT_TRUE(controller->waitForWorkers(
        1, std::chrono::milliseconds(10000)));

    const rigor::trace::WorkloadProfile profile;
    const SimJob job = makeJob(profile, "torn cell");
    std::future<double> result = executeAsync(*controller, job, 8);
    ASSERT_TRUE(
        waitUntil([&] { return controller->leasesGranted() >= 1; }));

    std::thread survivor([port = controller->port()] {
        net::RemoteWorkerOptions opts;
        opts.port = port;
        opts.name = "survivor";
        opts.simulate = stubResponse;
        (void)net::runRemoteWorker(opts);
    });

    EXPECT_EQ(result.get(), 1008.0);
    // The bounds-checked reader names the torn frame's byte counts
    // in the worker-lost cause.
    bool truncated_named = false;
    for (const net::LeaseEvent &event : events.snapshot())
        if (event.kind == net::LeaseEvent::Kind::WorkerLost &&
            event.worker == "corrupter" &&
            event.detail.find("truncated") != std::string::npos)
            truncated_named = true;
    EXPECT_TRUE(truncated_named);
    corrupter.thread.join();

    controller.reset();
    survivor.join();
}
