/**
 * Fleet hardening under unreliable networks: session parking and
 * lease handback across reconnects, grace-window expiry falling back
 * to reclaim, split-brain (duplicate session id) rejection, the
 * HMAC challenge-response handshake (accept, wrong token, replay),
 * a malformed-handshake fuzz table (truncated, oversized, bad tag,
 * wrong first message, instant EOF — none may wedge the controller
 * or leak a lease), controller drain, worker drain, and the
 * close-on-exec guarantee on every socket the net layer opens.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/fault_policy.hh"
#include "exec/net/auth.hh"
#include "exec/net/controller.hh"
#include "exec/net/remote_worker.hh"
#include "exec/net/socket.hh"
#include "exec/net/wire.hh"
#include "exec/proc/protocol.hh"
#include "trace/workloads.hh"

namespace net = rigor::exec::net;
namespace proc = rigor::exec::proc;
using rigor::exec::AttemptContext;
using rigor::exec::SimJob;
using rigor::exec::TransientFault;

namespace
{

double
stubResponse(const SimJob &, const AttemptContext &ctx)
{
    return 1000.0 + static_cast<double>(ctx.jobIndex);
}

bool
waitUntil(const std::function<bool()> &pred,
          std::chrono::milliseconds timeout =
              std::chrono::milliseconds(10000))
{
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

/** Thread-safe lease event log. */
class EventLog
{
  public:
    net::LeaseObserver observer()
    {
        return [this](const net::LeaseEvent &event) {
            const std::lock_guard<std::mutex> lock(_mutex);
            _events.push_back(event);
        };
    }

    std::vector<net::LeaseEvent> snapshot() const
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        return _events;
    }

    bool sawKind(net::LeaseEvent::Kind kind) const
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        for (const net::LeaseEvent &event : _events)
            if (event.kind == kind)
                return true;
        return false;
    }

  private:
    mutable std::mutex _mutex;
    std::vector<net::LeaseEvent> _events;
};

/** Scripted worker speaking the raw v2 wire protocol. */
class FakeWorker
{
  public:
    explicit FakeWorker(std::uint16_t port)
        : _fd(net::connectTcp("127.0.0.1", port))
    {
    }

    std::string token;
    std::vector<std::uint64_t> heldLeases;
    net::SessionAck session;

    net::HelloAck handshake(const std::string &name,
                            std::string sessionId = "",
                            std::uint16_t slots = 1)
    {
        if (sessionId.empty())
            sessionId = name + "/session";
        net::Hello hello;
        hello.slots = slots;
        hello.name = name;
        hello.sessionId = sessionId;
        hello.heldLeases = heldLeases;
        proc::Writer body;
        hello.serialize(body);
        net::sendMessage(_fd.get(), net::MsgType::Hello,
                         body.bytes());
        std::vector<std::byte> payload;
        EXPECT_TRUE(net::recvMessage(_fd.get(), payload));
        proc::Reader in(payload);
        EXPECT_EQ(net::readType(in), net::MsgType::HelloAck);
        net::HelloAck ack = net::HelloAck::deserialize(in);
        if (!ack.accepted)
            return ack;
        if (ack.authRequired) {
            net::AuthProofMsg proof;
            proof.proof = net::authProof(token, ack.challenge,
                                         sessionId, name);
            proc::Writer proof_body;
            proof.serialize(proof_body);
            net::sendMessage(_fd.get(), net::MsgType::AuthProof,
                             proof_body.bytes());
        }
        std::vector<std::byte> verdict_payload;
        if (!net::recvMessage(_fd.get(), verdict_payload)) {
            ack.accepted = false;
            ack.reason = "connection closed before session ack";
            return ack;
        }
        proc::Reader verdict_in(verdict_payload);
        EXPECT_EQ(net::readType(verdict_in),
                  net::MsgType::SessionAck);
        session = net::SessionAck::deserialize(verdict_in);
        ack.accepted = session.accepted;
        if (!session.accepted)
            ack.reason = session.reason;
        return ack;
    }

    bool readAssign(std::uint64_t &leaseId, proc::JobRequest &request)
    {
        std::vector<std::byte> payload;
        if (!net::recvMessage(_fd.get(), payload))
            return false;
        proc::Reader in(payload);
        if (net::readType(in) != net::MsgType::JobAssign)
            return false;
        leaseId = in.pod<std::uint64_t>();
        request = proc::JobRequest::deserialize(in);
        return true;
    }

    void sendDone(std::uint64_t leaseId, double cycles)
    {
        proc::JobResult result;
        result.status = proc::ResultStatus::Ok;
        result.cycles = cycles;
        proc::Writer body;
        body.pod(leaseId);
        result.serialize(body);
        net::sendMessage(_fd.get(), net::MsgType::JobDone,
                         body.bytes());
    }

    void disconnect() { _fd.reset(); }

    int fd() const { return _fd.get(); }

  private:
    net::OwnedFd _fd;
};

SimJob
makeJob(const rigor::trace::WorkloadProfile &profile,
        const std::string &label)
{
    SimJob job;
    job.workload = &profile;
    job.instructions = 1000;
    job.label = label;
    return job;
}

std::future<double>
executeAsync(net::CampaignController &controller, const SimJob &job,
             std::size_t jobIndex)
{
    return std::async(std::launch::async,
                      [&controller, &job, jobIndex] {
                          AttemptContext ctx;
                          ctx.jobIndex = jobIndex;
                          return controller.execute(job, ctx);
                      });
}

} // namespace

// ----- Session resume: park, handback, expiry, split-brain -----

TEST(NetSession, DisconnectParksAndReconnectHandsTheLeaseBack)
{
    net::ControllerOptions options;
    options.sessionGrace = std::chrono::milliseconds(5000);
    EventLog events;
    net::CampaignController controller(options);
    controller.setLeaseObserver(events.observer());

    auto ghost = std::make_unique<FakeWorker>(controller.port());
    ASSERT_TRUE(ghost->handshake("ghost", "ghost/s1").accepted);

    const rigor::trace::WorkloadProfile profile;
    const SimJob job = makeJob(profile, "partitioned cell");
    std::future<double> result = executeAsync(controller, job, 7);

    std::uint64_t lease = 0;
    proc::JobRequest assigned;
    ASSERT_TRUE(ghost->readAssign(lease, assigned));

    // The connection breaks mid-lease: the session must park, and
    // nothing may be requeued while the grace clock runs.
    ghost->disconnect();
    ASSERT_TRUE(
        waitUntil([&] { return controller.sessionsParked() == 1; }));
    EXPECT_EQ(controller.leasesReclaimed(), 0u);
    EXPECT_EQ(controller.connectedWorkers(), 0u);

    // Reconnect with the same session id, still holding the lease:
    // the result computed during the partition hands back on the new
    // connection under the original lease id.
    FakeWorker revenant(controller.port());
    revenant.heldLeases = {lease};
    const net::HelloAck ack =
        revenant.handshake("ghost", "ghost/s1");
    ASSERT_TRUE(ack.accepted) << ack.reason;
    EXPECT_TRUE(revenant.session.resumed);
    EXPECT_EQ(revenant.session.retainedLeases, 1u);
    revenant.sendDone(lease, 4321.0);

    EXPECT_EQ(result.get(), 4321.0);
    EXPECT_EQ(controller.leasesReclaimed(), 0u);
    EXPECT_EQ(controller.sessionsResumed(), 1u);
    EXPECT_EQ(controller.lateResults(), 0u);
    EXPECT_TRUE(
        events.sawKind(net::LeaseEvent::Kind::SessionParked));
    EXPECT_TRUE(
        events.sawKind(net::LeaseEvent::Kind::SessionResumed));
}

TEST(NetSession, ResumeRequeuesLeasesTheWorkerNoLongerHolds)
{
    net::ControllerOptions options;
    options.sessionGrace = std::chrono::milliseconds(5000);
    net::CampaignController controller(options);

    auto amnesiac = std::make_unique<FakeWorker>(controller.port());
    ASSERT_TRUE(amnesiac->handshake("amnesiac", "amn/s1").accepted);

    const rigor::trace::WorkloadProfile profile;
    const SimJob job = makeJob(profile, "forgotten cell");
    std::future<double> result = executeAsync(controller, job, 2);

    std::uint64_t lease = 0;
    proc::JobRequest assigned;
    ASSERT_TRUE(amnesiac->readAssign(lease, assigned));
    amnesiac->disconnect();
    ASSERT_TRUE(
        waitUntil([&] { return controller.sessionsParked() == 1; }));

    // Resume declaring no held leases: the parked lease must requeue
    // (reclaim path) and land back on this same worker.
    FakeWorker back(controller.port());
    const net::HelloAck ack = back.handshake("amnesiac", "amn/s1");
    ASSERT_TRUE(ack.accepted) << ack.reason;
    EXPECT_TRUE(back.session.resumed);
    EXPECT_EQ(back.session.retainedLeases, 0u);
    EXPECT_EQ(controller.leasesReclaimed(), 1u);

    std::uint64_t release = 0;
    ASSERT_TRUE(back.readAssign(release, assigned));
    EXPECT_NE(release, lease);
    back.sendDone(release, 2222.0);
    EXPECT_EQ(result.get(), 2222.0);
}

TEST(NetSession, GraceExpiryFallsBackToReclaimAndMigration)
{
    net::ControllerOptions options;
    options.sessionGrace = std::chrono::milliseconds(100);
    options.heartbeat = std::chrono::milliseconds(25);
    EventLog events;
    auto controller =
        std::make_unique<net::CampaignController>(options);
    controller->setLeaseObserver(events.observer());

    auto doomed = std::make_unique<FakeWorker>(controller->port());
    ASSERT_TRUE(doomed->handshake("doomed", "doom/s1").accepted);

    const rigor::trace::WorkloadProfile profile;
    const SimJob job = makeJob(profile, "expired cell");
    std::future<double> result = executeAsync(*controller, job, 5);

    std::uint64_t lease = 0;
    proc::JobRequest assigned;
    ASSERT_TRUE(doomed->readAssign(lease, assigned));
    doomed->disconnect();

    // No reconnect inside the grace window: the session expires and
    // the cell migrates to a healthy worker.
    std::thread rescuer([port = controller->port()] {
        net::RemoteWorkerOptions opts;
        opts.port = port;
        opts.name = "rescuer";
        opts.simulate = stubResponse;
        (void)net::runRemoteWorker(opts);
    });

    EXPECT_EQ(result.get(), 1005.0);
    EXPECT_EQ(controller->sessionsParked(), 1u);
    EXPECT_EQ(controller->sessionsExpired(), 1u);
    EXPECT_GE(controller->leasesReclaimed(), 1u);
    EXPECT_TRUE(
        events.sawKind(net::LeaseEvent::Kind::SessionExpired));
    EXPECT_TRUE(events.sawKind(net::LeaseEvent::Kind::WorkerLost));

    controller.reset();
    rescuer.join();
}

TEST(NetSession, DuplicateLiveSessionIdIsRejected)
{
    net::CampaignController controller;

    FakeWorker original(controller.port());
    ASSERT_TRUE(original.handshake("orig", "shared/id").accepted);

    FakeWorker impostor(controller.port());
    const net::HelloAck ack =
        impostor.handshake("impostor", "shared/id");
    EXPECT_FALSE(ack.accepted);
    EXPECT_NE(ack.reason.find("already active"), std::string::npos)
        << ack.reason;
    EXPECT_EQ(controller.sessionsRejected(), 1u);
    EXPECT_EQ(controller.connectedWorkers(), 1u);
}

// ----- Authenticated handshake -----

TEST(NetAuthHandshake, SharedTokenAdmitsAndWrongTokenNeverGetsALease)
{
    net::ControllerOptions options;
    options.authToken = "fleet-secret";
    EventLog events;
    net::CampaignController controller(options);
    controller.setLeaseObserver(events.observer());

    // Queue a cell before anyone connects: the first admitted worker
    // gets it, so a rogue being admitted would be observable.
    const rigor::trace::WorkloadProfile profile;
    const SimJob job = makeJob(profile, "guarded cell");
    std::future<double> result = executeAsync(controller, job, 9);

    FakeWorker rogue(controller.port());
    rogue.token = "not-the-fleet-token";
    const net::HelloAck rogue_ack = rogue.handshake("rogue");
    EXPECT_FALSE(rogue_ack.accepted);
    EXPECT_NE(rogue_ack.reason.find("auth"), std::string::npos)
        << rogue_ack.reason;
    EXPECT_EQ(controller.connectedWorkers(), 0u);
    EXPECT_EQ(controller.authRejected(), 1u);
    EXPECT_EQ(controller.leasesGranted(), 0u);
    EXPECT_TRUE(
        events.sawKind(net::LeaseEvent::Kind::AuthRejected));

    FakeWorker member(controller.port());
    member.token = "fleet-secret";
    ASSERT_TRUE(member.handshake("member").accepted);
    EXPECT_EQ(controller.authAccepted(), 1u);

    std::uint64_t lease = 0;
    proc::JobRequest assigned;
    ASSERT_TRUE(member.readAssign(lease, assigned));
    member.sendDone(lease, 9999.0);
    EXPECT_EQ(result.get(), 9999.0);
}

TEST(NetAuthHandshake, ReplayedProofFailsTheFreshChallenge)
{
    net::ControllerOptions options;
    options.authToken = "fleet-secret";
    net::CampaignController controller(options);

    // Capture a valid proof for connection 1's challenge...
    std::string stale_proof;
    {
        net::OwnedFd fd =
            net::connectTcp("127.0.0.1", controller.port());
        net::Hello hello;
        hello.name = "eavesdropper";
        hello.sessionId = "eaves/s1";
        proc::Writer body;
        hello.serialize(body);
        net::sendMessage(fd.get(), net::MsgType::Hello,
                         body.bytes());
        std::vector<std::byte> payload;
        ASSERT_TRUE(net::recvMessage(fd.get(), payload));
        proc::Reader in(payload);
        ASSERT_EQ(net::readType(in), net::MsgType::HelloAck);
        const net::HelloAck ack = net::HelloAck::deserialize(in);
        ASSERT_TRUE(ack.authRequired);
        stale_proof = net::authProof("fleet-secret", ack.challenge,
                                     "eaves/s1", "eavesdropper");
        // ...then abandon the connection without answering.
    }

    // ...and replay it on connection 2: the nonce is fresh, so the
    // stale proof must be rejected.
    net::OwnedFd fd =
        net::connectTcp("127.0.0.1", controller.port());
    net::Hello hello;
    hello.name = "eavesdropper";
    hello.sessionId = "eaves/s1";
    proc::Writer body;
    hello.serialize(body);
    net::sendMessage(fd.get(), net::MsgType::Hello, body.bytes());
    std::vector<std::byte> payload;
    ASSERT_TRUE(net::recvMessage(fd.get(), payload));
    proc::Reader in(payload);
    ASSERT_EQ(net::readType(in), net::MsgType::HelloAck);
    ASSERT_TRUE(net::HelloAck::deserialize(in).accepted);
    net::AuthProofMsg proof;
    proof.proof = stale_proof;
    proc::Writer proof_body;
    proof.serialize(proof_body);
    net::sendMessage(fd.get(), net::MsgType::AuthProof,
                     proof_body.bytes());
    std::vector<std::byte> verdict_payload;
    ASSERT_TRUE(net::recvMessage(fd.get(), verdict_payload));
    proc::Reader verdict_in(verdict_payload);
    ASSERT_EQ(net::readType(verdict_in), net::MsgType::SessionAck);
    const net::SessionAck verdict =
        net::SessionAck::deserialize(verdict_in);
    EXPECT_FALSE(verdict.accepted);
    EXPECT_NE(verdict.reason.find("bad auth proof"),
              std::string::npos)
        << verdict.reason;
    EXPECT_GE(controller.authRejected(), 1u);
    EXPECT_EQ(controller.connectedWorkers(), 0u);
}

// ----- Malformed-handshake fuzz -----

namespace
{

/** Write raw bytes on a fresh connection, then close. */
void
rawProbe(std::uint16_t port, const void *data, std::size_t size)
{
    net::OwnedFd fd = net::connectTcp("127.0.0.1", port);
    if (size > 0)
        ASSERT_EQ(::write(fd.get(), data, size),
                  static_cast<ssize_t>(size));
}

} // namespace

TEST(NetFuzz, MalformedHandshakesAreCountedDroppedAndHarmless)
{
    net::ControllerOptions options;
    options.authToken = "fleet-secret";
    net::CampaignController controller(options);
    const std::uint16_t port = controller.port();
    std::uint64_t expected_rejects = 0;

    // Instant EOF: connect and say nothing.
    rawProbe(port, nullptr, 0);
    expected_rejects += 1;

    // Truncated length prefix.
    const std::uint8_t half_prefix[2] = {0x10, 0x00};
    rawProbe(port, half_prefix, sizeof(half_prefix));
    expected_rejects += 1;

    // Truncated payload: the prefix promises 64 bytes, 3 arrive.
    const std::uint32_t promised = 64;
    std::vector<std::uint8_t> torn(sizeof(promised) + 3, 0xab);
    std::memcpy(torn.data(), &promised, sizeof(promised));
    rawProbe(port, torn.data(), torn.size());
    expected_rejects += 1;

    // Oversized frame: a length prefix past the 64 MiB cap.
    const std::uint32_t oversized = 0x7fffffff;
    rawProbe(port, &oversized, sizeof(oversized));
    expected_rejects += 1;

    // Unknown message tag (a 1-byte frame tagged 99).
    const std::uint8_t bad_tag[5] = {0x01, 0x00, 0x00, 0x00, 99};
    rawProbe(port, bad_tag, sizeof(bad_tag));
    expected_rejects += 1;

    // Valid frame, wrong opening message (Heartbeat before Hello).
    {
        net::OwnedFd fd = net::connectTcp("127.0.0.1", port);
        net::sendMessage(fd.get(), net::MsgType::Heartbeat);
    }
    expected_rejects += 1;

    // Structurally valid Hellos that fail validation.
    {
        FakeWorker bad_magic(port);
        net::Hello hello;
        hello.magic = 0xdeadbeef;
        hello.name = "m";
        hello.sessionId = "m/s";
        proc::Writer body;
        hello.serialize(body);
        net::sendMessage(bad_magic.fd(), net::MsgType::Hello,
                         body.bytes());
    }
    expected_rejects += 1;
    {
        FakeWorker old_version(port);
        net::Hello hello;
        hello.version = 1;
        hello.name = "v";
        hello.sessionId = "v/s";
        proc::Writer body;
        hello.serialize(body);
        net::sendMessage(old_version.fd(), net::MsgType::Hello,
                         body.bytes());
    }
    expected_rejects += 1;
    {
        FakeWorker nameless(port);
        const net::HelloAck ack = nameless.handshake("");
        EXPECT_FALSE(ack.accepted);
    }
    expected_rejects += 1;
    {
        FakeWorker no_session(port);
        net::Hello hello;
        hello.name = "n";
        proc::Writer body; // sessionId left empty
        hello.serialize(body);
        net::sendMessage(no_session.fd(), net::MsgType::Hello,
                         body.bytes());
    }
    expected_rejects += 1;
    {
        FakeWorker zero_slots(port);
        const net::HelloAck ack =
            zero_slots.handshake("z", "z/s", 0);
        EXPECT_FALSE(ack.accepted);
    }
    expected_rejects += 1;

    // Hello accepted, then garbage instead of the demanded proof.
    {
        FakeWorker mute(port);
        net::Hello hello;
        hello.name = "mute";
        hello.sessionId = "mute/s";
        proc::Writer body;
        hello.serialize(body);
        net::sendMessage(mute.fd(), net::MsgType::Hello,
                         body.bytes());
        std::vector<std::byte> payload;
        ASSERT_TRUE(net::recvMessage(mute.fd(), payload));
        net::sendMessage(mute.fd(), net::MsgType::Heartbeat);
    }
    expected_rejects += 1;

    // Every probe must be counted, none may register a worker, and
    // the controller must still serve a well-behaved fleet member.
    ASSERT_TRUE(waitUntil([&] {
        return controller.authRejected() >= expected_rejects;
    })) << controller.authRejected()
        << " of " << expected_rejects;
    EXPECT_EQ(controller.authRejected(), expected_rejects);
    EXPECT_EQ(controller.connectedWorkers(), 0u);
    EXPECT_EQ(controller.leasesGranted(), 0u);

    const rigor::trace::WorkloadProfile profile;
    const SimJob job = makeJob(profile, "survivor cell");
    std::future<double> result = executeAsync(controller, job, 1);
    FakeWorker member(port);
    member.token = "fleet-secret";
    ASSERT_TRUE(member.handshake("member").accepted);
    std::uint64_t lease = 0;
    proc::JobRequest assigned;
    ASSERT_TRUE(member.readAssign(lease, assigned));
    member.sendDone(lease, 1234.0);
    EXPECT_EQ(result.get(), 1234.0);
}

// ----- Graceful drain -----

TEST(NetDrain, BeginDrainFinishesInFlightAndFailsQueuedCells)
{
    net::CampaignController controller;

    FakeWorker worker(controller.port());
    ASSERT_TRUE(worker.handshake("steady").accepted);

    const rigor::trace::WorkloadProfile profile;
    const SimJob in_flight_job = makeJob(profile, "in-flight cell");
    const SimJob queued_job = makeJob(profile, "queued cell");
    std::future<double> in_flight =
        executeAsync(controller, in_flight_job, 1);

    std::uint64_t lease = 0;
    proc::JobRequest assigned;
    ASSERT_TRUE(worker.readAssign(lease, assigned));

    // One slot held: the second cell queues behind it.
    std::future<double> queued =
        executeAsync(controller, queued_job, 2);

    std::thread drainer([&controller] {
        controller.beginDrain(std::chrono::milliseconds(5000));
    });
    ASSERT_TRUE(waitUntil([&] { return controller.draining(); }));

    // The in-flight cell finishes normally under the drain...
    worker.sendDone(lease, 7777.0);
    EXPECT_EQ(in_flight.get(), 7777.0);

    // ...and the queued cell is failed back resumably, not run.
    try {
        queued.get();
        FAIL() << "queued cell must fail under drain";
    } catch (const TransientFault &e) {
        EXPECT_NE(std::string(e.what()).find("draining"),
                  std::string::npos)
            << e.what();
    }
    drainer.join();
    EXPECT_TRUE(controller.draining());
    EXPECT_EQ(controller.leasesReclaimed(), 0u);
}

TEST(NetDrain, WorkerDrainFlagAnnouncesFinishesAndEndsDrained)
{
    EventLog events;
    auto controller = std::make_unique<net::CampaignController>();
    controller->setLeaseObserver(events.observer());

    std::atomic<bool> drain{false};
    net::RemoteWorkerSession session;
    std::thread worker([&, port = controller->port()] {
        net::RemoteWorkerOptions opts;
        opts.port = port;
        opts.name = "drainer";
        opts.simulate = stubResponse;
        opts.drainFlag = &drain;
        session = net::runRemoteWorker(opts);
    });
    ASSERT_TRUE(controller->waitForWorkers(
        1, std::chrono::milliseconds(10000)));

    const rigor::trace::WorkloadProfile profile;
    const SimJob job = makeJob(profile, "pre-drain cell");
    EXPECT_EQ(executeAsync(*controller, job, 3).get(), 1003.0);

    drain.store(true);
    worker.join();
    EXPECT_EQ(session.end, net::SessionEnd::Drained);
    EXPECT_EQ(session.jobsServed, 1u);
    EXPECT_TRUE(
        events.sawKind(net::LeaseEvent::Kind::WorkerDraining));
    EXPECT_TRUE(waitUntil(
        [&] { return controller->connectedWorkers() == 0; }));
    // A drained worker's exit is deliberate: nothing to reclaim.
    EXPECT_EQ(controller->leasesReclaimed(), 0u);
    EXPECT_EQ(controller->sessionsParked(), 0u);
    controller.reset();
}

// ----- Socket hygiene (close-on-exec) -----

TEST(NetSocket, EverySocketIsOpenedCloseOnExec)
{
    net::OwnedFd listener = net::listenTcp("127.0.0.1", 0);
    const std::uint16_t port = net::boundPort(listener.get());

    net::OwnedFd client;
    std::thread connector([&client, port] {
        client = net::connectTcp("127.0.0.1", port);
    });
    net::OwnedFd accepted = net::acceptClient(listener.get());
    connector.join();

    ASSERT_TRUE(listener.valid());
    ASSERT_TRUE(client.valid());
    ASSERT_TRUE(accepted.valid());
    for (const int fd : {listener.get(), client.get(),
                         accepted.get()}) {
        const int flags = ::fcntl(fd, F_GETFD);
        ASSERT_GE(flags, 0);
        EXPECT_NE(flags & FD_CLOEXEC, 0)
            << "fd " << fd << " would leak into forked sandboxes";
    }
}
