#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "doe/design_matrix.hh"
#include "exec/engine.hh"
#include "exec/fault_injection.hh"
#include "methodology/parameter_space.hh"
#include "trace/workloads.hh"

namespace doe = rigor::doe;
namespace exec = rigor::exec;
namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

namespace
{

/** A batch of distinct lightweight jobs for stubbed executors. */
std::vector<exec::SimJob>
stubBatch(const trace::WorkloadProfile &workload, std::size_t count)
{
    std::vector<exec::SimJob> jobs;
    jobs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        exec::SimJob job;
        job.workload = &workload;
        job.config = methodology::uniformConfig(doe::Level::Low);
        job.config.robEntries =
            static_cast<unsigned>(16 + i); // distinct cache keys
        job.instructions = 100;
        job.label = workload.name + ", design row " + std::to_string(i);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

/** Executor returning a job-index-derived value instantly. */
exec::SimulateFn
instantStub()
{
    return [](const exec::SimJob &, const exec::AttemptContext &ctx) {
        return 1000.0 + static_cast<double>(ctx.jobIndex);
    };
}

} // namespace

// ----- FaultPolicy mechanics -----

TEST(FaultPolicy, AttemptsNeverZero)
{
    exec::FaultPolicy policy;
    policy.maxAttempts = 0;
    EXPECT_EQ(policy.attempts(), 1u);
    policy.maxAttempts = 3;
    EXPECT_EQ(policy.attempts(), 3u);
}

TEST(FaultPolicy, BackoffGrowsExponentially)
{
    exec::FaultPolicy policy;
    policy.backoffBase = std::chrono::milliseconds(10);
    EXPECT_EQ(policy.backoffFor(1).count(), 10);
    EXPECT_EQ(policy.backoffFor(2).count(), 20);
    EXPECT_EQ(policy.backoffFor(3).count(), 40);
    // The shift is capped: no overflow for absurd attempt counts.
    EXPECT_EQ(policy.backoffFor(64), policy.backoffFor(21));

    policy.backoffBase = std::chrono::milliseconds(0);
    EXPECT_EQ(policy.backoffFor(5).count(), 0);
}

TEST(FaultPolicy, ZeroJitterKeepsTheExactExponentialSchedule)
{
    exec::FaultPolicy policy;
    policy.backoffBase = std::chrono::milliseconds(10);
    policy.backoffSeed = 42;
    // backoffJitter defaults to 0: the streamed overload must equal
    // the exact schedule for every stream.
    for (std::uint64_t stream = 0; stream < 8; ++stream)
        for (unsigned k = 1; k <= 4; ++k)
            EXPECT_EQ(policy.backoffFor(k, stream),
                      policy.backoffFor(k))
                << "stream " << stream << " k " << k;
}

TEST(FaultPolicy, JitterStaysInsideTheWindowAndReplaysExactly)
{
    exec::FaultPolicy policy;
    policy.backoffBase = std::chrono::milliseconds(100);
    policy.backoffJitter = 0.5;
    policy.backoffSeed = 7;

    for (unsigned k = 1; k <= 4; ++k) {
        const auto base = policy.backoffFor(k);
        for (std::uint64_t stream = 0; stream < 32; ++stream) {
            const auto jittered = policy.backoffFor(k, stream);
            // Scaled into [base * (1 - jitter), base].
            EXPECT_GE(jittered.count(), base.count() / 2)
                << "stream " << stream << " k " << k;
            EXPECT_LE(jittered.count(), base.count())
                << "stream " << stream << " k " << k;
            // Deterministic: the same (seed, stream, k) always
            // produces the identical delay — jittered campaigns
            // replay bit for bit.
            EXPECT_EQ(jittered, policy.backoffFor(k, stream));
        }
    }
}

TEST(FaultPolicy, JitterDecorrelatesRetryStreams)
{
    exec::FaultPolicy policy;
    policy.backoffBase = std::chrono::milliseconds(1000);
    policy.backoffJitter = 1.0;
    policy.backoffSeed = 1234;

    // A burst of workers failing together must not retry in
    // lockstep: across many streams the jittered delays spread out
    // instead of collapsing onto one value.
    std::set<std::chrono::milliseconds::rep> distinct;
    for (std::uint64_t stream = 0; stream < 64; ++stream)
        distinct.insert(policy.backoffFor(1, stream).count());
    EXPECT_GT(distinct.size(), 8u);

    // A different seed yields a different spread (same streams).
    exec::FaultPolicy reseeded = policy;
    reseeded.backoffSeed = 4321;
    bool any_differ = false;
    for (std::uint64_t stream = 0; stream < 64; ++stream)
        any_differ |= policy.backoffFor(1, stream) !=
                      reseeded.backoffFor(1, stream);
    EXPECT_TRUE(any_differ);
}

TEST(AttemptContext, CheckDeadlineThrowsOnceExpired)
{
    exec::AttemptContext ctx;
    EXPECT_NO_THROW(ctx.checkDeadline()); // no deadline configured

    ctx.deadlineBudget = std::chrono::milliseconds(5);
    ctx.deadline = std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1);
    EXPECT_TRUE(ctx.expired());
    try {
        ctx.checkDeadline();
        FAIL() << "expected DeadlineExceeded";
    } catch (const exec::DeadlineExceeded &e) {
        EXPECT_NE(std::string(e.what()).find("5 ms"),
                  std::string::npos);
    }
}

TEST(JobFailure, MessageNamesLabelAttemptsAndElapsedTime)
{
    exec::JobFailure failure;
    failure.label = "gzip, design row 17";
    failure.kind = exec::FailureKind::Timeout;
    failure.attempts = 3;
    failure.elapsedSeconds = 0.25;
    failure.message = "attempt deadline of 50 ms exceeded";
    const std::string text = failure.toString();
    EXPECT_NE(text.find("gzip, design row 17"), std::string::npos);
    EXPECT_NE(text.find("timeout"), std::string::npos);
    EXPECT_NE(text.find("3 attempts"), std::string::npos);
    EXPECT_NE(text.find("0.250 s"), std::string::npos);
    EXPECT_NE(text.find("50 ms exceeded"), std::string::npos);
}

// ----- Retry and classification -----

TEST(FaultTolerance, TransientFaultHealedByRetry)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    const std::vector<exec::SimJob> jobs = stubBatch(w, 6);

    std::atomic<unsigned> first_attempts{0};
    exec::EngineOptions opts;
    opts.threads = 2;
    opts.simulate = [&first_attempts](const exec::SimJob &,
                                      const exec::AttemptContext &ctx) {
        if (ctx.attempt == 1) {
            first_attempts.fetch_add(1);
            throw exec::TransientFault("flaky backend");
        }
        return 1000.0 + static_cast<double>(ctx.jobIndex);
    };
    exec::SimulationEngine engine(opts);

    exec::FaultPolicy policy;
    policy.maxAttempts = 2;
    const exec::BatchResult result = engine.run(jobs, policy);

    EXPECT_TRUE(result.complete());
    ASSERT_EQ(result.responses.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(result.responses[i],
                  1000.0 + static_cast<double>(i));
    EXPECT_EQ(first_attempts.load(), jobs.size());
    const exec::ProgressSnapshot snap = engine.progress().snapshot();
    EXPECT_EQ(snap.retries, jobs.size());
    EXPECT_EQ(snap.failedJobs, 0u);
}

TEST(FaultTolerance, PermanentFaultIsNeverRetried)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    const std::vector<exec::SimJob> jobs = stubBatch(w, 3);

    std::atomic<unsigned> attempts_on_victim{0};
    exec::EngineOptions opts;
    opts.threads = 1;
    opts.simulate = [&attempts_on_victim](
                        const exec::SimJob &,
                        const exec::AttemptContext &ctx) {
        if (ctx.jobIndex == 1) {
            attempts_on_victim.fetch_add(1);
            throw std::runtime_error("deterministic bug");
        }
        return 7.0;
    };
    exec::SimulationEngine engine(opts);

    exec::FaultPolicy policy;
    policy.maxAttempts = 5; // would retry transients five times
    policy.collectFailures = true;
    const exec::BatchResult result = engine.run(jobs, policy);

    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_EQ(attempts_on_victim.load(), 1u)
        << "a permanent failure must not burn retries";
    EXPECT_EQ(result.failures[0].kind, exec::FailureKind::Permanent);
    EXPECT_EQ(result.failures[0].attempts, 1u);
    EXPECT_TRUE(std::isnan(result.responses[1]));
    EXPECT_EQ(result.responses[0], 7.0);
    EXPECT_EQ(result.responses[2], 7.0);
}

TEST(FaultTolerance, RetriesExhaustedReportsTransientKind)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    const std::vector<exec::SimJob> jobs = stubBatch(w, 1);

    exec::EngineOptions opts;
    opts.threads = 1;
    opts.simulate = [](const exec::SimJob &,
                       const exec::AttemptContext &) -> double {
        throw exec::TransientFault("always flaky");
    };
    exec::SimulationEngine engine(opts);

    exec::FaultPolicy policy;
    policy.maxAttempts = 3;
    policy.collectFailures = true;
    const exec::BatchResult result = engine.run(jobs, policy);

    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_EQ(result.failures[0].kind, exec::FailureKind::Transient);
    EXPECT_EQ(result.failures[0].attempts, 3u);
    EXPECT_EQ(engine.progress().snapshot().retries, 2u);
}

TEST(FaultTolerance, FailFastMessageCarriesAttemptsAndElapsedTime)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    const std::vector<exec::SimJob> jobs = stubBatch(w, 1);

    exec::EngineOptions opts;
    opts.threads = 1;
    opts.simulate = [](const exec::SimJob &,
                       const exec::AttemptContext &) -> double {
        throw exec::TransientFault("flaky");
    };
    exec::SimulationEngine engine(opts);

    exec::FaultPolicy policy;
    policy.maxAttempts = 2; // fail-fast, but with one retry
    try {
        engine.run(jobs, policy);
        FAIL() << "expected the batch to fail";
    } catch (const std::runtime_error &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("gzip, design row 0"),
                  std::string::npos)
            << message;
        EXPECT_NE(message.find("after 2 attempts"), std::string::npos)
            << message;
        EXPECT_NE(message.find(" s: flaky"), std::string::npos)
            << message;
    }
}

// ----- Deadline watchdog -----

TEST(FaultTolerance, InjectedHangTripsTheDeadline)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    const std::vector<exec::SimJob> jobs = stubBatch(w, 2);

    exec::FaultInjector injector;
    injector.addFault(0, 1, exec::FaultKind::Hang);
    exec::EngineOptions opts;
    opts.threads = 2;
    opts.simulate = injector.wrap(instantStub());
    exec::SimulationEngine engine(opts);

    exec::FaultPolicy policy;
    policy.maxAttempts = 1;
    policy.attemptDeadline = std::chrono::milliseconds(50);
    policy.collectFailures = true;
    const exec::BatchResult result = engine.run(jobs, policy);

    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_EQ(result.failures[0].jobIndex, 0u);
    EXPECT_EQ(result.failures[0].kind, exec::FailureKind::Timeout);
    EXPECT_NE(result.failures[0].message.find("deadline"),
              std::string::npos);
    EXPECT_EQ(injector.hangsRaised(), 1u);
    EXPECT_EQ(result.responses[1], 1001.0);
}

TEST(FaultTolerance, HangHealedByRetryWhenSecondAttemptSucceeds)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    const std::vector<exec::SimJob> jobs = stubBatch(w, 1);

    exec::FaultInjector injector;
    injector.addFault(0, 1, exec::FaultKind::Hang);
    exec::EngineOptions opts;
    opts.threads = 1;
    opts.simulate = injector.wrap(instantStub());
    exec::SimulationEngine engine(opts);

    exec::FaultPolicy policy;
    policy.maxAttempts = 2; // a hang is treated as retryable
    policy.attemptDeadline = std::chrono::milliseconds(30);
    const exec::BatchResult result = engine.run(jobs, policy);

    EXPECT_TRUE(result.complete());
    EXPECT_EQ(result.responses[0], 1000.0);
    EXPECT_EQ(engine.progress().snapshot().retries, 1u);
}

TEST(FaultTolerance, RealSimulationTripsTheCooperativeWatchdog)
{
    // A genuinely long simulation (not a stub) against a deadline it
    // cannot meet: the deadline-guarded trace source must convert it
    // into a diagnosable timeout.
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    exec::SimJob job;
    job.workload = &w;
    job.config = methodology::uniformConfig(doe::Level::High);
    job.instructions = 50000000; // far beyond 1 ms of simulation
    job.label = "gzip, wedged run";
    const std::vector<exec::SimJob> jobs = {job};

    exec::SimulationEngine engine(exec::EngineOptions{1, true});
    exec::FaultPolicy policy;
    policy.maxAttempts = 1;
    policy.attemptDeadline = std::chrono::milliseconds(1);
    policy.collectFailures = true;
    const exec::BatchResult result = engine.run(jobs, policy);

    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_EQ(result.failures[0].kind, exec::FailureKind::Timeout);
    EXPECT_NE(result.failures[0].message.find("deadline"),
              std::string::npos);
}

TEST(FaultTolerance, HangInjectionWithoutDeadlineIsRejected)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    const std::vector<exec::SimJob> jobs = stubBatch(w, 1);

    exec::FaultInjector injector;
    injector.addFault(0, 1, exec::FaultKind::Hang);
    exec::EngineOptions opts;
    opts.threads = 1;
    opts.simulate = injector.wrap(instantStub());
    exec::SimulationEngine engine(opts);

    exec::FaultPolicy policy; // no attemptDeadline: a hang would wedge
    policy.collectFailures = true;
    const exec::BatchResult result = engine.run(jobs, policy);
    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_NE(result.failures[0].message.find("no attemptDeadline"),
              std::string::npos);
}

// ----- Collect-all-failures and cancellation -----

TEST(FaultTolerance, CollectModeCompletesEveryRemainingJob)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    const std::vector<exec::SimJob> jobs = stubBatch(w, 16);

    exec::EngineOptions opts;
    opts.threads = 4;
    opts.simulate = [](const exec::SimJob &,
                       const exec::AttemptContext &ctx) -> double {
        if (ctx.jobIndex % 5 == 0)
            throw exec::PermanentFault("cell fault");
        return static_cast<double>(ctx.jobIndex);
    };
    exec::SimulationEngine engine(opts);

    exec::FaultPolicy policy;
    policy.collectFailures = true;
    const exec::BatchResult result = engine.run(jobs, policy);

    ASSERT_EQ(result.failures.size(), 4u); // jobs 0, 5, 10, 15
    for (std::size_t i = 1; i < result.failures.size(); ++i)
        EXPECT_LT(result.failures[i - 1].jobIndex,
                  result.failures[i].jobIndex)
            << "failures must be sorted by job index";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i % 5 == 0)
            EXPECT_TRUE(std::isnan(result.responses[i])) << i;
        else
            EXPECT_EQ(result.responses[i], static_cast<double>(i));
    }
    EXPECT_EQ(engine.progress().snapshot().failedJobs, 4u);
}

TEST(FaultTolerance, FailFastCancelsPendingJobsAndJoinsCleanly)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    const std::vector<exec::SimJob> jobs = stubBatch(w, 64);
    constexpr unsigned kThreads = 4;

    std::atomic<unsigned> invocations{0};
    exec::EngineOptions opts;
    opts.threads = kThreads;
    opts.simulate = [&invocations](const exec::SimJob &,
                                   const exec::AttemptContext &)
        -> double {
        invocations.fetch_add(1);
        throw exec::PermanentFault("everything is broken");
    };
    exec::SimulationEngine engine(opts);

    EXPECT_THROW(engine.run(jobs, exec::FaultPolicy{}),
                 std::runtime_error);
    // Fail-fast: each worker abandons the queue after its first
    // failure, so the 64-job batch makes at most one attempt per
    // worker — pending work is cancelled, not drained.
    EXPECT_LE(invocations.load(), kThreads);

    // The engine is reusable after a cancelled batch (clean join,
    // guard released, queue state discarded).
    exec::EngineOptions ok_opts;
    ok_opts.threads = kThreads;
    ok_opts.simulate = instantStub();
    exec::SimulationEngine second(ok_opts);
    EXPECT_TRUE(second.run(jobs, exec::FaultPolicy{}).complete());
    invocations.store(0);
    EXPECT_THROW(engine.run(jobs, exec::FaultPolicy{}),
                 std::runtime_error);
    EXPECT_LE(invocations.load(), kThreads);
}

TEST(FaultTolerance, InFlightJobsDrainWithoutWritingAfterCancel)
{
    // Worker A fails job 0 instantly (cancelling the batch) while
    // worker B is mid-simulation on job 1; B's completion must not
    // touch batch state in a way tsan would flag, and the batch must
    // still throw A's failure.
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    const std::vector<exec::SimJob> jobs = stubBatch(w, 2);

    std::atomic<bool> victim_started{false};
    exec::EngineOptions opts;
    opts.threads = 2;
    opts.simulate = [&victim_started](const exec::SimJob &,
                                      const exec::AttemptContext &ctx)
        -> double {
        if (ctx.jobIndex == 1) {
            victim_started.store(true);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
            return 42.0;
        }
        while (!victim_started.load())
            std::this_thread::yield();
        throw exec::PermanentFault("fail while job 1 in flight");
    };
    exec::SimulationEngine engine(opts);

    try {
        engine.run(jobs, exec::FaultPolicy{});
        FAIL() << "expected the batch to fail";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("design row 0"),
                  std::string::npos);
    }
    EXPECT_EQ(engine.progress().snapshot().failedJobs, 1u);
}

// ----- Reentrancy guard -----

TEST(FaultTolerance, NestedRunOnTheSameEngineIsRejected)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    const std::vector<exec::SimJob> jobs = stubBatch(w, 1);

    exec::SimulationEngine *self = nullptr;
    exec::EngineOptions opts;
    opts.threads = 1;
    opts.simulate = [&self, &jobs](const exec::SimJob &,
                                   const exec::AttemptContext &)
        -> double {
        self->run(jobs); // re-enter the engine mid-batch
        return 0.0;
    };
    exec::SimulationEngine engine(opts);
    self = &engine;

    try {
        engine.run(jobs);
        FAIL() << "expected the nested run to be rejected";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("not reentrant"),
                  std::string::npos)
            << e.what();
    }

    // The guard is released: the engine works again afterwards.
    exec::EngineOptions ok;
    ok.threads = 1;
    ok.simulate = instantStub();
    exec::SimulationEngine fresh(ok);
    EXPECT_EQ(fresh.run(jobs).size(), 1u);
}

TEST(FaultTolerance, ConcurrentRunOnTheSameEngineIsRejected)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    const std::vector<exec::SimJob> jobs = stubBatch(w, 1);

    std::atomic<bool> inside{false};
    std::atomic<bool> release{false};
    exec::EngineOptions opts;
    opts.threads = 1;
    opts.simulate = [&inside, &release](const exec::SimJob &,
                                        const exec::AttemptContext &) {
        inside.store(true);
        while (!release.load())
            std::this_thread::yield();
        return 1.0;
    };
    exec::SimulationEngine engine(opts);

    std::thread first([&]() { engine.run(jobs); });
    while (!inside.load())
        std::this_thread::yield();
    EXPECT_THROW(engine.run(jobs), std::logic_error);
    release.store(true);
    first.join();
    // And once the first batch finished, the engine is free again.
    EXPECT_EQ(engine.run(jobs).size(), 1u);
}

// ----- Fault injector determinism -----

TEST(FaultInjector, SeededPlanIsDeterministicAndHealable)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    const std::vector<exec::SimJob> jobs = stubBatch(w, 40);

    exec::FaultInjector a, b;
    a.planRandomTransients(jobs.size(), 3, 0.4, 12345);
    b.planRandomTransients(jobs.size(), 3, 0.4, 12345);
    EXPECT_EQ(a.plannedFaults(), b.plannedFaults());
    EXPECT_GT(a.plannedFaults(), 0u);

    exec::FaultPolicy policy;
    policy.maxAttempts = 3;

    const auto run = [&](const exec::FaultInjector &injector) {
        exec::EngineOptions opts;
        opts.threads = 4;
        opts.simulate = injector.wrap(instantStub());
        exec::SimulationEngine engine(opts);
        return engine.run(jobs, policy);
    };
    const exec::BatchResult ra = run(a);
    const exec::BatchResult rb = run(b);

    // Every planned transient is healed (the plan never faults the
    // last allowed attempt), and both seeds raise identical storms.
    EXPECT_TRUE(ra.complete());
    EXPECT_TRUE(rb.complete());
    EXPECT_EQ(ra.responses, rb.responses);
    EXPECT_EQ(a.transientsRaised(), b.transientsRaised());
    EXPECT_GT(a.transientsRaised(), 0u);
}

TEST(FaultInjector, LabelFaultTargetsMatchingJobsOnly)
{
    const trace::WorkloadProfile &gzip = trace::workloadByName("gzip");
    const trace::WorkloadProfile &mcf = trace::workloadByName("mcf");
    std::vector<exec::SimJob> jobs = stubBatch(gzip, 2);
    {
        std::vector<exec::SimJob> more = stubBatch(mcf, 2);
        for (exec::SimJob &job : more)
            jobs.push_back(std::move(job));
    }

    exec::FaultInjector injector;
    injector.addLabelFault("mcf,", 1, exec::FaultKind::Permanent);
    exec::EngineOptions opts;
    opts.threads = 1;
    opts.simulate = injector.wrap(instantStub());
    exec::SimulationEngine engine(opts);

    exec::FaultPolicy policy;
    policy.collectFailures = true;
    const exec::BatchResult result = engine.run(jobs, policy);

    ASSERT_EQ(result.failures.size(), 2u);
    EXPECT_EQ(result.failures[0].jobIndex, 2u);
    EXPECT_EQ(result.failures[1].jobIndex, 3u);
    EXPECT_EQ(injector.permanentsRaised(), 2u);
}

TEST(FaultInjector, RejectsInvalidPlans)
{
    exec::FaultInjector injector;
    EXPECT_THROW(injector.addFault(0, 0, exec::FaultKind::Transient),
                 std::invalid_argument);
    EXPECT_THROW(
        injector.addLabelFault("", 1, exec::FaultKind::Transient),
        std::invalid_argument);
    EXPECT_THROW(injector.planRandomTransients(10, 1, 0.5, 1),
                 std::invalid_argument);
    EXPECT_THROW(injector.planRandomTransients(10, 2, 1.5, 1),
                 std::invalid_argument);
}
