#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exec/net/socket.hh"
#include "exec/net/wire.hh"
#include "exec/proc/protocol.hh"

namespace net = rigor::exec::net;
namespace proc = rigor::exec::proc;

namespace
{

/** A connected fd pair (both ends stream sockets, like TCP). */
struct FdPair
{
    int fds[2] = {-1, -1};

    FdPair()
    {
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    }
    ~FdPair()
    {
        closeWrite();
        closeRead();
    }
    int writeEnd() const { return fds[0]; }
    int readEnd() const { return fds[1]; }
    void closeWrite()
    {
        if (fds[0] != -1)
            ::close(fds[0]);
        fds[0] = -1;
    }
    void closeRead()
    {
        if (fds[1] != -1)
            ::close(fds[1]);
        fds[1] = -1;
    }
};

void
writeRaw(int fd, const void *data, std::size_t size)
{
    ASSERT_EQ(::write(fd, data, size),
              static_cast<ssize_t>(size));
}

std::vector<std::byte>
bytesOf(const std::string &text)
{
    std::vector<std::byte> out(text.size());
    std::memcpy(out.data(), text.data(), text.size());
    return out;
}

} // namespace

// ----- Satellite fix: truncated frames carry byte counts -----

TEST(NetProtocol, TruncatedPayloadReportsGotAndExpectedBytes)
{
    FdPair pair;
    const std::uint32_t size = 100;
    writeRaw(pair.writeEnd(), &size, sizeof(size));
    const char partial[10] = {};
    writeRaw(pair.writeEnd(), partial, sizeof(partial));
    pair.closeWrite();

    std::vector<std::byte> payload;
    try {
        proc::readFrame(pair.readEnd(), payload);
        FAIL() << "a torn frame must throw";
    } catch (const proc::TruncatedFrame &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("got 10 of 100"), std::string::npos)
            << what;
    }
}

TEST(NetProtocol, TruncatedLengthPrefixReportsByteCount)
{
    FdPair pair;
    const char partial[2] = {};
    writeRaw(pair.writeEnd(), partial, sizeof(partial));
    pair.closeWrite();

    std::vector<std::byte> payload;
    try {
        proc::readFrame(pair.readEnd(), payload);
        FAIL() << "a torn length prefix must throw";
    } catch (const proc::TruncatedFrame &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("length prefix"), std::string::npos);
        EXPECT_NE(what.find("got 2"), std::string::npos) << what;
    }
}

TEST(NetProtocol, TruncatedFrameIsAProtocolError)
{
    // Callers that catch the old type keep working.
    FdPair pair;
    const std::uint32_t size = 8;
    writeRaw(pair.writeEnd(), &size, sizeof(size));
    pair.closeWrite();

    std::vector<std::byte> payload;
    EXPECT_THROW(proc::readFrame(pair.readEnd(), payload),
                 proc::ProtocolError);
}

TEST(NetProtocol, CleanEofAtFrameBoundaryReturnsFalse)
{
    FdPair pair;
    proc::writeFrame(pair.writeEnd(), bytesOf("abc"));
    pair.closeWrite();

    std::vector<std::byte> payload;
    EXPECT_TRUE(proc::readFrame(pair.readEnd(), payload));
    EXPECT_EQ(payload, bytesOf("abc"));
    EXPECT_FALSE(proc::readFrame(pair.readEnd(), payload));
}

TEST(NetProtocol, OversizedFramePayloadIsRejectedBeforeAllocation)
{
    FdPair pair;
    const std::uint32_t size = proc::kMaxFramePayload + 1;
    writeRaw(pair.writeEnd(), &size, sizeof(size));
    pair.closeWrite();

    std::vector<std::byte> payload;
    try {
        proc::readFrame(pair.readEnd(), payload);
        FAIL() << "an oversized frame must throw";
    } catch (const proc::ProtocolError &e) {
        EXPECT_NE(std::string(e.what()).find("limit"),
                  std::string::npos);
    }
}

TEST(NetProtocol, ReaderNeedReportsOffsetsOnShortPayload)
{
    proc::Writer out;
    out.pod<std::uint32_t>(7);
    proc::Reader in(out.bytes());
    EXPECT_EQ(in.pod<std::uint32_t>(), 7u);
    try {
        in.pod<std::uint64_t>();
        FAIL() << "reading past the payload must throw";
    } catch (const proc::TruncatedFrame &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("need 8 bytes at offset 4"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("only 0 remain of 4"),
                  std::string::npos)
            << what;
    }
}

// ----- The tagged message layer -----

TEST(NetProtocol, HandshakeStructsRoundTrip)
{
    net::Hello hello;
    hello.slots = 4;
    hello.name = "rack2:4242";
    hello.sessionId = "rack2:4242/b1946ac9";
    hello.heldLeases = {3, 17, 42};
    proc::Writer out;
    hello.serialize(out);
    proc::Reader in(out.bytes());
    const net::Hello back = net::Hello::deserialize(in);
    EXPECT_EQ(back.magic, net::kWireMagic);
    EXPECT_EQ(back.version, net::kWireVersion);
    EXPECT_EQ(back.slots, 4u);
    EXPECT_EQ(back.name, "rack2:4242");
    EXPECT_EQ(back.sessionId, "rack2:4242/b1946ac9");
    EXPECT_EQ(back.heldLeases,
              (std::vector<std::uint64_t>{3, 17, 42}));
    EXPECT_TRUE(in.done());

    net::HelloAck ack;
    ack.accepted = true;
    ack.leaseMs = 10000;
    ack.heartbeatMs = 1000;
    ack.authRequired = true;
    ack.challenge = "f00dfaceb00c";
    proc::Writer ack_out;
    ack.serialize(ack_out);
    proc::Reader ack_in(ack_out.bytes());
    const net::HelloAck ack_back =
        net::HelloAck::deserialize(ack_in);
    EXPECT_TRUE(ack_back.accepted);
    EXPECT_TRUE(ack_back.reason.empty());
    EXPECT_EQ(ack_back.leaseMs, 10000u);
    EXPECT_EQ(ack_back.heartbeatMs, 1000u);
    EXPECT_TRUE(ack_back.authRequired);
    EXPECT_EQ(ack_back.challenge, "f00dfaceb00c");
    EXPECT_TRUE(ack_in.done());
}

TEST(NetProtocol, AuthAndSessionStructsRoundTrip)
{
    net::AuthProofMsg proof;
    proof.proof = std::string(64, 'a');
    proc::Writer out;
    proof.serialize(out);
    proc::Reader in(out.bytes());
    EXPECT_EQ(net::AuthProofMsg::deserialize(in).proof,
              std::string(64, 'a'));
    EXPECT_TRUE(in.done());

    net::SessionAck verdict;
    verdict.accepted = false;
    verdict.reason = "bad auth proof";
    verdict.resumed = true;
    verdict.retainedLeases = 9;
    proc::Writer verdict_out;
    verdict.serialize(verdict_out);
    proc::Reader verdict_in(verdict_out.bytes());
    const net::SessionAck back =
        net::SessionAck::deserialize(verdict_in);
    EXPECT_FALSE(back.accepted);
    EXPECT_EQ(back.reason, "bad auth proof");
    EXPECT_TRUE(back.resumed);
    EXPECT_EQ(back.retainedLeases, 9u);
    EXPECT_TRUE(verdict_in.done());
}

TEST(NetProtocol, SendMessageSurvivesAClosedPeerWithoutSigpipe)
{
    // The controller must outlive any worker that hangs up mid-frame:
    // sends go out MSG_NOSIGNAL, so a dead peer is an exception, not
    // a process-killing SIGPIPE.
    FdPair pair;
    pair.closeRead();
    // The first send may be swallowed by the socket buffer; keep
    // pushing until the broken pipe surfaces as ProtocolError.
    EXPECT_THROW(
        {
            for (int i = 0; i < 64; ++i)
                net::sendMessage(pair.writeEnd(),
                                 net::MsgType::Heartbeat);
        },
        proc::ProtocolError);
}

TEST(NetProtocol, TaggedMessagesRoundTripOverSocket)
{
    FdPair pair;
    net::Hello hello;
    hello.name = "w1";
    proc::Writer body;
    hello.serialize(body);
    net::sendMessage(pair.writeEnd(), net::MsgType::Hello,
                     body.bytes());
    net::sendMessage(pair.writeEnd(), net::MsgType::Heartbeat);

    std::vector<std::byte> payload;
    ASSERT_TRUE(net::recvMessage(pair.readEnd(), payload));
    proc::Reader in(payload);
    EXPECT_EQ(net::readType(in), net::MsgType::Hello);
    EXPECT_EQ(net::Hello::deserialize(in).name, "w1");

    ASSERT_TRUE(net::recvMessage(pair.readEnd(), payload));
    proc::Reader beat(payload);
    EXPECT_EQ(net::readType(beat), net::MsgType::Heartbeat);
    EXPECT_TRUE(beat.done());
}

TEST(NetProtocol, UnknownMessageTagIsRejected)
{
    proc::Writer out;
    out.pod<std::uint8_t>(99);
    proc::Reader in(out.bytes());
    EXPECT_THROW(net::readType(in), proc::ProtocolError);
}

// ----- TCP plumbing -----

TEST(NetProtocol, FramesTravelOverRealTcpSockets)
{
    net::OwnedFd listener = net::listenTcp("127.0.0.1", 0);
    const std::uint16_t port = net::boundPort(listener.get());
    ASSERT_NE(port, 0u);

    std::thread server([&] {
        net::OwnedFd client = net::acceptClient(listener.get());
        ASSERT_TRUE(client.valid());
        std::vector<std::byte> payload;
        ASSERT_TRUE(proc::readFrame(client.get(), payload));
        proc::writeFrame(client.get(), payload); // echo
    });

    net::OwnedFd conn = net::connectTcp("127.0.0.1", port);
    ASSERT_TRUE(conn.valid());
    proc::writeFrame(conn.get(), bytesOf("over tcp"));
    std::vector<std::byte> echoed;
    ASSERT_TRUE(proc::readFrame(conn.get(), echoed));
    EXPECT_EQ(echoed, bytesOf("over tcp"));
    server.join();
}

TEST(NetProtocol, JobRequestSurvivesTheSocketVerbatim)
{
    proc::JobRequest request;
    request.profile = rigor::trace::WorkloadProfile{};
    request.profile.name = "gzip";
    request.instructions = 20000;
    request.warmupInstructions = 500;
    request.label = "gzip, design row 17";
    request.jobIndex = 17;
    request.attempt = 2;
    request.deadlineBudget = std::chrono::milliseconds(250);

    FdPair pair;
    proc::Writer out;
    out.pod<std::uint64_t>(7); // lease id rides in front
    request.serialize(out);
    net::sendMessage(pair.writeEnd(), net::MsgType::JobAssign,
                     out.bytes());

    std::vector<std::byte> payload;
    ASSERT_TRUE(net::recvMessage(pair.readEnd(), payload));
    proc::Reader in(payload);
    ASSERT_EQ(net::readType(in), net::MsgType::JobAssign);
    EXPECT_EQ(in.pod<std::uint64_t>(), 7u);
    const proc::JobRequest back = proc::JobRequest::deserialize(in);
    EXPECT_EQ(back.profile.name, "gzip");
    EXPECT_EQ(back.instructions, 20000u);
    EXPECT_EQ(back.warmupInstructions, 500u);
    EXPECT_EQ(back.label, "gzip, design row 17");
    EXPECT_EQ(back.jobIndex, 17u);
    EXPECT_EQ(back.attempt, 2u);
    EXPECT_EQ(back.deadlineBudget.count(), 250);
    EXPECT_TRUE(in.done());
}
