#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "doe/design_matrix.hh"
#include "exec/engine.hh"
#include "exec/run_cache.hh"
#include "exec/sim_job_queue.hh"
#include "methodology/parameter_space.hh"
#include "methodology/pb_experiment.hh"
#include "trace/workloads.hh"

namespace doe = rigor::doe;
namespace exec = rigor::exec;
namespace methodology = rigor::methodology;
namespace sim = rigor::sim;
namespace trace = rigor::trace;

namespace
{

/** A small heterogeneous batch: two workloads x two configurations. */
std::vector<exec::SimJob>
smallBatch(const std::vector<trace::WorkloadProfile> &workloads,
           std::uint64_t instructions = 3000)
{
    std::vector<exec::SimJob> jobs;
    for (const trace::WorkloadProfile &w : workloads) {
        for (doe::Level level : {doe::Level::Low, doe::Level::High}) {
            exec::SimJob job;
            job.workload = &w;
            job.config = methodology::uniformConfig(level);
            job.instructions = instructions;
            job.label = w.name;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

} // namespace

// ----- SimJobQueue -----

TEST(SimJobQueue, SingleWorkerDrainsInOrder)
{
    exec::SimJobQueue queue(5, 1);
    std::size_t job;
    for (std::size_t expected = 0; expected < 5; ++expected) {
        ASSERT_TRUE(queue.pop(0, job));
        EXPECT_EQ(job, expected);
    }
    EXPECT_FALSE(queue.pop(0, job));
}

TEST(SimJobQueue, EveryJobDeliveredExactlyOnce)
{
    constexpr std::size_t num_jobs = 1000;
    constexpr unsigned num_workers = 8;
    exec::SimJobQueue queue(num_jobs, num_workers);

    std::vector<std::atomic<int>> delivered(num_jobs);
    std::vector<std::thread> pool;
    for (unsigned w = 0; w < num_workers; ++w) {
        pool.emplace_back([&queue, &delivered, w]() {
            std::size_t job;
            while (queue.pop(w, job))
                delivered[job].fetch_add(1);
        });
    }
    for (std::thread &t : pool)
        t.join();
    for (std::size_t j = 0; j < num_jobs; ++j)
        EXPECT_EQ(delivered[j].load(), 1) << "job " << j;
}

TEST(SimJobQueue, StealingDrainsUnbalancedLoad)
{
    // Worker 1 never pops its own range; worker 0 must steal it all.
    exec::SimJobQueue queue(64, 2);
    std::set<std::size_t> seen;
    std::size_t job;
    while (queue.pop(0, job))
        seen.insert(job);
    EXPECT_EQ(seen.size(), 64u);
}

TEST(SimJobQueue, EmptyQueueIsDrained)
{
    exec::SimJobQueue queue(0, 4);
    std::size_t job;
    EXPECT_FALSE(queue.pop(2, job));
}

TEST(SimJobQueue, CancelledBatchLeavesUndrainedJobsSafely)
{
    // The engine's fail-fast path makes every worker stop popping
    // mid-batch and the queue is destroyed with jobs still enqueued:
    // concurrent pops racing the cancel flag and the teardown must be
    // clean (this is the scenario the tsan preset races).
    constexpr std::size_t num_jobs = 2000;
    constexpr unsigned num_workers = 4;
    exec::SimJobQueue queue(num_jobs, num_workers);
    std::atomic<bool> cancel{false};
    std::atomic<std::size_t> delivered{0};
    std::vector<std::thread> pool;
    for (unsigned w = 0; w < num_workers; ++w) {
        pool.emplace_back([&queue, &cancel, &delivered, w]() {
            std::size_t job;
            while (!cancel.load(std::memory_order_acquire) &&
                   queue.pop(w, job)) {
                // One worker "fails" early and cancels the batch.
                if (delivered.fetch_add(1) == 40)
                    cancel.store(true, std::memory_order_release);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
    EXPECT_GE(delivered.load(), 41u);
    EXPECT_LT(delivered.load(), num_jobs)
        << "cancellation must leave the tail of the batch undrained";
}

TEST(SimJobQueue, SurvivorsDrainAnAbandonedWorkersShard)
{
    // A worker that aborts before its first pop (the BatchAbort path)
    // abandons its dealt range; the survivors must steal and finish
    // every job it left behind.
    constexpr std::size_t num_jobs = 256;
    constexpr unsigned num_workers = 4;
    exec::SimJobQueue queue(num_jobs, num_workers);
    std::vector<std::atomic<int>> delivered(num_jobs);
    std::vector<std::thread> pool;
    for (unsigned w = 1; w < num_workers; ++w) { // worker 0 never pops
        pool.emplace_back([&queue, &delivered, w]() {
            std::size_t job;
            while (queue.pop(w, job))
                delivered[job].fetch_add(1);
        });
    }
    for (std::thread &t : pool)
        t.join();
    for (std::size_t j = 0; j < num_jobs; ++j)
        EXPECT_EQ(delivered[j].load(), 1) << "job " << j;
}

// ----- RunCache -----

TEST(RunCache, StoreThenLookupReturnsExactValue)
{
    exec::RunCache cache;
    exec::RunKey key;
    key.workload = "gzip";
    key.config = methodology::uniformConfig(doe::Level::High);
    key.instructions = 1000;

    EXPECT_FALSE(cache.lookup(key).has_value());
    const double value = 123456789.0000001;
    cache.store(key, value);
    const std::optional<double> hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, value); // bit-exact, not approximately
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(RunCache, DistinguishesEveryKeyComponent)
{
    exec::RunCache cache;
    exec::RunKey key;
    key.workload = "gzip";
    key.config = methodology::uniformConfig(doe::Level::High);
    key.instructions = 1000;
    cache.store(key, 1.0);

    exec::RunKey other = key;
    other.workload = "mcf";
    EXPECT_FALSE(cache.lookup(other).has_value());
    other = key;
    other.instructions = 2000;
    EXPECT_FALSE(cache.lookup(other).has_value());
    other = key;
    other.warmupInstructions = 500;
    EXPECT_FALSE(cache.lookup(other).has_value());
    other = key;
    other.hookId = "precompute";
    EXPECT_FALSE(cache.lookup(other).has_value());
    other = key;
    other.config.robEntries += 1;
    EXPECT_FALSE(cache.lookup(other).has_value());
}

TEST(RunCache, ClearResetsEntriesAndCounters)
{
    exec::RunCache cache;
    exec::RunKey key;
    key.workload = "w";
    cache.store(key, 2.0);
    ASSERT_TRUE(cache.lookup(key).has_value());
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_FALSE(cache.lookup(key).has_value());
}

// ----- ProcessorConfig hash/equality -----

TEST(ProcessorConfigHash, EqualConfigsHashEqual)
{
    const sim::ProcessorConfig a =
        methodology::uniformConfig(doe::Level::High);
    const sim::ProcessorConfig b =
        methodology::uniformConfig(doe::Level::High);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(ProcessorConfigHash, FieldChangesChangeHash)
{
    const sim::ProcessorConfig base =
        methodology::uniformConfig(doe::Level::High);
    sim::ProcessorConfig tweaked = base;
    tweaked.robEntries += 1;
    EXPECT_NE(base, tweaked);
    EXPECT_NE(base.hash(), tweaked.hash());

    tweaked = base;
    tweaked.l2.latency += 1;
    EXPECT_NE(base, tweaked);
    EXPECT_NE(base.hash(), tweaked.hash());

    tweaked = base;
    tweaked.lsqRatio = 0.75;
    EXPECT_NE(base, tweaked);
    EXPECT_NE(base.hash(), tweaked.hash());

    tweaked = base;
    tweaked.l1iNextLinePrefetch = !base.l1iNextLinePrefetch;
    EXPECT_NE(base, tweaked);
    EXPECT_NE(base.hash(), tweaked.hash());
}

// ----- SimulationEngine -----

TEST(SimulationEngine, MatchesSimulateOnce)
{
    const std::vector<trace::WorkloadProfile> workloads = {
        trace::workloadByName("gzip"), trace::workloadByName("mcf")};
    const std::vector<exec::SimJob> jobs = smallBatch(workloads);

    exec::SimulationEngine engine(exec::EngineOptions{2, true});
    const std::vector<double> responses = engine.run(jobs);
    ASSERT_EQ(responses.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const double reference = methodology::simulateOnce(
            *jobs[i].workload, jobs[i].config, jobs[i].instructions,
            nullptr, jobs[i].warmupInstructions);
        EXPECT_EQ(responses[i], reference) << "job " << i;
    }
}

TEST(SimulationEngine, DeterministicAcrossThreadCounts)
{
    const std::vector<trace::WorkloadProfile> workloads = {
        trace::workloadByName("gzip"), trace::workloadByName("mcf")};
    const std::vector<exec::SimJob> jobs = smallBatch(workloads);

    exec::SimulationEngine serial(exec::EngineOptions{1, true});
    unsigned hw = std::thread::hardware_concurrency();
    if (hw < 2)
        hw = 8; // exercise the pool even on small CI boxes
    exec::SimulationEngine parallel(exec::EngineOptions{hw, true});

    EXPECT_EQ(serial.run(jobs), parallel.run(jobs));
}

TEST(SimulationEngine, CacheHitsReturnExactCachedValue)
{
    const std::vector<trace::WorkloadProfile> workloads = {
        trace::workloadByName("gzip")};
    const std::vector<exec::SimJob> jobs = smallBatch(workloads);

    exec::SimulationEngine engine(exec::EngineOptions{2, true});
    const std::vector<double> first = engine.run(jobs);
    EXPECT_EQ(engine.progress().snapshot().cacheHits, 0u);

    const std::vector<double> second = engine.run(jobs);
    EXPECT_EQ(first, second); // exact values, straight from the cache

    const exec::ProgressSnapshot snap = engine.progress().snapshot();
    EXPECT_EQ(snap.cacheHits, jobs.size());
    EXPECT_EQ(snap.runsTotal, 2 * jobs.size());
    EXPECT_EQ(snap.runsCompleted, 2 * jobs.size());
}

TEST(SimulationEngine, CacheDisabledNeverHits)
{
    const std::vector<trace::WorkloadProfile> workloads = {
        trace::workloadByName("gzip")};
    const std::vector<exec::SimJob> jobs = smallBatch(workloads);

    exec::SimulationEngine engine(exec::EngineOptions{1, false});
    const std::vector<double> first = engine.run(jobs);
    const std::vector<double> second = engine.run(jobs);
    EXPECT_EQ(first, second); // deterministic even without the cache
    EXPECT_EQ(engine.progress().snapshot().cacheHits, 0u);
    EXPECT_EQ(engine.cache().size(), 0u);
}

TEST(SimulationEngine, HookedJobWithoutIdentityBypassesCache)
{
    struct NoopHook : sim::ExecutionHook
    {
        bool intercept(const trace::Instruction &) override
        {
            return false;
        }
    };

    const std::vector<trace::WorkloadProfile> workloads = {
        trace::workloadByName("gzip")};
    std::vector<exec::SimJob> jobs = smallBatch(workloads);
    for (exec::SimJob &job : jobs)
        job.makeHook = []() { return std::make_unique<NoopHook>(); };

    exec::SimulationEngine engine(exec::EngineOptions{1, true});
    engine.run(jobs);
    engine.run(jobs);
    EXPECT_EQ(engine.progress().snapshot().cacheHits, 0u);
    EXPECT_EQ(engine.cache().size(), 0u);

    // The same jobs with a stable identity do participate.
    for (exec::SimJob &job : jobs)
        job.hookId = "noop";
    engine.run(jobs);
    engine.run(jobs);
    EXPECT_EQ(engine.progress().snapshot().cacheHits, jobs.size());
}

TEST(SimulationEngine, ProgressCountsSimulatedInstructions)
{
    const std::vector<trace::WorkloadProfile> workloads = {
        trace::workloadByName("gzip")};
    std::vector<exec::SimJob> jobs = smallBatch(workloads, 2000);
    for (exec::SimJob &job : jobs)
        job.warmupInstructions = 500;

    exec::SimulationEngine engine(exec::EngineOptions{1, true});
    engine.run(jobs);
    const exec::ProgressSnapshot snap = engine.progress().snapshot();
    EXPECT_EQ(snap.simulatedInstructions, jobs.size() * 2500u);
    EXPECT_GT(snap.wallSeconds, 0.0);
    EXPECT_NE(snap.toString().find("cache hits"), std::string::npos);

    engine.progress().reset();
    EXPECT_EQ(engine.progress().snapshot().runsTotal, 0u);
}

TEST(SimulationEngine, FailureNamesTheJobLabel)
{
    const std::vector<trace::WorkloadProfile> workloads = {
        trace::workloadByName("gzip")};
    std::vector<exec::SimJob> jobs = smallBatch(workloads);
    jobs[1].makeHook = []() -> std::unique_ptr<sim::ExecutionHook> {
        throw std::runtime_error("broken hook");
    };
    jobs[1].label = "gzip, design row 1";

    exec::SimulationEngine engine(exec::EngineOptions{2, true});
    try {
        engine.run(jobs);
        FAIL() << "expected the batch to fail";
    } catch (const std::runtime_error &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("gzip, design row 1"),
                  std::string::npos)
            << message;
        EXPECT_NE(message.find("broken hook"), std::string::npos)
            << message;
    }
}

TEST(SimulationEngine, EmptyBatchIsANoop)
{
    exec::SimulationEngine engine;
    EXPECT_TRUE(engine.run({}).empty());
    EXPECT_EQ(engine.progress().snapshot().runsCompleted, 0u);
}
