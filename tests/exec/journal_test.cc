#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "doe/design_matrix.hh"
#include "exec/engine.hh"
#include "exec/journal.hh"
#include "methodology/parameter_space.hh"
#include "trace/workloads.hh"

namespace doe = rigor::doe;
namespace exec = rigor::exec;
namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

namespace
{

/** Fresh per-test journal path under gtest's temp directory. */
std::string
journalPath(const std::string &name)
{
    const std::string path =
        std::string(::testing::TempDir()) + name;
    std::remove(path.c_str());
    return path;
}

exec::RunKey
keyFor(const std::string &workload, unsigned rob_entries,
       std::uint64_t instructions = 1000)
{
    exec::RunKey key;
    key.workload = workload;
    key.config = methodology::uniformConfig(doe::Level::Low);
    key.config.robEntries = rob_entries;
    key.instructions = instructions;
    return key;
}

/** A small batch of real jobs over distinct configurations. */
std::vector<exec::SimJob>
realBatch(const trace::WorkloadProfile &workload, std::size_t count)
{
    std::vector<exec::SimJob> jobs;
    for (std::size_t i = 0; i < count; ++i) {
        exec::SimJob job;
        job.workload = &workload;
        job.config = methodology::uniformConfig(doe::Level::Low);
        job.config.robEntries = static_cast<unsigned>(16 + 2 * i);
        job.instructions = 2000;
        job.label = workload.name + ", design row " + std::to_string(i);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

} // namespace

TEST(ResultJournal, RoundTripsResponsesBitExactly)
{
    const std::string path = journalPath("journal_roundtrip");
    const std::vector<double> values = {
        1.0, 1.0 / 3.0, 1234567890123.25, -0.0, 5e-324, 1e17 + 1};
    {
        exec::ResultJournal journal(path);
        for (std::size_t i = 0; i < values.size(); ++i)
            journal.append(keyFor("gzip", 16 + unsigned(i)),
                           values[i]);
        EXPECT_EQ(journal.size(), values.size());
    }
    exec::ResultJournal reopened(path);
    EXPECT_EQ(reopened.loadedRecords(), values.size());
    EXPECT_EQ(reopened.tornRecords(), 0u);
    for (std::size_t i = 0; i < values.size(); ++i) {
        const std::optional<double> hit =
            reopened.lookup(keyFor("gzip", 16 + unsigned(i)));
        ASSERT_TRUE(hit.has_value()) << "value " << i;
        EXPECT_EQ(*hit, values[i]) << "bit-exact round trip";
    }
    EXPECT_FALSE(reopened.lookup(keyFor("mcf", 16)).has_value());
}

TEST(ResultJournal, FirstRecordWinsOnDuplicateKeys)
{
    const std::string path = journalPath("journal_dup");
    exec::ResultJournal journal(path);
    journal.append(keyFor("gzip", 16), 111.0);
    journal.append(keyFor("gzip", 16), 222.0);
    EXPECT_EQ(journal.size(), 1u);
    EXPECT_EQ(*journal.lookup(keyFor("gzip", 16)), 111.0);
}

TEST(ResultJournal, ToleratesTornFinalRecord)
{
    const std::string path = journalPath("journal_torn");
    {
        exec::ResultJournal journal(path);
        journal.append(keyFor("gzip", 16), 1.0);
        journal.append(keyFor("gzip", 18), 2.0);
    }
    {
        // The on-disk state a mid-write crash leaves: a trailing
        // record prefix with no newline.
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out << "r deadbeef|1000|0|gzip| 3.";
    }
    exec::ResultJournal reopened(path);
    EXPECT_EQ(reopened.loadedRecords(), 2u);
    EXPECT_EQ(reopened.tornRecords(), 1u);
    EXPECT_EQ(*reopened.lookup(keyFor("gzip", 16)), 1.0);
    EXPECT_EQ(*reopened.lookup(keyFor("gzip", 18)), 2.0);

    // Appending after recovery still works and the file stays sane.
    reopened.append(keyFor("gzip", 20), 3.0);
    exec::ResultJournal third(path);
    // The torn prefix turns the next record's line into garbage; only
    // that one line is sacrificed, later records load fine.
    EXPECT_EQ(third.loadedRecords(), 2u);
    EXPECT_EQ(third.tornRecords(), 1u);
}

TEST(ResultJournal, RejectsForeignFilesAndBadIdentities)
{
    const std::string path = journalPath("journal_foreign");
    {
        std::ofstream out(path, std::ios::binary);
        out << "not a journal\n";
    }
    EXPECT_THROW(exec::ResultJournal{path}, std::runtime_error);

    exec::ResultJournal journal(journalPath("journal_badkey"));
    EXPECT_THROW(journal.append(keyFor("two words", 16), 1.0),
                 std::invalid_argument);
}

TEST(ResultJournal, CrashDrillPersistsExactlyTheCompletedAppends)
{
    const std::string path = journalPath("journal_crash");
    {
        exec::ResultJournal journal(path);
        journal.simulateCrashAfter(2);
        journal.append(keyFor("gzip", 16), 1.0);
        journal.append(keyFor("gzip", 18), 2.0);
        EXPECT_THROW(journal.append(keyFor("gzip", 20), 3.0),
                     exec::SimulatedCrash);
        // A "dead" journal keeps throwing; no further state changes.
        EXPECT_THROW(journal.append(keyFor("gzip", 22), 4.0),
                     exec::SimulatedCrash);
    }
    exec::ResultJournal reopened(path);
    EXPECT_EQ(reopened.loadedRecords(), 2u);
    EXPECT_EQ(reopened.tornRecords(), 1u); // the interrupted write
    EXPECT_TRUE(reopened.lookup(keyFor("gzip", 16)).has_value());
    EXPECT_FALSE(reopened.lookup(keyFor("gzip", 20)).has_value());
}

// ----- Engine integration: journal as second-level cache -----

TEST(ResultJournal, EngineReplaysJournaledRunsBitIdentically)
{
    const std::string path = journalPath("journal_engine");
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    const std::vector<exec::SimJob> jobs = realBatch(w, 6);

    std::vector<double> live;
    {
        exec::ResultJournal journal(path);
        exec::SimulationEngine engine(exec::EngineOptions{2, true});
        engine.setJournal(&journal);
        live = engine.run(jobs);
        EXPECT_EQ(journal.size(), jobs.size());
        EXPECT_EQ(engine.progress().snapshot().journalHits, 0u);
    }

    // A fresh process: new engine, new cache, same journal file.
    exec::ResultJournal journal(path);
    EXPECT_EQ(journal.loadedRecords(), jobs.size());
    exec::SimulationEngine engine(exec::EngineOptions{2, true});
    engine.setJournal(&journal);
    const std::vector<double> replayed = engine.run(jobs);

    EXPECT_EQ(replayed, live) << "journal replay must be bit-identical";
    const exec::ProgressSnapshot snap = engine.progress().snapshot();
    EXPECT_EQ(snap.journalHits, jobs.size());
    EXPECT_EQ(snap.simulatedInstructions, 0u)
        << "a fully journaled batch re-simulates nothing";

    // Replayed results were promoted into the run cache: a second
    // batch is served by the cache, not the journal.
    engine.run(jobs);
    const exec::ProgressSnapshot again = engine.progress().snapshot();
    EXPECT_EQ(again.journalHits, jobs.size());
    EXPECT_EQ(again.cacheHits, jobs.size());
}

TEST(ResultJournal, PartialJournalResumesOnlyRemainingJobs)
{
    const std::string path = journalPath("journal_partial");
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    const std::vector<exec::SimJob> jobs = realBatch(w, 6);

    // Journal only the first half (simulating an interrupted run).
    {
        exec::ResultJournal journal(path);
        exec::SimulationEngine engine(exec::EngineOptions{1, true});
        engine.setJournal(&journal);
        const std::vector<exec::SimJob> half(jobs.begin(),
                                             jobs.begin() + 3);
        engine.run(half);
    }

    exec::ResultJournal journal(path);
    exec::SimulationEngine engine(exec::EngineOptions{1, true});
    engine.setJournal(&journal);
    engine.run(jobs);
    const exec::ProgressSnapshot snap = engine.progress().snapshot();
    EXPECT_EQ(snap.journalHits, 3u);
    EXPECT_EQ(snap.simulatedInstructions, 3u * 2000u)
        << "only the unjournaled half simulates";
    EXPECT_EQ(journal.size(), jobs.size())
        << "newly simulated runs were appended for the next resume";
}

// ----- Directory-entry durability of a fresh journal -----

TEST(ResultJournal, FsyncParentDirectoryHandlesRealAndBogusPaths)
{
    // A real directory (gtest's temp dir) syncs fine.
    EXPECT_TRUE(exec::fsyncParentDirectory(journalPath("fsync_probe")));
    // A relative bare filename syncs ".".
    EXPECT_TRUE(exec::fsyncParentDirectory("bare_filename.jsonl"));
    // A missing parent directory is reported, not fatal.
    EXPECT_FALSE(exec::fsyncParentDirectory(
        "/nonexistent-rigor-dir-12345/journal.bin"));
}

TEST(ResultJournal, FreshJournalDurablyCreatesItsDirectoryEntry)
{
    // Regression shape: creating a journal must leave a loadable,
    // version-headed file behind even before the first append — the
    // constructor fsyncs the header *and* the parent directory so a
    // crash immediately after creation cannot lose the name.
    const std::string path = journalPath("journal_fresh_durable");
    {
        exec::ResultJournal journal(path);
        EXPECT_EQ(journal.size(), 0u);
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "journal file vanished after creation";
    exec::ResultJournal reopened(path);
    EXPECT_EQ(reopened.loadedRecords(), 0u);
    EXPECT_EQ(reopened.tornRecords(), 0u);
}
