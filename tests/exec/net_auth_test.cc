/**
 * The hand-written crypto under the fleet handshake, validated
 * against published vectors: SHA-256 against the FIPS 180-4 / RFC
 * 6234 examples, HMAC-SHA256 against the RFC 4231 test cases
 * (including the >64-byte key case that exercises the key-hashing
 * path). A home-grown digest that merely "looks random" is worthless
 * as an authenticator; matching the vectors is the whole guarantee.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "exec/net/auth.hh"

namespace net = rigor::exec::net;

namespace
{

std::string
sha256Hex(const std::string &message)
{
    return net::toHex(net::sha256(message.data(), message.size()));
}

std::string
hmacHex(const std::string &key, const std::string &message)
{
    return net::toHex(
        net::hmacSha256(key, message.data(), message.size()));
}

} // namespace

TEST(NetAuth, Sha256MatchesFipsVectors)
{
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(sha256Hex("abcdbcdecdefdefgefghfghighijhijk"
                        "ijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
    // One-million 'a's: exercises many compression rounds and the
    // length-in-bits tail across block boundaries.
    EXPECT_EQ(sha256Hex(std::string(1000000, 'a')),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(NetAuth, HmacSha256MatchesRfc4231Vectors)
{
    // RFC 4231 test case 1.
    EXPECT_EQ(hmacHex(std::string(20, '\x0b'), "Hi There"),
              "b0344c61d8db38535ca8afceaf0bf12b"
              "881dc200c9833da726e9376c2e32cff7");
    // Test case 2: a key shorter than the block size.
    EXPECT_EQ(hmacHex("Jefe", "what do ya want for nothing?"),
              "5bdcc146bf60754e6a042426089575c7"
              "5a003f089d2739839dec58b964ec3843");
    // Test case 3: 0xaa*20 key, 0xdd*50 data.
    EXPECT_EQ(hmacHex(std::string(20, '\xaa'),
                      std::string(50, '\xdd')),
              "773ea91e36800e46854db8ebd09181a7"
              "2959098b3ef8c122d9635514ced565fe");
    // Test case 6: a 131-byte key, longer than the SHA-256 block —
    // HMAC must hash the key down first.
    EXPECT_EQ(hmacHex(std::string(131, '\xaa'),
                      "Test Using Larger Than Block-Size Key - "
                      "Hash Key First"),
              "60e431591ee0b67f0d8a26aacbf5b77f"
              "8e0bc6213728c5140546040f0ee37f54");
    // Test case 7: long key and long data together.
    EXPECT_EQ(hmacHex(std::string(131, '\xaa'),
                      "This is a test using a larger than "
                      "block-size key and a larger than "
                      "block-size data. The key needs to be "
                      "hashed before being used by the HMAC "
                      "algorithm."),
              "9b09ffa71b942fcb27635fbcd5b0e944"
              "bfdc63644f0713938a7f51535c3a35e2");
}

TEST(NetAuth, AuthProofCoversEveryFieldOfTheChallenge)
{
    const std::string base =
        net::authProof("token", "nonce", "session", "worker");
    EXPECT_EQ(base.size(), 64u);
    // Any field changing changes the proof: the HMAC binds the
    // token, the fresh nonce, the session id, and the worker name.
    EXPECT_NE(base,
              net::authProof("other", "nonce", "session", "worker"));
    EXPECT_NE(base,
              net::authProof("token", "nonc2", "session", "worker"));
    EXPECT_NE(base,
              net::authProof("token", "nonce", "sessio2", "worker"));
    EXPECT_NE(base,
              net::authProof("token", "nonce", "session", "worke2"));
    // Deterministic: both ends compute the same proof.
    EXPECT_EQ(base,
              net::authProof("token", "nonce", "session", "worker"));
}

TEST(NetAuth, ConstantTimeEqualsComparesCorrectly)
{
    EXPECT_TRUE(net::constantTimeEquals("", ""));
    EXPECT_TRUE(net::constantTimeEquals("abc", "abc"));
    EXPECT_FALSE(net::constantTimeEquals("abc", "abd"));
    EXPECT_FALSE(net::constantTimeEquals("abc", "ab"));
    EXPECT_FALSE(net::constantTimeEquals("", "x"));
}

TEST(NetAuth, LoadAuthTokenStripsTrailingWhitespaceOnly)
{
    const std::string path = ::testing::TempDir() + "fleet.token";
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "  s3cret token\n";
    }
    // Leading spaces are part of the token; the trailing newline
    // (from `echo secret > file`) is not.
    EXPECT_EQ(net::loadAuthToken(path), "  s3cret token");
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "\n \t \n";
    }
    EXPECT_THROW(net::loadAuthToken(path), std::runtime_error);
    std::remove(path.c_str());
    EXPECT_THROW(net::loadAuthToken(path), std::runtime_error);
}

TEST(NetAuth, RandomNonceIsFreshAndWellFormed)
{
    std::set<std::string> seen;
    for (int i = 0; i < 64; ++i) {
        const std::string nonce = net::randomNonce();
        ASSERT_EQ(nonce.size(), 32u);
        for (char c : nonce)
            ASSERT_TRUE((c >= '0' && c <= '9') ||
                        (c >= 'a' && c <= 'f'))
                << nonce;
        seen.insert(nonce);
    }
    // 64 draws from a 128-bit space: any collision means the nonce
    // stream is broken (and replay defense with it).
    EXPECT_EQ(seen.size(), 64u);
}
