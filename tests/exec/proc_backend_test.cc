#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "exec/engine.hh"
#include "exec/fault_injection.hh"
#include "exec/proc/protocol.hh"
#include "exec/proc/worker_pool.hh"
#include "methodology/parameter_space.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"
#include "trace/workloads.hh"

namespace doe = rigor::doe;
namespace exec = rigor::exec;
namespace obs = rigor::obs;
namespace proc = rigor::exec::proc;
namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

// Sanitizers change how a sandboxed crash surfaces: ASan intercepts
// SIGSEGV (the child exits with a report instead of dying signaled)
// and its shadow memory is incompatible with RLIMIT_AS. Tests that
// assert the *un-instrumented* kernel-level behavior skip under them;
// the taxonomy itself is still covered by the abort/hang tests.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RIGOR_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RIGOR_UNDER_SANITIZER 1
#endif
#endif

namespace
{

/** A distinct, cacheable sandbox job. */
exec::SimJob
sandboxJob(const trace::WorkloadProfile &workload, std::size_t index,
           const std::string &label)
{
    exec::SimJob job;
    job.workload = &workload;
    job.config = methodology::uniformConfig(doe::Level::Low);
    job.config.robEntries = static_cast<unsigned>(16 + index);
    job.instructions = 100;
    job.label = label;
    return job;
}

exec::AttemptContext
attempt(std::size_t job_index, unsigned attempt_number = 1)
{
    exec::AttemptContext ctx;
    ctx.jobIndex = job_index;
    ctx.attempt = attempt_number;
    return ctx;
}

/**
 * The in-child executor for the drills below, keyed entirely by the
 * job's label (shipped over the wire, so this proves label fidelity
 * too). "ok" labels return a jobIndex-derived value.
 */
exec::SimulateFn
drillStub()
{
    return [](const exec::SimJob &job,
              const exec::AttemptContext &ctx) -> double {
        if (job.label == "throw-transient")
            throw exec::TransientFault("injected transient");
        if (job.label == "throw-deadline")
            throw exec::DeadlineExceeded("injected deadline");
        if (job.label == "throw-resource")
            throw exec::ResourceExhausted("injected resource");
        if (job.label == "throw-permanent")
            throw std::runtime_error("injected permanent");
        if (job.label == "crash-abort")
            std::abort();
        if (job.label == "crash-segv") {
            volatile int *null = nullptr;
            *null = 1; // SIGSEGV
        }
        if (job.label == "busy-loop" ||
            (job.label == "hang-once" && ctx.attempt == 1)) {
            volatile std::uint64_t sink = 0;
            for (;;)
                sink = sink + 1;
        }
        if (job.label == "alloc-bomb") {
            std::vector<std::unique_ptr<char[]>> hoard;
            for (;;) {
                constexpr std::size_t chunk = 16u << 20;
                hoard.push_back(std::make_unique<char[]>(chunk));
                for (std::size_t i = 0; i < chunk; i += 4096)
                    hoard.back()[i] = 1;
            }
        }
        return 1000.0 + static_cast<double>(ctx.jobIndex);
    };
}

proc::ProcWorkerPool::Options
poolOptions(unsigned workers)
{
    proc::ProcWorkerPool::Options options;
    options.workers = workers;
    options.simulate = drillStub();
    // A fast heartbeat keeps watchdog tests quick.
    options.heartbeat = std::chrono::milliseconds(5);
    return options;
}

} // namespace

// ----- Wire protocol -----

TEST(ProcProtocol, JobRequestRoundTripsEveryField)
{
    proc::JobRequest request;
    request.profile = trace::workloadByName("mcf");
    request.config = methodology::uniformConfig(doe::Level::High);
    request.instructions = 12345;
    request.warmupInstructions = 678;
    request.hasHook = true;
    request.label = "mcf, design row 17";
    request.jobIndex = 105;
    request.attempt = 3;
    request.deadlineBudget = std::chrono::milliseconds(250);

    proc::Writer writer;
    request.serialize(writer);
    proc::Reader reader(writer.bytes());
    const proc::JobRequest got = proc::JobRequest::deserialize(reader);
    EXPECT_TRUE(reader.done()) << "payload must be fully consumed";

    EXPECT_EQ(got.profile.name, "mcf");
    EXPECT_EQ(got.profile.isFloatingPoint,
              request.profile.isFloatingPoint);
    EXPECT_DOUBLE_EQ(got.profile.fracLoad, request.profile.fracLoad);
    EXPECT_EQ(got.config.hash(), request.config.hash())
        << "the run-cache identity must survive the wire";
    EXPECT_EQ(got.instructions, 12345u);
    EXPECT_EQ(got.warmupInstructions, 678u);
    EXPECT_TRUE(got.hasHook);
    EXPECT_EQ(got.label, "mcf, design row 17");
    EXPECT_EQ(got.jobIndex, 105u);
    EXPECT_EQ(got.attempt, 3u);
    EXPECT_EQ(got.deadlineBudget.count(), 250);
}

TEST(ProcProtocol, JobResultRoundTripsAndRejectsTruncation)
{
    proc::JobResult result;
    result.status = proc::ResultStatus::Deadline;
    result.cycles = 1234.5;
    result.wallSeconds = 0.125;
    result.message = "attempt deadline of 50 ms exceeded";

    proc::Writer writer;
    result.serialize(writer);
    proc::Reader reader(writer.bytes());
    const proc::JobResult got = proc::JobResult::deserialize(reader);
    EXPECT_EQ(got.status, proc::ResultStatus::Deadline);
    EXPECT_DOUBLE_EQ(got.cycles, 1234.5);
    EXPECT_DOUBLE_EQ(got.wallSeconds, 0.125);
    EXPECT_EQ(got.message, result.message);

    // A payload cut mid-field is a torn frame, not garbage data.
    std::vector<std::byte> torn(writer.bytes().begin(),
                                writer.bytes().end() - 4);
    proc::Reader torn_reader(torn);
    EXPECT_THROW(proc::JobResult::deserialize(torn_reader),
                 proc::ProtocolError);
}

// ----- The pool: happy path -----

TEST(ProcWorkerPool, ExecutesJobsInsideSandboxWorkers)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    proc::ProcWorkerPool pool(poolOptions(2));
    EXPECT_EQ(pool.workers(), 2u);

    for (std::size_t i = 0; i < 8; ++i) {
        const exec::SimJob job = sandboxJob(w, i, "ok");
        EXPECT_DOUBLE_EQ(pool.execute(job, attempt(i)),
                         1000.0 + static_cast<double>(i));
    }
    EXPECT_EQ(pool.respawns(), 0u);
    EXPECT_EQ(pool.sigkills(), 0u);
    EXPECT_EQ(pool.oomKills(), 0u);
}

TEST(ProcWorkerPool, ChildThrownFaultsKeepTheirTaxonomy)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    proc::ProcWorkerPool pool(poolOptions(1));

    EXPECT_THROW(
        pool.execute(sandboxJob(w, 0, "throw-transient"), attempt(0)),
        exec::TransientFault);
    EXPECT_THROW(
        pool.execute(sandboxJob(w, 1, "throw-deadline"), attempt(1)),
        exec::DeadlineExceeded);
    EXPECT_THROW(
        pool.execute(sandboxJob(w, 2, "throw-resource"), attempt(2)),
        exec::ResourceExhausted);
    EXPECT_THROW(
        pool.execute(sandboxJob(w, 3, "throw-permanent"), attempt(3)),
        exec::PermanentFault);
    // Clean throws never kill the worker: no respawns.
    EXPECT_EQ(pool.respawns(), 0u);
    EXPECT_DOUBLE_EQ(pool.execute(sandboxJob(w, 4, "ok"), attempt(4)),
                     1004.0);
}

// ----- Crash classification -----

TEST(ProcWorkerPool, AbortClassifiedAsPermanentWithRunKey)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    proc::ProcWorkerPool pool(poolOptions(1));

    const exec::SimJob job = sandboxJob(w, 0, "crash-abort");
    try {
        pool.execute(job, attempt(0));
        FAIL() << "expected PermanentFault";
    } catch (const exec::PermanentFault &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("SIGABRT"), std::string::npos) << what;
        EXPECT_NE(what.find("crash-abort"), std::string::npos) << what;
        EXPECT_NE(what.find("run key"), std::string::npos)
            << "the quarantined cell must be traceable: " << what;
    }
    // The dead worker was replaced before the fault was thrown:
    // the pool still serves.
    EXPECT_EQ(pool.respawns(), 1u);
    EXPECT_DOUBLE_EQ(pool.execute(sandboxJob(w, 1, "ok"), attempt(1)),
                     1001.0);
}

TEST(ProcWorkerPool, SegfaultClassifiedAsPermanentCrash)
{
#ifdef RIGOR_UNDER_SANITIZER
    GTEST_SKIP() << "sanitizers intercept SIGSEGV in the child";
#else
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    proc::ProcWorkerPool pool(poolOptions(1));

    try {
        pool.execute(sandboxJob(w, 0, "crash-segv"), attempt(0));
        FAIL() << "expected PermanentFault";
    } catch (const exec::PermanentFault &e) {
        EXPECT_NE(std::string(e.what()).find("SIGSEGV"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_EQ(pool.respawns(), 1u);
    EXPECT_DOUBLE_EQ(pool.execute(sandboxJob(w, 1, "ok"), attempt(1)),
                     1001.0);
#endif
}

TEST(ProcWorkerPool, WatchdogSigkillsNonCooperativeHang)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    proc::ProcWorkerPool::Options options = poolOptions(1);
    options.hardDeadline = std::chrono::milliseconds(100);
    proc::ProcWorkerPool pool(std::move(options));

    try {
        pool.execute(sandboxJob(w, 0, "busy-loop"), attempt(0));
        FAIL() << "expected DeadlineExceeded";
    } catch (const exec::DeadlineExceeded &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("hard deadline"), std::string::npos)
            << what;
        EXPECT_NE(what.find("SIGKILL"), std::string::npos) << what;
    }
    EXPECT_EQ(pool.sigkills(), 1u);
    EXPECT_EQ(pool.respawns(), 1u);
    EXPECT_EQ(pool.oomKills(), 0u)
        << "a watchdog SIGKILL must not be misread as an OOM kill";
    EXPECT_DOUBLE_EQ(pool.execute(sandboxJob(w, 1, "ok"), attempt(1)),
                     1001.0);
}

TEST(ProcWorkerPool, MemoryLimitClassifiedAsResourceExhausted)
{
#ifdef RIGOR_UNDER_SANITIZER
    GTEST_SKIP() << "RLIMIT_AS is incompatible with sanitizer shadow";
#else
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    proc::ProcWorkerPool::Options options = poolOptions(1);
    options.memLimitMb = 512;
    proc::ProcWorkerPool pool(std::move(options));

    try {
        pool.execute(sandboxJob(w, 0, "alloc-bomb"), attempt(0));
        FAIL() << "expected ResourceExhausted";
    } catch (const exec::ResourceExhausted &e) {
        EXPECT_NE(std::string(e.what()).find("memory limit"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_EQ(pool.oomKills(), 1u);
    EXPECT_EQ(pool.respawns(), 1u);
    EXPECT_DOUBLE_EQ(pool.execute(sandboxJob(w, 1, "ok"), attempt(1)),
                     1001.0);
#endif
}

// ----- Through the engine: retries heal, quarantine is per-cell -----

TEST(ProcWorkerPool, EngineRetryHealsTrueHangViaWatchdog)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    proc::ProcWorkerPool::Options options = poolOptions(1);
    options.hardDeadline = std::chrono::milliseconds(100);
    proc::ProcWorkerPool pool(std::move(options));

    exec::EngineOptions engine_opts;
    engine_opts.threads = 1;
    engine_opts.simulate = pool.simulateFn();
    exec::SimulationEngine engine(engine_opts);

    // The job hangs non-cooperatively on attempt 1 only: the watchdog
    // converts the hang into a retryable timeout and attempt 2 heals.
    std::vector<exec::SimJob> jobs;
    jobs.push_back(sandboxJob(w, 0, "hang-once"));
    exec::FaultPolicy policy;
    policy.maxAttempts = 2;
    const exec::BatchResult batch = engine.run(jobs, policy);
    ASSERT_TRUE(batch.complete());
    EXPECT_DOUBLE_EQ(batch.responses[0], 1000.0);
    EXPECT_EQ(pool.sigkills(), 1u);
    EXPECT_EQ(engine.progress().snapshot().retries, 1u);
}

TEST(ProcWorkerPool, EngineQuarantinesOnlyTheCrashedCell)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    proc::ProcWorkerPool pool(poolOptions(2));

    exec::EngineOptions engine_opts;
    engine_opts.threads = 2;
    engine_opts.simulate = pool.simulateFn();
    exec::SimulationEngine engine(engine_opts);

    std::vector<exec::SimJob> jobs;
    for (std::size_t i = 0; i < 8; ++i)
        jobs.push_back(
            sandboxJob(w, i, i == 3 ? "crash-abort" : "ok"));

    exec::FaultPolicy policy;
    policy.collectFailures = true;
    const exec::BatchResult batch = engine.run(jobs, policy);

    ASSERT_EQ(batch.failures.size(), 1u);
    EXPECT_EQ(batch.failures[0].jobIndex, 3u);
    EXPECT_EQ(batch.failures[0].kind, exec::FailureKind::Permanent);
    for (std::size_t i = 0; i < 8; ++i) {
        if (i == 3) {
            EXPECT_TRUE(std::isnan(batch.responses[i]));
        } else {
            EXPECT_DOUBLE_EQ(batch.responses[i],
                             1000.0 + static_cast<double>(i));
        }
    }
}

TEST(ProcWorkerPool, InjectedProcessDrillsFireInsideTheSandbox)
{
    // The campaign wires FaultInjector *around* the real executor and
    // the pool captures that wrapper as the in-child executor — so a
    // process-level drill takes down a sandbox worker, not the test.
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    exec::FaultInjector injector;
    injector.addLabelFault("drill-me", 1, exec::FaultKind::Abort);

    proc::ProcWorkerPool::Options options;
    options.workers = 1;
    options.heartbeat = std::chrono::milliseconds(5);
    options.simulate = injector.wrap(
        [](const exec::SimJob &, const exec::AttemptContext &ctx) {
            return 2000.0 + static_cast<double>(ctx.jobIndex);
        });
    proc::ProcWorkerPool pool(std::move(options));

    EXPECT_THROW(pool.execute(sandboxJob(w, 0, "drill-me"), attempt(0)),
                 exec::PermanentFault);
    EXPECT_EQ(pool.respawns(), 1u);
    EXPECT_DOUBLE_EQ(pool.execute(sandboxJob(w, 1, "ok"), attempt(1)),
                     2001.0);
}

// ----- Observability: counters and worker-lifetime spans -----

TEST(ProcWorkerPool, SupervisionCountersLandInTheMetricsRegistry)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");
    proc::ProcWorkerPool::Options options = poolOptions(1);
    options.hardDeadline = std::chrono::milliseconds(100);
    proc::ProcWorkerPool pool(std::move(options));

    obs::MetricsRegistry metrics;
    pool.setMetrics(&metrics);

    EXPECT_THROW(pool.execute(sandboxJob(w, 0, "crash-abort"),
                              attempt(0)),
                 exec::PermanentFault);
    EXPECT_THROW(pool.execute(sandboxJob(w, 1, "busy-loop"),
                              attempt(1)),
                 exec::DeadlineExceeded);

    EXPECT_EQ(metrics.counter("engine.proc.respawns").value(), 2u);
    EXPECT_EQ(metrics.counter("engine.proc.sigkills").value(), 1u);
    EXPECT_EQ(metrics.counter("engine.proc.oom_kills").value(), 0u);
}

TEST(ProcWorkerPool, WorkerLifetimeSpansAreGoldenUnderSteppedClock)
{
    const trace::WorkloadProfile &w = trace::workloadByName("gzip");

    // Stepping clock: every tick advances 100 µs, so the spans'
    // timestamps are fully determined by the call sequence —
    //   tick 1 (100): setTraceWriter backfills the worker's spawnTs
    //   tick 2 (200): crash closes the first lifetime span
    //   tick 3 (300): the respawn stamps the replacement's spawnTs
    //   tick 4 (400): pool shutdown closes the replacement's span
    std::uint64_t t = 0;
    obs::TraceWriter golden([&t] { return t += 100; });
    {
        proc::ProcWorkerPool pool(poolOptions(1));
        pool.setTraceWriter(&golden);
        EXPECT_DOUBLE_EQ(
            pool.execute(sandboxJob(w, 0, "ok"), attempt(0)), 1000.0);
        EXPECT_THROW(pool.execute(sandboxJob(w, 1, "crash-abort"),
                                  attempt(1)),
                     exec::PermanentFault);
    }

    ASSERT_EQ(golden.eventCount(), 2u);
    const std::string json = golden.toJson();
    // First lifetime: served one job, died crashing on the second.
    EXPECT_NE(json.find("\"name\":\"proc.worker\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"ts\":100,\"dur\":100"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"jobs\":\"1\""), std::string::npos) << json;
    EXPECT_NE(json.find("signal:SIGABRT"), std::string::npos) << json;
    // Replacement lifetime: idle until the orderly shutdown.
    EXPECT_NE(json.find("\"ts\":300,\"dur\":100"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"jobs\":\"0\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"exit\":\"shutdown\""), std::string::npos)
        << json;
}
