#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/preflight.hh"
#include "exec/engine.hh"
#include "exec/journal.hh"
#include "exec/net/controller.hh"
#include "exec/net/remote_worker.hh"
#include "methodology/pb_experiment.hh"
#include "methodology/rank_table.hh"
#include "obs/manifest.hh"
#include "trace/workloads.hh"

namespace exec = rigor::exec;
namespace net = rigor::exec::net;
namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

namespace
{

std::vector<trace::WorkloadProfile>
twoWorkloads()
{
    return {trace::workloadByName("gzip"),
            trace::workloadByName("mcf")};
}

std::string
journalPath(const std::string &name)
{
    const std::string path =
        std::string(::testing::TempDir()) + name;
    std::remove(path.c_str());
    return path;
}

/** Local worker threads standing in for remote machines. Workers run
 *  the real simulator, so responses must be bit-identical to the
 *  in-process run. They return when the controller says Shutdown —
 *  join() only after the controller is destroyed. */
struct Fleet
{
    std::vector<std::thread> threads;

    void start(std::uint16_t port, const std::string &name)
    {
        threads.emplace_back([port, name] {
            net::RemoteWorkerOptions opts;
            opts.port = port;
            opts.name = name;
            const net::RemoteWorkerSession session =
                net::runRemoteWorker(opts);
            EXPECT_EQ(session.end, net::SessionEnd::Shutdown)
                << session.error;
        });
    }

    void join()
    {
        for (std::thread &t : threads)
            t.join();
    }
};

methodology::PbExperimentOptions
remoteOptions(net::CampaignController &controller, unsigned workers)
{
    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 2000;
    opts.campaign.threads = 2;
    opts.campaign.isolation = exec::IsolationMode::Remote;
    opts.campaign.netController = &controller;
    opts.campaign.remoteWorkers = workers;
    return opts;
}

} // namespace

// ----- The acceptance bar: distributed == single-process, bitwise --

TEST(RemoteCampaign, FleetCampaignMatchesThreadIsolationBitIdentically)
{
    const auto workloads = twoWorkloads();

    // Reference: the same campaign in-process, thread isolation.
    methodology::PbExperimentOptions ref_opts;
    ref_opts.instructionsPerRun = 2000;
    ref_opts.campaign.threads = 2;
    const methodology::PbExperimentResult reference =
        methodology::runPbExperiment(workloads, ref_opts);

    auto controller = std::make_unique<net::CampaignController>();
    Fleet fleet;
    fleet.start(controller->port(), "w1");
    fleet.start(controller->port(), "w2");
    ASSERT_TRUE(controller->waitForWorkers(
        2, std::chrono::milliseconds(10000)));

    const methodology::PbExperimentResult result =
        methodology::runPbExperiment(
            workloads, remoteOptions(*controller, 2));

    // Every response crossed the TCP fleet and came back bitwise
    // equal; the derived rank table is byte-for-byte the same.
    EXPECT_EQ(result.responses, reference.responses);
    EXPECT_EQ(methodology::formatRankTable(result.summaries,
                                           result.benchmarks),
              methodology::formatRankTable(reference.summaries,
                                           reference.benchmarks));
    EXPECT_GE(controller->leasesGranted(), 176u);
    EXPECT_EQ(controller->leasesReclaimed(), 0u);

    controller.reset(); // Shutdown to the fleet
    fleet.join();
}

// ----- Controller kill-and-resume over the journal -----

TEST(RemoteCampaign, ControllerCrashResumesBitIdenticallyOverJournal)
{
    const auto workloads = twoWorkloads();

    methodology::PbExperimentOptions ref_opts;
    ref_opts.instructionsPerRun = 2000;
    ref_opts.campaign.threads = 2;
    const methodology::PbExperimentResult reference =
        methodology::runPbExperiment(workloads, ref_opts);

    const std::string path = journalPath("remote_campaign_resume");

    // The controller process "dies" mid-campaign: the journal crash
    // drill fires after 40 fsync'd appends (journaling stays on the
    // controller side; workers only simulate).
    {
        auto controller =
            std::make_unique<net::CampaignController>();
        Fleet fleet;
        fleet.start(controller->port(), "w1");
        fleet.start(controller->port(), "w2");
        ASSERT_TRUE(controller->waitForWorkers(
            2, std::chrono::milliseconds(10000)));

        exec::ResultJournal journal(path);
        journal.simulateCrashAfter(40);
        methodology::PbExperimentOptions crash_opts =
            remoteOptions(*controller, 2);
        crash_opts.campaign.journal = &journal;
        EXPECT_THROW(
            methodology::runPbExperiment(workloads, crash_opts),
            exec::SimulatedCrash);

        controller.reset();
        fleet.join();
    }

    // A new controller and a new fleet resume from the journal: the
    // 40 persisted cells replay from disk, the rest are re-leased to
    // the workers, and no cell runs twice.
    auto controller = std::make_unique<net::CampaignController>();
    Fleet fleet;
    fleet.start(controller->port(), "w1");
    fleet.start(controller->port(), "w2");
    ASSERT_TRUE(controller->waitForWorkers(
        2, std::chrono::milliseconds(10000)));

    exec::ResultJournal journal(path);
    EXPECT_EQ(journal.loadedRecords(), 40u);
    exec::SimulationEngine engine(exec::EngineOptions{2, true});
    rigor::obs::CampaignManifest manifest;
    methodology::PbExperimentOptions resume_opts =
        remoteOptions(*controller, 2);
    resume_opts.campaign.journal = &journal;
    resume_opts.campaign.engine = &engine;
    resume_opts.campaign.manifest = &manifest;
    const methodology::PbExperimentResult resumed =
        methodology::runPbExperiment(workloads, resume_opts);

    EXPECT_EQ(engine.progress().snapshot().journalHits, 40u);
    EXPECT_EQ(resumed.responses, reference.responses);
    EXPECT_EQ(methodology::formatRankTable(resumed.summaries,
                                           resumed.benchmarks),
              methodology::formatRankTable(reference.summaries,
                                           reference.benchmarks));

    // Manifest provenance: every freshly simulated cell names the
    // worker that served it; journal replays carry no host.
    std::istringstream lines(manifest.toJsonl());
    std::string line;
    std::size_t simulated = 0;
    std::size_t replayed = 0;
    while (std::getline(lines, line)) {
        if (line.find("\"type\":\"cell\"") == std::string::npos)
            continue;
        if (line.find("\"source\":\"journal\"") != std::string::npos) {
            ++replayed;
            EXPECT_EQ(line.find("\"host\""), std::string::npos)
                << line;
        } else if (line.find("\"source\":\"simulated\"") !=
                   std::string::npos) {
            ++simulated;
            EXPECT_TRUE(
                line.find("\"host\":\"w1\"") != std::string::npos ||
                line.find("\"host\":\"w2\"") != std::string::npos)
                << line;
        }
    }
    EXPECT_EQ(replayed, 40u);
    EXPECT_EQ(simulated, 176u - 40u);

    controller.reset();
    fleet.join();
}

// ----- Guard rails -----

TEST(RemoteCampaign, RemoteIsolationWithoutControllerIsRejected)
{
    const auto workloads = twoWorkloads();
    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 2000;
    opts.campaign.isolation = exec::IsolationMode::Remote;
    opts.campaign.remoteWorkers = 2; // plan is sane; wiring is not
    EXPECT_THROW(methodology::runPbExperiment(workloads, opts),
                 std::logic_error);
}

TEST(RemoteCampaign, PreflightRejectsARemotePlanWithNoWorkers)
{
    const auto workloads = twoWorkloads();
    net::CampaignController controller;
    methodology::PbExperimentOptions opts =
        remoteOptions(controller, 0);
    EXPECT_THROW(methodology::runPbExperiment(workloads, opts),
                 rigor::check::PreflightError);
}
