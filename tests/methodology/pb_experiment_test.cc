#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "enhance/precompute.hh"
#include "exec/engine.hh"
#include "methodology/parameter_space.hh"
#include "methodology/pb_experiment.hh"
#include "trace/workloads.hh"

namespace doe = rigor::doe;
namespace enhance = rigor::enhance;
namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

namespace
{

/** Two cheap workloads keep this suite fast (2 x 88 runs). */
std::vector<trace::WorkloadProfile>
twoWorkloads()
{
    return {trace::workloadByName("gzip"),
            trace::workloadByName("mcf")};
}

methodology::PbExperimentOptions
fastOptions()
{
    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 8000;
    return opts;
}

} // namespace

TEST(PbExperiment, StructureOfResult)
{
    const auto workloads = twoWorkloads();
    const methodology::PbExperimentResult r =
        methodology::runPbExperiment(workloads, fastOptions());

    EXPECT_EQ(r.design.numRows(), 88u);
    EXPECT_EQ(r.design.numColumns(), 43u);
    ASSERT_EQ(r.benchmarks.size(), 2u);
    ASSERT_EQ(r.responses.size(), 2u);
    for (const auto &resp : r.responses) {
        EXPECT_EQ(resp.size(), 88u);
        for (double cycles : resp)
            EXPECT_GT(cycles, 0.0);
    }
    ASSERT_EQ(r.effects.size(), 2u);
    EXPECT_EQ(r.effects[0].size(), methodology::numFactors);
    ASSERT_EQ(r.summaries.size(), methodology::numFactors);
}

TEST(PbExperiment, RanksArePermutations)
{
    const auto workloads = twoWorkloads();
    const methodology::PbExperimentResult r =
        methodology::runPbExperiment(workloads, fastOptions());
    for (const std::vector<unsigned> &ranks : r.ranks) {
        std::set<unsigned> seen(ranks.begin(), ranks.end());
        EXPECT_EQ(seen.size(), 43u);
        EXPECT_EQ(*seen.begin(), 1u);
        EXPECT_EQ(*seen.rbegin(), 43u);
    }
}

TEST(PbExperiment, SummariesSortedAscending)
{
    const auto workloads = twoWorkloads();
    const methodology::PbExperimentResult r =
        methodology::runPbExperiment(workloads, fastOptions());
    for (std::size_t i = 1; i < r.summaries.size(); ++i)
        EXPECT_LE(r.summaries[i - 1].sumOfRanks,
                  r.summaries[i].sumOfRanks);
}

TEST(PbExperiment, DeterministicAcrossThreadCounts)
{
    const auto workloads = twoWorkloads();
    methodology::PbExperimentOptions serial = fastOptions();
    serial.campaign.threads = 1;
    methodology::PbExperimentOptions parallel = fastOptions();
    parallel.campaign.threads = std::max(
        2u, std::thread::hardware_concurrency());
    const auto a = methodology::runPbExperiment(workloads, serial);
    const auto b = methodology::runPbExperiment(workloads, parallel);
    EXPECT_EQ(a.responses, b.responses);
}

TEST(PbExperiment, SharedEngineServesRepeatRunsFromCache)
{
    const auto workloads = twoWorkloads();
    rigor::exec::SimulationEngine engine(
        rigor::exec::EngineOptions{2, true});
    methodology::PbExperimentOptions opts = fastOptions();
    opts.campaign.engine = &engine;

    const auto first = methodology::runPbExperiment(workloads, opts);
    EXPECT_EQ(engine.progress().snapshot().cacheHits, 0u);

    // The verbatim rerun — what the enhancement analysis does for its
    // base leg — must be served entirely from the cache, bit-exact.
    const auto second = methodology::runPbExperiment(workloads, opts);
    EXPECT_EQ(first.responses, second.responses);
    EXPECT_EQ(engine.progress().snapshot().cacheHits,
              2 * 88u); // 2 workloads x 88 design rows
}

TEST(PbExperiment, FailureNamesBenchmarkAndDesignRow)
{
    const auto workloads = twoWorkloads();
    methodology::PbExperimentOptions opts = fastOptions();
    opts.hookFactory = [](const trace::WorkloadProfile &profile)
        -> std::unique_ptr<rigor::sim::ExecutionHook> {
        if (profile.name == "mcf")
            throw std::runtime_error("bad configuration");
        return nullptr;
    };
    try {
        methodology::runPbExperiment(workloads, opts);
        FAIL() << "expected the experiment to fail";
    } catch (const std::runtime_error &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("mcf"), std::string::npos) << message;
        EXPECT_NE(message.find("design row"), std::string::npos)
            << message;
        EXPECT_NE(message.find("bad configuration"),
                  std::string::npos)
            << message;
    }
}

TEST(PbExperiment, RankVectorsMatchRanks)
{
    const auto workloads = twoWorkloads();
    const methodology::PbExperimentResult r =
        methodology::runPbExperiment(workloads, fastOptions());
    const auto vectors = r.rankVectors();
    ASSERT_EQ(vectors.size(), r.ranks.size());
    for (std::size_t b = 0; b < vectors.size(); ++b)
        for (std::size_t f = 0; f < vectors[b].size(); ++f)
            EXPECT_DOUBLE_EQ(vectors[b][f],
                             static_cast<double>(r.ranks[b][f]));
}

TEST(PbExperiment, HookFactoryIsApplied)
{
    // An intercept-everything hook must change the responses.
    struct AllHook : rigor::sim::ExecutionHook
    {
        bool
        intercept(const trace::Instruction &inst) override
        {
            return enhance::isPrecomputable(inst.op);
        }
    };

    const std::vector<trace::WorkloadProfile> workloads = {
        trace::workloadByName("gzip")};
    methodology::PbExperimentOptions plain = fastOptions();
    methodology::PbExperimentOptions hooked = fastOptions();
    hooked.hookFactory = [](const trace::WorkloadProfile &) {
        return std::make_unique<AllHook>();
    };
    const auto base = methodology::runPbExperiment(workloads, plain);
    const auto enhanced =
        methodology::runPbExperiment(workloads, hooked);
    // Removing every integer op from execution must help somewhere.
    double base_total = 0.0;
    double enh_total = 0.0;
    for (std::size_t i = 0; i < 88; ++i) {
        base_total += base.responses[0][i];
        enh_total += enhanced.responses[0][i];
    }
    EXPECT_LT(enh_total, base_total);
}

TEST(PbExperiment, SimulateOnceMatchesDirectRun)
{
    const trace::WorkloadProfile &p = trace::workloadByName("gzip");
    const rigor::sim::ProcessorConfig config =
        methodology::uniformConfig(doe::Level::High);
    const double a = methodology::simulateOnce(p, config, 5000);
    const double b = methodology::simulateOnce(p, config, 5000);
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 0.0);
}

TEST(PbExperiment, ValidatesInput)
{
    EXPECT_THROW(
        methodology::runPbExperiment({}, fastOptions()),
        std::invalid_argument);
    methodology::PbExperimentOptions zero = fastOptions();
    zero.instructionsPerRun = 0;
    const auto workloads = twoWorkloads();
    EXPECT_THROW(methodology::runPbExperiment(workloads, zero),
                 std::invalid_argument);
}
