#include <gtest/gtest.h>

#include <algorithm>

#include "methodology/published_data.hh"
#include "methodology/rank_table.hh"
#include "methodology/report.hh"

namespace doe = rigor::doe;
namespace methodology = rigor::methodology;

namespace
{

std::vector<doe::FactorRankSummary>
sample()
{
    doe::FactorRankSummary a;
    a.name = "ROB";
    a.ranks = {1, 2};
    a.sumOfRanks = 3;
    doe::FactorRankSummary b;
    b.name = "L2";
    b.ranks = {2, 1};
    b.sumOfRanks = 3;
    return {a, b};
}

} // namespace

TEST(RankTable, FormatContainsRanksAndSums)
{
    const std::vector<std::string> benches = {"gzip", "mcf"};
    const std::string s =
        methodology::formatRankTable(sample(), benches);
    EXPECT_NE(s.find("ROB"), std::string::npos);
    EXPECT_NE(s.find("gzip"), std::string::npos);
    EXPECT_NE(s.find("Sum"), std::string::npos);
}

TEST(RankTable, FormatRejectsMismatchedBenchmarks)
{
    const std::vector<std::string> benches = {"gzip"};
    EXPECT_THROW(methodology::formatRankTable(sample(), benches),
                 std::invalid_argument);
}

TEST(RankTable, FormatsWholePublishedTable9)
{
    const auto summaries =
        methodology::publishedTable9().asSummaries();
    const std::string s = methodology::formatRankTable(
        summaries, methodology::publishedBenchmarkNames());
    EXPECT_NE(s.find("Reorder Buffer Entries"), std::string::npos);
    EXPECT_NE(s.find("Dummy Factor #1"), std::string::npos);
    // 43 factor rows + header.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 44);
}

TEST(RankTable, SumOfRanksInOrder)
{
    const auto sums = methodology::sumOfRanksInOrder(
        sample(), std::vector<std::string>{"L2", "ROB"});
    EXPECT_EQ(sums, (std::vector<double>{3.0, 3.0}));
    EXPECT_THROW(methodology::sumOfRanksInOrder(
                     sample(), std::vector<std::string>{"nope"}),
                 std::invalid_argument);
}

TEST(RankTable, TopFactorNames)
{
    const auto top = methodology::topFactorNames(sample(), 1);
    EXPECT_EQ(top, (std::vector<std::string>{"ROB"}));
    EXPECT_EQ(methodology::topFactorNames(sample(), 10).size(), 2u);
}

TEST(TextTable, AlignsAndRules)
{
    methodology::TextTable t({"Name", "Value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("Name"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TextTable, RejectsBadRows)
{
    methodology::TextTable t({"A", "B"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
    EXPECT_THROW(methodology::TextTable({}), std::invalid_argument);
}

TEST(TextTable, FormatDoubleHelper)
{
    EXPECT_EQ(methodology::formatDouble(89.7997, 1), "89.8");
    EXPECT_EQ(methodology::formatDouble(1.0, 3), "1.000");
}
