#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "check/campaign_check.hh"
#include "check/rule_ids.hh"
#include "exec/engine.hh"
#include "exec/fault_injection.hh"
#include "exec/journal.hh"
#include "methodology/enhancement_analysis.hh"
#include "methodology/pb_experiment.hh"
#include "methodology/rank_table.hh"
#include "methodology/workflow.hh"
#include "trace/workloads.hh"

namespace check = rigor::check;
namespace exec = rigor::exec;
namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

// ASan/TSan shadow mappings are incompatible with RLIMIT_AS, so the
// acceptance drill swaps its OOM alloc-bomb for an abort under
// sanitizer builds (quarantine behavior is identical; only the
// classified kind differs).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RIGOR_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RIGOR_UNDER_SANITIZER 1
#endif
#endif

namespace
{

std::vector<trace::WorkloadProfile>
twoWorkloads()
{
    return {trace::workloadByName("gzip"),
            trace::workloadByName("mcf")};
}

std::vector<trace::WorkloadProfile>
threeWorkloads()
{
    return {trace::workloadByName("gzip"),
            trace::workloadByName("mcf"),
            trace::workloadByName("twolf")};
}

std::string
journalPath(const std::string &name)
{
    const std::string path =
        std::string(::testing::TempDir()) + name;
    std::remove(path.c_str());
    return path;
}

/** Deterministic simulator stand-in (cycle counts don't matter for
 *  isolation plumbing tests, only identity and failure routing). */
double
stubResponse(const exec::AttemptContext &ctx)
{
    return 100000.0 + 37.0 * static_cast<double>(ctx.jobIndex % 88) +
           static_cast<double>(ctx.jobIndex / 88);
}

} // namespace

// ----- The acceptance drill: three process faults, three cells -----

TEST(ProcCampaign, ThreeProcessFaultsQuarantineExactlyThoseCells)
{
    const auto workloads = threeWorkloads();

    // Reference: the same campaign under thread isolation, no faults.
    methodology::PbExperimentOptions ref_opts;
    ref_opts.instructionsPerRun = 2000;
    ref_opts.campaign.threads = 2;
    const methodology::PbExperimentResult reference =
        methodology::runPbExperiment(workloads, ref_opts);

    // The drill: a segfault, an OOM alloc-bomb, and a
    // non-cooperative hang in three distinct (benchmark, design row)
    // cells, executed under process isolation. Row numbers are
    // two-digit so the label substrings match exactly one cell each;
    // twolf sees no faults and must come through untouched.
    exec::FaultInjector injector;
    injector.addLabelFault("gzip, design row 13", 1,
                           exec::FaultKind::Segfault);
#ifdef RIGOR_UNDER_SANITIZER
    injector.addLabelFault("gzip, design row 27", 1,
                           exec::FaultKind::Abort);
#else
    injector.addLabelFault("gzip, design row 27", 1,
                           exec::FaultKind::AllocBomb);
#endif
    injector.addLabelFault("mcf, design row 55", 1,
                           exec::FaultKind::BusyLoop);

    exec::EngineOptions engine_opts;
    engine_opts.threads = 2;
    engine_opts.simulate = injector.wrap();
    exec::SimulationEngine engine(engine_opts);

    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 2000;
    opts.campaign.engine = &engine;
    opts.campaign.isolation = exec::IsolationMode::Process;
    // The deadline is generous enough that the alloc-bomb reaches
    // its memory cap (a resource fault) before the watchdog fires.
    opts.campaign.hardDeadline = std::chrono::milliseconds(1000);
#ifndef RIGOR_UNDER_SANITIZER
    opts.campaign.memLimitMb = 128;
#endif
    opts.campaign.faultPolicy.collectFailures = true;
    opts.campaign.degradation = check::DegradationMode::DropBenchmark;

    const methodology::PbExperimentResult result =
        methodology::runPbExperiment(workloads, opts);

    // Exactly the three drilled cells were quarantined: the
    // diagnostic trail names them and nothing else.
    std::vector<std::string> quarantined;
    for (const check::Diagnostic &d : result.validity.diagnostics())
        if (d.ruleId == check::rules::kCampaignCellQuarantined)
            quarantined.push_back(d.context.object);
    std::sort(quarantined.begin(), quarantined.end());
    const std::vector<std::string> expected = {
        "benchmark 'gzip', design row 13",
        "benchmark 'gzip', design row 27",
        "benchmark 'mcf', design row 55",
    };
    EXPECT_EQ(quarantined, expected);

    const exec::ProgressSnapshot snap = engine.progress().snapshot();
    EXPECT_EQ(snap.failedJobs, 3u);
    EXPECT_EQ(snap.runsTotal, 264u);
    EXPECT_EQ(snap.runsCompleted, 264u - 3u);

    // Degradation drops exactly the two faulted benchmarks.
    std::vector<std::string> dropped = result.droppedBenchmarks;
    std::sort(dropped.begin(), dropped.end());
    EXPECT_EQ(dropped, (std::vector<std::string>{"gzip", "mcf"}));
    ASSERT_EQ(result.benchmarks.size(), 1u);
    EXPECT_EQ(result.benchmarks[0], "twolf");

    // The untouched benchmark's 88 responses are bit-identical to
    // the thread-isolation reference: forked execution must not
    // perturb the simulation.
    ASSERT_EQ(reference.benchmarks.size(), 3u);
    ASSERT_EQ(reference.benchmarks[2], "twolf");
    EXPECT_EQ(result.responses[0], reference.responses[2]);
}

// ----- Kill and resume under process isolation -----

TEST(ProcCampaign, KillAndResumeReproducesRankTableUnderProcessMode)
{
    const auto workloads = twoWorkloads();

    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 2000;
    opts.campaign.threads = 2;
    opts.campaign.isolation = exec::IsolationMode::Process;

    // Reference: the uninterrupted process-isolated campaign.
    const methodology::PbExperimentResult reference =
        methodology::runPbExperiment(workloads, opts);
    const std::string reference_table = methodology::formatRankTable(
        reference.summaries, reference.benchmarks);

    // The campaign that dies mid-flight: the journal's crash drill
    // fires in the *parent* (journaling is parent-side; sandboxes
    // only simulate), after 40 appends.
    const std::string path = journalPath("proc_campaign_resume");
    {
        exec::ResultJournal journal(path);
        journal.simulateCrashAfter(40);
        methodology::PbExperimentOptions crash_opts = opts;
        crash_opts.campaign.journal = &journal;
        EXPECT_THROW(
            methodology::runPbExperiment(workloads, crash_opts),
            exec::SimulatedCrash);
    }

    // Resume in a "new process": the journal replays the 40 cells,
    // fresh sandboxes simulate the rest, and Table 9 is
    // byte-for-byte the uninterrupted one.
    exec::ResultJournal journal(path);
    EXPECT_EQ(journal.loadedRecords(), 40u);
    EXPECT_EQ(journal.tornRecords(), 1u);
    exec::SimulationEngine engine(exec::EngineOptions{2, true});
    methodology::PbExperimentOptions resume_opts = opts;
    resume_opts.campaign.engine = &engine;
    resume_opts.campaign.journal = &journal;
    const methodology::PbExperimentResult resumed =
        methodology::runPbExperiment(workloads, resume_opts);

    EXPECT_EQ(engine.progress().snapshot().journalHits, 40u);
    EXPECT_EQ(resumed.responses, reference.responses);
    EXPECT_EQ(methodology::formatRankTable(resumed.summaries,
                                           resumed.benchmarks),
              reference_table);
}

// ----- Multi-phase drivers share one sandbox pool -----

TEST(ProcCampaign, WorkflowRunsFactorialPhaseUnderProcessIsolation)
{
    const auto workloads = twoWorkloads();

    exec::FaultInjector injector;
    injector.addLabelFault("mcf, factorial cell", 1,
                           exec::FaultKind::Abort);

    methodology::WorkflowOptions opts;
    opts.instructionsPerRun = 8000;
    opts.campaign.threads = 2;
    opts.campaign.isolation = exec::IsolationMode::Process;
    opts.maxCriticalParameters = 2;
    opts.campaign.faultPolicy.collectFailures = true;
    opts.campaign.degradation = check::DegradationMode::DropBenchmark;
    opts.simulate = injector.wrap(
        [](const exec::SimJob &, const exec::AttemptContext &ctx) {
            return stubResponse(ctx);
        });

    const methodology::WorkflowResult result =
        methodology::runRecommendedWorkflow(workloads, opts);

    // Every factorial cell of mcf died with SIGABRT inside a sandbox
    // worker — and only dropped that workload from the averaging.
    ASSERT_EQ(result.factorialDroppedWorkloads.size(), 1u);
    EXPECT_EQ(result.factorialDroppedWorkloads[0], "mcf");
    EXPECT_TRUE(result.factorialValidity.hasRule(
        check::rules::kCampaignBenchmarkDropped));
    EXPECT_TRUE(result.screening.droppedBenchmarks.empty())
        << "the screening phase saw no faults";
}

TEST(ProcCampaign, EnhancementLegsRebuildHooksInsideSandboxes)
{
    const auto workloads = twoWorkloads();

    exec::EngineOptions engine_opts;
    engine_opts.threads = 2;
    engine_opts.simulate = [](const exec::SimJob &job,
                              const exec::AttemptContext &ctx) {
        // Hooked (enhanced) runs are distinguishable, proving the
        // hook request survived the wire into the child.
        const double hooked = job.makeHook ? 500.0 : 0.0;
        return stubResponse(ctx) + hooked;
    };
    exec::SimulationEngine engine(engine_opts);

    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 8000;
    opts.campaign.engine = &engine;
    opts.campaign.isolation = exec::IsolationMode::Process;

    const methodology::HookFactory noop_factory =
        [](const trace::WorkloadProfile &)
        -> std::unique_ptr<rigor::sim::ExecutionHook> {
        return nullptr;
    };
    const methodology::EnhancementExperimentResult result =
        methodology::runEnhancementExperiment(workloads, opts,
                                              noop_factory, "noop");

    EXPECT_TRUE(result.droppedBenchmarks.empty());
    EXPECT_EQ(result.base.benchmarks.size(), 2u);
    EXPECT_EQ(result.enhanced.benchmarks.size(), 2u);
    // The enhanced leg's responses carry the hook marker; the base
    // leg's do not.
    EXPECT_EQ(result.base.responses[0][0], stubResponse([] {
                  exec::AttemptContext ctx;
                  ctx.jobIndex = 0;
                  return ctx;
              }()));
    EXPECT_EQ(result.enhanced.responses[0][0],
              result.base.responses[0][0] + 500.0);
}
