#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/distance.hh"
#include "methodology/classification.hh"
#include "methodology/parameter_space.hh"
#include "methodology/published_data.hh"

namespace cluster = rigor::cluster;
namespace methodology = rigor::methodology;

TEST(PublishedData, Table9Shape)
{
    const methodology::PublishedRankTable &t =
        methodology::publishedTable9();
    EXPECT_EQ(t.factors.size(), 43u);
    EXPECT_EQ(t.benchmarks.size(), 13u);
    EXPECT_EQ(t.ranks.size(), 43u);
    for (const auto &row : t.ranks)
        EXPECT_EQ(row.size(), 13u);
}

TEST(PublishedData, Table9SumsConsistent)
{
    // Every printed sum must equal the sum of its printed ranks —
    // a transcription check on the whole table.
    const methodology::PublishedRankTable &t =
        methodology::publishedTable9();
    for (std::size_t f = 0; f < t.factors.size(); ++f) {
        unsigned long sum = 0;
        for (unsigned r : t.ranks[f])
            sum += r;
        EXPECT_EQ(sum, t.sums[f]) << t.factors[f];
    }
}

TEST(PublishedData, Table12SumsConsistent)
{
    const methodology::PublishedRankTable &t =
        methodology::publishedTable12();
    for (std::size_t f = 0; f < t.factors.size(); ++f) {
        unsigned long sum = 0;
        for (unsigned r : t.ranks[f])
            sum += r;
        EXPECT_EQ(sum, t.sums[f]) << t.factors[f];
    }
}

TEST(PublishedData, EachBenchmarkColumnIsAPermutation)
{
    // Every benchmark assigns ranks 1..43 exactly once.
    for (const methodology::PublishedRankTable *t :
         {&methodology::publishedTable9(),
          &methodology::publishedTable12()}) {
        for (std::size_t b = 0; b < t->benchmarks.size(); ++b) {
            std::vector<bool> seen(44, false);
            for (std::size_t f = 0; f < t->factors.size(); ++f) {
                const unsigned r = t->ranks[f][b];
                ASSERT_GE(r, 1u);
                ASSERT_LE(r, 43u);
                EXPECT_FALSE(seen[r])
                    << t->benchmarks[b] << " duplicate rank " << r;
                seen[r] = true;
            }
        }
    }
}

TEST(PublishedData, Table9SortedBySum)
{
    const methodology::PublishedRankTable &t =
        methodology::publishedTable9();
    for (std::size_t f = 1; f < t.sums.size(); ++f)
        EXPECT_LE(t.sums[f - 1], t.sums[f]);
    EXPECT_EQ(t.factors.front(), "Reorder Buffer Entries");
    EXPECT_EQ(t.sums.front(), 36ul);
    EXPECT_EQ(t.factors.back(), "Dummy Factor #1");
    EXPECT_EQ(t.sums.back(), 434ul);
}

TEST(PublishedData, FactorNamesMatchParameterSpace)
{
    // Every published factor must exist in our parameter space so the
    // measured and published tables can be joined.
    const std::vector<std::string> ours = methodology::factorNames();
    for (const std::string &name :
         methodology::publishedTable9().factors) {
        bool found = false;
        for (const std::string &mine : ours)
            if (mine == name)
                found = true;
        EXPECT_TRUE(found) << "missing factor: " << name;
    }
}

TEST(PublishedData, PaperWorkedExampleGzipVsVprPlace)
{
    // Section 4.2: distance(gzip, vpr-Place) = sqrt(8058) = 89.8.
    const auto vectors =
        methodology::publishedTable9().rankVectorsByBenchmark();
    const double d = cluster::euclideanDistance(vectors[0], vectors[1]);
    EXPECT_NEAR(d * d, 8058.0, 1e-9);
    EXPECT_NEAR(d, 89.8, 0.05);
}

TEST(PublishedData, Table10ReproducibleFromTable9Ranks)
{
    // The full Table 10 must be recomputable from the Table 9 rank
    // vectors to within the paper's printed precision.
    const auto vectors =
        methodology::publishedTable9().rankVectorsByBenchmark();
    const cluster::DistanceMatrix computed =
        cluster::DistanceMatrix::fromPoints(vectors);
    const cluster::DistanceMatrix &published =
        methodology::publishedTable10();
    ASSERT_EQ(computed.size(), published.size());
    for (std::size_t i = 0; i < computed.size(); ++i)
        for (std::size_t j = i + 1; j < computed.size(); ++j)
            EXPECT_NEAR(computed.at(i, j), published.at(i, j), 0.35)
                << methodology::publishedBenchmarkNames()[i] << " vs "
                << methodology::publishedBenchmarkNames()[j];
}

TEST(PublishedData, Table11GroupsReproducedFromTable9)
{
    // Threshold sqrt(4000) on the Table 9 rank vectors must yield
    // exactly the paper's eight groups.
    const auto vectors =
        methodology::publishedTable9().rankVectorsByBenchmark();
    const methodology::ClassificationResult result =
        methodology::classifyBenchmarks(
            methodology::publishedBenchmarkNames(), vectors,
            methodology::defaultSimilarityThreshold());
    EXPECT_EQ(result.groups, methodology::publishedTable11Groups());
}

TEST(PublishedData, Table12HeadlineIntAluReliefHolds)
{
    // Section 4.3: "of the significant parameters, the parameter that
    // has the biggest change ... is the number of integer ALUs"
    // (sum 118 -> 137).
    const methodology::PublishedRankTable &before =
        methodology::publishedTable9();
    const methodology::PublishedRankTable &after =
        methodology::publishedTable12();
    const std::size_t before_idx = before.factorIndex("Int ALUs");
    const std::size_t after_idx = after.factorIndex("Int ALUs");
    EXPECT_EQ(before.sums[before_idx], 118ul);
    EXPECT_EQ(after.sums[after_idx], 137ul);
}

TEST(PublishedData, TopTenFactorSetsAgreeAcrossTables)
{
    // Section 4.3: precomputation reorders but does not change which
    // parameters are significant.
    const auto top = [](const methodology::PublishedRankTable &t) {
        std::vector<std::string> names(t.factors.begin(),
                                       t.factors.begin() + 10);
        std::sort(names.begin(), names.end());
        return names;
    };
    EXPECT_EQ(top(methodology::publishedTable9()),
              top(methodology::publishedTable12()));
}

TEST(PublishedData, FactorIndexThrowsOnUnknown)
{
    EXPECT_THROW(methodology::publishedTable9().factorIndex("Bogus"),
                 std::invalid_argument);
}
