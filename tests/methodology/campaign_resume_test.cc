#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/campaign_check.hh"
#include "check/rule_ids.hh"
#include "exec/engine.hh"
#include "exec/fault_injection.hh"
#include "exec/journal.hh"
#include "methodology/enhancement_analysis.hh"
#include "methodology/pb_experiment.hh"
#include "methodology/rank_table.hh"
#include "methodology/workflow.hh"
#include "trace/workloads.hh"

namespace check = rigor::check;
namespace exec = rigor::exec;
namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

namespace
{

std::vector<trace::WorkloadProfile>
twoWorkloads()
{
    return {trace::workloadByName("gzip"),
            trace::workloadByName("mcf")};
}

std::string
journalPath(const std::string &name)
{
    const std::string path =
        std::string(::testing::TempDir()) + name;
    std::remove(path.c_str());
    return path;
}

/** Deterministic stand-in for the simulator (degradation tests
 *  exercise arbitration, not cycle counts). */
double
stubResponse(const exec::AttemptContext &ctx)
{
    return 100000.0 + 37.0 * static_cast<double>(ctx.jobIndex % 88) +
           static_cast<double>(ctx.jobIndex / 88);
}

} // namespace

// ----- Kill and resume: the tentpole end-to-end drill -----

TEST(CampaignResume, KillAndResumeReproducesTable9BitIdentically)
{
    const auto workloads = twoWorkloads();
    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 8000;
    opts.campaign.threads = 2;

    // Reference: the uninterrupted campaign (no journal involved).
    const methodology::PbExperimentResult reference =
        methodology::runPbExperiment(workloads, opts);
    const std::string reference_table = methodology::formatRankTable(
        reference.summaries, reference.benchmarks);

    // The campaign that dies: crash drill after 40 journal appends.
    const std::string path = journalPath("campaign_resume");
    {
        exec::ResultJournal journal(path);
        journal.simulateCrashAfter(40);
        methodology::PbExperimentOptions crash_opts = opts;
        crash_opts.campaign.journal = &journal;
        EXPECT_THROW(
            methodology::runPbExperiment(workloads, crash_opts),
            exec::SimulatedCrash)
            << "the crash must propagate unwrapped for the driver";
    }

    // Resume in a "new process": fresh engine and cache, reopened
    // journal. Exactly the 40 journaled runs replay from disk; only
    // the remaining 136 of the 176 jobs are simulated.
    exec::ResultJournal journal(path);
    EXPECT_EQ(journal.loadedRecords(), 40u);
    EXPECT_EQ(journal.tornRecords(), 1u); // the interrupted append
    exec::SimulationEngine engine(exec::EngineOptions{2, true});
    methodology::PbExperimentOptions resume_opts = opts;
    resume_opts.campaign.engine = &engine;
    resume_opts.campaign.journal = &journal;
    const methodology::PbExperimentResult resumed =
        methodology::runPbExperiment(workloads, resume_opts);

    const exec::ProgressSnapshot snap = engine.progress().snapshot();
    EXPECT_EQ(snap.journalHits, 40u);
    EXPECT_EQ(snap.simulatedInstructions, 136u * 8000u)
        << "the resumed run must execute only the remaining jobs";

    // The headline guarantee: the resumed campaign's Table 9 is
    // byte-for-byte the uninterrupted one.
    EXPECT_EQ(resumed.responses, reference.responses);
    EXPECT_EQ(methodology::formatRankTable(resumed.summaries,
                                           resumed.benchmarks),
              reference_table);

    // A second resume replays everything and simulates nothing.
    exec::SimulationEngine replay_engine(exec::EngineOptions{2, true});
    methodology::PbExperimentOptions replay_opts = resume_opts;
    replay_opts.campaign.engine = &replay_engine;
    const methodology::PbExperimentResult replayed =
        methodology::runPbExperiment(workloads, replay_opts);
    EXPECT_EQ(replayed.responses, reference.responses);
    EXPECT_EQ(replay_engine.progress().snapshot().simulatedInstructions,
              0u);
}

// ----- Degradation arbitration through the experiment driver -----

TEST(CampaignDegradation, DropBenchmarkProducesLabeledReducedTable)
{
    const auto workloads = twoWorkloads();

    exec::EngineOptions engine_opts;
    engine_opts.threads = 2;
    engine_opts.simulate = [](const exec::SimJob &job,
                              const exec::AttemptContext &ctx) {
        if (job.label == "mcf, design row 3")
            throw exec::PermanentFault("poisoned cell");
        return stubResponse(ctx);
    };
    exec::SimulationEngine engine(engine_opts);

    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 8000;
    opts.campaign.engine = &engine;
    opts.campaign.faultPolicy.collectFailures = true;
    opts.campaign.degradation = check::DegradationMode::DropBenchmark;

    const methodology::PbExperimentResult result =
        methodology::runPbExperiment(workloads, opts);

    ASSERT_EQ(result.droppedBenchmarks.size(), 1u);
    EXPECT_EQ(result.droppedBenchmarks[0], "mcf");
    ASSERT_EQ(result.benchmarks.size(), 1u);
    EXPECT_EQ(result.benchmarks[0], "gzip");
    EXPECT_EQ(result.responses.size(), 1u);
    EXPECT_EQ(result.effects.size(), 1u);
    for (const rigor::doe::FactorRankSummary &s : result.summaries)
        EXPECT_EQ(s.ranks.size(), 1u)
            << "rank sums must cover only surviving benchmarks";

    EXPECT_TRUE(result.validity.hasRule(
        check::rules::kCampaignCellQuarantined));
    EXPECT_TRUE(result.validity.hasRule(
        check::rules::kCampaignBenchmarkDropped));
    EXPECT_TRUE(result.validity.hasRule(
        check::rules::kCampaignFoldoverPairBroken));

    // The rendered table carries the degradation label.
    const std::string table = methodology::formatRankTable(
        result.summaries, result.benchmarks,
        result.droppedBenchmarks);
    EXPECT_NE(table.find("Dropped (quarantined failures): mcf"),
              std::string::npos)
        << table;
    EXPECT_NE(table.find("1 of 2 benchmarks"), std::string::npos)
        << table;
}

TEST(CampaignDegradation, AbortModeThrowsInsteadOfDegrading)
{
    const auto workloads = twoWorkloads();

    exec::EngineOptions engine_opts;
    engine_opts.threads = 2;
    engine_opts.simulate = [](const exec::SimJob &job,
                              const exec::AttemptContext &ctx) {
        if (job.label == "mcf, design row 3")
            throw exec::PermanentFault("poisoned cell");
        return stubResponse(ctx);
    };
    exec::SimulationEngine engine(engine_opts);

    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 8000;
    opts.campaign.engine = &engine;
    opts.campaign.faultPolicy.collectFailures = true;
    opts.campaign.degradation = check::DegradationMode::Abort;

    try {
        methodology::runPbExperiment(workloads, opts);
        FAIL() << "expected CampaignError";
    } catch (const check::CampaignError &e) {
        EXPECT_TRUE(e.sink().hasRule(
            check::rules::kCampaignBenchmarkIncomplete));
        EXPECT_NE(std::string(e.what()).find("mcf"),
                  std::string::npos);
    }
}

TEST(CampaignDegradation, RetriesHealTransientsBeforeArbitration)
{
    const auto workloads = twoWorkloads();

    // Every job of one benchmark fails once, then succeeds: with a
    // retry budget the campaign completes un-degraded.
    exec::FaultInjector injector;
    injector.addLabelFault("mcf, design row", 1,
                           exec::FaultKind::Transient);
    exec::EngineOptions engine_opts;
    engine_opts.threads = 2;
    engine_opts.simulate = injector.wrap(
        [](const exec::SimJob &, const exec::AttemptContext &ctx) {
            return stubResponse(ctx);
        });
    exec::SimulationEngine engine(engine_opts);

    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 8000;
    opts.campaign.engine = &engine;
    opts.campaign.faultPolicy.maxAttempts = 2;
    opts.campaign.faultPolicy.collectFailures = true;
    opts.campaign.degradation = check::DegradationMode::Abort;

    const methodology::PbExperimentResult result =
        methodology::runPbExperiment(workloads, opts);
    EXPECT_TRUE(result.droppedBenchmarks.empty());
    EXPECT_TRUE(result.validity.diagnostics().empty());
    EXPECT_EQ(result.benchmarks.size(), 2u);
    EXPECT_EQ(injector.transientsRaised(), 88u);
    EXPECT_EQ(engine.progress().snapshot().retries, 88u);
}

// ----- Paired legs: enhancement analysis reconciliation -----

TEST(CampaignDegradation, EnhancementLegsReconcileMismatchedDrops)
{
    const auto workloads = twoWorkloads();

    // The fault hits only the *enhanced* leg (hooked jobs carry a
    // hook id): the base leg keeps both benchmarks, the enhanced leg
    // drops mcf, and the comparison must reconcile to the common
    // survivor set.
    exec::EngineOptions engine_opts;
    engine_opts.threads = 2;
    engine_opts.simulate = [](const exec::SimJob &job,
                              const exec::AttemptContext &ctx) {
        if (!job.hookId.empty() && job.label == "mcf, design row 3")
            throw exec::PermanentFault("enhanced-only fault");
        return stubResponse(ctx);
    };
    exec::SimulationEngine engine(engine_opts);

    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 8000;
    opts.campaign.engine = &engine;
    opts.campaign.faultPolicy.collectFailures = true;
    opts.campaign.degradation = check::DegradationMode::DropBenchmark;

    const methodology::HookFactory noop_factory =
        [](const trace::WorkloadProfile &)
        -> std::unique_ptr<rigor::sim::ExecutionHook> {
        return nullptr;
    };
    const methodology::EnhancementExperimentResult result =
        methodology::runEnhancementExperiment(workloads, opts,
                                              noop_factory, "noop");

    ASSERT_EQ(result.droppedBenchmarks.size(), 1u);
    EXPECT_EQ(result.droppedBenchmarks[0], "mcf");
    EXPECT_TRUE(result.validity.hasRule(
        check::rules::kCampaignPairedDropMismatch));
    // Both legs were re-filtered to the common population.
    EXPECT_EQ(result.base.benchmarks,
              std::vector<std::string>{"gzip"});
    EXPECT_EQ(result.enhanced.benchmarks,
              std::vector<std::string>{"gzip"});
    EXPECT_EQ(result.comparison.shifts.size(),
              result.base.summaries.size());
}

// ----- Workflow: factorial-phase degradation -----

TEST(CampaignDegradation, WorkflowDropsWorkloadFromFactorialAveraging)
{
    const auto workloads = twoWorkloads();

    exec::FaultInjector injector;
    injector.addLabelFault("mcf, factorial cell", 1,
                           exec::FaultKind::Permanent);

    methodology::WorkflowOptions opts;
    opts.instructionsPerRun = 8000;
    opts.warmupInstructions = 0;
    opts.campaign.threads = 2;
    opts.maxCriticalParameters = 2;
    opts.campaign.faultPolicy.collectFailures = true;
    opts.campaign.degradation = check::DegradationMode::DropBenchmark;
    opts.simulate = injector.wrap(
        [](const exec::SimJob &, const exec::AttemptContext &ctx) {
            return stubResponse(ctx);
        });

    const methodology::WorkflowResult result =
        methodology::runRecommendedWorkflow(workloads, opts);

    ASSERT_EQ(result.factorialDroppedWorkloads.size(), 1u);
    EXPECT_EQ(result.factorialDroppedWorkloads[0], "mcf");
    EXPECT_TRUE(result.factorialValidity.hasRule(
        check::rules::kCampaignBenchmarkDropped));
    EXPECT_TRUE(result.screening.droppedBenchmarks.empty())
        << "the screen saw no faults";
    EXPECT_NE(result.toString().find(
                  "factorial averaging dropped mcf"),
              std::string::npos)
        << result.toString();
}
