#include <gtest/gtest.h>

#include <cstdio>

#include "methodology/csv_export.hh"
#include "methodology/pb_experiment.hh"
#include "methodology/published_data.hh"
#include "trace/workloads.hh"

namespace cluster = rigor::cluster;
namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

namespace
{

const methodology::PbExperimentResult &
smallResult()
{
    static const methodology::PbExperimentResult result = [] {
        methodology::PbExperimentOptions opts;
        opts.instructionsPerRun = 4000;
        const std::vector<trace::WorkloadProfile> workloads = {
            trace::workloadByName("gzip")};
        return methodology::runPbExperiment(workloads, opts);
    }();
    return result;
}

std::size_t
countLines(const std::string &s)
{
    std::size_t n = 0;
    for (char ch : s)
        if (ch == '\n')
            ++n;
    return n;
}

} // namespace

TEST(CsvExport, EscapeRules)
{
    EXPECT_EQ(methodology::csvEscape("plain"), "plain");
    EXPECT_EQ(methodology::csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(methodology::csvEscape("say \"hi\""),
              "\"say \"\"hi\"\"\"");
    EXPECT_EQ(methodology::csvEscape("two\nlines"),
              "\"two\nlines\"");
}

TEST(CsvExport, ResponsesShape)
{
    const std::string csv =
        methodology::responsesToCsv(smallResult());
    // Header + 88 runs.
    EXPECT_EQ(countLines(csv), 89u);
    EXPECT_NE(csv.find("run,"), std::string::npos);
    EXPECT_NE(csv.find("gzip cycles"), std::string::npos);
}

TEST(CsvExport, EffectsShape)
{
    const std::string csv = methodology::effectsToCsv(smallResult());
    // Header + 43 factors.
    EXPECT_EQ(countLines(csv), 44u);
    EXPECT_NE(csv.find("Reorder Buffer Entries"), std::string::npos);
}

TEST(CsvExport, RankTableShape)
{
    const std::string csv =
        methodology::rankTableToCsv(smallResult());
    EXPECT_EQ(countLines(csv), 44u);
    EXPECT_NE(csv.find(",sum"), std::string::npos);
}

TEST(CsvExport, DistanceMatrixRoundTripValues)
{
    const std::string csv = methodology::distanceMatrixToCsv(
        methodology::publishedTable10(),
        methodology::publishedBenchmarkNames());
    EXPECT_EQ(countLines(csv), 14u); // header + 13 rows
    EXPECT_NE(csv.find("89.8"), std::string::npos);
    EXPECT_NE(csv.find("vpr-Place"), std::string::npos);
}

TEST(CsvExport, DistanceMatrixValidatesLabels)
{
    EXPECT_THROW(methodology::distanceMatrixToCsv(
                     methodology::publishedTable10(), {"one"}),
                 std::invalid_argument);
}

TEST(CsvExport, WriteFileRoundTrip)
{
    const std::string path =
        std::string(::testing::TempDir()) + "rigor_csv_test.csv";
    methodology::writeFile(path, "a,b\n1,2\n");
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buffer[32] = {};
    const std::size_t n = std::fread(buffer, 1, sizeof(buffer), f);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(std::string(buffer, n), "a,b\n1,2\n");
}

TEST(CsvExport, WriteFileBadPathThrows)
{
    EXPECT_THROW(
        methodology::writeFile("/nonexistent/dir/x.csv", "data"),
        std::runtime_error);
}
