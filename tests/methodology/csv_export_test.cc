#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "methodology/csv_export.hh"
#include "methodology/pb_experiment.hh"
#include "methodology/published_data.hh"
#include "trace/workloads.hh"

namespace cluster = rigor::cluster;
namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

namespace
{

const methodology::PbExperimentResult &
smallResult()
{
    static const methodology::PbExperimentResult result = [] {
        methodology::PbExperimentOptions opts;
        opts.instructionsPerRun = 4000;
        const std::vector<trace::WorkloadProfile> workloads = {
            trace::workloadByName("gzip")};
        return methodology::runPbExperiment(workloads, opts);
    }();
    return result;
}

std::size_t
countLines(const std::string &s)
{
    std::size_t n = 0;
    for (char ch : s)
        if (ch == '\n')
            ++n;
    return n;
}

} // namespace

TEST(CsvExport, EscapeRules)
{
    EXPECT_EQ(methodology::csvEscape("plain"), "plain");
    EXPECT_EQ(methodology::csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(methodology::csvEscape("say \"hi\""),
              "\"say \"\"hi\"\"\"");
    EXPECT_EQ(methodology::csvEscape("two\nlines"),
              "\"two\nlines\"");
}

TEST(CsvExport, ResponsesShape)
{
    const std::string csv =
        methodology::responsesToCsv(smallResult());
    // Header + 88 runs.
    EXPECT_EQ(countLines(csv), 89u);
    EXPECT_NE(csv.find("run,"), std::string::npos);
    EXPECT_NE(csv.find("gzip cycles"), std::string::npos);
}

TEST(CsvExport, EffectsShape)
{
    const std::string csv = methodology::effectsToCsv(smallResult());
    // Header + 43 factors.
    EXPECT_EQ(countLines(csv), 44u);
    EXPECT_NE(csv.find("Reorder Buffer Entries"), std::string::npos);
}

TEST(CsvExport, RankTableShape)
{
    const std::string csv =
        methodology::rankTableToCsv(smallResult());
    EXPECT_EQ(countLines(csv), 44u);
    EXPECT_NE(csv.find(",sum"), std::string::npos);
}

TEST(CsvExport, ResponsesRoundTripAtFullPrecision)
{
    // Cycle responses above ~10^6 used to be truncated to the default
    // 6 significant digits; every emitted value must now parse back
    // bit-identically.
    methodology::PbExperimentResult result = smallResult();
    result.responses[0][0] = 12345678.90123456;  // > 10^6 cycles
    result.responses[0][1] = 98765432109.87654;  // > 10^10 cycles
    const std::string csv = methodology::responsesToCsv(result);

    std::size_t row = 0;
    std::size_t line_start = csv.find('\n') + 1; // skip header
    while (line_start < csv.size() && row < result.design.numRows()) {
        const std::size_t line_end = csv.find('\n', line_start);
        const std::string line =
            csv.substr(line_start, line_end - line_start);
        const std::size_t last_comma = line.rfind(',');
        ASSERT_NE(last_comma, std::string::npos);
        const double parsed =
            std::strtod(line.c_str() + last_comma + 1, nullptr);
        EXPECT_EQ(parsed, result.responses[0][row])
            << "row " << row << ": " << line;
        line_start = line_end + 1;
        ++row;
    }
    EXPECT_EQ(row, result.design.numRows());
}

TEST(CsvExport, EffectsRoundTripAtFullPrecision)
{
    methodology::PbExperimentResult result = smallResult();
    result.effects[0][0] = -1234567.000000123;
    const std::string csv = methodology::effectsToCsv(result);
    EXPECT_NE(csv.find("-1234567.000000123"), std::string::npos);
    // The old 6-digit rendering must be gone.
    EXPECT_EQ(csv.find("-1.23457e+06"), std::string::npos);
}

TEST(CsvExport, DistanceMatrixRoundTripValues)
{
    const std::string csv = methodology::distanceMatrixToCsv(
        methodology::publishedTable10(),
        methodology::publishedBenchmarkNames());
    EXPECT_EQ(countLines(csv), 14u); // header + 13 rows
    EXPECT_NE(csv.find("89.8"), std::string::npos);
    EXPECT_NE(csv.find("vpr-Place"), std::string::npos);
}

TEST(CsvExport, DistanceMatrixValidatesLabels)
{
    EXPECT_THROW(methodology::distanceMatrixToCsv(
                     methodology::publishedTable10(), {"one"}),
                 std::invalid_argument);
}

TEST(CsvExport, WriteFileRoundTrip)
{
    const std::string path =
        std::string(::testing::TempDir()) + "rigor_csv_test.csv";
    methodology::writeFile(path, "a,b\n1,2\n");
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buffer[32] = {};
    const std::size_t n = std::fread(buffer, 1, sizeof(buffer), f);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(std::string(buffer, n), "a,b\n1,2\n");
}

TEST(CsvExport, WriteFileBadPathThrows)
{
    EXPECT_THROW(
        methodology::writeFile("/nonexistent/dir/x.csv", "data"),
        std::runtime_error);
}
