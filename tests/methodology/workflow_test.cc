#include <gtest/gtest.h>

#include "methodology/workflow.hh"
#include "trace/workloads.hh"

namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

namespace
{

/** One shared (expensive) workflow run. */
const methodology::WorkflowResult &
sharedRun()
{
    static const methodology::WorkflowResult result = [] {
        methodology::WorkflowOptions opts;
        opts.instructionsPerRun = 15000;
        opts.warmupInstructions = 15000;
        opts.maxCriticalParameters = 3;
        const std::vector<trace::WorkloadProfile> workloads = {
            trace::workloadByName("gzip"),
            trace::workloadByName("mcf"),
        };
        return methodology::runRecommendedWorkflow(workloads, opts);
    }();
    return result;
}

} // namespace

TEST(Workflow, FactorByName)
{
    EXPECT_EQ(methodology::factorByName("Reorder Buffer Entries"),
              methodology::Factor::RobEntries);
    EXPECT_EQ(methodology::factorByName("Dummy Factor #2"),
              methodology::Factor::DummyFactor2);
    EXPECT_THROW(methodology::factorByName("nope"),
                 std::invalid_argument);
}

TEST(Workflow, ProducesCriticalSetWithinCap)
{
    const methodology::WorkflowResult &r = sharedRun();
    EXPECT_GE(r.criticalFactors.size(), 1u);
    EXPECT_LE(r.criticalFactors.size(), 3u);
    // Dummies are never "critical".
    for (methodology::Factor f : r.criticalFactors) {
        EXPECT_NE(f, methodology::Factor::DummyFactor1);
        EXPECT_NE(f, methodology::Factor::DummyFactor2);
    }
}

TEST(Workflow, SensitivityCoversCriticalFactors)
{
    const methodology::WorkflowResult &r = sharedRun();
    EXPECT_EQ(r.sensitivity.numFactors, r.criticalFactors.size());
    EXPECT_EQ(r.recommendations.size(), r.criticalFactors.size());
}

TEST(Workflow, RecommendationsPointTheRightWay)
{
    // Every Table 6-8 "high" value is the better one by design, so
    // each critical parameter should save cycles at its high level.
    const methodology::WorkflowResult &r = sharedRun();
    for (const methodology::ParameterRecommendation &rec :
         r.recommendations)
        EXPECT_GT(rec.cyclesSavedHighVsLow, 0.0) << rec.name;
}

TEST(Workflow, RecommendationsSortedByVariation)
{
    const methodology::WorkflowResult &r = sharedRun();
    for (std::size_t i = 1; i < r.recommendations.size(); ++i)
        EXPECT_GE(r.recommendations[i - 1].variationExplained,
                  r.recommendations[i].variationExplained);
}

TEST(Workflow, ReportMentionsAllSteps)
{
    const std::string report = sharedRun().toString();
    EXPECT_NE(report.find("Step 1"), std::string::npos);
    EXPECT_NE(report.find("Step 3"), std::string::npos);
    EXPECT_NE(report.find("Step 4"), std::string::npos);
    EXPECT_NE(report.find("interaction"), std::string::npos);
}

TEST(Workflow, ExecutionCountersCoverBothPhases)
{
    const methodology::WorkflowResult &r = sharedRun();
    // 88 screen runs x 2 workloads, plus 2^k factorial cells x 2
    // workloads, all through the one shared engine.
    const std::uint64_t expected =
        88u * 2u + (std::uint64_t{1} << r.criticalFactors.size()) * 2u;
    EXPECT_EQ(r.execution.runsTotal, expected);
    EXPECT_EQ(r.execution.runsCompleted, expected);
    EXPECT_GT(r.execution.simulatedInstructions, 0u);
    EXPECT_GT(r.execution.wallSeconds, 0.0);
    EXPECT_NE(sharedRun().toString().find("Execution:"),
              std::string::npos);
}

TEST(Workflow, DeterministicAcrossThreadCounts)
{
    methodology::WorkflowOptions opts;
    opts.instructionsPerRun = 5000;
    opts.warmupInstructions = 0;
    opts.maxCriticalParameters = 2;
    const std::vector<trace::WorkloadProfile> workloads = {
        trace::workloadByName("gzip")};

    opts.campaign.threads = 1;
    const methodology::WorkflowResult serial =
        methodology::runRecommendedWorkflow(workloads, opts);
    opts.campaign.threads = 8;
    const methodology::WorkflowResult parallel =
        methodology::runRecommendedWorkflow(workloads, opts);

    EXPECT_EQ(serial.screening.responses,
              parallel.screening.responses);
    EXPECT_EQ(serial.criticalFactors, parallel.criticalFactors);
    ASSERT_EQ(serial.sensitivity.rows.size(),
              parallel.sensitivity.rows.size());
    for (std::size_t i = 0; i < serial.sensitivity.rows.size(); ++i)
        EXPECT_EQ(serial.sensitivity.rows[i].effect,
                  parallel.sensitivity.rows[i].effect)
            << "row " << i;
}

TEST(Workflow, ValidatesOptions)
{
    methodology::WorkflowOptions opts;
    opts.maxCriticalParameters = 0;
    const std::vector<trace::WorkloadProfile> workloads = {
        trace::workloadByName("gzip")};
    EXPECT_THROW(methodology::runRecommendedWorkflow(workloads, opts),
                 std::invalid_argument);
    opts.maxCriticalParameters = 13;
    EXPECT_THROW(methodology::runRecommendedWorkflow(workloads, opts),
                 std::invalid_argument);
}

TEST(Workflow, ConfigWithOverridesAppliesOnlyListed)
{
    const rigor::sim::ProcessorConfig base =
        methodology::configWithOverrides({});
    const rigor::sim::ProcessorConfig tweaked =
        methodology::configWithOverrides(
            {{methodology::Factor::RobEntries, rigor::doe::Level::High},
             {methodology::Factor::L2Latency, rigor::doe::Level::Low}});
    EXPECT_EQ(tweaked.robEntries, 64u);
    EXPECT_EQ(tweaked.l2.latency, 20u);
    // Untouched fields keep the typical defaults.
    EXPECT_EQ(tweaked.l1d.sizeBytes, base.l1d.sizeBytes);
    EXPECT_EQ(tweaked.memLatencyFirst, base.memLatencyFirst);
}
