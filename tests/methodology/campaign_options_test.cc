/**
 * @file
 * The unified exec::CampaignOptions API and the observability layer
 * end to end: attaching metrics/trace/manifest sinks must not perturb
 * a single response bit, the manifest must account for every design
 * cell, the metrics must agree exactly with the engine's own progress
 * counters, and one CampaignOptions value must drive all three
 * experiment drivers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "enhance/precompute.hh"
#include "exec/engine.hh"
#include "exec/journal.hh"
#include "methodology/enhancement_analysis.hh"
#include "methodology/pb_experiment.hh"
#include "methodology/rank_table.hh"
#include "methodology/workflow.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"
#include "trace/workloads.hh"

namespace
{

namespace exec = rigor::exec;
namespace methodology = rigor::methodology;
namespace obs = rigor::obs;
namespace sim = rigor::sim;
namespace trace = rigor::trace;

std::vector<trace::WorkloadProfile>
twoWorkloads()
{
    return {trace::workloadByName("gzip"),
            trace::workloadByName("mcf")};
}

methodology::PbExperimentOptions
fastOptions()
{
    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 8000;
    return opts;
}

std::size_t
countOccurrences(const std::string &haystack,
                 const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

/**
 * The equivalence guarantee: a campaign observed through every sink
 * produces bit-identical responses and an identical rank table to the
 * same campaign run dark.
 */
TEST(CampaignOptions, ObservabilitySinksDoNotPerturbResults)
{
    const auto workloads = twoWorkloads();

    const methodology::PbExperimentResult dark =
        methodology::runPbExperiment(workloads, fastOptions());

    obs::MetricsRegistry metrics;
    obs::TraceWriter trace_writer;
    obs::CampaignManifest manifest;
    methodology::PbExperimentOptions observed = fastOptions();
    observed.campaign.metrics = &metrics;
    observed.campaign.trace = &trace_writer;
    observed.campaign.manifest = &manifest;
    const methodology::PbExperimentResult lit =
        methodology::runPbExperiment(workloads, observed);

    EXPECT_EQ(dark.responses, lit.responses);
    EXPECT_EQ(methodology::rankTableDigest(dark.summaries),
              methodology::rankTableDigest(lit.summaries));
}

TEST(CampaignOptions, ManifestAccountsForEveryDesignCell)
{
    const auto workloads = twoWorkloads();
    obs::CampaignManifest manifest;
    methodology::PbExperimentOptions opts = fastOptions();
    opts.campaign.manifest = &manifest;
    const methodology::PbExperimentResult result =
        methodology::runPbExperiment(workloads, opts);

    const std::string jsonl = manifest.toJsonl();
    // One cell per (benchmark, design row).
    EXPECT_EQ(countOccurrences(jsonl, "{\"type\":\"cell\""),
              workloads.size() * result.design.numRows());
    EXPECT_EQ(countOccurrences(jsonl, "{\"type\":\"campaign\""), 1u);
    EXPECT_EQ(countOccurrences(jsonl, "{\"type\":\"summary\""), 1u);
    // The four driver phases, in campaign order.
    for (const char *phase :
         {"\"name\":\"preflight\"", "\"name\":\"screen\"",
          "\"name\":\"rank\"", "\"name\":\"aggregate\""})
        EXPECT_EQ(countOccurrences(jsonl, phase), 1u) << phase;
    // Design identity of the 43-factor foldover screen.
    EXPECT_NE(jsonl.find("\"experiment\":\"pb_screen\""),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"factors\":43,\"rows\":88"),
              std::string::npos);
    // Every cell simulated on a fresh engine, each exactly once.
    EXPECT_EQ(countOccurrences(jsonl, "\"source\":\"simulated\""),
              workloads.size() * result.design.numRows());
    // The summary carries the digest of the returned rank table.
    EXPECT_NE(
        jsonl.find("\"rank_table_digest\":\"" +
                   methodology::rankTableDigest(result.summaries) +
                   "\""),
        std::string::npos);
}

TEST(CampaignOptions, MetricsAgreeExactlyWithEngineProgress)
{
    const auto workloads = twoWorkloads();
    exec::SimulationEngine engine(exec::EngineOptions{2, true});
    obs::MetricsRegistry metrics;
    methodology::PbExperimentOptions opts = fastOptions();
    opts.campaign.engine = &engine;
    opts.campaign.metrics = &metrics;
    methodology::runPbExperiment(workloads, opts);

    const exec::ProgressSnapshot progress =
        engine.progress().snapshot();
    EXPECT_EQ(progress.runsTotal, workloads.size() * 88u);
    EXPECT_EQ(metrics.counter("engine.runs.completed").value(),
              progress.runsTotal);
    EXPECT_EQ(metrics.counter("engine.runs.completed").value(),
              progress.runsCompleted);
    EXPECT_EQ(metrics.counter("engine.runs.simulated").value(),
              progress.runsCompleted - progress.cacheHits -
                  progress.journalHits);
    EXPECT_EQ(
        metrics.histogram("engine.run.wall_seconds", {}).count(),
        progress.runsCompleted);
}

TEST(CampaignOptions, TraceCoversPhasesAndWorkerJobs)
{
    const auto workloads = twoWorkloads();
    obs::TraceWriter trace_writer;
    methodology::PbExperimentOptions opts = fastOptions();
    opts.campaign.threads = 2;
    opts.campaign.trace = &trace_writer;
    methodology::runPbExperiment(workloads, opts);

    const std::string json = trace_writer.toJson();
    for (const char *phase :
         {"\"name\":\"preflight\"", "\"name\":\"screen\"",
          "\"name\":\"rank\"", "\"name\":\"aggregate\""})
        EXPECT_NE(json.find(phase), std::string::npos) << phase;
    // One job span per run, on worker lanes (tid >= 1).
    EXPECT_EQ(countOccurrences(json, "\"cat\":\"job\""),
              workloads.size() * 88u);
    EXPECT_NE(json.find("\"cat\":\"engine\""), std::string::npos);
}

/** One CampaignOptions value configures the PB screen driver, the
 *  recommended workflow, and the enhancement analysis alike. */
TEST(CampaignOptions, OneStructDrivesAllThreeDrivers)
{
    const auto workloads = twoWorkloads();
    exec::SimulationEngine engine(exec::EngineOptions{2, true});
    obs::CampaignManifest manifest;

    exec::CampaignOptions campaign;
    campaign.threads = 2;
    campaign.engine = &engine;
    campaign.manifest = &manifest;

    methodology::PbExperimentOptions pb_opts;
    pb_opts.instructionsPerRun = 4000;
    pb_opts.campaign = campaign;
    const auto pb = methodology::runPbExperiment(workloads, pb_opts);
    EXPECT_EQ(pb.responses.size(), 2u);

    methodology::WorkflowOptions wf_opts;
    wf_opts.instructionsPerRun = 4000;
    wf_opts.warmupInstructions = 0;
    wf_opts.maxCriticalParameters = 2;
    wf_opts.campaign = campaign;
    const auto wf =
        methodology::runRecommendedWorkflow(workloads, wf_opts);
    EXPECT_FALSE(wf.criticalFactors.empty());

    struct AllHook : sim::ExecutionHook
    {
        bool
        intercept(const trace::Instruction &inst) override
        {
            return rigor::enhance::isPrecomputable(inst.op);
        }
    };
    methodology::PbExperimentOptions enh_opts;
    enh_opts.instructionsPerRun = 4000;
    enh_opts.campaign = campaign;
    const auto enh = methodology::runEnhancementExperiment(
        workloads, enh_opts,
        [](const trace::WorkloadProfile &) {
            return std::make_unique<AllHook>();
        },
        "precompute-all");
    EXPECT_FALSE(enh.comparison.shifts.empty());

    const std::string jsonl = manifest.toJsonl();
    // PB screen + workflow screen + factorial + two enhancement legs.
    EXPECT_EQ(countOccurrences(jsonl, "{\"type\":\"campaign\""), 5u);
    EXPECT_NE(jsonl.find("\"experiment\":\"workflow_factorial\""),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"experiment\":\"enhancement_base\""),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"experiment\":\"enhancement_enhanced\""),
              std::string::npos);
    // The shared engine's cache serves the repeated screens; the
    // manifest records where each response came from.
    EXPECT_GT(countOccurrences(jsonl, "\"source\":\"cache\""), 0u);
}

/** Journal replays surface in the manifest's cell provenance. */
TEST(CampaignOptions, JournalReplayAppearsAsCellSource)
{
    const auto workloads = twoWorkloads();
    const std::string path =
        testing::TempDir() + "campaign_options_journal.bin";
    std::remove(path.c_str());
    {
        exec::ResultJournal journal(path);
        methodology::PbExperimentOptions opts = fastOptions();
        opts.campaign.journal = &journal;
        methodology::runPbExperiment(workloads, opts);
    }

    exec::ResultJournal journal(path);
    ASSERT_EQ(journal.loadedRecords(), workloads.size() * 88u);
    obs::CampaignManifest manifest;
    methodology::PbExperimentOptions opts = fastOptions();
    opts.campaign.journal = &journal;
    opts.campaign.manifest = &manifest;
    methodology::runPbExperiment(workloads, opts);
    EXPECT_EQ(countOccurrences(manifest.toJsonl(),
                               "\"source\":\"journal\""),
              workloads.size() * 88u);
    std::remove(path.c_str());
}

} // namespace
