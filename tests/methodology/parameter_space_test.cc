#include <gtest/gtest.h>

#include "doe/foldover.hh"
#include "doe/pb_design.hh"
#include "methodology/parameter_space.hh"

namespace doe = rigor::doe;
namespace methodology = rigor::methodology;
namespace sim = rigor::sim;

namespace
{

std::vector<doe::Level>
uniform(doe::Level level)
{
    return std::vector<doe::Level>(methodology::numFactors, level);
}

} // namespace

TEST(ParameterSpace, CountsMatchPaper)
{
    EXPECT_EQ(methodology::numFactors, 43u);
    EXPECT_EQ(methodology::numRealParameters, 41u);
    EXPECT_EQ(methodology::parameterDefinitions().size(), 43u);
    EXPECT_EQ(methodology::factorNames().size(), 43u);
}

TEST(ParameterSpace, NamesMatchTable9Vocabulary)
{
    const std::vector<std::string> names = methodology::factorNames();
    const auto has = [&](const char *n) {
        for (const std::string &name : names)
            if (name == n)
                return true;
        return false;
    };
    EXPECT_TRUE(has("Reorder Buffer Entries"));
    EXPECT_TRUE(has("L2 Cache Latency"));
    EXPECT_TRUE(has("BPred Type"));
    EXPECT_TRUE(has("Int ALUs"));
    EXPECT_TRUE(has("Dummy Factor #1"));
    EXPECT_TRUE(has("Dummy Factor #2"));
    EXPECT_TRUE(has("Speculative Branch Update"));
}

TEST(ParameterSpace, AllLowMatchesTable6To8LowColumn)
{
    const sim::ProcessorConfig c =
        methodology::configForLevels(uniform(doe::Level::Low));
    EXPECT_EQ(c.ifqEntries, 4u);
    EXPECT_EQ(c.bpred, sim::BranchPredictorKind::TwoLevel);
    EXPECT_EQ(c.bpredPenalty, 10u);
    EXPECT_EQ(c.rasEntries, 4u);
    EXPECT_EQ(c.btbEntries, 16u);
    EXPECT_EQ(c.btbAssoc, 2u);
    EXPECT_EQ(c.specBranchUpdate, sim::BranchUpdateTiming::InCommit);
    EXPECT_EQ(c.machineWidth, 4u);
    EXPECT_EQ(c.robEntries, 8u);
    EXPECT_EQ(c.lsqEntries(), 2u); // 0.25 * 8
    EXPECT_EQ(c.memPorts, 1u);
    EXPECT_EQ(c.intAlus, 1u);
    EXPECT_EQ(c.intAluLatency, 2u);
    EXPECT_EQ(c.fpAluLatency, 5u);
    EXPECT_EQ(c.intMultLatency, 15u);
    EXPECT_EQ(c.intDivLatency, 80u);
    EXPECT_EQ(c.intDivThroughput(), 80u);
    EXPECT_EQ(c.fpSqrtLatency, 35u);
    EXPECT_EQ(c.l1i.sizeBytes, 4u * 1024);
    EXPECT_EQ(c.l1i.assoc, 1u);
    EXPECT_EQ(c.l1i.blockBytes, 16u);
    EXPECT_EQ(c.l1i.latency, 4u);
    EXPECT_EQ(c.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(c.l2.latency, 20u);
    EXPECT_EQ(c.memLatencyFirst, 200u);
    EXPECT_EQ(c.memLatencyFollowing(), 4u);
    EXPECT_EQ(c.memBandwidthBytes, 4u);
    EXPECT_EQ(c.itlb.entries, 32u);
    EXPECT_EQ(c.itlb.pageBytes, 4096u);
    EXPECT_EQ(c.itlb.assoc, 2u);
    EXPECT_EQ(c.itlb.missLatency, 80u);
    EXPECT_EQ(c.dtlb.entries, 32u);
}

TEST(ParameterSpace, AllHighMatchesTable6To8HighColumn)
{
    const sim::ProcessorConfig c =
        methodology::configForLevels(uniform(doe::Level::High));
    EXPECT_EQ(c.ifqEntries, 32u);
    EXPECT_EQ(c.bpred, sim::BranchPredictorKind::Perfect);
    EXPECT_EQ(c.bpredPenalty, 2u);
    EXPECT_EQ(c.rasEntries, 64u);
    EXPECT_EQ(c.btbEntries, 512u);
    EXPECT_EQ(c.btbAssoc, 0u); // fully associative
    EXPECT_EQ(c.specBranchUpdate, sim::BranchUpdateTiming::InDecode);
    EXPECT_EQ(c.robEntries, 64u);
    EXPECT_EQ(c.lsqEntries(), 64u); // 1.0 * 64
    EXPECT_EQ(c.memPorts, 4u);
    EXPECT_EQ(c.intAlus, 4u);
    EXPECT_EQ(c.intAluLatency, 1u);
    EXPECT_EQ(c.intDivLatency, 10u);
    EXPECT_EQ(c.fpSqrtLatency, 15u);
    EXPECT_EQ(c.l1i.sizeBytes, 128u * 1024);
    EXPECT_EQ(c.l1i.assoc, 8u);
    EXPECT_EQ(c.l1i.blockBytes, 64u);
    EXPECT_EQ(c.l1i.latency, 1u);
    EXPECT_EQ(c.l2.sizeBytes, 8192u * 1024);
    EXPECT_EQ(c.l2.blockBytes, 256u);
    EXPECT_EQ(c.l2.latency, 5u);
    EXPECT_EQ(c.memLatencyFirst, 50u);
    EXPECT_EQ(c.memBandwidthBytes, 32u);
    EXPECT_EQ(c.itlb.entries, 256u);
    EXPECT_EQ(c.itlb.pageBytes, 4096u * 1024);
    EXPECT_EQ(c.itlb.assoc, 0u);
    EXPECT_EQ(c.itlb.missLatency, 30u);
}

TEST(ParameterSpace, LinkedParametersFollowTheirMasters)
{
    // D-TLB page size and latency track the I-TLB (shaded rows).
    std::vector<doe::Level> levels = uniform(doe::Level::Low);
    levels[static_cast<std::size_t>(
        methodology::Factor::ItlbPageSize)] = doe::Level::High;
    levels[static_cast<std::size_t>(
        methodology::Factor::ItlbLatency)] = doe::Level::High;
    const sim::ProcessorConfig c = methodology::configForLevels(levels);
    EXPECT_EQ(c.dtlb.pageBytes, c.itlb.pageBytes);
    EXPECT_EQ(c.dtlb.missLatency, c.itlb.missLatency);

    // LSQ follows the ROB.
    std::vector<doe::Level> rob_high = uniform(doe::Level::Low);
    rob_high[static_cast<std::size_t>(
        methodology::Factor::RobEntries)] = doe::Level::High;
    const sim::ProcessorConfig c2 =
        methodology::configForLevels(rob_high);
    EXPECT_EQ(c2.robEntries, 64u);
    EXPECT_EQ(c2.lsqEntries(), 16u); // 0.25 * 64
}

TEST(ParameterSpace, DummyFactorsHaveNoEffectOnConfig)
{
    std::vector<doe::Level> levels = uniform(doe::Level::Low);
    const sim::ProcessorConfig base =
        methodology::configForLevels(levels);
    levels[static_cast<std::size_t>(
        methodology::Factor::DummyFactor1)] = doe::Level::High;
    levels[static_cast<std::size_t>(
        methodology::Factor::DummyFactor2)] = doe::Level::High;
    const sim::ProcessorConfig flipped =
        methodology::configForLevels(levels);
    EXPECT_EQ(base.toString(), flipped.toString());
}

TEST(ParameterSpace, EveryFoldedDesignRowValidates)
{
    // All 88 configurations of the paper's experiment must be legal.
    const doe::DesignMatrix design =
        doe::foldover(doe::pbDesign(44));
    for (std::size_t r = 0; r < design.numRows(); ++r) {
        const std::vector<doe::Level> levels = design.row(r);
        EXPECT_NO_THROW(methodology::configForLevels(levels))
            << "row " << r;
    }
}

TEST(ParameterSpace, RejectsShortLevelVector)
{
    const std::vector<doe::Level> levels(10, doe::Level::Low);
    EXPECT_THROW(methodology::configForLevels(levels),
                 std::invalid_argument);
}

TEST(ParameterSpace, UniformHelpers)
{
    EXPECT_EQ(methodology::uniformConfig(doe::Level::Low).robEntries,
              8u);
    EXPECT_EQ(methodology::uniformConfig(doe::Level::High).robEntries,
              64u);
}

TEST(ParameterSpace, FactorNameLookup)
{
    EXPECT_EQ(methodology::factorName(methodology::Factor::RobEntries),
              "Reorder Buffer Entries");
    EXPECT_EQ(
        methodology::factorName(methodology::Factor::DummyFactor2),
        "Dummy Factor #2");
}
