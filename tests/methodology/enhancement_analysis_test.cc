#include <gtest/gtest.h>

#include <memory>

#include "methodology/enhancement_analysis.hh"
#include "methodology/parameter_space.hh"
#include "methodology/published_data.hh"
#include "trace/workloads.hh"

namespace doe = rigor::doe;
namespace methodology = rigor::methodology;

namespace
{

std::vector<doe::FactorRankSummary>
summaries(std::initializer_list<std::pair<const char *, unsigned long>>
              items)
{
    std::vector<doe::FactorRankSummary> out;
    for (const auto &[name, sum] : items) {
        doe::FactorRankSummary s;
        s.name = name;
        s.sumOfRanks = sum;
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace

TEST(EnhancementAnalysis, DeltasComputedPerFactor)
{
    const auto base = summaries({{"A", 10}, {"B", 20}, {"C", 30}});
    const auto enhanced = summaries({{"A", 25}, {"B", 18}, {"C", 30}});
    const methodology::EnhancementComparison cmp =
        methodology::compareRankTables(base, enhanced);

    EXPECT_EQ(cmp.shift("A").delta(), 15);
    EXPECT_EQ(cmp.shift("B").delta(), -2);
    EXPECT_EQ(cmp.shift("C").delta(), 0);
}

TEST(EnhancementAnalysis, ShiftsSortedByMagnitude)
{
    const auto base = summaries({{"A", 10}, {"B", 20}, {"C", 30}});
    const auto enhanced = summaries({{"A", 12}, {"B", 50}, {"C", 29}});
    const methodology::EnhancementComparison cmp =
        methodology::compareRankTables(base, enhanced);
    EXPECT_EQ(cmp.shifts[0].name, "B");
    EXPECT_EQ(cmp.shifts[1].name, "A");
    EXPECT_EQ(cmp.shifts[2].name, "C");
}

TEST(EnhancementAnalysis, MatchesByNameNotOrder)
{
    const auto base = summaries({{"A", 10}, {"B", 20}});
    const auto enhanced = summaries({{"B", 22}, {"A", 11}});
    const methodology::EnhancementComparison cmp =
        methodology::compareRankTables(base, enhanced);
    EXPECT_EQ(cmp.shift("A").sumAfter, 11ul);
    EXPECT_EQ(cmp.shift("B").sumAfter, 22ul);
}

TEST(EnhancementAnalysis, BiggestReliefAmongTop)
{
    const auto base =
        summaries({{"A", 10}, {"B", 20}, {"C", 30}, {"Z", 400}});
    const auto enhanced =
        summaries({{"A", 12}, {"B", 35}, {"C", 28}, {"Z", 300}});
    const methodology::EnhancementComparison cmp =
        methodology::compareRankTables(base, enhanced);
    // Z moved most overall but is not among the top-3 significant
    // base factors; among {A, B, C} the biggest riser is B.
    EXPECT_EQ(cmp.biggestReliefAmongTop(base, 3).name, "B");
}

TEST(EnhancementAnalysis, PublishedTablesHeadlineResult)
{
    // Reproduce the paper's section 4.3 conclusion directly from the
    // published tables: among the ten significant parameters,
    // instruction precomputation relieves Int ALUs the most.
    const auto base = methodology::publishedTable9().asSummaries();
    const auto enhanced =
        methodology::publishedTable12().asSummaries();
    const methodology::EnhancementComparison cmp =
        methodology::compareRankTables(base, enhanced);
    EXPECT_EQ(cmp.biggestReliefAmongTop(base, 10).name, "Int ALUs");
    EXPECT_EQ(cmp.shift("Int ALUs").delta(), 19); // 118 -> 137
}

TEST(EnhancementAnalysis, DuplicateEnhancedFactorsRejected)
{
    // A duplicate name in the enhanced table must be an error, not a
    // silent first-wins match.
    const auto base = summaries({{"A", 10}, {"B", 20}});
    const auto enhanced = summaries({{"A", 12}, {"A", 99}});
    EXPECT_THROW(methodology::compareRankTables(base, enhanced),
                 std::invalid_argument);
}

TEST(EnhancementAnalysis, PairedExperimentSharesOneEngine)
{
    struct NoopHook : rigor::sim::ExecutionHook
    {
        bool intercept(const rigor::trace::Instruction &) override
        {
            return false;
        }
    };

    const std::vector<rigor::trace::WorkloadProfile> workloads = {
        rigor::trace::workloadByName("gzip")};
    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 4000;
    opts.campaign.threads = 2;

    const methodology::EnhancementExperimentResult result =
        methodology::runEnhancementExperiment(
            workloads, opts,
            [](const rigor::trace::WorkloadProfile &)
                -> std::unique_ptr<rigor::sim::ExecutionHook> {
                return std::make_unique<NoopHook>();
            },
            "noop");

    // Both legs ran: 88 base + 88 enhanced runs on one engine.
    EXPECT_EQ(result.execution.runsTotal, 176u);
    EXPECT_EQ(result.execution.runsCompleted, 176u);
    EXPECT_EQ(result.base.responses[0].size(), 88u);
    EXPECT_EQ(result.enhanced.responses[0].size(), 88u);
    EXPECT_EQ(result.comparison.shifts.size(),
              methodology::numFactors);
    // A do-nothing hook leaves the responses identical, so every
    // sum-of-ranks shift is zero.
    for (const methodology::RankShift &s : result.comparison.shifts)
        EXPECT_EQ(s.delta(), 0) << s.name;
}

TEST(EnhancementAnalysis, SharedEngineMakesBaseLegFree)
{
    const std::vector<rigor::trace::WorkloadProfile> workloads = {
        rigor::trace::workloadByName("gzip")};
    rigor::exec::SimulationEngine engine(
        rigor::exec::EngineOptions{2, true});
    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 4000;
    opts.campaign.engine = &engine;

    // An earlier base experiment on the same engine...
    methodology::runPbExperiment(workloads, opts);
    EXPECT_EQ(engine.progress().snapshot().cacheHits, 0u);

    // ...makes the paired experiment's base leg pure cache hits.
    methodology::runEnhancementExperiment(
        workloads, opts,
        [](const rigor::trace::WorkloadProfile &)
            -> std::unique_ptr<rigor::sim::ExecutionHook> {
            return nullptr;
        },
        "noop");
    EXPECT_GE(engine.progress().snapshot().cacheHits, 88u);
}

TEST(EnhancementAnalysis, ExperimentRequiresHookFactory)
{
    const std::vector<rigor::trace::WorkloadProfile> workloads = {
        rigor::trace::workloadByName("gzip")};
    EXPECT_THROW(methodology::runEnhancementExperiment(
                     workloads, methodology::PbExperimentOptions{},
                     {}, "id"),
                 std::invalid_argument);
}

TEST(EnhancementAnalysis, MismatchedFactorSetsRejected)
{
    const auto base = summaries({{"A", 10}, {"B", 20}});
    const auto enhanced = summaries({{"A", 10}, {"X", 20}});
    EXPECT_THROW(methodology::compareRankTables(base, enhanced),
                 std::invalid_argument);
    const auto short_list = summaries({{"A", 10}});
    EXPECT_THROW(methodology::compareRankTables(base, short_list),
                 std::invalid_argument);
}

TEST(EnhancementAnalysis, ToStringShowsDeltas)
{
    const auto base = summaries({{"A", 10}, {"B", 20}});
    const auto enhanced = summaries({{"A", 15}, {"B", 20}});
    const methodology::EnhancementComparison cmp =
        methodology::compareRankTables(base, enhanced);
    const std::string s = cmp.toString();
    EXPECT_NE(s.find("+5"), std::string::npos);
    EXPECT_NE(s.find("SumBefore"), std::string::npos);
}

TEST(EnhancementAnalysis, UnknownFactorLookupThrows)
{
    const auto base = summaries({{"A", 10}});
    const methodology::EnhancementComparison cmp =
        methodology::compareRankTables(base, base);
    EXPECT_THROW(cmp.shift("nope"), std::invalid_argument);
}
