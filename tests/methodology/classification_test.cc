#include <gtest/gtest.h>

#include <cmath>

#include "methodology/classification.hh"

namespace methodology = rigor::methodology;

TEST(Classification, DefaultThresholdIsRootOf4000)
{
    EXPECT_DOUBLE_EQ(methodology::kSimilarityThresholdSquared, 4000.0);
    EXPECT_NEAR(
        methodology::defaultSimilarityThreshold(),
        std::sqrt(methodology::kSimilarityThresholdSquared), 1e-12);
    EXPECT_NEAR(methodology::defaultSimilarityThreshold(), 63.2, 0.05);
}

TEST(Classification, GroupsSimilarVectors)
{
    const std::vector<std::string> names = {"a", "b", "c"};
    const std::vector<std::vector<double>> vectors = {
        {1.0, 2.0, 3.0},
        {1.5, 2.5, 3.5}, // close to a
        {50.0, 60.0, 70.0},
    };
    const methodology::ClassificationResult r =
        methodology::classifyBenchmarks(names, vectors, 5.0);
    ASSERT_EQ(r.groups.size(), 2u);
    EXPECT_EQ(r.groups[0], (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(r.groups[1], (std::vector<std::string>{"c"}));
}

TEST(Classification, DistanceMatrixIsExposed)
{
    const std::vector<std::string> names = {"x", "y"};
    const std::vector<std::vector<double>> vectors = {{0.0, 0.0},
                                                      {3.0, 4.0}};
    const methodology::ClassificationResult r =
        methodology::classifyBenchmarks(names, vectors, 1.0);
    EXPECT_DOUBLE_EQ(r.distances.at(0, 1), 5.0);
    EXPECT_EQ(r.groups.size(), 2u);
}

TEST(Classification, ThresholdBoundaryIsExclusive)
{
    const std::vector<std::string> names = {"x", "y"};
    const std::vector<std::vector<double>> vectors = {{0.0}, {5.0}};
    // Distance exactly 5: "below the threshold" is strict, as in the
    // paper (62.0 < 63.2 similar; 63.6 not).
    EXPECT_EQ(methodology::classifyBenchmarks(names, vectors, 5.0)
                  .groups.size(),
              2u);
    EXPECT_EQ(methodology::classifyBenchmarks(names, vectors, 5.01)
                  .groups.size(),
              1u);
}

TEST(Classification, GroupsToStringOneGroupPerLine)
{
    const std::vector<std::string> names = {"gzip", "mesa", "art"};
    const std::vector<std::vector<double>> vectors = {
        {0.0}, {1.0}, {100.0}};
    const methodology::ClassificationResult r =
        methodology::classifyBenchmarks(names, vectors, 10.0);
    EXPECT_EQ(r.groupsToString(), "gzip, mesa\nart\n");
}

TEST(Classification, ValidatesInput)
{
    const std::vector<std::string> names = {"a"};
    EXPECT_THROW(methodology::classifyBenchmarks(names, {}, 1.0),
                 std::invalid_argument);
    const std::vector<std::vector<double>> ragged = {{1.0},
                                                     {1.0, 2.0}};
    const std::vector<std::string> two = {"a", "b"};
    EXPECT_THROW(methodology::classifyBenchmarks(two, ragged, 1.0),
                 std::invalid_argument);
}
