#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/diagnostic.hh"
#include "check/preflight.hh"
#include "check/rule_ids.hh"
#include "check/stability_check.hh"
#include "exec/engine.hh"
#include "methodology/parameter_space.hh"
#include "methodology/rank_stability.hh"
#include "trace/workloads.hh"

namespace check = rigor::check;
namespace methodology = rigor::methodology;
namespace rules = rigor::check::rules;
namespace stats = rigor::stats;
namespace trace = rigor::trace;

namespace
{

const std::vector<std::string> kBench = {"b0"};
const std::vector<std::string> kTwoFactors = {"A", "B"};

stats::BootstrapOptions
fastBootstrap()
{
    stats::BootstrapOptions bootstrap;
    bootstrap.iterations = 2000;
    bootstrap.seed = 11;
    return bootstrap;
}

} // namespace

TEST(AnalyzeRankStability, IdenticalReplicatesAreCertain)
{
    // Three identical replicates: every resample reproduces the same
    // effects, so intervals are zero-width and nothing ever flips.
    const std::vector<std::vector<double>> replicate = {{10.0, 2.0}};
    const std::vector<std::vector<std::vector<double>>> effects = {
        replicate, replicate, replicate};
    const methodology::RankStabilityReport report =
        methodology::analyzeRankStability(effects, kBench,
                                          kTwoFactors,
                                          fastBootstrap(), 2);
    ASSERT_EQ(report.factors.size(), 2u);
    EXPECT_EQ(report.factors[0].name, "A");
    EXPECT_EQ(report.factors[0].pointRank, 1u);
    EXPECT_DOUBLE_EQ(report.factors[0].rank.lower, 1.0);
    EXPECT_DOUBLE_EQ(report.factors[0].rank.upper, 1.0);
    EXPECT_EQ(report.factors[1].name, "B");
    EXPECT_DOUBLE_EQ(report.factors[1].rank.lower, 2.0);
    EXPECT_DOUBLE_EQ(report.factors[1].rank.upper, 2.0);
    EXPECT_DOUBLE_EQ(report.flipProbability[0][1], 0.0);
}

TEST(AnalyzeRankStability, HandComputedFlipProbability)
{
    // Two replicates that disagree on the order of A and B. A
    // bootstrap resample of {0, 1} with replacement lands on (0,0),
    // (0,1), (1,0), (1,1) with probability 1/4 each; only (1,1)
    // reproduces replicate 1's inverted order, so the flip
    // probability converges to 0.25.
    const std::vector<std::vector<std::vector<double>>> effects = {
        {{10.0, 2.0}}, // A first
        {{4.0, 6.0}},  // B first
    };
    const methodology::RankStabilityReport report =
        methodology::analyzeRankStability(effects, kBench,
                                          kTwoFactors,
                                          fastBootstrap(), 2);
    // Mean effects are A=7, B=4, so the point order is A, B.
    EXPECT_EQ(report.factors[0].name, "A");
    EXPECT_NEAR(report.flipProbability[0][1], 0.25, 0.03);
    EXPECT_DOUBLE_EQ(report.flipProbability[0][1],
                     report.flipProbability[1][0]);
    EXPECT_DOUBLE_EQ(report.flipProbability[0][0], 0.0);
}

TEST(AnalyzeRankStability, ThreeWayHandComputedFlips)
{
    // C is far below A and B in every replicate: it must never flip
    // against either, while A/B flip with the (1,1)-resample
    // probability of 1/4.
    const std::vector<std::vector<std::vector<double>>> effects = {
        {{10.0, 2.0, 0.5}},
        {{4.0, 6.0, 0.25}},
    };
    const std::vector<std::string> names = {"A", "B", "C"};
    const methodology::RankStabilityReport report =
        methodology::analyzeRankStability(effects, kBench, names,
                                          fastBootstrap(), 3);
    EXPECT_NEAR(report.flipProbability[0][1], 0.25, 0.03);
    EXPECT_DOUBLE_EQ(report.flipProbability[0][2], 0.0);
    EXPECT_DOUBLE_EQ(report.flipProbability[1][2], 0.0);
}

TEST(AnalyzeRankStability, DeterministicForFixedSeed)
{
    const std::vector<std::vector<std::vector<double>>> effects = {
        {{10.0, 2.0}}, {{4.0, 6.0}}, {{8.0, 3.0}}};
    const methodology::RankStabilityReport a =
        methodology::analyzeRankStability(effects, kBench,
                                          kTwoFactors,
                                          fastBootstrap(), 2);
    const methodology::RankStabilityReport b =
        methodology::analyzeRankStability(effects, kBench,
                                          kTwoFactors,
                                          fastBootstrap(), 2);
    EXPECT_EQ(a.toJson(), b.toJson());
}

TEST(AnalyzeRankStability, DistanceMatrixCovered)
{
    const std::vector<std::string> benchmarks = {"b0", "b1"};
    const std::vector<std::vector<std::vector<double>>> effects = {
        {{10.0, 2.0}, {9.0, 3.0}},
        {{8.0, 4.0}, {7.0, 5.0}},
        {{9.0, 3.0}, {8.0, 4.0}},
    };
    const methodology::RankStabilityReport report =
        methodology::analyzeRankStability(effects, benchmarks,
                                          kTwoFactors,
                                          fastBootstrap(), 2);
    ASSERT_EQ(report.distance.size(), 2u);
    EXPECT_LE(report.distanceLower.at(0, 1),
              report.distance.at(0, 1));
    EXPECT_GE(report.distanceUpper.at(0, 1),
              report.distance.at(0, 1));
}

TEST(AnalyzeRankStability, ReportRoundTripsThroughLint)
{
    const std::vector<std::vector<std::vector<double>>> effects = {
        {{10.0, 2.0}}, {{4.0, 6.0}}, {{8.0, 3.0}}};
    methodology::RankStabilityReport report =
        methodology::analyzeRankStability(effects, kBench,
                                          kTwoFactors,
                                          fastBootstrap(), 2);
    report.replicates = 3;
    check::DiagnosticSink sink;
    check::lintStabilityReport(report.toJson(), "report.json", {}, 3,
                               sink);
    EXPECT_FALSE(sink.hasRule(rules::kStatsReportSyntax))
        << sink.toString();
}

namespace
{

methodology::RankStabilityOptions
fastCampaign(unsigned replicates)
{
    methodology::RankStabilityOptions options;
    options.base.instructionsPerRun = 8000;
    options.base.campaign.replication.replicates = replicates;
    options.base.campaign.replication.bootstrap.iterations = 400;
    // The tiny two-benchmark screen genuinely contains unresolved
    // mid-table orderings; the test asserts on the report, not on
    // achieving a perfectly separated top 10.
    options.base.campaign.skipPreflight = true;
    return options;
}

std::vector<trace::WorkloadProfile>
twoWorkloads()
{
    return {trace::workloadByName("gzip"),
            trace::workloadByName("mcf")};
}

} // namespace

TEST(ReplicatedPbExperiment, UnderReplicatedFailsPreflight)
{
    methodology::RankStabilityOptions options = fastCampaign(2);
    options.base.campaign.skipPreflight = false;
    try {
        methodology::runReplicatedPbExperiment(twoWorkloads(),
                                               options);
        FAIL() << "under-replicated campaign must not run";
    } catch (const check::PreflightError &e) {
        EXPECT_TRUE(e.sink().hasRule(rules::kCampaignUnderReplicated))
            << e.what();
    }
}

TEST(ReplicatedPbExperiment, ReplicatedCampaignProducesStability)
{
    const auto workloads = twoWorkloads();
    const methodology::ReplicatedPbResult outcome =
        methodology::runReplicatedPbExperiment(workloads,
                                               fastCampaign(3));

    EXPECT_EQ(outcome.stability.replicates, 3u);
    ASSERT_EQ(outcome.stability.benchmarks.size(), 2u);
    EXPECT_EQ(outcome.stability.benchmarks[0], "gzip");
    ASSERT_EQ(outcome.stability.factors.size(),
              methodology::numFactors);
    for (const methodology::FactorStability &factor :
         outcome.stability.factors) {
        EXPECT_LE(factor.rank.lower, factor.rank.upper);
        EXPECT_GE(factor.rank.lower, 1.0);
        EXPECT_LE(factor.rank.upper,
                  static_cast<double>(methodology::numFactors));
    }

    // The pooled screen keeps the base benchmark names and the full
    // PB structure.
    ASSERT_EQ(outcome.pooled.benchmarks.size(), 2u);
    EXPECT_EQ(outcome.pooled.benchmarks[0], "gzip");
    EXPECT_EQ(outcome.pooled.effects.size(), 2u);
    EXPECT_EQ(outcome.pooled.summaries.size(),
              methodology::numFactors);

    // The report feeds the standalone lint path without a syntax
    // diagnostic.
    check::DiagnosticSink sink;
    check::lintStabilityReport(outcome.stability.toJson(),
                               "report.json", {}, 3, sink);
    EXPECT_FALSE(sink.hasRule(rules::kStatsReportSyntax));
}

TEST(ReplicatedPbExperiment, BitIdenticalAcrossThreadCounts)
{
    const auto workloads = twoWorkloads();

    methodology::RankStabilityOptions serial = fastCampaign(3);
    serial.base.campaign.threads = 1;
    rigor::exec::EngineOptions serial_engine;
    serial_engine.threads = 1;
    rigor::exec::SimulationEngine one(serial_engine);
    serial.base.campaign.engine = &one;

    methodology::RankStabilityOptions parallel = fastCampaign(3);
    rigor::exec::EngineOptions parallel_engine;
    parallel_engine.threads = 4;
    rigor::exec::SimulationEngine four(parallel_engine);
    parallel.base.campaign.engine = &four;

    const std::string a =
        methodology::runReplicatedPbExperiment(workloads, serial)
            .stability.toJson();
    const std::string b =
        methodology::runReplicatedPbExperiment(workloads, parallel)
            .stability.toJson();
    EXPECT_EQ(a, b);
}
