#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "exec/engine.hh"
#include "methodology/parameter_space.hh"
#include "sample/sampling.hh"
#include "sim/core.hh"
#include "trace/generator.hh"
#include "trace/workloads.hh"

namespace doe = rigor::doe;
namespace exec = rigor::exec;
namespace methodology = rigor::methodology;
namespace sample = rigor::sample;
namespace sim = rigor::sim;
namespace trace = rigor::trace;

namespace
{

sample::SamplingOptions
enabledOptions()
{
    sample::SamplingOptions options;
    options.enabled = true;
    return options;
}

} // namespace

// ----- SamplingOptions validation and identity -----

TEST(SamplingOptions, DefaultsAreValidWhenEnabled)
{
    EXPECT_NO_THROW(enabledOptions().validate());
}

TEST(SamplingOptions, DisabledSkipsValidation)
{
    sample::SamplingOptions options; // disabled, fields untouched
    options.unitInstructions = 0;
    EXPECT_NO_THROW(options.validate());
}

TEST(SamplingOptions, RejectsMalformedSchedules)
{
    sample::SamplingOptions options = enabledOptions();
    options.unitInstructions = 0;
    EXPECT_THROW(options.validate(), std::invalid_argument);

    options = enabledOptions();
    options.intervalInstructions = 0;
    EXPECT_THROW(options.validate(), std::invalid_argument);

    // Detailed phase longer than the period: nothing left to skip.
    options = enabledOptions();
    options.warmupInstructions = 9500;
    options.unitInstructions = 1000;
    options.intervalInstructions = 10000;
    EXPECT_THROW(options.validate(), std::invalid_argument);

    options = enabledOptions();
    options.targetRelativeError = 0.0;
    EXPECT_THROW(options.validate(), std::invalid_argument);

    options = enabledOptions();
    options.targetRelativeError = 1.0;
    EXPECT_THROW(options.validate(), std::invalid_argument);

    options = enabledOptions();
    options.confidence = 1.0;
    EXPECT_THROW(options.validate(), std::invalid_argument);
}

TEST(SamplingOptions, IdNamesScheduleAndIsEmptyWhenDisabled)
{
    sample::SamplingOptions options = enabledOptions();
    options.unitInstructions = 500;
    options.warmupInstructions = 1500;
    options.intervalInstructions = 8000;
    EXPECT_EQ(options.id(), "s:u500:w1500:i8000");
    options.enabled = false;
    EXPECT_EQ(options.id(), "");
}

// ----- Golden CI vectors -----

TEST(SummarizeUnits, KnownVectorMatchesStudentT)
{
    // n = 4, mean = 2.5, s = sqrt(5/3); t(3, 0.975) = 3.18245 gives
    // half-width t * s / sqrt(n) = 2.05426.
    const std::vector<double> cpis = {1.0, 2.0, 3.0, 4.0};
    const sample::SampleSummary summary =
        sample::summarizeUnits(cpis, 100000, 12000, 4000, 0.95);
    EXPECT_EQ(summary.units, 4u);
    EXPECT_EQ(summary.streamInstructions, 100000u);
    EXPECT_EQ(summary.detailedInstructions, 12000u);
    EXPECT_EQ(summary.measuredInstructions, 4000u);
    EXPECT_DOUBLE_EQ(summary.cpiMean, 2.5);
    EXPECT_NEAR(summary.cpiStddev, 1.2909944487, 1e-9);
    EXPECT_NEAR(summary.ciHalfWidth, 2.05426, 1e-4);
    EXPECT_NEAR(summary.relativeError, 2.05426 / 2.5, 1e-4);
    EXPECT_DOUBLE_EQ(summary.estimatedCycles, 2.5 * 100000);
}

TEST(SummarizeUnits, ConstantUnitsHaveZeroWidth)
{
    const std::vector<double> cpis = {2.0, 2.0, 2.0, 2.0, 2.0};
    const sample::SampleSummary summary =
        sample::summarizeUnits(cpis, 50000, 15000, 5000, 0.95);
    EXPECT_DOUBLE_EQ(summary.cpiMean, 2.0);
    EXPECT_DOUBLE_EQ(summary.cpiStddev, 0.0);
    EXPECT_DOUBLE_EQ(summary.ciHalfWidth, 0.0);
    EXPECT_DOUBLE_EQ(summary.relativeError, 0.0);
    EXPECT_TRUE(summary.meetsTarget(0.05));
}

TEST(SummarizeUnits, SingleUnitNeverMeetsTarget)
{
    const std::vector<double> cpis = {2.0};
    const sample::SampleSummary summary =
        sample::summarizeUnits(cpis, 10000, 3000, 1000, 0.95);
    EXPECT_EQ(summary.units, 1u);
    EXPECT_FALSE(summary.meetsTarget(0.5));
}

TEST(SummarizeUnits, TighterConfidenceWidensInterval)
{
    const std::vector<double> cpis = {1.0, 1.5, 2.0, 2.5, 3.0};
    const sample::SampleSummary narrow =
        sample::summarizeUnits(cpis, 1000, 100, 50, 0.90);
    const sample::SampleSummary wide =
        sample::summarizeUnits(cpis, 1000, 100, 50, 0.99);
    EXPECT_LT(narrow.ciHalfWidth, wide.ciHalfWidth);
}

// ----- runSampled behavior -----

TEST(RunSampled, AccountsDetailedAndMeasuredInstructions)
{
    const trace::WorkloadProfile profile =
        trace::workloadByName("gzip");
    sample::SamplingOptions options = enabledOptions();
    options.unitInstructions = 500;
    options.warmupInstructions = 1000;
    options.intervalInstructions = 5000;

    sim::SuperscalarCore core(
        methodology::uniformConfig(doe::Level::High));
    trace::SyntheticTraceGenerator gen(profile, 25000);
    const sample::SampleSummary summary =
        sample::runSampled(core, gen, options);

    EXPECT_EQ(summary.units, 5u);
    EXPECT_EQ(summary.measuredInstructions, 5u * 500u);
    EXPECT_EQ(summary.detailedInstructions, 5u * 1500u);
    EXPECT_EQ(summary.streamInstructions, 25000u);
    EXPECT_GT(summary.cpiMean, 0.0);
    EXPECT_GT(summary.estimatedCycles, 0.0);
}

TEST(RunSampled, RejectsStreamShorterThanOneDetailedPhase)
{
    const trace::WorkloadProfile profile =
        trace::workloadByName("gzip");
    sample::SamplingOptions options = enabledOptions();
    sim::SuperscalarCore core(
        methodology::uniformConfig(doe::Level::High));
    trace::SyntheticTraceGenerator gen(profile, 2000); // < 3000
    EXPECT_THROW(sample::runSampled(core, gen, options),
                 std::invalid_argument);
}

TEST(RunSampled, DeterministicAcrossRepeats)
{
    const trace::WorkloadProfile profile =
        trace::workloadByName("mcf");
    sample::SamplingOptions options = enabledOptions();
    options.unitInstructions = 400;
    options.warmupInstructions = 800;
    options.intervalInstructions = 4000;

    sample::SampleSummary runs[2];
    for (sample::SampleSummary &out : runs) {
        sim::SuperscalarCore core(
            methodology::uniformConfig(doe::Level::Low));
        trace::SyntheticTraceGenerator gen(profile, 20000);
        out = sample::runSampled(core, gen, options);
    }
    EXPECT_EQ(runs[0].units, runs[1].units);
    EXPECT_EQ(runs[0].detailedInstructions,
              runs[1].detailedInstructions);
    EXPECT_DOUBLE_EQ(runs[0].cpiMean, runs[1].cpiMean);
    EXPECT_DOUBLE_EQ(runs[0].cpiStddev, runs[1].cpiStddev);
    EXPECT_DOUBLE_EQ(runs[0].ciHalfWidth, runs[1].ciHalfWidth);
    EXPECT_DOUBLE_EQ(runs[0].estimatedCycles,
                     runs[1].estimatedCycles);
}

TEST(RunSampled, DeterministicAcrossEngineThreadCounts)
{
    const auto all = rigor::trace::spec2000Workloads();
    const std::vector<trace::WorkloadProfile> workloads(
        all.begin(), all.begin() + 3);

    const auto responsesWith =
        [&workloads](unsigned threads) -> std::vector<double> {
        std::vector<exec::SimJob> jobs;
        for (const trace::WorkloadProfile &w : workloads) {
            for (const doe::Level level :
                 {doe::Level::Low, doe::Level::High}) {
                exec::SimJob job;
                job.workload = &w;
                job.config = methodology::uniformConfig(level);
                job.instructions = 20000;
                job.sampling.enabled = true;
                job.label = w.name;
                jobs.push_back(std::move(job));
            }
        }
        exec::SimulationEngine engine(
            exec::EngineOptions{threads, false});
        return engine.run(jobs);
    };

    const std::vector<double> serial = responsesWith(1);
    const std::vector<double> parallel = responsesWith(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_DOUBLE_EQ(serial[i], parallel[i]) << "job " << i;
}
