#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "exec/engine.hh"
#include "methodology/pb_experiment.hh"
#include "methodology/rank_table.hh"
#include "trace/workloads.hh"

namespace exec = rigor::exec;
namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

namespace
{

/**
 * The PR's acceptance scenario: the sampled PB screen must reproduce
 * the full-run top-10 factor ranking at >= 5x fewer
 * detailed-simulated instructions, with every run's CPI CI half-width
 * within the configured target relative error.
 */
struct ScreenRun
{
    methodology::PbExperimentResult result;
    std::uint64_t detailedInstructions = 0;
    double maxRelativeError = 0.0;
    std::uint64_t sampledEvents = 0;
};

ScreenRun
runScreen(const std::vector<trace::WorkloadProfile> &workloads,
          bool sampled)
{
    methodology::PbExperimentOptions options;
    options.instructionsPerRun = 200000;
    if (sampled) {
        // 80 units of 250 instructions, 500 detailed per 2500
        // period: exactly 1/5 of the stream simulated in detail.
        // Many small units beat few large ones here — the synthetic
        // streams drift (working sets build up over the run), and a
        // dense unit schedule tracks the drift instead of aliasing
        // it into the between-unit variance.
        options.campaign.sampling.enabled = true;
        options.campaign.sampling.unitInstructions = 250;
        options.campaign.sampling.warmupInstructions = 250;
        options.campaign.sampling.intervalInstructions = 2500;
        options.campaign.sampling.targetRelativeError = 0.3;
    }

    exec::SimulationEngine engine(exec::EngineOptions{0, false});
    options.campaign.engine = &engine;

    ScreenRun run;
    engine.setJobObserver([&run](const exec::JobEvent &event) {
        if (!event.sampled)
            return;
        ++run.sampledEvents;
        run.maxRelativeError = std::max(
            run.maxRelativeError, event.sample.relativeError);
    });

    const exec::ProgressSnapshot before =
        engine.progress().snapshot();
    run.result = methodology::runPbExperiment(workloads, options);
    const exec::ProgressSnapshot after =
        engine.progress().snapshot();
    run.detailedInstructions =
        after.simulatedInstructions - before.simulatedInstructions;
    return run;
}

} // namespace

TEST(SampledScreen, ReproducesTopTenAtFiveFoldFewerInstructions)
{
    // One compute-bound, one I-bound, one FP, one memory-heavy
    // profile: a small cross-section of the suite's behaviors.
    std::vector<trace::WorkloadProfile> workloads;
    for (const char *name : {"gzip", "gcc", "mesa", "art"})
        workloads.push_back(trace::workloadByName(name));

    const ScreenRun full = runScreen(workloads, false);
    const ScreenRun sampled = runScreen(workloads, true);

    // The sampled screen really sampled: one summary per run, and
    // every run's CI is within the configured target.
    EXPECT_EQ(full.sampledEvents, 0u);
    EXPECT_EQ(sampled.sampledEvents,
              workloads.size() * sampled.result.design.numRows());
    EXPECT_LE(sampled.maxRelativeError, 0.3);

    // >= 5x fewer detailed-simulated instructions.
    ASSERT_GT(sampled.detailedInstructions, 0u);
    const double ratio =
        static_cast<double>(full.detailedInstructions) /
        static_cast<double>(sampled.detailedInstructions);
    EXPECT_GE(ratio, 5.0);

    // The top-10 significant-factor set of the full screen survives
    // the sampling.
    const std::vector<std::string> full_top =
        methodology::topFactorNames(full.result.summaries, 10);
    const std::vector<std::string> sampled_top =
        methodology::topFactorNames(sampled.result.summaries, 10);
    const std::set<std::string> full_set(full_top.begin(),
                                         full_top.end());
    const std::set<std::string> sampled_set(sampled_top.begin(),
                                            sampled_top.end());
    EXPECT_EQ(full_set, sampled_set);

    // And the single most significant factor is the same one.
    ASSERT_FALSE(full_top.empty());
    ASSERT_FALSE(sampled_top.empty());
    EXPECT_EQ(full_top.front(), sampled_top.front());
}
