#include <gtest/gtest.h>

#include <vector>

#include "stats/yates.hh"

namespace stats = rigor::stats;

TEST(Yates, SingleFactor)
{
    // Responses: low = 10, high = 14. Total 24, contrast 4.
    const std::vector<double> responses = {10.0, 14.0};
    const std::vector<double> c = stats::yatesContrasts(responses);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_DOUBLE_EQ(c[0], 24.0);
    EXPECT_DOUBLE_EQ(c[1], 4.0);
}

TEST(Yates, TwoFactorsStandardOrder)
{
    // Standard order (1), a, b, ab.
    const std::vector<double> responses = {1.0, 3.0, 5.0, 11.0};
    const std::vector<double> c = stats::yatesContrasts(responses);
    ASSERT_EQ(c.size(), 4u);
    EXPECT_DOUBLE_EQ(c[0], 20.0);                  // total
    EXPECT_DOUBLE_EQ(c[1], (3 - 1) + (11 - 5));    // A = 8
    EXPECT_DOUBLE_EQ(c[2], (5 + 11) - (1 + 3));    // B = 12
    EXPECT_DOUBLE_EQ(c[3], (11 - 5) - (3 - 1));    // AB = 4
}

TEST(Yates, ThreeFactorsAgainstDirectContrasts)
{
    const std::vector<double> y = {3.0, 7.0, 1.0, 9.0,
                                   2.0, 8.0, 5.0, 13.0};
    const std::vector<double> c = stats::yatesContrasts(y);
    ASSERT_EQ(c.size(), 8u);

    // Direct computation: contrast for mask m is
    // sum over i of y[i] * prod_{j in m} sign_j(i).
    for (std::uint32_t m = 0; m < 8; ++m) {
        double expected = 0.0;
        for (std::uint32_t i = 0; i < 8; ++i) {
            int sign = 1;
            for (std::uint32_t j = 0; j < 3; ++j)
                if (m & (1u << j))
                    sign *= (i & (1u << j)) ? 1 : -1;
            expected += sign * y[i];
        }
        EXPECT_DOUBLE_EQ(c[m], expected) << "mask " << m;
    }
}

TEST(Yates, PureAdditiveModelHasNoInteractions)
{
    // y = 10 + 2*a + 5*b + 1*c (a, b, c in {0, 1}).
    std::vector<double> y(8);
    for (std::uint32_t i = 0; i < 8; ++i)
        y[i] = 10.0 + 2.0 * ((i >> 0) & 1) + 5.0 * ((i >> 1) & 1) +
               1.0 * ((i >> 2) & 1);
    const std::vector<double> c = stats::yatesContrasts(y);
    // All interaction contrasts (popcount >= 2) vanish.
    for (std::uint32_t m = 0; m < 8; ++m)
        if (stats::contrastOrder(m) >= 2)
            EXPECT_NEAR(c[m], 0.0, 1e-12) << "mask " << m;
    // Main effect contrasts = coefficient * 2^(k-1).
    EXPECT_DOUBLE_EQ(c[1], 2.0 * 4);
    EXPECT_DOUBLE_EQ(c[2], 5.0 * 4);
    EXPECT_DOUBLE_EQ(c[4], 1.0 * 4);
}

TEST(Yates, RejectsNonPowerOfTwo)
{
    const std::vector<double> y = {1.0, 2.0, 3.0};
    EXPECT_THROW(stats::yatesContrasts(y), std::invalid_argument);
    EXPECT_THROW(stats::yatesContrasts({}), std::invalid_argument);
}

TEST(Yates, ContrastLabels)
{
    const std::vector<std::string> names = {"A", "B", "C"};
    EXPECT_EQ(stats::contrastLabel(0, names), "mean");
    EXPECT_EQ(stats::contrastLabel(1, names), "A");
    EXPECT_EQ(stats::contrastLabel(6, names), "B*C");
    EXPECT_EQ(stats::contrastLabel(7, names), "A*B*C");
}

TEST(Yates, ContrastOrder)
{
    EXPECT_EQ(stats::contrastOrder(0), 0u);
    EXPECT_EQ(stats::contrastOrder(1), 1u);
    EXPECT_EQ(stats::contrastOrder(7), 3u);
    EXPECT_EQ(stats::contrastOrder(0b1010), 2u);
}
