#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "stats/bootstrap.hh"

namespace stats = rigor::stats;

namespace
{

double
meanOf(std::span<const double> xs)
{
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
}

} // namespace

TEST(BootstrapRng, SplitMix64KnownStream)
{
    // Reference values of the SplitMix64 stream seeded with 1234567
    // (Vigna's public-domain test vectors).
    stats::BootstrapRng rng(1234567);
    EXPECT_EQ(rng.next(), 6457827717110365317ULL);
    EXPECT_EQ(rng.next(), 3203168211198807973ULL);
    EXPECT_EQ(rng.next(), 9817491932198370423ULL);
}

TEST(BootstrapRng, NextBelowStaysInBound)
{
    stats::BootstrapRng rng(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(7), 7u);
}

TEST(BootstrapRng, MixSeedSeparatesStreams)
{
    EXPECT_NE(stats::mixSeed(1, 0), stats::mixSeed(1, 1));
    EXPECT_NE(stats::mixSeed(1, 0), stats::mixSeed(2, 0));
}

TEST(Bootstrap, QuantileSortedInterpolates)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(stats::quantileSorted(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(stats::quantileSorted(xs, 1.0), 4.0);
    // R type 7: h = (n-1)p = 1.5 at the median.
    EXPECT_DOUBLE_EQ(stats::quantileSorted(xs, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(stats::quantileSorted(xs, 0.25), 1.75);
}

TEST(Bootstrap, OptionsValidateRejectsMalformed)
{
    stats::BootstrapOptions options;
    options.iterations = 0;
    EXPECT_THROW(options.validate(), std::invalid_argument);
    options = {};
    options.confidence = 1.0;
    EXPECT_THROW(options.validate(), std::invalid_argument);
    options.confidence = 0.0;
    EXPECT_THROW(options.validate(), std::invalid_argument);
    options = {};
    EXPECT_NO_THROW(options.validate());
}

TEST(Bootstrap, SingleObservationDegenerates)
{
    const std::vector<double> xs = {5.0};
    const stats::BootstrapInterval ci =
        stats::bootstrapMeanCi(xs, {});
    EXPECT_DOUBLE_EQ(ci.estimate, 5.0);
    EXPECT_DOUBLE_EQ(ci.lower, 5.0);
    EXPECT_DOUBLE_EQ(ci.upper, 5.0);
    EXPECT_DOUBLE_EQ(ci.halfWidth(), 0.0);
}

TEST(Bootstrap, ConstantSampleHasZeroWidth)
{
    const std::vector<double> xs = {3.0, 3.0, 3.0, 3.0};
    const stats::BootstrapInterval ci =
        stats::bootstrapMeanCi(xs, {});
    EXPECT_DOUBLE_EQ(ci.estimate, 3.0);
    EXPECT_DOUBLE_EQ(ci.lower, 3.0);
    EXPECT_DOUBLE_EQ(ci.upper, 3.0);
}

TEST(Bootstrap, IntervalBracketsTheEstimate)
{
    const std::vector<double> xs = {9.2, 10.1, 9.8, 10.4, 9.5,
                                    10.0, 9.9, 10.2, 9.7, 10.3};
    for (const stats::BootstrapMethod method :
         {stats::BootstrapMethod::Percentile,
          stats::BootstrapMethod::Bca}) {
        stats::BootstrapOptions options;
        options.method = method;
        const stats::BootstrapInterval ci =
            stats::bootstrapMeanCi(xs, options);
        EXPECT_NEAR(ci.estimate, meanOf(xs), 1e-12);
        EXPECT_LE(ci.lower, ci.estimate);
        EXPECT_GE(ci.upper, ci.estimate);
        EXPECT_GT(ci.upper, ci.lower);
    }
}

TEST(Bootstrap, DeterministicForFixedSeed)
{
    const std::vector<double> xs = {1.0, 4.0, 2.0, 8.0, 5.0, 7.0};
    stats::BootstrapOptions options;
    options.seed = 99;
    const stats::BootstrapInterval a =
        stats::bootstrapMeanCi(xs, options);
    const stats::BootstrapInterval b =
        stats::bootstrapMeanCi(xs, options);
    EXPECT_DOUBLE_EQ(a.lower, b.lower);
    EXPECT_DOUBLE_EQ(a.upper, b.upper);
    // Different seeds draw different resamples (the intervals
    // themselves may coincide — quantiles of a small discrete
    // distribution — so assert on the index stream).
    stats::BootstrapRng rng99(stats::mixSeed(99, 0));
    stats::BootstrapRng rng100(stats::mixSeed(100, 0));
    std::vector<std::size_t> draws99(16);
    std::vector<std::size_t> draws100(16);
    stats::resampleIndices(rng99, xs.size(), draws99);
    stats::resampleIndices(rng100, xs.size(), draws100);
    EXPECT_NE(draws99, draws100);
}

TEST(Bootstrap, GoldenCiVectors)
{
    // Golden regression values: any change to the resampling or
    // interval construction must be deliberate and re-baselined.
    const std::vector<double> xs = {1.0, 4.0, 2.0, 8.0, 5.0, 7.0};
    stats::BootstrapOptions options;
    options.iterations = 200;
    options.seed = 7;
    options.method = stats::BootstrapMethod::Percentile;
    const stats::BootstrapInterval p =
        stats::bootstrapMeanCi(xs, options);
    EXPECT_DOUBLE_EQ(p.estimate, 4.5);
    EXPECT_DOUBLE_EQ(p.lower, 2.8333333333333335);
    EXPECT_DOUBLE_EQ(p.upper, 6.5041666666666673);
    options.method = stats::BootstrapMethod::Bca;
    const stats::BootstrapInterval b =
        stats::bootstrapMeanCi(xs, options);
    EXPECT_DOUBLE_EQ(b.estimate, 4.5);
    EXPECT_DOUBLE_EQ(b.lower, 2.8333333333333335);
    EXPECT_DOUBLE_EQ(b.upper, 6.5);
}

TEST(Bootstrap, MedianStatisticWorks)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 100.0};
    const stats::StatisticFn median =
        [](std::span<const double> sample) {
            std::vector<double> sorted(sample.begin(), sample.end());
            std::sort(sorted.begin(), sorted.end());
            return stats::quantileSorted(sorted, 0.5);
        };
    const stats::BootstrapInterval ci =
        stats::bootstrapCi(xs, median, {});
    EXPECT_DOUBLE_EQ(ci.estimate, 3.0);
    EXPECT_LE(ci.lower, ci.upper);
}

TEST(Bootstrap, BcaShiftsSkewedInterval)
{
    // Heavily right-skewed sample: BCa corrects the percentile
    // interval toward the long tail.
    const std::vector<double> xs = {1.0, 1.1, 1.2, 1.3, 1.4,
                                    1.5, 1.6, 1.7, 1.8, 50.0};
    stats::BootstrapOptions percentile;
    percentile.method = stats::BootstrapMethod::Percentile;
    stats::BootstrapOptions bca;
    bca.method = stats::BootstrapMethod::Bca;
    const stats::BootstrapInterval p =
        stats::bootstrapMeanCi(xs, percentile);
    const stats::BootstrapInterval b =
        stats::bootstrapMeanCi(xs, bca);
    EXPECT_NE(p.lower, b.lower);
    EXPECT_LE(b.lower, b.estimate);
    EXPECT_GE(b.upper, b.estimate);
}

TEST(Bootstrap, ReplicationOptionsEnabled)
{
    stats::ReplicationOptions replication;
    EXPECT_FALSE(replication.enabled());
    replication.replicates = 3;
    EXPECT_TRUE(replication.enabled());
    EXPECT_EQ(replication.minReplicates, 3u);
}
