#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stats/anova.hh"

namespace stats = rigor::stats;

namespace
{

const std::vector<std::string> twoNames = {"A", "B"};
const std::vector<std::string> threeNames = {"A", "B", "C"};

} // namespace

TEST(Anova, EffectsMatchDefinition)
{
    // Standard order (1), a, b, ab.
    const std::vector<double> y = {10.0, 14.0, 20.0, 28.0};
    const stats::AnovaResult r = stats::analyzeFactorial(twoNames, y);

    EXPECT_EQ(r.numFactors, 2u);
    EXPECT_DOUBLE_EQ(r.grandMean, 18.0);
    // Effect of A = avg(high) - avg(low) = (14+28)/2 - (10+20)/2 = 6.
    EXPECT_DOUBLE_EQ(r.row("A").effect, 6.0);
    EXPECT_DOUBLE_EQ(r.row("B").effect, 12.0);
    EXPECT_DOUBLE_EQ(r.row("A*B").effect, 2.0);
}

TEST(Anova, SumsOfSquaresDecomposeTotal)
{
    const std::vector<double> y = {3.0, 9.0, 4.0, 16.0, 7.0, 2.0, 8.0,
                                   5.0};
    const stats::AnovaResult r = stats::analyzeFactorial(threeNames, y);

    double model_ss = 0.0;
    for (const stats::AnovaRow &row : r.rows)
        model_ss += row.sumSquares;
    // Unreplicated: total SS about the mean equals the model SS.
    double total = 0.0;
    for (double v : y)
        total += (v - r.grandMean) * (v - r.grandMean);
    EXPECT_NEAR(model_ss, total, 1e-9);
    EXPECT_NEAR(r.totalSumSquares, total, 1e-9);
}

TEST(Anova, VariationSharesSumToOne)
{
    const std::vector<double> y = {3.0, 9.0, 4.0, 16.0, 7.0, 2.0, 8.0,
                                   5.0};
    const stats::AnovaResult r = stats::analyzeFactorial(threeNames, y);
    double share = 0.0;
    for (const stats::AnovaRow &row : r.rows)
        share += row.variationExplained;
    EXPECT_NEAR(share, 1.0, 1e-12);
}

TEST(Anova, AdditiveModelAttributesToMainEffects)
{
    // y = 5 + 3a + 8b, no noise: interaction SS must vanish.
    std::vector<double> y(4);
    for (unsigned i = 0; i < 4; ++i)
        y[i] = 5.0 + 3.0 * (i & 1) + 8.0 * ((i >> 1) & 1);
    const stats::AnovaResult r = stats::analyzeFactorial(twoNames, y);
    EXPECT_NEAR(r.row("A*B").sumSquares, 0.0, 1e-12);
    EXPECT_GT(r.row("B").variationExplained,
              r.row("A").variationExplained);
}

TEST(Anova, RowsBySignificanceSorted)
{
    const std::vector<double> y = {3.0, 9.0, 4.0, 16.0, 7.0, 2.0, 8.0,
                                   5.0};
    const stats::AnovaResult r = stats::analyzeFactorial(threeNames, y);
    const std::vector<stats::AnovaRow> sorted = r.rowsBySignificance();
    for (std::size_t i = 1; i < sorted.size(); ++i)
        EXPECT_GE(sorted[i - 1].variationExplained,
                  sorted[i].variationExplained);
}

TEST(Anova, ReplicatedComputesErrorTerm)
{
    // Two factors, 2 replications each, with deterministic "noise".
    const std::vector<std::vector<double>> reps = {
        {10.0, 12.0}, {20.0, 22.0}, {30.0, 32.0}, {44.0, 46.0}};
    const stats::AnovaResult r =
        stats::analyzeFactorialReplicated(twoNames, reps);

    EXPECT_EQ(r.replications, 2u);
    EXPECT_EQ(r.errorDof, 4u);
    // Each treatment contributes (1)^2 * 2 = 2 to error SS.
    EXPECT_NEAR(r.errorSumSquares, 8.0, 1e-9);
    // F statistics are populated and the p-values are meaningful.
    const stats::AnovaRow &a = r.row("A");
    EXPECT_GT(a.fStatistic, 1.0);
    EXPECT_GT(a.pValue, 0.0);
    EXPECT_LT(a.pValue, 0.05);
}

TEST(Anova, ReplicatedStrongEffectIsSignificant)
{
    const std::vector<std::vector<double>> reps = {
        {10.0, 10.1}, {50.0, 50.2}, {10.2, 9.9}, {50.1, 49.8}};
    const stats::AnovaResult r =
        stats::analyzeFactorialReplicated(twoNames, reps);
    EXPECT_LT(r.row("A").pValue, 0.001);
    EXPECT_GT(r.row("B").pValue, 0.1);
}

TEST(Anova, RejectsWrongResponseCount)
{
    const std::vector<double> y = {1.0, 2.0, 3.0};
    EXPECT_THROW(stats::analyzeFactorial(twoNames, y),
                 std::invalid_argument);
}

TEST(Anova, RejectsRaggedReplication)
{
    const std::vector<std::vector<double>> reps = {
        {1.0, 2.0}, {3.0}, {4.0, 5.0}, {6.0, 7.0}};
    EXPECT_THROW(stats::analyzeFactorialReplicated(twoNames, reps),
                 std::invalid_argument);
}

TEST(Anova, RowLookupThrowsOnUnknown)
{
    const std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
    const stats::AnovaResult r = stats::analyzeFactorial(twoNames, y);
    EXPECT_THROW(r.row("Z"), std::invalid_argument);
}

TEST(Anova, FormatContainsTerms)
{
    const std::vector<double> y = {1.0, 2.0, 3.0, 5.0};
    const stats::AnovaResult r = stats::analyzeFactorial(twoNames, y);
    const std::string table = stats::formatAnovaTable(r);
    EXPECT_NE(table.find("A*B"), std::string::npos);
    EXPECT_NE(table.find("Var%"), std::string::npos);
}
