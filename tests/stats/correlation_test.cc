#include <gtest/gtest.h>

#include <vector>

#include "stats/correlation.hh"

namespace stats = rigor::stats;

TEST(Pearson, PerfectPositive)
{
    const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
    EXPECT_NEAR(stats::pearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative)
{
    const std::vector<double> x = {1.0, 2.0, 3.0};
    const std::vector<double> y = {5.0, 3.0, 1.0};
    EXPECT_NEAR(stats::pearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(Pearson, KnownValue)
{
    const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
    const std::vector<double> y = {2.0, 1.0, 4.0, 3.0, 5.0};
    // r = cov/sd product: hand computed 0.8.
    EXPECT_NEAR(stats::pearsonCorrelation(x, y), 0.8, 1e-12);
}

TEST(Pearson, InvariantToAffineTransform)
{
    const std::vector<double> x = {1.0, 5.0, 2.0, 8.0};
    const std::vector<double> y = {0.3, 2.0, 1.0, 4.0};
    std::vector<double> y2;
    for (double v : y)
        y2.push_back(3.0 * v + 7.0);
    EXPECT_NEAR(stats::pearsonCorrelation(x, y),
                stats::pearsonCorrelation(x, y2), 1e-12);
}

TEST(Pearson, RejectsMismatchedLengths)
{
    const std::vector<double> x = {1.0, 2.0};
    const std::vector<double> y = {1.0, 2.0, 3.0};
    EXPECT_THROW(stats::pearsonCorrelation(x, y),
                 std::invalid_argument);
}

TEST(Pearson, RejectsConstantInput)
{
    const std::vector<double> x = {1.0, 1.0, 1.0};
    const std::vector<double> y = {1.0, 2.0, 3.0};
    EXPECT_THROW(stats::pearsonCorrelation(x, y),
                 std::invalid_argument);
}

TEST(Spearman, MonotoneNonlinearIsPerfect)
{
    const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
    const std::vector<double> y = {1.0, 8.0, 27.0, 64.0, 125.0};
    EXPECT_NEAR(stats::spearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(Spearman, ReversedIsMinusOne)
{
    const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> y = {9.0, 7.0, 5.0, 3.0};
    EXPECT_NEAR(stats::spearmanCorrelation(x, y), -1.0, 1e-12);
}

TEST(Spearman, HandlesTies)
{
    const std::vector<double> x = {1.0, 2.0, 2.0, 4.0};
    const std::vector<double> y = {1.0, 3.0, 3.0, 4.0};
    EXPECT_NEAR(stats::spearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(Spearman, KnownTextbookValue)
{
    // d = (-1, 1, -1, 1, 0), sum d^2 = 4 over n = 5 distinct ranks:
    // rho = 1 - 6*4/(5*24) = 0.8.
    const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
    const std::vector<double> y = {2.0, 1.0, 4.0, 3.0, 5.0};
    EXPECT_NEAR(stats::spearmanCorrelation(x, y), 0.8, 1e-12);
}

TEST(KendallTau, PerfectAgreement)
{
    const std::vector<double> x = {1.0, 2.0, 3.0};
    const std::vector<double> y = {10.0, 20.0, 30.0};
    EXPECT_NEAR(stats::kendallTau(x, y), 1.0, 1e-12);
}

TEST(KendallTau, PerfectDisagreement)
{
    const std::vector<double> x = {1.0, 2.0, 3.0};
    const std::vector<double> y = {3.0, 2.0, 1.0};
    EXPECT_NEAR(stats::kendallTau(x, y), -1.0, 1e-12);
}

TEST(KendallTau, KnownMixedValue)
{
    // Pairs: (1,2) concordant with (2,1)? Compute by hand:
    // x = 1,2,3,4; y = 1,3,2,4: discordant pair only (2,3): tau = (5-1)/6.
    const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> y = {1.0, 3.0, 2.0, 4.0};
    EXPECT_NEAR(stats::kendallTau(x, y), 4.0 / 6.0, 1e-12);
}

TEST(KendallTau, RejectsDegenerateInput)
{
    const std::vector<double> x = {1.0, 1.0};
    const std::vector<double> y = {2.0, 3.0};
    EXPECT_THROW(stats::kendallTau(x, y), std::invalid_argument);
}
