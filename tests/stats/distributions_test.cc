#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.hh"

namespace stats = rigor::stats;

// ---------------------------------------------------------------------
// Normal
// ---------------------------------------------------------------------

TEST(NormalDistribution, PdfAtZero)
{
    const stats::NormalDistribution n;
    EXPECT_NEAR(n.pdf(0.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-12);
}

TEST(NormalDistribution, CdfKnownValues)
{
    const stats::NormalDistribution n;
    EXPECT_NEAR(n.cdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(n.cdf(1.959963985), 0.975, 1e-8);
    EXPECT_NEAR(n.cdf(-1.644853627), 0.05, 1e-8);
}

TEST(NormalDistribution, QuantileInvertsCdf)
{
    const stats::NormalDistribution n;
    for (double p : {0.01, 0.1, 0.5, 0.9, 0.975})
        EXPECT_NEAR(n.cdf(n.quantile(p)), p, 1e-9);
}

TEST(NormalDistribution, QuantileRejectsBadP)
{
    const stats::NormalDistribution n;
    EXPECT_THROW(n.quantile(0.0), std::invalid_argument);
    EXPECT_THROW(n.quantile(1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Student's t
// ---------------------------------------------------------------------

TEST(StudentT, CdfSymmetry)
{
    const stats::StudentTDistribution t(7.0);
    EXPECT_NEAR(t.cdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(t.cdf(1.3) + t.cdf(-1.3), 1.0, 1e-12);
}

TEST(StudentT, KnownCriticalValues)
{
    // Classical two-sided 95% critical values.
    const stats::StudentTDistribution t10(10.0);
    EXPECT_NEAR(t10.quantile(0.975), 2.228, 2e-3);
    const stats::StudentTDistribution t30(30.0);
    EXPECT_NEAR(t30.quantile(0.975), 2.042, 2e-3);
    const stats::StudentTDistribution t1(1.0);
    // t with 1 dof is Cauchy: 97.5% point is 12.706.
    EXPECT_NEAR(t1.quantile(0.975), 12.706, 5e-3);
}

TEST(StudentT, ApproachesNormalForLargeDof)
{
    const stats::StudentTDistribution t(100000.0);
    const stats::NormalDistribution n;
    EXPECT_NEAR(t.cdf(1.5), n.cdf(1.5), 1e-4);
}

TEST(StudentT, PdfIntegratesToCdf)
{
    // Trapezoidal check: integral of pdf over [-6, 1] ~ cdf(1).
    const stats::StudentTDistribution t(5.0);
    double integral = 0.0;
    const double dx = 1e-3;
    for (double x = -6.0; x < 1.0; x += dx)
        integral += 0.5 * (t.pdf(x) + t.pdf(x + dx)) * dx;
    EXPECT_NEAR(integral, t.cdf(1.0), 1e-3);
}

TEST(StudentT, RejectsBadDof)
{
    EXPECT_THROW(stats::StudentTDistribution(0.0),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// F distribution
// ---------------------------------------------------------------------

TEST(FDistribution, KnownCriticalValues)
{
    // F(1, 10) 95th percentile = 4.965; F(5, 20) = 2.711.
    const stats::FDistribution f1(1.0, 10.0);
    EXPECT_NEAR(f1.quantile(0.95), 4.965, 5e-3);
    const stats::FDistribution f2(5.0, 20.0);
    EXPECT_NEAR(f2.quantile(0.95), 2.711, 5e-3);
}

TEST(FDistribution, CdfIsZeroAtOrBelowZero)
{
    const stats::FDistribution f(3.0, 8.0);
    EXPECT_DOUBLE_EQ(f.cdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(f.cdf(-1.0), 0.0);
}

TEST(FDistribution, SurvivalComplementsCdf)
{
    const stats::FDistribution f(4.0, 12.0);
    for (double x : {0.5, 1.0, 2.5, 10.0})
        EXPECT_NEAR(f.cdf(x) + f.survival(x), 1.0, 1e-12);
}

TEST(FDistribution, ReciprocalSymmetry)
{
    // P(F_{a,b} <= x) = P(F_{b,a} >= 1/x).
    const stats::FDistribution fab(3.0, 9.0);
    const stats::FDistribution fba(9.0, 3.0);
    for (double x : {0.5, 1.0, 2.0})
        EXPECT_NEAR(fab.cdf(x), fba.survival(1.0 / x), 1e-10);
}

TEST(FDistribution, SquaredTEqualsF)
{
    // If T ~ t(v) then T^2 ~ F(1, v).
    const stats::StudentTDistribution t(8.0);
    const stats::FDistribution f(1.0, 8.0);
    const double x = 2.0;
    EXPECT_NEAR(f.cdf(x * x), 2.0 * t.cdf(x) - 1.0, 1e-10);
}

TEST(FDistribution, RejectsBadDof)
{
    EXPECT_THROW(stats::FDistribution(0.0, 5.0), std::invalid_argument);
    EXPECT_THROW(stats::FDistribution(5.0, -1.0),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Chi-square
// ---------------------------------------------------------------------

TEST(ChiSquare, KnownCriticalValues)
{
    const stats::ChiSquareDistribution c3(3.0);
    EXPECT_NEAR(c3.quantile(0.95), 7.815, 5e-3);
    const stats::ChiSquareDistribution c10(10.0);
    EXPECT_NEAR(c10.quantile(0.95), 18.307, 5e-3);
}

TEST(ChiSquare, TwoDofIsExponential)
{
    // Chi-square with 2 dof is Exp(1/2).
    const stats::ChiSquareDistribution c(2.0);
    for (double x : {0.5, 1.0, 4.0})
        EXPECT_NEAR(c.cdf(x), 1.0 - std::exp(-x / 2.0), 1e-12);
}

TEST(ChiSquare, MeanViaQuantiles)
{
    const stats::ChiSquareDistribution c(5.0);
    // Median of chi-square(5) ~ 4.351.
    EXPECT_NEAR(c.quantile(0.5), 4.351, 5e-3);
}

// ---------------------------------------------------------------------
// Confidence intervals
// ---------------------------------------------------------------------

TEST(ConfidenceInterval, MatchesHandComputation)
{
    // n = 16, mean = 10, s = 2: 95% CI = 10 +/- 2.131 * 2 / 4.
    const stats::ConfidenceInterval ci =
        stats::meanConfidenceInterval(10.0, 2.0, 16, 0.95);
    EXPECT_NEAR(ci.low, 10.0 - 2.131 * 0.5, 2e-3);
    EXPECT_NEAR(ci.high, 10.0 + 2.131 * 0.5, 2e-3);
}

TEST(ConfidenceInterval, WiderAtHigherConfidence)
{
    const stats::ConfidenceInterval c90 =
        stats::meanConfidenceInterval(0.0, 1.0, 10, 0.90);
    const stats::ConfidenceInterval c99 =
        stats::meanConfidenceInterval(0.0, 1.0, 10, 0.99);
    EXPECT_LT(c90.high - c90.low, c99.high - c99.low);
}

TEST(ConfidenceInterval, RejectsBadInputs)
{
    EXPECT_THROW(stats::meanConfidenceInterval(0.0, 1.0, 1, 0.95),
                 std::invalid_argument);
    EXPECT_THROW(stats::meanConfidenceInterval(0.0, 1.0, 10, 1.0),
                 std::invalid_argument);
}
