#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hh"

namespace stats = rigor::stats;

TEST(Descriptive, MeanOfKnownSequence)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(stats::mean(xs), 2.5);
}

TEST(Descriptive, MeanOfEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(stats::mean({}), 0.0);
}

TEST(Descriptive, MeanOfSingleton)
{
    const std::vector<double> xs = {7.25};
    EXPECT_DOUBLE_EQ(stats::mean(xs), 7.25);
}

TEST(Descriptive, SampleVarianceUsesBessel)
{
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                    9.0};
    // Sum of squared deviations about mean 5 is 32; n-1 = 7.
    EXPECT_NEAR(stats::variance(xs), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stats::populationVariance(xs), 4.0, 1e-12);
}

TEST(Descriptive, VarianceOfConstantIsZero)
{
    const std::vector<double> xs = {3.0, 3.0, 3.0};
    EXPECT_DOUBLE_EQ(stats::variance(xs), 0.0);
}

TEST(Descriptive, VarianceNeedsTwoObservations)
{
    const std::vector<double> xs = {3.0};
    EXPECT_DOUBLE_EQ(stats::variance(xs), 0.0);
}

TEST(Descriptive, StddevIsRootOfVariance)
{
    const std::vector<double> xs = {1.0, 5.0};
    EXPECT_NEAR(stats::stddev(xs), std::sqrt(8.0), 1e-12);
}

TEST(Descriptive, GeometricMean)
{
    const std::vector<double> xs = {1.0, 4.0, 16.0};
    EXPECT_NEAR(stats::geometricMean(xs), 4.0, 1e-12);
}

TEST(Descriptive, GeometricMeanRejectsNonPositive)
{
    const std::vector<double> xs = {1.0, 0.0};
    EXPECT_THROW(stats::geometricMean(xs), std::invalid_argument);
}

TEST(Descriptive, HarmonicMean)
{
    const std::vector<double> xs = {1.0, 2.0, 4.0};
    EXPECT_NEAR(stats::harmonicMean(xs), 3.0 / 1.75, 1e-12);
}

TEST(Descriptive, MedianOddAndEven)
{
    const std::vector<double> odd = {9.0, 1.0, 5.0};
    EXPECT_DOUBLE_EQ(stats::median(odd), 5.0);
    const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(stats::median(even), 2.5);
}

TEST(Descriptive, MinMaxSum)
{
    const std::vector<double> xs = {3.0, -1.0, 7.5, 0.0};
    EXPECT_DOUBLE_EQ(stats::minimum(xs), -1.0);
    EXPECT_DOUBLE_EQ(stats::maximum(xs), 7.5);
    EXPECT_DOUBLE_EQ(stats::sum(xs), 9.5);
}

TEST(Descriptive, KahanSumIsAccurate)
{
    // 1 followed by many tiny values that naive summation would drop.
    std::vector<double> xs(10001, 1e-16);
    xs[0] = 1.0;
    EXPECT_NEAR(stats::sum(xs), 1.0 + 1e-12, 1e-15);
}

TEST(Descriptive, SumOfSquares)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(stats::sumOfSquares(xs), 14.0);
}

TEST(Descriptive, CoefficientOfVariation)
{
    const std::vector<double> xs = {2.0, 4.0};
    EXPECT_NEAR(stats::coefficientOfVariation(xs),
                std::sqrt(2.0) / 3.0, 1e-12);
}

TEST(Descriptive, CoefficientOfVariationRejectsZeroMean)
{
    const std::vector<double> xs = {-1.0, 1.0};
    EXPECT_THROW(stats::coefficientOfVariation(xs),
                 std::invalid_argument);
}

TEST(Descriptive, SummarizeMatchesPieces)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 100.0};
    const stats::Summary s = stats::summarize(xs);
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.mean, 22.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(Descriptive, RanksWithoutTies)
{
    const std::vector<double> xs = {30.0, 10.0, 20.0};
    const std::vector<double> r = stats::ranks(xs);
    EXPECT_EQ(r, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(Descriptive, RanksWithTiesUseMidranks)
{
    const std::vector<double> xs = {10.0, 20.0, 20.0, 30.0};
    const std::vector<double> r = stats::ranks(xs);
    EXPECT_EQ(r, (std::vector<double>{1.0, 2.5, 2.5, 4.0}));
}

TEST(Descriptive, SignificanceRanksOrderByMagnitude)
{
    // Matches the paper's Table 4 convention: largest |effect| is
    // rank 1 and sign is ignored.
    const std::vector<double> effects = {-23.0, -67.0, -137.0, 129.0,
                                         -105.0, -225.0, 73.0};
    const std::vector<double> r = stats::significanceRanks(effects);
    EXPECT_EQ(r, (std::vector<double>{7.0, 6.0, 2.0, 3.0, 4.0, 1.0,
                                      5.0}));
}

TEST(Descriptive, SignificanceRanksTieMidrank)
{
    const std::vector<double> effects = {5.0, -5.0, 10.0};
    const std::vector<double> r = stats::significanceRanks(effects);
    EXPECT_EQ(r, (std::vector<double>{2.5, 2.5, 1.0}));
}
