#include <gtest/gtest.h>

#include <cmath>

#include "stats/special_functions.hh"

namespace stats = rigor::stats;

TEST(SpecialFunctions, LogGammaMatchesFactorials)
{
    // Gamma(n) = (n-1)!
    EXPECT_NEAR(stats::logGamma(1.0), 0.0, 1e-12);
    EXPECT_NEAR(stats::logGamma(2.0), 0.0, 1e-12);
    EXPECT_NEAR(stats::logGamma(5.0), std::log(24.0), 1e-10);
    EXPECT_NEAR(stats::logGamma(11.0), std::log(3628800.0), 1e-9);
}

TEST(SpecialFunctions, LogGammaHalfInteger)
{
    // Gamma(1/2) = sqrt(pi).
    EXPECT_NEAR(stats::logGamma(0.5), 0.5 * std::log(M_PI), 1e-12);
    // Gamma(3/2) = sqrt(pi)/2.
    EXPECT_NEAR(stats::logGamma(1.5), std::log(std::sqrt(M_PI) / 2.0),
                1e-12);
}

TEST(SpecialFunctions, LogGammaAgreesWithStdLgamma)
{
    for (double x : {0.1, 0.7, 1.3, 3.7, 12.5, 100.0, 1234.5})
        EXPECT_NEAR(stats::logGamma(x), std::lgamma(x),
                    1e-9 * std::max(1.0, std::abs(std::lgamma(x))))
            << "x = " << x;
}

TEST(SpecialFunctions, LogGammaRejectsNonPositive)
{
    EXPECT_THROW(stats::logGamma(0.0), std::invalid_argument);
    EXPECT_THROW(stats::logGamma(-1.5), std::invalid_argument);
}

TEST(SpecialFunctions, LogBetaSymmetry)
{
    EXPECT_NEAR(stats::logBeta(2.5, 3.5), stats::logBeta(3.5, 2.5),
                1e-12);
    // B(1, 1) = 1.
    EXPECT_NEAR(stats::logBeta(1.0, 1.0), 0.0, 1e-12);
    // B(2, 3) = 1/12.
    EXPECT_NEAR(stats::logBeta(2.0, 3.0), std::log(1.0 / 12.0), 1e-10);
}

TEST(SpecialFunctions, IncompleteBetaBoundaries)
{
    EXPECT_DOUBLE_EQ(stats::regularizedIncompleteBeta(2.0, 3.0, 0.0),
                     0.0);
    EXPECT_DOUBLE_EQ(stats::regularizedIncompleteBeta(2.0, 3.0, 1.0),
                     1.0);
}

TEST(SpecialFunctions, IncompleteBetaUniformCase)
{
    // I_x(1, 1) = x.
    for (double x : {0.1, 0.25, 0.5, 0.75, 0.9})
        EXPECT_NEAR(stats::regularizedIncompleteBeta(1.0, 1.0, x), x,
                    1e-12);
}

TEST(SpecialFunctions, IncompleteBetaClosedForm)
{
    // I_x(2, 2) = x^2 (3 - 2x).
    for (double x : {0.2, 0.5, 0.8}) {
        EXPECT_NEAR(stats::regularizedIncompleteBeta(2.0, 2.0, x),
                    x * x * (3.0 - 2.0 * x), 1e-12);
    }
}

TEST(SpecialFunctions, IncompleteBetaSymmetryRelation)
{
    // I_x(a, b) = 1 - I_{1-x}(b, a).
    const double v = stats::regularizedIncompleteBeta(3.0, 7.0, 0.3);
    const double w = stats::regularizedIncompleteBeta(7.0, 3.0, 0.7);
    EXPECT_NEAR(v, 1.0 - w, 1e-12);
}

TEST(SpecialFunctions, IncompleteBetaRejectsBadArguments)
{
    EXPECT_THROW(stats::regularizedIncompleteBeta(0.0, 1.0, 0.5),
                 std::invalid_argument);
    EXPECT_THROW(stats::regularizedIncompleteBeta(1.0, 1.0, 1.5),
                 std::invalid_argument);
}

TEST(SpecialFunctions, LowerGammaExponentialCase)
{
    // P(1, x) = 1 - exp(-x).
    for (double x : {0.1, 1.0, 3.0, 10.0})
        EXPECT_NEAR(stats::regularizedLowerIncompleteGamma(1.0, x),
                    1.0 - std::exp(-x), 1e-12);
}

TEST(SpecialFunctions, LowerGammaBoundaries)
{
    EXPECT_DOUBLE_EQ(stats::regularizedLowerIncompleteGamma(2.5, 0.0),
                     0.0);
    EXPECT_NEAR(stats::regularizedLowerIncompleteGamma(2.0, 100.0), 1.0,
                1e-12);
}

TEST(SpecialFunctions, UpperGammaComplement)
{
    const double p = stats::regularizedLowerIncompleteGamma(3.5, 2.0);
    const double q = stats::regularizedUpperIncompleteGamma(3.5, 2.0);
    EXPECT_NEAR(p + q, 1.0, 1e-12);
}

TEST(SpecialFunctions, ErrorFunctionKnownValues)
{
    EXPECT_DOUBLE_EQ(stats::errorFunction(0.0), 0.0);
    EXPECT_NEAR(stats::errorFunction(1.0), 0.8427007929497149, 1e-10);
    EXPECT_NEAR(stats::errorFunction(-1.0), -0.8427007929497149, 1e-10);
    EXPECT_NEAR(stats::errorFunction(2.0), 0.9953222650189527, 1e-10);
}

TEST(SpecialFunctions, ErfAgreesWithStdErf)
{
    for (double x : {-3.0, -0.5, 0.25, 1.5, 4.0})
        EXPECT_NEAR(stats::errorFunction(x), std::erf(x), 1e-10);
}

TEST(SpecialFunctions, ComplementaryErf)
{
    for (double x : {-2.0, 0.0, 0.7, 2.5})
        EXPECT_NEAR(stats::complementaryErrorFunction(x),
                    1.0 - stats::errorFunction(x), 1e-12);
}
