#include <gtest/gtest.h>

#include "doe/effects.hh"
#include "doe/foldover.hh"
#include "doe/pb_design.hh"
#include "stats/linear_model.hh"

namespace doe = rigor::doe;
namespace stats = rigor::stats;

TEST(SolveLinearSystem, TwoByTwo)
{
    // 2x + y = 5; x - y = 1 -> x = 2, y = 1.
    const auto x = stats::solveLinearSystem({{2, 1}, {1, -1}}, {5, 1});
    ASSERT_EQ(x.size(), 2u);
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinearSystem, NeedsPivoting)
{
    // Leading zero forces a row swap.
    const auto x =
        stats::solveLinearSystem({{0, 1}, {1, 0}}, {3, 7});
    EXPECT_NEAR(x[0], 7.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, SingularThrows)
{
    EXPECT_THROW(
        stats::solveLinearSystem({{1, 2}, {2, 4}}, {1, 2}),
        std::invalid_argument);
    EXPECT_THROW(stats::solveLinearSystem({{1, 2}}, {1}),
                 std::invalid_argument);
}

TEST(LinearModel, ExactLineRecovered)
{
    // y = 3 + 2x, no noise.
    const std::vector<std::vector<double>> x = {
        {0.0}, {1.0}, {2.0}, {3.0}};
    const std::vector<double> y = {3.0, 5.0, 7.0, 9.0};
    const stats::LinearFit fit = stats::fitLinearModel(x, y);
    EXPECT_NEAR(fit.intercept(), 3.0, 1e-10);
    EXPECT_NEAR(fit.slope(0), 2.0, 1e-10);
    EXPECT_NEAR(fit.rSquared, 1.0, 1e-12);
    EXPECT_NEAR(fit.residualSumSquares, 0.0, 1e-18);
}

TEST(LinearModel, TwoPredictors)
{
    // y = 1 + 2a - 3b on a 2^2 grid.
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (double a : {-1.0, 1.0})
        for (double b : {-1.0, 1.0}) {
            x.push_back({a, b});
            y.push_back(1.0 + 2.0 * a - 3.0 * b);
        }
    const stats::LinearFit fit = stats::fitLinearModel(x, y);
    EXPECT_NEAR(fit.intercept(), 1.0, 1e-10);
    EXPECT_NEAR(fit.slope(0), 2.0, 1e-10);
    EXPECT_NEAR(fit.slope(1), -3.0, 1e-10);
}

TEST(LinearModel, NoisyFitResidualsSumNearZero)
{
    const std::vector<std::vector<double>> x = {
        {1.0}, {2.0}, {3.0}, {4.0}, {5.0}};
    const std::vector<double> y = {2.1, 3.9, 6.2, 7.8, 10.1};
    const stats::LinearFit fit = stats::fitLinearModel(x, y);
    double sum = 0.0;
    for (double r : fit.residuals)
        sum += r;
    EXPECT_NEAR(sum, 0.0, 1e-9); // OLS residuals orthogonal to 1
    EXPECT_GT(fit.rSquared, 0.99);
}

TEST(LinearModel, RegressionCoefficientsMatchPbEffects)
{
    // On an orthogonal two-level design, the OLS slope of a factor
    // equals half its normalized PB effect — the regression view of
    // effect estimation.
    const doe::DesignMatrix design = doe::foldover(doe::pbDesign(12));
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (std::size_t r = 0; r < design.numRows(); ++r) {
        std::vector<double> row;
        for (std::size_t c = 0; c < design.numColumns(); ++c)
            row.push_back(design.sign(r, c));
        // Arbitrary linear truth plus a deterministic pseudo-noise.
        double response = 50.0 + 7.0 * row[0] - 4.0 * row[3] +
                          1.5 * row[7];
        response += 0.01 * static_cast<double>((r * 37) % 11);
        x.push_back(std::move(row));
        y.push_back(response);
    }

    const stats::LinearFit fit = stats::fitLinearModel(x, y);
    const std::vector<double> effects =
        doe::computeNormalizedEffects(design, y);
    for (std::size_t c = 0; c < design.numColumns(); ++c)
        EXPECT_NEAR(fit.slope(c), effects[c] / 2.0, 1e-9) << c;
}

TEST(LinearModel, HandlesNonOrthogonalDesign)
{
    // One-at-a-time-style predictors are not orthogonal, but OLS
    // still recovers an exact linear truth.
    const std::vector<std::vector<double>> x = {
        {-1.0, -1.0}, {1.0, -1.0}, {-1.0, 1.0}};
    std::vector<double> y;
    for (const auto &row : x)
        y.push_back(10.0 + 4.0 * row[0] + 0.5 * row[1]);
    const stats::LinearFit fit = stats::fitLinearModel(x, y);
    EXPECT_NEAR(fit.slope(0), 4.0, 1e-10);
    EXPECT_NEAR(fit.slope(1), 0.5, 1e-10);
}

TEST(LinearModel, ValidatesShapes)
{
    const std::vector<std::vector<double>> x = {{1.0}, {2.0}};
    const std::vector<double> y = {1.0};
    EXPECT_THROW(stats::fitLinearModel(x, y), std::invalid_argument);

    const std::vector<std::vector<double>> ragged = {{1.0},
                                                     {2.0, 3.0}};
    const std::vector<double> y2 = {1.0, 2.0};
    EXPECT_THROW(stats::fitLinearModel(ragged, y2),
                 std::invalid_argument);

    // More parameters than observations.
    const std::vector<std::vector<double>> wide = {{1.0, 2.0}};
    const std::vector<double> y3 = {1.0};
    EXPECT_THROW(stats::fitLinearModel(wide, y3),
                 std::invalid_argument);
}

TEST(LinearModel, CollinearPredictorsThrow)
{
    const std::vector<std::vector<double>> x = {
        {1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
    const std::vector<double> y = {1.0, 2.0, 3.0};
    EXPECT_THROW(stats::fitLinearModel(x, y), std::invalid_argument);
}
