/**
 * @file
 * Parameterized property sweeps over the statistical distributions:
 * quantile/CDF round-trips, monotonicity, and pdf/cdf consistency
 * across a grid of degrees of freedom.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.hh"

namespace stats = rigor::stats;

namespace
{

class TDofSweep : public ::testing::TestWithParam<double>
{
};

class FDofSweep
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

class ChiDofSweep : public ::testing::TestWithParam<double>
{
};

} // namespace

TEST_P(TDofSweep, QuantileCdfRoundTrip)
{
    const stats::StudentTDistribution t(GetParam());
    // Quantiles come from bisection with a relative-width stop, so
    // round-trip agreement is ~1e-7 near the distribution center.
    for (double p : {0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99})
        EXPECT_NEAR(t.cdf(t.quantile(p)), p, 1e-6) << p;
}

TEST_P(TDofSweep, CdfIsMonotone)
{
    const stats::StudentTDistribution t(GetParam());
    double prev = 0.0;
    for (double x = -8.0; x <= 8.0; x += 0.25) {
        const double c = t.cdf(x);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST_P(TDofSweep, PdfNonNegativeAndSymmetric)
{
    const stats::StudentTDistribution t(GetParam());
    for (double x = 0.0; x <= 6.0; x += 0.5) {
        EXPECT_GE(t.pdf(x), 0.0);
        EXPECT_NEAR(t.pdf(x), t.pdf(-x), 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Dofs, TDofSweep,
                         ::testing::Values(1.0, 2.0, 3.0, 5.0, 10.0,
                                           30.0, 120.0));

TEST_P(FDofSweep, QuantileCdfRoundTrip)
{
    const auto [d1, d2] = GetParam();
    const stats::FDistribution f(d1, d2);
    for (double p : {0.05, 0.5, 0.9, 0.95, 0.99})
        EXPECT_NEAR(f.cdf(f.quantile(p)), p, 1e-8) << p;
}

TEST_P(FDofSweep, SurvivalMonotoneDecreasing)
{
    const auto [d1, d2] = GetParam();
    const stats::FDistribution f(d1, d2);
    double prev = 1.0;
    for (double x = 0.0; x <= 20.0; x += 0.5) {
        const double s = f.survival(x);
        EXPECT_LE(s, prev + 1e-12);
        prev = s;
    }
}

TEST_P(FDofSweep, PdfIntegratesToOne)
{
    const auto [d1, d2] = GetParam();
    const stats::FDistribution f(d1, d2);
    // Trapezoid over [0, 200]; the F(1, 4) tail decays as x^-3, so
    // a couple of percent of mass legitimately lies beyond the
    // integration window.
    double integral = 0.0;
    const double dx = 1e-3;
    for (double x = dx; x < 200.0; x += dx)
        integral += 0.5 * (f.pdf(x) + f.pdf(x + dx)) * dx;
    EXPECT_NEAR(integral, 1.0, 5e-2);
    EXPECT_LE(integral, 1.0 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    DofPairs, FDofSweep,
    ::testing::Values(std::pair<double, double>{1.0, 4.0},
                      std::pair<double, double>{2.0, 10.0},
                      std::pair<double, double>{5.0, 5.0},
                      std::pair<double, double>{10.0, 30.0}));

TEST_P(ChiDofSweep, QuantileCdfRoundTrip)
{
    const stats::ChiSquareDistribution c(GetParam());
    for (double p : {0.05, 0.5, 0.95, 0.99})
        EXPECT_NEAR(c.cdf(c.quantile(p)), p, 1e-8);
}

TEST_P(ChiDofSweep, MeanViaNumericIntegration)
{
    // E[chi-square(k)] = k.
    const double k = GetParam();
    const stats::ChiSquareDistribution c(k);
    double mean = 0.0;
    const double dx = 1e-3;
    for (double x = dx; x < 40.0 + 10.0 * k; x += dx)
        mean += x * c.pdf(x) * dx;
    EXPECT_NEAR(mean, k, 0.05 * k + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Dofs, ChiDofSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 9.0, 20.0));
