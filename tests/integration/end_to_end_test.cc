/**
 * @file
 * Cross-module integration tests: the full paper workflow on a small
 * scale — PB screening over the real simulator and workloads, the
 * qualitative Table 9 expectations, classification, and the
 * enhancement analysis with real instruction precomputation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "doe/ranking.hh"
#include "enhance/precompute.hh"
#include "methodology/classification.hh"
#include "methodology/enhancement_analysis.hh"
#include "methodology/parameter_space.hh"
#include "methodology/pb_experiment.hh"
#include "trace/generator.hh"
#include "trace/workloads.hh"

namespace doe = rigor::doe;
namespace enhance = rigor::enhance;
namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

namespace
{

/** Shared experiment over four contrasting workloads. */
const methodology::PbExperimentResult &
baseExperiment()
{
    static const methodology::PbExperimentResult result = [] {
        methodology::PbExperimentOptions opts;
        opts.instructionsPerRun = 50000;
        opts.warmupInstructions = 50000;
        const std::vector<trace::WorkloadProfile> workloads = {
            trace::workloadByName("gzip"),
            trace::workloadByName("mesa"),
            trace::workloadByName("mcf"),
            trace::workloadByName("art"),
        };
        return methodology::runPbExperiment(workloads, opts);
    }();
    return result;
}

unsigned long
sumFor(const methodology::PbExperimentResult &r, const std::string &name)
{
    for (const doe::FactorRankSummary &s : r.summaries)
        if (s.name == name)
            return s.sumOfRanks;
    throw std::logic_error("factor not found: " + name);
}

} // namespace

TEST(EndToEnd, RobAndMemoryParametersBeatDummies)
{
    // The central qualitative claim of Table 9: real bottleneck
    // parameters are far more significant than the dummy factors,
    // whose apparent effect is the design's noise floor.
    const auto &r = baseExperiment();
    const unsigned long rob = sumFor(r, "Reorder Buffer Entries");
    const unsigned long dummy1 = sumFor(r, "Dummy Factor #1");
    const unsigned long dummy2 = sumFor(r, "Dummy Factor #2");
    EXPECT_LT(rob, dummy1);
    EXPECT_LT(rob, dummy2);
    EXPECT_LT(sumFor(r, "L2 Cache Latency"), dummy1);
    EXPECT_LT(sumFor(r, "Memory Latency First"), dummy1);
}

TEST(EndToEnd, RobIsATopParameter)
{
    // ROB entries tops the paper's Table 9; in our reproduction it
    // must at least sit in the leading group.
    const auto &r = baseExperiment();
    const auto &top = r.summaries;
    bool rob_in_top5 = false;
    for (std::size_t i = 0; i < 5; ++i)
        if (top[i].name == "Reorder Buffer Entries")
            rob_in_top5 = true;
    EXPECT_TRUE(rob_in_top5)
        << "top factors: " << top[0].name << ", " << top[1].name
        << ", " << top[2].name << ", " << top[3].name << ", "
        << top[4].name;
}

TEST(EndToEnd, MemoryBoundBenchmarksStressMemoryParameters)
{
    // mcf/art (giant working sets) must rank L2 size / memory latency
    // higher than gzip does.
    const auto &r = baseExperiment();
    const auto idx_of = [&](const std::string &name) {
        std::size_t i = 0;
        for (const auto &def : methodology::parameterDefinitions()) {
            if (def.name == name)
                return i;
            ++i;
        }
        throw std::logic_error("no factor " + name);
    };
    const std::size_t l2_size = idx_of("L2 Cache Size");
    const std::size_t gzip_b = 0;
    const std::size_t mcf_b = 2;
    EXPECT_LT(r.ranks[mcf_b][l2_size], r.ranks[gzip_b][l2_size]);
}

TEST(EndToEnd, ICacheMattersMoreForMesaThanMcf)
{
    // The paper singles out mesa as I-cache bound (rank 1) while
    // mcf's I-cache size rank is 37.
    const auto &r = baseExperiment();
    const auto idx_of = [&](const std::string &name) {
        std::size_t i = 0;
        for (const auto &def : methodology::parameterDefinitions()) {
            if (def.name == name)
                return i;
            ++i;
        }
        throw std::logic_error("no factor " + name);
    };
    const std::size_t l1i_size = idx_of("L1 I-Cache Size");
    const std::size_t mesa_b = 1;
    const std::size_t mcf_b = 2;
    EXPECT_LT(r.ranks[mesa_b][l1i_size], r.ranks[mcf_b][l1i_size]);
}

TEST(EndToEnd, ClassificationSeparatesMemoryBoundFromComputeBound)
{
    const auto &r = baseExperiment();
    const methodology::ClassificationResult cls =
        methodology::classifyBenchmarks(
            r.benchmarks, r.rankVectors(),
            methodology::defaultSimilarityThreshold());
    // Whatever the grouping, it must be a partition of the four.
    std::size_t total = 0;
    for (const auto &g : cls.groups)
        total += g.size();
    EXPECT_EQ(total, 4u);
    // gzip (compute bound, small data) and mcf (memory bound) should
    // not be called similar.
    for (const auto &g : cls.groups) {
        const bool has_gzip =
            std::find(g.begin(), g.end(), "gzip") != g.end();
        const bool has_mcf =
            std::find(g.begin(), g.end(), "mcf") != g.end();
        EXPECT_FALSE(has_gzip && has_mcf);
    }
}

TEST(EndToEnd, PrecomputationEnhancementAnalysis)
{
    // Run the before/after workflow of section 4.3 on one value-local
    // workload with a real profiled precomputation table.
    methodology::PbExperimentOptions opts;
    opts.instructionsPerRun = 20000;
    const std::vector<trace::WorkloadProfile> workloads = {
        trace::workloadByName("gzip"),
        trace::workloadByName("bzip2"),
    };

    const auto base = methodology::runPbExperiment(workloads, opts);

    // Profile one table per workload, shared (copied) across runs.
    auto gzip_table = std::make_shared<enhance::PrecomputationTable>(128);
    {
        trace::SyntheticTraceGenerator gen(workloads[0],
                                           opts.instructionsPerRun);
        gzip_table->profileTrace(gen);
    }
    auto bzip_table = std::make_shared<enhance::PrecomputationTable>(128);
    {
        trace::SyntheticTraceGenerator gen(workloads[1],
                                           opts.instructionsPerRun);
        bzip_table->profileTrace(gen);
    }

    methodology::PbExperimentOptions enhanced_opts = opts;
    enhanced_opts.hookFactory =
        [&](const trace::WorkloadProfile &p)
        -> std::unique_ptr<rigor::sim::ExecutionHook> {
        const auto &proto =
            p.name == "gzip" ? gzip_table : bzip_table;
        return std::make_unique<enhance::PrecomputationTable>(*proto);
    };
    const auto enhanced =
        methodology::runPbExperiment(workloads, enhanced_opts);

    // The enhancement must actually speed things up somewhere.
    double base_total = 0.0;
    double enh_total = 0.0;
    for (std::size_t b = 0; b < 2; ++b)
        for (std::size_t i = 0; i < 88; ++i) {
            base_total += base.responses[b][i];
            enh_total += enhanced.responses[b][i];
        }
    EXPECT_LT(enh_total, base_total);

    // And the comparison machinery must join the two tables.
    const methodology::EnhancementComparison cmp =
        methodology::compareRankTables(base.summaries,
                                       enhanced.summaries);
    EXPECT_EQ(cmp.shifts.size(), methodology::numFactors);
}

TEST(EndToEnd, SignificanceCutoffSeparatesHeadFromTail)
{
    const auto &r = baseExperiment();
    const std::size_t cut =
        doe::significanceCutoff(r.summaries, 15);
    EXPECT_GE(cut, 1u);
    EXPECT_LE(cut, 15u);
}
