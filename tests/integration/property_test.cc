/**
 * @file
 * Cross-module property tests.
 *
 * The heavyweight one is the per-factor monotonicity sweep: for every
 * real parameter of Tables 6-8, moving it from its low to its high
 * value (all else at the typical machine) must not slow execution
 * down. This exercises the full wiring of all 41 parameter
 * mechanisms through the timing core in one sweep.
 */

#include <gtest/gtest.h>

#include <string>

#include "doe/effects.hh"
#include "doe/foldover.hh"
#include "doe/pb_design.hh"
#include "methodology/pb_experiment.hh"
#include "methodology/workflow.hh"
#include "trace/rng.hh"
#include "trace/workloads.hh"

namespace doe = rigor::doe;
namespace methodology = rigor::methodology;
namespace trace = rigor::trace;

namespace
{

class FactorMonotonicity
    : public ::testing::TestWithParam<unsigned>
{
};

} // namespace

TEST_P(FactorMonotonicity, HighValueDoesNotHurt)
{
    const auto factor = static_cast<methodology::Factor>(GetParam());
    const trace::WorkloadProfile &workload =
        trace::workloadByName("gzip");
    constexpr std::uint64_t instructions = 20000;
    constexpr std::uint64_t warmup = 20000;

    const double low_cycles = methodology::simulateOnce(
        workload,
        methodology::configWithOverrides({{factor, doe::Level::Low}}),
        instructions, nullptr, warmup);
    const double high_cycles = methodology::simulateOnce(
        workload,
        methodology::configWithOverrides({{factor, doe::Level::High}}),
        instructions, nullptr, warmup);

    // Every Table 6-8 high value is the "better" extreme by
    // construction. Block-size and associativity parameters may
    // interact with access patterns either way in a finite cache, so
    // allow a small tolerance; everything else must be monotone.
    const methodology::Factor lenient[] = {
        methodology::Factor::L1iBlockSize,
        methodology::Factor::L1dBlockSize,
        methodology::Factor::L2BlockSize,
        methodology::Factor::L1iAssoc,
        methodology::Factor::L1dAssoc,
        methodology::Factor::L2Assoc,
        methodology::Factor::BtbAssoc,
        methodology::Factor::ItlbAssoc,
        methodology::Factor::DtlbAssoc,
        methodology::Factor::SpecBranchUpdate,
    };
    double slack = 1.0;
    for (methodology::Factor l : lenient)
        if (factor == l)
            slack = 1.05;

    EXPECT_LE(high_cycles, low_cycles * slack)
        << methodology::factorName(factor);
}

INSTANTIATE_TEST_SUITE_P(
    AllRealFactors, FactorMonotonicity,
    ::testing::Range(0u, methodology::numRealParameters),
    [](const ::testing::TestParamInfo<unsigned> &info) {
        std::string name = methodology::factorName(
            static_cast<methodology::Factor>(info.param));
        for (char &ch : name)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

TEST(DoeProperties, EffectsAreLinearInResponses)
{
    // effects(a*y1 + b*y2) == a*effects(y1) + b*effects(y2).
    const doe::DesignMatrix design = doe::foldover(doe::pbDesign(12));
    trace::Rng rng(123);
    std::vector<double> y1;
    std::vector<double> y2;
    for (std::size_t r = 0; r < design.numRows(); ++r) {
        y1.push_back(rng.nextDouble() * 100.0);
        y2.push_back(rng.nextDouble() * 100.0);
    }
    std::vector<double> combo;
    for (std::size_t r = 0; r < design.numRows(); ++r)
        combo.push_back(3.0 * y1[r] - 0.5 * y2[r]);

    const auto e1 = doe::computeEffects(design, y1);
    const auto e2 = doe::computeEffects(design, y2);
    const auto ec = doe::computeEffects(design, combo);
    for (std::size_t c = 0; c < ec.size(); ++c)
        EXPECT_NEAR(ec[c], 3.0 * e1[c] - 0.5 * e2[c], 1e-9);
}

TEST(DoeProperties, EffectsInvariantToResponseShift)
{
    // Adding a constant to all responses changes no effect (balanced
    // columns). This is why the PB analysis needs no baseline run.
    const doe::DesignMatrix design = doe::pbDesign(20);
    trace::Rng rng(77);
    std::vector<double> y;
    for (std::size_t r = 0; r < design.numRows(); ++r)
        y.push_back(rng.nextDouble() * 50.0);
    std::vector<double> shifted;
    for (double v : y)
        shifted.push_back(v + 1e6);

    const auto e1 = doe::computeEffects(design, y);
    const auto e2 = doe::computeEffects(design, shifted);
    for (std::size_t c = 0; c < e1.size(); ++c)
        EXPECT_NEAR(e1[c], e2[c], 1e-5);
}

TEST(DoeProperties, RanksInvariantToPositiveScaling)
{
    const doe::DesignMatrix design = doe::pbDesign(24);
    trace::Rng rng(99);
    std::vector<double> y;
    for (std::size_t r = 0; r < design.numRows(); ++r)
        y.push_back(rng.nextDouble() * 10.0);

    const auto e = doe::computeEffects(design, y);
    std::vector<double> scaled;
    for (double v : e)
        scaled.push_back(42.0 * v);
    EXPECT_EQ(doe::rankByMagnitude(e), doe::rankByMagnitude(scaled));
}

TEST(DoeProperties, FoldoverEffectsDoubleForLinearTruth)
{
    // For a purely linear response the folded design's raw contrast
    // is exactly twice the base design's (twice the runs).
    const doe::DesignMatrix base = doe::pbDesign(12);
    const doe::DesignMatrix folded = doe::foldover(base);
    const auto response = [](const doe::DesignMatrix &m,
                             std::size_t r) {
        double y = 10.0;
        for (std::size_t c = 0; c < m.numColumns(); ++c)
            y += static_cast<double>(c + 1) * m.sign(r, c);
        return y;
    };
    std::vector<double> yb;
    std::vector<double> yf;
    for (std::size_t r = 0; r < base.numRows(); ++r)
        yb.push_back(response(base, r));
    for (std::size_t r = 0; r < folded.numRows(); ++r)
        yf.push_back(response(folded, r));

    const auto eb = doe::computeEffects(base, yb);
    const auto ef = doe::computeEffects(folded, yf);
    for (std::size_t c = 0; c < eb.size(); ++c)
        EXPECT_NEAR(ef[c], 2.0 * eb[c], 1e-9);
}
