#include <gtest/gtest.h>

#include "enhance/value_reuse.hh"
#include "trace/workloads.hh"

namespace enhance = rigor::enhance;
namespace trace = rigor::trace;

namespace
{

trace::Instruction
aluOp(std::uint32_t a, std::uint32_t b,
      trace::OpClass op = trace::OpClass::IntAlu)
{
    trace::Instruction inst;
    inst.op = op;
    inst.valA = a;
    inst.valB = b;
    return inst;
}

} // namespace

TEST(ValueReuse, FirstSeenMissesThenHits)
{
    enhance::ValueReuseTable table(128, 4);
    EXPECT_FALSE(table.intercept(aluOp(1, 2)));
    EXPECT_TRUE(table.intercept(aluOp(1, 2)));
    EXPECT_TRUE(table.intercept(aluOp(1, 2)));
    EXPECT_EQ(table.lookups(), 3u);
    EXPECT_EQ(table.hits(), 2u);
}

TEST(ValueReuse, DynamicUpdateUnlikePrecomputation)
{
    // The key contrast with instruction precomputation: value reuse
    // learns tuples it never saw in any profile.
    enhance::ValueReuseTable table(128, 4);
    EXPECT_FALSE(table.intercept(aluOp(0xdead, 0xbeef)));
    EXPECT_TRUE(table.intercept(aluOp(0xdead, 0xbeef)));
}

TEST(ValueReuse, IneligibleOpsIgnored)
{
    enhance::ValueReuseTable table(128, 4);
    EXPECT_FALSE(table.intercept(aluOp(1, 2, trace::OpClass::Load)));
    EXPECT_FALSE(table.intercept(aluOp(1, 2, trace::OpClass::Load)));
    EXPECT_EQ(table.lookups(), 0u);
}

TEST(ValueReuse, DistinguishesOpcodes)
{
    enhance::ValueReuseTable table(128, 4);
    table.intercept(aluOp(3, 4, trace::OpClass::IntAlu));
    EXPECT_FALSE(table.intercept(aluOp(3, 4, trace::OpClass::IntMult)));
}

TEST(ValueReuse, CapacityEvictionLru)
{
    // A 4-entry fully-associative table (1 set x 4 ways).
    enhance::ValueReuseTable table(4, 4);
    for (std::uint32_t i = 0; i < 4; ++i)
        table.intercept(aluOp(i, i));
    // Refresh tuple 0 so tuple 1 is LRU.
    EXPECT_TRUE(table.intercept(aluOp(0, 0)));
    // Insert a fifth tuple; tuple 1 must be the victim.
    EXPECT_FALSE(table.intercept(aluOp(99, 99)));
    EXPECT_TRUE(table.intercept(aluOp(0, 0)));
    EXPECT_FALSE(table.intercept(aluOp(1, 1)));
}

TEST(ValueReuse, ResetClears)
{
    enhance::ValueReuseTable table(16, 4);
    table.intercept(aluOp(1, 1));
    table.reset();
    EXPECT_EQ(table.lookups(), 0u);
    EXPECT_FALSE(table.intercept(aluOp(1, 1)));
}

TEST(ValueReuse, Validation)
{
    EXPECT_THROW(enhance::ValueReuseTable(0, 1),
                 std::invalid_argument);
    EXPECT_THROW(enhance::ValueReuseTable(100, 4),
                 std::invalid_argument);
    EXPECT_THROW(enhance::ValueReuseTable(128, 3),
                 std::invalid_argument);
}

TEST(ValueReuse, CapacityAccessor)
{
    enhance::ValueReuseTable table(128, 4);
    EXPECT_EQ(table.capacity(), 128u);
}

TEST(ValueReuse, HitsOnValueLocalWorkload)
{
    enhance::ValueReuseTable table(128, 4);
    trace::SyntheticTraceGenerator gen(trace::workloadByName("bzip2"),
                                       50000);
    trace::Instruction inst;
    while (gen.next(inst))
        table.intercept(inst);
    EXPECT_GT(table.hitRate(), 0.03);
}
