#include <gtest/gtest.h>

#include "enhance/precompute.hh"
#include "trace/vector_source.hh"
#include "trace/workloads.hh"

namespace enhance = rigor::enhance;
namespace trace = rigor::trace;

namespace
{

trace::Instruction
aluOp(std::uint32_t a, std::uint32_t b,
      trace::OpClass op = trace::OpClass::IntAlu)
{
    trace::Instruction inst;
    inst.pc = 0x1000;
    inst.op = op;
    inst.valA = a;
    inst.valB = b;
    inst.dst = 1;
    return inst;
}

} // namespace

TEST(Precompute, EligibilityByOpClass)
{
    EXPECT_TRUE(enhance::isPrecomputable(trace::OpClass::IntAlu));
    EXPECT_TRUE(enhance::isPrecomputable(trace::OpClass::IntMult));
    EXPECT_TRUE(enhance::isPrecomputable(trace::OpClass::IntDiv));
    EXPECT_FALSE(enhance::isPrecomputable(trace::OpClass::Load));
    EXPECT_FALSE(enhance::isPrecomputable(trace::OpClass::Branch));
    EXPECT_FALSE(enhance::isPrecomputable(trace::OpClass::FpAlu));
}

TEST(Precompute, LoadedTupleIntercepts)
{
    enhance::PrecomputationTable table(128);
    table.load({{trace::OpClass::IntAlu, 10, 20}});
    EXPECT_TRUE(table.intercept(aluOp(10, 20)));
    EXPECT_FALSE(table.intercept(aluOp(10, 21)));
    EXPECT_FALSE(table.intercept(aluOp(11, 20)));
    // Same values but a different opcode is a different computation.
    EXPECT_FALSE(
        table.intercept(aluOp(10, 20, trace::OpClass::IntMult)));
}

TEST(Precompute, IneligibleOpsNeverIntercept)
{
    enhance::PrecomputationTable table(128);
    table.load({{trace::OpClass::IntAlu, 1, 2}});
    trace::Instruction load = aluOp(1, 2, trace::OpClass::Load);
    EXPECT_FALSE(table.intercept(load));
    // Ineligible ops do not even count as lookups.
    EXPECT_EQ(table.lookups(), 0u);
}

TEST(Precompute, CapacityBoundsLoad)
{
    enhance::PrecomputationTable table(2);
    table.load({{trace::OpClass::IntAlu, 1, 1},
                {trace::OpClass::IntAlu, 2, 2},
                {trace::OpClass::IntAlu, 3, 3}});
    EXPECT_EQ(table.size(), 2u);
    EXPECT_EQ(table.capacity(), 2u);
}

TEST(Precompute, ProfilePicksMostFrequentTuples)
{
    // Tuple (7, 7) appears 10 times, (1, 2) twice, everything else
    // once; a 1-entry table must pick (7, 7).
    std::vector<trace::Instruction> v;
    for (int i = 0; i < 10; ++i)
        v.push_back(aluOp(7, 7));
    v.push_back(aluOp(1, 2));
    v.push_back(aluOp(1, 2));
    for (std::uint32_t i = 0; i < 20; ++i)
        v.push_back(aluOp(100 + i, 200 + i));

    trace::VectorTraceSource src(v);
    enhance::PrecomputationTable table(1);
    EXPECT_EQ(table.profileTrace(src), 1u);
    EXPECT_TRUE(table.intercept(aluOp(7, 7)));
    EXPECT_FALSE(table.intercept(aluOp(1, 2)));
}

TEST(Precompute, SingletonsAreNotRedundant)
{
    std::vector<trace::Instruction> v;
    for (std::uint32_t i = 0; i < 50; ++i)
        v.push_back(aluOp(i, i + 1)); // all unique
    trace::VectorTraceSource src(v);
    enhance::PrecomputationTable table(128);
    EXPECT_EQ(table.profileTrace(src), 0u);
}

TEST(Precompute, ProfileResetsSourceForTimingRun)
{
    std::vector<trace::Instruction> v = {aluOp(1, 1), aluOp(1, 1)};
    trace::VectorTraceSource src(v);
    enhance::PrecomputationTable table(8);
    table.profileTrace(src);
    // The source must be rewound so the timing run sees everything.
    trace::Instruction inst;
    std::size_t count = 0;
    while (src.next(inst))
        ++count;
    EXPECT_EQ(count, 2u);
}

TEST(Precompute, HitRateStatistics)
{
    enhance::PrecomputationTable table(8);
    table.load({{trace::OpClass::IntAlu, 5, 5}});
    table.intercept(aluOp(5, 5));
    table.intercept(aluOp(6, 6));
    EXPECT_EQ(table.lookups(), 2u);
    EXPECT_EQ(table.hits(), 1u);
    EXPECT_DOUBLE_EQ(table.hitRate(), 0.5);
}

TEST(Precompute, ProfileWindowCap)
{
    // Only the first two instructions are profiled; the hot tuple
    // appearing later is invisible.
    std::vector<trace::Instruction> v = {aluOp(1, 1), aluOp(1, 1)};
    for (int i = 0; i < 10; ++i)
        v.push_back(aluOp(9, 9));
    trace::VectorTraceSource src(v);
    enhance::PrecomputationTable table(8);
    table.profileTrace(src, 2);
    EXPECT_TRUE(table.intercept(aluOp(1, 1)));
    EXPECT_FALSE(table.intercept(aluOp(9, 9)));
}

TEST(Precompute, FindsRedundancyInSyntheticWorkload)
{
    // gzip's profile has high value locality: a 128-entry table built
    // from a profiling pass must intercept a noticeable fraction of
    // eligible work.
    trace::SyntheticTraceGenerator gen(trace::workloadByName("gzip"),
                                       50000);
    enhance::PrecomputationTable table(128);
    EXPECT_GT(table.profileTrace(gen), 64u);

    trace::Instruction inst;
    while (gen.next(inst))
        table.intercept(inst);
    EXPECT_GT(table.hitRate(), 0.05);
}
