#include <gtest/gtest.h>

#include "cluster/union_find.hh"

namespace cluster = rigor::cluster;

TEST(UnionFind, StartsAsSingletons)
{
    cluster::UnionFind uf(4);
    EXPECT_EQ(uf.numSets(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(uf.find(i), i);
}

TEST(UnionFind, UniteMergesAndCounts)
{
    cluster::UnionFind uf(5);
    EXPECT_TRUE(uf.unite(0, 1));
    EXPECT_EQ(uf.numSets(), 4u);
    EXPECT_TRUE(uf.connected(0, 1));
    EXPECT_FALSE(uf.connected(0, 2));
}

TEST(UnionFind, UniteIsIdempotent)
{
    cluster::UnionFind uf(3);
    EXPECT_TRUE(uf.unite(0, 2));
    EXPECT_FALSE(uf.unite(0, 2));
    EXPECT_FALSE(uf.unite(2, 0));
    EXPECT_EQ(uf.numSets(), 2u);
}

TEST(UnionFind, Transitivity)
{
    cluster::UnionFind uf(6);
    uf.unite(0, 1);
    uf.unite(1, 2);
    uf.unite(4, 5);
    EXPECT_TRUE(uf.connected(0, 2));
    EXPECT_TRUE(uf.connected(4, 5));
    EXPECT_FALSE(uf.connected(2, 4));
    EXPECT_EQ(uf.numSets(), 3u);
}

TEST(UnionFind, SetsAreSortedAndOrdered)
{
    cluster::UnionFind uf(6);
    uf.unite(5, 3);
    uf.unite(0, 4);
    const auto sets = uf.sets();
    ASSERT_EQ(sets.size(), 4u);
    EXPECT_EQ(sets[0], (std::vector<std::size_t>{0, 4}));
    EXPECT_EQ(sets[1], (std::vector<std::size_t>{1}));
    EXPECT_EQ(sets[2], (std::vector<std::size_t>{2}));
    EXPECT_EQ(sets[3], (std::vector<std::size_t>{3, 5}));
}

TEST(UnionFind, OutOfRangeThrows)
{
    cluster::UnionFind uf(2);
    EXPECT_THROW(uf.find(2), std::out_of_range);
}

TEST(UnionFind, LargeChainStaysCorrect)
{
    // Exercises path compression on a long chain.
    const std::size_t n = 1000;
    cluster::UnionFind uf(n);
    for (std::size_t i = 1; i < n; ++i)
        uf.unite(i - 1, i);
    EXPECT_EQ(uf.numSets(), 1u);
    EXPECT_TRUE(uf.connected(0, n - 1));
}
