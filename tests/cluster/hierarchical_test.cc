#include <gtest/gtest.h>

#include "cluster/hierarchical.hh"

namespace cluster = rigor::cluster;

namespace
{

cluster::DistanceMatrix
fourPointLine()
{
    // Points on a line at 0, 1, 10, 12.
    const std::vector<std::vector<double>> pts = {
        {0.0}, {1.0}, {10.0}, {12.0}};
    return cluster::DistanceMatrix::fromPoints(pts);
}

} // namespace

TEST(Hierarchical, ProducesNMinusOneMerges)
{
    const cluster::Dendrogram d =
        cluster::agglomerate(fourPointLine(), cluster::Linkage::Single);
    EXPECT_EQ(d.numLeaves(), 4u);
    EXPECT_EQ(d.steps().size(), 3u);
}

TEST(Hierarchical, SingleLinkageMergeOrder)
{
    const cluster::Dendrogram d =
        cluster::agglomerate(fourPointLine(), cluster::Linkage::Single);
    // First merge: {0,1} at distance 1; then {2,3} at 2; then all at 9.
    EXPECT_DOUBLE_EQ(d.steps()[0].distance, 1.0);
    EXPECT_DOUBLE_EQ(d.steps()[1].distance, 2.0);
    EXPECT_DOUBLE_EQ(d.steps()[2].distance, 9.0);
    EXPECT_EQ(d.steps()[2].size, 4u);
}

TEST(Hierarchical, CompleteLinkageUsesMaxDistance)
{
    const cluster::Dendrogram d = cluster::agglomerate(
        fourPointLine(), cluster::Linkage::Complete);
    // Final merge distance = max pairwise across clusters = 12.
    EXPECT_DOUBLE_EQ(d.steps()[2].distance, 12.0);
}

TEST(Hierarchical, AverageLinkageBetweenSingleAndComplete)
{
    const cluster::Dendrogram ds =
        cluster::agglomerate(fourPointLine(), cluster::Linkage::Single);
    const cluster::Dendrogram da = cluster::agglomerate(
        fourPointLine(), cluster::Linkage::Average);
    const cluster::Dendrogram dc = cluster::agglomerate(
        fourPointLine(), cluster::Linkage::Complete);
    EXPECT_LE(ds.steps()[2].distance, da.steps()[2].distance);
    EXPECT_LE(da.steps()[2].distance, dc.steps()[2].distance);
}

TEST(Hierarchical, CutAtHeight)
{
    const cluster::Dendrogram d =
        cluster::agglomerate(fourPointLine(), cluster::Linkage::Single);
    const cluster::Groups g = d.cut(5.0);
    ASSERT_EQ(g.size(), 2u);
    EXPECT_EQ(g[0], (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(g[1], (std::vector<std::size_t>{2, 3}));
}

TEST(Hierarchical, CutExtremes)
{
    const cluster::Dendrogram d =
        cluster::agglomerate(fourPointLine(), cluster::Linkage::Single);
    EXPECT_EQ(d.cut(0.5).size(), 4u);
    EXPECT_EQ(d.cut(100.0).size(), 1u);
}

TEST(Hierarchical, CutToClusters)
{
    const cluster::Dendrogram d =
        cluster::agglomerate(fourPointLine(), cluster::Linkage::Single);
    EXPECT_EQ(d.cutToClusters(1).size(), 1u);
    EXPECT_EQ(d.cutToClusters(2).size(), 2u);
    EXPECT_EQ(d.cutToClusters(4).size(), 4u);
    EXPECT_THROW(d.cutToClusters(0), std::invalid_argument);
    EXPECT_THROW(d.cutToClusters(5), std::invalid_argument);
}

TEST(Hierarchical, ToStringShowsMerges)
{
    const cluster::Dendrogram d =
        cluster::agglomerate(fourPointLine(), cluster::Linkage::Single);
    const std::string s = d.toString({"a", "b", "c", "d"});
    EXPECT_NE(s.find("{a, b}"), std::string::npos);
    EXPECT_NE(s.find("{c, d}"), std::string::npos);
}

TEST(Hierarchical, SingleLeafDendrogram)
{
    const cluster::DistanceMatrix m(1);
    const cluster::Dendrogram d =
        cluster::agglomerate(m, cluster::Linkage::Single);
    EXPECT_EQ(d.steps().size(), 0u);
    EXPECT_EQ(d.cut(1.0).size(), 1u);
}
