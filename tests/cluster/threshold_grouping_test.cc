#include <gtest/gtest.h>

#include "cluster/threshold_grouping.hh"

namespace cluster = rigor::cluster;

namespace
{

/** Distances with a clear two-cluster structure plus an outlier. */
cluster::DistanceMatrix
exampleMatrix()
{
    cluster::DistanceMatrix m(5);
    // Cluster {0, 1}, cluster {2, 3}, outlier {4}.
    m.set(0, 1, 1.0);
    m.set(2, 3, 2.0);
    m.set(0, 2, 50.0);
    m.set(0, 3, 55.0);
    m.set(0, 4, 90.0);
    m.set(1, 2, 52.0);
    m.set(1, 3, 51.0);
    m.set(1, 4, 95.0);
    m.set(2, 4, 80.0);
    m.set(3, 4, 85.0);
    return m;
}

} // namespace

TEST(ThresholdGrouping, ComponentsAtTightThreshold)
{
    const cluster::Groups g =
        cluster::groupByThresholdComponents(exampleMatrix(), 10.0);
    ASSERT_EQ(g.size(), 3u);
    EXPECT_EQ(g[0], (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(g[1], (std::vector<std::size_t>{2, 3}));
    EXPECT_EQ(g[2], (std::vector<std::size_t>{4}));
}

TEST(ThresholdGrouping, EverythingMergesAtHugeThreshold)
{
    const cluster::Groups g =
        cluster::groupByThresholdComponents(exampleMatrix(), 1000.0);
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(g[0].size(), 5u);
}

TEST(ThresholdGrouping, AllSingletonsAtZeroThreshold)
{
    const cluster::Groups g =
        cluster::groupByThresholdComponents(exampleMatrix(), 0.0);
    EXPECT_EQ(g.size(), 5u);
}

TEST(ThresholdGrouping, ComponentsAreTransitive)
{
    // 0-1 close, 1-2 close, 0-2 far: components still merge all three
    // (chaining), which is what reproduces the paper's Table 11.
    cluster::DistanceMatrix m(3);
    m.set(0, 1, 1.0);
    m.set(1, 2, 1.0);
    m.set(0, 2, 100.0);
    const cluster::Groups g =
        cluster::groupByThresholdComponents(m, 5.0);
    ASSERT_EQ(g.size(), 1u);
}

TEST(ThresholdGrouping, CliquesAreNotTransitive)
{
    cluster::DistanceMatrix m(3);
    m.set(0, 1, 1.0);
    m.set(1, 2, 1.0);
    m.set(0, 2, 100.0);
    const cluster::Groups g = cluster::groupByThresholdCliques(m, 5.0);
    // Greedy: 0 starts a group, 1 joins it, 2 cannot (too far from 0).
    ASSERT_EQ(g.size(), 2u);
    EXPECT_EQ(g[0], (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(g[1], (std::vector<std::size_t>{2}));
    EXPECT_TRUE(cluster::allGroupsPairwiseSimilar(m, g, 5.0));
}

TEST(ThresholdGrouping, PairwiseSimilarityChecker)
{
    cluster::DistanceMatrix m(3);
    m.set(0, 1, 1.0);
    m.set(1, 2, 1.0);
    m.set(0, 2, 100.0);
    const cluster::Groups chained = {{0, 1, 2}};
    EXPECT_FALSE(cluster::allGroupsPairwiseSimilar(m, chained, 5.0));
    const cluster::Groups fine = {{0, 1}, {2}};
    EXPECT_TRUE(cluster::allGroupsPairwiseSimilar(m, fine, 5.0));
}

TEST(ThresholdGrouping, EveryItemAppearsExactlyOnce)
{
    for (double threshold : {0.0, 3.0, 60.0, 200.0}) {
        const cluster::Groups g = cluster::groupByThresholdComponents(
            exampleMatrix(), threshold);
        std::vector<bool> seen(5, false);
        for (const auto &group : g)
            for (std::size_t idx : group) {
                EXPECT_FALSE(seen[idx]);
                seen[idx] = true;
            }
        for (bool s : seen)
            EXPECT_TRUE(s);
    }
}
