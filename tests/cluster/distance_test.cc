#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cluster/distance.hh"

namespace cluster = rigor::cluster;

TEST(Distance, EuclideanKnownValue)
{
    const std::vector<double> x = {0.0, 0.0};
    const std::vector<double> y = {3.0, 4.0};
    EXPECT_DOUBLE_EQ(cluster::euclideanDistance(x, y), 5.0);
}

TEST(Distance, EuclideanPaperExample)
{
    // The paper's worked example: distance between gzip and
    // vpr-Place is sqrt(8058) = 89.8 (full check against the real
    // rank vectors lives in methodology/published_data_test).
    EXPECT_NEAR(std::sqrt(8058.0), 89.8, 0.05);
}

TEST(Distance, EuclideanIdentityAndSymmetry)
{
    const std::vector<double> x = {1.0, -2.0, 3.5};
    const std::vector<double> y = {0.0, 7.0, -1.0};
    EXPECT_DOUBLE_EQ(cluster::euclideanDistance(x, x), 0.0);
    EXPECT_DOUBLE_EQ(cluster::euclideanDistance(x, y),
                     cluster::euclideanDistance(y, x));
}

TEST(Distance, EuclideanTriangleInequality)
{
    const std::vector<double> a = {0.0, 0.0};
    const std::vector<double> b = {1.0, 2.0};
    const std::vector<double> c = {4.0, -1.0};
    EXPECT_LE(cluster::euclideanDistance(a, c),
              cluster::euclideanDistance(a, b) +
                  cluster::euclideanDistance(b, c) + 1e-12);
}

TEST(Distance, Manhattan)
{
    const std::vector<double> x = {1.0, 2.0};
    const std::vector<double> y = {4.0, -2.0};
    EXPECT_DOUBLE_EQ(cluster::manhattanDistance(x, y), 7.0);
}

TEST(Distance, Chebyshev)
{
    const std::vector<double> x = {1.0, 2.0, 3.0};
    const std::vector<double> y = {2.0, 9.0, 1.0};
    EXPECT_DOUBLE_EQ(cluster::chebyshevDistance(x, y), 7.0);
}

TEST(Distance, MetricOrdering)
{
    // Chebyshev <= Euclidean <= Manhattan for any pair.
    const std::vector<double> x = {1.0, 5.0, -3.0, 0.0};
    const std::vector<double> y = {2.0, 1.0, 4.0, 2.0};
    const double ch = cluster::chebyshevDistance(x, y);
    const double eu = cluster::euclideanDistance(x, y);
    const double ma = cluster::manhattanDistance(x, y);
    EXPECT_LE(ch, eu + 1e-12);
    EXPECT_LE(eu, ma + 1e-12);
}

TEST(Distance, CosineParallelAndOrthogonal)
{
    const std::vector<double> x = {1.0, 1.0};
    const std::vector<double> x2 = {5.0, 5.0};
    const std::vector<double> y = {1.0, -1.0};
    EXPECT_NEAR(cluster::cosineDistance(x, x2), 0.0, 1e-12);
    EXPECT_NEAR(cluster::cosineDistance(x, y), 1.0, 1e-12);
}

TEST(Distance, CosineRejectsZeroVector)
{
    const std::vector<double> x = {0.0, 0.0};
    const std::vector<double> y = {1.0, 2.0};
    EXPECT_THROW(cluster::cosineDistance(x, y), std::invalid_argument);
}

TEST(Distance, RejectsMismatchedOrEmpty)
{
    const std::vector<double> x = {1.0};
    const std::vector<double> y = {1.0, 2.0};
    EXPECT_THROW(cluster::euclideanDistance(x, y),
                 std::invalid_argument);
    EXPECT_THROW(cluster::manhattanDistance({}, {}),
                 std::invalid_argument);
}
