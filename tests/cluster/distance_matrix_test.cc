#include <gtest/gtest.h>

#include "cluster/distance_matrix.hh"

namespace cluster = rigor::cluster;

TEST(DistanceMatrix, DiagonalIsZero)
{
    cluster::DistanceMatrix m(4);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(m.at(i, i), 0.0);
}

TEST(DistanceMatrix, SymmetricStorage)
{
    cluster::DistanceMatrix m(3);
    m.set(0, 2, 7.5);
    EXPECT_DOUBLE_EQ(m.at(0, 2), 7.5);
    EXPECT_DOUBLE_EQ(m.at(2, 0), 7.5);
    m.set(2, 1, 3.0);
    EXPECT_DOUBLE_EQ(m.at(1, 2), 3.0);
}

TEST(DistanceMatrix, RejectsNegativeAndBadIndices)
{
    cluster::DistanceMatrix m(3);
    EXPECT_THROW(m.set(0, 1, -1.0), std::invalid_argument);
    EXPECT_THROW(m.set(0, 0, 1.0), std::out_of_range);
    EXPECT_THROW(m.at(0, 3), std::out_of_range);
    EXPECT_THROW(cluster::DistanceMatrix(0), std::invalid_argument);
}

TEST(DistanceMatrix, FromPointsEuclideanDefault)
{
    const std::vector<std::vector<double>> pts = {
        {0.0, 0.0}, {3.0, 4.0}, {0.0, 8.0}};
    const cluster::DistanceMatrix m =
        cluster::DistanceMatrix::fromPoints(pts);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
    EXPECT_DOUBLE_EQ(m.at(0, 2), 8.0);
    EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
}

TEST(DistanceMatrix, FromPointsCustomMetric)
{
    const std::vector<std::vector<double>> pts = {{0.0}, {2.5}};
    const cluster::DistanceMatrix m =
        cluster::DistanceMatrix::fromPoints(
            pts, cluster::manhattanDistance);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 2.5);
}

TEST(DistanceMatrix, PairsBelowThreshold)
{
    cluster::DistanceMatrix m(3);
    m.set(0, 1, 1.0);
    m.set(0, 2, 10.0);
    m.set(1, 2, 4.9);
    const auto pairs = m.pairsBelow(5.0);
    ASSERT_EQ(pairs.size(), 2u);
    EXPECT_EQ(pairs[0], std::make_pair(std::size_t{0}, std::size_t{1}));
    EXPECT_EQ(pairs[1], std::make_pair(std::size_t{1}, std::size_t{2}));
}

TEST(DistanceMatrix, PairsBelowIsStrict)
{
    cluster::DistanceMatrix m(2);
    m.set(0, 1, 5.0);
    EXPECT_TRUE(m.pairsBelow(5.0).empty());
    EXPECT_EQ(m.pairsBelow(5.0001).size(), 1u);
}

TEST(DistanceMatrix, NearestNeighbor)
{
    cluster::DistanceMatrix m(3);
    m.set(0, 1, 2.0);
    m.set(0, 2, 1.0);
    m.set(1, 2, 5.0);
    EXPECT_EQ(m.nearestNeighbor(0), 2u);
    EXPECT_EQ(m.nearestNeighbor(1), 0u);
    EXPECT_EQ(m.nearestNeighbor(2), 0u);
}

TEST(DistanceMatrix, ToStringHasLabelsAndValues)
{
    cluster::DistanceMatrix m(2);
    m.set(0, 1, 89.8);
    const std::string s = m.toString({"gzip", "vpr"});
    EXPECT_NE(s.find("gzip"), std::string::npos);
    EXPECT_NE(s.find("89.8"), std::string::npos);
    EXPECT_NE(s.find("0.0"), std::string::npos);
}

TEST(DistanceMatrix, ToStringValidatesLabelCount)
{
    cluster::DistanceMatrix m(2);
    EXPECT_THROW(m.toString({"only-one"}), std::invalid_argument);
}
