/**
 * @file
 * Parameterized design-of-experiments property sweeps: exact
 * coefficient recovery on every supported design size, and the
 * projection property (any two columns of a PB design form a full
 * 2^2 factorial, replicated X/4 times).
 */

#include <gtest/gtest.h>

#include <map>

#include "doe/effects.hh"
#include "doe/foldover.hh"
#include "doe/pb_design.hh"
#include "trace/rng.hh"

namespace doe = rigor::doe;
namespace trace = rigor::trace;

namespace
{

class DesignSizeSweep : public ::testing::TestWithParam<unsigned>
{
};

} // namespace

TEST_P(DesignSizeSweep, LinearCoefficientRecoveryIsExact)
{
    const unsigned x = GetParam();
    const doe::DesignMatrix design = doe::pbDesign(x);

    // Random linear truth over all columns.
    trace::Rng rng(x * 2654435761u);
    std::vector<double> coeffs;
    for (std::size_t c = 0; c < design.numColumns(); ++c)
        coeffs.push_back(rng.nextDouble() * 20.0 - 10.0);

    std::vector<double> responses;
    for (std::size_t r = 0; r < design.numRows(); ++r) {
        double y = 1000.0;
        for (std::size_t c = 0; c < design.numColumns(); ++c)
            y += coeffs[c] * design.sign(r, c);
        responses.push_back(y);
    }

    const std::vector<double> effects =
        doe::computeNormalizedEffects(design, responses);
    for (std::size_t c = 0; c < coeffs.size(); ++c)
        EXPECT_NEAR(effects[c], 2.0 * coeffs[c], 1e-9)
            << "X=" << x << " col " << c;
}

TEST_P(DesignSizeSweep, ProjectionOntoTwoFactorsIsFullFactorial)
{
    // Projectivity 2: restricted to any pair of columns, a PB design
    // contains every (+-, +-) combination exactly X/4 times. This is
    // what makes the estimates of any two factors jointly clean.
    const unsigned x = GetParam();
    const doe::DesignMatrix design = doe::pbDesign(x);
    const std::size_t cols = design.numColumns();
    // Sample pairs (full O(cols^2) sweep on the small sizes).
    for (std::size_t a = 0; a < cols; a += cols / 6 + 1) {
        for (std::size_t b = a + 1; b < cols; b += cols / 5 + 1) {
            std::map<std::pair<int, int>, unsigned> counts;
            for (std::size_t r = 0; r < design.numRows(); ++r)
                ++counts[{design.sign(r, a), design.sign(r, b)}];
            ASSERT_EQ(counts.size(), 4u);
            for (const auto &[combo, count] : counts)
                EXPECT_EQ(count, x / 4)
                    << "X=" << x << " cols " << a << "," << b;
        }
    }
}

TEST_P(DesignSizeSweep, FoldedDesignStillRecoversCoefficients)
{
    const unsigned x = GetParam();
    const doe::DesignMatrix folded = doe::foldover(doe::pbDesign(x));
    trace::Rng rng(x);
    std::vector<double> coeffs;
    for (std::size_t c = 0; c < folded.numColumns(); ++c)
        coeffs.push_back(rng.nextDouble() * 4.0);
    std::vector<double> responses;
    for (std::size_t r = 0; r < folded.numRows(); ++r) {
        double y = 0.0;
        for (std::size_t c = 0; c < folded.numColumns(); ++c)
            y += coeffs[c] * folded.sign(r, c);
        responses.push_back(y);
    }
    const std::vector<double> effects =
        doe::computeNormalizedEffects(folded, responses);
    for (std::size_t c = 0; c < coeffs.size(); ++c)
        EXPECT_NEAR(effects[c], 2.0 * coeffs[c], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DesignSizeSweep,
                         ::testing::Values(8u, 12u, 16u, 20u, 24u, 28u,
                                           36u, 44u, 52u));
