#include <gtest/gtest.h>

#include "doe/ranking.hh"

namespace doe = rigor::doe;

TEST(Ranking, RanksByMagnitudeIgnoringSign)
{
    // The Table 4 effects again: F (rank 1), C, D, E, G, B, A.
    const std::vector<double> effects = {-23.0, -67.0, -137.0, 129.0,
                                         -105.0, -225.0, 73.0};
    const std::vector<unsigned> ranks = doe::rankByMagnitude(effects);
    EXPECT_EQ(ranks,
              (std::vector<unsigned>{7, 6, 2, 3, 4, 1, 5}));
}

TEST(Ranking, TiesResolvedStably)
{
    const std::vector<double> effects = {5.0, -5.0, 1.0};
    const std::vector<unsigned> ranks = doe::rankByMagnitude(effects);
    EXPECT_EQ(ranks, (std::vector<unsigned>{1, 2, 3}));
}

TEST(Ranking, AggregateSumsAcrossBenchmarks)
{
    const std::vector<std::string> names = {"P", "Q", "R"};
    // Benchmark 1 effect order: P > Q > R (ranks 1, 2, 3).
    // Benchmark 2 effect order: Q > P > R (ranks 2, 1, 3).
    const std::vector<std::vector<double>> effects = {
        {30.0, 20.0, 10.0},
        {20.0, 30.0, 10.0},
    };
    const std::vector<doe::FactorRankSummary> summaries =
        doe::aggregateRanks(names, effects);

    ASSERT_EQ(summaries.size(), 3u);
    // P and Q both sum to 3; R sums to 6. Stable sort keeps P first.
    EXPECT_EQ(summaries[0].name, "P");
    EXPECT_EQ(summaries[0].sumOfRanks, 3ul);
    EXPECT_EQ(summaries[0].ranks, (std::vector<unsigned>{1, 2}));
    EXPECT_EQ(summaries[1].name, "Q");
    EXPECT_EQ(summaries[1].sumOfRanks, 3ul);
    EXPECT_EQ(summaries[2].name, "R");
    EXPECT_EQ(summaries[2].sumOfRanks, 6ul);
}

TEST(Ranking, AggregateIsSortedAscending)
{
    const std::vector<std::string> names = {"a", "b", "c", "d"};
    const std::vector<std::vector<double>> effects = {
        {1.0, 9.0, 4.0, 2.0},
        {2.0, 8.0, 7.0, 1.0},
        {1.5, 7.0, 6.0, 0.5},
    };
    const std::vector<doe::FactorRankSummary> summaries =
        doe::aggregateRanks(names, effects);
    for (std::size_t i = 1; i < summaries.size(); ++i)
        EXPECT_LE(summaries[i - 1].sumOfRanks,
                  summaries[i].sumOfRanks);
    EXPECT_EQ(summaries.front().name, "b");
}

TEST(Ranking, AggregateRejectsEmptyAndRagged)
{
    const std::vector<std::string> names = {"a", "b"};
    EXPECT_THROW(doe::aggregateRanks(names, {}),
                 std::invalid_argument);
    const std::vector<std::vector<double>> ragged = {{1.0, 2.0},
                                                     {1.0}};
    EXPECT_THROW(doe::aggregateRanks(names, ragged),
                 std::invalid_argument);
}

TEST(Ranking, SignificanceCutoffFindsLargestGap)
{
    // Sums: 10, 12, 14, 50, 52 -> biggest gap after the third.
    std::vector<doe::FactorRankSummary> summaries(5);
    const unsigned long sums[] = {10, 12, 14, 50, 52};
    for (std::size_t i = 0; i < 5; ++i) {
        summaries[i].name = "f" + std::to_string(i);
        summaries[i].sumOfRanks = sums[i];
    }
    EXPECT_EQ(doe::significanceCutoff(summaries, 4), 3u);
}

TEST(Ranking, SignificanceCutoffRespectsMaxCut)
{
    std::vector<doe::FactorRankSummary> summaries(4);
    const unsigned long sums[] = {10, 11, 12, 100};
    for (std::size_t i = 0; i < 4; ++i)
        summaries[i].sumOfRanks = sums[i];
    // The huge gap is at cut 3, but max_cut = 2 caps the search.
    EXPECT_LE(doe::significanceCutoff(summaries, 2), 2u);
}

TEST(Ranking, SignificanceCutoffDegenerate)
{
    std::vector<doe::FactorRankSummary> one(1);
    EXPECT_EQ(doe::significanceCutoff(one, 5), 1u);
    EXPECT_EQ(doe::significanceCutoff({}, 5), 0u);
}
