#include <gtest/gtest.h>

#include <set>

#include "doe/galois.hh"
#include "doe/hadamard.hh"
#include "doe/pb_design.hh"

namespace doe = rigor::doe;

TEST(GaloisField, PrimeFieldArithmetic)
{
    const doe::GaloisField f(7, 1);
    EXPECT_EQ(f.size(), 7u);
    EXPECT_EQ(f.add(5, 4), 2u);
    EXPECT_EQ(f.subtract(2, 5), 4u);
    EXPECT_EQ(f.multiply(3, 5), 1u);
    EXPECT_EQ(f.power(3, 6), 1u); // Fermat
}

TEST(GaloisField, ChiMatchesLegendreOnPrimeField)
{
    const doe::GaloisField f(23, 1);
    for (std::uint32_t a = 0; a < 23; ++a)
        EXPECT_EQ(f.chi(a), doe::legendreSymbol(a, 23)) << a;
}

TEST(GaloisField, Gf25Basics)
{
    const doe::GaloisField f(5, 2);
    EXPECT_EQ(f.size(), 25u);
    // Additive identity and inverse.
    for (std::uint32_t a = 0; a < 25; ++a) {
        EXPECT_EQ(f.add(a, 0), a);
        EXPECT_EQ(f.subtract(a, a), 0u);
    }
    // Multiplicative identity is the constant polynomial 1.
    for (std::uint32_t a = 0; a < 25; ++a)
        EXPECT_EQ(f.multiply(a, 1), a);
}

TEST(GaloisField, Gf25MultiplicativeGroup)
{
    const doe::GaloisField f(5, 2);
    // Every non-zero element satisfies a^(q-1) = 1, and no zero
    // divisors exist.
    for (std::uint32_t a = 1; a < 25; ++a) {
        EXPECT_EQ(f.power(a, 24), 1u) << a;
        for (std::uint32_t b = 1; b < 25; ++b)
            EXPECT_NE(f.multiply(a, b), 0u);
    }
}

TEST(GaloisField, Gf27MultiplicativeGroup)
{
    const doe::GaloisField f(3, 3);
    EXPECT_EQ(f.size(), 27u);
    for (std::uint32_t a = 1; a < 27; ++a)
        EXPECT_EQ(f.power(a, 26), 1u) << a;
}

TEST(GaloisField, SquaresAreHalfTheUnits)
{
    for (const auto &[p, m] : {std::pair<unsigned, unsigned>{5, 2},
                               {3, 3},
                               {7, 2},
                               {11, 1}}) {
        const doe::GaloisField f(p, m);
        const auto squares = f.squares();
        EXPECT_EQ(squares.size(), (f.size() - 1) / 2)
            << p << "^" << m;
        // chi is multiplicative: square * square = square.
        const std::set<std::uint32_t> sq(squares.begin(),
                                         squares.end());
        for (std::uint32_t a : squares)
            for (std::uint32_t b : squares)
                EXPECT_TRUE(sq.count(f.multiply(a, b)) == 1);
    }
}

TEST(GaloisField, ChiIsMultiplicative)
{
    const doe::GaloisField f(5, 2);
    for (std::uint32_t a = 1; a < 25; ++a)
        for (std::uint32_t b = 1; b < 25; ++b)
            EXPECT_EQ(f.chi(f.multiply(a, b)), f.chi(a) * f.chi(b));
}

TEST(GaloisField, RejectsBadParameters)
{
    EXPECT_THROW(doe::GaloisField(4, 1), std::invalid_argument);
    EXPECT_THROW(doe::GaloisField(2, 3), std::invalid_argument);
    EXPECT_THROW(doe::GaloisField(7, 0), std::invalid_argument);
}

TEST(PrimePower, FactorHelper)
{
    EXPECT_EQ(doe::oddPrimePowerFactor(25),
              (std::pair<unsigned, unsigned>{5, 2}));
    EXPECT_EQ(doe::oddPrimePowerFactor(27),
              (std::pair<unsigned, unsigned>{3, 3}));
    EXPECT_EQ(doe::oddPrimePowerFactor(43),
              (std::pair<unsigned, unsigned>{43, 1}));
    EXPECT_EQ(doe::oddPrimePowerFactor(15),
              (std::pair<unsigned, unsigned>{0, 0}));
    EXPECT_EQ(doe::oddPrimePowerFactor(16),
              (std::pair<unsigned, unsigned>{0, 0}));
}

TEST(PrimePower, PaleyOneOverGf27)
{
    // 27 == 3 (mod 4): Hadamard of order 28 via GF(27).
    const auto h = doe::paleyTypeOnePrimePower(3, 3);
    EXPECT_EQ(h.size(), 28u);
    EXPECT_TRUE(doe::isHadamard(h));
}

TEST(PrimePower, PaleyTwoOverGf25)
{
    // 25 == 1 (mod 4): Hadamard of order 52 via GF(25) — the order
    // the prime-only constructions cannot reach.
    const auto h = doe::paleyTypeTwoPrimePower(5, 2);
    EXPECT_EQ(h.size(), 52u);
    EXPECT_TRUE(doe::isHadamard(h));
}

TEST(PrimePower, Order52NowSupported)
{
    EXPECT_TRUE(doe::hadamardOrderSupported(52));
    EXPECT_TRUE(doe::isHadamard(doe::hadamardMatrix(52)));
    // And the PB design of size 52 works end to end.
    ASSERT_TRUE(doe::pbSizeSupported(52));
    const doe::DesignMatrix m = doe::pbDesign(52);
    EXPECT_TRUE(m.isBalanced());
    EXPECT_TRUE(m.isOrthogonal());
}

TEST(PrimePower, Order92StillUnsupported)
{
    // 91 = 7 * 13 is not a prime power; 45 = 3^2 * 5 is not either.
    EXPECT_FALSE(doe::hadamardOrderSupported(92));
}

TEST(PrimePower, LargerPrimePowerOrders)
{
    // q = 49 == 1 (mod 4) -> order 100 via Paley II over GF(49).
    const auto h = doe::paleyTypeTwoPrimePower(7, 2);
    EXPECT_EQ(h.size(), 100u);
    EXPECT_TRUE(doe::isHadamard(h));
}
