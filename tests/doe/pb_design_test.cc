#include <gtest/gtest.h>

#include "doe/pb_design.hh"

namespace doe = rigor::doe;

TEST(PbDesign, RunsForFactorCount)
{
    // "The next multiple of four greater than N."
    EXPECT_EQ(doe::pbRuns(1), 4u);
    EXPECT_EQ(doe::pbRuns(3), 4u);
    EXPECT_EQ(doe::pbRuns(4), 8u);
    EXPECT_EQ(doe::pbRuns(7), 8u);
    EXPECT_EQ(doe::pbRuns(8), 12u);
    EXPECT_EQ(doe::pbRuns(43), 44u); // the paper's case
    EXPECT_THROW(doe::pbRuns(0), std::invalid_argument);
}

TEST(PbDesign, GeneratorRowMatchesPublishedX8)
{
    // Table 2 first row: +1 +1 +1 -1 +1 -1 -1.
    EXPECT_EQ(doe::pbGeneratorRow(8),
              (std::vector<int>{1, 1, 1, -1, 1, -1, -1}));
}

TEST(PbDesign, GeneratorRowMatchesPublishedX12)
{
    // Plackett-Burman published row for N = 12.
    EXPECT_EQ(doe::pbGeneratorRow(12),
              (std::vector<int>{1, 1, -1, 1, 1, 1, -1, -1, -1, 1, -1}));
}

TEST(PbDesign, GeneratorRowMatchesPublishedX20)
{
    EXPECT_EQ(doe::pbGeneratorRow(20),
              (std::vector<int>{1, 1, -1, -1, 1, 1, 1, 1, -1, 1, -1, 1,
                                -1, -1, -1, -1, 1, 1, -1}));
}

TEST(PbDesign, GeneratorRowMatchesPublishedX24)
{
    EXPECT_EQ(doe::pbGeneratorRow(24),
              (std::vector<int>{1, 1, 1, 1,  1,  -1, 1,  -1, 1, 1, -1,
                                -1, 1, 1, -1, -1, 1,  -1, 1,  -1, -1,
                                -1, -1}));
}

TEST(PbDesign, GeneratorRowX16IsPublishedShiftRegisterSequence)
{
    EXPECT_EQ(doe::pbGeneratorRow(16),
              (std::vector<int>{1, 1, 1, 1, -1, 1, -1, 1, 1, -1, -1, 1,
                                -1, -1, -1}));
}

TEST(PbDesign, Table2MatrixExact)
{
    // The paper's Table 2 (X = 8), all 8 rows.
    const doe::DesignMatrix expected = doe::DesignMatrix::fromSigns({
        {+1, +1, +1, -1, +1, -1, -1},
        {-1, +1, +1, +1, -1, +1, -1},
        {-1, -1, +1, +1, +1, -1, +1},
        {+1, -1, -1, +1, +1, +1, -1},
        {-1, +1, -1, -1, +1, +1, +1},
        {+1, -1, +1, -1, -1, +1, +1},
        {+1, +1, -1, +1, -1, -1, +1},
        {-1, -1, -1, -1, -1, -1, -1},
    });
    EXPECT_TRUE(doe::pbDesign(8) == expected);
}

TEST(PbDesign, ConstructionKindsReported)
{
    EXPECT_EQ(doe::pbConstructionFor(8),
              doe::PbConstruction::CyclicQuadraticResidue);
    EXPECT_EQ(doe::pbConstructionFor(44),
              doe::PbConstruction::CyclicQuadraticResidue);
    EXPECT_EQ(doe::pbConstructionFor(16),
              doe::PbConstruction::CyclicPublished);
    EXPECT_EQ(doe::pbConstructionFor(28),
              doe::PbConstruction::HadamardDerived);
    EXPECT_EQ(doe::pbConstructionFor(40),
              doe::PbConstruction::HadamardDerived);
}

namespace
{

class PbDesignSizes : public ::testing::TestWithParam<unsigned>
{
};

} // namespace

TEST_P(PbDesignSizes, BalancedAndOrthogonal)
{
    const unsigned x = GetParam();
    ASSERT_TRUE(doe::pbSizeSupported(x));
    const doe::DesignMatrix m = doe::pbDesign(x);
    EXPECT_EQ(m.numRows(), x);
    EXPECT_EQ(m.numColumns(), x - 1);
    // The two properties that make a saturated design work: every
    // factor is high in exactly half the runs, and any two factor
    // columns are uncorrelated.
    EXPECT_TRUE(m.isBalanced());
    EXPECT_TRUE(m.isOrthogonal());
}

INSTANTIATE_TEST_SUITE_P(AllSupportedSizes, PbDesignSizes,
                         ::testing::Values(8u, 12u, 16u, 20u, 24u, 28u,
                                           32u, 36u, 40u, 44u, 48u, 60u,
                                           68u, 72u, 80u, 84u));

TEST(PbDesign, CyclicLayoutLastRowAllLow)
{
    for (unsigned x : {8u, 12u, 44u}) {
        const doe::DesignMatrix m = doe::pbDesign(x);
        for (std::size_t c = 0; c < m.numColumns(); ++c)
            EXPECT_EQ(m.at(x - 1, c), doe::Level::Low);
    }
}

TEST(PbDesign, CyclicRowsAreRightShifts)
{
    const doe::DesignMatrix m = doe::pbDesign(12);
    for (std::size_t r = 1; r + 1 < m.numRows(); ++r)
        for (std::size_t c = 0; c < m.numColumns(); ++c)
            EXPECT_EQ(m.sign(r, c),
                      m.sign(r - 1, (c + m.numColumns() - 1) %
                                        m.numColumns()))
                << "row " << r << " col " << c;
}

TEST(PbDesign, RejectsBadSizes)
{
    EXPECT_THROW(doe::pbDesign(7), std::invalid_argument);
    EXPECT_THROW(doe::pbDesign(4), std::invalid_argument);
    EXPECT_THROW(doe::pbDesign(0), std::invalid_argument);
    EXPECT_FALSE(doe::pbSizeSupported(92));
}

TEST(PbDesign, DesignForFactorsSkipsUnsupported)
{
    // 43 factors -> the paper's X = 44 design.
    const doe::DesignMatrix m = doe::pbDesignForFactors(43);
    EXPECT_EQ(m.numRows(), 44u);
    // 89 factors -> 92 unsupported -> 96.
    const doe::DesignMatrix big = doe::pbDesignForFactors(89);
    EXPECT_EQ(big.numRows(), 96u);
    EXPECT_TRUE(big.isOrthogonal());
}

TEST(PbDesign, GeneratorRowThrowsWhenNonCyclic)
{
    EXPECT_THROW(doe::pbGeneratorRow(28), std::invalid_argument);
}
