#include <gtest/gtest.h>

#include "doe/hadamard.hh"

namespace doe = rigor::doe;

TEST(Hadamard, PrimalityHelper)
{
    EXPECT_FALSE(doe::isPrime(0));
    EXPECT_FALSE(doe::isPrime(1));
    EXPECT_TRUE(doe::isPrime(2));
    EXPECT_TRUE(doe::isPrime(3));
    EXPECT_FALSE(doe::isPrime(4));
    EXPECT_TRUE(doe::isPrime(43));
    EXPECT_FALSE(doe::isPrime(91)); // 7 * 13
    EXPECT_TRUE(doe::isPrime(97));
}

TEST(Hadamard, LegendreSymbolMod7)
{
    // QRs mod 7: {1, 2, 4}.
    EXPECT_EQ(doe::legendreSymbol(0, 7), 0);
    EXPECT_EQ(doe::legendreSymbol(1, 7), 1);
    EXPECT_EQ(doe::legendreSymbol(2, 7), 1);
    EXPECT_EQ(doe::legendreSymbol(3, 7), -1);
    EXPECT_EQ(doe::legendreSymbol(4, 7), 1);
    EXPECT_EQ(doe::legendreSymbol(5, 7), -1);
    EXPECT_EQ(doe::legendreSymbol(6, 7), -1);
    // Negative arguments wrap correctly: -1 = 6 (mod 7).
    EXPECT_EQ(doe::legendreSymbol(-1, 7), -1);
}

TEST(Hadamard, LegendreMultiplicativity)
{
    const unsigned p = 43;
    for (long a = 1; a < 43; ++a)
        for (long b = 1; b < 43; b += 7)
            EXPECT_EQ(doe::legendreSymbol(a * b, p),
                      doe::legendreSymbol(a, p) *
                          doe::legendreSymbol(b, p));
}

TEST(Hadamard, IsHadamardAcceptsOrder2)
{
    EXPECT_TRUE(doe::isHadamard({{1, 1}, {1, -1}}));
}

TEST(Hadamard, IsHadamardRejectsNonHadamard)
{
    EXPECT_FALSE(doe::isHadamard({{1, 1}, {1, 1}}));
    EXPECT_FALSE(doe::isHadamard({{1, 0}, {1, -1}}));
    EXPECT_FALSE(doe::isHadamard({{1, 1, 1}, {1, -1}}));
    EXPECT_FALSE(doe::isHadamard({}));
}

TEST(Hadamard, SylvesterDoubling)
{
    const doe::SignMatrix h2 = {{1, 1}, {1, -1}};
    const doe::SignMatrix h4 = doe::sylvesterDouble(h2);
    EXPECT_EQ(h4.size(), 4u);
    EXPECT_TRUE(doe::isHadamard(h4));
    const doe::SignMatrix h8 = doe::sylvesterDouble(h4);
    EXPECT_TRUE(doe::isHadamard(h8));
}

TEST(Hadamard, PaleyTypeOneOrders)
{
    for (unsigned q : {3u, 7u, 11u, 19u, 23u, 31u, 43u, 47u}) {
        const doe::SignMatrix h = doe::paleyTypeOne(q);
        EXPECT_EQ(h.size(), q + 1);
        EXPECT_TRUE(doe::isHadamard(h)) << "q = " << q;
    }
}

TEST(Hadamard, PaleyTypeOneRejectsWrongResidue)
{
    EXPECT_THROW(doe::paleyTypeOne(13), std::invalid_argument);
    EXPECT_THROW(doe::paleyTypeOne(9), std::invalid_argument);
}

TEST(Hadamard, PaleyTypeTwoOrders)
{
    for (unsigned q : {5u, 13u, 17u, 29u, 37u}) {
        const doe::SignMatrix h = doe::paleyTypeTwo(q);
        EXPECT_EQ(h.size(), 2 * (q + 1));
        EXPECT_TRUE(doe::isHadamard(h)) << "q = " << q;
    }
}

TEST(Hadamard, PaleyTypeTwoRejectsWrongResidue)
{
    EXPECT_THROW(doe::paleyTypeTwo(7), std::invalid_argument);
}

TEST(Hadamard, NormalizePreservesHadamard)
{
    doe::SignMatrix h = doe::paleyTypeOne(11);
    const doe::SignMatrix n = doe::normalizeHadamard(h);
    EXPECT_TRUE(doe::isHadamard(n));
    for (std::size_t i = 0; i < n.size(); ++i) {
        EXPECT_EQ(n[i][0], 1);
        EXPECT_EQ(n[0][i], 1);
    }
}

TEST(Hadamard, FactoryProducesValidOrders)
{
    // All multiples of 4 up to 88 are reachable: Paley I/II over
    // primes and prime powers (52 comes from GF(25)) plus Sylvester
    // doubling.
    for (unsigned n = 4; n <= 88; n += 4) {
        ASSERT_TRUE(doe::hadamardOrderSupported(n)) << n;
        const doe::SignMatrix h = doe::hadamardMatrix(n);
        EXPECT_EQ(h.size(), n);
        EXPECT_TRUE(doe::isHadamard(h)) << "order " << n;
    }
}

TEST(Hadamard, UnsupportedOrders)
{
    // 92 needs search-based constructions (Baumert-Golomb-Hall):
    // 91 = 7 x 13 and 45 = 3^2 x 5 are not prime powers.
    EXPECT_FALSE(doe::hadamardOrderSupported(92));
    EXPECT_THROW(doe::hadamardMatrix(92), std::invalid_argument);
}

TEST(Hadamard, RejectsNonMultipleOfFour)
{
    EXPECT_FALSE(doe::hadamardOrderSupported(6));
    EXPECT_THROW(doe::hadamardMatrix(6), std::invalid_argument);
}

TEST(Hadamard, SmallOrders)
{
    EXPECT_TRUE(doe::isHadamard(doe::hadamardMatrix(1)));
    EXPECT_TRUE(doe::isHadamard(doe::hadamardMatrix(2)));
}
