#include <gtest/gtest.h>

#include "doe/design_matrix.hh"

namespace doe = rigor::doe;

TEST(DesignMatrix, ConstructsAllLow)
{
    const doe::DesignMatrix m(3, 2);
    EXPECT_EQ(m.numRows(), 3u);
    EXPECT_EQ(m.numColumns(), 2u);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_EQ(m.at(r, c), doe::Level::Low);
}

TEST(DesignMatrix, RejectsZeroDimensions)
{
    EXPECT_THROW(doe::DesignMatrix(0, 3), std::invalid_argument);
    EXPECT_THROW(doe::DesignMatrix(3, 0), std::invalid_argument);
}

TEST(DesignMatrix, SetAndGet)
{
    doe::DesignMatrix m(2, 2);
    m.set(0, 1, doe::Level::High);
    EXPECT_EQ(m.at(0, 1), doe::Level::High);
    EXPECT_EQ(m.sign(0, 1), 1);
    EXPECT_EQ(m.sign(0, 0), -1);
}

TEST(DesignMatrix, OutOfRangeThrows)
{
    doe::DesignMatrix m(2, 2);
    EXPECT_THROW(m.at(2, 0), std::out_of_range);
    EXPECT_THROW(m.set(0, 2, doe::Level::High), std::out_of_range);
}

TEST(DesignMatrix, FromSigns)
{
    const doe::DesignMatrix m =
        doe::DesignMatrix::fromSigns({{1, -1}, {-1, 1}});
    EXPECT_EQ(m.sign(0, 0), 1);
    EXPECT_EQ(m.sign(0, 1), -1);
    EXPECT_EQ(m.sign(1, 0), -1);
    EXPECT_EQ(m.sign(1, 1), 1);
}

TEST(DesignMatrix, FromSignsRejectsBadEntries)
{
    EXPECT_THROW(doe::DesignMatrix::fromSigns({{1, 2}}),
                 std::invalid_argument);
    EXPECT_THROW(doe::DesignMatrix::fromSigns({{1, -1}, {1}}),
                 std::invalid_argument);
    EXPECT_THROW(doe::DesignMatrix::fromSigns({}),
                 std::invalid_argument);
}

TEST(DesignMatrix, RowAndColumnAccessors)
{
    const doe::DesignMatrix m =
        doe::DesignMatrix::fromSigns({{1, -1}, {-1, 1}, {1, 1}});
    const std::vector<doe::Level> row = m.row(1);
    EXPECT_EQ(row[0], doe::Level::Low);
    EXPECT_EQ(row[1], doe::Level::High);
    EXPECT_EQ(m.columnSigns(0), (std::vector<int>{1, -1, 1}));
}

TEST(DesignMatrix, BalanceDetection)
{
    const doe::DesignMatrix balanced =
        doe::DesignMatrix::fromSigns({{1, 1}, {-1, -1}});
    EXPECT_TRUE(balanced.isBalanced());
    const doe::DesignMatrix unbalanced =
        doe::DesignMatrix::fromSigns({{1, 1}, {1, -1}});
    EXPECT_FALSE(unbalanced.isBalanced());
}

TEST(DesignMatrix, OrthogonalityDetection)
{
    // 2^2 full factorial columns are orthogonal.
    const doe::DesignMatrix ortho = doe::DesignMatrix::fromSigns(
        {{-1, -1}, {1, -1}, {-1, 1}, {1, 1}});
    EXPECT_TRUE(ortho.isOrthogonal());
    EXPECT_EQ(ortho.columnDot(0, 1), 0);

    const doe::DesignMatrix copies = doe::DesignMatrix::fromSigns(
        {{1, 1}, {-1, -1}, {1, 1}, {-1, -1}});
    EXPECT_FALSE(copies.isOrthogonal());
    EXPECT_EQ(copies.columnDot(0, 1), 4);
}

TEST(DesignMatrix, EqualityOperator)
{
    const doe::DesignMatrix a =
        doe::DesignMatrix::fromSigns({{1, -1}, {-1, 1}});
    const doe::DesignMatrix b =
        doe::DesignMatrix::fromSigns({{1, -1}, {-1, 1}});
    const doe::DesignMatrix c =
        doe::DesignMatrix::fromSigns({{1, -1}, {-1, -1}});
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(DesignMatrix, ToStringFormat)
{
    const doe::DesignMatrix m =
        doe::DesignMatrix::fromSigns({{1, -1}});
    EXPECT_EQ(m.toString(), "+1 -1\n");
}

TEST(DesignMatrix, LevelHelpers)
{
    EXPECT_EQ(doe::levelValue(doe::Level::High), 1);
    EXPECT_EQ(doe::levelValue(doe::Level::Low), -1);
    EXPECT_EQ(doe::flip(doe::Level::High), doe::Level::Low);
    EXPECT_EQ(doe::flip(doe::Level::Low), doe::Level::High);
}
