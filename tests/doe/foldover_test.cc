#include <gtest/gtest.h>

#include "doe/foldover.hh"
#include "doe/pb_design.hh"

namespace doe = rigor::doe;

TEST(Foldover, DoublesRunCount)
{
    const doe::DesignMatrix base = doe::pbDesign(8);
    const doe::DesignMatrix folded = doe::foldover(base);
    EXPECT_EQ(folded.numRows(), 16u);
    EXPECT_EQ(folded.numColumns(), 7u);
}

TEST(Foldover, MirrorRowsAreSignFlipped)
{
    const doe::DesignMatrix base = doe::pbDesign(12);
    const doe::DesignMatrix folded = doe::foldover(base);
    for (std::size_t r = 0; r < base.numRows(); ++r)
        for (std::size_t c = 0; c < base.numColumns(); ++c) {
            EXPECT_EQ(folded.at(r, c), base.at(r, c));
            EXPECT_EQ(folded.sign(base.numRows() + r, c),
                      -base.sign(r, c));
        }
}

TEST(Foldover, Table3MatrixExact)
{
    // The paper's Table 3: the X = 8 design (Table 2, gray) followed
    // by its sign-flipped mirror.
    const doe::DesignMatrix folded = doe::foldover(doe::pbDesign(8));
    const doe::DesignMatrix expected = doe::DesignMatrix::fromSigns({
        {+1, +1, +1, -1, +1, -1, -1},
        {-1, +1, +1, +1, -1, +1, -1},
        {-1, -1, +1, +1, +1, -1, +1},
        {+1, -1, -1, +1, +1, +1, -1},
        {-1, +1, -1, -1, +1, +1, +1},
        {+1, -1, +1, -1, -1, +1, +1},
        {+1, +1, -1, +1, -1, -1, +1},
        {-1, -1, -1, -1, -1, -1, -1},
        {-1, -1, -1, +1, -1, +1, +1},
        {+1, -1, -1, -1, +1, -1, +1},
        {+1, +1, -1, -1, -1, +1, -1},
        {-1, +1, +1, -1, -1, -1, +1},
        {+1, -1, +1, +1, -1, -1, -1},
        {-1, +1, -1, +1, +1, -1, -1},
        {-1, -1, +1, -1, +1, +1, -1},
        {+1, +1, +1, +1, +1, +1, +1},
    });
    EXPECT_TRUE(folded == expected);
}

TEST(Foldover, PreservesBalanceAndOrthogonality)
{
    for (unsigned x : {8u, 12u, 44u}) {
        const doe::DesignMatrix folded =
            doe::foldover(doe::pbDesign(x));
        EXPECT_TRUE(folded.isBalanced());
        EXPECT_TRUE(folded.isOrthogonal());
    }
}

TEST(Foldover, ClearsMainEffectsOfTwoFactorInteractions)
{
    // This is the property foldover buys [Montgomery91]: main-effect
    // columns become orthogonal to all two-factor interactions.
    const doe::DesignMatrix base = doe::pbDesign(12);
    EXPECT_FALSE(doe::mainEffectsClearOfTwoFactorInteractions(base));
    EXPECT_TRUE(doe::mainEffectsClearOfTwoFactorInteractions(
        doe::foldover(base)));
}

TEST(Foldover, FoldedX44HasPaperDimensions)
{
    // "an X = 44 foldover PB design ... 88 (2X) configurations".
    const doe::DesignMatrix folded = doe::foldover(doe::pbDesign(44));
    EXPECT_EQ(folded.numRows(), 88u);
    EXPECT_EQ(folded.numColumns(), 43u);
    EXPECT_TRUE(folded.isOrthogonal());
}
