#include <gtest/gtest.h>

#include "doe/effects.hh"
#include "doe/foldover.hh"
#include "doe/pb_design.hh"

namespace doe = rigor::doe;

namespace
{

/** The paper's Table 4 responses for the X = 8 design. */
const std::vector<double> table4Responses = {1.0,  9.0, 74.0, 28.0,
                                             3.0,  6.0, 112.0, 84.0};

} // namespace

TEST(Effects, Table4ExampleExact)
{
    // The paper's worked example: effects for parameters A-G must be
    // (-23, -67, -137, 129, -105, -225, 73).
    const doe::DesignMatrix design = doe::pbDesign(8);
    const std::vector<double> effects =
        doe::computeEffects(design, table4Responses);
    EXPECT_EQ(effects,
              (std::vector<double>{-23.0, -67.0, -137.0, 129.0, -105.0,
                                   -225.0, 73.0}));
}

TEST(Effects, Table4MostImportantParameters)
{
    // "the parameters with the most effect are F, C, and D."
    const doe::DesignMatrix design = doe::pbDesign(8);
    const std::vector<double> effects =
        doe::computeEffects(design, table4Responses);
    // |F| > |C| > |D| > all others.
    EXPECT_GT(std::abs(effects[5]), std::abs(effects[2]));
    EXPECT_GT(std::abs(effects[2]), std::abs(effects[3]));
    for (std::size_t i : {0u, 1u, 4u, 6u})
        EXPECT_LT(std::abs(effects[i]), std::abs(effects[3]));
}

TEST(Effects, NormalizedEffectsDivideByHalfRuns)
{
    const doe::DesignMatrix design = doe::pbDesign(8);
    const std::vector<double> raw =
        doe::computeEffects(design, table4Responses);
    const std::vector<double> norm =
        doe::computeNormalizedEffects(design, table4Responses);
    for (std::size_t i = 0; i < raw.size(); ++i)
        EXPECT_DOUBLE_EQ(norm[i], raw[i] / 4.0);
}

TEST(Effects, LinearResponseRecoversCoefficients)
{
    // If the response is a pure linear function of the levels, the
    // normalized effect of each factor is exactly 2x its coefficient
    // (moving low -> high changes the level by 2 units).
    const doe::DesignMatrix design =
        doe::foldover(doe::pbDesign(12));
    const std::vector<double> coeffs = {5.0, 0.0, -3.0, 10.0, 1.0, 0.0,
                                        0.5, -7.0, 2.0, 0.0, 4.0};
    std::vector<double> responses;
    for (std::size_t r = 0; r < design.numRows(); ++r) {
        double y = 100.0;
        for (std::size_t c = 0; c < design.numColumns(); ++c)
            y += coeffs[c] * design.sign(r, c);
        responses.push_back(y);
    }
    const std::vector<double> norm =
        doe::computeNormalizedEffects(design, responses);
    for (std::size_t c = 0; c < coeffs.size(); ++c)
        EXPECT_NEAR(norm[c], 2.0 * coeffs[c], 1e-9) << "col " << c;
}

TEST(Effects, ConstantResponseHasZeroEffects)
{
    const doe::DesignMatrix design = doe::pbDesign(8);
    const std::vector<double> responses(8, 42.0);
    for (double e : doe::computeEffects(design, responses))
        EXPECT_DOUBLE_EQ(e, 0.0);
}

TEST(Effects, RejectsWrongResponseCount)
{
    const doe::DesignMatrix design = doe::pbDesign(8);
    const std::vector<double> responses(7, 1.0);
    EXPECT_THROW(doe::computeEffects(design, responses),
                 std::invalid_argument);
}

TEST(Effects, FoldoverIsolatesMainEffectFromInteraction)
{
    // Response = A + (B AND C interaction). In the plain PB design
    // the interaction aliases onto some main effect; after foldover
    // the main-effect estimates are clean.
    const doe::DesignMatrix base = doe::pbDesign(8);
    const doe::DesignMatrix folded = doe::foldover(base);

    const auto response = [](const doe::DesignMatrix &m, std::size_t r) {
        return 10.0 * m.sign(r, 0) +
               4.0 * m.sign(r, 1) * m.sign(r, 2);
    };

    std::vector<double> folded_responses;
    for (std::size_t r = 0; r < folded.numRows(); ++r)
        folded_responses.push_back(response(folded, r));

    const std::vector<double> norm =
        doe::computeNormalizedEffects(folded, folded_responses);
    EXPECT_NEAR(norm[0], 20.0, 1e-9);
    // All other main effects are free of the BC interaction.
    for (std::size_t c = 1; c < norm.size(); ++c)
        EXPECT_NEAR(norm[c], 0.0, 1e-9) << "col " << c;
}

TEST(Effects, InteractionEffectDetectsPlantedInteraction)
{
    const doe::DesignMatrix folded = doe::foldover(doe::pbDesign(8));
    std::vector<double> responses;
    for (std::size_t r = 0; r < folded.numRows(); ++r)
        responses.push_back(5.0 * folded.sign(r, 1) *
                            folded.sign(r, 2));
    const double bc =
        doe::computeInteractionEffect(folded, responses, 1, 2);
    // Contrast = 5 * 16 runs.
    EXPECT_NEAR(bc, 80.0, 1e-9);
    EXPECT_NEAR(doe::computeInteractionEffect(folded, responses, 0, 3),
                0.0, 1e-9);
}

TEST(Effects, InteractionEffectValidatesArguments)
{
    const doe::DesignMatrix design = doe::pbDesign(8);
    const std::vector<double> responses(8, 1.0);
    EXPECT_THROW(
        doe::computeInteractionEffect(design, responses, 0, 9),
        std::out_of_range);
}

TEST(Effects, VariationSharesSumToOne)
{
    const std::vector<double> effects = {-23.0, -67.0, -137.0, 129.0,
                                         -105.0, -225.0, 73.0};
    const std::vector<double> shares =
        doe::effectVariationShares(effects);
    double total = 0.0;
    for (double s : shares)
        total += s;
    EXPECT_NEAR(total, 1.0, 1e-12);
    // F dominates.
    EXPECT_GT(shares[5], shares[2]);
}

TEST(Effects, VariationSharesOfZeroEffects)
{
    const std::vector<double> effects(4, 0.0);
    for (double s : doe::effectVariationShares(effects))
        EXPECT_DOUBLE_EQ(s, 0.0);
}
