#include <gtest/gtest.h>

#include "doe/one_at_a_time.hh"

namespace doe = rigor::doe;

TEST(OneAtATime, DesignShape)
{
    const doe::DesignMatrix m =
        doe::oneAtATimeDesign(5, doe::Level::Low);
    EXPECT_EQ(m.numRows(), 6u);
    EXPECT_EQ(m.numColumns(), 5u);
}

TEST(OneAtATime, RowZeroIsBase)
{
    const doe::DesignMatrix m =
        doe::oneAtATimeDesign(4, doe::Level::High);
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_EQ(m.at(0, c), doe::Level::High);
}

TEST(OneAtATime, EachRowFlipsExactlyOneFactor)
{
    const doe::DesignMatrix m =
        doe::oneAtATimeDesign(6, doe::Level::Low);
    for (std::size_t r = 1; r < m.numRows(); ++r) {
        unsigned flipped = 0;
        for (std::size_t c = 0; c < m.numColumns(); ++c)
            if (m.at(r, c) != doe::Level::Low)
                ++flipped;
        EXPECT_EQ(flipped, 1u);
        EXPECT_EQ(m.at(r, r - 1), doe::Level::High);
    }
}

TEST(OneAtATime, IsNotBalanced)
{
    // The design's statistical weakness: factors spend almost all
    // runs at the base level.
    const doe::DesignMatrix m =
        doe::oneAtATimeDesign(4, doe::Level::Low);
    EXPECT_FALSE(m.isBalanced());
}

TEST(OneAtATime, EffectsFromLowBase)
{
    // Base = all low, response 10; flipping factor 1 gives 16.
    const std::vector<double> responses = {10.0, 16.0, 8.0, 10.0};
    const std::vector<double> effects =
        doe::oneAtATimeEffects(doe::Level::Low, responses);
    EXPECT_EQ(effects, (std::vector<double>{6.0, -2.0, 0.0}));
}

TEST(OneAtATime, EffectsFromHighBaseAreReoriented)
{
    // Base = all high, response 20; flipping factor 0 low gives 14,
    // so high - low = +6.
    const std::vector<double> responses = {20.0, 14.0};
    const std::vector<double> effects =
        doe::oneAtATimeEffects(doe::Level::High, responses);
    EXPECT_EQ(effects, (std::vector<double>{6.0}));
}

TEST(OneAtATime, MissesInteractions)
{
    // Response = A * B (pure interaction, no main effects). From an
    // all-low base, one-at-a-time misattributes the interaction to
    // *both* main effects — the masking/aliasing failure the paper
    // warns about (section 2.1) — and its answer depends entirely on
    // where the base point sits.
    const auto interaction = [](int a, int b) {
        return 50.0 + 10.0 * a * b;
    };
    const doe::DesignMatrix m =
        doe::oneAtATimeDesign(2, doe::Level::Low);
    std::vector<double> responses;
    for (std::size_t r = 0; r < m.numRows(); ++r)
        responses.push_back(interaction(m.sign(r, 0), m.sign(r, 1)));

    const std::vector<double> effects =
        doe::oneAtATimeEffects(doe::Level::Low, responses);
    EXPECT_DOUBLE_EQ(effects[0], -20.0);
    EXPECT_DOUBLE_EQ(effects[1], -20.0);
    // Both factors report a spurious -20 "main effect" even though
    // neither has one. See bench/ablation_design_choice for the
    // quantitative comparison against the PB design.
}

TEST(OneAtATime, Validation)
{
    EXPECT_THROW(doe::oneAtATimeDesign(0, doe::Level::Low),
                 std::invalid_argument);
    const std::vector<double> one = {1.0};
    EXPECT_THROW(doe::oneAtATimeEffects(doe::Level::Low, one),
                 std::invalid_argument);
}
