#include <gtest/gtest.h>

#include <limits>

#include "doe/design_cost.hh"

namespace doe = rigor::doe;

TEST(DesignCost, Table1RowCountsForFortyFactors)
{
    // The paper's section 2.1 example: 40 two-valued parameters.
    EXPECT_EQ(doe::simulationsRequired(doe::DesignKind::OneAtATime, 40),
              41u);
    EXPECT_EQ(
        doe::simulationsRequired(doe::DesignKind::PlackettBurman, 40),
        44u);
    EXPECT_EQ(doe::simulationsRequired(
                  doe::DesignKind::PlackettBurmanFoldover, 40),
              88u);
    // 2^40 > 1 trillion, as the paper says.
    EXPECT_EQ(
        doe::simulationsRequired(doe::DesignKind::FullFactorial, 40),
        1ULL << 40);
    EXPECT_GT(
        doe::simulationsRequired(doe::DesignKind::FullFactorial, 40),
        1000000000000ULL);
}

TEST(DesignCost, PaperCaseFortyThreeFactors)
{
    EXPECT_EQ(doe::simulationsRequired(
                  doe::DesignKind::PlackettBurmanFoldover, 43),
              88u);
}

TEST(DesignCost, FullFactorialSaturatesAt64Factors)
{
    EXPECT_EQ(
        doe::simulationsRequired(doe::DesignKind::FullFactorial, 64),
        std::numeric_limits<std::uint64_t>::max());
}

TEST(DesignCost, NamesAndDetails)
{
    EXPECT_EQ(doe::designKindName(doe::DesignKind::OneAtATime),
              "One Parameter at-a-time");
    EXPECT_EQ(doe::designKindDetail(doe::DesignKind::FullFactorial),
              "All Parameters, All Interactions");
    EXPECT_EQ(
        doe::designKindDetail(doe::DesignKind::PlackettBurmanFoldover),
        "All Parameters, Selected Interactions");
}

TEST(DesignCost, RejectsZeroFactors)
{
    EXPECT_THROW(
        doe::simulationsRequired(doe::DesignKind::OneAtATime, 0),
        std::invalid_argument);
}

TEST(DesignCost, PbAlwaysCheaperThanFullBeyondFourFactors)
{
    for (unsigned n = 5; n <= 43; ++n)
        EXPECT_LT(doe::simulationsRequired(
                      doe::DesignKind::PlackettBurmanFoldover, n),
                  doe::simulationsRequired(
                      doe::DesignKind::FullFactorial, n))
            << n;
}
