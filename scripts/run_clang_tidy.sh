#!/usr/bin/env bash
# Run clang-tidy (checks from .clang-tidy) over the library sources.
# Requires a compile_commands.json, which the default preset exports.
#
#   scripts/run_clang_tidy.sh             # whole library + tools
#   scripts/run_clang_tidy.sh src/stats   # one subtree
#
# Exits 0 with a notice when clang-tidy is not installed so it can sit
# in pipelines next to compilers that do not ship it.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "run_clang_tidy.sh: clang-tidy not found; skipping." >&2
    exit 0
fi

if [ ! -f build/compile_commands.json ]; then
    cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

targets=("$@")
if [ "${#targets[@]}" -eq 0 ]; then
    targets=(src tools)
fi

mapfile -t sources < <(find "${targets[@]}" -name '*.cc' | sort)
clang-tidy -p build --quiet "${sources[@]}"

echo "clang-tidy passed."
