#!/usr/bin/env bash
# Build the asan preset and run the full tier-1 test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer. Any heap error,
# out-of-bounds access, or undefined behaviour (signed overflow,
# misaligned load, invalid shift, ...) fails the run.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"

# Abort on the first report so a failure points at one stack trace;
# -fno-sanitize-recover=all already makes UBSan fatal at compile time.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --preset asan -j "$(nproc)"

echo "ASan/UBSan suites passed."
