#!/usr/bin/env bash
# Chaos-soak the distributed campaign backend, two ways:
#
#  1. The seeded in-process soak (tools/chaos_soak): five rounds of
#     composed network drills — partitions healed inside the session
#     grace window, reconnect storms, slow-loris frames, stalled
#     heartbeats, torn frames, duplicate-session and wrong-token
#     probes, and a mid-campaign drain+resume — each round asserting
#     a rank table bit-identical to a single-process run over a
#     loss-free, duplicate-free journal.
#
#  2. The process-level drill: a real campaign controller with an
#     auth token is SIGTERM-drained mid-run (exit 4), a rogue worker
#     with the wrong token is turned away before any lease, and a
#     fresh fleet resumes the journal to a bit-identical rank table.
#
# The seed is pinned so a CI failure replays exactly.
set -euo pipefail

cd "$(dirname "$0")/.."

seed="${CHAOS_SEED:-7}"

cmake --preset default
cmake --build --preset default -j "$(nproc)" \
    --target campaign worker chaos_soak

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# ----- Phase 1: the seeded in-process soak -----

./build/tools/chaos_soak --seed "$seed" --rounds 5 --workers 3 \
    --workdir "$workdir"

# ----- Phase 2: SIGTERM drain + journal resume, real processes -----

echo "fleet-soak-$seed-token" > "$workdir/fleet.token"
echo "wrong-token" > "$workdir/rogue.token"

# Reference: the same screen in one process under thread isolation.
./build/tools/campaign \
    --workloads gzip,mcf --instructions 100000 \
    --quiet > "$workdir/rank_reference.txt"

./build/tools/campaign \
    --listen 127.0.0.1:0 --workers 3 --threads 3 \
    --port-file "$workdir/port" \
    --auth-token-file "$workdir/fleet.token" \
    --workloads gzip,mcf --instructions 100000 \
    --journal "$workdir/journal" \
    --manifest-out "$workdir/manifest_drained.jsonl" \
    --quiet > "$workdir/rank_drained.txt" \
    2> "$workdir/controller.log" &
campaign_pid=$!

for _ in $(seq 1 100); do
    [ -s "$workdir/port" ] && break
    sleep 0.1
done
[ -s "$workdir/port" ] || {
    echo "controller never wrote its port file" >&2
    cat "$workdir/controller.log" >&2
    exit 1
}
port="$(cat "$workdir/port")"

# A rogue worker with the wrong token must be turned away (nonzero
# exit) before any lease is granted.
rogue_rc=0
./build/tools/worker --connect "127.0.0.1:$port" --name rogue \
    --auth-token-file "$workdir/rogue.token" \
    > "$workdir/rogue.log" 2>&1 || rogue_rc=$?
[ "$rogue_rc" -ne 0 ] || {
    echo "the rogue worker was admitted" >&2
    cat "$workdir/rogue.log" >&2
    exit 1
}

./build/tools/worker --connect "127.0.0.1:$port" --name w1 \
    --auth-token-file "$workdir/fleet.token" --reconnect 5 &
w1=$!
./build/tools/worker --connect "127.0.0.1:$port" --name w2 \
    --auth-token-file "$workdir/fleet.token" --reconnect 5 &
w2=$!
./build/tools/worker --connect "127.0.0.1:$port" --name w3 \
    --auth-token-file "$workdir/fleet.token" --reconnect 5 &
w3=$!

# Wait until the fsync'd journal proves the fleet is mid-campaign,
# then SIGTERM the controller: it must drain — in-flight cells
# finish, queued cells stay journaled — and exit 4 (resumable).
for _ in $(seq 1 600); do
    [ -f "$workdir/journal" ] &&
        [ "$(wc -l < "$workdir/journal")" -ge 41 ] && break
    sleep 0.05
done
kill -TERM "$campaign_pid"

drain_rc=0
wait "$campaign_pid" || drain_rc=$?
[ "$drain_rc" -eq 4 ] || {
    echo "SIGTERM drain exited $drain_rc, want 4" >&2
    cat "$workdir/controller.log" >&2
    exit 1
}
echo "controller drained with exit 4"

# The drained controller's shutdown releases the fleet cleanly.
wait "$w1" "$w2" "$w3"

# Resume: a fresh controller and fleet pick up the same journal and
# must finish with the reference rank table, bit for bit.
rm -f "$workdir/port"
./build/tools/campaign \
    --listen 127.0.0.1:0 --workers 3 --threads 3 \
    --port-file "$workdir/port" \
    --auth-token-file "$workdir/fleet.token" \
    --workloads gzip,mcf --instructions 100000 \
    --journal "$workdir/journal" \
    --manifest-out "$workdir/manifest_resumed.jsonl" \
    --quiet > "$workdir/rank_resumed.txt" \
    2>> "$workdir/controller.log" &
campaign_pid=$!

for _ in $(seq 1 100); do
    [ -s "$workdir/port" ] && break
    sleep 0.1
done
port="$(cat "$workdir/port")"

./build/tools/worker --connect "127.0.0.1:$port" --name w1 \
    --auth-token-file "$workdir/fleet.token" --reconnect 5 &
w1=$!
./build/tools/worker --connect "127.0.0.1:$port" --name w2 \
    --auth-token-file "$workdir/fleet.token" --reconnect 5 &
w2=$!
./build/tools/worker --connect "127.0.0.1:$port" --name w3 \
    --auth-token-file "$workdir/fleet.token" --reconnect 5 &
w3=$!

wait "$campaign_pid"
wait "$w1" "$w2" "$w3"

diff "$workdir/rank_reference.txt" "$workdir/rank_resumed.txt"
echo "rank table bit-identical across SIGTERM drain + resume"

python3 - "$workdir" <<'EOF'
import json, sys
workdir = sys.argv[1]

# The rogue worker was rejected by the auth gate, not merely lost.
drained = [json.loads(l)
           for l in open(f"{workdir}/manifest_drained.jsonl")]
leases = [r for r in drained if r["type"] == "lease"]
assert any(r["kind"] == "auth-rejected" for r in leases), \
    "no auth-rejected event for the rogue worker"
joined = {r["worker"] for r in leases if r["kind"] == "worker-joined"}
assert joined == {"w1", "w2", "w3"}, joined

# The journal holds every completed cell exactly once.
keys = []
with open(f"{workdir}/journal") as journal:
    next(journal)  # version header
    for line in journal:
        if line.strip():
            keys.append(line.split()[1])
assert len(keys) == len(set(keys)), "duplicate journal records"
assert len(keys) == 176, f"{len(keys)} of 176 cells journaled"

# The resumed run replayed the drained run's cells from disk and
# simulated only the remainder.
resumed = [json.loads(l)
           for l in open(f"{workdir}/manifest_resumed.jsonl")]
cells = {(r["benchmark"], r["row"]) for r in resumed
         if r["type"] == "cell"}
assert len(cells) == 176, len(cells)
replayed = sum(1 for r in resumed if r["type"] == "cell"
               and r.get("source") == "journal")
assert replayed >= 40, f"only {replayed} cells replayed from journal"
print(f"auth-rejected: yes | journal: 176 unique | "
      f"replayed on resume: {replayed}")
EOF

echo "Chaos soak passed (seed $seed)."
