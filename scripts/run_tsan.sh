#!/usr/bin/env bash
# Build the tsan preset and run the concurrency-sensitive test suites
# (doe, methodology, exec) under ThreadSanitizer. Any data race in the
# SimJobQueue, RunCache, ProgressReporter, or the drivers that share a
# SimulationEngine fails the run.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"

# TSan halts on the first race so failures point at one stack pair.
# die_after_fork=0: the process-isolation suites fork sandbox
# workers from a multithreaded parent by design (the children only
# simulate and _Exit; they never touch the parent's locks).
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 die_after_fork=0"

# Every suite under tests/doe, tests/methodology, and tests/exec —
# run straight from the gtest binary so one process exercises the
# shared-engine paths end to end.
./build-tsan/tests/rigor_tests --gtest_filter="$(tr -d ' \n' <<'EOF'
SimJobQueue.*:RunCache.*:ProcessorConfigHash.*:SimulationEngine.*:
PbDesign.*:Foldover.*:Effects.*:Hadamard.*:GaloisField.*:
PrimePower.*:DesignMatrix.*:DesignCost.*:OneAtATime.*:
Classification.*:Ranking.*:RankTable.*:TextTable.*:
ParameterSpace.*:PbExperiment.*:Workflow.*:EnhancementAnalysis.*:
CsvExport.*:PublishedData.*:Preflight.*:
FaultPolicy.*:AttemptContext.*:JobFailure.*:FaultTolerance.*:
FaultInjector.*:ResultJournal.*:CampaignCheck.*:CampaignResume.*:
CampaignDegradation.*:
ProcProtocol.*:ProcWorkerPool.*:ProcCampaign.*:
Metrics.*:TraceWriter.*:TraceSpan.*:CampaignManifest.*:
CampaignOptions.*
EOF
)"

echo "TSan suites passed."
