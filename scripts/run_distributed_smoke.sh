#!/usr/bin/env bash
# Drill the distributed campaign backend end to end: a controller
# shards the Plackett-Burman screen across three localhost workers,
# one worker is SIGKILLed mid-lease, and the campaign must still
# finish with a rank table bit-identical to a single-process run
# while the manifest records the lease reclaim and the rerun host
# for every migrated cell.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j "$(nproc)" --target campaign worker

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Reference: the same screen in one process under thread isolation.
./build/tools/campaign \
    --workloads gzip,mcf --instructions 100000 \
    --quiet > "$workdir/rank_reference.txt"

# Distributed: port 0 lets the kernel pick; --port-file is the
# rendezvous. --threads 3 keeps three leases in flight so the fleet
# actually shares the load even on a single-core host, and the
# fsync'd journal doubles as a progress probe for timing the kill.
./build/tools/campaign \
    --listen 127.0.0.1:0 --workers 3 --threads 3 \
    --port-file "$workdir/port" \
    --workloads gzip,mcf --instructions 100000 \
    --journal "$workdir/journal" \
    --manifest-out "$workdir/manifest.jsonl" \
    --quiet > "$workdir/rank_distributed.txt" \
    2> "$workdir/controller.log" &
campaign_pid=$!

for _ in $(seq 1 100); do
    [ -s "$workdir/port" ] && break
    sleep 0.1
done
[ -s "$workdir/port" ] || {
    echo "controller never wrote its port file" >&2
    cat "$workdir/controller.log" >&2
    exit 1
}
port="$(cat "$workdir/port")"

./build/tools/worker --connect "127.0.0.1:$port" --name w1 &
w1=$!
./build/tools/worker --connect "127.0.0.1:$port" --name w2 &
w2=$!
./build/tools/worker --connect "127.0.0.1:$port" --name w3 &
w3=$!

# Wait until the fleet has journaled 20 of the 176 cells — every
# worker is then mid-lease — and kill one worker. The controller
# must reclaim its leases, requeue the cells onto the survivors,
# and finish the campaign regardless.
for _ in $(seq 1 600); do
    [ -f "$workdir/journal" ] &&
        [ "$(wc -l < "$workdir/journal")" -ge 21 ] && break
    sleep 0.05
done
kill -9 "$w2"

wait "$campaign_pid"
wait "$w1" "$w3"

diff "$workdir/rank_reference.txt" "$workdir/rank_distributed.txt"
echo "rank tables identical across isolation modes"

python3 - "$workdir/manifest.jsonl" <<'EOF'
import json, sys
records = [json.loads(l) for l in open(sys.argv[1])]
leases = [r for r in records if r["type"] == "lease"]
joined = {r["worker"] for r in leases if r["kind"] == "worker-joined"}
assert joined == {"w1", "w2", "w3"}, joined
assert any(r["kind"] == "worker-lost" and r["worker"] == "w2"
           for r in leases), leases
reclaimed = [r for r in leases if r["kind"] == "lease-reclaimed"]
assert reclaimed, "the killed worker held no lease; raise --instructions"
cells = {(r["benchmark"], r["row"]): r for r in records
         if r["type"] == "cell"}
assert len(cells) == 176, len(cells)
assert {r["host"] for r in cells.values()} <= {"w1", "w2", "w3"}
for r in reclaimed:
    bench, row = r["label"].split(", design row ")
    rerun = cells[(bench, int(row))]
    assert rerun["host"] != "w2", rerun
    print("reclaimed:", r["label"], "-> rerun on", rerun["host"])
print("hosts:", sorted({r["host"] for r in cells.values()}),
      "| reclaims:", len(reclaimed))
EOF

echo "Distributed smoke passed."
