#include "enhance/precompute.hh"

#include <algorithm>

namespace rigor::enhance
{

bool
isPrecomputable(trace::OpClass op)
{
    switch (op) {
      case trace::OpClass::IntAlu:
      case trace::OpClass::IntMult:
      case trace::OpClass::IntDiv:
        return true;
      default:
        return false;
    }
}

PrecomputationTable::PrecomputationTable(std::uint32_t entries)
    : _capacity(entries)
{
    _table.reserve(entries);
}

std::size_t
PrecomputationTable::profileTrace(trace::TraceSource &source,
                                  std::uint64_t max_profile_instructions)
{
    source.reset();

    std::unordered_map<ComputationKey, std::uint64_t,
                       ComputationKeyHash>
        counts;
    trace::Instruction inst;
    std::uint64_t seen = 0;
    while (source.next(inst)) {
        if (max_profile_instructions != 0 &&
            ++seen > max_profile_instructions)
            break;
        if (!isPrecomputable(inst.op))
            continue;
        const ComputationKey key{inst.op, inst.valA, inst.valB};
        auto it = counts.find(key);
        if (it != counts.end()) {
            ++it->second;
        } else if (counts.size() < profileMapCap) {
            counts.emplace(key, 1);
        }
        // Beyond the cap, new (necessarily cold) tuples are dropped.
    }
    source.reset();

    // Keep the capacity highest-count tuples; ignore singletons — a
    // computation seen once is not redundant.
    std::vector<std::pair<ComputationKey, std::uint64_t>> ranked;
    ranked.reserve(counts.size());
    for (const auto &entry : counts)
        if (entry.second > 1)
            ranked.push_back(entry);
    const std::size_t keep =
        std::min<std::size_t>(_capacity, ranked.size());
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<long>(keep),
                      ranked.end(),
                      [](const auto &a, const auto &b) {
                          return a.second > b.second;
                      });

    _table.clear();
    for (std::size_t i = 0; i < keep; ++i)
        _table.insert(ranked[i].first);
    return _table.size();
}

void
PrecomputationTable::load(const std::vector<ComputationKey> &tuples)
{
    _table.clear();
    for (const ComputationKey &key : tuples) {
        if (_table.size() >= _capacity)
            break;
        _table.insert(key);
    }
}

bool
PrecomputationTable::intercept(const trace::Instruction &inst)
{
    if (!isPrecomputable(inst.op))
        return false;
    ++_lookups;
    const bool hit =
        _table.count({inst.op, inst.valA, inst.valB}) > 0;
    if (hit)
        ++_hits;
    return hit;
}

} // namespace rigor::enhance
