/**
 * @file
 * Instruction precomputation [Yi02-1].
 *
 * A compiler profiling pass identifies the highest-frequency redundant
 * computations — (opcode, input operands) tuples — and loads them into
 * an on-chip precomputation table before the program starts. At run
 * time, an instruction whose tuple matches a table entry uses the
 * cached output instead of executing, removing it from the execution
 * pipeline. The table is static: it is never updated during the run
 * (the key difference from value reuse [Sodani97]).
 *
 * Here the "compiler pass" is a profiling sweep over the (identical,
 * deterministic) instruction trace, which computes exactly what the
 * paper's compiler computed: the most frequent redundant tuples.
 */

#ifndef RIGOR_ENHANCE_PRECOMPUTE_HH
#define RIGOR_ENHANCE_PRECOMPUTE_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/core.hh"
#include "trace/generator.hh"
#include "trace/instruction.hh"

namespace rigor::enhance
{

/** A computation identity: opcode plus both input operand values. */
struct ComputationKey
{
    trace::OpClass op;
    std::uint32_t valA;
    std::uint32_t valB;

    bool operator==(const ComputationKey &other) const
    {
        return op == other.op && valA == other.valA &&
               valB == other.valB;
    }
};

/** Hash for ComputationKey. */
struct ComputationKeyHash
{
    std::size_t operator()(const ComputationKey &k) const
    {
        std::uint64_t h = (static_cast<std::uint64_t>(k.valA) << 32) |
                          k.valB;
        h ^= static_cast<std::uint64_t>(k.op) * 0x9e3779b97f4a7c15ULL;
        h ^= h >> 29;
        h *= 0xbf58476d1ce4e5b9ULL;
        h ^= h >> 32;
        return static_cast<std::size_t>(h);
    }
};

/** True for the operation classes precomputation can capture. */
bool isPrecomputable(trace::OpClass op);

/**
 * The static on-chip precomputation table.
 *
 * Build it with profileTrace(), then install it as the core's
 * ExecutionHook. intercept() hits when the instruction's
 * (op, valA, valB) tuple is resident.
 */
class PrecomputationTable : public sim::ExecutionHook
{
  public:
    /** An empty table with room for @p entries tuples. */
    explicit PrecomputationTable(std::uint32_t entries = 128);

    /**
     * Profiling pass: scan @p source (resetting it first and after),
     * count tuple frequencies, and load the top table-size tuples.
     *
     * @param source the workload trace; reset afterwards so the
     *        timing run sees the stream from the start
     * @param max_profile_instructions cap on the profiling window
     *        (0 = whole trace)
     * @return number of tuples loaded
     */
    std::size_t profileTrace(trace::TraceSource &source,
                             std::uint64_t max_profile_instructions = 0);

    /** Directly load explicit tuples (tests, hand-built tables). */
    void load(const std::vector<ComputationKey> &tuples);

    bool intercept(const trace::Instruction &inst) override;

    std::uint32_t capacity() const { return _capacity; }
    std::size_t size() const { return _table.size(); }

    /** Dynamic hit statistics. */
    std::uint64_t lookups() const { return _lookups; }
    std::uint64_t hits() const { return _hits; }
    double hitRate() const
    {
        return _lookups == 0 ? 0.0
                             : static_cast<double>(_hits) /
                                   static_cast<double>(_lookups);
    }

  private:
    /** Cap on distinct tuples tracked during profiling; hot tuples
     *  enter the counter map early, so dropping the cold tail does
     *  not perturb the top-128 selection. */
    static constexpr std::size_t profileMapCap = 1u << 22;

    std::uint32_t _capacity;
    std::unordered_set<ComputationKey, ComputationKeyHash> _table;
    std::uint64_t _lookups = 0;
    std::uint64_t _hits = 0;
};

} // namespace rigor::enhance

#endif // RIGOR_ENHANCE_PRECOMPUTE_HH
