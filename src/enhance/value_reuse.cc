#include "enhance/value_reuse.hh"

#include <stdexcept>

namespace rigor::enhance
{

ValueReuseTable::ValueReuseTable(std::uint32_t entries,
                                 std::uint32_t assoc)
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        throw std::invalid_argument(
            "ValueReuseTable: entries must be a non-zero power of two");
    if (assoc == 0 || entries % assoc != 0)
        throw std::invalid_argument(
            "ValueReuseTable: associativity must divide the entries");
    _numSets = entries / assoc;
    _assoc = assoc;
    _entries.resize(entries);
}

std::uint32_t
ValueReuseTable::capacity() const
{
    return _numSets * _assoc;
}

bool
ValueReuseTable::intercept(const trace::Instruction &inst)
{
    if (!isPrecomputable(inst.op))
        return false;
    ++_lookups;

    const ComputationKey key{inst.op, inst.valA, inst.valB};
    const std::size_t set =
        ComputationKeyHash{}(key) & (_numSets - 1);
    Entry *base = &_entries[set * _assoc];

    for (std::uint32_t w = 0; w < _assoc; ++w) {
        if (base[w].valid && base[w].key == key) {
            base[w].stamp = ++_tick;
            ++_hits;
            return true;
        }
    }

    // Miss: install, evicting LRU (invalid ways first).
    std::uint32_t victim = 0;
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].stamp < base[victim].stamp)
            victim = w;
    }
    base[victim] = {key, ++_tick, true};
    return false;
}

void
ValueReuseTable::reset()
{
    for (Entry &e : _entries)
        e.valid = false;
    _tick = 0;
    _lookups = 0;
    _hits = 0;
}

} // namespace rigor::enhance
