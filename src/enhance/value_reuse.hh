/**
 * @file
 * Dynamic value reuse [Sodani97].
 *
 * The hardware alternative to instruction precomputation: a value
 * reuse table is continuously updated at run time with the most
 * recent computations. A later instruction with a matching
 * (opcode, operand values) tuple reuses the cached result instead of
 * executing. Organized as a set-associative LRU table.
 *
 * Used as a comparison baseline in the enhancement-analysis
 * experiments and in the ablation reproducing the [Yi02-2]
 * observation the paper quotes in section 4.1 (the ROB size changing
 * a value-reuse speedup from ~20% to ~30%).
 */

#ifndef RIGOR_ENHANCE_VALUE_REUSE_HH
#define RIGOR_ENHANCE_VALUE_REUSE_HH

#include <cstdint>
#include <vector>

#include "enhance/precompute.hh"
#include "sim/core.hh"

namespace rigor::enhance
{

/** Dynamic value-reuse table: set-associative, LRU, write-on-miss. */
class ValueReuseTable : public sim::ExecutionHook
{
  public:
    /**
     * @param entries total entries (power of two)
     * @param assoc ways per set (must divide entries)
     */
    explicit ValueReuseTable(std::uint32_t entries = 128,
                             std::uint32_t assoc = 4);

    /**
     * On a hit the instruction reuses the cached result (returns
     * true); on a miss the tuple is installed, evicting the set's LRU
     * entry.
     */
    bool intercept(const trace::Instruction &inst) override;

    std::uint32_t capacity() const;
    std::uint64_t lookups() const { return _lookups; }
    std::uint64_t hits() const { return _hits; }
    double hitRate() const
    {
        return _lookups == 0 ? 0.0
                             : static_cast<double>(_hits) /
                                   static_cast<double>(_lookups);
    }

    void reset();

  private:
    struct Entry
    {
        ComputationKey key{trace::OpClass::IntAlu, 0, 0};
        std::uint64_t stamp = 0;
        bool valid = false;
    };

    std::uint32_t _numSets;
    std::uint32_t _assoc;
    std::uint64_t _tick = 0;
    std::vector<Entry> _entries;
    std::uint64_t _lookups = 0;
    std::uint64_t _hits = 0;
};

} // namespace rigor::enhance

#endif // RIGOR_ENHANCE_VALUE_REUSE_HH
