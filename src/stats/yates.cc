#include "stats/yates.hh"

#include <bit>
#include <stdexcept>

namespace rigor::stats
{

std::vector<double>
yatesContrasts(std::span<const double> responses)
{
    const std::size_t n = responses.size();
    if (n == 0 || (n & (n - 1)) != 0)
        throw std::invalid_argument(
            "yatesContrasts: response count must be a power of two");

    std::vector<double> work(responses.begin(), responses.end());
    std::vector<double> next(n);

    // Each pass pairs adjacent entries: the first half of the output
    // holds pairwise sums, the second half pairwise differences
    // (high - low). After log2(n) passes, entry i holds the contrast
    // for the factor subset encoded by the bits of i (index 0 is the
    // grand total): the classical Yates standard-order property.
    const unsigned k = static_cast<unsigned>(std::countr_zero(n));
    for (unsigned pass = 0; pass < k; ++pass) {
        for (std::size_t i = 0; i < n / 2; ++i) {
            next[i] = work[2 * i] + work[2 * i + 1];
            next[n / 2 + i] = work[2 * i + 1] - work[2 * i];
        }
        work.swap(next);
    }
    return work;
}

std::string
contrastLabel(std::uint32_t mask, std::span<const std::string> names)
{
    if (mask == 0)
        return "mean";
    std::string label;
    for (std::size_t j = 0; j < names.size(); ++j) {
        if (mask & (std::uint32_t{1} << j)) {
            if (!label.empty())
                label += "*";
            label += names[j];
        }
    }
    return label;
}

unsigned
contrastOrder(std::uint32_t mask)
{
    return static_cast<unsigned>(std::popcount(mask));
}

} // namespace rigor::stats
