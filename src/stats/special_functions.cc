#include "stats/special_functions.hh"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rigor::stats
{

namespace
{

// Lanczos approximation coefficients (g = 7, n = 9), giving ~15
// significant digits for real arguments.
constexpr double lanczosG = 7.0;
constexpr double lanczosCoeffs[] = {
    0.99999999999980993,
    676.5203681218851,
    -1259.1392167224028,
    771.32342877765313,
    -176.61502916214059,
    12.507343278686905,
    -0.13857109526572012,
    9.9843695780195716e-6,
    1.5056327351493116e-7,
};

constexpr double betaCfEpsilon = 1e-15;
constexpr int betaCfMaxIterations = 500;
constexpr double gammaEpsilon = 1e-15;
constexpr int gammaMaxIterations = 500;

/**
 * Modified Lentz evaluation of the continued fraction for the
 * incomplete beta function (Numerical-Recipes style formulation).
 */
double
incompleteBetaContinuedFraction(double a, double b, double x)
{
    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;

    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::abs(d) < std::numeric_limits<double>::min())
        d = std::numeric_limits<double>::min();
    d = 1.0 / d;
    double h = d;

    for (int m = 1; m <= betaCfMaxIterations; ++m) {
        const double m_d = static_cast<double>(m);
        const double m2 = 2.0 * m_d;

        // Even step.
        double aa = m_d * (b - m_d) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < std::numeric_limits<double>::min())
            d = std::numeric_limits<double>::min();
        c = 1.0 + aa / c;
        if (std::abs(c) < std::numeric_limits<double>::min())
            c = std::numeric_limits<double>::min();
        d = 1.0 / d;
        h *= d * c;

        // Odd step.
        aa = -(a + m_d) * (qab + m_d) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < std::numeric_limits<double>::min())
            d = std::numeric_limits<double>::min();
        c = 1.0 + aa / c;
        if (std::abs(c) < std::numeric_limits<double>::min())
            c = std::numeric_limits<double>::min();
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::abs(del - 1.0) < betaCfEpsilon)
            return h;
    }
    throw std::runtime_error(
        "incompleteBetaContinuedFraction: failed to converge");
}

/** Series expansion for P(a, x), best for x < a + 1. */
double
lowerGammaSeries(double a, double x)
{
    double ap = a;
    double term = 1.0 / a;
    double total = term;
    for (int n = 0; n < gammaMaxIterations; ++n) {
        ap += 1.0;
        term *= x / ap;
        total += term;
        if (std::abs(term) < std::abs(total) * gammaEpsilon) {
            return total * std::exp(-x + a * std::log(x) - logGamma(a));
        }
    }
    throw std::runtime_error("lowerGammaSeries: failed to converge");
}

/** Continued fraction for Q(a, x), best for x >= a + 1. */
double
upperGammaContinuedFraction(double a, double x)
{
    double b = x + 1.0 - a;
    double c = 1.0 / std::numeric_limits<double>::min();
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= gammaMaxIterations; ++i) {
        const double an = -static_cast<double>(i) * (i - a);
        b += 2.0;
        d = an * d + b;
        if (std::abs(d) < std::numeric_limits<double>::min())
            d = std::numeric_limits<double>::min();
        c = b + an / c;
        if (std::abs(c) < std::numeric_limits<double>::min())
            c = std::numeric_limits<double>::min();
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::abs(del - 1.0) < gammaEpsilon) {
            return h * std::exp(-x + a * std::log(x) - logGamma(a));
        }
    }
    throw std::runtime_error(
        "upperGammaContinuedFraction: failed to converge");
}

} // namespace

double
logGamma(double x)
{
    if (x <= 0.0)
        throw std::invalid_argument("logGamma: argument must be positive");

    if (x < 0.5) {
        // Reflection formula keeps the Lanczos series in its accurate
        // region for small arguments.
        return std::log(M_PI / std::sin(M_PI * x)) - logGamma(1.0 - x);
    }

    const double z = x - 1.0;
    double series = lanczosCoeffs[0];
    for (int i = 1; i < 9; ++i)
        series += lanczosCoeffs[i] / (z + static_cast<double>(i));

    const double t = z + lanczosG + 0.5;
    return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
           std::log(series);
}

double
logBeta(double a, double b)
{
    return logGamma(a) + logGamma(b) - logGamma(a + b);
}

double
regularizedIncompleteBeta(double a, double b, double x)
{
    if (a <= 0.0 || b <= 0.0)
        throw std::invalid_argument(
            "regularizedIncompleteBeta: shape parameters must be positive");
    if (x < 0.0 || x > 1.0)
        throw std::invalid_argument(
            "regularizedIncompleteBeta: x must be in [0, 1]");

    if (x == 0.0)
        return 0.0;
    if (x == 1.0)
        return 1.0;

    const double front = std::exp(a * std::log(x) + b * std::log(1.0 - x) -
                                  logBeta(a, b));

    // Use the symmetry relation to keep the continued fraction in its
    // rapidly converging region.
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * incompleteBetaContinuedFraction(a, b, x) / a;
    return 1.0 -
           front * incompleteBetaContinuedFraction(b, a, 1.0 - x) / b;
}

double
regularizedLowerIncompleteGamma(double a, double x)
{
    if (a <= 0.0)
        throw std::invalid_argument(
            "regularizedLowerIncompleteGamma: a must be positive");
    if (x < 0.0)
        throw std::invalid_argument(
            "regularizedLowerIncompleteGamma: x must be non-negative");
    if (x == 0.0)
        return 0.0;
    if (x < a + 1.0)
        return lowerGammaSeries(a, x);
    return 1.0 - upperGammaContinuedFraction(a, x);
}

double
regularizedUpperIncompleteGamma(double a, double x)
{
    return 1.0 - regularizedLowerIncompleteGamma(a, x);
}

double
errorFunction(double x)
{
    if (x == 0.0)
        return 0.0;
    const double p = regularizedLowerIncompleteGamma(0.5, x * x);
    return x > 0.0 ? p : -p;
}

double
complementaryErrorFunction(double x)
{
    return 1.0 - errorFunction(x);
}

} // namespace rigor::stats
