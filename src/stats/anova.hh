/**
 * @file
 * Full multifactorial analysis of variance for 2^k designs.
 *
 * This is the "Full Multifactorial / ANOVA" design of the paper's
 * Table 1: 2^N simulations, quantifying all parameters and all
 * interactions. The paper's recommended workflow (section 4.1) first
 * screens with a Plackett-Burman design, then runs this analysis over
 * the few critical parameters.
 *
 * The implementation follows the classical treatment in [Lilja00],
 * "Measuring Computer Performance": contrasts via Yates' algorithm,
 * sums of squares from contrasts, allocation of variation, and, when
 * replicated measurements are available, F-tests against the error
 * mean square.
 */

#ifndef RIGOR_STATS_ANOVA_HH
#define RIGOR_STATS_ANOVA_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rigor::stats
{

/** One row of a 2^k ANOVA table (a main effect or an interaction). */
struct AnovaRow
{
    /** Bitmask of participating factors (bit j = factor j). */
    std::uint32_t mask = 0;
    /** Human-readable label, e.g. "ROB" or "ROB*L2Lat". */
    std::string label;
    /** Effect: average change in response when the subset flips low->high. */
    double effect = 0.0;
    /** Sum of squares attributed to this term. */
    double sumSquares = 0.0;
    /** Fraction of total variation explained (0..1). */
    double variationExplained = 0.0;
    /** F statistic (0 when no replication is available). */
    double fStatistic = 0.0;
    /** p-value of the F test (1 when no replication is available). */
    double pValue = 1.0;
};

/** Complete result of a 2^k factorial analysis. */
struct AnovaResult
{
    unsigned numFactors = 0;
    unsigned replications = 1;
    /** All 2^k - 1 effect rows, in Yates (standard-order) index order. */
    std::vector<AnovaRow> rows;
    /** Grand mean of all observations. */
    double grandMean = 0.0;
    /** Total sum of squares (about the grand mean). */
    double totalSumSquares = 0.0;
    /** Error sum of squares (0 without replication). */
    double errorSumSquares = 0.0;
    /** Error degrees of freedom. */
    unsigned errorDof = 0;

    /** Rows sorted by descending variation explained. */
    std::vector<AnovaRow> rowsBySignificance() const;

    /** Find a row by label; throws if absent. */
    const AnovaRow &row(const std::string &label) const;
};

/**
 * Analyze an unreplicated 2^k design.
 *
 * @param factor_names name of each of the k factors
 * @param responses 2^k responses in standard order (bit j of the index
 *        set means factor j at its high level)
 */
AnovaResult analyzeFactorial(std::span<const std::string> factor_names,
                             std::span<const double> responses);

/**
 * Analyze a replicated 2^k design.
 *
 * @param factor_names name of each of the k factors
 * @param replicated_responses outer index = treatment (standard
 *        order), inner vector = r >= 1 replicated observations; all
 *        treatments must have the same replication count
 */
AnovaResult
analyzeFactorialReplicated(std::span<const std::string> factor_names,
                           const std::vector<std::vector<double>>
                               &replicated_responses);

/** Render an ANOVA table as fixed-width text for reports. */
std::string formatAnovaTable(const AnovaResult &result);

} // namespace rigor::stats

#endif // RIGOR_STATS_ANOVA_HH
