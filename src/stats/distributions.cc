#include "stats/distributions.hh"

#include <cmath>
#include <stdexcept>

#include "stats/special_functions.hh"

namespace rigor::stats
{

namespace
{

/**
 * Generic monotone-CDF inversion by bisection over an expanding
 * bracket. All quantile functions below share this: they are not on
 * any hot path (a handful of calls per ANOVA table), so robustness
 * beats speed.
 */
template <typename Cdf>
double
invertCdf(const Cdf &cdf, double p, double lo, double hi)
{
    if (p <= 0.0 || p >= 1.0)
        throw std::invalid_argument("quantile: p must be in (0, 1)");

    // Expand the bracket until it encloses p.
    while (cdf(lo) > p)
        lo = lo >= 0.0 ? lo / 2.0 - 1.0 : lo * 2.0;
    while (cdf(hi) < p)
        hi = hi <= 0.0 ? hi / 2.0 + 1.0 : hi * 2.0;

    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (cdf(mid) < p)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-12 * (1.0 + std::abs(mid)))
            break;
    }
    return 0.5 * (lo + hi);
}

} // namespace

// ---------------------------------------------------------------------
// NormalDistribution
// ---------------------------------------------------------------------

double
NormalDistribution::pdf(double x) const
{
    return std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI);
}

double
NormalDistribution::cdf(double x) const
{
    return 0.5 * complementaryErrorFunction(-x / std::sqrt(2.0));
}

double
NormalDistribution::quantile(double p) const
{
    return invertCdf([this](double x) { return cdf(x); }, p, -10.0, 10.0);
}

// ---------------------------------------------------------------------
// StudentTDistribution
// ---------------------------------------------------------------------

StudentTDistribution::StudentTDistribution(double dof) : _dof(dof)
{
    if (dof <= 0.0)
        throw std::invalid_argument(
            "StudentTDistribution: dof must be positive");
}

double
StudentTDistribution::pdf(double x) const
{
    const double v = _dof;
    const double log_norm =
        logGamma((v + 1.0) / 2.0) - logGamma(v / 2.0) -
        0.5 * std::log(v * M_PI);
    return std::exp(log_norm -
                    (v + 1.0) / 2.0 * std::log1p(x * x / v));
}

double
StudentTDistribution::cdf(double x) const
{
    const double v = _dof;
    const double z = v / (v + x * x);
    const double tail = 0.5 * regularizedIncompleteBeta(v / 2.0, 0.5, z);
    return x > 0.0 ? 1.0 - tail : tail;
}

double
StudentTDistribution::quantile(double p) const
{
    return invertCdf([this](double x) { return cdf(x); }, p, -100.0, 100.0);
}

// ---------------------------------------------------------------------
// FDistribution
// ---------------------------------------------------------------------

FDistribution::FDistribution(double dof1, double dof2)
    : _dof1(dof1), _dof2(dof2)
{
    if (dof1 <= 0.0 || dof2 <= 0.0)
        throw std::invalid_argument(
            "FDistribution: degrees of freedom must be positive");
}

double
FDistribution::pdf(double x) const
{
    if (x < 0.0)
        return 0.0;
    if (x == 0.0)
        return _dof1 > 2.0 ? 0.0 : (_dof1 == 2.0 ? 1.0 : HUGE_VAL);
    const double d1 = _dof1;
    const double d2 = _dof2;
    const double log_pdf =
        (d1 / 2.0) * std::log(d1 / d2) +
        (d1 / 2.0 - 1.0) * std::log(x) -
        ((d1 + d2) / 2.0) * std::log1p(d1 * x / d2) -
        logBeta(d1 / 2.0, d2 / 2.0);
    return std::exp(log_pdf);
}

double
FDistribution::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    const double z = _dof1 * x / (_dof1 * x + _dof2);
    return regularizedIncompleteBeta(_dof1 / 2.0, _dof2 / 2.0, z);
}

double
FDistribution::quantile(double p) const
{
    return invertCdf([this](double x) { return cdf(x); }, p, 0.0, 100.0);
}

double
FDistribution::survival(double x) const
{
    return 1.0 - cdf(x);
}

// ---------------------------------------------------------------------
// ChiSquareDistribution
// ---------------------------------------------------------------------

ChiSquareDistribution::ChiSquareDistribution(double dof) : _dof(dof)
{
    if (dof <= 0.0)
        throw std::invalid_argument(
            "ChiSquareDistribution: dof must be positive");
}

double
ChiSquareDistribution::pdf(double x) const
{
    if (x < 0.0)
        return 0.0;
    if (x == 0.0)
        return _dof > 2.0 ? 0.0 : (_dof == 2.0 ? 0.5 : HUGE_VAL);
    const double k = _dof / 2.0;
    return std::exp((k - 1.0) * std::log(x) - x / 2.0 - k * std::log(2.0) -
                    logGamma(k));
}

double
ChiSquareDistribution::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return regularizedLowerIncompleteGamma(_dof / 2.0, x / 2.0);
}

double
ChiSquareDistribution::quantile(double p) const
{
    return invertCdf([this](double x) { return cdf(x); }, p, 0.0, 100.0);
}

double
ChiSquareDistribution::survival(double x) const
{
    return 1.0 - cdf(x);
}

// ---------------------------------------------------------------------
// Confidence intervals
// ---------------------------------------------------------------------

ConfidenceInterval
meanConfidenceInterval(double sample_mean, double sample_stddev, unsigned n,
                       double confidence)
{
    if (n < 2)
        throw std::invalid_argument(
            "meanConfidenceInterval: need at least two observations");
    if (confidence <= 0.0 || confidence >= 1.0)
        throw std::invalid_argument(
            "meanConfidenceInterval: confidence must be in (0, 1)");

    const StudentTDistribution t(static_cast<double>(n - 1));
    const double alpha = 1.0 - confidence;
    const double t_crit = t.quantile(1.0 - alpha / 2.0);
    const double half_width =
        t_crit * sample_stddev / std::sqrt(static_cast<double>(n));
    return {sample_mean - half_width, sample_mean + half_width};
}

} // namespace rigor::stats
