/**
 * @file
 * Probability distributions used for significance testing.
 *
 * The ANOVA module (stats/anova.hh) uses the F distribution to attach
 * p-values to factor effects, matching the workflow the paper
 * recommends in section 4.1 (step 3: a full-factorial sensitivity
 * analysis over the critical parameters "using the ANOVA technique").
 * Student's t and the normal distribution support confidence intervals
 * on simulation responses; the chi-square distribution supports
 * goodness-of-fit checks on the synthetic workload generators.
 */

#ifndef RIGOR_STATS_DISTRIBUTIONS_HH
#define RIGOR_STATS_DISTRIBUTIONS_HH

namespace rigor::stats
{

/** Standard normal distribution N(0, 1). */
class NormalDistribution
{
  public:
    /** Probability density at @p x. */
    double pdf(double x) const;
    /** Cumulative probability P(X <= x). */
    double cdf(double x) const;
    /** Inverse CDF for p in (0, 1). */
    double quantile(double p) const;
};

/** Student's t distribution with @p dof degrees of freedom. */
class StudentTDistribution
{
  public:
    explicit StudentTDistribution(double dof);

    double pdf(double x) const;
    double cdf(double x) const;
    double quantile(double p) const;

    double dof() const { return _dof; }

  private:
    double _dof;
};

/**
 * F distribution with @p dof1 numerator and @p dof2 denominator
 * degrees of freedom.
 */
class FDistribution
{
  public:
    FDistribution(double dof1, double dof2);

    double pdf(double x) const;
    double cdf(double x) const;
    double quantile(double p) const;

    /** Right-tail probability P(F > x), the ANOVA p-value. */
    double survival(double x) const;

    double dof1() const { return _dof1; }
    double dof2() const { return _dof2; }

  private:
    double _dof1;
    double _dof2;
};

/** Chi-square distribution with @p dof degrees of freedom. */
class ChiSquareDistribution
{
  public:
    explicit ChiSquareDistribution(double dof);

    double pdf(double x) const;
    double cdf(double x) const;
    double quantile(double p) const;
    double survival(double x) const;

    double dof() const { return _dof; }

  private:
    double _dof;
};

/**
 * Two-sided confidence interval on the mean of a sample, using
 * Student's t (the standard treatment in [Lilja00]).
 */
struct ConfidenceInterval
{
    double low = 0.0;
    double high = 0.0;
};

/**
 * Confidence interval for the population mean from a sample.
 *
 * @param sample_mean sample mean
 * @param sample_stddev sample standard deviation
 * @param n number of observations (must be >= 2)
 * @param confidence confidence level in (0, 1), e.g. 0.95
 */
ConfidenceInterval meanConfidenceInterval(double sample_mean,
                                          double sample_stddev,
                                          unsigned n,
                                          double confidence);

} // namespace rigor::stats

#endif // RIGOR_STATS_DISTRIBUTIONS_HH
