/**
 * @file
 * Yates' algorithm for 2^k full factorial designs.
 *
 * Given the 2^k treatment responses in standard (Yates) order, the
 * algorithm computes all main-effect and interaction contrasts in
 * k * 2^k additions — the classical workhorse behind the full
 * multifactorial ANOVA the paper lists as the "maximum level of
 * detail" design in Table 1.
 */

#ifndef RIGOR_STATS_YATES_HH
#define RIGOR_STATS_YATES_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rigor::stats
{

/**
 * Responses must be in standard order: treatment index i has factor j
 * at its high level iff bit j of i is set. So for k = 3 the order is
 * (1), a, b, ab, c, ac, bc, abc.
 *
 * @param responses 2^k mean responses in standard order
 * @return contrast totals, index i being the contrast for the factor
 *         combination encoded by the bits of i (index 0 = grand total)
 */
std::vector<double> yatesContrasts(std::span<const double> responses);

/**
 * Human-readable label for a Yates contrast index: bit j of @p mask set
 * means factor @p names[j] participates. Mask 0 yields "mean".
 */
std::string contrastLabel(std::uint32_t mask,
                          std::span<const std::string> names);

/** Number of factors participating in a contrast (popcount). */
unsigned contrastOrder(std::uint32_t mask);

} // namespace rigor::stats

#endif // RIGOR_STATS_YATES_HH
