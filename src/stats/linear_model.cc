#include "stats/linear_model.hh"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hh"

namespace rigor::stats
{

std::vector<double>
solveLinearSystem(std::vector<std::vector<double>> a,
                  std::vector<double> b)
{
    const std::size_t n = a.size();
    if (n == 0 || b.size() != n)
        throw std::invalid_argument(
            "solveLinearSystem: shape mismatch");
    for (const auto &row : a)
        if (row.size() != n)
            throw std::invalid_argument(
                "solveLinearSystem: matrix must be square");

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::abs(a[r][col]) > std::abs(a[pivot][col]))
                pivot = r;
        if (std::abs(a[pivot][col]) < 1e-10)
            throw std::invalid_argument(
                "solveLinearSystem: singular system");
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);

        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = a[r][col] / a[col][col];
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a[r][c] -= factor * a[col][c];
            b[r] -= factor * b[col];
        }
    }

    std::vector<double> x(n, 0.0);
    for (std::size_t r = n; r-- > 0;) {
        double acc = b[r];
        for (std::size_t c = r + 1; c < n; ++c)
            acc -= a[r][c] * x[c];
        x[r] = acc / a[r][r];
    }
    return x;
}

LinearFit
fitLinearModel(const std::vector<std::vector<double>> &predictors,
               std::span<const double> response)
{
    const std::size_t n = response.size();
    if (predictors.size() != n || n == 0)
        throw std::invalid_argument(
            "fitLinearModel: need one predictor row per observation");
    const std::size_t k = predictors.front().size();
    for (const auto &row : predictors)
        if (row.size() != k)
            throw std::invalid_argument(
                "fitLinearModel: ragged predictor matrix");
    const std::size_t p = k + 1; // plus intercept
    if (n < p)
        throw std::invalid_argument(
            "fitLinearModel: more parameters than observations");

    // Normal equations: (X^T X) beta = X^T y, with X = [1 | preds].
    const auto x_at = [&](std::size_t row, std::size_t col) {
        return col == 0 ? 1.0 : predictors[row][col - 1];
    };
    std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0.0));
    std::vector<double> xty(p, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < p; ++i) {
            xty[i] += x_at(r, i) * response[r];
            for (std::size_t j = i; j < p; ++j)
                xtx[i][j] += x_at(r, i) * x_at(r, j);
        }
    }
    for (std::size_t i = 0; i < p; ++i)
        for (std::size_t j = 0; j < i; ++j)
            xtx[i][j] = xtx[j][i];

    LinearFit fit;
    fit.coefficients = solveLinearSystem(std::move(xtx), std::move(xty));

    fit.fitted.resize(n);
    fit.residuals.resize(n);
    double rss = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        double yhat = 0.0;
        for (std::size_t i = 0; i < p; ++i)
            yhat += fit.coefficients[i] * x_at(r, i);
        fit.fitted[r] = yhat;
        fit.residuals[r] = response[r] - yhat;
        rss += fit.residuals[r] * fit.residuals[r];
    }
    fit.residualSumSquares = rss;

    const double ybar = mean(response);
    double tss = 0.0;
    for (double y : response)
        tss += (y - ybar) * (y - ybar);
    fit.rSquared = tss == 0.0 ? 1.0 : 1.0 - rss / tss;
    return fit;
}

} // namespace rigor::stats
