/**
 * @file
 * Deterministic, seeded bootstrap resampling.
 *
 * The rank-stability layer (methodology/rank_stability.hh) needs
 * confidence intervals on statistics of *replicated* simulation
 * campaigns — per-parameter Plackett-Burman ranks, sum-of-ranks, and
 * Table-10 distances — whose sampling distributions are not available
 * in closed form. The nonparametric bootstrap [Efron93] estimates
 * them by resampling the observed replicates with replacement.
 *
 * Everything here is deterministic by construction: resample indices
 * for iteration b are drawn from a private PRNG seeded with
 * mixSeed(seed, b), so results are bit-identical for a fixed seed
 * regardless of how many worker threads produced the replicates or
 * in what order iterations would be computed. That determinism is a
 * hard requirement — bootstrap output participates in campaign
 * manifests and golden-value regression tests.
 */

#ifndef RIGOR_STATS_BOOTSTRAP_HH
#define RIGOR_STATS_BOOTSTRAP_HH

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace rigor::stats
{

/**
 * Self-contained SplitMix64 PRNG for resampling draws. Deliberately
 * independent of the trace-layer generator: workload realizations and
 * bootstrap resamples must never share a stream, or changing one
 * would silently reseed the other.
 */
class BootstrapRng
{
  public:
    explicit BootstrapRng(std::uint64_t seed) : _state(seed) {}

    /** Next raw 64-bit value (SplitMix64). */
    std::uint64_t next();

    /** Uniform in [0, bound). @p bound must be non-zero. */
    std::uint64_t nextBelow(std::uint64_t bound);

  private:
    std::uint64_t _state;
};

/** Stable seed derivation: one independent stream per (seed, index). */
std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t index);

/** Interval-construction method. */
enum class BootstrapMethod
{
    /** Plain percentile interval of the bootstrap distribution. */
    Percentile,
    /**
     * Bias-corrected and accelerated [Efron93, ch. 14]: corrects the
     * percentile interval for median bias (z0) and for a statistic
     * whose variance changes with the parameter (acceleration a,
     * from a jackknife). Falls back to the percentile interval when
     * the bootstrap distribution is degenerate.
     */
    Bca,
};

/** Resampling and interval knobs. */
struct BootstrapOptions
{
    /** Bootstrap iterations (resamples). */
    std::uint64_t iterations = 2000;
    /** Seed of the deterministic resampling stream. */
    std::uint64_t seed = 0x5eedb007u;
    /** Two-sided confidence level in (0, 1). */
    double confidence = 0.95;
    BootstrapMethod method = BootstrapMethod::Bca;

    /** Throw std::invalid_argument when malformed. */
    void validate() const;
};

/** One bootstrapped statistic with its confidence interval. */
struct BootstrapInterval
{
    /** The statistic on the original sample. */
    double estimate = 0.0;
    double lower = 0.0;
    double upper = 0.0;

    double halfWidth() const { return (upper - lower) / 2.0; }
};

/** Statistic over a sample, e.g. the mean. */
using StatisticFn = std::function<double(std::span<const double>)>;

/**
 * Empirical quantile with linear interpolation (R type 7) of an
 * ascending-sorted sample. @p p is clamped to [0, 1].
 */
double quantileSorted(std::span<const double> sorted, double p);

/**
 * Fill @p out with @p out.size() indices drawn uniformly with
 * replacement from [0, n). The resample core shared by bootstrapCi
 * and the joint rank bootstrap.
 */
void resampleIndices(BootstrapRng &rng, std::size_t n,
                     std::span<std::size_t> out);

/**
 * Bootstrap confidence interval for @p statistic over @p sample.
 *
 * @param sample observed values (at least one; a single observation
 *        yields a degenerate zero-width interval)
 * @param statistic the statistic of interest (called on resamples
 *        of @p sample; must be pure)
 * @param options iterations, seed, confidence, method
 */
BootstrapInterval bootstrapCi(std::span<const double> sample,
                              const StatisticFn &statistic,
                              const BootstrapOptions &options);

/** bootstrapCi() with the mean as the statistic. */
BootstrapInterval bootstrapMeanCi(std::span<const double> sample,
                                  const BootstrapOptions &options);

/**
 * Replication policy of a campaign: how many independent workload
 * realizations (replicate seeds) back every conclusion, and how the
 * replicate spread is turned into reported uncertainty. Lives in the
 * stats layer so both the check layer (pre-flight enforcement) and
 * the exec layer (CampaignOptions) can share it.
 */
struct ReplicationOptions
{
    /**
     * Independent workload-generation replicates per benchmark.
     * 0 disables replication entirely (single-realization campaign,
     * the historical behavior); values >= 1 request a replicated
     * campaign with rank-stability analysis.
     */
    unsigned replicates = 0;
    /**
     * Pre-flight floor: a replicated campaign with fewer replicates
     * than this fails static analysis with campaign.under-replicated
     * (conclusions from one or two realizations cannot distinguish
     * workload noise from parameter effects).
     */
    unsigned minReplicates = 3;
    /** Bootstrap schedule applied to the replicate responses. */
    BootstrapOptions bootstrap;

    /** True when a replicated campaign was requested. */
    bool enabled() const { return replicates != 0; }
};

} // namespace rigor::stats

#endif // RIGOR_STATS_BOOTSTRAP_HH
