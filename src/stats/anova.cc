#include "stats/anova.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "stats/distributions.hh"
#include "stats/yates.hh"

namespace rigor::stats
{

namespace
{

/**
 * Core of both entry points: build the table from per-treatment means
 * plus (optionally) within-treatment error statistics.
 */
AnovaResult
buildResult(std::span<const std::string> factor_names,
            std::span<const double> treatment_means, unsigned replications,
            double error_ss, unsigned error_dof)
{
    const std::size_t n = treatment_means.size();
    const std::size_t expected = std::size_t{1} << factor_names.size();
    if (n != expected)
        throw std::invalid_argument(
            "analyzeFactorial: need exactly 2^k responses");
    if (factor_names.size() > 20)
        throw std::invalid_argument(
            "analyzeFactorial: more than 20 factors is intractable; "
            "screen with a Plackett-Burman design first");

    AnovaResult result;
    result.numFactors = static_cast<unsigned>(factor_names.size());
    result.replications = replications;
    result.errorSumSquares = error_ss;
    result.errorDof = error_dof;

    const std::vector<double> contrasts = yatesContrasts(treatment_means);
    result.grandMean = contrasts[0] / static_cast<double>(n);

    // SS for a contrast of treatment means with r replications each:
    // SS = r * contrast^2 / 2^k.
    const double r = static_cast<double>(replications);
    double model_ss = 0.0;
    result.rows.reserve(n - 1);
    for (std::size_t i = 1; i < n; ++i) {
        AnovaRow row;
        row.mask = static_cast<std::uint32_t>(i);
        row.label = contrastLabel(row.mask, factor_names);
        row.effect = contrasts[i] / static_cast<double>(n / 2);
        row.sumSquares =
            r * contrasts[i] * contrasts[i] / static_cast<double>(n);
        model_ss += row.sumSquares;
        result.rows.push_back(std::move(row));
    }

    result.totalSumSquares = model_ss + error_ss;
    if (result.totalSumSquares > 0.0) {
        for (AnovaRow &row : result.rows)
            row.variationExplained =
                row.sumSquares / result.totalSumSquares;
    }

    // F-tests need an error estimate, i.e. replication.
    if (error_dof > 0 && error_ss > 0.0) {
        const double error_ms = error_ss / static_cast<double>(error_dof);
        const FDistribution f_dist(1.0, static_cast<double>(error_dof));
        for (AnovaRow &row : result.rows) {
            row.fStatistic = row.sumSquares / error_ms;
            row.pValue = f_dist.survival(row.fStatistic);
        }
    }
    return result;
}

} // namespace

std::vector<AnovaRow>
AnovaResult::rowsBySignificance() const
{
    std::vector<AnovaRow> sorted = rows;
    std::sort(sorted.begin(), sorted.end(),
              [](const AnovaRow &a, const AnovaRow &b) {
                  return a.variationExplained > b.variationExplained;
              });
    return sorted;
}

const AnovaRow &
AnovaResult::row(const std::string &label) const
{
    for (const AnovaRow &r : rows)
        if (r.label == label)
            return r;
    throw std::invalid_argument("AnovaResult::row: no row named " + label);
}

AnovaResult
analyzeFactorial(std::span<const std::string> factor_names,
                 std::span<const double> responses)
{
    return buildResult(factor_names, responses, 1, 0.0, 0);
}

AnovaResult
analyzeFactorialReplicated(
    std::span<const std::string> factor_names,
    const std::vector<std::vector<double>> &replicated_responses)
{
    if (replicated_responses.empty())
        throw std::invalid_argument(
            "analyzeFactorialReplicated: no responses");
    const std::size_t reps = replicated_responses.front().size();
    if (reps == 0)
        throw std::invalid_argument(
            "analyzeFactorialReplicated: empty replication set");

    std::vector<double> means;
    means.reserve(replicated_responses.size());
    double error_ss = 0.0;
    for (const std::vector<double> &obs : replicated_responses) {
        if (obs.size() != reps)
            throw std::invalid_argument(
                "analyzeFactorialReplicated: unequal replication counts");
        double m = 0.0;
        for (double y : obs)
            m += y;
        m /= static_cast<double>(reps);
        means.push_back(m);
        for (double y : obs)
            error_ss += (y - m) * (y - m);
    }

    const unsigned error_dof = static_cast<unsigned>(
        replicated_responses.size() * (reps - 1));
    return buildResult(factor_names, means,
                       static_cast<unsigned>(reps), error_ss, error_dof);
}

std::string
formatAnovaTable(const AnovaResult &result)
{
    std::ostringstream os;
    os << std::left << std::setw(28) << "Term" << std::right
       << std::setw(14) << "Effect" << std::setw(16) << "SumSq"
       << std::setw(10) << "Var%";
    const bool have_f = result.errorDof > 0;
    if (have_f)
        os << std::setw(12) << "F" << std::setw(12) << "p";
    os << "\n";

    for (const AnovaRow &row : result.rowsBySignificance()) {
        os << std::left << std::setw(28) << row.label << std::right
           << std::setw(14) << std::fixed << std::setprecision(4)
           << row.effect << std::setw(16) << std::setprecision(2)
           << row.sumSquares << std::setw(9) << std::setprecision(2)
           << 100.0 * row.variationExplained << "%";
        if (have_f) {
            os << std::setw(12) << std::setprecision(2) << row.fStatistic
               << std::setw(12) << std::setprecision(4) << row.pValue;
        }
        os << "\n";
    }
    if (have_f) {
        os << std::left << std::setw(28) << "error" << std::right
           << std::setw(14) << "" << std::setw(16) << std::fixed
           << std::setprecision(2) << result.errorSumSquares << "\n";
    }
    return os.str();
}

} // namespace rigor::stats
