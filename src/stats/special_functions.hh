/**
 * @file
 * Special functions underlying the statistical distributions.
 *
 * Implemented from scratch (Lanczos log-gamma, Lentz continued
 * fractions for the incomplete beta, series/continued fraction for the
 * incomplete gamma) so the library carries no external numeric
 * dependencies. Accuracy targets are ~1e-10 relative error, far beyond
 * what significance testing of simulation results requires.
 */

#ifndef RIGOR_STATS_SPECIAL_FUNCTIONS_HH
#define RIGOR_STATS_SPECIAL_FUNCTIONS_HH

namespace rigor::stats
{

/** Natural log of the gamma function, valid for x > 0. */
double logGamma(double x);

/** Natural log of the beta function B(a, b), a > 0, b > 0. */
double logBeta(double a, double b);

/**
 * Regularized incomplete beta function I_x(a, b).
 *
 * @param a first shape parameter, a > 0
 * @param b second shape parameter, b > 0
 * @param x evaluation point in [0, 1]
 */
double regularizedIncompleteBeta(double a, double b, double x);

/**
 * Regularized lower incomplete gamma function P(a, x).
 *
 * @param a shape parameter, a > 0
 * @param x evaluation point, x >= 0
 */
double regularizedLowerIncompleteGamma(double a, double x);

/** Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x). */
double regularizedUpperIncompleteGamma(double a, double x);

/** Error function, computed through the incomplete gamma function. */
double errorFunction(double x);

/** Complementary error function. */
double complementaryErrorFunction(double x);

} // namespace rigor::stats

#endif // RIGOR_STATS_SPECIAL_FUNCTIONS_HH
