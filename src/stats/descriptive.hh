/**
 * @file
 * Descriptive statistics over sequences of doubles.
 *
 * These are the basic building blocks used throughout the library:
 * the ANOVA module needs means and sums of squares, the DoE module
 * needs effect magnitudes, and the report builders need summary
 * statistics of simulation responses.
 */

#ifndef RIGOR_STATS_DESCRIPTIVE_HH
#define RIGOR_STATS_DESCRIPTIVE_HH

#include <cstddef>
#include <span>
#include <vector>

namespace rigor::stats
{

/** Arithmetic mean. Returns 0 for an empty sequence. */
double mean(std::span<const double> xs);

/**
 * Sample variance with Bessel's correction (divides by n - 1).
 * Returns 0 when fewer than two observations are available.
 */
double variance(std::span<const double> xs);

/** Population variance (divides by n). */
double populationVariance(std::span<const double> xs);

/** Sample standard deviation (square root of variance()). */
double stddev(std::span<const double> xs);

/** Geometric mean. All inputs must be strictly positive. */
double geometricMean(std::span<const double> xs);

/** Harmonic mean. All inputs must be strictly positive. */
double harmonicMean(std::span<const double> xs);

/** Median; averages the two middle elements for even-length inputs. */
double median(std::span<const double> xs);

/** Smallest element. The sequence must be non-empty. */
double minimum(std::span<const double> xs);

/** Largest element. The sequence must be non-empty. */
double maximum(std::span<const double> xs);

/** Sum of all elements. */
double sum(std::span<const double> xs);

/** Sum of squares of all elements. */
double sumOfSquares(std::span<const double> xs);

/** Coefficient of variation: stddev / mean. Mean must be non-zero. */
double coefficientOfVariation(std::span<const double> xs);

/**
 * Full five-number-plus summary of a sample, convenient for reports.
 */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double median = 0.0;
    double max = 0.0;
};

/** Compute a Summary of the given sample. */
Summary summarize(std::span<const double> xs);

/**
 * Assign ranks (1 = smallest) to a sequence of values.
 *
 * Ties receive the average of the ranks they would occupy
 * ("midranks"), the convention required by the Spearman rank
 * correlation coefficient.
 *
 * @param xs values to rank
 * @return rank of each element, parallel to @p xs
 */
std::vector<double> ranks(std::span<const double> xs);

/**
 * Assign descending-significance ranks (1 = largest magnitude).
 *
 * This is the ranking the paper applies to Plackett-Burman effects:
 * the parameter with the largest |effect| gets rank 1. Ties receive
 * midranks.
 */
std::vector<double> significanceRanks(std::span<const double> effects);

} // namespace rigor::stats

#endif // RIGOR_STATS_DESCRIPTIVE_HH
