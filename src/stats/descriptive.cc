#include "stats/descriptive.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rigor::stats
{

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    return sum(xs) / static_cast<double>(xs.size());
}

double
variance(std::span<const double> xs)
{
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    const double m = mean(xs);
    double ss = 0.0;
    for (double x : xs) {
        const double d = x - m;
        ss += d * d;
    }
    return ss / static_cast<double>(n - 1);
}

double
populationVariance(std::span<const double> xs)
{
    const std::size_t n = xs.size();
    if (n == 0)
        return 0.0;
    const double m = mean(xs);
    double ss = 0.0;
    for (double x : xs) {
        const double d = x - m;
        ss += d * d;
    }
    return ss / static_cast<double>(n);
}

double
stddev(std::span<const double> xs)
{
    return std::sqrt(variance(xs));
}

double
geometricMean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            throw std::invalid_argument(
                "geometricMean: inputs must be positive");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
harmonicMean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double recip_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            throw std::invalid_argument(
                "harmonicMean: inputs must be positive");
        recip_sum += 1.0 / x;
    }
    return static_cast<double>(xs.size()) / recip_sum;
}

double
median(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    if (n % 2 == 1)
        return sorted[n / 2];
    return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

double
minimum(std::span<const double> xs)
{
    assert(!xs.empty());
    return *std::min_element(xs.begin(), xs.end());
}

double
maximum(std::span<const double> xs)
{
    assert(!xs.empty());
    return *std::max_element(xs.begin(), xs.end());
}

double
sum(std::span<const double> xs)
{
    // Kahan summation: the PB experiment sums over thousands of
    // simulation responses and we do not want the result to depend on
    // accumulation order.
    double s = 0.0;
    double c = 0.0;
    for (double x : xs) {
        const double y = x - c;
        const double t = s + y;
        c = (t - s) - y;
        s = t;
    }
    return s;
}

double
sumOfSquares(std::span<const double> xs)
{
    double s = 0.0;
    for (double x : xs)
        s += x * x;
    return s;
}

double
coefficientOfVariation(std::span<const double> xs)
{
    const double m = mean(xs);
    if (m == 0.0)
        throw std::invalid_argument(
            "coefficientOfVariation: mean must be non-zero");
    return stddev(xs) / m;
}

Summary
summarize(std::span<const double> xs)
{
    Summary s;
    s.count = xs.size();
    if (xs.empty())
        return s;
    s.mean = mean(xs);
    s.stddev = stddev(xs);
    s.min = minimum(xs);
    s.median = median(xs);
    s.max = maximum(xs);
    return s;
}

namespace
{

/**
 * Shared midrank implementation. @p ascending selects whether rank 1
 * is the smallest (true) or the largest (false) element.
 */
std::vector<double>
midranks(std::span<const double> xs, bool ascending)
{
    const std::size_t n = xs.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return ascending ? xs[a] < xs[b] : xs[a] > xs[b];
              });

    std::vector<double> result(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        // Find the extent of the tie group starting at sorted pos i.
        std::size_t j = i;
        while (j + 1 < n && xs[order[j + 1]] == xs[order[i]])
            ++j;
        // Average of 1-based ranks i+1 .. j+1.
        const double avg_rank =
            (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
        for (std::size_t k = i; k <= j; ++k)
            result[order[k]] = avg_rank;
        i = j + 1;
    }
    return result;
}

} // namespace

std::vector<double>
ranks(std::span<const double> xs)
{
    return midranks(xs, true);
}

std::vector<double>
significanceRanks(std::span<const double> effects)
{
    std::vector<double> magnitudes(effects.size());
    for (std::size_t i = 0; i < effects.size(); ++i)
        magnitudes[i] = std::abs(effects[i]);
    return midranks(magnitudes, false);
}

} // namespace rigor::stats
