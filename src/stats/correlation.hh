/**
 * @file
 * Correlation coefficients.
 *
 * Spearman rank correlation is the headline metric EXPERIMENTS.md uses
 * to compare our measured Table 9 / Table 12 parameter orderings
 * against the published orderings; Pearson and Kendall support
 * secondary analyses.
 */

#ifndef RIGOR_STATS_CORRELATION_HH
#define RIGOR_STATS_CORRELATION_HH

#include <span>

namespace rigor::stats
{

/**
 * Pearson product-moment correlation coefficient.
 *
 * Both sequences must have the same non-zero length and non-zero
 * variance.
 */
double pearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys);

/**
 * Spearman rank correlation coefficient. Ties are handled with
 * midranks, i.e. the coefficient is the Pearson correlation of the
 * rank vectors.
 */
double spearmanCorrelation(std::span<const double> xs,
                           std::span<const double> ys);

/**
 * Kendall's tau-b rank correlation coefficient (tie-corrected).
 */
double kendallTau(std::span<const double> xs, std::span<const double> ys);

} // namespace rigor::stats

#endif // RIGOR_STATS_CORRELATION_HH
