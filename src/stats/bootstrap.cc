#include "stats/bootstrap.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hh"
#include "stats/distributions.hh"

namespace rigor::stats
{

namespace
{

/** SplitMix64 output mix (Steele, Lea, Flood 2014). */
std::uint64_t
splitmix(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

std::uint64_t
BootstrapRng::next()
{
    return splitmix(_state);
}

std::uint64_t
BootstrapRng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        throw std::invalid_argument(
            "BootstrapRng::nextBelow: bound must be non-zero");
    // Rejection sampling kills the modulo bias; the loop terminates
    // almost immediately for the tiny bounds used here.
    const std::uint64_t limit = bound * ((~0ull) / bound);
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return draw % bound;
}

std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t index)
{
    std::uint64_t state = seed ^ (index * 0xff51afd7ed558ccdull);
    return splitmix(state);
}

void
BootstrapOptions::validate() const
{
    if (iterations == 0)
        throw std::invalid_argument(
            "BootstrapOptions: iterations must be non-zero");
    if (!(confidence > 0.0 && confidence < 1.0))
        throw std::invalid_argument(
            "BootstrapOptions: confidence must be in (0, 1)");
}

double
quantileSorted(std::span<const double> sorted, double p)
{
    if (sorted.empty())
        throw std::invalid_argument(
            "quantileSorted: empty sample");
    p = std::clamp(p, 0.0, 1.0);
    const double position =
        p * static_cast<double>(sorted.size() - 1);
    const std::size_t below = static_cast<std::size_t>(position);
    const double frac = position - static_cast<double>(below);
    if (below + 1 >= sorted.size())
        return sorted.back();
    return sorted[below] * (1.0 - frac) + sorted[below + 1] * frac;
}

void
resampleIndices(BootstrapRng &rng, std::size_t n,
                std::span<std::size_t> out)
{
    if (n == 0)
        throw std::invalid_argument(
            "resampleIndices: empty population");
    for (std::size_t &index : out)
        index = static_cast<std::size_t>(rng.nextBelow(n));
}

namespace
{

/**
 * BCa percentile positions (alpha1, alpha2) from the bootstrap
 * distribution and a jackknife over the original sample. Returns
 * false (caller falls back to the plain percentile interval) when
 * the correction is undefined: a degenerate bootstrap distribution
 * or a flat jackknife.
 */
bool
bcaAlphas(std::span<const double> sample, const StatisticFn &statistic,
          std::span<const double> boot_sorted, double estimate,
          double confidence, double &alpha1, double &alpha2)
{
    // Median-bias correction z0: the normal quantile of the fraction
    // of bootstrap replicates below the full-sample estimate (ties
    // count half, keeping z0 finite and symmetric on discrete
    // statistics such as ranks).
    std::size_t below = 0;
    std::size_t equal = 0;
    for (const double value : boot_sorted) {
        if (value < estimate)
            ++below;
        else if (value == estimate)
            ++equal;
    }
    const double n_boot = static_cast<double>(boot_sorted.size());
    const double fraction =
        (static_cast<double>(below) +
         0.5 * static_cast<double>(equal)) /
        n_boot;
    if (fraction <= 0.0 || fraction >= 1.0)
        return false;

    const NormalDistribution normal;
    const double z0 = normal.quantile(fraction);

    // Acceleration from the jackknife: skewness of the leave-one-out
    // statistics.
    const std::size_t n = sample.size();
    std::vector<double> jack(n, 0.0);
    std::vector<double> loo;
    loo.reserve(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
        loo.clear();
        for (std::size_t j = 0; j < n; ++j)
            if (j != i)
                loo.push_back(sample[j]);
        jack[i] = statistic(loo);
    }
    const double jack_mean = mean(jack);
    double sum_sq = 0.0;
    double sum_cu = 0.0;
    for (const double value : jack) {
        const double d = jack_mean - value;
        sum_sq += d * d;
        sum_cu += d * d * d;
    }
    const double accel =
        sum_sq > 0.0 ? sum_cu / (6.0 * std::pow(sum_sq, 1.5)) : 0.0;

    const double alpha = 1.0 - confidence;
    const double z_lo = normal.quantile(alpha / 2.0);
    const double z_hi = normal.quantile(1.0 - alpha / 2.0);
    const double denom_lo = 1.0 - accel * (z0 + z_lo);
    const double denom_hi = 1.0 - accel * (z0 + z_hi);
    if (denom_lo <= 0.0 || denom_hi <= 0.0)
        return false;
    alpha1 = normal.cdf(z0 + (z0 + z_lo) / denom_lo);
    alpha2 = normal.cdf(z0 + (z0 + z_hi) / denom_hi);
    return alpha1 < alpha2;
}

} // namespace

BootstrapInterval
bootstrapCi(std::span<const double> sample,
            const StatisticFn &statistic,
            const BootstrapOptions &options)
{
    options.validate();
    if (sample.empty())
        throw std::invalid_argument("bootstrapCi: empty sample");
    if (!statistic)
        throw std::invalid_argument("bootstrapCi: null statistic");

    BootstrapInterval interval;
    interval.estimate = statistic(sample);
    if (sample.size() == 1) {
        interval.lower = interval.upper = interval.estimate;
        return interval;
    }

    const std::size_t n = sample.size();
    std::vector<std::size_t> indices(n, 0);
    std::vector<double> resample(n, 0.0);
    std::vector<double> boot;
    boot.reserve(options.iterations);
    for (std::uint64_t b = 0; b < options.iterations; ++b) {
        BootstrapRng rng(mixSeed(options.seed, b));
        resampleIndices(rng, n, indices);
        for (std::size_t i = 0; i < n; ++i)
            resample[i] = sample[indices[i]];
        boot.push_back(statistic(resample));
    }
    std::sort(boot.begin(), boot.end());

    const double alpha = 1.0 - options.confidence;
    double alpha1 = alpha / 2.0;
    double alpha2 = 1.0 - alpha / 2.0;
    if (options.method == BootstrapMethod::Bca &&
        boot.front() != boot.back()) {
        double a1 = 0.0;
        double a2 = 0.0;
        if (bcaAlphas(sample, statistic, boot, interval.estimate,
                      options.confidence, a1, a2)) {
            alpha1 = a1;
            alpha2 = a2;
        }
    }
    interval.lower = quantileSorted(boot, alpha1);
    interval.upper = quantileSorted(boot, alpha2);
    return interval;
}

BootstrapInterval
bootstrapMeanCi(std::span<const double> sample,
                const BootstrapOptions &options)
{
    return bootstrapCi(
        sample, [](std::span<const double> xs) { return mean(xs); },
        options);
}

} // namespace rigor::stats
