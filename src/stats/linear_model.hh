/**
 * @file
 * Ordinary-least-squares linear models.
 *
 * Fitting y = b0 + sum_i b_i * x_i over a two-level design matrix is
 * the regression view of effect estimation: for an orthogonal design
 * the fitted coefficient of a factor equals half its normalized PB
 * effect, which makes this module an independent cross-check of the
 * DoE pipeline — and, unlike the contrast formulas, it also handles
 * non-orthogonal (e.g. one-at-a-time) designs and lets the
 * experimenter add interaction columns selectively.
 */

#ifndef RIGOR_STATS_LINEAR_MODEL_HH
#define RIGOR_STATS_LINEAR_MODEL_HH

#include <span>
#include <vector>

namespace rigor::stats
{

/** Result of an OLS fit. */
struct LinearFit
{
    /** Intercept followed by one coefficient per predictor column. */
    std::vector<double> coefficients;
    /** Fitted values, one per observation. */
    std::vector<double> fitted;
    /** Residuals y - fitted. */
    std::vector<double> residuals;
    /** Coefficient of determination. */
    double rSquared = 0.0;
    /** Residual sum of squares. */
    double residualSumSquares = 0.0;

    /** Intercept. */
    double intercept() const { return coefficients.at(0); }
    /** Coefficient of predictor @p j (0-based, excluding intercept). */
    double slope(std::size_t j) const { return coefficients.at(j + 1); }
};

/**
 * Fit y = b0 + X b by ordinary least squares.
 *
 * @param predictors row-major predictor matrix (n rows, k columns);
 *        an intercept column is added internally
 * @param response n observations
 * @throws std::invalid_argument on shape mismatch or a singular
 *         normal-equations system (collinear predictors)
 */
LinearFit fitLinearModel(
    const std::vector<std::vector<double>> &predictors,
    std::span<const double> response);

/**
 * Solve the square linear system A x = b by Gaussian elimination with
 * partial pivoting. Throws std::invalid_argument when A is singular
 * (pivot below 1e-10 of the largest row scale).
 */
std::vector<double> solveLinearSystem(
    std::vector<std::vector<double>> a, std::vector<double> b);

} // namespace rigor::stats

#endif // RIGOR_STATS_LINEAR_MODEL_HH
