#include "stats/correlation.hh"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hh"

namespace rigor::stats
{

double
pearsonCorrelation(std::span<const double> xs, std::span<const double> ys)
{
    if (xs.size() != ys.size())
        throw std::invalid_argument(
            "pearsonCorrelation: sequences must have equal length");
    if (xs.size() < 2)
        throw std::invalid_argument(
            "pearsonCorrelation: need at least two observations");

    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        throw std::invalid_argument(
            "pearsonCorrelation: inputs must have non-zero variance");
    return sxy / std::sqrt(sxx * syy);
}

double
spearmanCorrelation(std::span<const double> xs, std::span<const double> ys)
{
    const std::vector<double> rx = ranks(xs);
    const std::vector<double> ry = ranks(ys);
    return pearsonCorrelation(rx, ry);
}

double
kendallTau(std::span<const double> xs, std::span<const double> ys)
{
    if (xs.size() != ys.size())
        throw std::invalid_argument(
            "kendallTau: sequences must have equal length");
    const std::size_t n = xs.size();
    if (n < 2)
        throw std::invalid_argument(
            "kendallTau: need at least two observations");

    long long concordant = 0;
    long long discordant = 0;
    long long ties_x = 0;
    long long ties_y = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double dx = xs[i] - xs[j];
            const double dy = ys[i] - ys[j];
            if (dx == 0.0 && dy == 0.0) {
                // Tied in both: contributes to neither numerator nor
                // denominator corrections separately.
                ++ties_x;
                ++ties_y;
            } else if (dx == 0.0) {
                ++ties_x;
            } else if (dy == 0.0) {
                ++ties_y;
            } else if (dx * dy > 0.0) {
                ++concordant;
            } else {
                ++discordant;
            }
        }
    }

    const double n0 = static_cast<double>(n) * (n - 1) / 2.0;
    const double denom = std::sqrt((n0 - static_cast<double>(ties_x)) *
                                   (n0 - static_cast<double>(ties_y)));
    if (denom == 0.0)
        throw std::invalid_argument(
            "kendallTau: inputs must have non-zero variance");
    return static_cast<double>(concordant - discordant) / denom;
}

} // namespace rigor::stats
