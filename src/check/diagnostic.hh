/**
 * @file
 * Shared diagnostics core of the rigor-lint static analysis layer.
 *
 * Every analyzer (design matrix, configuration/parameter space,
 * workload profile) reports through the same vocabulary: a Diagnostic
 * carries a severity, a stable dotted rule id (e.g.
 * "design.orthogonality"), a human-readable message, and an optional
 * source context (file:line for linted files, an object label for
 * in-process checks). A DiagnosticSink collects them, counts
 * severities, and renders clang-style one-line reports, so a broken
 * experiment is rejected with *all* of its problems listed before a
 * single cycle is simulated.
 */

#ifndef RIGOR_CHECK_DIAGNOSTIC_HH
#define RIGOR_CHECK_DIAGNOSTIC_HH

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace rigor::check
{

/** Diagnostic severity, ordered least to most severe. */
enum class Severity
{
    /** Informational context attached to a preceding finding. */
    Note,
    /** Suspicious but not experiment-invalidating. */
    Warning,
    /** The experiment would produce statistically meaningless output. */
    Error,
};

/** Display name ("note" / "warning" / "error"). */
std::string toString(Severity severity);

/**
 * Where a finding points. All fields are optional; an in-process
 * check typically sets only @c object ("design row 17",
 * "workload 'gcc'"), while the file linter sets @c file and @c line.
 */
struct SourceContext
{
    /** Originating file, when linting a file on disk. */
    std::string file;
    /** 1-based line within @c file; 0 means no line information. */
    std::size_t line = 0;
    /** The checked object, e.g. "design column 3" or "workload 'art'". */
    std::string object;

    /** "file:line" / "file" / "object" prefix; empty when unset. */
    std::string toString() const;

    bool operator==(const SourceContext &) const = default;
};

/** One finding of one analyzer rule. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    /** Stable dotted id, e.g. "config.lsq-ratio"; rule_ids.hh lists all. */
    std::string ruleId;
    std::string message;
    SourceContext context;

    /** Clang-style rendering: "ctx: severity: message [rule.id]". */
    std::string toString() const;
};

/**
 * Ordered collector of diagnostics. Analyzers append; drivers decide
 * afterwards whether the batch passes (no errors) and how to render
 * the findings.
 */
class DiagnosticSink
{
  public:
    /** Append a fully-formed diagnostic. */
    void report(Diagnostic diagnostic);

    /** Convenience appenders. */
    void error(std::string rule_id, std::string message,
               SourceContext context = {});
    void warning(std::string rule_id, std::string message,
                 SourceContext context = {});
    void note(std::string rule_id, std::string message,
              SourceContext context = {});

    const std::vector<Diagnostic> &diagnostics() const
    {
        return _diagnostics;
    }

    std::size_t errorCount() const { return _errors; }
    std::size_t warningCount() const { return _warnings; }

    /** True when no error-severity diagnostic has been reported. */
    bool passed() const { return _errors == 0; }

    /** True when a diagnostic with the given rule id was reported. */
    bool hasRule(const std::string &rule_id) const;

    /** One rendered diagnostic per line (empty string when clean). */
    std::string toString() const;

    /** "3 errors, 1 warning" summary line. */
    std::string summary() const;

  private:
    std::vector<Diagnostic> _diagnostics;
    std::size_t _errors = 0;
    std::size_t _warnings = 0;
};

/**
 * Thrown by the mandatory experiment pre-flight when an analyzer
 * reports errors; carries the full diagnostic list so callers can
 * render or inspect individual rule ids.
 */
class PreflightError : public std::runtime_error
{
  public:
    PreflightError(const std::string &who, DiagnosticSink sink);

    const DiagnosticSink &sink() const { return _sink; }
    const std::vector<Diagnostic> &diagnostics() const
    {
        return _sink.diagnostics();
    }

  private:
    DiagnosticSink _sink;
};

} // namespace rigor::check

#endif // RIGOR_CHECK_DIAGNOSTIC_HH
