#include "check/campaign_check.hh"

#include <algorithm>
#include <map>
#include <set>

#include "check/rule_ids.hh"

namespace rigor::check
{

namespace
{

std::string
cellObject(const std::string &noun, const QuarantinedCell &cell)
{
    return "benchmark '" + cell.benchmark + "', " + noun + ' ' +
           std::to_string(cell.row);
}

SourceContext
objectContext(std::string object)
{
    SourceContext ctx;
    ctx.object = std::move(object);
    return ctx;
}

/**
 * Shared drop/abort arbitration once per-cell diagnostics are in the
 * sink: group quarantines by benchmark, then either error out
 * (Abort) or drop whole benchmarks and verify something survives.
 */
void
arbitrate(const std::vector<std::string> &benchmarks,
          std::size_t rowsPerBenchmark, const std::string &rowNoun,
          const std::vector<QuarantinedCell> &quarantined,
          DegradationMode mode, CampaignAssessment &out)
{
    std::map<std::string, std::size_t> failed_rows;
    for (const QuarantinedCell &cell : quarantined)
        ++failed_rows[cell.benchmark];

    for (const std::string &bench : benchmarks) {
        const auto it = failed_rows.find(bench);
        if (it == failed_rows.end())
            continue;
        const std::string detail =
            std::to_string(it->second) + " of " +
            std::to_string(rowsPerBenchmark) + ' ' + rowNoun +
            "s " + (it->second == 1 ? "is" : "are") + " quarantined";
        if (mode == DegradationMode::Abort) {
            out.sink.error(
                rules::kCampaignBenchmarkIncomplete,
                detail + " and degradation mode is abort; rerun "
                         "with --degrade=drop-benchmark or fix the "
                         "failure to obtain a rank table",
                objectContext("benchmark '" + bench + "'"));
        } else {
            out.sink.warning(
                rules::kCampaignBenchmarkDropped,
                detail + "; dropping the benchmark from the rank "
                         "aggregation (Table 9 sums cover fewer "
                         "benchmarks and are labeled accordingly)",
                objectContext("benchmark '" + bench + "'"));
            out.dropBenchmarks.push_back(bench);
        }
    }

    if (mode == DegradationMode::DropBenchmark &&
        !benchmarks.empty() &&
        out.dropBenchmarks.size() == benchmarks.size()) {
        out.sink.error(
            rules::kCampaignNoCompleteBenchmarks,
            "every benchmark has quarantined " + rowNoun +
                "s; no rank table can be aggregated");
    }
}

} // namespace

std::string
toString(DegradationMode mode)
{
    switch (mode) {
      case DegradationMode::Abort:
        return "abort";
      case DegradationMode::DropBenchmark:
        return "drop-benchmark";
    }
    return "?";
}

CampaignAssessment
assessCampaignValidity(const std::vector<std::string> &benchmarks,
                       std::size_t designRows, bool folded,
                       const std::vector<QuarantinedCell> &quarantined,
                       DegradationMode mode)
{
    CampaignAssessment out;
    if (quarantined.empty())
        return out;

    std::set<std::pair<std::string, std::size_t>> failed_cells;
    for (const QuarantinedCell &cell : quarantined)
        failed_cells.insert({cell.benchmark, cell.row});

    for (const QuarantinedCell &cell : quarantined) {
        out.sink.warning(
            rules::kCampaignCellQuarantined,
            "response cell failed terminally (" + cell.kind +
                ") after " + std::to_string(cell.attempts) +
                (cell.attempts == 1 ? " attempt: " : " attempts: ") +
                cell.message,
            objectContext(cellObject("design row", cell)));
        // In a foldover design rows r and r + R/2 are sign-flipped
        // mirrors; losing one of the pair collapses the main-effect /
        // interaction separation the foldover exists to provide.
        if (folded && designRows % 2 == 0 && designRows != 0) {
            const std::size_t half = designRows / 2;
            const std::size_t mirror = cell.row < half
                                           ? cell.row + half
                                           : cell.row - half;
            if (!failed_cells.count({cell.benchmark, mirror}))
                out.sink.note(
                    rules::kCampaignFoldoverPairBroken,
                    "its foldover mirror (design row " +
                        std::to_string(mirror) +
                        ") completed, but the pair's main-effect/"
                        "interaction separation is broken",
                    objectContext(cellObject("design row", cell)));
        }
    }

    arbitrate(benchmarks, designRows, "design row", quarantined, mode,
              out);
    return out;
}

CampaignAssessment
assessFactorialValidity(const std::vector<std::string> &workloads,
                        std::size_t cells,
                        const std::vector<QuarantinedCell> &quarantined,
                        DegradationMode mode)
{
    CampaignAssessment out;
    if (quarantined.empty())
        return out;

    for (const QuarantinedCell &cell : quarantined)
        out.sink.warning(
            rules::kCampaignCellQuarantined,
            "response cell failed terminally (" + cell.kind +
                ") after " + std::to_string(cell.attempts) +
                (cell.attempts == 1 ? " attempt: " : " attempts: ") +
                cell.message,
            objectContext(cellObject("factorial cell", cell)));

    arbitrate(workloads, cells, "factorial cell", quarantined, mode,
              out);
    return out;
}

void
checkRemotePlan(const RemotePlan &plan, DiagnosticSink &sink)
{
    if (!plan.enabled)
        return;
    const SourceContext context{{}, 0, "remote campaign plan"};
    if (plan.workers == 0)
        sink.error(rules::kCampaignNoWorkers,
                   "remote campaign expects 0 workers; every cell "
                   "would queue on the controller forever (set "
                   "--workers to the fleet size)",
                   context);
    if (plan.leaseMs <= plan.heartbeatMs)
        sink.error(
            rules::kCampaignLeaseShorterThanDeadline,
            "lease duration (" + std::to_string(plan.leaseMs) +
                " ms) does not exceed the heartbeat interval (" +
                std::to_string(plan.heartbeatMs) +
                " ms); every worker would lapse between beats and "
                "its cells would migrate spuriously",
            context);
    else if (plan.heartbeatMs * 2 >= plan.leaseMs)
        sink.error(
            rules::kCampaignHeartbeatTooCoarse,
            "heartbeat interval (" +
                std::to_string(plan.heartbeatMs) +
                " ms) is at or past half the lease duration (" +
                std::to_string(plan.leaseMs) +
                " ms); at most one beacon fits in a lease window, so "
                "one delayed packet lapses a healthy worker",
            context);
    const std::uint64_t deadline =
        std::max(plan.attemptDeadlineMs, plan.hardDeadlineMs);
    if (deadline > 0 && plan.leaseMs <= deadline)
        sink.error(
            rules::kCampaignLeaseShorterThanDeadline,
            "lease duration (" + std::to_string(plan.leaseMs) +
                " ms) does not exceed the configured attempt "
                "deadline (" +
                std::to_string(deadline) +
                " ms); a worker legitimately running an attempt to "
                "its deadline would be declared lapsed and the cell "
                "migrated spuriously",
            context);
}

namespace
{

std::string
campaignWhat(const std::string &who, const DiagnosticSink &sink)
{
    std::string what =
        who + ": campaign degraded below statistical validity (" +
        sink.summary() + ")\n" + sink.toString();
    if (!what.empty() && what.back() == '\n')
        what.pop_back();
    return what;
}

} // namespace

CampaignError::CampaignError(const std::string &who,
                             DiagnosticSink sink)
    : std::runtime_error(campaignWhat(who, sink)),
      _sink(std::move(sink))
{
}

} // namespace rigor::check
