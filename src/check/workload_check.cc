#include "check/workload_check.hh"

#include <string>
#include <unordered_set>

#include "check/rule_ids.hh"

namespace rigor::check
{

namespace
{

SourceContext
profileContext(const SourceContext &base,
               const trace::WorkloadProfile &profile)
{
    SourceContext ctx = base;
    const std::string label = "workload '" + profile.name + "'";
    ctx.object =
        ctx.object.empty() ? label : ctx.object + ": " + label;
    return ctx;
}

} // namespace

bool
checkWorkloadProfile(const trace::WorkloadProfile &profile,
                     DiagnosticSink &sink, const SourceContext &base)
{
    const std::size_t before = sink.errorCount();
    const SourceContext ctx = profileContext(base, profile);

    // ----- Instruction-mix probability mass -----
    const struct
    {
        const char *name;
        double value;
    } fractions[] = {
        {"fracLoad", profile.fracLoad},
        {"fracStore", profile.fracStore},
        {"fracIntMult", profile.fracIntMult},
        {"fracIntDiv", profile.fracIntDiv},
        {"fracFpAlu", profile.fracFpAlu},
        {"fracFpMult", profile.fracFpMult},
        {"fracFpDiv", profile.fracFpDiv},
        {"fracFpSqrt", profile.fracFpSqrt},
    };
    double mass = 0.0;
    bool fraction_bad = false;
    for (const auto &f : fractions) {
        if (f.value < 0.0 || f.value > 1.0) {
            sink.error(rules::kWorkloadMixMass,
                       std::string(f.name) + " = " +
                           std::to_string(f.value) +
                           " is outside [0, 1]",
                       ctx);
            fraction_bad = true;
        }
        mass += f.value;
    }
    if (!fraction_bad && mass > 1.0)
        sink.error(rules::kWorkloadMixMass,
                   "instruction-mix fractions sum to " +
                       std::to_string(mass) +
                       " > 1; no probability mass remains for the "
                       "integer ALU remainder class",
                   ctx);

    if (profile.fracPointerChase < 0.0 || profile.fracStrided < 0.0 ||
        profile.fracPointerChase + profile.fracStrided > 1.0)
        sink.error(rules::kWorkloadPatternMass,
                   "memory access-pattern fractions (pointer-chase " +
                       std::to_string(profile.fracPointerChase) +
                       " + strided " +
                       std::to_string(profile.fracStrided) +
                       ") exceed probability mass 1",
                   ctx);

    // ----- Per-class mix consistency -----
    const double fp_mass = profile.fracFpAlu + profile.fracFpMult +
                           profile.fracFpDiv + profile.fracFpSqrt;
    if (profile.isFloatingPoint && fp_mass <= 0.0)
        sink.error(rules::kWorkloadFpMix,
                   "profile is flagged floating-point but its FP "
                   "instruction classes all have zero mass; the FP "
                   "unit factors would be unestimable",
                   ctx);
    if (!profile.isFloatingPoint && fp_mass > 0.0)
        sink.warning(rules::kWorkloadFpMix,
                     "profile is flagged integer but carries FP "
                     "instruction mass " + std::to_string(fp_mass),
                     ctx);
    if (profile.fracLoad + profile.fracStore <= 0.0)
        sink.warning(rules::kWorkloadNoMemoryOps,
                     "profile has no loads or stores; the data-side "
                     "memory-hierarchy factors are unestimable",
                     ctx);

    // ----- Everything else validate() covers (footprints, control
    //       flow, value locality). Only consulted when the specific
    //       rules are quiet so one violation is not reported twice.
    if (sink.errorCount() == before) {
        try {
            profile.validate();
        } catch (const std::invalid_argument &e) {
            sink.error(rules::kWorkloadInvalid, e.what(), ctx);
        }
    }
    return sink.errorCount() == before;
}

bool
checkWorkloads(std::span<const trace::WorkloadProfile> profiles,
               DiagnosticSink &sink, const SourceContext &base)
{
    const std::size_t before = sink.errorCount();
    std::unordered_set<std::string> seen;
    for (const trace::WorkloadProfile &profile : profiles) {
        checkWorkloadProfile(profile, sink, base);
        if (!seen.insert(profile.name).second)
            sink.error(rules::kWorkloadDuplicateName,
                       "duplicate workload; the benchmark would be "
                       "double-weighted in the cross-suite rank "
                       "aggregation",
                       profileContext(base, profile));
    }
    return sink.errorCount() == before;
}

bool
checkRunLengths(std::uint64_t instructions,
                std::uint64_t warmup_instructions,
                const trace::WorkloadProfile &profile,
                DiagnosticSink &sink, const SourceContext &base)
{
    const std::size_t before = sink.errorCount();
    const SourceContext ctx = profileContext(base, profile);

    if (instructions == 0) {
        sink.error(rules::kRunNoInstructions,
                   "measured window is zero instructions", ctx);
        return false;
    }
    if (warmup_instructions > 10 * instructions)
        sink.warning(rules::kRunWarmupDominates,
                     "warm-up (" +
                         std::to_string(warmup_instructions) +
                         " instructions) exceeds 10x the measured "
                         "window (" + std::to_string(instructions) +
                         "); most simulation time measures nothing",
                     ctx);

    // A fixed-width ISA places roughly one instruction per 4 bytes;
    // a window shorter than one pass over the hot code can only see
    // cold-start behavior, whatever the warm-up did for the caches.
    const std::uint64_t hot_instrs = profile.hotCodeBytes / 4;
    if (instructions < hot_instrs)
        sink.warning(rules::kRunWindowBelowHotCode,
                     "measured window (" +
                         std::to_string(instructions) +
                         " instructions) cannot traverse the hot "
                         "code once (~" + std::to_string(hot_instrs) +
                         " instructions); I-side effects reflect "
                         "cold start",
                     ctx);
    return sink.errorCount() == before;
}

bool
checkSamplingPlan(const sample::SamplingOptions &sampling,
                  std::uint64_t instructions,
                  std::uint64_t warmup_instructions,
                  DiagnosticSink &sink, const SourceContext &base)
{
    if (!sampling.enabled)
        return true;
    const std::size_t before = sink.errorCount();
    SourceContext ctx = base;
    const std::string label = "sampling schedule";
    ctx.object =
        ctx.object.empty() ? label : ctx.object + ": " + label;

    try {
        sampling.validate();
    } catch (const std::invalid_argument &e) {
        sink.error(rules::kSampleScheduleInvalid, e.what(), ctx);
        return false;
    }

    // The sampled runner drives the *whole* stream (job warm-up plus
    // measured window) through the periodic schedule.
    const std::uint64_t stream = instructions + warmup_instructions;
    const std::uint64_t detail_per_period =
        sampling.warmupInstructions + sampling.unitInstructions;
    if (stream < detail_per_period) {
        sink.error(rules::kSampleNoUnits,
                   "stream (" + std::to_string(stream) +
                       " instructions) is shorter than one detailed "
                       "phase (" + std::to_string(detail_per_period) +
                       "); no unit CPI can be measured",
                   ctx);
        return false;
    }
    const std::uint64_t units =
        stream / sampling.intervalInstructions +
        (stream % sampling.intervalInstructions >= detail_per_period
             ? 1
             : 0);
    if (units < 30)
        sink.warning(rules::kSampleFewUnits,
                     "schedule yields ~" + std::to_string(units) +
                         " measured units (< 30); the CLT-based "
                         "confidence interval rests on a shaky "
                         "normality assumption",
                     ctx);
    return sink.errorCount() == before;
}

} // namespace rigor::check
