/**
 * @file
 * Static analysis of processor configurations and the PB parameter
 * space against the linked-parameter rules of the paper's Tables 6-8.
 *
 * The tables' "shaded" parameters are not free: LSQ entries are a
 * ratio of the ROB, unpipelined units issue at their latency, the
 * following-block memory latency is 2% of the first block, and the
 * D-TLB mirrors the I-TLB's page size and miss latency. A
 * configuration that silently breaks a link still simulates — it just
 * no longer measures the machine the design claims to vary, so the
 * effect attributed to a factor is partly another parameter's. These
 * checks reject such configurations, and audit every Factor's
 * low/high pair (level ordering, dummy inertness) before a run.
 */

#ifndef RIGOR_CHECK_CONFIG_CHECK_HH
#define RIGOR_CHECK_CONFIG_CHECK_HH

#include "check/diagnostic.hh"
#include "methodology/parameter_space.hh"
#include "sim/config.hh"

namespace rigor::check
{

/**
 * Check one configuration: core validity (power-of-two cache
 * geometry, non-zero resources) plus the Tables 6-8 linked-parameter
 * invariants (LSQ/ROB ratio in (0, 1], machine width 4, D-TLB
 * mirroring the I-TLB, L2 blocks covering L1 blocks, issue intervals
 * bounded by latencies). Returns true when this call reported no
 * error.
 */
bool checkProcessorConfig(const sim::ProcessorConfig &config,
                          DiagnosticSink &sink,
                          const SourceContext &base = {});

/**
 * Check one factor's low/high level pair: both levels must yield
 * valid configurations, a real factor's levels must differ with the
 * low level on the performance-adverse side ("low < high" in the
 * tables' resource ordering), and a dummy factor must be inert.
 * Returns true when this call reported no error.
 */
bool checkFactorLevelPair(methodology::Factor factor,
                          DiagnosticSink &sink,
                          const SourceContext &base = {});

/**
 * Audit the entire built-in parameter space: every factor's level
 * pair via checkFactorLevelPair(). Guards the compiled-in Tables 6-8
 * against regressions and is cheap enough to run per experiment.
 * Returns true when this call reported no error.
 */
bool checkParameterSpace(DiagnosticSink &sink,
                         const SourceContext &base = {});

} // namespace rigor::check

#endif // RIGOR_CHECK_CONFIG_CHECK_HH
