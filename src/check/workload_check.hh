/**
 * @file
 * Static analysis of workload profiles and run lengths.
 *
 * The PB ranking measures each workload's *relative* stress on
 * processor components, so a profile whose instruction-mix
 * probability mass is inconsistent, or whose measured window cannot
 * even traverse its own hot working set, produces ranks that reflect
 * the generator's arithmetic rather than the workload. These checks
 * reject such profiles before simulation, alongside warm-up vs
 * trace-length sanity.
 */

#ifndef RIGOR_CHECK_WORKLOAD_CHECK_HH
#define RIGOR_CHECK_WORKLOAD_CHECK_HH

#include <cstdint>
#include <span>

#include "check/diagnostic.hh"
#include "sample/sampling.hh"
#include "trace/workload_profile.hh"

namespace rigor::check
{

/**
 * Check one profile: probability mass of the instruction mix and
 * memory access patterns, per-class mix consistency with the
 * floating-point flag, and everything WorkloadProfile::validate()
 * covers. Returns true when this call reported no error.
 */
bool checkWorkloadProfile(const trace::WorkloadProfile &profile,
                          DiagnosticSink &sink,
                          const SourceContext &base = {});

/**
 * Check a whole suite: every profile, plus duplicate-name detection
 * (duplicate workloads silently double-weight one benchmark in the
 * cross-suite rank aggregation). Returns true when this call
 * reported no error.
 */
bool checkWorkloads(std::span<const trace::WorkloadProfile> profiles,
                    DiagnosticSink &sink,
                    const SourceContext &base = {});

/**
 * Trace-length vs warm-up sanity for one run recipe: non-zero
 * measured window, warm-up not drowning the measurement, and a
 * window long enough to traverse @p profile's hot code at least
 * once. Returns true when this call reported no error.
 */
bool checkRunLengths(std::uint64_t instructions,
                     std::uint64_t warmup_instructions,
                     const trace::WorkloadProfile &profile,
                     DiagnosticSink &sink,
                     const SourceContext &base = {});

/**
 * Sampled-simulation schedule sanity against one run recipe:
 * SamplingOptions::validate() violations, a stream too short for even
 * one detailed phase (error — every unit CPI would be undefined), and
 * fewer than ~30 measured units (warning — the CLT interval is
 * shaky). No-op when sampling is disabled. Returns true when this
 * call reported no error.
 */
bool checkSamplingPlan(const sample::SamplingOptions &sampling,
                       std::uint64_t instructions,
                       std::uint64_t warmup_instructions,
                       DiagnosticSink &sink,
                       const SourceContext &base = {});

} // namespace rigor::check

#endif // RIGOR_CHECK_WORKLOAD_CHECK_HH
