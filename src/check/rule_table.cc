#include "check/rule_table.hh"

#include <array>
#include <cstring>

#include "check/rule_ids.hh"

namespace rigor::check
{

namespace
{

using rules::kCampaignBenchmarkDropped;
using rules::kCampaignBenchmarkIncomplete;
using rules::kCampaignCellQuarantined;
using rules::kCampaignFoldoverPairBroken;
using rules::kCampaignNoCompleteBenchmarks;
using rules::kCampaignPairedDropMismatch;
using rules::kCampaignUnderReplicated;

constexpr std::array<RuleInfo, 55> kRules{{
    // ----- design_check -----
    {rules::kDesignEmpty, Severity::Error,
     "design matrix has rows and columns"},
    {rules::kDesignRagged, Severity::Error,
     "all design rows are equally long"},
    {rules::kDesignEntryNotUnit, Severity::Error,
     "every design entry is +1 or -1"},
    {rules::kDesignRunsNotMultipleOfFour, Severity::Error,
     "PB run count is divisible by 4"},
    {rules::kDesignTooManyFactors, Severity::Error,
     "at most runs - 1 factors (PB saturation)"},
    {rules::kDesignFactorCount, Severity::Error,
     "columns match the declared factor count"},
    {rules::kDesignColumnBalance, Severity::Error,
     "equal +1/-1 counts per column"},
    {rules::kDesignOrthogonality, Severity::Error,
     "zero dot product for every column pair"},
    {rules::kDesignDuplicateColumn, Severity::Error,
     "no identical or negated column pairs"},
    {rules::kDesignFoldoverComplement, Severity::Error,
     "row R/2+r is the sign-flip of row r"},
    {rules::kDesignFoldoverOddRuns, Severity::Error,
     "folded designs have even run counts"},
    // ----- config_check -----
    {rules::kConfigInvalid, Severity::Error,
     "ProcessorConfig::validate() fallback"},
    {rules::kConfigLsqRatio, Severity::Error,
     "LSQ/ROB ratio in (0, 1] (Table 6 shading)"},
    {rules::kConfigMachineWidth, Severity::Error,
     "decode/issue/commit width fixed at 4"},
    {rules::kConfigDtlbMirror, Severity::Error,
     "D-TLB page/miss latency mirrors the I-TLB (Table 8)"},
    {rules::kConfigCacheGeometry, Severity::Error,
     "power-of-two cache size/block/sets"},
    {rules::kConfigL2BlockCoversL1, Severity::Error,
     "L2 blocks at least L1-block sized"},
    {rules::kConfigThroughputExceedsLatency, Severity::Error,
     "pipelined issue interval does not exceed latency"},
    {rules::kSpaceLevelPairEqual, Severity::Error,
     "a factor's levels actually differ"},
    {rules::kSpaceLevelOrder, Severity::Error,
     "low level is the performance-adverse side"},
    {rules::kSpaceDummyNotInert, Severity::Error,
     "dummy factors leave the config unchanged"},
    // ----- workload_check -----
    {rules::kWorkloadInvalid, Severity::Error,
     "WorkloadProfile::validate() fallback"},
    {rules::kWorkloadMixMass, Severity::Error,
     "instruction-mix probability mass at most 1"},
    {rules::kWorkloadPatternMass, Severity::Error,
     "pointer-chase + strided mass at most 1"},
    {rules::kWorkloadFpMix, Severity::Error,
     "FP flag consistent with FP instruction mass"},
    {rules::kWorkloadNoMemoryOps, Severity::Warning,
     "loads/stores present for memory-hierarchy factors"},
    {rules::kWorkloadDuplicateName, Severity::Error,
     "unique workload names per experiment"},
    {rules::kRunNoInstructions, Severity::Error,
     "non-zero measured window"},
    {rules::kRunWarmupDominates, Severity::Warning,
     "warm-up at most 10x the measured window"},
    {rules::kRunWindowBelowHotCode, Severity::Warning,
     "measured window covers the hot code"},
    {rules::kSampleScheduleInvalid, Severity::Error,
     "sampling schedule internally consistent"},
    {rules::kSampleNoUnits, Severity::Error,
     "stream long enough for at least one sample unit"},
    {rules::kSampleFewUnits, Severity::Warning,
     "schedule yields at least ~30 units (CLT)"},
    // ----- campaign_check -----
    {kCampaignCellQuarantined, Severity::Warning,
     "a (benchmark, row) cell failed terminally"},
    {kCampaignFoldoverPairBroken, Severity::Note,
     "a quarantined row's foldover mirror survived"},
    {kCampaignBenchmarkDropped, Severity::Warning,
     "degradation dropped a benchmark whole"},
    {kCampaignBenchmarkIncomplete, Severity::Error,
     "abort mode refused an incomplete benchmark"},
    {kCampaignNoCompleteBenchmarks, Severity::Error,
     "every benchmark degraded; no rank table possible"},
    {kCampaignPairedDropMismatch, Severity::Warning,
     "enhancement legs dropped different benchmark sets"},
    {rules::kCampaignLeaseShorterThanDeadline, Severity::Error,
     "remote lease exceeds heartbeat and attempt deadlines"},
    {rules::kCampaignNoWorkers, Severity::Error,
     "remote campaign expects at least one worker"},
    {rules::kCampaignHeartbeatTooCoarse, Severity::Error,
     "remote heartbeat stays under half the lease"},
    // ----- stability_check -----
    {kCampaignUnderReplicated, Severity::Error,
     "replicated campaign meets the configured replicate floor"},
    {rules::kStatsRankCiOverlap, Severity::Warning,
     "adjacent top-K rank CIs do not overlap"},
    {rules::kStatsRankFlipInsideNoise, Severity::Error,
     "reported rank inversions resolve above the flip threshold"},
    {rules::kStatsCiComposeMissing, Severity::Error,
     "sampling CIs composed with replication CIs"},
    {rules::kStatsReportSyntax, Severity::Error,
     "stability report parses as --stability-out JSON"},
    // ----- csv_lint / spec_lint -----
    {rules::kCsvBadCell, Severity::Error,
     "CSV level cells parse as integers"},
    {rules::kCsvRaggedRow, Severity::Error, "CSV rows equally wide"},
    {rules::kCsvNoRows, Severity::Error, "CSV contains design rows"},
    {rules::kSpecUnknownKey, Severity::Error, "spec keys are known"},
    {rules::kSpecBadValue, Severity::Error,
     "spec values parse for their key's type"},
    {rules::kSpecSyntax, Severity::Error,
     "spec lines are 'key = value'"},
    {rules::kSpecUnknownWorkload, Severity::Error,
     "'workload =' names a built-in profile"},
    {rules::kLintUnreadableFile, Severity::Error,
     "linted files can be opened and read"},
}};

} // namespace

std::span<const RuleInfo>
ruleTable()
{
    return kRules;
}

const RuleInfo *
findRule(const char *id)
{
    for (const RuleInfo &rule : kRules)
        if (std::strcmp(rule.id, id) == 0)
            return &rule;
    return nullptr;
}

} // namespace rigor::check
