#include "check/config_check.hh"

#include <optional>
#include <string>

#include "check/rule_ids.hh"

namespace rigor::check
{

namespace
{

using methodology::Factor;
using sim::CacheGeometry;
using sim::ProcessorConfig;

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

SourceContext
labeled(const SourceContext &base, const std::string &what)
{
    SourceContext ctx = base;
    if (ctx.object.empty())
        ctx.object = what;
    else
        ctx.object += ": " + what;
    return ctx;
}

void
checkCacheGeometry(const char *name, const CacheGeometry &g,
                   DiagnosticSink &sink, const SourceContext &base)
{
    const SourceContext ctx = labeled(base, name);
    if (g.sizeBytes == 0 || g.blockBytes == 0) {
        sink.error(rules::kConfigCacheGeometry,
                   "cache size and block size must be non-zero", ctx);
        return;
    }
    if (!isPow2(g.sizeBytes))
        sink.error(rules::kConfigCacheGeometry,
                   "size " + std::to_string(g.sizeBytes) +
                       " is not a power of two",
                   ctx);
    if (!isPow2(g.blockBytes))
        sink.error(rules::kConfigCacheGeometry,
                   "block size " + std::to_string(g.blockBytes) +
                       " is not a power of two",
                   ctx);
    if (g.blockBytes > g.sizeBytes) {
        sink.error(rules::kConfigCacheGeometry,
                   "block size exceeds the cache size", ctx);
        return;
    }
    if (isPow2(g.sizeBytes) && isPow2(g.blockBytes)) {
        const std::uint32_t ways = g.effectiveAssoc();
        if (ways == 0 || g.numBlocks() % ways != 0 ||
            !isPow2(g.numSets()))
            sink.error(rules::kConfigCacheGeometry,
                       "associativity " + std::to_string(g.assoc) +
                           " does not yield a power-of-two set count",
                       ctx);
    }
}

/**
 * The quantity a factor varies, oriented so that a larger value is
 * the table's "high" (performance-friendly) side: resource counts
 * and capacities count up, latencies count down, fully-associative
 * (assoc 0) maps to the structure's entry count. Dummies have no
 * metric.
 */
std::optional<double>
factorMetric(const ProcessorConfig &c, Factor f)
{
    const auto assocMetric = [](std::uint32_t assoc,
                                std::uint32_t entries) {
        return assoc == 0 ? static_cast<double>(entries)
                          : static_cast<double>(assoc);
    };
    switch (f) {
      case Factor::IfqEntries:
        return c.ifqEntries;
      case Factor::BpredType:
        // Enum order is weakest to strongest; Perfect is the "high".
        return static_cast<double>(c.bpred);
      case Factor::BpredPenalty:
        return -static_cast<double>(c.bpredPenalty);
      case Factor::RasEntries:
        return c.rasEntries;
      case Factor::BtbEntries:
        return c.btbEntries;
      case Factor::BtbAssoc:
        return assocMetric(c.btbAssoc, c.btbEntries);
      case Factor::SpecBranchUpdate:
        // InDecode (earlier history update) is the "high" level.
        return static_cast<double>(c.specBranchUpdate);
      case Factor::RobEntries:
        return c.robEntries;
      case Factor::LsqRatio:
        return c.lsqRatio;
      case Factor::MemPorts:
        return c.memPorts;
      case Factor::IntAlus:
        return c.intAlus;
      case Factor::IntAluLatency:
        return -static_cast<double>(c.intAluLatency);
      case Factor::FpAlus:
        return c.fpAlus;
      case Factor::FpAluLatency:
        return -static_cast<double>(c.fpAluLatency);
      case Factor::IntMultDivUnits:
        return c.intMultDivUnits;
      case Factor::IntMultLatency:
        return -static_cast<double>(c.intMultLatency);
      case Factor::IntDivLatency:
        return -static_cast<double>(c.intDivLatency);
      case Factor::FpMultDivUnits:
        return c.fpMultDivUnits;
      case Factor::FpMultLatency:
        return -static_cast<double>(c.fpMultLatency);
      case Factor::FpDivLatency:
        return -static_cast<double>(c.fpDivLatency);
      case Factor::FpSqrtLatency:
        return -static_cast<double>(c.fpSqrtLatency);
      case Factor::L1iSize:
        return c.l1i.sizeBytes;
      case Factor::L1iAssoc:
        return assocMetric(c.l1i.assoc, c.l1i.numBlocks());
      case Factor::L1iBlockSize:
        return c.l1i.blockBytes;
      case Factor::L1iLatency:
        return -static_cast<double>(c.l1i.latency);
      case Factor::L1dSize:
        return c.l1d.sizeBytes;
      case Factor::L1dAssoc:
        return assocMetric(c.l1d.assoc, c.l1d.numBlocks());
      case Factor::L1dBlockSize:
        return c.l1d.blockBytes;
      case Factor::L1dLatency:
        return -static_cast<double>(c.l1d.latency);
      case Factor::L2Size:
        return c.l2.sizeBytes;
      case Factor::L2Assoc:
        return assocMetric(c.l2.assoc, c.l2.numBlocks());
      case Factor::L2BlockSize:
        return c.l2.blockBytes;
      case Factor::L2Latency:
        return -static_cast<double>(c.l2.latency);
      case Factor::MemLatencyFirst:
        return -static_cast<double>(c.memLatencyFirst);
      case Factor::MemBandwidth:
        return c.memBandwidthBytes;
      case Factor::ItlbSize:
        return c.itlb.entries;
      case Factor::ItlbPageSize:
        return static_cast<double>(c.itlb.pageBytes);
      case Factor::ItlbAssoc:
        return assocMetric(c.itlb.assoc, c.itlb.entries);
      case Factor::ItlbLatency:
        return -static_cast<double>(c.itlb.missLatency);
      case Factor::DtlbSize:
        return c.dtlb.entries;
      case Factor::DtlbAssoc:
        return assocMetric(c.dtlb.assoc, c.dtlb.entries);
      case Factor::DummyFactor1:
      case Factor::DummyFactor2:
        return std::nullopt;
    }
    return std::nullopt;
}

} // namespace

bool
checkProcessorConfig(const ProcessorConfig &config,
                     DiagnosticSink &sink, const SourceContext &base)
{
    const std::size_t before = sink.errorCount();

    // ----- Table 6 links -----
    if (config.lsqRatio <= 0.0 || config.lsqRatio > 1.0)
        sink.error(rules::kConfigLsqRatio,
                   "LSQ/ROB ratio " + std::to_string(config.lsqRatio) +
                       " is outside (0, 1]; Table 6 links LSQ "
                       "entries to {0.25, 1.0} x ROB",
                   base);
    if (config.machineWidth != 4)
        sink.error(rules::kConfigMachineWidth,
                   "machine width " +
                       std::to_string(config.machineWidth) +
                       " differs from the paper's fixed "
                       "decode/issue/commit width of 4",
                   base);

    // ----- Table 7 links: issue interval bounded by latency -----
    const struct
    {
        const char *name;
        std::uint32_t throughput;
        std::uint32_t latency;
    } units[] = {
        {"int ALU", config.intAluThroughput, config.intAluLatency},
        {"FP ALU", config.fpAluThroughput, config.fpAluLatency},
        {"int multiplier", config.intMultThroughput,
         config.intMultLatency},
    };
    for (const auto &unit : units)
        if (unit.throughput > unit.latency)
            sink.error(rules::kConfigThroughputExceedsLatency,
                       std::string(unit.name) + " issue interval " +
                           std::to_string(unit.throughput) +
                           " exceeds its latency " +
                           std::to_string(unit.latency) +
                           "; unpipelined units issue at their "
                           "latency, pipelined ones faster",
                       base);

    // ----- Table 8 links -----
    checkCacheGeometry("l1i", config.l1i, sink, base);
    checkCacheGeometry("l1d", config.l1d, sink, base);
    checkCacheGeometry("l2", config.l2, sink, base);
    if (config.l2.blockBytes < config.l1i.blockBytes ||
        config.l2.blockBytes < config.l1d.blockBytes)
        sink.error(rules::kConfigL2BlockCoversL1,
                   "L2 block size " +
                       std::to_string(config.l2.blockBytes) +
                       " is smaller than an L1 block; refills would "
                       "not cover a line",
                   base);
    if (config.dtlb.pageBytes != config.itlb.pageBytes ||
        config.dtlb.missLatency != config.itlb.missLatency)
        sink.error(rules::kConfigDtlbMirror,
                   "D-TLB page size/miss latency (" +
                       std::to_string(config.dtlb.pageBytes) + "/" +
                       std::to_string(config.dtlb.missLatency) +
                       ") do not mirror the I-TLB (" +
                       std::to_string(config.itlb.pageBytes) + "/" +
                       std::to_string(config.itlb.missLatency) +
                       "); Table 8 links them",
                   base);

    // ----- Everything else ProcessorConfig::validate() covers -----
    // Only consulted when the specific rules above are quiet, so a
    // violation is not reported twice under two ids.
    if (sink.errorCount() == before) {
        try {
            config.validate();
        } catch (const std::invalid_argument &e) {
            sink.error(rules::kConfigInvalid, e.what(), base);
        }
    }
    return sink.errorCount() == before;
}

bool
checkFactorLevelPair(Factor factor, DiagnosticSink &sink,
                     const SourceContext &base)
{
    const std::size_t before = sink.errorCount();
    const std::string &name = methodology::factorName(factor);
    const SourceContext ctx = labeled(base, "factor '" + name + "'");

    const ProcessorConfig defaults;
    ProcessorConfig low = defaults;
    ProcessorConfig high = defaults;
    methodology::applyFactorLevel(low, factor, doe::Level::Low);
    methodology::applyFactorLevel(high, factor, doe::Level::High);
    methodology::finalizeLinkedParameters(low);
    methodology::finalizeLinkedParameters(high);

    const bool is_dummy = factor == Factor::DummyFactor1 ||
                          factor == Factor::DummyFactor2;
    if (is_dummy) {
        ProcessorConfig inert = defaults;
        methodology::finalizeLinkedParameters(inert);
        if (!(low == inert) || !(high == inert))
            sink.error(rules::kSpaceDummyNotInert,
                       "dummy factor changes the configuration; its "
                       "apparent effect would no longer estimate the "
                       "noise floor",
                       ctx);
        return sink.errorCount() == before;
    }

    if (low == high)
        sink.error(rules::kSpaceLevelPairEqual,
                   "low and high levels produce identical "
                   "configurations; the factor's effect is "
                   "structurally zero",
                   ctx);

    const std::optional<double> low_metric = factorMetric(low, factor);
    const std::optional<double> high_metric =
        factorMetric(high, factor);
    if (low_metric && high_metric && !(*low_metric < *high_metric))
        sink.error(rules::kSpaceLevelOrder,
                   "low level is not the performance-adverse side "
                   "(low metric " + std::to_string(*low_metric) +
                       " vs high " + std::to_string(*high_metric) +
                       "); inverted levels flip the sign of the "
                       "factor's effect",
                   ctx);

    checkProcessorConfig(low, sink, labeled(ctx, "low level"));
    checkProcessorConfig(high, sink, labeled(ctx, "high level"));
    return sink.errorCount() == before;
}

bool
checkParameterSpace(DiagnosticSink &sink, const SourceContext &base)
{
    const std::size_t before = sink.errorCount();
    for (unsigned f = 0; f < methodology::numFactors; ++f)
        checkFactorLevelPair(static_cast<Factor>(f), sink, base);
    return sink.errorCount() == before;
}

} // namespace rigor::check
