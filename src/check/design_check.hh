/**
 * @file
 * Static analysis of two-level experimental design matrices.
 *
 * The Plackett-Burman effect estimates are only meaningful when the
 * design is a balanced orthogonal ±1 matrix, and the paper's
 * de-aliasing argument additionally requires the second half of the
 * folded design to be the exact sign-flipped complement of the first
 * (Table 3). A silently malformed matrix still produces numbers —
 * just statistically meaningless ones — so these checks run before
 * any simulation and report *every* violated property, not only the
 * first.
 */

#ifndef RIGOR_CHECK_DESIGN_CHECK_HH
#define RIGOR_CHECK_DESIGN_CHECK_HH

#include <vector>

#include "check/diagnostic.hh"
#include "doe/design_matrix.hh"

namespace rigor::check
{

/** What checkDesignMatrix() should demand of the matrix. */
struct DesignCheckOptions
{
    /**
     * Expected factor (column) count; 0 skips the check. The PB
     * experiment passes 43 so a truncated or padded matrix cannot
     * silently misassign factor columns.
     */
    std::size_t expectedFactors = 0;
    /**
     * Require the exact foldover layout: an even number of runs with
     * row r + R/2 the sign-flip of row r for every r in the first
     * half.
     */
    bool requireFoldover = false;
    /**
     * Require Plackett-Burman shape: run count a multiple of four
     * (of the *base* design when requireFoldover is set) and at most
     * runs - 1 factors.
     */
    bool requirePlackettBurman = true;
};

/**
 * Check a raw sign matrix (e.g. parsed from CSV) for the structural
 * properties a DesignMatrix cannot even represent: non-emptiness,
 * rectangular rows, and ±1-only entries. Returns true when the matrix
 * is clean enough to construct a DesignMatrix from.
 *
 * @param base file/object context copied into every diagnostic; when
 *        base.line is non-zero it is used as the first row's line and
 *        advanced per row.
 */
bool checkSignMatrix(const std::vector<std::vector<int>> &signs,
                     DiagnosticSink &sink,
                     const SourceContext &base = {});

/**
 * Check the statistical properties of a constructed design matrix:
 * column balance, pairwise orthogonality, duplicate (perfectly
 * aliased) columns, PB shape, and — when requested — the exact
 * foldover complement. Returns true when this call reported no error.
 */
bool checkDesignMatrix(const doe::DesignMatrix &design,
                       const DesignCheckOptions &options,
                       DiagnosticSink &sink,
                       const SourceContext &base = {});

} // namespace rigor::check

#endif // RIGOR_CHECK_DESIGN_CHECK_HH
