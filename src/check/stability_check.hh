/**
 * @file
 * Rank-stability analysis rules (campaign.* / stats.*).
 *
 * The rank-stability subsystem (methodology/rank_stability.hh) runs a
 * replicated PB campaign and bootstraps confidence intervals over the
 * per-parameter rank positions. This analyzer turns those intervals
 * into pre-flight enforcement:
 *
 *  - campaign.under-replicated (error): a replicated campaign was
 *    requested with fewer workload-generation replicates than the
 *    configured floor — conclusions from one or two realizations
 *    cannot separate workload noise from parameter effects.
 *  - stats.rank-ci-overlap (warning): two adjacent top-K factors have
 *    overlapping rank CIs, so their reported order is unresolved.
 *  - stats.rank-flip-inside-noise (error): a reported ordering of two
 *    top-K factors flips in more than the threshold fraction of
 *    bootstrap iterations — the published inversion is inside noise.
 *  - stats.ci-compose-missing (error): the campaign used sampled
 *    simulation (PR 6) but the per-run CPI sampling CIs were not
 *    root-sum-square-composed with the replication CIs, so the
 *    reported uncertainty understates the truth.
 *
 * checkReplicationPlan() runs inside the mandatory pre-flight before
 * any cycle is simulated; checkRankStability() runs on the finished
 * bootstrap findings; lintStabilityReport() re-runs the same analysis
 * standalone on a --stability-out JSON report from disk, so
 * tools/rigor_lint can audit a stability report after the fact.
 */

#ifndef RIGOR_CHECK_STABILITY_CHECK_HH
#define RIGOR_CHECK_STABILITY_CHECK_HH

#include <string>
#include <string_view>
#include <vector>

#include "check/diagnostic.hh"
#include "stats/bootstrap.hh"

namespace rigor::check
{

/** Thresholds of the rank-stability rules. */
struct StabilityCheckOptions
{
    /** How many leading (most influential) factors the rules cover. */
    unsigned topFactors = 10;
    /**
     * stats.rank-flip-inside-noise fires when the bootstrap
     * probability of two top-K factors swapping order exceeds this.
     * 0.5 would mean a coin flip; the default leaves a margin.
     */
    double flipThreshold = 0.4;
};

/**
 * Bootstrap findings in the neutral shape this analyzer consumes.
 * The methodology layer converts its RankStabilityReport into this;
 * lintStabilityReport() parses a report file into it. Factors are in
 * reported (point-estimate) rank order, most influential first, and
 * all vectors/matrices are indexed in that order.
 */
struct RankStabilityFindings
{
    /** Factor names, best reported rank first. */
    std::vector<std::string> factorNames;
    /** Bootstrap CI bounds on each factor's aggregate rank position. */
    std::vector<double> rankLower;
    std::vector<double> rankUpper;
    /**
     * flipProbability[i][j] (i < j): fraction of bootstrap iterations
     * in which factor i ranked *worse* than factor j — i.e. the
     * reported order inverted. Square, same order as factorNames;
     * may cover only the leading top-K factors.
     */
    std::vector<std::vector<double>> flipProbability;
    /** Workload-generation replicates behind the intervals. */
    unsigned replicates = 0;
    /** True when the campaign used sampled simulation. */
    bool sampled = false;
    /** True when sampling CIs were RSS-composed with replication. */
    bool samplingCiComposed = true;
};

/**
 * Pre-flight leg: reject an under-replicated campaign
 * (campaign.under-replicated) before any simulation runs. A disabled
 * replication plan (replicates == 0) is exempt — single-realization
 * campaigns are the documented historical behavior.
 */
void checkReplicationPlan(const stats::ReplicationOptions &replication,
                          DiagnosticSink &sink);

/**
 * Post-bootstrap leg: audit the finished findings for unresolved
 * rank orderings (stats.rank-ci-overlap), inversions inside noise
 * (stats.rank-flip-inside-noise), and missing CI composition
 * (stats.ci-compose-missing).
 */
void checkRankStability(const RankStabilityFindings &findings,
                        const StabilityCheckOptions &options,
                        DiagnosticSink &sink);

/**
 * Standalone CLI leg: parse @p text (the JSON a campaign writes via
 * --stability-out) and run checkRankStability() plus the replicate
 * floor on it. Malformed JSON or a structurally wrong report yields
 * stats.report-syntax. @p path labels diagnostics.
 *
 * @param min_replicates floor for campaign.under-replicated; the
 *        report's own replicate count is checked against it.
 */
void lintStabilityReport(std::string_view text, const std::string &path,
                         const StabilityCheckOptions &options,
                         unsigned min_replicates, DiagnosticSink &sink);

} // namespace rigor::check

#endif // RIGOR_CHECK_STABILITY_CHECK_HH
