/**
 * @file
 * The stable rule-id vocabulary of the rigor-lint analyzers.
 *
 * Rule ids are dotted, namespaced by analyzer, and never recycled:
 * tests, CI greps, and suppression lists key on them. Keep this file
 * in sync with the rule table in EXPERIMENTS.md.
 */

#ifndef RIGOR_CHECK_RULE_IDS_HH
#define RIGOR_CHECK_RULE_IDS_HH

namespace rigor::check::rules
{

// ----- Design-matrix analysis (design_check) -----

/** Matrix has no rows or no columns. */
inline constexpr const char *kDesignEmpty = "design.empty";
/** Rows differ in length. */
inline constexpr const char *kDesignRagged = "design.ragged-rows";
/** An entry is not +1 or -1. */
inline constexpr const char *kDesignEntryNotUnit =
    "design.entry-not-unit";
/** Run count is not a multiple of four (PB requirement). */
inline constexpr const char *kDesignRunsNotMultipleOfFour =
    "design.runs-multiple-of-four";
/** More factors than a PB design of this run count supports. */
inline constexpr const char *kDesignTooManyFactors =
    "design.factor-capacity";
/** Column count differs from the declared factor count. */
inline constexpr const char *kDesignFactorCount = "design.factor-count";
/** A column has unequal +1/-1 counts. */
inline constexpr const char *kDesignColumnBalance =
    "design.column-balance";
/** Two columns have a non-zero sign dot product. */
inline constexpr const char *kDesignOrthogonality =
    "design.orthogonality";
/** Two columns are identical (perfectly aliased factors). */
inline constexpr const char *kDesignDuplicateColumn =
    "design.duplicate-column";
/** A row in the second half is not the sign-flip of its mirror. */
inline constexpr const char *kDesignFoldoverComplement =
    "design.foldover-complement";
/** A folded design must have an even run count. */
inline constexpr const char *kDesignFoldoverOddRuns =
    "design.foldover-odd-runs";

// ----- Configuration / parameter-space analysis (config_check) -----

/** ProcessorConfig::validate() rejected the configuration. */
inline constexpr const char *kConfigInvalid = "config.invalid";
/** LSQ/ROB ratio outside (0, 1] (Table 6 shading). */
inline constexpr const char *kConfigLsqRatio = "config.lsq-ratio";
/** Machine width differs from the paper's fixed width of 4. */
inline constexpr const char *kConfigMachineWidth =
    "config.machine-width";
/** D-TLB page size / miss latency do not mirror the I-TLB (Table 8). */
inline constexpr const char *kConfigDtlbMirror = "config.dtlb-mirror";
/** Cache size/block/set geometry is not power-of-two. */
inline constexpr const char *kConfigCacheGeometry =
    "config.cache-geometry";
/** L2 block smaller than an L1 block. */
inline constexpr const char *kConfigL2BlockCoversL1 =
    "config.l2-block-covers-l1";
/** A pipelined unit's issue interval exceeds its latency. */
inline constexpr const char *kConfigThroughputExceedsLatency =
    "config.throughput-exceeds-latency";
/** A factor's low/high levels produce identical configurations. */
inline constexpr const char *kSpaceLevelPairEqual =
    "space.level-pair-equal";
/** A factor's low level is not the performance-adverse side. */
inline constexpr const char *kSpaceLevelOrder = "space.level-order";
/** A dummy factor changed the configuration. */
inline constexpr const char *kSpaceDummyNotInert =
    "space.dummy-not-inert";

// ----- Workload-profile analysis (workload_check) -----

/** WorkloadProfile::validate() rejected the profile. */
inline constexpr const char *kWorkloadInvalid = "workload.invalid";
/** Instruction-mix probability mass exceeds 1 or a fraction is
 *  outside [0, 1]. */
inline constexpr const char *kWorkloadMixMass = "workload.mix-mass";
/** Memory access-pattern fractions exceed probability mass 1. */
inline constexpr const char *kWorkloadPatternMass =
    "workload.pattern-mass";
/** FP benchmark with zero FP instruction mass (or the converse). */
inline constexpr const char *kWorkloadFpMix = "workload.fp-mix";
/** No loads or stores: memory-hierarchy factors are unestimable. */
inline constexpr const char *kWorkloadNoMemoryOps =
    "workload.no-memory-ops";
/** Duplicate workload name within one experiment. */
inline constexpr const char *kWorkloadDuplicateName =
    "workload.duplicate-name";

// ----- Run-length / warm-up sanity (workload_check) -----

/** Zero measured instructions. */
inline constexpr const char *kRunNoInstructions =
    "run.no-instructions";
/** Warm-up is an order of magnitude longer than the measured window. */
inline constexpr const char *kRunWarmupDominates =
    "run.warmup-dominates";
/** Measured window too short to traverse the hot code even once. */
inline constexpr const char *kRunWindowBelowHotCode =
    "run.window-below-hot-code";

// ----- Sampled-simulation schedule sanity (workload_check) -----

/** SamplingOptions::validate() rejected the schedule (unit/interval
 *  zero, detailed phase longer than the interval, target or
 *  confidence outside (0, 1)). */
inline constexpr const char *kSampleScheduleInvalid =
    "sample.schedule-invalid";
/** Stream shorter than one detailed phase: zero measured units. */
inline constexpr const char *kSampleNoUnits = "sample.no-units";
/** Fewer than ~30 units: the CLT normality assumption behind the
 *  confidence interval is shaky. */
inline constexpr const char *kSampleFewUnits = "sample.few-units";

// ----- Campaign fault-tolerance degradation (campaign_check) -----

/** A (benchmark, design row) cell failed terminally and was
 *  quarantined (retries exhausted or non-retryable failure). */
inline constexpr const char *kCampaignCellQuarantined =
    "campaign.cell-quarantined";
/** A quarantined row's foldover mirror is intact: the pair's
 *  main-effect/interaction separation is broken for that benchmark. */
inline constexpr const char *kCampaignFoldoverPairBroken =
    "campaign.foldover-pair-broken";
/** Degradation dropped a whole benchmark from the rank aggregation;
 *  Table 9 sums no longer cover the full suite. */
inline constexpr const char *kCampaignBenchmarkDropped =
    "campaign.benchmark-dropped";
/** Abort mode: a benchmark's response column is incomplete and the
 *  policy forbids dropping it. */
inline constexpr const char *kCampaignBenchmarkIncomplete =
    "campaign.benchmark-incomplete";
/** Degradation would drop every benchmark: no rank table remains. */
inline constexpr const char *kCampaignNoCompleteBenchmarks =
    "campaign.no-complete-benchmarks";
/** Paired legs (base/enhanced) dropped different benchmark sets; the
 *  comparison is restricted to the intersection. */
inline constexpr const char *kCampaignPairedDropMismatch =
    "campaign.paired-drop-mismatch";

// ----- Distributed campaign plan (campaign_check) -----

/**
 * A remote campaign whose lease duration does not comfortably exceed
 * the heartbeat interval and every configured attempt deadline: a
 * healthy worker legitimately busy (or merely between heartbeats)
 * would be declared lapsed and its cells migrated spuriously.
 */
inline constexpr const char *kCampaignLeaseShorterThanDeadline =
    "campaign.lease-shorter-than-deadline";
/** A remote campaign expecting zero workers: every cell would queue
 *  on the controller forever. */
inline constexpr const char *kCampaignNoWorkers =
    "campaign.no-workers";
/**
 * A remote campaign whose heartbeat cadence is at or past half the
 * lease duration: at most one beacon fits in a lease window, so a
 * single delayed packet makes a healthy worker lapse and its leases
 * migrate spuriously.
 */
inline constexpr const char *kCampaignHeartbeatTooCoarse =
    "campaign.heartbeat-too-coarse";

// ----- Rank-stability inference (stability_check) -----

/**
 * A replicated campaign was requested with fewer workload-generation
 * replicates than the configured minimum: conclusions cannot
 * distinguish workload-realization noise from parameter effects.
 */
inline constexpr const char *kCampaignUnderReplicated =
    "campaign.under-replicated";
/** Adjacent top-K factors whose bootstrap rank confidence intervals
 *  overlap: their reported order is not resolved by the data. */
inline constexpr const char *kStatsRankCiOverlap =
    "stats.rank-ci-overlap";
/** A reported rank inversion whose bootstrap flip probability
 *  exceeds the threshold: the inversion is inside noise. */
inline constexpr const char *kStatsRankFlipInsideNoise =
    "stats.rank-flip-inside-noise";
/** Sampled runs whose per-run CPI confidence intervals were not
 *  root-sum-square-composed with the replication uncertainty: the
 *  reported error understates the truth. */
inline constexpr const char *kStatsCiComposeMissing =
    "stats.ci-compose-missing";
/** A stability report file failed to parse as the JSON the
 *  --stability-out writer emits. */
inline constexpr const char *kStatsReportSyntax =
    "stats.report-syntax";

// ----- File linting (csv_lint / spec_lint) -----

/** CSV cell that should be a +1/-1 level failed to parse. */
inline constexpr const char *kCsvBadCell = "csv.bad-cell";
/** CSV data row has a different cell count than the header/first row. */
inline constexpr const char *kCsvRaggedRow = "csv.ragged-row";
/** CSV file contains no design rows. */
inline constexpr const char *kCsvNoRows = "csv.no-rows";
/** Unknown key in an experiment spec. */
inline constexpr const char *kSpecUnknownKey = "spec.unknown-key";
/** Spec value failed to parse for its key's type. */
inline constexpr const char *kSpecBadValue = "spec.bad-value";
/** Spec line is not "key = value". */
inline constexpr const char *kSpecSyntax = "spec.syntax";
/** Spec names an unknown built-in workload. */
inline constexpr const char *kSpecUnknownWorkload =
    "spec.unknown-workload";
/** A file handed to the linter could not be opened or read. */
inline constexpr const char *kLintUnreadableFile =
    "lint.unreadable-file";

} // namespace rigor::check::rules

#endif // RIGOR_CHECK_RULE_IDS_HH
