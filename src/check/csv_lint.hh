/**
 * @file
 * Linting of exported CSV design matrices.
 *
 * csv_export.cc writes the PB design as one +1/-1 column per factor
 * (optionally preceded by a "run" index column and followed by
 * per-benchmark "<name> cycles" response columns). This lint parses
 * that shape — or any headerless ±1 grid — back into a sign matrix
 * and runs the full design-matrix analysis on it, attaching
 * file:line positions so a bad entry is pinpointed like a compiler
 * error.
 */

#ifndef RIGOR_CHECK_CSV_LINT_HH
#define RIGOR_CHECK_CSV_LINT_HH

#include <string>
#include <vector>

#include "check/design_check.hh"
#include "check/diagnostic.hh"

namespace rigor::check
{

/** One parsed CSV design: sign rows plus their 1-based file lines. */
struct ParsedCsvDesign
{
    std::vector<std::vector<int>> signs;
    /** File line of the first data row (header skipped); 0 if none. */
    std::size_t firstDataLine = 0;
    /** Factor-column names from the header, empty when headerless. */
    std::vector<std::string> factorNames;
};

/**
 * Split one CSV record into fields, honoring RFC-4180 quoting
 * (doubled quotes inside quoted fields).
 */
std::vector<std::string> splitCsvRecord(const std::string &line);

/**
 * Parse CSV text into a sign matrix. A first line with any
 * non-numeric cell is treated as a header; header columns named
 * "run" (case-insensitive) or ending in " cycles" are ignored in
 * every data row. Cells that fail to parse as integers are reported
 * under csv.bad-cell and recorded as 0 so the later ±1 analysis
 * still sees the row.
 */
ParsedCsvDesign parseDesignCsv(const std::string &text,
                               const std::string &filename,
                               DiagnosticSink &sink);

/**
 * Parse and fully analyze a CSV design: structural sign checks plus
 * checkDesignMatrix() under @p options. Returns true when no error
 * was reported.
 */
bool lintDesignCsv(const std::string &text,
                   const std::string &filename,
                   const DesignCheckOptions &options,
                   DiagnosticSink &sink);

} // namespace rigor::check

#endif // RIGOR_CHECK_CSV_LINT_HH
