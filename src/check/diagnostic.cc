#include "check/diagnostic.hh"

#include <sstream>

namespace rigor::check
{

std::string
toString(Severity severity)
{
    switch (severity) {
      case Severity::Note:
        return "note";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "?";
}

std::string
SourceContext::toString() const
{
    std::string out;
    if (!file.empty()) {
        out = file;
        if (line != 0)
            out += ':' + std::to_string(line);
    }
    if (!object.empty()) {
        if (!out.empty())
            out += ": ";
        out += object;
    }
    return out;
}

std::string
Diagnostic::toString() const
{
    std::string out = context.toString();
    if (!out.empty())
        out += ": ";
    out += check::toString(severity) + ": " + message + " [" + ruleId +
           "]";
    return out;
}

void
DiagnosticSink::report(Diagnostic diagnostic)
{
    if (diagnostic.severity == Severity::Error)
        ++_errors;
    else if (diagnostic.severity == Severity::Warning)
        ++_warnings;
    _diagnostics.push_back(std::move(diagnostic));
}

void
DiagnosticSink::error(std::string rule_id, std::string message,
                      SourceContext context)
{
    report({Severity::Error, std::move(rule_id), std::move(message),
            std::move(context)});
}

void
DiagnosticSink::warning(std::string rule_id, std::string message,
                        SourceContext context)
{
    report({Severity::Warning, std::move(rule_id), std::move(message),
            std::move(context)});
}

void
DiagnosticSink::note(std::string rule_id, std::string message,
                     SourceContext context)
{
    report({Severity::Note, std::move(rule_id), std::move(message),
            std::move(context)});
}

bool
DiagnosticSink::hasRule(const std::string &rule_id) const
{
    for (const Diagnostic &d : _diagnostics)
        if (d.ruleId == rule_id)
            return true;
    return false;
}

std::string
DiagnosticSink::toString() const
{
    std::ostringstream os;
    for (const Diagnostic &d : _diagnostics)
        os << d.toString() << '\n';
    return os.str();
}

std::string
DiagnosticSink::summary() const
{
    std::ostringstream os;
    os << _errors << (_errors == 1 ? " error, " : " errors, ")
       << _warnings << (_warnings == 1 ? " warning" : " warnings");
    return os.str();
}

namespace
{

std::string
preflightWhat(const std::string &who, const DiagnosticSink &sink)
{
    std::string what = who + ": pre-flight analysis rejected the "
                             "experiment (" +
                       sink.summary() + ")\n" + sink.toString();
    // Trim the trailing newline so what() composes cleanly.
    if (!what.empty() && what.back() == '\n')
        what.pop_back();
    return what;
}

} // namespace

PreflightError::PreflightError(const std::string &who,
                               DiagnosticSink sink)
    : std::runtime_error(preflightWhat(who, sink)),
      _sink(std::move(sink))
{
}

} // namespace rigor::check
