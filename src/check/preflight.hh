/**
 * @file
 * Mandatory pre-flight analysis for the experiment drivers.
 *
 * runPbExperiment, the recommended workflow's step-3 factorial, and
 * runEnhancementExperiment all describe their work as an
 * ExperimentPlan (design, workloads, configurations, run lengths)
 * and call preflightOrThrow() before submitting a single simulation
 * job. A plan with errors raises PreflightError carrying every
 * diagnostic, so an 88-run x 13-workload screen is rejected in
 * microseconds instead of producing a plausible-looking but
 * statistically meaningless rank table hours later. The
 * skipPreflight escape hatch on the experiment options bypasses the
 * analysis for deliberately out-of-spec studies.
 */

#ifndef RIGOR_CHECK_PREFLIGHT_HH
#define RIGOR_CHECK_PREFLIGHT_HH

#include <cstdint>
#include <span>
#include <vector>

#include "check/campaign_check.hh"
#include "check/diagnostic.hh"
#include "doe/design_matrix.hh"
#include "sample/sampling.hh"
#include "sim/config.hh"
#include "stats/bootstrap.hh"
#include "trace/workload_profile.hh"

namespace rigor::check
{

/** Everything a simulation experiment is about to do. */
struct ExperimentPlan
{
    /** The design to simulate; null when the plan is design-free
     *  (e.g. a factorial over explicit configurations). */
    const doe::DesignMatrix *design = nullptr;
    /** Expected factor-column count of @c design; 0 skips. */
    std::size_t expectedFactors = 0;
    /** @c design includes its foldover half (checked exactly). */
    bool designIsFolded = false;
    /** The workload suite. */
    std::span<const trace::WorkloadProfile> workloads;
    /** Explicit configurations outside the design (factorial cells);
     *  pointers must outlive the call. */
    std::vector<const sim::ProcessorConfig *> configs;
    /** Audit the built-in Tables 6-8 parameter space (design rows
     *  are mapped through it, so design-driven plans set this). */
    bool auditParameterSpace = false;
    /** Measured instructions per run. */
    std::uint64_t instructionsPerRun = 0;
    /** Warm-up instructions per run. */
    std::uint64_t warmupInstructions = 0;
    /** Sampled-simulation schedule; analyzed only when enabled. */
    sample::SamplingOptions sampling;
    /** Workload-replication plan; analyzed only when enabled. */
    stats::ReplicationOptions replication;
    /** Distributed-campaign topology; analyzed only when enabled. */
    RemotePlan remote;
};

/**
 * Run every applicable analyzer over the plan and return the
 * collected diagnostics (errors, warnings, and notes).
 */
DiagnosticSink analyzeExperimentPlan(const ExperimentPlan &plan);

/**
 * Analyze the plan and throw PreflightError naming @p who when any
 * analyzer reports an error. Warnings do not throw.
 */
void preflightOrThrow(const ExperimentPlan &plan, const char *who);

} // namespace rigor::check

#endif // RIGOR_CHECK_PREFLIGHT_HH
