#include "check/design_check.hh"

#include <string>

#include "check/rule_ids.hh"

namespace rigor::check
{

namespace
{

/** Context for one matrix row: file line when known, else an object
 *  label naming the row. */
SourceContext
rowContext(const SourceContext &base, std::size_t row)
{
    SourceContext ctx = base;
    if (ctx.line != 0)
        ctx.line += row;
    else
        ctx.object = (ctx.object.empty() ? std::string("design")
                                         : ctx.object) +
                     " row " + std::to_string(row);
    return ctx;
}

/** Context naming a column (columns have no file line). */
SourceContext
columnContext(const SourceContext &base, std::size_t col)
{
    SourceContext ctx = base;
    ctx.line = 0;
    ctx.object = (ctx.object.empty() ? std::string("design")
                                     : ctx.object) +
                 " column " + std::to_string(col);
    return ctx;
}

} // namespace

bool
checkSignMatrix(const std::vector<std::vector<int>> &signs,
                DiagnosticSink &sink, const SourceContext &base)
{
    const std::size_t before = sink.errorCount();
    if (signs.empty() || signs.front().empty()) {
        sink.error(rules::kDesignEmpty,
                   "design matrix has no rows or no columns", base);
        return false;
    }

    const std::size_t cols = signs.front().size();
    for (std::size_t r = 0; r < signs.size(); ++r) {
        if (signs[r].size() != cols) {
            sink.error(rules::kDesignRagged,
                       "row has " + std::to_string(signs[r].size()) +
                           " entries, expected " + std::to_string(cols),
                       rowContext(base, r));
            continue;
        }
        for (std::size_t c = 0; c < cols; ++c) {
            const int s = signs[r][c];
            if (s != 1 && s != -1)
                sink.error(rules::kDesignEntryNotUnit,
                           "entry " + std::to_string(s) +
                               " in column " + std::to_string(c) +
                               " is not +1 or -1 (two-level designs "
                               "admit no intermediate levels)",
                           rowContext(base, r));
        }
    }
    return sink.errorCount() == before;
}

bool
checkDesignMatrix(const doe::DesignMatrix &design,
                  const DesignCheckOptions &options,
                  DiagnosticSink &sink, const SourceContext &base)
{
    const std::size_t before = sink.errorCount();
    const std::size_t rows = design.numRows();
    const std::size_t cols = design.numColumns();

    if (options.expectedFactors != 0 &&
        cols != options.expectedFactors)
        sink.error(rules::kDesignFactorCount,
                   "design has " + std::to_string(cols) +
                       " factor columns, expected " +
                       std::to_string(options.expectedFactors),
                   base);

    // ----- Foldover complement (the paper's Table 3 layout) -----
    if (options.requireFoldover) {
        if (rows % 2 != 0) {
            sink.error(rules::kDesignFoldoverOddRuns,
                       "folded design needs an even run count, got " +
                           std::to_string(rows),
                       base);
        } else {
            const std::size_t half = rows / 2;
            for (std::size_t r = 0; r < half; ++r) {
                std::size_t bad_col = cols;
                for (std::size_t c = 0; c < cols; ++c) {
                    if (design.sign(half + r, c) !=
                        -design.sign(r, c)) {
                        bad_col = c;
                        break;
                    }
                }
                if (bad_col != cols)
                    sink.error(
                        rules::kDesignFoldoverComplement,
                        "row " + std::to_string(half + r) +
                            " is not the sign-flip of row " +
                            std::to_string(r) + " (first differs at "
                            "column " + std::to_string(bad_col) +
                            "); main effects stay aliased with "
                            "two-factor interactions",
                        rowContext(base, half + r));
            }
        }
    }

    // ----- Plackett-Burman shape -----
    if (options.requirePlackettBurman) {
        const std::size_t base_runs =
            options.requireFoldover && rows % 2 == 0 ? rows / 2 : rows;
        if (base_runs % 4 != 0)
            sink.error(rules::kDesignRunsNotMultipleOfFour,
                       "Plackett-Burman designs need a run count "
                       "that is a multiple of four, got " +
                           std::to_string(base_runs),
                       base);
        if (cols >= base_runs)
            sink.error(rules::kDesignTooManyFactors,
                       "a " + std::to_string(base_runs) +
                           "-run PB design estimates at most " +
                           std::to_string(base_runs - 1) +
                           " factors, got " + std::to_string(cols),
                       base);
    }

    // ----- Column balance -----
    for (std::size_t c = 0; c < cols; ++c) {
        long total = 0;
        for (std::size_t r = 0; r < rows; ++r)
            total += design.sign(r, c);
        if (total != 0)
            sink.error(rules::kDesignColumnBalance,
                       "column is unbalanced (sum of signs " +
                           std::to_string(total) +
                           "); its effect estimate is biased by the "
                           "response mean",
                       columnContext(base, c));
    }

    // ----- Pairwise orthogonality and duplicate columns -----
    for (std::size_t a = 0; a < cols; ++a) {
        for (std::size_t b = a + 1; b < cols; ++b) {
            const long dot = design.columnDot(a, b);
            if (dot == 0)
                continue;
            if (dot == static_cast<long>(rows) ||
                dot == -static_cast<long>(rows))
                sink.error(rules::kDesignDuplicateColumn,
                           "column " + std::to_string(a) +
                               " and column " + std::to_string(b) +
                               (dot > 0 ? " are identical"
                                        : " are exact negations") +
                               "; their factors are perfectly aliased",
                           columnContext(base, b));
            else
                sink.error(rules::kDesignOrthogonality,
                           "column " + std::to_string(a) +
                               " and column " + std::to_string(b) +
                               " are not orthogonal (dot product " +
                               std::to_string(dot) +
                               "); their main effects contaminate "
                               "each other",
                           columnContext(base, b));
        }
    }

    return sink.errorCount() == before;
}

} // namespace rigor::check
