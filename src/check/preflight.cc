#include "check/preflight.hh"

#include <string>

#include "check/config_check.hh"
#include "check/design_check.hh"
#include "check/stability_check.hh"
#include "check/workload_check.hh"

namespace rigor::check
{

DiagnosticSink
analyzeExperimentPlan(const ExperimentPlan &plan)
{
    DiagnosticSink sink;

    if (plan.design) {
        DesignCheckOptions options;
        options.expectedFactors = plan.expectedFactors;
        options.requireFoldover = plan.designIsFolded;
        options.requirePlackettBurman = true;
        checkDesignMatrix(*plan.design, options, sink);
    }

    if (plan.auditParameterSpace)
        checkParameterSpace(sink);

    for (std::size_t i = 0; i < plan.configs.size(); ++i) {
        SourceContext ctx;
        ctx.object = "configuration " + std::to_string(i);
        if (plan.configs[i])
            checkProcessorConfig(*plan.configs[i], sink, ctx);
    }

    checkWorkloads(plan.workloads, sink);
    for (const trace::WorkloadProfile &profile : plan.workloads)
        checkRunLengths(plan.instructionsPerRun,
                        plan.warmupInstructions, profile, sink);

    checkSamplingPlan(plan.sampling, plan.instructionsPerRun,
                      plan.warmupInstructions, sink);

    checkReplicationPlan(plan.replication, sink);

    checkRemotePlan(plan.remote, sink);

    return sink;
}

void
preflightOrThrow(const ExperimentPlan &plan, const char *who)
{
    DiagnosticSink sink = analyzeExperimentPlan(plan);
    if (!sink.passed())
        throw PreflightError(who, std::move(sink));
}

} // namespace rigor::check
