/**
 * @file
 * The single authoritative registry of rigor-lint rules.
 *
 * Every stable rule id from rule_ids.hh appears here exactly once
 * with its default severity and a one-line summary. The table backs
 * `tools/rigor_lint --list-rules`, and the rule-docs regression test
 * asserts three-way consistency between this table, the constants in
 * rule_ids.hh, and the rule table in EXPERIMENTS.md — so the code
 * and the documentation cannot drift apart again.
 */

#ifndef RIGOR_CHECK_RULE_TABLE_HH
#define RIGOR_CHECK_RULE_TABLE_HH

#include <span>

#include "check/diagnostic.hh"

namespace rigor::check
{

/** One registered rule: id, default severity, one-line summary. */
struct RuleInfo
{
    /** Stable dotted id; points at the rule_ids.hh constant. */
    const char *id;
    /**
     * Severity the analyzer reports by default. Rules that escalate
     * contextually (e.g. workload.fp-mix) list their most severe
     * form.
     */
    Severity defaultSeverity;
    /** One-line description of what the rule checks. */
    const char *summary;
};

/** All registered rules, grouped by analyzer, ids unique. */
std::span<const RuleInfo> ruleTable();

/** Look up a rule by id; nullptr when unknown. */
const RuleInfo *findRule(const char *id);

} // namespace rigor::check

#endif // RIGOR_CHECK_RULE_TABLE_HH
