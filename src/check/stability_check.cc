#include "check/stability_check.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "check/rule_ids.hh"

namespace rigor::check
{

namespace
{

std::string
formatDouble(double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3g", value);
    return buffer;
}

// ----- Minimal JSON reader for --stability-out reports -----
//
// The report writer (methodology/rank_stability.cc) emits a small,
// fixed schema; this reader covers exactly the JSON subset it uses
// (objects, arrays, strings with \-escapes, numbers, booleans, null)
// so the lint path carries no external dependency.

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    const JsonValue *find(const std::string &key) const
    {
        for (const auto &[name, value] : members)
            if (name == key)
                return &value;
        return nullptr;
    }
};

class JsonReader
{
  public:
    explicit JsonReader(std::string_view text) : _text(text) {}

    /** Parse the whole input; false leaves the error in error(). */
    bool parse(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out, 0))
            return false;
        skipSpace();
        if (_pos != _text.size())
            return fail("trailing characters after the document");
        return true;
    }

    const std::string &error() const { return _error; }
    std::size_t line() const { return _line; }

  private:
    static constexpr int kMaxDepth = 32;

    bool fail(const std::string &what)
    {
        if (_error.empty())
            _error = what;
        return false;
    }

    void skipSpace()
    {
        while (_pos < _text.size()) {
            const char c = _text[_pos];
            if (c == '\n')
                ++_line;
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++_pos;
        }
    }

    bool consume(char expected)
    {
        if (_pos >= _text.size() || _text[_pos] != expected)
            return fail(std::string("expected '") + expected + "'");
        ++_pos;
        return true;
    }

    bool parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (_pos >= _text.size())
            return fail("unexpected end of input");
        const char c = _text[_pos];
        if (c == '{')
            return parseObject(out, depth);
        if (c == '[')
            return parseArray(out, depth);
        if (c == '"') {
            if (!parseString(out.text))
                return false;
            out.kind = JsonValue::Kind::String;
            return true;
        }
        if (c == 't' || c == 'f') {
            if (!parseKeyword(c == 't' ? "true" : "false"))
                return false;
            out.kind = JsonValue::Kind::Bool;
            out.boolean = (c == 't');
            return true;
        }
        if (c == 'n')
            return parseKeyword("null");
        return parseNumber(out);
    }

    bool parseKeyword(std::string_view word)
    {
        if (_text.substr(_pos, word.size()) != word)
            return fail("unrecognized token");
        _pos += word.size();
        return true;
    }

    bool parseObject(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Object;
        ++_pos; // '{'
        skipSpace();
        if (_pos < _text.size() && _text[_pos] == '}') {
            ++_pos;
            return true;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (!consume(':'))
                return false;
            skipSpace();
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.members.emplace_back(std::move(key),
                                     std::move(value));
            skipSpace();
            if (_pos < _text.size() && _text[_pos] == ',') {
                ++_pos;
                continue;
            }
            return consume('}');
        }
    }

    bool parseArray(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Array;
        ++_pos; // '['
        skipSpace();
        if (_pos < _text.size() && _text[_pos] == ']') {
            ++_pos;
            return true;
        }
        while (true) {
            skipSpace();
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.items.push_back(std::move(value));
            skipSpace();
            if (_pos < _text.size() && _text[_pos] == ',') {
                ++_pos;
                continue;
            }
            return consume(']');
        }
    }

    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (_pos < _text.size()) {
            const char c = _text[_pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (_pos >= _text.size())
                    break;
                const char escaped = _text[_pos++];
                switch (escaped) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'n': out.push_back('\n'); break;
                case 't': out.push_back('\t'); break;
                case 'r': out.push_back('\r'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'u':
                    // The writer never emits \u escapes; reject
                    // rather than mis-decode.
                    return fail("\\u escapes are not supported");
                default:
                    return fail("bad escape in string");
                }
                continue;
            }
            out.push_back(c);
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue &out)
    {
        const std::size_t start = _pos;
        if (_pos < _text.size() &&
            (_text[_pos] == '-' || _text[_pos] == '+'))
            ++_pos;
        bool digits = false;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) !=
                    0 ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E' || _text[_pos] == '-' ||
                _text[_pos] == '+')) {
            digits = true;
            ++_pos;
        }
        if (!digits)
            return fail("expected a value");
        const std::string token(_text.substr(start, _pos - start));
        char *end = nullptr;
        out.number = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number");
        out.kind = JsonValue::Kind::Number;
        return true;
    }

    std::string_view _text;
    std::size_t _pos = 0;
    std::size_t _line = 1;
    std::string _error;
};

/** Extract a finite non-negative number member; false on shape error. */
bool
numberMember(const JsonValue &object, const std::string &key,
             double &out)
{
    const JsonValue *value = object.find(key);
    if (value == nullptr || value->kind != JsonValue::Kind::Number)
        return false;
    out = value->number;
    return true;
}

bool
boolMember(const JsonValue &object, const std::string &key, bool &out)
{
    const JsonValue *value = object.find(key);
    if (value == nullptr || value->kind != JsonValue::Kind::Bool)
        return false;
    out = value->boolean;
    return true;
}

/**
 * Convert a parsed report document into findings. Returns false with
 * @p why set when the document does not have the writer's shape.
 */
bool
findingsFromJson(const JsonValue &root, RankStabilityFindings &out,
                 std::string &why)
{
    if (root.kind != JsonValue::Kind::Object) {
        why = "top-level value is not an object";
        return false;
    }
    double replicates = 0.0;
    if (!numberMember(root, "replicates", replicates) ||
        replicates < 0.0) {
        why = "missing or malformed 'replicates'";
        return false;
    }
    out.replicates = static_cast<unsigned>(replicates);
    if (!boolMember(root, "sampled", out.sampled)) {
        why = "missing or malformed 'sampled'";
        return false;
    }
    if (!boolMember(root, "samplingCiComposed",
                    out.samplingCiComposed)) {
        why = "missing or malformed 'samplingCiComposed'";
        return false;
    }

    const JsonValue *factors = root.find("factors");
    if (factors == nullptr ||
        factors->kind != JsonValue::Kind::Array) {
        why = "missing or malformed 'factors'";
        return false;
    }
    for (const JsonValue &factor : factors->items) {
        if (factor.kind != JsonValue::Kind::Object) {
            why = "'factors' entry is not an object";
            return false;
        }
        const JsonValue *name = factor.find("name");
        double lower = 0.0;
        double upper = 0.0;
        if (name == nullptr ||
            name->kind != JsonValue::Kind::String ||
            !numberMember(factor, "rankLower", lower) ||
            !numberMember(factor, "rankUpper", upper)) {
            why = "'factors' entry lacks name/rankLower/rankUpper";
            return false;
        }
        out.factorNames.push_back(name->text);
        out.rankLower.push_back(lower);
        out.rankUpper.push_back(upper);
    }

    const JsonValue *flips = root.find("flipProbability");
    if (flips == nullptr || flips->kind != JsonValue::Kind::Array) {
        why = "missing or malformed 'flipProbability'";
        return false;
    }
    for (const JsonValue &row : flips->items) {
        if (row.kind != JsonValue::Kind::Array) {
            why = "'flipProbability' row is not an array";
            return false;
        }
        std::vector<double> values;
        values.reserve(row.items.size());
        for (const JsonValue &cell : row.items) {
            if (cell.kind != JsonValue::Kind::Number) {
                why = "'flipProbability' cell is not a number";
                return false;
            }
            values.push_back(cell.number);
        }
        out.flipProbability.push_back(std::move(values));
    }
    for (const std::vector<double> &row : out.flipProbability) {
        if (row.size() != out.flipProbability.size()) {
            why = "'flipProbability' matrix is not square";
            return false;
        }
    }
    if (out.flipProbability.size() > out.factorNames.size()) {
        why = "'flipProbability' is larger than 'factors'";
        return false;
    }
    return true;
}

} // namespace

void
checkReplicationPlan(const stats::ReplicationOptions &replication,
                     DiagnosticSink &sink)
{
    if (!replication.enabled())
        return;
    if (replication.replicates < replication.minReplicates) {
        sink.error(
            rules::kCampaignUnderReplicated,
            "campaign requests " +
                std::to_string(replication.replicates) +
                " workload replicate(s) but the configured minimum "
                "is " +
                std::to_string(replication.minReplicates) +
                "; rank conclusions need enough independent "
                "realizations to separate workload noise from "
                "parameter effects",
            {{}, 0, "replication plan"});
    }
    try {
        replication.bootstrap.validate();
    } catch (const std::invalid_argument &e) {
        sink.error(rules::kCampaignUnderReplicated, e.what(),
                   {{}, 0, "replication plan"});
    }
}

void
checkRankStability(const RankStabilityFindings &findings,
                   const StabilityCheckOptions &options,
                   DiagnosticSink &sink)
{
    const std::size_t top =
        std::min<std::size_t>(options.topFactors,
                              findings.factorNames.size());

    // Adjacent overlapping rank CIs: the reported order of the two
    // factors is not resolved by the data.
    for (std::size_t i = 0; i + 1 < top; ++i) {
        if (i + 1 >= findings.rankLower.size() ||
            i >= findings.rankUpper.size())
            break;
        if (findings.rankLower[i + 1] <= findings.rankUpper[i]) {
            sink.warning(
                rules::kStatsRankCiOverlap,
                "rank CIs of '" + findings.factorNames[i] + "' [" +
                    formatDouble(findings.rankLower[i]) + ", " +
                    formatDouble(findings.rankUpper[i]) + "] and '" +
                    findings.factorNames[i + 1] + "' [" +
                    formatDouble(findings.rankLower[i + 1]) + ", " +
                    formatDouble(findings.rankUpper[i + 1]) +
                    "] overlap; their order is not resolved",
                {{}, 0,
                 "rank " + std::to_string(i + 1) + " vs " +
                     std::to_string(i + 2)});
        }
    }

    // Reported inversions inside noise: the bootstrap swaps the pair
    // more often than the threshold allows.
    const std::size_t flip_top =
        std::min(top, findings.flipProbability.size());
    for (std::size_t i = 0; i < flip_top; ++i) {
        for (std::size_t j = i + 1; j < flip_top; ++j) {
            const double p = findings.flipProbability[i][j];
            if (p > options.flipThreshold) {
                sink.error(
                    rules::kStatsRankFlipInsideNoise,
                    "reported order '" + findings.factorNames[i] +
                        "' ahead of '" + findings.factorNames[j] +
                        "' flips in " + formatDouble(p * 100.0) +
                        "% of bootstrap iterations (threshold " +
                        formatDouble(options.flipThreshold * 100.0) +
                        "%); the inversion is inside noise",
                    {{}, 0,
                     "rank " + std::to_string(i + 1) + " vs " +
                         std::to_string(j + 1)});
            }
        }
    }

    if (findings.sampled && !findings.samplingCiComposed) {
        sink.error(
            rules::kStatsCiComposeMissing,
            "campaign used sampled simulation but per-run CPI "
            "sampling CIs were not root-sum-square-composed with "
            "the replication CIs; reported uncertainty understates "
            "the truth",
            {{}, 0, "uncertainty composition"});
    }
}

void
lintStabilityReport(std::string_view text, const std::string &path,
                    const StabilityCheckOptions &options,
                    unsigned min_replicates, DiagnosticSink &sink)
{
    JsonReader reader(text);
    JsonValue root;
    if (!reader.parse(root)) {
        sink.error(rules::kStatsReportSyntax,
                   "stability report is not valid JSON: " +
                       reader.error(),
                   {path, reader.line(), {}});
        return;
    }
    RankStabilityFindings findings;
    std::string why;
    if (!findingsFromJson(root, findings, why)) {
        sink.error(rules::kStatsReportSyntax,
                   "stability report has the wrong shape: " + why,
                   {path, 0, {}});
        return;
    }
    stats::ReplicationOptions replication;
    replication.replicates = findings.replicates;
    replication.minReplicates = min_replicates;
    checkReplicationPlan(replication, sink);
    checkRankStability(findings, options, sink);
}

} // namespace rigor::check
