/**
 * @file
 * Linting of standalone experiment spec files.
 *
 * A spec is a plain-text "key = value" description of one simulation
 * recipe — processor-configuration overrides, a workload profile
 * (built-in by name, field overrides, or both), and run lengths:
 *
 *     # mcf-like memory-bound study
 *     workload = mcf
 *     workload.fracLoad = 0.38
 *     config.robEntries = 64
 *     config.lsqRatio = 0.25
 *     run.instructions = 200000
 *     run.warmup = 20000
 *
 * parseExperimentSpec() reads the file with per-line diagnostics
 * (unknown keys, unparsable values) and lintExperimentSpec() then
 * runs the configuration and workload analyzers over the resulting
 * objects, so an invalid recipe is rejected before it reaches any
 * experiment driver.
 */

#ifndef RIGOR_CHECK_SPEC_LINT_HH
#define RIGOR_CHECK_SPEC_LINT_HH

#include <cstdint>
#include <string>

#include "check/diagnostic.hh"
#include "sim/config.hh"
#include "trace/workload_profile.hh"

namespace rigor::check
{

/** One parsed experiment recipe. */
struct ExperimentSpec
{
    sim::ProcessorConfig config;
    trace::WorkloadProfile workload;
    /** True when any workload key appeared (the profile is meant). */
    bool hasWorkload = false;
    std::uint64_t instructions = 200000;
    std::uint64_t warmup = 0;
};

/**
 * Parse spec text. '#' starts a comment; blank lines are ignored;
 * every other line must be "key = value". Problems are reported per
 * line under spec.* rules; parsing continues past them so one pass
 * reports every mistake.
 */
ExperimentSpec parseExperimentSpec(const std::string &text,
                                   const std::string &filename,
                                   DiagnosticSink &sink);

/**
 * Parse and fully analyze a spec: configuration invariants, workload
 * probability mass, and run-length sanity. Returns true when no
 * error was reported.
 */
bool lintExperimentSpec(const std::string &text,
                        const std::string &filename,
                        DiagnosticSink &sink);

} // namespace rigor::check

#endif // RIGOR_CHECK_SPEC_LINT_HH
