#include "check/spec_lint.hh"

#include <charconv>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "check/config_check.hh"
#include "check/rule_ids.hh"
#include "check/workload_check.hh"
#include "trace/workloads.hh"

namespace rigor::check
{

namespace
{

std::string
trim(const std::string &s)
{
    const std::size_t first = s.find_first_not_of(" \t");
    if (first == std::string::npos)
        return {};
    const std::size_t last = s.find_last_not_of(" \t\r");
    return s.substr(first, last - first + 1);
}

template <typename T>
bool
parseNumber(const std::string &value, T &out)
{
    const char *first = value.data();
    const char *last = value.data() + value.size();
    if constexpr (std::is_floating_point_v<T>) {
        try {
            std::size_t used = 0;
            out = static_cast<T>(std::stod(value, &used));
            return used == value.size();
        } catch (const std::exception &) {
            return false;
        }
    } else {
        const std::from_chars_result res =
            std::from_chars(first, last, out);
        return res.ec == std::errc{} && res.ptr == last;
    }
}

bool
parseBool(const std::string &value, bool &out)
{
    if (value == "true" || value == "1") {
        out = true;
        return true;
    }
    if (value == "false" || value == "0") {
        out = false;
        return true;
    }
    return false;
}

/** Applies one "key = value"; returns false for an unknown key and
 *  throws std::invalid_argument for a bad value. */
bool
applyKey(ExperimentSpec &spec, const std::string &key,
         const std::string &value)
{
    const auto bad = [&](const char *kind) -> bool {
        throw std::invalid_argument("expected " + std::string(kind) +
                                    ", got '" + value + "'");
    };
    const auto setU32 = [&](std::uint32_t &field) {
        return parseNumber(value, field) || bad("an unsigned integer");
    };
    const auto setU64 = [&](std::uint64_t &field) {
        return parseNumber(value, field) || bad("an unsigned integer");
    };
    const auto setDouble = [&](double &field) {
        return parseNumber(value, field) || bad("a number");
    };
    const auto setBool = [&](bool &field) {
        return parseBool(value, field) || bad("true/false");
    };

    sim::ProcessorConfig &c = spec.config;
    trace::WorkloadProfile &w = spec.workload;

    // ----- Run lengths -----
    if (key == "run.instructions")
        return setU64(spec.instructions);
    if (key == "run.warmup")
        return setU64(spec.warmup);

    // ----- Workload -----
    if (key == "workload") {
        // Built-in base profile; later workload.* keys override it.
        spec.workload = trace::workloadByName(value); // throws if unknown
        spec.hasWorkload = true;
        return true;
    }
    if (key.starts_with("workload.")) {
        spec.hasWorkload = true;
        const std::string field = key.substr(9);
        if (field == "name") {
            w.name = value;
            return true;
        }
        if (field == "isFloatingPoint")
            return setBool(w.isFloatingPoint);
        const struct
        {
            const char *name;
            double trace::WorkloadProfile::*member;
        } doubles[] = {
            {"fracLoad", &trace::WorkloadProfile::fracLoad},
            {"fracStore", &trace::WorkloadProfile::fracStore},
            {"fracIntMult", &trace::WorkloadProfile::fracIntMult},
            {"fracIntDiv", &trace::WorkloadProfile::fracIntDiv},
            {"fracFpAlu", &trace::WorkloadProfile::fracFpAlu},
            {"fracFpMult", &trace::WorkloadProfile::fracFpMult},
            {"fracFpDiv", &trace::WorkloadProfile::fracFpDiv},
            {"fracFpSqrt", &trace::WorkloadProfile::fracFpSqrt},
            {"avgBlockInstrs", &trace::WorkloadProfile::avgBlockInstrs},
            {"takenBias", &trace::WorkloadProfile::takenBias},
            {"branchPredictability",
             &trace::WorkloadProfile::branchPredictability},
            {"callFraction", &trace::WorkloadProfile::callFraction},
            {"avgCallDepth", &trace::WorkloadProfile::avgCallDepth},
            {"hotDataFraction",
             &trace::WorkloadProfile::hotDataFraction},
            {"fracPointerChase",
             &trace::WorkloadProfile::fracPointerChase},
            {"fracStrided", &trace::WorkloadProfile::fracStrided},
            {"valueLocality", &trace::WorkloadProfile::valueLocality},
            {"avgDependencyDistance",
             &trace::WorkloadProfile::avgDependencyDistance},
        };
        for (const auto &d : doubles)
            if (field == d.name)
                return setDouble(w.*(d.member));
        if (field == "codeFootprintBytes")
            return setU64(w.codeFootprintBytes);
        if (field == "hotCodeBytes")
            return setU64(w.hotCodeBytes);
        if (field == "dataFootprintBytes")
            return setU64(w.dataFootprintBytes);
        if (field == "strideBytes")
            return setU32(w.strideBytes);
        return false;
    }

    // ----- Processor configuration -----
    if (!key.starts_with("config."))
        return false;
    const std::string field = key.substr(7);

    if (field == "lsqRatio")
        return setDouble(c.lsqRatio);
    if (field == "bpred") {
        if (value == "2-level")
            c.bpred = sim::BranchPredictorKind::TwoLevel;
        else if (value == "bimodal")
            c.bpred = sim::BranchPredictorKind::Bimodal;
        else if (value == "local")
            c.bpred = sim::BranchPredictorKind::LocalTwoLevel;
        else if (value == "tournament")
            c.bpred = sim::BranchPredictorKind::Tournament;
        else if (value == "perfect")
            c.bpred = sim::BranchPredictorKind::Perfect;
        else
            bad("one of 2-level/bimodal/local/tournament/perfect");
        return true;
    }
    if (field == "specBranchUpdate") {
        if (value == "commit")
            c.specBranchUpdate = sim::BranchUpdateTiming::InCommit;
        else if (value == "decode")
            c.specBranchUpdate = sim::BranchUpdateTiming::InDecode;
        else
            bad("commit or decode");
        return true;
    }
    if (field == "l1iNextLinePrefetch")
        return setBool(c.l1iNextLinePrefetch);

    const struct
    {
        const char *name;
        std::uint32_t sim::ProcessorConfig::*member;
    } u32s[] = {
        {"ifqEntries", &sim::ProcessorConfig::ifqEntries},
        {"bpredPenalty", &sim::ProcessorConfig::bpredPenalty},
        {"rasEntries", &sim::ProcessorConfig::rasEntries},
        {"btbEntries", &sim::ProcessorConfig::btbEntries},
        {"btbAssoc", &sim::ProcessorConfig::btbAssoc},
        {"machineWidth", &sim::ProcessorConfig::machineWidth},
        {"robEntries", &sim::ProcessorConfig::robEntries},
        {"memPorts", &sim::ProcessorConfig::memPorts},
        {"intAlus", &sim::ProcessorConfig::intAlus},
        {"intAluLatency", &sim::ProcessorConfig::intAluLatency},
        {"intAluThroughput", &sim::ProcessorConfig::intAluThroughput},
        {"fpAlus", &sim::ProcessorConfig::fpAlus},
        {"fpAluLatency", &sim::ProcessorConfig::fpAluLatency},
        {"fpAluThroughput", &sim::ProcessorConfig::fpAluThroughput},
        {"intMultDivUnits", &sim::ProcessorConfig::intMultDivUnits},
        {"intMultLatency", &sim::ProcessorConfig::intMultLatency},
        {"intDivLatency", &sim::ProcessorConfig::intDivLatency},
        {"intMultThroughput",
         &sim::ProcessorConfig::intMultThroughput},
        {"fpMultDivUnits", &sim::ProcessorConfig::fpMultDivUnits},
        {"fpMultLatency", &sim::ProcessorConfig::fpMultLatency},
        {"fpDivLatency", &sim::ProcessorConfig::fpDivLatency},
        {"fpSqrtLatency", &sim::ProcessorConfig::fpSqrtLatency},
        {"memLatencyFirst", &sim::ProcessorConfig::memLatencyFirst},
        {"memBandwidthBytes",
         &sim::ProcessorConfig::memBandwidthBytes},
    };
    for (const auto &u : u32s)
        if (field == u.name)
            return setU32(c.*(u.member));

    // Nested cache and TLB geometry, e.g. "config.l1d.sizeBytes".
    const struct
    {
        const char *prefix;
        sim::CacheGeometry sim::ProcessorConfig::*member;
    } caches[] = {
        {"l1i.", &sim::ProcessorConfig::l1i},
        {"l1d.", &sim::ProcessorConfig::l1d},
        {"l2.", &sim::ProcessorConfig::l2},
    };
    for (const auto &cache : caches) {
        if (!field.starts_with(cache.prefix))
            continue;
        sim::CacheGeometry &g = c.*(cache.member);
        const std::string sub =
            field.substr(std::string(cache.prefix).size());
        if (sub == "sizeBytes")
            return setU32(g.sizeBytes);
        if (sub == "assoc")
            return setU32(g.assoc);
        if (sub == "blockBytes")
            return setU32(g.blockBytes);
        if (sub == "latency")
            return setU32(g.latency);
        return false;
    }
    const struct
    {
        const char *prefix;
        sim::TlbGeometry sim::ProcessorConfig::*member;
    } tlbs[] = {
        {"itlb.", &sim::ProcessorConfig::itlb},
        {"dtlb.", &sim::ProcessorConfig::dtlb},
    };
    for (const auto &tlb : tlbs) {
        if (!field.starts_with(tlb.prefix))
            continue;
        sim::TlbGeometry &g = c.*(tlb.member);
        const std::string sub =
            field.substr(std::string(tlb.prefix).size());
        if (sub == "entries")
            return setU32(g.entries);
        if (sub == "pageBytes")
            return setU64(g.pageBytes);
        if (sub == "assoc")
            return setU32(g.assoc);
        if (sub == "missLatency")
            return setU32(g.missLatency);
        return false;
    }
    return false;
}

} // namespace

ExperimentSpec
parseExperimentSpec(const std::string &text,
                    const std::string &filename, DiagnosticSink &sink)
{
    ExperimentSpec spec;
    std::istringstream is(text);
    std::string line;
    std::size_t line_num = 0;
    while (std::getline(is, line)) {
        ++line_num;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const std::string content = trim(line);
        if (content.empty())
            continue;

        const SourceContext ctx{filename, line_num, {}};
        const std::size_t eq = content.find('=');
        if (eq == std::string::npos) {
            sink.error(rules::kSpecSyntax,
                       "expected 'key = value', got '" + content + "'",
                       ctx);
            continue;
        }
        const std::string key = trim(content.substr(0, eq));
        const std::string value = trim(content.substr(eq + 1));
        if (key.empty() || value.empty()) {
            sink.error(rules::kSpecSyntax,
                       "empty key or value in '" + content + "'", ctx);
            continue;
        }

        try {
            if (!applyKey(spec, key, value))
                sink.error(rules::kSpecUnknownKey,
                           "unknown key '" + key + "'", ctx);
        } catch (const std::invalid_argument &e) {
            if (key == "workload")
                sink.error(rules::kSpecUnknownWorkload,
                           "unknown built-in workload '" + value + "'",
                           ctx);
            else
                sink.error(rules::kSpecBadValue,
                           "bad value for '" + key + "': " + e.what(),
                           ctx);
        }
    }
    return spec;
}

bool
lintExperimentSpec(const std::string &text,
                   const std::string &filename, DiagnosticSink &sink)
{
    const std::size_t before = sink.errorCount();
    ExperimentSpec spec = parseExperimentSpec(text, filename, sink);
    if (sink.errorCount() != before)
        return false;

    SourceContext ctx;
    ctx.file = filename;
    checkProcessorConfig(spec.config, sink, ctx);
    if (spec.hasWorkload) {
        if (spec.workload.name.empty())
            spec.workload.name = "(spec)";
        checkWorkloadProfile(spec.workload, sink, ctx);
        checkRunLengths(spec.instructions, spec.warmup, spec.workload,
                        sink, ctx);
    }
    return sink.errorCount() == before;
}

} // namespace rigor::check
