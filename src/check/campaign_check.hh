/**
 * @file
 * Statistical-validity degradation analysis for fault-tolerant
 * campaigns.
 *
 * When a campaign runs in collect-all-failures mode, a job whose
 * retries are exhausted is quarantined instead of cancelling the
 * batch. Quarantine is not statistically free: a missing
 * (benchmark, design row) response breaks that benchmark's
 * Plackett-Burman column contrasts, and in a foldover design it also
 * orphans the row's sign-flipped mirror, so main effects are no
 * longer separable from two-factor interactions for that benchmark.
 *
 * This analyzer turns a list of quarantined cells into an explicit,
 * rule-id'd verdict through the same DiagnosticSink vocabulary as
 * the experiment pre-flight:
 *
 *  - DegradationMode::DropBenchmark: every affected benchmark is
 *    dropped whole (warning campaign.benchmark-dropped) so the
 *    surviving rank table stays internally consistent — Table 9 sums
 *    then cover fewer benchmarks and must be labeled as such. If no
 *    benchmark survives, that is an error
 *    (campaign.no-complete-benchmarks).
 *
 *  - DegradationMode::Abort: any incomplete benchmark is an error
 *    (campaign.benchmark-incomplete); the campaign refuses to emit a
 *    partially-supported rank table.
 *
 * Either way the outcome is loud: a campaign never publishes a rank
 * table that silently counts fewer runs than it claims.
 */

#ifndef RIGOR_CHECK_CAMPAIGN_CHECK_HH
#define RIGOR_CHECK_CAMPAIGN_CHECK_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "check/diagnostic.hh"

namespace rigor::check
{

/** What to do when quarantined cells make a benchmark incomplete. */
enum class DegradationMode
{
    /** Refuse to degrade: any incomplete benchmark is an error. */
    Abort,
    /** Drop affected benchmarks whole and label the reduced table. */
    DropBenchmark,
};

/** Display name ("abort" / "drop-benchmark"). */
std::string toString(DegradationMode mode);

/**
 * One terminally-failed response cell. For a PB/foldover campaign
 * @c row is the design-row index; for a factorial campaign it is the
 * factorial cell index.
 */
struct QuarantinedCell
{
    /** Benchmark (PB screen) or workload (factorial) name. */
    std::string benchmark;
    /** Design-row / factorial-cell index (0-based). */
    std::size_t row = 0;
    /** Attempts spent before quarantine. */
    unsigned attempts = 1;
    /** Terminal failure kind ("transient"/"permanent"/"timeout"). */
    std::string kind;
    /** The terminal failure message. */
    std::string message;
};

/** Verdict of a degradation analysis. */
struct CampaignAssessment
{
    /** Full diagnostic trail (quarantines, drops, errors). */
    DiagnosticSink sink;
    /** Benchmarks to remove from the aggregation (DropBenchmark). */
    std::vector<std::string> dropBenchmarks;

    /** True when the campaign may proceed (possibly degraded). */
    bool passed() const { return sink.passed(); }
};

/**
 * Assess a Plackett-Burman (optionally folded) campaign.
 *
 * @param benchmarks every benchmark the campaign simulated.
 * @param designRows rows in the (possibly folded) design.
 * @param folded whether rows r and r + designRows/2 form foldover
 *        pairs (enables the pair-broken diagnostic).
 * @param quarantined the terminally-failed cells.
 */
CampaignAssessment assessCampaignValidity(
    const std::vector<std::string> &benchmarks,
    std::size_t designRows, bool folded,
    const std::vector<QuarantinedCell> &quarantined,
    DegradationMode mode);

/**
 * Assess a full-factorial campaign whose responses are averaged per
 * cell across workloads: a workload with any quarantined cell is
 * dropped from every cell's average (or the campaign aborts), so no
 * cell mixes a different workload population than its neighbors.
 */
CampaignAssessment assessFactorialValidity(
    const std::vector<std::string> &workloads, std::size_t cells,
    const std::vector<QuarantinedCell> &quarantined,
    DegradationMode mode);

/**
 * A distributed (IsolationMode::Remote) campaign's topology, reduced
 * to plain integers so the check layer keeps its no-exec-dependency
 * rule (exec depends on check, not the other way around). The
 * drivers fill one from CampaignOptions before pre-flight.
 */
struct RemotePlan
{
    /** False = not a remote campaign; every check is skipped. */
    bool enabled = false;
    /** Workers the campaign expects to be served by. */
    unsigned workers = 0;
    /** Lease duration (worker-silence budget) in ms. */
    std::uint64_t leaseMs = 0;
    /** Advertised heartbeat cadence in ms. */
    std::uint64_t heartbeatMs = 0;
    /** Cooperative per-attempt deadline in ms (0 = none). */
    std::uint64_t attemptDeadlineMs = 0;
    /** Sandbox hard deadline in ms (0 = none). */
    std::uint64_t hardDeadlineMs = 0;
};

/**
 * Pre-flight a remote campaign's topology:
 *
 *  - campaign.no-workers (error): zero expected workers means every
 *    cell queues on the controller forever;
 *  - campaign.lease-shorter-than-deadline (error): the lease must
 *    comfortably exceed the heartbeat interval and every configured
 *    attempt deadline, or healthy workers get declared lapsed and
 *    their cells migrated spuriously — each migration burning one of
 *    the cell's distinct-worker lives.
 */
void checkRemotePlan(const RemotePlan &plan, DiagnosticSink &sink);

/**
 * Thrown when a degradation analysis fails (or when DropBenchmark
 * leaves nothing to aggregate); carries the full diagnostic trail.
 */
class CampaignError : public std::runtime_error
{
  public:
    CampaignError(const std::string &who, DiagnosticSink sink);

    const DiagnosticSink &sink() const { return _sink; }
    const std::vector<Diagnostic> &diagnostics() const
    {
        return _sink.diagnostics();
    }

  private:
    DiagnosticSink _sink;
};

} // namespace rigor::check

#endif // RIGOR_CHECK_CAMPAIGN_CHECK_HH
