#include "check/csv_lint.hh"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>

#include "check/rule_ids.hh"

namespace rigor::check
{

namespace
{

bool
parseInt(const std::string &cell, int &out)
{
    std::string trimmed = cell;
    trimmed.erase(0, trimmed.find_first_not_of(" \t"));
    const std::size_t last = trimmed.find_last_not_of(" \t\r");
    trimmed.erase(last == std::string::npos ? 0 : last + 1);
    if (trimmed.empty())
        return false;
    // std::from_chars rejects an explicit '+'; the exports and
    // hand-written designs both use "+1".
    const char *first = trimmed.data();
    const char *last_ptr = trimmed.data() + trimmed.size();
    if (*first == '+')
        ++first;
    if (first == last_ptr)
        return false;
    const std::from_chars_result res =
        std::from_chars(first, last_ptr, out);
    return res.ec == std::errc{} && res.ptr == last_ptr;
}

bool
isIgnorableColumn(const std::string &header_cell)
{
    std::string lower = header_cell;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    if (lower == "run")
        return true;
    const std::string suffix = " cycles";
    return lower.size() > suffix.size() && lower.ends_with(suffix);
}

} // namespace

std::vector<std::string>
splitCsvRecord(const std::string &line)
{
    std::vector<std::string> fields;
    std::string current;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char ch = line[i];
        if (quoted) {
            if (ch == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    current += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                current += ch;
            }
        } else if (ch == '"') {
            quoted = true;
        } else if (ch == ',') {
            fields.push_back(std::move(current));
            current.clear();
        } else if (ch != '\r') {
            current += ch;
        }
    }
    fields.push_back(std::move(current));
    return fields;
}

ParsedCsvDesign
parseDesignCsv(const std::string &text, const std::string &filename,
               DiagnosticSink &sink)
{
    ParsedCsvDesign parsed;

    // Gather non-empty lines with their 1-based file positions.
    std::vector<std::pair<std::size_t, std::string>> lines;
    {
        std::istringstream is(text);
        std::string line;
        std::size_t num = 0;
        while (std::getline(is, line)) {
            ++num;
            if (line.find_first_not_of(" \t\r") != std::string::npos)
                lines.emplace_back(num, line);
        }
    }
    if (lines.empty()) {
        sink.error(rules::kCsvNoRows, "no design rows in file",
                   {filename, 0, {}});
        return parsed;
    }

    // A header is any first line with a cell that is not an integer.
    const std::vector<std::string> first =
        splitCsvRecord(lines.front().second);
    bool has_header = false;
    for (const std::string &cell : first) {
        int value = 0;
        if (!parseInt(cell, value)) {
            has_header = true;
            break;
        }
    }

    // Which columns carry design levels (vs run index / responses).
    std::vector<bool> is_design(first.size(), true);
    if (has_header) {
        for (std::size_t c = 0; c < first.size(); ++c) {
            is_design[c] = !isIgnorableColumn(first[c]);
            if (is_design[c])
                parsed.factorNames.push_back(first[c]);
        }
    }

    const std::size_t start = has_header ? 1 : 0;
    if (start >= lines.size()) {
        sink.error(rules::kCsvNoRows,
                   "header only, no design rows",
                   {filename, lines.front().first, {}});
        return parsed;
    }
    parsed.firstDataLine = lines[start].first;

    for (std::size_t i = start; i < lines.size(); ++i) {
        const auto &[line_num, line] = lines[i];
        const std::vector<std::string> cells = splitCsvRecord(line);
        if (cells.size() != first.size()) {
            sink.error(rules::kCsvRaggedRow,
                       "row has " + std::to_string(cells.size()) +
                           " cells, expected " +
                           std::to_string(first.size()),
                       {filename, line_num, {}});
            continue;
        }
        std::vector<int> row;
        row.reserve(first.size());
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (!is_design[c])
                continue;
            int value = 0;
            if (!parseInt(cells[c], value)) {
                sink.error(rules::kCsvBadCell,
                           "cell '" + cells[c] + "' in column " +
                               std::to_string(c) +
                               " is not an integer level",
                           {filename, line_num, {}});
                value = 0;
            }
            row.push_back(value);
        }
        parsed.signs.push_back(std::move(row));
    }
    if (parsed.signs.empty() || parsed.signs.front().empty())
        sink.error(rules::kCsvNoRows,
                   "no design level columns found",
                   {filename, parsed.firstDataLine, {}});
    return parsed;
}

bool
lintDesignCsv(const std::string &text, const std::string &filename,
              const DesignCheckOptions &options, DiagnosticSink &sink)
{
    const std::size_t before = sink.errorCount();
    ParsedCsvDesign parsed = parseDesignCsv(text, filename, sink);
    if (parsed.signs.empty() || parsed.signs.front().empty())
        return false;

    SourceContext base;
    base.file = filename;
    base.line = parsed.firstDataLine;
    if (!checkSignMatrix(parsed.signs, sink, base))
        return false;

    const doe::DesignMatrix design =
        doe::DesignMatrix::fromSigns(parsed.signs);
    SourceContext whole_file;
    whole_file.file = filename;
    checkDesignMatrix(design, options, sink, whole_file);
    return sink.errorCount() == before;
}

} // namespace rigor::check
