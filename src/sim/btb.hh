/**
 * @file
 * Branch target buffer.
 *
 * Supplies the target of a predicted-taken branch at fetch time. A
 * BTB miss on a taken branch means fetch cannot redirect until the
 * branch is decoded, costing a short misfetch bubble.
 */

#ifndef RIGOR_SIM_BTB_HH
#define RIGOR_SIM_BTB_HH

#include <cstdint>

#include "sim/replacement.hh"

namespace rigor::sim
{

/** BTB access counters. */
struct BtbStats
{
    std::uint64_t lookups = 0;
    std::uint64_t misses = 0;

    double hitRate() const
    {
        return lookups == 0
                   ? 1.0
                   : 1.0 - static_cast<double>(misses) /
                               static_cast<double>(lookups);
    }
};

class Btb
{
  public:
    /**
     * @param entries total entries (power of two)
     * @param assoc ways per set; 0 = fully associative
     */
    Btb(std::uint32_t entries, std::uint32_t assoc);

    /**
     * Look up @p pc.
     *
     * @param target_out receives the stored target on a hit
     * @return true on hit
     */
    bool lookup(std::uint64_t pc, std::uint64_t *target_out);

    /** Install or refresh the target of a taken branch. */
    void update(std::uint64_t pc, std::uint64_t target);

    /** Invalidate all entries and clear the statistics. */
    void reset();

    const BtbStats &stats() const { return _stats; }

  private:
    std::uint32_t _numSets;
    TagStore _tags;
    BtbStats _stats;
};

} // namespace rigor::sim

#endif // RIGOR_SIM_BTB_HH
