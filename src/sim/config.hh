/**
 * @file
 * Full configuration surface of the superscalar processor model.
 *
 * Every user-configurable parameter of the paper's Tables 6 (core),
 * 7 (functional units), and 8 (memory hierarchy) appears here,
 * including the "shaded" linked parameters whose values are derived
 * from a related parameter (LSQ entries from ROB entries, divide
 * throughputs from divide latencies, following-block memory latency
 * from first-block latency, D-TLB page size / latency from the I-TLB).
 */

#ifndef RIGOR_SIM_CONFIG_HH
#define RIGOR_SIM_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace rigor::sim
{

/**
 * Direction predictor choices. Table 6 varies 2-Level vs Perfect;
 * the additional schemes support ablation studies (SimpleScalar's
 * bimodal and combining predictors, plus a local two-level).
 */
enum class BranchPredictorKind
{
    TwoLevel,
    Bimodal,
    LocalTwoLevel,
    Tournament,
    Perfect,
};

/** When the branch predictor's history is updated (Table 6). */
enum class BranchUpdateTiming
{
    InCommit,
    InDecode,
};

/** Cache/TLB replacement policies (Table 8 uses LRU throughout). */
enum class ReplacementKind
{
    LRU,
    FIFO,
    Random,
};

/** Geometry and timing of one cache level. */
struct CacheGeometry
{
    /** Total capacity in bytes. */
    std::uint32_t sizeBytes = 0;
    /** Ways per set; 0 means fully associative. */
    std::uint32_t assoc = 1;
    /** Line size in bytes (power of two). */
    std::uint32_t blockBytes = 32;
    ReplacementKind replacement = ReplacementKind::LRU;
    /** Hit latency in cycles. */
    std::uint32_t latency = 1;

    std::uint32_t numBlocks() const { return sizeBytes / blockBytes; }
    std::uint32_t effectiveAssoc() const
    {
        return assoc == 0 ? numBlocks() : assoc;
    }
    std::uint32_t numSets() const
    {
        return numBlocks() / effectiveAssoc();
    }

    bool operator==(const CacheGeometry &) const = default;
};

/** Geometry and timing of one TLB. */
struct TlbGeometry
{
    std::uint32_t entries = 32;
    /** Page size in bytes. */
    std::uint64_t pageBytes = 4096;
    /** Ways per set; 0 means fully associative. */
    std::uint32_t assoc = 2;
    /** Miss penalty in cycles (hits are overlapped with cache access). */
    std::uint32_t missLatency = 30;

    std::uint32_t effectiveAssoc() const
    {
        return assoc == 0 ? entries : assoc;
    }
    std::uint32_t numSets() const { return entries / effectiveAssoc(); }

    bool operator==(const TlbGeometry &) const = default;
};

/**
 * Complete processor configuration. Defaults form a "typical"
 * middle-of-the-road 4-way superscalar, roughly an Alpha 21264-class
 * machine; the PB parameter space of methodology/parameter_space.hh
 * overrides fields with the deliberately-extreme low/high values of
 * Tables 6-8.
 */
struct ProcessorConfig
{
    // ----- Processor core (Table 6) -----
    std::uint32_t ifqEntries = 16;
    BranchPredictorKind bpred = BranchPredictorKind::TwoLevel;
    std::uint32_t bpredPenalty = 5;
    std::uint32_t rasEntries = 16;
    std::uint32_t btbEntries = 128;
    /** 0 = fully associative. */
    std::uint32_t btbAssoc = 2;
    BranchUpdateTiming specBranchUpdate = BranchUpdateTiming::InCommit;
    /** Decode, issue, and commit width; the paper fixes this at 4. */
    std::uint32_t machineWidth = 4;
    std::uint32_t robEntries = 32;
    /** LSQ entries = lsqRatio * robEntries (shaded link in Table 6). */
    double lsqRatio = 0.5;
    std::uint32_t memPorts = 2;

    // ----- Functional units (Table 7) -----
    std::uint32_t intAlus = 2;
    std::uint32_t intAluLatency = 1;
    std::uint32_t intAluThroughput = 1;
    std::uint32_t fpAlus = 2;
    std::uint32_t fpAluLatency = 2;
    std::uint32_t fpAluThroughput = 1;
    std::uint32_t intMultDivUnits = 1;
    std::uint32_t intMultLatency = 7;
    std::uint32_t intDivLatency = 30;
    std::uint32_t intMultThroughput = 1;
    // Int divide throughput is linked to its latency (unpipelined).
    std::uint32_t fpMultDivUnits = 1;
    std::uint32_t fpMultLatency = 4;
    std::uint32_t fpDivLatency = 20;
    std::uint32_t fpSqrtLatency = 25;
    // FP multiply/divide/sqrt throughputs are linked to the latencies.

    // ----- Memory hierarchy (Table 8) -----
    /**
     * Next-line instruction prefetch: on every I-fetch the following
     * cache block is pulled toward L1I in the background. Off by
     * default (the paper's machine has no prefetcher); used by the
     * enhancement-analysis examples as a second case study.
     */
    bool l1iNextLinePrefetch = false;

    CacheGeometry l1i{16 * 1024, 2, 32, ReplacementKind::LRU, 1};
    CacheGeometry l1d{16 * 1024, 4, 32, ReplacementKind::LRU, 2};
    CacheGeometry l2{1024 * 1024, 4, 64, ReplacementKind::LRU, 10};
    std::uint32_t memLatencyFirst = 100;
    std::uint32_t memBandwidthBytes = 16;
    TlbGeometry itlb{64, 4096, 4, 50};
    TlbGeometry dtlb{128, 4096, 4, 50};

    // ----- Linked (derived) parameters -----

    /** LSQ entries derived from the ROB (Table 6 shading). */
    std::uint32_t lsqEntries() const;

    /** Unpipelined integer divide: issue interval = latency. */
    std::uint32_t intDivThroughput() const { return intDivLatency; }

    /** Unpipelined FP multiply/divide/sqrt (Table 7 shading). */
    std::uint32_t fpMultThroughput() const { return fpMultLatency; }
    std::uint32_t fpDivThroughput() const { return fpDivLatency; }
    std::uint32_t fpSqrtThroughput() const { return fpSqrtLatency; }

    /**
     * Inter-chunk ("following block") memory latency: 0.02 x the
     * first-block latency (Table 8 shading), at least one cycle.
     */
    std::uint32_t memLatencyFollowing() const;

    /**
     * Sanity-check the configuration; throws std::invalid_argument
     * with a description of the first problem found.
     */
    void validate() const;

    /** Human-readable multi-line dump for reports. */
    std::string toString() const;

    /** Memberwise equality (run-cache key comparisons). */
    bool operator==(const ProcessorConfig &) const = default;

    /**
     * Stable memberwise hash covering every configurable field, so
     * two configurations hash equally iff they would simulate
     * identically. Used by exec::RunCache to memoize simulation runs.
     */
    std::size_t hash() const;
};

/** Name helpers for report output. */
std::string toString(BranchPredictorKind kind);
std::string toString(BranchUpdateTiming timing);
std::string toString(ReplacementKind kind);

} // namespace rigor::sim

#endif // RIGOR_SIM_CONFIG_HH
