#include "sim/tlb.hh"

#include <bit>
#include <stdexcept>

namespace rigor::sim
{

Tlb::Tlb(std::string name, const TlbGeometry &geometry)
    : _name(std::move(name)), _geometry(geometry),
      _tags(geometry.numSets(), geometry.effectiveAssoc(),
            ReplacementKind::LRU),
      _pageShift(static_cast<std::uint32_t>(
          std::countr_zero(geometry.pageBytes))),
      _setMask(geometry.numSets() - 1)
{
    if ((geometry.numSets() & (geometry.numSets() - 1)) != 0)
        throw std::invalid_argument(
            "Tlb: set count must be a power of two");
}

std::uint32_t
Tlb::access(std::uint64_t addr)
{
    ++_stats.accesses;
    const std::uint64_t vpn = addr >> _pageShift;
    const auto set = static_cast<std::uint32_t>(vpn & _setMask);
    const std::uint64_t tag = vpn >> std::countr_zero(_setMask + 1);
    if (_tags.lookup(set, tag))
        return 0;

    ++_stats.misses;
    _tags.insert(set, tag);
    return _geometry.missLatency;
}

void
Tlb::reset()
{
    _tags.flush();
    _stats = TlbStats{};
}

} // namespace rigor::sim
