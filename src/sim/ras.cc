#include "sim/ras.hh"

#include <algorithm>
#include <stdexcept>

namespace rigor::sim
{

ReturnAddressStack::ReturnAddressStack(std::uint32_t entries)
    : _entries(entries, 0), _top(0), _depth(0)
{
    if (entries == 0)
        throw std::invalid_argument(
            "ReturnAddressStack: need at least one entry");
}

void
ReturnAddressStack::push(std::uint64_t return_pc)
{
    ++_stats.pushes;
    _entries[_top] = return_pc;
    _top = (_top + 1) % capacity();
    if (_depth == capacity())
        ++_stats.overflows; // oldest entry silently lost
    else
        ++_depth;
}

std::optional<std::uint64_t>
ReturnAddressStack::pop()
{
    ++_stats.pops;
    if (_depth == 0) {
        ++_stats.underflows;
        return std::nullopt;
    }
    _top = (_top + capacity() - 1) % capacity();
    --_depth;
    return _entries[_top];
}

void
ReturnAddressStack::reset()
{
    std::fill(_entries.begin(), _entries.end(), 0);
    _top = 0;
    _depth = 0;
    _stats = RasStats{};
}

} // namespace rigor::sim
