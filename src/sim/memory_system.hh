/**
 * @file
 * The full memory hierarchy: split L1 caches, unified L2, split TLBs,
 * and a bandwidth-limited main-memory channel.
 *
 * Timing model (matching the structure of Table 8):
 *  - L1 hit: L1 latency.
 *  - L1 miss, L2 hit: L1 latency + L2 latency.
 *  - L2 miss: + first-block memory latency + (chunks - 1) x
 *    following-block latency, where chunks = L2 block / bus width.
 *    Concurrent misses overlap their first-block (DRAM access)
 *    latency — banked memory — but the data beats serialize on the
 *    single channel: each transfer occupies it for
 *    1 + (chunks - 1) x following cycles. This preserved
 *    memory-level parallelism is what lets a larger reorder buffer
 *    overlap misses (the paper's top-ranked parameter).
 *  - TLB miss: adds the TLB miss penalty serially (hits are free,
 *    modeled as overlapped with the L1 access).
 */

#ifndef RIGOR_SIM_MEMORY_SYSTEM_HH
#define RIGOR_SIM_MEMORY_SYSTEM_HH

#include <cstdint>

#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/tlb.hh"

namespace rigor::sim
{

/** Aggregate counters for the hierarchy. */
struct MemorySystemStats
{
    std::uint64_t instructionFetches = 0;
    std::uint64_t dataAccesses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t memoryTransfers = 0;
    std::uint64_t busQueueCycles = 0;
    /** Next-line prefetches issued (when enabled). */
    std::uint64_t instructionPrefetches = 0;
};

class MemorySystem
{
  public:
    explicit MemorySystem(const ProcessorConfig &config);

    /**
     * Fetch the instruction block containing @p pc.
     *
     * @param cycle cycle the access starts
     * @return total access latency in cycles
     */
    std::uint64_t instructionFetch(std::uint64_t cycle, std::uint64_t pc);

    /**
     * Perform a data access.
     *
     * @param cycle cycle the access starts
     * @param addr byte address
     * @param is_store true for stores (same timing path; stores are
     *        buffered by the core, but still occupy the hierarchy)
     * @return total access latency in cycles
     */
    std::uint64_t dataAccess(std::uint64_t cycle, std::uint64_t addr,
                             bool is_store);

    /**
     * Functionally warm the instruction side: advance TLB, L1I, and
     * L2 contents for a fetch of @p pc without any cycle accounting.
     * The access counters still tick; the bus/queue state does not.
     */
    void warmInstructionFetch(std::uint64_t pc);

    /** Functionally warm the data side (TLB, L1D, L2) for @p addr. */
    void warmDataAccess(std::uint64_t addr);

    /**
     * Restore construction-time state: flush all caches and TLBs,
     * clear the statistics, and free the memory channel.
     */
    void reset();

    const Cache &l1i() const { return _l1i; }
    const Cache &l1d() const { return _l1d; }
    const Cache &l2() const { return _l2; }
    const Tlb &itlb() const { return _itlb; }
    const Tlb &dtlb() const { return _dtlb; }
    const MemorySystemStats &stats() const { return _stats; }

    /** Total added latency of one memory transfer (no queueing). */
    std::uint64_t memoryTransferCycles() const;

    /** Cycles one transfer's data beats occupy the memory channel. */
    std::uint64_t memoryChannelOccupancy() const;

  private:
    Cache _l1i;
    Cache _l1d;
    Cache _l2;
    Tlb _itlb;
    Tlb _dtlb;
    bool _nextLinePrefetch;
    std::uint32_t _memLatencyFirst;
    std::uint32_t _memLatencyFollowing;
    std::uint32_t _chunksPerBlock;
    std::uint64_t _memFreeCycle;
    MemorySystemStats _stats;

    /** L2 + memory path shared by both L1s. Returns added latency. */
    std::uint64_t accessL2(std::uint64_t cycle, std::uint64_t addr);
};

} // namespace rigor::sim

#endif // RIGOR_SIM_MEMORY_SYSTEM_HH
