#include "sim/func_unit.hh"

#include <algorithm>
#include <stdexcept>

namespace rigor::sim
{

FuPool::FuPool(std::string name, std::uint32_t units,
               std::uint32_t latency, std::uint32_t interval)
    : _name(std::move(name)), _latency(latency), _interval(interval),
      _freeAt(units, 0)
{
    if (units == 0)
        throw std::invalid_argument("FuPool: need at least one unit");
    if (latency == 0 || interval == 0)
        throw std::invalid_argument(
            "FuPool: latency and interval must be non-zero");
}

std::uint64_t
FuPool::earliestStart(std::uint64_t ready_cycle) const
{
    std::uint64_t best = _freeAt[0];
    for (std::uint64_t f : _freeAt)
        best = std::min(best, f);
    return std::max(ready_cycle, best);
}

std::uint64_t
FuPool::reserve(std::uint64_t ready_cycle)
{
    return reserveFor(ready_cycle, _interval);
}

std::uint64_t
FuPool::reserveFor(std::uint64_t ready_cycle, std::uint32_t interval)
{
    if (interval == 0)
        throw std::invalid_argument(
            "FuPool::reserveFor: interval must be non-zero");

    // Pick the unit that frees earliest.
    std::size_t best = 0;
    for (std::size_t u = 1; u < _freeAt.size(); ++u)
        if (_freeAt[u] < _freeAt[best])
            best = u;

    const std::uint64_t start = std::max(ready_cycle, _freeAt[best]);
    ++_stats.operations;
    _stats.busyStallCycles += start - ready_cycle;
    _freeAt[best] = start + interval;
    return start;
}

void
FuPool::reset()
{
    std::fill(_freeAt.begin(), _freeAt.end(), 0);
    _stats = FuPoolStats{};
}

} // namespace rigor::sim
