#include "sim/branch_predictor.hh"

#include <algorithm>
#include <stdexcept>

namespace rigor::sim
{

namespace
{

void
trainCounter(std::uint8_t &ctr, bool taken)
{
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

} // namespace

void
BranchPredictor::recordOutcome(bool correct)
{
    ++_stats.predictions;
    if (!correct)
        ++_stats.mispredictions;
}

// ---------------------------------------------------------------------
// TwoLevelPredictor
// ---------------------------------------------------------------------

TwoLevelPredictor::TwoLevelPredictor(std::uint32_t table_entries,
                                     std::uint32_t history_bits)
    : _counters(table_entries, 1), // weakly not-taken
      _historyBits(history_bits), _history(0),
      _indexMask(table_entries - 1)
{
    if (table_entries == 0 ||
        (table_entries & (table_entries - 1)) != 0)
        throw std::invalid_argument(
            "TwoLevelPredictor: table size must be a power of two");
    if (history_bits == 0 || history_bits > 30)
        throw std::invalid_argument(
            "TwoLevelPredictor: history bits must be in [1, 30]");
}

std::uint32_t
TwoLevelPredictor::index(std::uint64_t pc, std::uint32_t history) const
{
    return static_cast<std::uint32_t>((pc >> 2) ^ history) & _indexMask;
}

bool
TwoLevelPredictor::predict(std::uint64_t pc)
{
    return _counters[index(pc, _history)] >= 2;
}

void
TwoLevelPredictor::updateHistory(bool taken)
{
    _history = ((_history << 1) | (taken ? 1u : 0u)) &
               ((1u << _historyBits) - 1u);
}

void
TwoLevelPredictor::updateCounters(std::uint64_t pc, bool taken)
{
    // Note: trains with the *current* history; in a cycle-accurate
    // model the fetch-time history would be carried with the branch.
    // For this timing model the approximation only perturbs training
    // during the few cycles a branch is in flight.
    trainCounter(_counters[index(pc, _history)], taken);
}

void
TwoLevelPredictor::reset()
{
    std::fill(_counters.begin(), _counters.end(),
              std::uint8_t{1}); // weakly not-taken
    _history = 0;
    BranchPredictor::reset();
}

// ---------------------------------------------------------------------
// BimodalPredictor
// ---------------------------------------------------------------------

BimodalPredictor::BimodalPredictor(std::uint32_t table_entries)
    : _counters(table_entries, 1), _indexMask(table_entries - 1)
{
    if (table_entries == 0 ||
        (table_entries & (table_entries - 1)) != 0)
        throw std::invalid_argument(
            "BimodalPredictor: table size must be a power of two");
}

bool
BimodalPredictor::predict(std::uint64_t pc)
{
    return _counters[(pc >> 2) & _indexMask] >= 2;
}

void
BimodalPredictor::updateHistory(bool)
{
    // No global history.
}

void
BimodalPredictor::updateCounters(std::uint64_t pc, bool taken)
{
    trainCounter(_counters[(pc >> 2) & _indexMask], taken);
}

void
BimodalPredictor::reset()
{
    std::fill(_counters.begin(), _counters.end(), std::uint8_t{1});
    BranchPredictor::reset();
}

// ---------------------------------------------------------------------
// LocalTwoLevelPredictor
// ---------------------------------------------------------------------

LocalTwoLevelPredictor::LocalTwoLevelPredictor(
    std::uint32_t history_entries, std::uint32_t history_bits,
    std::uint32_t table_entries)
    : _histories(history_entries, 0), _counters(table_entries, 1),
      _historyBits(history_bits), _historyMask(history_entries - 1),
      _tableMask(table_entries - 1)
{
    if (history_entries == 0 ||
        (history_entries & (history_entries - 1)) != 0)
        throw std::invalid_argument(
            "LocalTwoLevelPredictor: history table size must be a "
            "power of two");
    if (table_entries == 0 ||
        (table_entries & (table_entries - 1)) != 0)
        throw std::invalid_argument(
            "LocalTwoLevelPredictor: pattern table size must be a "
            "power of two");
    if (history_bits == 0 || history_bits > 16)
        throw std::invalid_argument(
            "LocalTwoLevelPredictor: history bits must be in [1, 16]");
}

std::uint32_t
LocalTwoLevelPredictor::historyIndex(std::uint64_t pc) const
{
    return static_cast<std::uint32_t>(pc >> 2) & _historyMask;
}

bool
LocalTwoLevelPredictor::predict(std::uint64_t pc)
{
    const std::uint16_t history = _histories[historyIndex(pc)];
    return _counters[history & _tableMask] >= 2;
}

void
LocalTwoLevelPredictor::updateHistory(bool taken)
{
    // Local history is per-branch: the shift happens in
    // updateCounters where the PC is known. The global-history entry
    // point records the PC of the latest predicted branch instead.
    (void)taken;
}

void
LocalTwoLevelPredictor::updateCounters(std::uint64_t pc, bool taken)
{
    std::uint16_t &history = _histories[historyIndex(pc)];
    trainCounter(_counters[history & _tableMask], taken);
    history = static_cast<std::uint16_t>(
        ((history << 1) | (taken ? 1u : 0u)) &
        ((1u << _historyBits) - 1u));
}

void
LocalTwoLevelPredictor::reset()
{
    std::fill(_histories.begin(), _histories.end(), std::uint16_t{0});
    std::fill(_counters.begin(), _counters.end(), std::uint8_t{1});
    _lastPc = 0;
    BranchPredictor::reset();
}

// ---------------------------------------------------------------------
// TournamentPredictor
// ---------------------------------------------------------------------

TournamentPredictor::TournamentPredictor()
    : _global(4096, 8), _local(1024, 10, 1024),
      _chooser(4096, 2), // weakly prefer the global component
      _chooserMask(4095)
{
}

bool
TournamentPredictor::predict(std::uint64_t pc)
{
    const bool use_global =
        _chooser[(pc >> 2) & _chooserMask] >= 2;
    return use_global ? _global.predict(pc) : _local.predict(pc);
}

void
TournamentPredictor::updateHistory(bool taken)
{
    _global.updateHistory(taken);
}

void
TournamentPredictor::updateCounters(std::uint64_t pc, bool taken)
{
    // Re-derive each component's current prediction to train the
    // chooser toward whichever side is right (approximates carrying
    // the fetch-time predictions with the branch).
    const bool g = _global.predict(pc);
    const bool l = _local.predict(pc);
    if (g != l)
        trainCounter(_chooser[(pc >> 2) & _chooserMask], g == taken);
    _global.updateCounters(pc, taken);
    _local.updateCounters(pc, taken);
}

void
TournamentPredictor::reset()
{
    _global.reset();
    _local.reset();
    std::fill(_chooser.begin(), _chooser.end(),
              std::uint8_t{2}); // weakly prefer the global component
    BranchPredictor::reset();
}

// ---------------------------------------------------------------------
// PerfectPredictor
// ---------------------------------------------------------------------

bool
PerfectPredictor::predict(std::uint64_t)
{
    return _next;
}

void
PerfectPredictor::updateHistory(bool)
{
}

void
PerfectPredictor::updateCounters(std::uint64_t, bool)
{
}

void
PerfectPredictor::reset()
{
    _next = false;
    BranchPredictor::reset();
}

// ---------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------

std::unique_ptr<BranchPredictor>
makeBranchPredictor(BranchPredictorKind kind)
{
    switch (kind) {
      case BranchPredictorKind::TwoLevel:
        return std::make_unique<TwoLevelPredictor>();
      case BranchPredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>();
      case BranchPredictorKind::LocalTwoLevel:
        return std::make_unique<LocalTwoLevelPredictor>();
      case BranchPredictorKind::Tournament:
        return std::make_unique<TournamentPredictor>();
      case BranchPredictorKind::Perfect:
        return std::make_unique<PerfectPredictor>();
    }
    throw std::logic_error("makeBranchPredictor: unreachable");
}

} // namespace rigor::sim
