#include "sim/stats_report.hh"

#include <iomanip>
#include <sstream>

namespace rigor::sim
{

namespace
{

void
cacheLine(std::ostringstream &os, const Cache &cache)
{
    os << "  " << std::left << std::setw(6) << cache.name()
       << std::right << std::setw(12) << cache.stats().accesses
       << " accesses" << std::setw(12) << cache.stats().misses
       << " misses  " << std::fixed << std::setprecision(2)
       << 100.0 * cache.stats().missRate() << "% miss rate\n";
}

void
tlbLine(std::ostringstream &os, const Tlb &tlb)
{
    os << "  " << std::left << std::setw(6) << tlb.name() << std::right
       << std::setw(12) << tlb.stats().accesses << " accesses"
       << std::setw(12) << tlb.stats().misses << " misses  "
       << std::fixed << std::setprecision(2)
       << 100.0 * tlb.stats().missRate() << "% miss rate\n";
}

void
poolLine(std::ostringstream &os, const FuPool &pool)
{
    os << "  " << std::left << std::setw(12) << pool.name()
       << std::right << std::setw(12) << pool.stats().operations
       << " ops" << std::setw(12) << pool.stats().busyStallCycles
       << " busy-stall cycles\n";
}

} // namespace

std::string
formatRunReport(const SuperscalarCore &core, const CoreStats &stats)
{
    std::ostringstream os;
    os << "instructions: " << stats.instructions
       << "  cycles: " << stats.cycles << "  IPC: " << std::fixed
       << std::setprecision(3) << stats.ipc() << "\n";
    os << "branches: " << stats.branches
       << "  mispredicts: " << stats.branchMispredicts
       << "  accuracy: " << std::setprecision(2)
       << 100.0 * core.predictor().stats().accuracy() << "%"
       << "  btb-misfetch: " << stats.btbMisfetches
       << "  ras-mispredicts: " << stats.rasMispredicts << "\n";
    os << "loads: " << stats.loads << "  stores: " << stats.stores;
    if (stats.interceptedInstructions > 0)
        os << "  intercepted: " << stats.interceptedInstructions;
    os << "\ncaches:\n";
    cacheLine(os, core.memory().l1i());
    cacheLine(os, core.memory().l1d());
    cacheLine(os, core.memory().l2());
    os << "tlbs:\n";
    tlbLine(os, core.memory().itlb());
    tlbLine(os, core.memory().dtlb());
    os << "functional units:\n";
    poolLine(os, core.intAluPool());
    poolLine(os, core.fpAluPool());
    poolLine(os, core.intMultDivPool());
    poolLine(os, core.fpMultDivPool());
    return os.str();
}

} // namespace rigor::sim
