#include "sim/stats_report.hh"

#include <iomanip>
#include <sstream>

#include "obs/json.hh"

namespace rigor::sim
{

namespace
{

void
cacheLine(std::ostringstream &os, const Cache &cache)
{
    os << "  " << std::left << std::setw(6) << cache.name()
       << std::right << std::setw(12) << cache.stats().accesses
       << " accesses" << std::setw(12) << cache.stats().misses
       << " misses  " << std::fixed << std::setprecision(2)
       << 100.0 * cache.stats().missRate() << "% miss rate\n";
}

void
tlbLine(std::ostringstream &os, const Tlb &tlb)
{
    os << "  " << std::left << std::setw(6) << tlb.name() << std::right
       << std::setw(12) << tlb.stats().accesses << " accesses"
       << std::setw(12) << tlb.stats().misses << " misses  "
       << std::fixed << std::setprecision(2)
       << 100.0 * tlb.stats().missRate() << "% miss rate\n";
}

void
poolLine(std::ostringstream &os, const FuPool &pool)
{
    os << "  " << std::left << std::setw(12) << pool.name()
       << std::right << std::setw(12) << pool.stats().operations
       << " ops" << std::setw(12) << pool.stats().busyStallCycles
       << " busy-stall cycles\n";
}

} // namespace

std::string
formatRunReport(const SuperscalarCore &core, const CoreStats &stats)
{
    std::ostringstream os;
    os << "instructions: " << stats.instructions
       << "  cycles: " << stats.cycles << "  IPC: " << std::fixed
       << std::setprecision(3) << stats.ipc() << "\n";
    os << "branches: " << stats.branches
       << "  mispredicts: " << stats.branchMispredicts
       << "  accuracy: " << std::setprecision(2)
       << 100.0 * core.predictor().stats().accuracy() << "%"
       << "  btb-misfetch: " << stats.btbMisfetches
       << "  ras-mispredicts: " << stats.rasMispredicts << "\n";
    os << "loads: " << stats.loads << "  stores: " << stats.stores;
    if (stats.interceptedInstructions > 0)
        os << "  intercepted: " << stats.interceptedInstructions;
    os << "\ncaches:\n";
    cacheLine(os, core.memory().l1i());
    cacheLine(os, core.memory().l1d());
    cacheLine(os, core.memory().l2());
    os << "tlbs:\n";
    tlbLine(os, core.memory().itlb());
    tlbLine(os, core.memory().dtlb());
    os << "functional units:\n";
    poolLine(os, core.intAluPool());
    poolLine(os, core.fpAluPool());
    poolLine(os, core.intMultDivPool());
    poolLine(os, core.fpMultDivPool());
    return os.str();
}

namespace
{

void
jsonKey(std::string &out, const char *key)
{
    obs::appendJsonString(out, key);
    out += ':';
}

void
jsonCount(std::string &out, const char *key, std::uint64_t value)
{
    jsonKey(out, key);
    out += std::to_string(value);
}

void
cacheJson(std::string &out, const Cache &cache)
{
    obs::appendJsonString(out, cache.name());
    out += ":{";
    jsonCount(out, "accesses", cache.stats().accesses);
    out += ',';
    jsonCount(out, "misses", cache.stats().misses);
    out += ',';
    jsonKey(out, "miss_rate");
    out += obs::jsonNumber(cache.stats().missRate());
    out += '}';
}

void
tlbJson(std::string &out, const Tlb &tlb)
{
    obs::appendJsonString(out, tlb.name());
    out += ":{";
    jsonCount(out, "accesses", tlb.stats().accesses);
    out += ',';
    jsonCount(out, "misses", tlb.stats().misses);
    out += ',';
    jsonKey(out, "miss_rate");
    out += obs::jsonNumber(tlb.stats().missRate());
    out += '}';
}

void
poolJson(std::string &out, const FuPool &pool)
{
    obs::appendJsonString(out, pool.name());
    out += ":{";
    jsonCount(out, "operations", pool.stats().operations);
    out += ',';
    jsonCount(out, "busy_stall_cycles",
              pool.stats().busyStallCycles);
    out += '}';
}

} // namespace

std::string
formatRunReportJson(const SuperscalarCore &core,
                    const CoreStats &stats)
{
    std::string out;
    out.reserve(768);
    out += '{';
    jsonCount(out, "instructions", stats.instructions);
    out += ',';
    jsonCount(out, "cycles", stats.cycles);
    out += ',';
    jsonKey(out, "ipc");
    out += obs::jsonNumber(stats.ipc());
    out += ',';
    jsonCount(out, "measured_instructions",
              stats.measuredInstructions());
    out += ',';
    jsonCount(out, "measured_cycles", stats.measuredCycles());
    out += ',';
    jsonCount(out, "branches", stats.branches);
    out += ',';
    jsonCount(out, "branch_mispredicts", stats.branchMispredicts);
    out += ',';
    jsonKey(out, "branch_accuracy");
    out += obs::jsonNumber(core.predictor().stats().accuracy());
    out += ',';
    jsonCount(out, "btb_misfetches", stats.btbMisfetches);
    out += ',';
    jsonCount(out, "ras_mispredicts", stats.rasMispredicts);
    out += ',';
    jsonCount(out, "loads", stats.loads);
    out += ',';
    jsonCount(out, "stores", stats.stores);
    out += ',';
    jsonCount(out, "intercepted_instructions",
              stats.interceptedInstructions);
    out += ',';
    jsonKey(out, "caches");
    out += '{';
    cacheJson(out, core.memory().l1i());
    out += ',';
    cacheJson(out, core.memory().l1d());
    out += ',';
    cacheJson(out, core.memory().l2());
    out += '}';
    out += ',';
    jsonKey(out, "tlbs");
    out += '{';
    tlbJson(out, core.memory().itlb());
    out += ',';
    tlbJson(out, core.memory().dtlb());
    out += '}';
    out += ',';
    jsonKey(out, "functional_units");
    out += '{';
    poolJson(out, core.intAluPool());
    out += ',';
    poolJson(out, core.fpAluPool());
    out += ',';
    poolJson(out, core.intMultDivPool());
    out += ',';
    poolJson(out, core.fpMultDivPool());
    out += '}';
    out += '}';
    return out;
}

} // namespace rigor::sim
