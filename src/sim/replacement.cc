#include "sim/replacement.hh"

#include <stdexcept>

namespace rigor::sim
{

TagStore::TagStore(std::uint32_t num_sets, std::uint32_t assoc,
                   ReplacementKind replacement, std::uint64_t seed)
    : _numSets(num_sets), _assoc(assoc), _replacement(replacement),
      _seed(seed), _tick(0), _rngState(seed | 1),
      _ways(static_cast<std::size_t>(num_sets) * assoc)
{
    if (num_sets == 0 || assoc == 0)
        throw std::invalid_argument(
            "TagStore: sets and associativity must be non-zero");
}

TagStore::Way *
TagStore::setBase(std::uint32_t set)
{
    if (set >= _numSets)
        throw std::out_of_range("TagStore: set index out of range");
    return &_ways[static_cast<std::size_t>(set) * _assoc];
}

const TagStore::Way *
TagStore::setBase(std::uint32_t set) const
{
    if (set >= _numSets)
        throw std::out_of_range("TagStore: set index out of range");
    return &_ways[static_cast<std::size_t>(set) * _assoc];
}

std::uint64_t
TagStore::nextRandom()
{
    // xorshift64: adequate for victim selection.
    std::uint64_t x = _rngState;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    _rngState = x;
    return x;
}

bool
TagStore::lookup(std::uint32_t set, std::uint64_t tag,
                 std::uint64_t *payload_out)
{
    Way *base = setBase(set);
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            if (_replacement == ReplacementKind::LRU)
                way.stamp = ++_tick;
            if (payload_out)
                *payload_out = way.payload;
            return true;
        }
    }
    return false;
}

bool
TagStore::probe(std::uint32_t set, std::uint64_t tag) const
{
    const Way *base = setBase(set);
    for (std::uint32_t w = 0; w < _assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

std::uint32_t
TagStore::victimWay(std::uint32_t set)
{
    Way *base = setBase(set);
    // Invalid ways first.
    for (std::uint32_t w = 0; w < _assoc; ++w)
        if (!base[w].valid)
            return w;

    switch (_replacement) {
      case ReplacementKind::LRU:
      case ReplacementKind::FIFO: {
        std::uint32_t victim = 0;
        for (std::uint32_t w = 1; w < _assoc; ++w)
            if (base[w].stamp < base[victim].stamp)
                victim = w;
        return victim;
      }
      case ReplacementKind::Random:
        return static_cast<std::uint32_t>(nextRandom() % _assoc);
    }
    throw std::logic_error("TagStore::victimWay: unreachable");
}

bool
TagStore::insert(std::uint32_t set, std::uint64_t tag,
                 std::uint64_t payload)
{
    Way *base = setBase(set);

    // Refill of an already-present tag just refreshes the payload.
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].payload = payload;
            base[w].stamp = ++_tick;
            return false;
        }
    }

    const std::uint32_t victim = victimWay(set);
    Way &way = base[victim];
    const bool evicted = way.valid;
    way.tag = tag;
    way.payload = payload;
    way.valid = true;
    way.stamp = ++_tick;
    return evicted;
}

void
TagStore::flush()
{
    for (Way &way : _ways)
        way = Way{};
    _tick = 0;
    _rngState = _seed | 1;
}

} // namespace rigor::sim
