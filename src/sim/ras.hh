/**
 * @file
 * Return address stack.
 *
 * A circular stack of predicted return addresses. Overflow silently
 * overwrites the oldest entry (so deep call chains mispredict on the
 * way back out — exactly why the RAS Entries parameter of Table 6
 * matters), and underflow returns no prediction.
 */

#ifndef RIGOR_SIM_RAS_HH
#define RIGOR_SIM_RAS_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace rigor::sim
{

/** RAS outcome counters. */
struct RasStats
{
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t overflows = 0;
    std::uint64_t underflows = 0;
};

class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(std::uint32_t entries);

    /** Push the return address of a call. */
    void push(std::uint64_t return_pc);

    /**
     * Pop the predicted return target, or std::nullopt on underflow.
     */
    std::optional<std::uint64_t> pop();

    /** Empty the stack and clear the statistics. */
    void reset();

    std::uint32_t capacity() const
    {
        return static_cast<std::uint32_t>(_entries.size());
    }
    std::uint32_t depth() const { return _depth; }
    const RasStats &stats() const { return _stats; }

  private:
    std::vector<std::uint64_t> _entries;
    std::uint32_t _top;   ///< index of the next free slot
    std::uint32_t _depth; ///< live entries (<= capacity)
    RasStats _stats;
};

} // namespace rigor::sim

#endif // RIGOR_SIM_RAS_HH
